//! # itpx — Instruction-Aware Cooperative TLB and Cache Replacement
//!
//! Facade crate re-exporting the full `itpx` workspace: a reproduction of
//! *"Instruction-Aware Cooperative TLB and Cache Replacement Policies"*
//! (ASPLOS 2025).
//!
//! The headline contributions live in [`core`]: the **iTP** STLB
//! replacement policy, the **xPTP** L2-cache replacement policy, and the
//! adaptive **iTP+xPTP** cooperative scheme. Everything they need to be
//! evaluated — a trace-driven out-of-order core, a full TLB/cache/page-walk
//! model, and synthetic server workloads — is built in the sibling crates
//! and re-exported here.
//!
//! # Quickstart
//!
//! ```
//! use itpx::prelude::*;
//!
//! // A small server-like workload with a large instruction footprint.
//! let workload = WorkloadSpec::server_like(7).instructions(20_000);
//! let config = SystemConfig::asplos25();
//!
//! // Baseline: LRU at both STLB and L2C.
//! let base = Simulation::single_thread(&config, Preset::Lru, &workload).run();
//! // The paper's proposal: iTP at the STLB, adaptive xPTP at the L2C.
//! let coop = Simulation::single_thread(&config, Preset::ItpXptp, &workload).run();
//!
//! println!(
//!     "IPC {:.3} -> {:.3} ({:+.1}%)",
//!     base.ipc(),
//!     coop.ipc(),
//!     (coop.ipc() / base.ipc() - 1.0) * 100.0
//! );
//! ```

pub use itpx_core as core;
pub use itpx_cpu as cpu;
pub use itpx_mem as mem;
pub use itpx_policy as policy;
pub use itpx_trace as trace;
pub use itpx_types as types;
pub use itpx_vm as vm;

/// The experiment harness used by the figure reproductions.
pub use itpx_bench as bench;

/// Convenient glob import for applications.
pub mod prelude {
    pub use itpx_core::{AdaptiveXptp, Itp, ItpParams, Preset, Xptp, XptpParams};
    pub use itpx_cpu::{Simulation, SimulationOutput, SystemConfig};
    pub use itpx_trace::{SmtPairSpec, WorkloadSpec};
    pub use itpx_types::{AccessKind, FillClass, PageSize, TranslationKind, VirtAddr};
}
