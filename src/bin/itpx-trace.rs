//! `itpx-trace` — generate, inspect, and convert synthetic traces.
//!
//! ```text
//! itpx-trace gen     --seed N [--spec-like] [--instructions N] --out FILE
//! itpx-trace info    FILE
//! itpx-trace convert CHAMPSIM_FILE --out FILE [--limit N]
//! ```
//!
//! `convert` ingests a *decompressed* ChampSim trace (`xz -d` the
//! artifact's `.champsimtrace.xz` first) into the `itpx` format.
//!
//! Traces use the `itpx` binary format (see `itpx_trace::record`); `info`
//! prints footprint and mix statistics for any trace file.

use itpx_trace::{read_trace, write_trace, TraceGenerator, TraceInst, WorkloadSpec};
use std::collections::HashSet;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

fn summarize(insts: &[TraceInst]) {
    let n = insts.len().max(1) as f64;
    let code_pages: HashSet<u64> = insts.iter().map(|i| i.pc >> 12).collect();
    let (mut loads, mut stores, mut branches, mut taken) = (0u64, 0u64, 0u64, 0u64);
    let mut data_pages = HashSet::new();
    for i in insts {
        if let Some(m) = i.mem {
            data_pages.insert(m.addr >> 12);
            if m.store {
                stores += 1;
            } else {
                loads += 1;
            }
        }
        if let Some(b) = i.branch {
            branches += 1;
            taken += b.taken as u64;
        }
    }
    println!("instructions   {}", insts.len());
    println!(
        "code pages     {} ({} KiB touched)",
        code_pages.len(),
        code_pages.len() * 4
    );
    println!(
        "data pages     {} ({} KiB touched)",
        data_pages.len(),
        data_pages.len() * 4
    );
    println!(
        "loads          {} ({:.1}%)",
        loads,
        loads as f64 * 100.0 / n
    );
    println!(
        "stores         {} ({:.1}%)",
        stores,
        stores as f64 * 100.0 / n
    );
    println!(
        "branches       {} ({:.1}%, {:.1}% taken)",
        branches,
        branches as f64 * 100.0 / n,
        if branches > 0 {
            taken as f64 * 100.0 / branches as f64
        } else {
            0.0
        }
    );
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("gen") => {
            let mut seed = 0u64;
            let mut instructions = 1_000_000usize;
            let mut spec_like = false;
            let mut out = None;
            let mut it = argv[1..].iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--seed" => seed = it.next().and_then(|v| v.parse().ok()).unwrap_or(0),
                    "--instructions" => {
                        instructions = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or(instructions)
                    }
                    "--spec-like" => spec_like = true,
                    "--out" => out = it.next().cloned(),
                    other => {
                        eprintln!("unknown flag {other}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            let Some(path) = out else {
                eprintln!("gen requires --out FILE");
                return ExitCode::FAILURE;
            };
            let spec = if spec_like {
                WorkloadSpec::spec_like(seed)
            } else {
                WorkloadSpec::server_like(seed)
            };
            let insts: Vec<TraceInst> = TraceGenerator::new(&spec).take(instructions).collect();
            let file = match File::create(&path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot create {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = write_trace(BufWriter::new(file), &insts) {
                eprintln!("write failed: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "wrote {} instructions of {} to {path}",
                insts.len(),
                spec.name
            );
            summarize(&insts);
            ExitCode::SUCCESS
        }
        Some("info") => {
            let Some(path) = argv.get(1) else {
                eprintln!("info requires a FILE");
                return ExitCode::FAILURE;
            };
            let file = match File::open(path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot open {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match read_trace(BufReader::new(file)) {
                Ok(insts) => {
                    summarize(&insts);
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("not a valid itpx trace: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("convert") => {
            let Some(input) = argv.get(1) else {
                eprintln!("convert requires a CHAMPSIM_FILE");
                return ExitCode::FAILURE;
            };
            let mut out = None;
            let mut limit = usize::MAX;
            let mut it = argv[2..].iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--out" => out = it.next().cloned(),
                    "--limit" => {
                        limit = it.next().and_then(|v| v.parse().ok()).unwrap_or(usize::MAX)
                    }
                    other => {
                        eprintln!("unknown flag {other}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            let Some(path) = out else {
                eprintln!("convert requires --out FILE");
                return ExitCode::FAILURE;
            };
            let file = match File::open(input) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot open {input}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let insts = match itpx_trace::read_champsim(BufReader::new(file), limit) {
                Ok(i) => i,
                Err(e) => {
                    eprintln!("cannot read ChampSim trace: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if insts.is_empty() {
                eprintln!("no instructions decoded (is the file decompressed?)");
                return ExitCode::FAILURE;
            }
            let outfile = match File::create(&path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot create {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = write_trace(BufWriter::new(outfile), &insts) {
                eprintln!("write failed: {e}");
                return ExitCode::FAILURE;
            }
            println!("converted {} instructions to {path}", insts.len());
            summarize(&insts);
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("usage: itpx-trace <gen|info|convert> ...");
            ExitCode::FAILURE
        }
    }
}
