//! `itpx` — command-line front end for the simulator.
//!
//! ```text
//! itpx run   [--preset NAME] [--seed N] [--instructions N] [--warmup N]
//!            [--spec-like] [--trace FILE] [--itlb N] [--stlb N]
//!            [--split-stlb] [--llc lru|ship|mockingjay]
//!            [--huge-pages FRACTION]
//! itpx smt   [--preset NAME] [--pair N] [--instructions N] [--warmup N]
//! itpx presets
//! ```
//!
//! Examples:
//!
//! ```sh
//! itpx run --preset iTP+xPTP --seed 7 --instructions 500000
//! itpx smt --preset TDRRIP --pair 2
//! ```

use itpx::prelude::*;
use itpx_core::presets::{BuildConfig, LlcChoice};
use itpx_trace::suites::smt_suite;
use itpx_vm::HugePagePolicy;
use std::process::ExitCode;

fn parse_preset(name: &str) -> Option<Preset> {
    Preset::EVALUATED
        .into_iter()
        .chain([Preset::ItpXptpStatic, Preset::ItpXptpEmissary])
        .find(|p| p.name().eq_ignore_ascii_case(name))
}

#[derive(Debug)]
struct Args {
    preset: Preset,
    seed: u64,
    pair: usize,
    instructions: u64,
    warmup: u64,
    spec_like: bool,
    trace: Option<String>,
    itlb: Option<usize>,
    stlb: Option<usize>,
    split_stlb: bool,
    llc: LlcChoice,
    huge_pages: f64,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            preset: Preset::ItpXptp,
            seed: 0,
            pair: 0,
            instructions: 400_000,
            warmup: 100_000,
            spec_like: false,
            trace: None,
            itlb: None,
            stlb: None,
            split_stlb: false,
            llc: LlcChoice::Lru,
            huge_pages: 0.0,
        }
    }
}

fn parse(mut argv: std::env::Args) -> Result<(String, Args), String> {
    let _ = argv.next();
    let cmd = argv
        .next()
        .ok_or("missing subcommand (run | smt | presets)")?;
    let mut args = Args::default();
    let mut it = argv.peekable();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().ok_or(format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--preset" => {
                let v = value("--preset")?;
                args.preset =
                    parse_preset(&v).ok_or(format!("unknown preset {v}; see `itpx presets`"))?;
            }
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--pair" => args.pair = value("--pair")?.parse().map_err(|e| format!("{e}"))?,
            "--instructions" => {
                args.instructions = value("--instructions")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--warmup" => args.warmup = value("--warmup")?.parse().map_err(|e| format!("{e}"))?,
            "--spec-like" => args.spec_like = true,
            "--trace" => args.trace = Some(value("--trace")?),
            "--itlb" => args.itlb = Some(value("--itlb")?.parse().map_err(|e| format!("{e}"))?),
            "--stlb" => args.stlb = Some(value("--stlb")?.parse().map_err(|e| format!("{e}"))?),
            "--split-stlb" => args.split_stlb = true,
            "--llc" => {
                args.llc = match value("--llc")?.to_ascii_lowercase().as_str() {
                    "lru" => LlcChoice::Lru,
                    "ship" => LlcChoice::Ship,
                    "mockingjay" => LlcChoice::Mockingjay,
                    other => return Err(format!("unknown LLC policy {other}")),
                }
            }
            "--huge-pages" => {
                args.huge_pages = value("--huge-pages")?.parse().map_err(|e| format!("{e}"))?;
                if !(0.0..=1.0).contains(&args.huge_pages) {
                    return Err("--huge-pages wants a fraction in [0,1]".into());
                }
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok((cmd, args))
}

fn config_for(args: &Args) -> SystemConfig {
    let mut cfg = SystemConfig::asplos25();
    if let Some(n) = args.itlb {
        cfg = cfg.with_itlb_entries(n);
    }
    if let Some(n) = args.stlb {
        cfg = cfg.with_stlb_entries(n);
    }
    cfg = cfg.with_split_stlb(args.split_stlb);
    cfg.with_huge_pages(HugePagePolicy::uniform(args.huge_pages, 0x99))
}

fn print_output(out: &itpx_cpu::SimulationOutput) {
    println!("preset        {}", out.preset);
    println!("llc policy    {}", out.llc_policy);
    for t in &out.threads {
        println!(
            "thread {:<12} {:>9} instructions  IPC {:.4}  itrans {:.1}%  mispred/1k {:.1}",
            t.workload,
            t.instructions,
            t.ipc(),
            t.itrans_stall_fraction() * 100.0,
            t.mispredictions as f64 * 1000.0 / t.instructions as f64,
        );
    }
    let b = out.stlb_breakdown();
    println!(
        "STLB          MPKI {:.2} (instr {:.2} / data {:.2}), avg miss {:.1} cy",
        out.stlb_mpki(),
        b.instr,
        b.data,
        out.stlb.avg_miss_latency()
    );
    let l2 = out.l2c_breakdown();
    println!(
        "L2C           MPKI {:.2} (data-PTE {:.2}, instr-PTE {:.2}), avg miss {:.1} cy",
        out.l2c_mpki(),
        l2.data_pte,
        l2.instr_pte,
        out.l2c.avg_miss_latency()
    );
    println!(
        "LLC           MPKI {:.2}, avg miss {:.1} cy",
        out.llc_mpki(),
        out.llc.avg_miss_latency()
    );
    println!(
        "walks         {} total ({} instr / {} data), avg {:.1} cy, {:.2} refs",
        out.walker.walks,
        out.walker.instruction_walks,
        out.walker.data_walks,
        out.walker.avg_latency,
        out.walker.avg_memory_refs
    );
    println!(
        "DRAM          {} reads / {} writes",
        out.dram_reads, out.dram_writes
    );
    if let Some(f) = out.xptp_enabled_fraction {
        println!("xPTP active   {:.0}% of epochs", f * 100.0);
    }
    println!("aggregate IPC {:.4}", out.ipc());
}

fn main() -> ExitCode {
    let (cmd, args) = match parse(std::env::args()) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}\nusage: itpx <run|smt|presets> [flags] (see --help in the docs)");
            return ExitCode::FAILURE;
        }
    };
    let build = BuildConfig {
        llc: args.llc,
        ..BuildConfig::default()
    };
    match cmd.as_str() {
        "presets" => {
            for p in Preset::EVALUATED
                .into_iter()
                .chain([Preset::ItpXptpStatic, Preset::ItpXptpEmissary])
            {
                println!("{}", p.name());
            }
            ExitCode::SUCCESS
        }
        "run" => {
            let cfg = config_for(&args);
            let sim = if let Some(path) = &args.trace {
                let file = match std::fs::File::open(path) {
                    Ok(f) => f,
                    Err(e) => {
                        eprintln!("cannot open {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let insts = match itpx_trace::read_trace(std::io::BufReader::new(file)) {
                    Ok(i) => i,
                    Err(e) => {
                        eprintln!("not a valid itpx trace: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                println!(
                    "workload      {path} (replayed, {} instructions/loop)",
                    insts.len()
                );
                Simulation::replay(
                    &cfg,
                    args.preset,
                    path.clone(),
                    insts,
                    args.instructions,
                    args.warmup,
                )
            } else {
                let w = if args.spec_like {
                    WorkloadSpec::spec_like(args.seed)
                } else {
                    WorkloadSpec::server_like(args.seed)
                }
                .instructions(args.instructions)
                .warmup(args.warmup);
                println!("workload      {} (seed {})", w.name, args.seed);
                Simulation::single_thread(&cfg, args.preset, &w)
            };
            let out = sim.build_config(build).run();
            print_output(&out);
            ExitCode::SUCCESS
        }
        "smt" => {
            let cfg = config_for(&args);
            let mut pair = smt_suite(args.pair + 1).remove(args.pair);
            pair.a = pair.a.instructions(args.instructions).warmup(args.warmup);
            pair.b = pair.b.instructions(args.instructions).warmup(args.warmup);
            println!("pair          {} ({})", pair.name(), pair.category.name());
            let out = Simulation::smt(&cfg, args.preset, &pair)
                .build_config(build)
                .run();
            print_output(&out);
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown subcommand {other}; expected run | smt | presets");
            ExitCode::FAILURE
        }
    }
}
