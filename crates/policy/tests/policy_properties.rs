//! Property tests: every policy is safe to drive with arbitrary access
//! sequences, and the recency stack stays a permutation.

use itpx_policy::*;
use itpx_types::{FillClass, TranslationKind};
use proptest::prelude::*;

const SETS: usize = 4;
const WAYS: usize = 8;

#[derive(Debug, Clone)]
enum Op {
    Fill { set: usize, way: usize, kind: u8 },
    Hit { set: usize, way: usize, kind: u8 },
    Victim { set: usize },
    Evict { set: usize, way: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..SETS, 0..WAYS, 0u8..4).prop_map(|(set, way, kind)| Op::Fill { set, way, kind }),
        (0..SETS, 0..WAYS, 0u8..4).prop_map(|(set, way, kind)| Op::Hit { set, way, kind }),
        (0..SETS,).prop_map(|(set,)| Op::Victim { set }),
        (0..SETS, 0..WAYS).prop_map(|(set, way)| Op::Evict { set, way }),
    ]
}

fn cache_meta(kind: u8, i: u64) -> CacheMeta {
    let fill = match kind {
        0 => FillClass::DataPayload,
        1 => FillClass::InstrPayload,
        2 => FillClass::DataPte,
        _ => FillClass::InstrPte,
    };
    CacheMeta {
        block: i,
        pc: i * 13 + 7,
        stlb_miss: kind == 0 && i.is_multiple_of(3),
        ..CacheMeta::demand(0, fill)
    }
}

fn tlb_meta(kind: u8, i: u64) -> TlbMeta {
    TlbMeta {
        vpn: i,
        pc: i * 29 + 3,
        kind: if kind.is_multiple_of(2) {
            TranslationKind::Instruction
        } else {
            TranslationKind::Data
        },
        thread: itpx_types::ThreadId(0),
    }
}

fn drive_cache(policy: &mut dyn Policy<CacheMeta>, ops: &[Op]) -> Result<(), TestCaseError> {
    for (i, op) in ops.iter().enumerate() {
        let m = |k| cache_meta(k, i as u64);
        match *op {
            Op::Fill { set, way, kind } => policy.on_fill(set, way, &m(kind)),
            Op::Hit { set, way, kind } => policy.on_hit(set, way, &m(kind)),
            Op::Victim { set } => {
                let v = policy.victim(set, &m(0));
                prop_assert!(v < WAYS, "victim {v} out of range");
            }
            Op::Evict { set, way } => policy.on_evict(set, way),
        }
    }
    Ok(())
}

fn drive_tlb(policy: &mut dyn Policy<TlbMeta>, ops: &[Op]) -> Result<(), TestCaseError> {
    for (i, op) in ops.iter().enumerate() {
        let m = |k| tlb_meta(k, i as u64);
        match *op {
            Op::Fill { set, way, kind } => policy.on_fill(set, way, &m(kind)),
            Op::Hit { set, way, kind } => policy.on_hit(set, way, &m(kind)),
            Op::Victim { set } => {
                let v = policy.victim(set, &m(0));
                prop_assert!(v < WAYS, "victim {v} out of range");
            }
            Op::Evict { set, way } => policy.on_evict(set, way),
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cache_policies_never_misbehave(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut policies: Vec<CachePolicy> = vec![
            Box::new(Lru::new(SETS, WAYS)),
            Box::new(TreePlru::new(SETS, WAYS)),
            Box::new(RandomEvict::new(WAYS, 1)),
            Box::new(Srrip::new(SETS, WAYS)),
            Box::new(Brrip::new(SETS, WAYS, 2)),
            Box::new(Drrip::new(SETS, WAYS, 3)),
            Box::new(Ship::new(SETS, WAYS)),
            Box::new(Mockingjay::new(SETS, WAYS)),
            Box::new(Ptp::new(SETS, WAYS)),
            Box::new(Tdrrip::new(SETS, WAYS, 4)),
        ];
        for p in &mut policies {
            drive_cache(p.as_mut(), &ops)?;
        }
    }

    #[test]
    fn tlb_policies_never_misbehave(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut policies: Vec<TlbPolicy> = vec![
            Box::new(Lru::new(SETS, WAYS)),
            Box::new(Chirp::new(SETS, WAYS)),
            Box::new(ProbKeepInstrLru::new(SETS, WAYS, 0.8, 5)),
        ];
        for p in &mut policies {
            drive_tlb(p.as_mut(), &ops)?;
        }
    }

    #[test]
    fn recency_stack_stays_a_permutation(
        ops in prop::collection::vec((0usize..WAYS, 0usize..WAYS), 1..100)
    ) {
        let mut rs = RecencyStack::new(1, WAYS);
        for &(way, depth) in &ops {
            if depth % 2 == 0 {
                rs.touch(0, way);
            } else {
                rs.place_at_depth(0, way, depth);
            }
            let mut seen: Vec<usize> = rs.iter_mru_to_lru(0).collect();
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..WAYS).collect::<Vec<_>>());
        }
    }

    #[test]
    fn lru_victim_is_least_recently_touched(
        touches in prop::collection::vec(0usize..WAYS, WAYS..64)
    ) {
        let mut p = Lru::new(1, WAYS);
        let mut last_touch = [0usize; WAYS];
        for (t, &way) in touches.iter().enumerate() {
            p.on_hit(0, way, &cache_meta(0, way as u64));
            last_touch[way] = t + 1;
        }
        let v = Policy::<CacheMeta>::victim(&mut p, 0, &cache_meta(0, 0));
        let oldest = (0..WAYS).min_by_key(|&w| last_touch[w]).unwrap();
        // Untouched ways (time 0) tie in model order; only check timestamp.
        prop_assert!(last_touch[v] <= last_touch[oldest]);
    }
}
