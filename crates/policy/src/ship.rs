//! SHiP-PC (Wu et al., MICRO 2011): signature-based hit prediction on top
//! of RRIP. Used by the paper as an LLC replacement baseline (Section 6.3).

use crate::meta::CacheMeta;
use crate::rrip::{RripState, RRPV_LONG, RRPV_MAX};
use crate::traits::Policy;
use itpx_types::SetGrid;

const SHCT_BITS: u32 = 14;
const SHCT_MAX: u8 = 7; // 3-bit saturating counters

/// Signature-based Hit Predictor.
///
/// Each block remembers the PC signature that filled it and whether it was
/// re-referenced. Evictions without reuse train the signature's counter
/// down; hits train it up. Fills from signatures with a zero counter are
/// predicted dead and inserted at the distant RRPV.
#[derive(Debug, Clone)]
pub struct Ship {
    state: RripState,
    shct: Vec<u8>,
    // Per-block training state.
    signature: SetGrid<u16>,
    outcome: SetGrid<bool>,
}

impl Ship {
    /// Creates a SHiP policy.
    pub fn new(sets: usize, ways: usize) -> Self {
        Self {
            state: RripState::new(sets, ways),
            shct: vec![1; 1 << SHCT_BITS],
            signature: SetGrid::new(sets, ways, 0),
            outcome: SetGrid::new(sets, ways, false),
        }
    }

    fn sig(pc: u64) -> u16 {
        // Fold the PC into SHCT_BITS bits.
        let x = pc ^ (pc >> SHCT_BITS) ^ (pc >> (2 * SHCT_BITS));
        (x as u16) & ((1 << SHCT_BITS) - 1) as u16
    }

    /// Current counter value for a PC's signature (for tests/inspection).
    pub fn counter_for_pc(&self, pc: u64) -> u8 {
        // sig() masks to SHCT_BITS, within shct's 2^SHCT_BITS entries
        self.shct[Self::sig(pc) as usize]
    }
}

impl Policy<CacheMeta> for Ship {
    fn on_fill(&mut self, set: usize, way: usize, meta: &CacheMeta) {
        let sig = Self::sig(meta.pc);
        self.signature.row_mut(set)[way] = sig;
        self.outcome.row_mut(set)[way] = false;
        let predicted_dead = self.shct[sig as usize] == 0;
        let v = if predicted_dead { RRPV_MAX } else { RRPV_LONG };
        self.state.set_rrpv(set, way, v);
    }

    fn on_hit(&mut self, set: usize, way: usize, _meta: &CacheMeta) {
        self.state.set_rrpv(set, way, 0);
        if !self.outcome.row(set)[way] {
            self.outcome.row_mut(set)[way] = true;
            let sig = self.signature.row(set)[way] as usize;
            self.shct[sig] = (self.shct[sig] + 1).min(SHCT_MAX);
        }
    }

    fn victim(&mut self, set: usize, _incoming: &CacheMeta) -> usize {
        self.state.victim(set)
    }

    fn on_evict(&mut self, set: usize, way: usize) {
        if !self.outcome.row(set)[way] {
            let sig = self.signature.row(set)[way] as usize;
            self.shct[sig] = self.shct[sig].saturating_sub(1);
        }
    }

    fn name(&self) -> &'static str {
        "ship"
    }

    fn meta_bits(&self, sets: usize, ways: usize) -> u64 {
        // Per entry: 2-bit RRPV + SHCT_BITS signature + 1 outcome bit;
        // global: the 3-bit SHCT table.
        sets as u64 * ways as u64 * (2 + SHCT_BITS as u64 + 1) + 3 * (1u64 << SHCT_BITS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itpx_types::FillClass;

    fn m(block: u64, pc: u64) -> CacheMeta {
        CacheMeta {
            pc,
            ..CacheMeta::demand(block, FillClass::DataPayload)
        }
    }

    #[test]
    fn dead_signature_trains_down_and_inserts_distant() {
        let mut p = Ship::new(1, 2);
        let pc = 0x400;
        // Fill and evict without reuse repeatedly: counter goes to 0.
        for i in 0..4 {
            p.on_fill(0, 0, &m(i, pc));
            p.on_evict(0, 0);
        }
        assert_eq!(p.counter_for_pc(pc), 0);
        // Next fill from this PC is predicted dead -> distant RRPV, so it
        // becomes the victim even against a fresh long-interval block.
        p.on_fill(0, 0, &m(50, pc));
        p.on_fill(0, 1, &m(51, 0x999));
        assert_eq!(p.victim(0, &m(52, 0x999)), 0);
    }

    #[test]
    fn reused_signature_trains_up() {
        let mut p = Ship::new(1, 2);
        let pc = 0x400;
        let before = p.counter_for_pc(pc);
        p.on_fill(0, 0, &m(1, pc));
        p.on_hit(0, 0, &m(1, pc));
        assert_eq!(p.counter_for_pc(pc), before + 1);
        // A second hit on the same generation does not double-train.
        p.on_hit(0, 0, &m(1, pc));
        assert_eq!(p.counter_for_pc(pc), before + 1);
    }

    #[test]
    fn eviction_after_reuse_does_not_train_down() {
        let mut p = Ship::new(1, 1);
        let pc = 0x8;
        p.on_fill(0, 0, &m(1, pc));
        p.on_hit(0, 0, &m(1, pc));
        let c = p.counter_for_pc(pc);
        p.on_evict(0, 0);
        assert_eq!(p.counter_for_pc(pc), c);
    }
}
