//! Phase adaptability for iTP+xPTP (paper Section 4.3.1).
//!
//! xPTP helps while the STLB is under pressure (lots of data page walks to
//! absorb) but can hurt during phases with low STLB pressure, when
//! protecting data PTEs just wastes L2C capacity. The paper's fix is a tiny
//! monitor: two counters and a 1-bit status register. Every 1000 retired
//! instructions the STLB miss count is compared against a threshold `T1`;
//! the status bit then selects xPTP or plain LRU victim selection for the
//! next epoch.
//!
//! This module provides the three pieces:
//!
//! * [`XptpSwitch`] — the shared 1-bit status register,
//! * [`StlbPressureMonitor`] — the counters, owned by the simulated system
//!   which reports retired instructions and STLB misses,
//! * [`AdaptiveXptp`] — an L2C policy that applies xPTP victim selection
//!   when the switch is on and degenerates to LRU when it is off (the
//!   paper notes xPTP *is* LRU when its steps a–d are skipped).

use crate::xptp::{Xptp, XptpParams};
use crate::{CacheMeta, Policy, RecencyStack};
use itpx_types::SetGrid;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The 1-bit status register shared between the monitor (which writes it)
/// and the adaptive L2C policy (which reads it).
#[derive(Debug, Clone, Default)]
pub struct XptpSwitch {
    enabled: Arc<AtomicBool>,
}

impl XptpSwitch {
    /// Creates a switch, initially off (LRU behavior).
    pub fn new() -> Self {
        Self::default()
    }

    /// Current state.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Sets the state (called by the monitor at epoch boundaries).
    pub fn set(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }
}

/// Default epoch length: the paper compares the miss counter against `T1`
/// every 1000 dynamic instructions.
pub const DEFAULT_EPOCH_INSTRUCTIONS: u64 = 1000;

/// Default `T1`: one STLB miss per epoch, i.e. STLB MPKI > 1.0 — the same
/// pressure level the paper uses to select its evaluation workloads.
pub const DEFAULT_T1: u64 = 1;

/// The STLB-pressure monitor: counts retired instructions and STLB misses,
/// and flips the [`XptpSwitch`] at each epoch boundary.
#[derive(Debug)]
pub struct StlbPressureMonitor {
    switch: XptpSwitch,
    epoch_instructions: u64,
    t1: u64,
    instructions: u64,
    misses: u64,
    epochs_enabled: u64,
    epochs_total: u64,
}

impl StlbPressureMonitor {
    /// Creates a monitor with the paper's defaults (epoch = 1000
    /// instructions, `T1` = 1 miss).
    pub fn new(switch: XptpSwitch) -> Self {
        Self::with_params(switch, DEFAULT_EPOCH_INSTRUCTIONS, DEFAULT_T1)
    }

    /// Creates a monitor with explicit epoch length and threshold.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_instructions == 0`.
    pub fn with_params(switch: XptpSwitch, epoch_instructions: u64, t1: u64) -> Self {
        assert!(epoch_instructions > 0, "epoch length must be non-zero");
        Self {
            switch,
            epoch_instructions,
            t1,
            instructions: 0,
            misses: 0,
            epochs_enabled: 0,
            epochs_total: 0,
        }
    }

    /// Records `n` retired instructions; closes the epoch (comparing the
    /// miss counter to `T1` and resetting both counters) when the epoch
    /// length is reached.
    pub fn on_retire(&mut self, n: u64) {
        self.instructions += n;
        while self.instructions >= self.epoch_instructions {
            self.instructions -= self.epoch_instructions;
            let enable = self.misses > self.t1;
            self.switch.set(enable);
            self.epochs_total += 1;
            if enable {
                self.epochs_enabled += 1;
            }
            self.misses = 0;
        }
    }

    /// Records one STLB miss.
    pub fn on_stlb_miss(&mut self) {
        self.misses += 1;
    }

    /// Fraction of completed epochs during which xPTP was enabled.
    pub fn enabled_fraction(&self) -> f64 {
        if self.epochs_total == 0 {
            0.0
        } else {
            self.epochs_enabled as f64 / self.epochs_total as f64
        }
    }

    /// The switch this monitor drives.
    pub fn switch(&self) -> &XptpSwitch {
        &self.switch
    }
}

/// xPTP with the adaptive enable bit: victim selection follows Figure 6
/// while the switch is on and plain LRU while it is off. Insertion and
/// promotion (including `Type`-bit maintenance) are identical in both
/// modes, so no state is lost across phase changes.
#[derive(Debug)]
pub struct AdaptiveXptp {
    params: XptpParams,
    switch: XptpSwitch,
    stack: RecencyStack,
    is_data_pte: SetGrid<bool>,
}

impl AdaptiveXptp {
    /// Creates an adaptive xPTP policy controlled by `switch`.
    ///
    /// # Panics
    ///
    /// Panics if `params.k` is 0 or exceeds `ways`.
    pub fn new(sets: usize, ways: usize, params: XptpParams, switch: XptpSwitch) -> Self {
        assert!(
            params.k >= 1 && params.k <= ways,
            "xPTP requires 1 <= K <= ways (K={}, ways={ways})",
            params.k
        );
        Self {
            params,
            switch,
            stack: RecencyStack::new(sets, ways),
            is_data_pte: SetGrid::new(sets, ways, false),
        }
    }

    /// The switch controlling this policy.
    pub fn switch(&self) -> &XptpSwitch {
        &self.switch
    }
}

impl Policy<CacheMeta> for AdaptiveXptp {
    fn on_fill(&mut self, set: usize, way: usize, meta: &CacheMeta) {
        self.is_data_pte.row_mut(set)[way] = meta.fill.is_data_pte();
        self.stack.touch(set, way);
    }

    fn on_hit(&mut self, set: usize, way: usize, meta: &CacheMeta) {
        if meta.fill.is_data_pte() {
            self.is_data_pte.row_mut(set)[way] = true;
        }
        self.stack.touch(set, way);
    }

    fn victim(&mut self, set: usize, _incoming: &CacheMeta) -> usize {
        if self.switch.is_enabled() {
            Xptp::select_victim(&self.stack, self.is_data_pte.row(set), set, self.params.k)
        } else {
            self.stack.lru(set)
        }
    }

    fn name(&self) -> &'static str {
        "xptp/lru"
    }

    fn meta_bits(&self, sets: usize, ways: usize) -> u64 {
        // xPTP storage + the shared 1-bit status register (the monitor's
        // counters belong to the core, not the replacement policy).
        sets as u64 * ways as u64 * (crate::traits::rank_bits(ways) + 1) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itpx_types::FillClass;

    fn m(b: u64, fill: FillClass) -> CacheMeta {
        CacheMeta::demand(b, fill)
    }

    #[test]
    fn switch_starts_off_and_toggles() {
        let s = XptpSwitch::new();
        assert!(!s.is_enabled());
        s.set(true);
        assert!(s.is_enabled());
        let clone = s.clone();
        clone.set(false);
        assert!(!s.is_enabled(), "clones share the status bit");
    }

    #[test]
    fn monitor_enables_above_t1() {
        let s = XptpSwitch::new();
        let mut mon = StlbPressureMonitor::with_params(s.clone(), 1000, 1);
        for _ in 0..5 {
            mon.on_stlb_miss();
        }
        mon.on_retire(1000);
        assert!(s.is_enabled());
        assert!((mon.enabled_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn monitor_disables_at_or_below_t1() {
        let s = XptpSwitch::new();
        let mut mon = StlbPressureMonitor::with_params(s.clone(), 1000, 1);
        s.set(true);
        mon.on_stlb_miss(); // exactly T1 misses: not *exceeding* T1
        mon.on_retire(1000);
        assert!(!s.is_enabled());
    }

    #[test]
    fn monitor_counts_partial_retires_across_epochs() {
        let s = XptpSwitch::new();
        let mut mon = StlbPressureMonitor::with_params(s.clone(), 10, 0);
        mon.on_stlb_miss();
        mon.on_retire(4);
        assert!(!s.is_enabled(), "epoch not complete yet");
        mon.on_retire(6);
        assert!(s.is_enabled());
        // Next epoch has zero misses → disabled again.
        mon.on_retire(10);
        assert!(!s.is_enabled());
        assert!((mon.enabled_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn disabled_behaves_as_lru_enabled_as_xptp() {
        let s = XptpSwitch::new();
        let mut p = AdaptiveXptp::new(1, 4, XptpParams { k: 4 }, s.clone());
        p.on_fill(0, 0, &m(0, FillClass::DataPte)); // LRU block, data PTE
        for w in 1..4 {
            p.on_fill(0, w, &m(w as u64, FillClass::DataPayload));
        }
        // Off: LRU victim, even though it is a data PTE.
        assert_eq!(p.victim(0, &m(9, FillClass::DataPayload)), 0);
        // On: the data PTE is protected.
        s.set(true);
        assert_eq!(p.victim(0, &m(9, FillClass::DataPayload)), 1);
    }

    #[test]
    fn type_bits_survive_phase_changes() {
        let s = XptpSwitch::new();
        let mut p = AdaptiveXptp::new(1, 2, XptpParams { k: 2 }, s.clone());
        p.on_fill(0, 0, &m(0, FillClass::DataPte));
        p.on_fill(0, 1, &m(1, FillClass::DataPayload));
        s.set(false);
        let _ = p.victim(0, &m(2, FillClass::DataPayload));
        s.set(true);
        // The Type bit recorded while "off" still protects the block.
        assert_eq!(p.victim(0, &m(3, FillClass::DataPayload)), 1);
    }

    #[test]
    #[should_panic(expected = "epoch length")]
    fn zero_epoch_panics() {
        let _ = StlbPressureMonitor::with_params(XptpSwitch::new(), 0, 1);
    }

    #[test]
    fn default_epoch_closes_at_exactly_1000_instructions() {
        let s = XptpSwitch::new();
        let mut mon = StlbPressureMonitor::new(s.clone());
        mon.on_stlb_miss();
        mon.on_stlb_miss();
        mon.on_retire(DEFAULT_EPOCH_INSTRUCTIONS - 1);
        assert!(!s.is_enabled(), "999 retires must not close the epoch");
        assert!(mon.enabled_fraction() == 0.0, "no epoch completed yet");
        mon.on_retire(1);
        assert!(s.is_enabled(), "the 1000th retire closes the epoch");
        assert!((mon.enabled_fraction() - 1.0).abs() < 1e-12);
        // Counters reset at the boundary: a second epoch with zero misses
        // must disable again, exactly at instruction 2000.
        mon.on_retire(DEFAULT_EPOCH_INSTRUCTIONS - 1);
        assert!(s.is_enabled(), "decision holds until the next boundary");
        mon.on_retire(1);
        assert!(!s.is_enabled(), "miss counter was reset at 1000");
    }

    #[test]
    fn one_retire_call_can_close_several_epochs() {
        let s = XptpSwitch::new();
        let mut mon = StlbPressureMonitor::new(s.clone());
        for _ in 0..(DEFAULT_T1 + 1) {
            mon.on_stlb_miss();
        }
        s.set(true);
        mon.on_retire(3 * DEFAULT_EPOCH_INSTRUCTIONS);
        // Epoch 1 sees the misses and enables; epochs 2 and 3 see the reset
        // counter and disable. The last decision wins.
        assert!(!s.is_enabled());
        assert!((mon.enabled_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn default_t1_boundary_below_at_and_above() {
        // misses < T1, == T1, == T1 + 1 with the paper's defaults: only
        // strictly exceeding T1 enables xPTP.
        for (misses, expect) in [
            (DEFAULT_T1 - 1, false),
            (DEFAULT_T1, false),
            (DEFAULT_T1 + 1, true),
        ] {
            let s = XptpSwitch::new();
            let mut mon = StlbPressureMonitor::new(s.clone());
            s.set(!expect); // prove the epoch decision overwrites the bit
            for _ in 0..misses {
                mon.on_stlb_miss();
            }
            mon.on_retire(DEFAULT_EPOCH_INSTRUCTIONS);
            assert_eq!(
                s.is_enabled(),
                expect,
                "{misses} miss(es) against T1 = {DEFAULT_T1}"
            );
        }
    }
}
