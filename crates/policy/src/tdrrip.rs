//! T-DRRIP — translation-aware DRRIP (Vasudha & Panda, ISPASS 2022):
//! prioritizes blocks containing PTEs and deprioritizes demand blocks
//! brought in by accesses that also missed in the STLB. Like PTP, it does
//! not distinguish instruction PTEs from data PTEs.

use crate::meta::CacheMeta;
use crate::rrip::{RripState, SetDuel, RRPV_LONG, RRPV_MAX};
use crate::traits::Policy;
use itpx_types::Rng64;

/// Translation-aware DRRIP.
///
/// Insertion rules, in priority order:
///
/// 1. blocks holding PTEs (either kind) insert at RRPV 0 (keep),
/// 2. demand blocks whose triggering access missed the STLB insert at the
///    distant RRPV (evict soon — their latency is dominated by the page
///    walk anyway),
/// 3. everything else follows DRRIP set-dueling insertion.
#[derive(Debug, Clone)]
pub struct Tdrrip {
    state: RripState,
    duel: SetDuel,
    rng: Rng64,
}

impl Tdrrip {
    /// Creates a T-DRRIP policy with a deterministic seed.
    pub fn new(sets: usize, ways: usize, seed: u64) -> Self {
        Self {
            state: RripState::new(sets, ways),
            duel: SetDuel::new(sets),
            rng: Rng64::new(seed),
        }
    }
}

impl Policy<CacheMeta> for Tdrrip {
    fn on_fill(&mut self, set: usize, way: usize, meta: &CacheMeta) {
        self.duel.on_fill(set);
        let v = if meta.fill.is_pte() {
            0
        } else if meta.stlb_miss {
            RRPV_MAX
        } else if self.duel.use_primary(set) || self.rng.below(32) == 0 {
            // SRRIP flavor, or BRRIP's occasional long-interval insert.
            RRPV_LONG
        } else {
            RRPV_MAX
        };
        self.state.set_rrpv(set, way, v);
    }

    fn on_hit(&mut self, set: usize, way: usize, _meta: &CacheMeta) {
        self.state.set_rrpv(set, way, 0);
    }

    fn victim(&mut self, set: usize, _incoming: &CacheMeta) -> usize {
        self.state.victim(set)
    }

    fn name(&self) -> &'static str {
        "tdrrip"
    }

    fn meta_bits(&self, sets: usize, ways: usize) -> u64 {
        // DRRIP storage; the PTE/STLB-miss inputs ride the fill metadata.
        sets as u64 * ways as u64 * 2 + crate::traits::PSEL_BITS + crate::traits::RNG_STATE_BITS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itpx_types::FillClass;

    #[test]
    fn pte_blocks_insert_protected() {
        let mut p = Tdrrip::new(4, 4, 1);
        // Follower set 3 avoids leader-set side effects.
        p.on_fill(3, 0, &CacheMeta::demand(0, FillClass::DataPte));
        p.on_fill(3, 1, &CacheMeta::demand(1, FillClass::InstrPte));
        p.on_fill(3, 2, &CacheMeta::demand(2, FillClass::DataPayload));
        p.on_fill(3, 3, &CacheMeta::demand(3, FillClass::DataPayload));
        let v = p.victim(3, &CacheMeta::demand(9, FillClass::DataPayload));
        assert!(v == 2 || v == 3, "PTE ways must not be victims, got {v}");
    }

    #[test]
    fn stlb_missing_demand_blocks_are_first_victims() {
        let mut p = Tdrrip::new(4, 2, 1);
        p.on_fill(
            3,
            0,
            &CacheMeta::demand_stlb_miss(0, FillClass::DataPayload),
        );
        p.on_fill(3, 1, &CacheMeta::demand(1, FillClass::DataPayload));
        assert_eq!(
            p.victim(3, &CacheMeta::demand(9, FillClass::DataPayload)),
            0
        );
    }

    #[test]
    fn hits_promote_to_zero() {
        let mut p = Tdrrip::new(4, 2, 1);
        p.on_fill(
            3,
            0,
            &CacheMeta::demand_stlb_miss(0, FillClass::DataPayload),
        );
        p.on_hit(3, 0, &CacheMeta::demand(0, FillClass::DataPayload));
        p.on_fill(
            3,
            1,
            &CacheMeta::demand_stlb_miss(1, FillClass::DataPayload),
        );
        assert_eq!(
            p.victim(3, &CacheMeta::demand(9, FillClass::DataPayload)),
            1
        );
    }
}
