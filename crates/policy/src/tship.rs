//! T-SHiP — the translation-aware SHiP companion of T-DRRIP (Vasudha &
//! Panda, ISPASS 2022). The original proposal pairs T-DRRIP at the L2C
//! with T-SHiP at the LLC; the paper under reproduction applies only the
//! L2C half (its experiments found that configuration stronger), so this
//! policy is provided as an optional extension for completeness.
//!
//! T-SHiP is SHiP with two translation-aware overrides at insertion:
//! blocks holding PTEs are predicted live regardless of their signature's
//! counter, and demand blocks whose access missed the STLB are predicted
//! dead regardless of it.

use crate::meta::CacheMeta;
use crate::rrip::{RripState, RRPV_LONG, RRPV_MAX};
use crate::traits::Policy;
use itpx_types::SetGrid;

const SHCT_BITS: u32 = 14;
const SHCT_MAX: u8 = 7;

/// Translation-aware SHiP.
#[derive(Debug, Clone)]
pub struct TShip {
    state: RripState,
    shct: Vec<u8>,
    signature: SetGrid<u16>,
    outcome: SetGrid<bool>,
}

impl TShip {
    /// Creates a T-SHiP policy.
    pub fn new(sets: usize, ways: usize) -> Self {
        Self {
            state: RripState::new(sets, ways),
            shct: vec![1; 1 << SHCT_BITS],
            signature: SetGrid::new(sets, ways, 0),
            outcome: SetGrid::new(sets, ways, false),
        }
    }

    fn sig(pc: u64) -> u16 {
        let x = pc ^ (pc >> SHCT_BITS) ^ (pc >> (2 * SHCT_BITS));
        (x as u16) & ((1 << SHCT_BITS) - 1) as u16
    }

    /// Current counter for a PC's signature (for tests).
    pub fn counter_for_pc(&self, pc: u64) -> u8 {
        // sig() masks to SHCT_BITS, within shct's 2^SHCT_BITS entries
        self.shct[Self::sig(pc) as usize]
    }
}

impl Policy<CacheMeta> for TShip {
    fn on_fill(&mut self, set: usize, way: usize, meta: &CacheMeta) {
        let sig = Self::sig(meta.pc);
        self.signature.row_mut(set)[way] = sig;
        self.outcome.row_mut(set)[way] = false;
        let v = if meta.fill.is_pte() {
            // Translation override 1: keep PTE blocks.
            0
        } else if meta.stlb_miss {
            // Translation override 2: evict STLB-missing demand blocks.
            RRPV_MAX
        } else if self.shct[sig as usize] == 0 {
            RRPV_MAX
        } else {
            RRPV_LONG
        };
        self.state.set_rrpv(set, way, v);
    }

    fn on_hit(&mut self, set: usize, way: usize, _meta: &CacheMeta) {
        self.state.set_rrpv(set, way, 0);
        if !self.outcome.row(set)[way] {
            self.outcome.row_mut(set)[way] = true;
            let sig = self.signature.row(set)[way] as usize;
            self.shct[sig] = (self.shct[sig] + 1).min(SHCT_MAX);
        }
    }

    fn victim(&mut self, set: usize, _incoming: &CacheMeta) -> usize {
        self.state.victim(set)
    }

    fn on_evict(&mut self, set: usize, way: usize) {
        if !self.outcome.row(set)[way] {
            let sig = self.signature.row(set)[way] as usize;
            self.shct[sig] = self.shct[sig].saturating_sub(1);
        }
    }

    fn name(&self) -> &'static str {
        "tship"
    }

    fn meta_bits(&self, sets: usize, ways: usize) -> u64 {
        // Identical storage to SHiP: the translation overrides reuse the
        // fill-class wires, costing no extra bits.
        sets as u64 * ways as u64 * (2 + SHCT_BITS as u64 + 1) + 3 * (1u64 << SHCT_BITS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itpx_types::FillClass;

    #[test]
    fn pte_blocks_insert_protected() {
        let mut p = TShip::new(1, 4);
        p.on_fill(0, 0, &CacheMeta::demand(0, FillClass::DataPte));
        p.on_fill(0, 1, &CacheMeta::demand(1, FillClass::InstrPte));
        p.on_fill(0, 2, &CacheMeta::demand(2, FillClass::DataPayload));
        p.on_fill(0, 3, &CacheMeta::demand(3, FillClass::DataPayload));
        let v = p.victim(0, &CacheMeta::demand(9, FillClass::DataPayload));
        assert!(v == 2 || v == 3, "PTE ways must not be first victims");
    }

    #[test]
    fn stlb_missing_blocks_are_first_victims() {
        let mut p = TShip::new(1, 2);
        p.on_fill(
            0,
            0,
            &CacheMeta::demand_stlb_miss(0, FillClass::DataPayload),
        );
        p.on_fill(0, 1, &CacheMeta::demand(1, FillClass::DataPayload));
        assert_eq!(
            p.victim(0, &CacheMeta::demand(9, FillClass::DataPayload)),
            0
        );
    }

    #[test]
    fn ship_training_still_applies_to_plain_payload() {
        let mut p = TShip::new(1, 2);
        let pc = 0x500;
        let m = |b: u64| CacheMeta {
            pc,
            ..CacheMeta::demand(b, FillClass::DataPayload)
        };
        for i in 0..4 {
            p.on_fill(0, 0, &m(i));
            p.on_evict(0, 0);
        }
        assert_eq!(p.counter_for_pc(pc), 0, "dead signature trained down");
        p.on_fill(0, 0, &m(50));
        p.on_fill(0, 1, &CacheMeta::demand(51, FillClass::DataPayload));
        assert_eq!(
            p.victim(0, &CacheMeta::demand(52, FillClass::DataPayload)),
            0,
            "dead-signature block evicted first"
        );
    }
}
