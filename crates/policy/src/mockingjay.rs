//! Simplified Mockingjay (Shah, Jain & Lin, HPCA 2022): reuse-distance
//! prediction driving an estimated-time-remaining (ETR) replacement.
//!
//! The full design uses a sampled cache with partial tags and aging
//! counters; this reproduction keeps the essential mechanism — a per-PC
//! reuse-distance predictor trained on sampled sets, per-line ETR counters
//! decremented on set accesses, and victimization of the line with the
//! largest absolute ETR — and documents the simplifications in DESIGN.md.
//! The paper under reproduction only needs Mockingjay as an LLC comparator
//! (Section 6.3), where it is reported to be mediocre on big-code server
//! workloads.

use crate::meta::CacheMeta;
use crate::traits::Policy;
use itpx_types::SetGrid;

const RDP_BITS: u32 = 12;
const SAMPLE_STRIDE: usize = 8;
const MAX_RD: i32 = 127;
const DEFAULT_RD: i32 = 16;

#[derive(Debug, Clone, Copy)]
struct SampleEntry {
    time: u32,
    sig: u16,
}

/// Per-set sampler history: block -> (last access time, signature), kept
/// sorted by block so scans are deterministic in ascending-key order (the
/// iteration order a `BTreeMap` would give). Backed by one vector whose
/// capacity is fixed at construction: the expiry sweep in `train` bounds
/// the live length, so steady-state training never touches the heap.
#[derive(Debug)]
struct SampleHistory {
    entries: Vec<(u64, SampleEntry)>,
}

impl Clone for SampleHistory {
    fn clone(&self) -> Self {
        // Preserve the reserved capacity (a derived clone would shrink it
        // to the live length and re-introduce steady-state growth).
        let mut entries = Vec::with_capacity(self.entries.capacity());
        entries.extend_from_slice(&self.entries);
        Self { entries }
    }
}

impl SampleHistory {
    fn with_capacity(cap: usize) -> Self {
        Self {
            entries: Vec::with_capacity(cap),
        }
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn get(&self, block: u64) -> Option<SampleEntry> {
        self.entries
            .binary_search_by_key(&block, |&(b, _)| b)
            .ok()
            .map(|i| self.entries[i].1)
    }

    fn insert(&mut self, block: u64, entry: SampleEntry) {
        match self.entries.binary_search_by_key(&block, |&(b, _)| b) {
            Ok(i) => self.entries[i].1 = entry,
            Err(i) => {
                debug_assert!(
                    self.entries.len() < self.entries.capacity(),
                    "sampler exceeded its fixed capacity"
                );
                // itpx-allow: hot-alloc capacity is reserved at construction and bounds the expiry-swept length, so this insert never reallocates
                self.entries.insert(i, (block, entry));
            }
        }
    }

    /// Entry at position `i` in ascending block order.
    fn at(&self, i: usize) -> (u64, SampleEntry) {
        self.entries[i]
    }

    fn remove_at(&mut self, i: usize) -> SampleEntry {
        self.entries.remove(i).1
    }
}

/// Simplified Mockingjay replacement.
#[derive(Debug, Clone)]
pub struct Mockingjay {
    ways: usize,
    /// Estimated time remaining per line, in set-access units.
    etr: SetGrid<i32>,
    /// Per-set access clocks.
    clock: Vec<u32>,
    /// Reuse-distance predictor indexed by PC signature.
    rdp: Vec<i32>,
    /// Sampled per-set history: block -> (last access time, signature).
    /// Block-sorted so expiry scans are deterministic (std `HashMap`
    /// iteration order varies per process and would fail the determinism
    /// lint).
    samples: Vec<SampleHistory>,
}

impl Mockingjay {
    /// Creates a simplified Mockingjay policy.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0 && ways > 0, "Mockingjay needs sets > 0, ways > 0");
        Self {
            ways,
            etr: SetGrid::new(sets, ways, MAX_RD),
            clock: vec![0; sets],
            rdp: vec![DEFAULT_RD; 1 << RDP_BITS],
            // Live length is bounded by the expiry sweep: at most
            // `4 * ways` entries trigger a sweep, which keeps everything
            // younger than `2 * MAX_RD` set accesses — and only one entry
            // is inserted per set access.
            samples: (0..sets.div_ceil(SAMPLE_STRIDE))
                .map(|_| SampleHistory::with_capacity(4 * ways + 2 * MAX_RD as usize + 2))
                .collect(),
        }
    }

    fn sig(pc: u64) -> u16 {
        let x = pc ^ (pc >> RDP_BITS) ^ (pc >> (2 * RDP_BITS));
        (x as u16) & ((1 << RDP_BITS) - 1) as u16
    }

    fn is_sampled(set: usize) -> bool {
        set.is_multiple_of(SAMPLE_STRIDE)
    }

    /// Advances the set clock and ages every line by one set access.
    fn tick(&mut self, set: usize) {
        self.clock[set] = self.clock[set].wrapping_add(1);
        for e in self.etr.row_mut(set) {
            *e -= 1;
        }
    }

    fn train(&mut self, set: usize, meta: &CacheMeta) {
        if !Self::is_sampled(set) {
            return;
        }
        let now = self.clock[set];
        let sig = Self::sig(meta.pc);
        // samples holds ceil(sets / SAMPLE_STRIDE) histories
        let hist = &mut self.samples[set / SAMPLE_STRIDE];
        if let Some(prev) = hist.get(meta.block) {
            let observed = (now.wrapping_sub(prev.time) as i32).min(MAX_RD);
            let cell = &mut self.rdp[prev.sig as usize];
            // Temporal-difference update toward the observed distance.
            *cell += (observed - *cell) / 4 + (observed - *cell).signum();
            *cell = (*cell).clamp(0, MAX_RD);
        }
        hist.insert(meta.block, SampleEntry { time: now, sig });
        // Bound the sampler: expire entries much older than MAX_RD, training
        // their signature toward "scan" (no reuse observed). The sweep is
        // in place (ascending block order, like the old BTreeMap scan).
        if hist.len() > 4 * self.ways {
            let mut i = 0;
            while i < hist.len() {
                let (_, e) = hist.at(i);
                if now.wrapping_sub(e.time) as i32 > 2 * MAX_RD {
                    let e = hist.remove_at(i);
                    let cell = &mut self.rdp[e.sig as usize];
                    *cell = (*cell + 2).min(MAX_RD);
                } else {
                    i += 1;
                }
            }
        }
    }

    fn predict(&self, pc: u64) -> i32 {
        // sig() masks to RDP_BITS, within rdp's 2^RDP_BITS entries
        self.rdp[Self::sig(pc) as usize]
    }

    /// Predicted reuse distance for a PC (exposed for tests).
    pub fn predicted_rd(&self, pc: u64) -> i32 {
        self.predict(pc)
    }
}

impl Policy<CacheMeta> for Mockingjay {
    fn on_fill(&mut self, set: usize, way: usize, meta: &CacheMeta) {
        self.tick(set);
        self.train(set, meta);
        self.etr.row_mut(set)[way] = self.predict(meta.pc);
    }

    fn on_hit(&mut self, set: usize, way: usize, meta: &CacheMeta) {
        self.tick(set);
        self.train(set, meta);
        self.etr.row_mut(set)[way] = self.predict(meta.pc);
    }

    fn victim(&mut self, set: usize, _incoming: &CacheMeta) -> usize {
        // Victimize the line with the largest |ETR|: either the most
        // distant predicted reuse or the most overdue (dead) line.
        let mut best = 0usize;
        let mut best_abs = -1i64;
        for (w, &e) in self.etr.row(set).iter().enumerate() {
            let a = (e as i64).abs();
            if a > best_abs {
                best_abs = a;
                best = w;
            }
        }
        best
    }

    fn name(&self) -> &'static str {
        "mockingjay"
    }

    fn meta_bits(&self, sets: usize, ways: usize) -> u64 {
        // Per line: 8-bit signed ETR. Per set: 32-bit clock. Global: the
        // 7-bit RDP table plus the sampler — one in SAMPLE_STRIDE sets keeps
        // a nominal 4×ways-entry history of (block tag, time, signature).
        let (sets, ways) = (sets as u64, ways as u64);
        let sampler_sets = sets.div_ceil(SAMPLE_STRIDE as u64);
        sets * ways * 8
            + sets * 32
            + 7 * (1u64 << RDP_BITS)
            + sampler_sets * 4 * ways * (64 + 32 + RDP_BITS as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itpx_types::FillClass;

    fn m(block: u64, pc: u64) -> CacheMeta {
        CacheMeta {
            pc,
            ..CacheMeta::demand(block, FillClass::DataPayload)
        }
    }

    #[test]
    fn short_reuse_trains_predictor_down() {
        let mut p = Mockingjay::new(8, 4);
        let pc = 0x1234;
        let before = p.predicted_rd(pc);
        // Re-access the same block on a sampled set with short distance.
        for i in 0..64 {
            p.on_hit(0, 0, &m(7, pc));
            let _ = i;
        }
        assert!(p.predicted_rd(pc) < before);
    }

    #[test]
    fn victim_prefers_largest_abs_etr() {
        let mut p = Mockingjay::new(1, 3);
        p.etr.row_mut(0).copy_from_slice(&[5, -40, 10]);
        let v = p.victim(0, &m(0, 0));
        assert_eq!(v, 1, "overdue line (-40) has the largest |ETR|");
    }

    #[test]
    fn lines_age_with_set_accesses() {
        let mut p = Mockingjay::new(2, 2);
        p.on_fill(1, 0, &m(1, 0x10));
        let e0 = p.etr.row(1)[0];
        p.on_fill(1, 1, &m(2, 0x20));
        assert_eq!(p.etr.row(1)[0], e0 - 1);
    }

    #[test]
    fn unsampled_sets_do_not_grow_history() {
        let mut p = Mockingjay::new(16, 2);
        for i in 0..100 {
            p.on_fill(3, 0, &m(i, 0x30));
        }
        assert!(p.samples.iter().all(|h| h.len() == 0));
    }
}
