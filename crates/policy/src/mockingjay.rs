//! Simplified Mockingjay (Shah, Jain & Lin, HPCA 2022): reuse-distance
//! prediction driving an estimated-time-remaining (ETR) replacement.
//!
//! The full design uses a sampled cache with partial tags and aging
//! counters; this reproduction keeps the essential mechanism — a per-PC
//! reuse-distance predictor trained on sampled sets, per-line ETR counters
//! decremented on set accesses, and victimization of the line with the
//! largest absolute ETR — and documents the simplifications in DESIGN.md.
//! The paper under reproduction only needs Mockingjay as an LLC comparator
//! (Section 6.3), where it is reported to be mediocre on big-code server
//! workloads.

use crate::meta::CacheMeta;
use crate::traits::Policy;
use std::collections::BTreeMap;

const RDP_BITS: u32 = 12;
const SAMPLE_STRIDE: usize = 8;
const MAX_RD: i32 = 127;
const DEFAULT_RD: i32 = 16;

#[derive(Debug, Clone, Copy)]
struct SampleEntry {
    time: u32,
    sig: u16,
}

/// Simplified Mockingjay replacement.
#[derive(Debug, Clone)]
pub struct Mockingjay {
    ways: usize,
    /// Estimated time remaining per line, in set-access units.
    etr: Vec<Vec<i32>>,
    /// Per-set access clocks.
    clock: Vec<u32>,
    /// Reuse-distance predictor indexed by PC signature.
    rdp: Vec<i32>,
    /// Sampled per-set history: block -> (last access time, signature).
    /// Ordered map so expiry scans are deterministic (std `HashMap`
    /// iteration order varies per process and would fail the determinism
    /// lint).
    samples: Vec<BTreeMap<u64, SampleEntry>>,
}

impl Mockingjay {
    /// Creates a simplified Mockingjay policy.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0 && ways > 0, "Mockingjay needs sets > 0, ways > 0");
        Self {
            ways,
            etr: vec![vec![MAX_RD; ways]; sets],
            clock: vec![0; sets],
            rdp: vec![DEFAULT_RD; 1 << RDP_BITS],
            samples: vec![BTreeMap::new(); sets.div_ceil(SAMPLE_STRIDE)],
        }
    }

    fn sig(pc: u64) -> u16 {
        let x = pc ^ (pc >> RDP_BITS) ^ (pc >> (2 * RDP_BITS));
        (x as u16) & ((1 << RDP_BITS) - 1) as u16
    }

    fn is_sampled(set: usize) -> bool {
        set.is_multiple_of(SAMPLE_STRIDE)
    }

    /// Advances the set clock and ages every line by one set access.
    fn tick(&mut self, set: usize) {
        self.clock[set] = self.clock[set].wrapping_add(1);
        for e in &mut self.etr[set] {
            *e -= 1;
        }
    }

    fn train(&mut self, set: usize, meta: &CacheMeta) {
        if !Self::is_sampled(set) {
            return;
        }
        let now = self.clock[set];
        let sig = Self::sig(meta.pc);
        // samples holds ceil(sets / SAMPLE_STRIDE) histories
        let hist = &mut self.samples[set / SAMPLE_STRIDE];
        if let Some(prev) = hist.get(&meta.block).copied() {
            let observed = (now.wrapping_sub(prev.time) as i32).min(MAX_RD);
            let cell = &mut self.rdp[prev.sig as usize];
            // Temporal-difference update toward the observed distance.
            *cell += (observed - *cell) / 4 + (observed - *cell).signum();
            *cell = (*cell).clamp(0, MAX_RD);
        }
        hist.insert(meta.block, SampleEntry { time: now, sig });
        // Bound the sampler: expire entries much older than MAX_RD, training
        // their signature toward "scan" (no reuse observed).
        if hist.len() > 4 * self.ways {
            let expired: Vec<u64> = hist
                .iter()
                .filter(|(_, e)| now.wrapping_sub(e.time) as i32 > 2 * MAX_RD)
                .map(|(&b, _)| b)
                .collect();
            for b in expired {
                if let Some(e) = hist.remove(&b) {
                    let cell = &mut self.rdp[e.sig as usize];
                    *cell = (*cell + 2).min(MAX_RD);
                }
            }
        }
    }

    fn predict(&self, pc: u64) -> i32 {
        // sig() masks to RDP_BITS, within rdp's 2^RDP_BITS entries
        self.rdp[Self::sig(pc) as usize]
    }

    /// Predicted reuse distance for a PC (exposed for tests).
    pub fn predicted_rd(&self, pc: u64) -> i32 {
        self.predict(pc)
    }
}

impl Policy<CacheMeta> for Mockingjay {
    fn on_fill(&mut self, set: usize, way: usize, meta: &CacheMeta) {
        self.tick(set);
        self.train(set, meta);
        self.etr[set][way] = self.predict(meta.pc);
    }

    fn on_hit(&mut self, set: usize, way: usize, meta: &CacheMeta) {
        self.tick(set);
        self.train(set, meta);
        self.etr[set][way] = self.predict(meta.pc);
    }

    fn victim(&mut self, set: usize, _incoming: &CacheMeta) -> usize {
        // Victimize the line with the largest |ETR|: either the most
        // distant predicted reuse or the most overdue (dead) line.
        let mut best = 0usize;
        let mut best_abs = -1i64;
        for (w, &e) in self.etr[set].iter().enumerate() {
            let a = (e as i64).abs();
            if a > best_abs {
                best_abs = a;
                best = w;
            }
        }
        best
    }

    fn name(&self) -> &'static str {
        "mockingjay"
    }

    fn meta_bits(&self, sets: usize, ways: usize) -> u64 {
        // Per line: 8-bit signed ETR. Per set: 32-bit clock. Global: the
        // 7-bit RDP table plus the sampler — one in SAMPLE_STRIDE sets keeps
        // a nominal 4×ways-entry history of (block tag, time, signature).
        let (sets, ways) = (sets as u64, ways as u64);
        let sampler_sets = sets.div_ceil(SAMPLE_STRIDE as u64);
        sets * ways * 8
            + sets * 32
            + 7 * (1u64 << RDP_BITS)
            + sampler_sets * 4 * ways * (64 + 32 + RDP_BITS as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itpx_types::FillClass;

    fn m(block: u64, pc: u64) -> CacheMeta {
        CacheMeta {
            pc,
            ..CacheMeta::demand(block, FillClass::DataPayload)
        }
    }

    #[test]
    fn short_reuse_trains_predictor_down() {
        let mut p = Mockingjay::new(8, 4);
        let pc = 0x1234;
        let before = p.predicted_rd(pc);
        // Re-access the same block on a sampled set with short distance.
        for i in 0..64 {
            p.on_hit(0, 0, &m(7, pc));
            let _ = i;
        }
        assert!(p.predicted_rd(pc) < before);
    }

    #[test]
    fn victim_prefers_largest_abs_etr() {
        let mut p = Mockingjay::new(1, 3);
        p.etr[0] = vec![5, -40, 10];
        let v = p.victim(0, &m(0, 0));
        assert_eq!(v, 1, "overdue line (-40) has the largest |ETR|");
    }

    #[test]
    fn lines_age_with_set_accesses() {
        let mut p = Mockingjay::new(2, 2);
        p.on_fill(1, 0, &m(1, 0x10));
        let e0 = p.etr[1][0];
        p.on_fill(1, 1, &m(2, 0x20));
        assert_eq!(p.etr[1][0], e0 - 1);
    }

    #[test]
    fn unsampled_sets_do_not_grow_history() {
        let mut p = Mockingjay::new(16, 2);
        for i in 0..100 {
            p.on_fill(3, 0, &m(i, 0x30));
        }
        assert!(p.samples.iter().all(|h| h.is_empty()));
    }
}
