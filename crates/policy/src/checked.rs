//! A contract-checking wrapper around any [`Policy`].
//!
//! The TLB/cache drive protocol (see `itpx-vm`/`itpx-mem`) gives policies a
//! narrow contract:
//!
//! * [`Policy::victim`] is called on a **full** set and must return a way
//!   index `< ways` that currently holds a valid entry;
//! * the structure then calls [`Policy::on_evict`] for exactly that way,
//!   followed by [`Policy::on_fill`] into it;
//! * [`Policy::on_fill`] into an already-valid way without an intervening
//!   eviction is a caller bug (it would silently leak an entry);
//! * [`Policy::on_hit`] only ever targets valid ways.
//!
//! [`CheckedPolicy`] enforces all of that by shadowing the valid bits of the
//! structure it serves. Violations are recorded (query them with
//! [`CheckedPolicy::violations`]) and — in debug builds or with the
//! `strict-contracts` feature — turned into panics so test suites fail
//! loudly at the exact access that broke the contract. In release builds
//! without the feature the wrapper only records, which is what
//! `cargo xtask analyze` uses to report every violation instead of dying on
//! the first.

use crate::traits::Policy;

/// Wraps a [`Policy`], checking the drive-protocol contract on every call.
///
/// # Examples
///
/// ```
/// use itpx_policy::{CheckedPolicy, Lru, Policy, TlbMeta};
/// use itpx_types::TranslationKind;
///
/// let mut p: Box<dyn Policy<TlbMeta>> = Box::new(CheckedPolicy::new(Lru::new(1, 2), 1, 2));
/// let meta = TlbMeta::demand(0x10, TranslationKind::Data);
/// p.on_fill(0, 0, &meta);
/// p.on_fill(0, 1, &meta);
/// let v = p.victim(0, &meta);
/// p.on_evict(0, v);
/// p.on_fill(0, v, &meta);
/// ```
#[derive(Debug)]
pub struct CheckedPolicy<P> {
    inner: P,
    sets: usize,
    ways: usize,
    /// Shadow valid bits, `sets × ways`, row-major.
    valid: Vec<bool>,
    /// Per-set way returned by the last `victim()` call that has not yet
    /// been consumed by the matching `on_evict`/`on_fill` pair.
    pending_victim: Vec<Option<usize>>,
    violations: Vec<String>,
}

impl<P> CheckedPolicy<P> {
    /// Wraps `inner`, which serves a structure of `sets × ways` entries.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(inner: P, sets: usize, ways: usize) -> Self {
        assert!(
            sets > 0 && ways > 0,
            "CheckedPolicy needs sets > 0, ways > 0"
        );
        Self {
            inner,
            sets,
            ways,
            valid: vec![false; sets * ways],
            pending_victim: vec![None; sets],
            violations: Vec::new(),
        }
    }

    /// The wrapped policy.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Unwraps, discarding the shadow state.
    pub fn into_inner(self) -> P {
        self.inner
    }

    /// Contract violations recorded so far (empty in a clean run).
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Drains the recorded violations.
    pub fn take_violations(&mut self) -> Vec<String> {
        std::mem::take(&mut self.violations)
    }

    /// Callers guarantee `set < sets && way < ways` via `check_bounds`.
    fn is_valid(&self, set: usize, way: usize) -> bool {
        // in-bounds: see above
        self.valid[set * self.ways + way]
    }

    /// Callers guarantee `set < sets && way < ways` via `check_bounds`.
    fn set_valid(&mut self, set: usize, way: usize, v: bool) {
        // in-bounds: see above
        self.valid[set * self.ways + way] = v;
    }

    fn set_full(&self, set: usize) -> bool {
        self.valid[set * self.ways..(set + 1) * self.ways]
            .iter()
            .all(|&v| v)
    }

    // itpx-allow: hot-alloc diagnostic sink: runs only when a contract is already violated, never in a clean steady state
    #[track_caller]
    fn record(&mut self, msg: String) {
        // Debug builds (and release builds that opt in via the
        // `strict-contracts` feature) fail fast at the offending access;
        // otherwise callers inspect `violations()` after the drive.
        if cfg!(any(debug_assertions, feature = "strict-contracts")) {
            panic!("policy contract violation: {msg}");
        }
        self.violations.push(msg);
    }

    /// Records and returns `false` when `(set, way)` is out of range —
    /// callers must then skip the access entirely.
    // itpx-allow: hot-alloc formats a diagnostic only on an out-of-range access, never in a clean steady state
    #[track_caller]
    fn check_bounds(&mut self, who: &str, call: &str, set: usize, way: usize) -> bool {
        if set >= self.sets || way >= self.ways {
            self.record(format!(
                "{who}: {call}(set={set}, way={way}) out of range for \
                 {}x{} structure",
                self.sets, self.ways
            ));
            false
        } else {
            true
        }
    }
}

impl<M, P: Policy<M>> Policy<M> for CheckedPolicy<P> {
    // itpx-allow: hot-alloc formats diagnostics only on contract violations, never in a clean steady state
    #[track_caller]
    fn on_fill(&mut self, set: usize, way: usize, meta: &M) {
        let name = self.inner.name();
        if !self.check_bounds(name, "on_fill", set, way) {
            return;
        }
        if self.is_valid(set, way) {
            self.record(format!(
                "{name}: on_fill(set={set}, way={way}) into a valid way \
                 without a preceding on_evict"
            ));
        }
        if let Some(v) = self.pending_victim[set] {
            // A victim was chosen but the structure skipped on_evict and
            // filled straight away — reuse-trained policies miss their
            // negative sample.
            self.record(format!(
                "{name}: victim(set={set}) returned way {v} but on_fill \
                 (way={way}) arrived before on_evict"
            ));
            self.pending_victim[set] = None;
        }
        self.set_valid(set, way, true);
        self.inner.on_fill(set, way, meta);
    }

    // itpx-allow: hot-alloc formats diagnostics only on contract violations, never in a clean steady state
    #[track_caller]
    fn on_hit(&mut self, set: usize, way: usize, meta: &M) {
        let name = self.inner.name();
        if !self.check_bounds(name, "on_hit", set, way) {
            return;
        }
        if !self.is_valid(set, way) {
            self.record(format!(
                "{name}: on_hit(set={set}, way={way}) on an invalid way"
            ));
        }
        self.inner.on_hit(set, way, meta);
    }

    // itpx-allow: hot-alloc formats diagnostics only on contract violations, never in a clean steady state
    #[track_caller]
    fn victim(&mut self, set: usize, incoming: &M) -> usize {
        let name = self.inner.name();
        if set >= self.sets {
            self.record(format!(
                "{name}: victim(set={set}) out of range for {} sets",
                self.sets
            ));
            return 0;
        }
        if !self.set_full(set) {
            self.record(format!(
                "{name}: victim(set={set}) requested while the set still \
                 has invalid ways"
            ));
        }
        let v = self.inner.victim(set, incoming);
        if v >= self.ways {
            self.record(format!(
                "{name}: victim(set={set}) returned way {v} >= ways={}",
                self.ways
            ));
        } else if !self.is_valid(set, v) {
            self.record(format!("{name}: victim(set={set}) chose invalid way {v}"));
        }
        self.pending_victim[set] = Some(v);
        v
    }

    // itpx-allow: hot-alloc formats diagnostics only on contract violations, never in a clean steady state
    #[track_caller]
    fn on_evict(&mut self, set: usize, way: usize) {
        let name = self.inner.name();
        if !self.check_bounds(name, "on_evict", set, way) {
            return;
        }
        if !self.is_valid(set, way) {
            self.record(format!(
                "{name}: on_evict(set={set}, way={way}) of an invalid way"
            ));
        }
        match self.pending_victim[set] {
            Some(v) if v != way => {
                self.record(format!(
                    "{name}: on_evict(set={set}, way={way}) does not match \
                     the victim {v} chosen for this set"
                ));
            }
            _ => {}
        }
        // `None` pending is fine: invalidations/flushes evict without
        // asking for a victim first.
        self.pending_victim[set] = None;
        self.set_valid(set, way, false);
        self.inner.on_evict(set, way);
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn meta_bits(&self, sets: usize, ways: usize) -> u64 {
        // The shadow state is a verification artifact, not hardware.
        self.inner.meta_bits(sets, ways)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::TlbMeta;
    use crate::Lru;
    use itpx_types::TranslationKind;

    fn meta() -> TlbMeta {
        TlbMeta::demand(0x10, TranslationKind::Data)
    }

    /// A policy that deliberately returns an out-of-range victim.
    #[derive(Debug)]
    struct OobPolicy;
    impl Policy<TlbMeta> for OobPolicy {
        fn on_fill(&mut self, _: usize, _: usize, _: &TlbMeta) {}
        fn on_hit(&mut self, _: usize, _: usize, _: &TlbMeta) {}
        fn victim(&mut self, _: usize, _: &TlbMeta) -> usize {
            usize::MAX
        }
        fn name(&self) -> &'static str {
            "oob"
        }
        fn meta_bits(&self, _: usize, _: usize) -> u64 {
            0
        }
    }

    #[test]
    fn clean_protocol_records_nothing() {
        let mut p = CheckedPolicy::new(Lru::new(2, 2), 2, 2);
        let m = meta();
        p.on_fill(0, 0, &m);
        p.on_fill(0, 1, &m);
        p.on_hit(0, 0, &m);
        let v = p.victim(0, &m);
        Policy::<TlbMeta>::on_evict(&mut p, 0, v);
        p.on_fill(0, v, &m);
        assert!(p.violations().is_empty());
        assert_eq!(Policy::<TlbMeta>::name(&p), "lru");
    }

    #[test]
    #[should_panic(expected = "returned way")]
    #[cfg_attr(
        not(any(debug_assertions, feature = "strict-contracts")),
        ignore = "violations are recorded, not panicked, in plain release builds"
    )]
    fn out_of_range_victim_is_caught() {
        let mut p = CheckedPolicy::new(OobPolicy, 1, 2);
        let m = meta();
        p.on_fill(0, 0, &m);
        p.on_fill(0, 1, &m);
        let _ = p.victim(0, &m);
    }

    #[test]
    #[should_panic(expected = "without a preceding on_evict")]
    #[cfg_attr(
        not(any(debug_assertions, feature = "strict-contracts")),
        ignore = "violations are recorded, not panicked, in plain release builds"
    )]
    fn fill_into_valid_way_is_caught() {
        let mut p = CheckedPolicy::new(Lru::new(1, 2), 1, 2);
        let m = meta();
        p.on_fill(0, 0, &m);
        p.on_fill(0, 0, &m);
    }

    #[test]
    #[should_panic(expected = "does not match the victim")]
    #[cfg_attr(
        not(any(debug_assertions, feature = "strict-contracts")),
        ignore = "violations are recorded, not panicked, in plain release builds"
    )]
    fn mismatched_evict_is_caught() {
        let mut p = CheckedPolicy::new(Lru::new(1, 2), 1, 2);
        let m = meta();
        p.on_fill(0, 0, &m);
        p.on_fill(0, 1, &m);
        let v = p.victim(0, &m);
        Policy::<TlbMeta>::on_evict(&mut p, 0, 1 - v);
    }

    #[test]
    #[should_panic(expected = "on an invalid way")]
    #[cfg_attr(
        not(any(debug_assertions, feature = "strict-contracts")),
        ignore = "violations are recorded, not panicked, in plain release builds"
    )]
    fn hit_on_invalid_way_is_caught() {
        let mut p = CheckedPolicy::new(Lru::new(1, 2), 1, 2);
        p.on_hit(0, 0, &meta());
    }

    #[test]
    #[should_panic(expected = "invalid ways")]
    #[cfg_attr(
        not(any(debug_assertions, feature = "strict-contracts")),
        ignore = "violations are recorded, not panicked, in plain release builds"
    )]
    fn victim_on_non_full_set_is_caught() {
        let mut p = CheckedPolicy::new(Lru::new(1, 2), 1, 2);
        let m = meta();
        p.on_fill(0, 0, &m);
        let _ = p.victim(0, &m);
    }

    #[test]
    fn evict_without_victim_is_allowed() {
        // Invalidations evict without a victim() request.
        let mut p = CheckedPolicy::new(Lru::new(1, 2), 1, 2);
        let m = meta();
        p.on_fill(0, 0, &m);
        Policy::<TlbMeta>::on_evict(&mut p, 0, 0);
        assert!(p.violations().is_empty());
    }

    #[test]
    fn meta_bits_delegates() {
        let p = CheckedPolicy::new(Lru::new(4, 8), 4, 8);
        assert_eq!(
            Policy::<TlbMeta>::meta_bits(&p, 4, 8),
            Policy::<TlbMeta>::meta_bits(&Lru::new(4, 8), 4, 8)
        );
    }
}
