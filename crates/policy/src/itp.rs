//! iTP — Instruction Translation Prioritization (paper Section 4.1).
//!
//! iTP is an STLB replacement policy that *maximizes instruction hits at
//! the expense of data page walks*. It keeps LRU's eviction rule (victimize
//! `LRUpos`) but changes insertion and promotion based on a per-entry
//! `Type` bit and a saturating `Freq` counter (Figure 5):
//!
//! * **Insertion** — data translations insert at `LRUpos` (next to leave);
//!   instruction translations insert at `MRUpos − N` with `Freq = 0`.
//! * **Promotion** — an instruction hit promotes to `MRUpos` only once its
//!   `Freq` counter has saturated, otherwise back to `MRUpos − N`
//!   (incrementing `Freq`); a data hit promotes only to `LRUpos + M`.
//!
//! `MRUpos` is therefore reserved for instruction translations with proven
//! reuse, the region between depths `N` and `ways − 1 − M` holds the bulk
//! of the protected instruction working set, and data translations churn
//! through the bottom `M` positions.

use crate::{Policy, RecencyStack, TlbMeta};
use itpx_types::{SetGrid, TranslationKind};

/// Tunable parameters of [`Itp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ItpParams {
    /// Insertion/promotion depth for unproven instruction translations:
    /// they are placed `n` positions below `MRUpos`. Paper default: 4.
    pub n: usize,
    /// Promotion height for data translations: a data hit moves the entry
    /// `m` positions above `LRUpos`. Must satisfy `n < m < ways`.
    /// Paper default: 8.
    pub m: usize,
    /// Width of the per-entry frequency counter in bits (saturates at
    /// `2^freq_bits − 1`). Paper default: 3.
    pub freq_bits: u32,
}

impl Default for ItpParams {
    fn default() -> Self {
        // Table 1: "iTP: 3-bit Freq counter, 1-bit Type, N=4, M=8".
        Self {
            n: 4,
            m: 8,
            freq_bits: 3,
        }
    }
}

impl ItpParams {
    /// Saturation value of the frequency counter.
    pub fn freq_max(&self) -> u8 {
        // itpx-allow: arith-width freq_bits <= 8 (validated below), so the mask fits u8
        ((1u32 << self.freq_bits) - 1) as u8
    }

    /// Validates the parameters against an STLB associativity, per the
    /// paper's constraint "`M` is an integer smaller than the STLB
    /// associativity and larger than `N`".
    ///
    /// # Panics
    ///
    /// Panics if the constraint is violated or `freq_bits` is 0 or > 8.
    pub fn validate(&self, ways: usize) {
        assert!(
            self.n < self.m && self.m < ways,
            "iTP requires N < M < ways (N={}, M={}, ways={ways})",
            self.n,
            self.m
        );
        assert!(
            (1..=8).contains(&self.freq_bits),
            "freq_bits must be in 1..=8"
        );
    }
}

/// The iTP STLB replacement policy.
#[derive(Debug, Clone)]
pub struct Itp {
    params: ItpParams,
    stack: RecencyStack,
    /// Per-entry `Type` bit (true = data translation), as in Figure 7.
    is_data: SetGrid<bool>,
    /// Per-entry saturating `Freq` counter.
    freq: SetGrid<u8>,
}

impl Itp {
    /// Creates an iTP policy for `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `params` violate `N < M < ways` (see
    /// [`ItpParams::validate`]).
    pub fn new(sets: usize, ways: usize, params: ItpParams) -> Self {
        params.validate(ways);
        Self {
            params,
            stack: RecencyStack::new(sets, ways),
            is_data: SetGrid::new(sets, ways, true),
            freq: SetGrid::new(sets, ways, 0),
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> &ItpParams {
        &self.params
    }

    /// Additional metadata storage iTP needs, in bytes, for an STLB with
    /// `entries` entries: 1 `Type` bit + `freq_bits` per entry.
    ///
    /// For the paper's 1536-entry STLB with 3-bit counters this is 768
    /// bytes (Section 4.1.3).
    pub fn storage_overhead_bytes(entries: usize, params: &ItpParams) -> usize {
        entries * (1 + params.freq_bits as usize) / 8
    }

    /// Depth (0 = MRU) of `way` in `set` — exposed so tests and the figure
    /// harness can assert stack positions.
    pub fn depth_of(&self, set: usize, way: usize) -> usize {
        self.stack.depth_of(set, way)
    }

    /// Current `Freq` value of `(set, way)`.
    pub fn freq_of(&self, set: usize, way: usize) -> u8 {
        self.freq.row(set)[way]
    }
}

impl Policy<TlbMeta> for Itp {
    fn on_fill(&mut self, set: usize, way: usize, meta: &TlbMeta) {
        match meta.kind {
            TranslationKind::Data => {
                // Figure 5, step 1: data translations insert at LRUpos.
                self.is_data.row_mut(set)[way] = true;
                self.freq.row_mut(set)[way] = 0;
                self.stack.place_at_height(set, way, 0);
            }
            TranslationKind::Instruction => {
                // Steps 2–3: instruction translations insert at MRUpos − N
                // with Freq = 0; MRUpos itself is reserved for entries with
                // saturated Freq.
                self.is_data.row_mut(set)[way] = false;
                self.freq.row_mut(set)[way] = 0;
                self.stack.place_at_depth(set, way, self.params.n);
            }
        }
    }

    fn on_hit(&mut self, set: usize, way: usize, meta: &TlbMeta) {
        match meta.kind {
            TranslationKind::Instruction => {
                let max = self.params.freq_max();
                if self.freq.row(set)[way] >= max {
                    // Figure 5, promotion (ii): saturated Freq earns MRUpos.
                    self.stack.place_at_depth(set, way, 0);
                } else {
                    // Promotion (i) + (iii): back to MRUpos − N, bump Freq.
                    self.stack.place_at_depth(set, way, self.params.n);
                    self.freq.row_mut(set)[way] += 1;
                }
            }
            TranslationKind::Data => {
                // Promotion (iv): data hits only reach LRUpos + M.
                self.freq.row_mut(set)[way] = 0;
                self.stack.place_at_height(set, way, self.params.m);
            }
        }
    }

    fn victim(&mut self, set: usize, _incoming: &TlbMeta) -> usize {
        // iTP keeps LRU's eviction rule: the entry at LRUpos leaves.
        self.stack.lru(set)
    }

    fn name(&self) -> &'static str {
        "itp"
    }

    fn meta_bits(&self, sets: usize, ways: usize) -> u64 {
        // LRU ranks plus the paper's additions: 1 Type bit + freq_bits per
        // entry (Section 4.1.3: 4 bits/entry over the LRU baseline).
        sets as u64
            * ways as u64
            * (crate::traits::rank_bits(ways) + 1 + self.params.freq_bits as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WAYS: usize = 12;

    fn itp() -> Itp {
        Itp::new(1, WAYS, ItpParams::default())
    }

    fn instr(vpn: u64) -> TlbMeta {
        TlbMeta::demand(vpn, TranslationKind::Instruction)
    }

    fn data(vpn: u64) -> TlbMeta {
        TlbMeta::demand(vpn, TranslationKind::Data)
    }

    #[test]
    fn data_inserts_at_lru_pos() {
        let mut p = itp();
        p.on_fill(0, 5, &data(1));
        assert_eq!(p.depth_of(0, 5), WAYS - 1);
        assert_eq!(p.victim(0, &data(2)), 5);
    }

    #[test]
    fn instruction_inserts_at_mru_minus_n_with_zero_freq() {
        let mut p = itp();
        p.on_fill(0, 5, &instr(1));
        assert_eq!(p.depth_of(0, 5), 4); // N = 4
        assert_eq!(p.freq_of(0, 5), 0);
    }

    #[test]
    fn instruction_hits_climb_to_mru_only_after_freq_saturates() {
        let mut p = itp();
        p.on_fill(0, 5, &instr(1));
        // 7 hits saturate the 3-bit counter; each stays at depth N.
        for expect_freq in 1..=7u8 {
            p.on_hit(0, 5, &instr(1));
            assert_eq!(p.freq_of(0, 5), expect_freq);
            assert_eq!(p.depth_of(0, 5), 4);
        }
        // The next hit finds Freq saturated and promotes to MRUpos.
        p.on_hit(0, 5, &instr(1));
        assert_eq!(p.depth_of(0, 5), 0);
        assert_eq!(p.freq_of(0, 5), 7, "saturated counter does not wrap");
    }

    #[test]
    fn data_hits_promote_only_to_lru_plus_m() {
        let mut p = itp();
        p.on_fill(0, 3, &data(1));
        p.on_hit(0, 3, &data(1));
        // Height M = 8 of 12 ways → depth 3.
        assert_eq!(p.depth_of(0, 3), WAYS - 1 - 8);
    }

    #[test]
    fn data_hit_resets_freq() {
        let mut p = itp();
        p.on_fill(0, 3, &instr(1));
        p.on_hit(0, 3, &instr(1));
        assert_eq!(p.freq_of(0, 3), 1);
        // The way is re-filled with a data translation after eviction.
        p.on_fill(0, 3, &data(2));
        p.on_hit(0, 3, &data(2));
        assert_eq!(p.freq_of(0, 3), 0);
    }

    #[test]
    fn eviction_is_always_lru_pos() {
        let mut p = itp();
        for w in 0..WAYS {
            p.on_fill(0, w, &instr(w as u64));
        }
        // Insertions at depth N push earlier entries down; the victim is
        // whatever sits at LRUpos, regardless of type.
        let v = p.victim(0, &data(99));
        assert_eq!(p.depth_of(0, v), WAYS - 1);
    }

    #[test]
    fn unreferenced_instructions_drift_to_lru_and_leave() {
        let mut p = itp();
        p.on_fill(0, 0, &instr(1));
        let start = p.depth_of(0, 0);
        assert_eq!(start, 4);
        // Each subsequent fill through the real eviction flow (victim at
        // LRUpos, insert at MRUpos - N) pushes way 0 down one position.
        for i in 0..(WAYS - 1 - start) {
            let v = p.victim(0, &instr(100 + i as u64));
            assert_ne!(v, 0, "way 0 must not be evicted before reaching LRU");
            p.on_fill(0, v, &instr(100 + i as u64));
        }
        assert_eq!(p.depth_of(0, 0), WAYS - 1);
        assert_eq!(p.victim(0, &instr(99)), 0);
    }

    #[test]
    fn instruction_inserted_above_fresh_data() {
        let mut p = itp();
        p.on_fill(0, 0, &data(1));
        p.on_fill(0, 1, &instr(2));
        assert!(p.depth_of(0, 1) < p.depth_of(0, 0));
    }

    #[test]
    fn storage_overhead_matches_paper() {
        // Section 4.1.3: 4 bits × 1536 entries = 768 bytes.
        assert_eq!(
            Itp::storage_overhead_bytes(1536, &ItpParams::default()),
            768
        );
    }

    #[test]
    fn freq_max_from_bits() {
        assert_eq!(ItpParams::default().freq_max(), 7);
        let p2 = ItpParams {
            freq_bits: 2,
            ..ItpParams::default()
        };
        assert_eq!(p2.freq_max(), 3);
    }

    #[test]
    #[should_panic(expected = "N < M < ways")]
    fn m_must_be_below_associativity() {
        let _ = Itp::new(
            1,
            8,
            ItpParams {
                n: 4,
                m: 8,
                freq_bits: 3,
            },
        );
    }

    #[test]
    #[should_panic(expected = "N < M < ways")]
    fn m_must_exceed_n() {
        let _ = Itp::new(
            1,
            12,
            ItpParams {
                n: 8,
                m: 4,
                freq_bits: 3,
            },
        );
    }
}
