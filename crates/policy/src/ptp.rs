//! PTP — Page Table Prioritization (Park et al., ASPLOS 2022): an L2C/LLC
//! policy that favors keeping blocks containing page-table entries,
//! without distinguishing instruction PTEs from data PTEs (the limitation
//! the paper's xPTP removes).
//!
//! This reproduction models PTP as LRU with *quota-bounded* protection of
//! PTE blocks: within each set, the most recently used PTE blocks — up to
//! half the ways — are exempt from eviction; any PTE blocks beyond the
//! quota age like normal payload. The quota captures the original
//! design's concern with bounding page-table occupancy of the cache, and
//! distinguishes PTP from xPTP's unbounded (but data-only) victim-side
//! protection.

use crate::meta::CacheMeta;
use crate::recency::RecencyStack;
use crate::traits::Policy;
use itpx_types::SetGrid;

/// LRU with quota-bounded protection of PTE-holding blocks.
#[derive(Debug, Clone)]
pub struct Ptp {
    stack: RecencyStack,
    is_pte: SetGrid<bool>,
    quota: usize,
}

impl Ptp {
    /// Creates a PTP policy protecting at most `ways / 2` PTE blocks per
    /// set.
    pub fn new(sets: usize, ways: usize) -> Self {
        Self {
            stack: RecencyStack::new(sets, ways),
            is_pte: SetGrid::new(sets, ways, false),
            quota: (ways / 2).max(1),
        }
    }

    /// The per-set protection quota.
    pub fn quota(&self) -> usize {
        self.quota
    }
}

impl Policy<CacheMeta> for Ptp {
    fn on_fill(&mut self, set: usize, way: usize, meta: &CacheMeta) {
        self.is_pte.row_mut(set)[way] = meta.fill.is_pte();
        self.stack.touch(set, way);
    }

    fn on_hit(&mut self, set: usize, way: usize, meta: &CacheMeta) {
        if meta.fill.is_pte() {
            self.is_pte.row_mut(set)[way] = true;
        }
        self.stack.touch(set, way);
    }

    fn victim(&mut self, set: usize, _incoming: &CacheMeta) -> usize {
        // Protect the `quota` most recently used PTE ways; everything else
        // (payload and excess PTEs) is fair game in LRU order.
        let mut protected = [false; 64];
        let mut count = 0usize;
        for w in self.stack.iter_mru_to_lru(set) {
            if count >= self.quota {
                break;
            }
            if self.is_pte.row(set)[w] {
                // .min(63) clamps into the fixed 64-way bitmap
                protected[w.min(63)] = true;
                count += 1;
            }
        }
        self.stack
            .iter_lru_to_mru(set)
            // .min(63) clamps into the fixed 64-way bitmap
            .find(|&w| !protected[w.min(63)])
            .unwrap_or_else(|| self.stack.lru(set))
    }

    fn name(&self) -> &'static str {
        "ptp"
    }

    fn meta_bits(&self, sets: usize, ways: usize) -> u64 {
        // LRU ranks + one PTE flag per entry.
        sets as u64 * ways as u64 * (crate::traits::rank_bits(ways) + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itpx_types::FillClass;

    fn m(b: u64, fill: FillClass) -> CacheMeta {
        CacheMeta::demand(b, fill)
    }

    #[test]
    fn protects_pte_blocks_of_both_kinds_within_quota() {
        let mut p = Ptp::new(1, 4); // quota = 2
        p.on_fill(0, 0, &m(0, FillClass::DataPte));
        p.on_fill(0, 1, &m(1, FillClass::InstrPte));
        p.on_fill(0, 2, &m(2, FillClass::DataPayload));
        p.on_fill(0, 3, &m(3, FillClass::DataPayload));
        // Both PTEs fit the quota: the LRU payload block goes.
        assert_eq!(p.victim(0, &m(9, FillClass::DataPayload)), 2);
    }

    #[test]
    fn excess_ptes_beyond_quota_age_normally() {
        let mut p = Ptp::new(1, 4); // quota = 2
        for w in 0..3 {
            p.on_fill(0, w, &m(w as u64, FillClass::DataPte));
        }
        p.on_fill(0, 3, &m(3, FillClass::DataPayload));
        // Three PTEs, quota two: the least recent PTE (way 0) is evictable
        // and sits at the bottom of the stack.
        assert_eq!(p.victim(0, &m(9, FillClass::DataPayload)), 0);
    }

    #[test]
    fn all_pte_set_still_yields_a_victim() {
        let mut p = Ptp::new(1, 2); // quota = 1
        p.on_fill(0, 0, &m(0, FillClass::DataPte));
        p.on_fill(0, 1, &m(1, FillClass::InstrPte));
        assert_eq!(p.victim(0, &m(9, FillClass::DataPte)), 0);
    }

    #[test]
    fn refill_with_payload_clears_priority() {
        let mut p = Ptp::new(1, 2);
        p.on_fill(0, 0, &m(0, FillClass::DataPte));
        p.on_fill(0, 0, &m(5, FillClass::DataPayload)); // way reused
        p.on_fill(0, 1, &m(1, FillClass::DataPayload));
        assert_eq!(p.victim(0, &m(9, FillClass::DataPayload)), 0);
    }

    #[test]
    fn quota_is_half_the_ways() {
        assert_eq!(Ptp::new(4, 8).quota(), 4);
        assert_eq!(Ptp::new(4, 2).quota(), 1);
    }
}
