//! Extension beyond the paper's evaluation: xPTP combined with an
//! Emissary-style code-preserving rule at the L2C.
//!
//! The paper's related-work section (§7) conjectures: *"A scheme that
//! leverages iTP as STLB replacement policy and combines xPTP with
//! Emissary at L2C has the potential to provide larger performance gains
//! than iTP+xPTP since it would preserve critical code blocks in the L2C."*
//! This module implements that scheme in simplified form.
//!
//! Emissary (Nagendra et al., ISCA 2023) preserves L2C blocks whose
//! instruction fetches stalled the front end. This reproduction uses
//! big-code criticality as the proxy: *instruction payload* blocks are
//! protected with a bounded quota (front-end misses on them are
//! unhideable by the out-of-order core), layered on top of xPTP's strict
//! protection of data-PTE blocks.

use crate::xptp::XptpParams;
use crate::{CacheMeta, Policy, RecencyStack};
use itpx_types::{FillClass, SetGrid};

/// xPTP + Emissary-style code preservation at the L2C.
#[derive(Debug, Clone)]
pub struct XptpEmissary {
    params: XptpParams,
    stack: RecencyStack,
    /// xPTP's `Type` bit: block holds a data PTE.
    is_data_pte: SetGrid<bool>,
    /// Emissary-style criticality: block holds instruction payload.
    is_code: SetGrid<bool>,
    /// Max code blocks protected per set.
    code_quota: usize,
}

impl XptpEmissary {
    /// Creates the combined policy; code protection is bounded to a
    /// quarter of the ways.
    ///
    /// # Panics
    ///
    /// Panics if `params.k` is 0 or exceeds `ways`.
    pub fn new(sets: usize, ways: usize, params: XptpParams) -> Self {
        assert!(
            params.k >= 1 && params.k <= ways,
            "xPTP requires 1 <= K <= ways (K={}, ways={ways})",
            params.k
        );
        Self {
            params,
            stack: RecencyStack::new(sets, ways),
            is_data_pte: SetGrid::new(sets, ways, false),
            is_code: SetGrid::new(sets, ways, false),
            code_quota: (ways / 4).max(1),
        }
    }

    /// The per-set code-protection quota.
    pub fn code_quota(&self) -> usize {
        self.code_quota
    }
}

impl Policy<CacheMeta> for XptpEmissary {
    fn on_fill(&mut self, set: usize, way: usize, meta: &CacheMeta) {
        self.is_data_pte.row_mut(set)[way] = meta.fill.is_data_pte();
        self.is_code.row_mut(set)[way] = meta.fill == FillClass::InstrPayload;
        self.stack.touch(set, way);
    }

    fn on_hit(&mut self, set: usize, way: usize, meta: &CacheMeta) {
        if meta.fill.is_data_pte() {
            self.is_data_pte.row_mut(set)[way] = true;
        }
        if meta.fill == FillClass::InstrPayload {
            self.is_code.row_mut(set)[way] = true;
        }
        self.stack.touch(set, way);
    }

    fn victim(&mut self, set: usize, _incoming: &CacheMeta) -> usize {
        // Protect the `code_quota` most recently used code blocks.
        let mut code_protected = [false; 64];
        let mut protected = 0usize;
        for w in self.stack.iter_mru_to_lru(set) {
            if protected >= self.code_quota {
                break;
            }
            if self.is_code.row(set)[w] {
                // .min(63) clamps into the fixed 64-way bitmap
                code_protected[w.min(63)] = true;
                protected += 1;
            }
        }
        // xPTP scan from LRUpos: skip data PTEs (strict under K = ways)
        // and protected code; the K threshold still bounds how far up the
        // stack we sacrifice a payload block.
        let lru = self.stack.lru(set);
        let alt = self
            .stack
            .iter_lru_to_mru(set)
            // .min(63) clamps into the fixed 64-way bitmap
            .find(|&w| !self.is_data_pte.row(set)[w] && !code_protected[w.min(63)]);
        match alt {
            Some(alt) if self.stack.height_of(set, alt) < self.params.k => alt,
            _ => lru,
        }
    }

    fn name(&self) -> &'static str {
        "xptp+emissary"
    }

    fn meta_bits(&self, sets: usize, ways: usize) -> u64 {
        // xPTP's Type bit plus the Emissary-style code bit per entry.
        sets as u64 * ways as u64 * (crate::traits::rank_bits(ways) + 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(b: u64, fill: FillClass) -> CacheMeta {
        CacheMeta::demand(b, fill)
    }

    #[test]
    fn protects_both_data_ptes_and_recent_code() {
        let mut p = XptpEmissary::new(1, 8, XptpParams::default());
        p.on_fill(0, 0, &m(0, FillClass::DataPte));
        p.on_fill(0, 1, &m(1, FillClass::InstrPayload));
        for w in 2..8 {
            p.on_fill(0, w, &m(w as u64, FillClass::DataPayload));
        }
        // LRU order: 0 (pte), 1 (code), 2.. (payload). Both are spared.
        assert_eq!(p.victim(0, &m(9, FillClass::DataPayload)), 2);
    }

    #[test]
    fn code_protection_is_quota_bounded() {
        let mut p = XptpEmissary::new(1, 8, XptpParams::default());
        assert_eq!(p.code_quota(), 2);
        for w in 0..4 {
            p.on_fill(0, w, &m(w as u64, FillClass::InstrPayload));
        }
        for w in 4..8 {
            p.on_fill(0, w, &m(w as u64, FillClass::DataPayload));
        }
        // Four code blocks, quota two: the two least recent code blocks
        // are evictable; way 0 is LRU.
        assert_eq!(p.victim(0, &m(9, FillClass::DataPayload)), 0);
    }

    #[test]
    fn all_protected_falls_back_to_lru() {
        let mut p = XptpEmissary::new(1, 2, XptpParams { k: 2 });
        p.on_fill(0, 0, &m(0, FillClass::DataPte));
        p.on_fill(0, 1, &m(1, FillClass::DataPte));
        assert_eq!(p.victim(0, &m(9, FillClass::DataPte)), 0);
    }

    #[test]
    fn payload_hit_does_not_mark_code() {
        let mut p = XptpEmissary::new(1, 2, XptpParams { k: 2 });
        p.on_fill(0, 0, &m(0, FillClass::DataPayload));
        p.on_hit(0, 0, &m(0, FillClass::DataPayload));
        p.on_fill(0, 1, &m(1, FillClass::DataPayload));
        assert_eq!(p.victim(0, &m(9, FillClass::DataPayload)), 0);
    }
}
