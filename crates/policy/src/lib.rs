//! Baseline TLB and cache replacement policies, and the trait they share
//! with the paper's contributions.
//!
//! The paper ("Instruction-Aware Cooperative TLB and Cache Replacement
//! Policies", ASPLOS 2025) compares its proposals (iTP, xPTP — implemented
//! in `itpx-core`) against a field of prior policies. This crate implements
//! that field:
//!
//! | Policy | Structure | Reference |
//! |---|---|---|
//! | [`Lru`] | any | textbook true-LRU |
//! | [`TreePlru`] | any | tree pseudo-LRU |
//! | [`RandomEvict`] | any | random |
//! | [`Srrip`] / [`Brrip`] / [`Drrip`] | caches | Jaleel et al., ISCA'10 |
//! | [`Dip`] | caches | Qureshi et al., ISCA'07 |
//! | [`Ship`] | caches | Wu et al., MICRO'11 |
//! | [`Mockingjay`] | caches | Shah et al., HPCA'22 (simplified) |
//! | [`Ptp`] | L2C | Park et al., ASPLOS'22 |
//! | [`Tdrrip`] | L2C | Vasudha & Panda, ISPASS'22 |
//! | [`TShip`] | LLC | Vasudha & Panda, ISPASS'22 (extension; the paper applies only T-DRRIP) |
//! | [`Chirp`] | STLB | Mirbagher-Ajorpaz et al., MICRO'20 (simplified) |
//! | [`ProbKeepInstrLru`] | STLB | the Figure-3 motivation policy |
//! | [`Itp`] | STLB | the paper's Section 4.1 proposal |
//! | [`Xptp`] / [`AdaptiveXptp`] / [`XptpEmissary`] | L2C | Section 4.2 / 4.3.1 / extension |
//!
//! Every policy implements [`Policy`] over either [`CacheMeta`] or
//! [`TlbMeta`]. The cache and TLB models in `itpx-mem`/`itpx-vm` store them
//! in the statically dispatched [`engine::CachePolicyEngine`] /
//! [`engine::TlbPolicyEngine`] enums (trait objects remain available via
//! the [`CachePolicy`]/[`TlbPolicy`] aliases and the engines' `Dyn`
//! escape hatch).
//!
//! # Examples
//!
//! ```
//! use itpx_policy::engine::TlbPolicyEngine;
//! use itpx_policy::{Lru, Policy, TlbMeta};
//! use itpx_types::TranslationKind;
//!
//! let mut policy = TlbPolicyEngine::from(Lru::new(4, 2));
//! let meta = TlbMeta::demand(0x10, TranslationKind::Data);
//! policy.on_fill(0, 0, &meta);
//! policy.on_fill(0, 1, &meta);
//! policy.on_hit(0, 0, &meta);
//! assert_eq!(policy.victim(0, &meta), 1); // way 0 was touched more recently
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod adaptive;
pub mod checked;
pub mod chirp;
pub mod dip;
pub mod engine;
pub mod extension;
pub mod itp;
pub mod lru;
pub mod meta;
pub mod mockingjay;
pub mod plru;
pub mod prob_lru;
pub mod ptp;
pub mod random;
pub mod recency;
pub mod rrip;
pub mod ship;
pub mod tdrrip;
pub mod traits;
pub mod tship;
pub mod xptp;

pub use adaptive::{AdaptiveXptp, StlbPressureMonitor, XptpSwitch};
pub use checked::CheckedPolicy;
pub use chirp::Chirp;
pub use dip::Dip;
pub use engine::{CachePolicyEngine, PolicyMeta, TlbPolicyEngine};
pub use extension::XptpEmissary;
pub use itp::{Itp, ItpParams};
pub use lru::Lru;
pub use meta::{CacheMeta, TlbMeta};
pub use mockingjay::Mockingjay;
pub use plru::TreePlru;
pub use prob_lru::ProbKeepInstrLru;
pub use ptp::Ptp;
pub use random::RandomEvict;
pub use recency::RecencyStack;
pub use rrip::{Brrip, Drrip, Srrip};
pub use ship::Ship;
pub use tdrrip::Tdrrip;
pub use traits::{CachePolicy, Policy, TlbPolicy};
pub use tship::TShip;
pub use xptp::{Xptp, XptpParams};
