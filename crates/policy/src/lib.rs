//! Baseline TLB and cache replacement policies, and the trait they share
//! with the paper's contributions.
//!
//! The paper ("Instruction-Aware Cooperative TLB and Cache Replacement
//! Policies", ASPLOS 2025) compares its proposals (iTP, xPTP — implemented
//! in `itpx-core`) against a field of prior policies. This crate implements
//! that field:
//!
//! | Policy | Structure | Reference |
//! |---|---|---|
//! | [`Lru`] | any | textbook true-LRU |
//! | [`TreePlru`] | any | tree pseudo-LRU |
//! | [`RandomEvict`] | any | random |
//! | [`Srrip`] / [`Brrip`] / [`Drrip`] | caches | Jaleel et al., ISCA'10 |
//! | [`Dip`] | caches | Qureshi et al., ISCA'07 |
//! | [`Ship`] | caches | Wu et al., MICRO'11 |
//! | [`Mockingjay`] | caches | Shah et al., HPCA'22 (simplified) |
//! | [`Ptp`] | L2C | Park et al., ASPLOS'22 |
//! | [`Tdrrip`] | L2C | Vasudha & Panda, ISPASS'22 |
//! | [`TShip`] | LLC | Vasudha & Panda, ISPASS'22 (extension; the paper applies only T-DRRIP) |
//! | [`Chirp`] | STLB | Mirbagher-Ajorpaz et al., MICRO'20 (simplified) |
//! | [`ProbKeepInstrLru`] | STLB | the Figure-3 motivation policy |
//!
//! Every policy implements [`Policy`] over either [`CacheMeta`] or
//! [`TlbMeta`], so the cache and TLB models in `itpx-mem`/`itpx-vm` accept
//! any of them as trait objects ([`CachePolicy`], [`TlbPolicy`]).
//!
//! # Examples
//!
//! ```
//! use itpx_policy::{Lru, Policy, TlbMeta, TlbPolicy};
//! use itpx_types::TranslationKind;
//!
//! let mut policy: TlbPolicy = Box::new(Lru::new(4, 2));
//! let meta = TlbMeta::demand(0x10, TranslationKind::Data);
//! policy.on_fill(0, 0, &meta);
//! policy.on_fill(0, 1, &meta);
//! policy.on_hit(0, 0, &meta);
//! assert_eq!(policy.victim(0, &meta), 1); // way 0 was touched more recently
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod checked;
pub mod chirp;
pub mod dip;
pub mod lru;
pub mod meta;
pub mod mockingjay;
pub mod plru;
pub mod prob_lru;
pub mod ptp;
pub mod random;
pub mod recency;
pub mod rrip;
pub mod ship;
pub mod tdrrip;
pub mod traits;
pub mod tship;

pub use checked::CheckedPolicy;
pub use chirp::Chirp;
pub use dip::Dip;
pub use lru::Lru;
pub use meta::{CacheMeta, TlbMeta};
pub use mockingjay::Mockingjay;
pub use plru::TreePlru;
pub use prob_lru::ProbKeepInstrLru;
pub use ptp::Ptp;
pub use random::RandomEvict;
pub use recency::RecencyStack;
pub use rrip::{Brrip, Drrip, Srrip};
pub use ship::Ship;
pub use tdrrip::Tdrrip;
pub use traits::{CachePolicy, Policy, TlbPolicy};
pub use tship::TShip;
