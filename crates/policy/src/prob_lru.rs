//! The Figure-3 motivation policy: LRU modified to victimize a *data*
//! translation with probability `P` (and an *instruction* translation with
//! probability `1 - P`), falling back to plain LRU when the chosen kind is
//! absent from the set.
//!
//! The paper uses this family (P ∈ {0.2, 0.4, 0.6, 0.8}) to demonstrate
//! that trading data for instruction STLB entries helps big-code workloads
//! (Finding 2) — the observation iTP turns into a real policy.

use crate::meta::TlbMeta;
use crate::recency::RecencyStack;
use crate::traits::Policy;
use itpx_types::{Rng64, SetGrid, TranslationKind};

/// Probabilistic instruction-keeping LRU for the STLB.
#[derive(Debug, Clone)]
pub struct ProbKeepInstrLru {
    stack: RecencyStack,
    kind: SetGrid<TranslationKind>,
    p_evict_data: f64,
    rng: Rng64,
}

impl ProbKeepInstrLru {
    /// Creates the policy; `p_evict_data` is the paper's `P`, the
    /// probability that an eviction victimizes a data translation.
    ///
    /// # Panics
    ///
    /// Panics if `p_evict_data` is not in `[0, 1]`.
    pub fn new(sets: usize, ways: usize, p_evict_data: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p_evict_data),
            "P must be a probability"
        );
        Self {
            stack: RecencyStack::new(sets, ways),
            kind: SetGrid::new(sets, ways, TranslationKind::Data),
            p_evict_data,
            rng: Rng64::new(seed),
        }
    }

    /// The configured probability of victimizing a data translation.
    pub fn p_evict_data(&self) -> f64 {
        self.p_evict_data
    }

    /// Least-recently-used way of the given kind, if any resident.
    fn lru_of_kind(&self, set: usize, kind: TranslationKind) -> Option<usize> {
        self.stack
            .iter_lru_to_mru(set)
            .find(|&w| self.kind.row(set)[w] == kind)
    }
}

impl Policy<TlbMeta> for ProbKeepInstrLru {
    fn on_fill(&mut self, set: usize, way: usize, meta: &TlbMeta) {
        self.kind.row_mut(set)[way] = meta.kind;
        self.stack.touch(set, way);
    }

    fn on_hit(&mut self, set: usize, way: usize, _meta: &TlbMeta) {
        self.stack.touch(set, way);
    }

    fn victim(&mut self, set: usize, _incoming: &TlbMeta) -> usize {
        let prefer = if self.rng.chance(self.p_evict_data) {
            TranslationKind::Data
        } else {
            TranslationKind::Instruction
        };
        self.lru_of_kind(set, prefer)
            .unwrap_or_else(|| self.stack.lru(set))
    }

    fn name(&self) -> &'static str {
        "prob-keep-instr-lru"
    }

    fn meta_bits(&self, sets: usize, ways: usize) -> u64 {
        // LRU ranks + the per-entry Type bit + the shared generator.
        sets as u64 * ways as u64 * (crate::traits::rank_bits(ways) + 1)
            + crate::traits::RNG_STATE_BITS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(vpn: u64, kind: TranslationKind) -> TlbMeta {
        TlbMeta::demand(vpn, kind)
    }

    #[test]
    fn p1_always_evicts_data_when_present() {
        let mut p = ProbKeepInstrLru::new(1, 4, 1.0, 5);
        p.on_fill(0, 0, &meta(0, TranslationKind::Data));
        p.on_fill(0, 1, &meta(1, TranslationKind::Instruction));
        p.on_fill(0, 2, &meta(2, TranslationKind::Instruction));
        p.on_fill(0, 3, &meta(3, TranslationKind::Data));
        for _ in 0..20 {
            let v = p.victim(0, &meta(9, TranslationKind::Data));
            assert!(v == 0 || v == 3);
        }
    }

    #[test]
    fn p0_always_evicts_instruction_when_present() {
        let mut p = ProbKeepInstrLru::new(1, 4, 0.0, 5);
        p.on_fill(0, 0, &meta(0, TranslationKind::Data));
        p.on_fill(0, 1, &meta(1, TranslationKind::Instruction));
        for _ in 0..20 {
            assert_eq!(p.victim(0, &meta(9, TranslationKind::Data)), 1);
        }
    }

    #[test]
    fn falls_back_to_plain_lru_when_kind_absent() {
        let mut p = ProbKeepInstrLru::new(1, 2, 1.0, 5);
        // Only instruction entries resident, but P = 1 wants a data victim.
        p.on_fill(0, 0, &meta(0, TranslationKind::Instruction));
        p.on_fill(0, 1, &meta(1, TranslationKind::Instruction));
        assert_eq!(p.victim(0, &meta(9, TranslationKind::Data)), 0);
    }

    #[test]
    fn evicts_lru_of_the_chosen_kind_not_global_lru() {
        let mut p = ProbKeepInstrLru::new(1, 3, 1.0, 5);
        p.on_fill(0, 0, &meta(0, TranslationKind::Instruction)); // global LRU
        p.on_fill(0, 1, &meta(1, TranslationKind::Data)); // LRU data
        p.on_fill(0, 2, &meta(2, TranslationKind::Data));
        assert_eq!(p.victim(0, &meta(9, TranslationKind::Data)), 1);
    }

    #[test]
    fn p_is_roughly_respected_statistically() {
        let mut p = ProbKeepInstrLru::new(1, 2, 0.8, 11);
        p.on_fill(0, 0, &meta(0, TranslationKind::Data));
        p.on_fill(0, 1, &meta(1, TranslationKind::Instruction));
        let data_victims = (0..10_000)
            .filter(|_| p.victim(0, &meta(9, TranslationKind::Data)) == 0)
            .count();
        assert!(
            (7500..8500).contains(&data_victims),
            "data victims: {data_victims}"
        );
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_p_panics() {
        let _ = ProbKeepInstrLru::new(1, 2, 1.5, 0);
    }
}
