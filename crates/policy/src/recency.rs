//! A true recency stack, the substrate for every LRU-family policy.
//!
//! The paper describes iTP and xPTP in terms of *positions in the LRU
//! recency stack* (`MRUpos`, `LRUpos`, "insert at `MRUpos - N`", "promote to
//! `LRUpos + M`"). [`RecencyStack`] models exactly that: each set keeps an
//! explicit ordering of its ways from most- to least-recently used, and
//! policies manipulate positions directly.

use itpx_types::SetGrid;

/// Explicit per-set MRU→LRU orderings of ways.
///
/// *Depth* is measured from the top: depth 0 is `MRUpos`, depth
/// `ways - 1` is `LRUpos`. *Height* is measured from the bottom:
/// height 0 is `LRUpos`. The paper's `MRUpos - N` is depth `N`; the paper's
/// `LRUpos + M` is height `M`.
///
/// # Examples
///
/// ```
/// use itpx_policy::RecencyStack;
/// let mut rs = RecencyStack::new(1, 4);
/// rs.touch(0, 2); // way 2 becomes MRU
/// assert_eq!(rs.depth_of(0, 2), 0);
/// assert_ne!(rs.lru(0), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecencyStack {
    ways: usize,
    // order.row(set)[d] = way at depth d (0 = MRU).
    order: SetGrid<u16>,
}

impl RecencyStack {
    /// Creates stacks for `sets` sets of `ways` ways each, in an arbitrary
    /// initial order.
    ///
    /// # Panics
    ///
    /// Panics if `sets == 0`, `ways == 0`, or `ways > u16::MAX as usize`.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(
            sets > 0 && ways > 0,
            "RecencyStack needs sets > 0, ways > 0"
        );
        assert!(ways <= u16::MAX as usize, "way count exceeds u16");
        Self {
            ways,
            order: SetGrid::from_row_fn(sets, ways, |d| d as u16),
        }
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.order.sets()
    }

    /// Depth (0 = MRU) of `way` in `set`.
    ///
    /// # Panics
    ///
    /// Panics if `way` is not a way of this stack.
    pub fn depth_of(&self, set: usize, way: usize) -> usize {
        self.order
            .row(set)
            .iter()
            .position(|&w| w as usize == way)
            // every way 0..ways is permanently present in the stack
            .expect("way not present in recency stack")
    }

    /// Height (0 = LRU) of `way` in `set`.
    pub fn height_of(&self, set: usize, way: usize) -> usize {
        self.ways - 1 - self.depth_of(set, way)
    }

    /// The way currently at `LRUpos`.
    pub fn lru(&self, set: usize) -> usize {
        // order rows are built with ways >= 1 entries and never shrink
        *self.order.row(set).last().expect("non-empty stack") as usize
    }

    /// The way currently at `MRUpos`.
    pub fn mru(&self, set: usize) -> usize {
        self.order.row(set)[0] as usize
    }

    /// The way at the given depth.
    pub fn at_depth(&self, set: usize, depth: usize) -> usize {
        // .min(ways - 1) clamps the depth into the row
        self.order.row(set)[depth.min(self.ways - 1)] as usize
    }

    /// Moves `way` to `MRUpos` (classic LRU touch).
    pub fn touch(&mut self, set: usize, way: usize) {
        self.place_at_depth(set, way, 0);
    }

    /// Places `way` at `depth` from the top (clamped to the stack size);
    /// every entry it passes shifts one position toward LRU or MRU
    /// accordingly. This implements both the paper's "insert at
    /// `MRUpos - N`" and "promote to `LRUpos + M`" (via
    /// [`RecencyStack::place_at_height`]).
    pub fn place_at_depth(&mut self, set: usize, way: usize, depth: usize) {
        let depth = depth.min(self.ways - 1);
        let cur = self.depth_of(set, way);
        let row = self.order.row_mut(set);
        // Rotating the span between the old and new positions is exactly
        // `remove(cur)` + `insert(depth, …)` on the fixed-length row:
        // every entry passed shifts one slot toward LRU or MRU.
        if cur < depth {
            row[cur..=depth].rotate_left(1);
        } else {
            row[depth..=cur].rotate_right(1);
        }
    }

    /// Places `way` at `height` from the bottom (clamped).
    pub fn place_at_height(&mut self, set: usize, way: usize, height: usize) {
        let height = height.min(self.ways - 1);
        self.place_at_depth(set, way, self.ways - 1 - height);
    }

    /// Iterates ways from LRU (first) to MRU (last) — the scan order xPTP
    /// uses to find the victim candidate closest to the bottom of the stack.
    pub fn iter_lru_to_mru(&self, set: usize) -> impl Iterator<Item = usize> + '_ {
        self.order.row(set).iter().rev().map(|&w| w as usize)
    }

    /// Iterates ways from MRU (first) to LRU (last).
    pub fn iter_mru_to_lru(&self, set: usize) -> impl Iterator<Item = usize> + '_ {
        self.order.row(set).iter().map(|&w| w as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_order_contains_all_ways() {
        let rs = RecencyStack::new(2, 4);
        let mut ways: Vec<usize> = rs.iter_mru_to_lru(1).collect();
        ways.sort_unstable();
        assert_eq!(ways, vec![0, 1, 2, 3]);
    }

    #[test]
    fn touch_moves_to_mru_and_shifts_others_down() {
        let mut rs = RecencyStack::new(1, 4);
        // start: [0,1,2,3]
        rs.touch(0, 3);
        assert_eq!(rs.mru(0), 3);
        assert_eq!(rs.depth_of(0, 0), 1);
        assert_eq!(rs.lru(0), 2);
    }

    #[test]
    fn place_at_depth_matches_paper_insert_semantics() {
        let mut rs = RecencyStack::new(1, 12);
        // iTP inserts instruction entries at MRUpos - N with N = 4.
        rs.place_at_depth(0, 7, 4);
        assert_eq!(rs.depth_of(0, 7), 4);
        // All other entries keep their relative order.
        let rest: Vec<usize> = rs.iter_mru_to_lru(0).filter(|&w| w != 7).collect();
        assert_eq!(rest, vec![0, 1, 2, 3, 4, 5, 6, 8, 9, 10, 11]);
    }

    #[test]
    fn place_at_height_is_lru_pos_plus_m() {
        let mut rs = RecencyStack::new(1, 12);
        // iTP promotes data hits to LRUpos + M with M = 8.
        rs.place_at_height(0, 0, 8);
        assert_eq!(rs.height_of(0, 0), 8);
        assert_eq!(rs.depth_of(0, 0), 3);
    }

    #[test]
    fn depth_clamps() {
        let mut rs = RecencyStack::new(1, 4);
        rs.place_at_depth(0, 1, 99);
        assert_eq!(rs.lru(0), 1);
        rs.place_at_height(0, 2, 99);
        assert_eq!(rs.mru(0), 2);
    }

    #[test]
    fn lru_to_mru_iteration_order() {
        let mut rs = RecencyStack::new(1, 3);
        rs.touch(0, 0);
        rs.touch(0, 1);
        rs.touch(0, 2); // order MRU->LRU: 2,1,0
        let v: Vec<usize> = rs.iter_lru_to_mru(0).collect();
        assert_eq!(v, vec![0, 1, 2]);
    }

    #[test]
    fn heights_and_depths_are_complementary() {
        let rs = RecencyStack::new(1, 8);
        for w in 0..8 {
            assert_eq!(rs.depth_of(0, w) + rs.height_of(0, w), 7);
        }
    }

    #[test]
    #[should_panic(expected = "sets > 0")]
    fn zero_sets_panics() {
        let _ = RecencyStack::new(0, 4);
    }
}
