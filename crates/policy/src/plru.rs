//! Tree pseudo-LRU — the O(ways) -bit recency approximation the paper cites
//! when comparing iTP's storage overhead (Section 4.1.3).

use crate::traits::Policy;
use itpx_types::SetGrid;

/// Tree-based pseudo-LRU.
///
/// Each set keeps `ways - 1` direction bits arranged as an implicit binary
/// tree; a touch flips the bits along the path away from the touched way,
/// and the victim is found by following the bits. `ways` must be a power of
/// two.
#[derive(Debug, Clone)]
pub struct TreePlru {
    ways: usize,
    // bits.row(set)[node]: false = left subtree is older, true = right is older.
    bits: SetGrid<bool>,
}

impl TreePlru {
    /// Creates a tree-PLRU policy.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is not a power of two or is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(
            ways.is_power_of_two() && ways > 0,
            "tree PLRU needs power-of-two ways"
        );
        Self {
            ways,
            bits: SetGrid::new(sets, ways.saturating_sub(1).max(1), false),
        }
    }

    fn touch(&mut self, set: usize, way: usize) {
        if self.ways == 1 {
            return;
        }
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = self.ways;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if way < mid {
                // Touched left: mark right as the older side.
                self.bits.row_mut(set)[node] = true;
                node = 2 * node + 1;
                hi = mid;
            } else {
                self.bits.row_mut(set)[node] = false;
                node = 2 * node + 2;
                lo = mid;
            }
        }
    }

    fn find_victim(&self, set: usize) -> usize {
        if self.ways == 1 {
            return 0;
        }
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = self.ways;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.bits.row(set)[node] {
                // Right subtree is older.
                node = 2 * node + 2;
                lo = mid;
            } else {
                node = 2 * node + 1;
                hi = mid;
            }
        }
        lo
    }
}

impl<M> Policy<M> for TreePlru {
    fn on_fill(&mut self, set: usize, way: usize, _meta: &M) {
        self.touch(set, way);
    }

    fn on_hit(&mut self, set: usize, way: usize, _meta: &M) {
        self.touch(set, way);
    }

    fn victim(&mut self, set: usize, _incoming: &M) -> usize {
        self.find_victim(set)
    }

    fn name(&self) -> &'static str {
        "tree-plru"
    }

    fn meta_bits(&self, sets: usize, ways: usize) -> u64 {
        // ways − 1 direction bits per set.
        sets as u64 * ways.saturating_sub(1) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::CacheMeta;
    use itpx_types::FillClass;

    fn m() -> CacheMeta {
        CacheMeta::demand(0, FillClass::DataPayload)
    }

    #[test]
    fn victim_is_never_the_most_recent_touch() {
        let mut p = TreePlru::new(1, 8);
        for w in 0..8 {
            p.on_fill(0, w, &m());
        }
        for w in 0..8 {
            p.on_hit(0, w, &m());
            let v = Policy::<CacheMeta>::victim(&mut p, 0, &m());
            assert_ne!(v, w, "PLRU chose the just-touched way");
        }
    }

    #[test]
    fn cycling_touches_visit_all_ways_as_victims() {
        let mut p = TreePlru::new(1, 4);
        let mut victims = std::collections::BTreeSet::new();
        for i in 0..16 {
            let v = Policy::<CacheMeta>::victim(&mut p, 0, &m());
            victims.insert(v);
            p.on_fill(0, v, &m());
            let _ = i;
        }
        assert_eq!(victims.len(), 4);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_panics() {
        let _ = TreePlru::new(1, 12);
    }
}
