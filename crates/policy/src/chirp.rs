//! Simplified CHiRP (Mirbagher-Ajorpaz et al., MICRO 2020): control-flow
//! history reuse prediction for the STLB — the state-of-the-art STLB
//! replacement baseline in the paper's comparison.
//!
//! The published design hashes several control-flow features into multiple
//! tables; this reproduction keeps the core loop — a signature derived from
//! recent control-flow history, a confidence table trained by observed
//! reuse, and insertion depth chosen by predicted reuse — which is
//! sufficient for the comparative role CHiRP plays here (the paper reports
//! it performs close to LRU on these workloads because it is oblivious to
//! the instruction/data distinction).

use crate::meta::TlbMeta;
use crate::recency::RecencyStack;
use crate::traits::Policy;
use itpx_types::SetGrid;

const TABLE_BITS: u32 = 12;
const CONF_MAX: u8 = 7;
const CONF_THRESHOLD: u8 = 4;

/// Simplified control-flow-history reuse predictor for STLBs.
#[derive(Debug, Clone)]
pub struct Chirp {
    stack: RecencyStack,
    conf: Vec<u8>,
    // Per-entry training state.
    signature: SetGrid<u16>,
    reused: SetGrid<bool>,
    // Folded history of recent instruction-translation PCs.
    history: u64,
}

impl Chirp {
    /// Creates a CHiRP policy.
    pub fn new(sets: usize, ways: usize) -> Self {
        Self {
            stack: RecencyStack::new(sets, ways),
            conf: vec![CONF_THRESHOLD; 1 << TABLE_BITS],
            signature: SetGrid::new(sets, ways, 0),
            reused: SetGrid::new(sets, ways, false),
            history: 0,
        }
    }

    fn update_history(&mut self, meta: &TlbMeta) {
        if meta.kind.is_instruction() {
            self.history = (self.history << 5) ^ (meta.pc >> 2);
        }
    }

    fn sig(&self, meta: &TlbMeta) -> u16 {
        let x = self.history ^ meta.vpn ^ (meta.pc >> 4);
        let folded = x ^ (x >> TABLE_BITS) ^ (x >> (2 * TABLE_BITS)) ^ (x >> (3 * TABLE_BITS));
        (folded as u16) & ((1 << TABLE_BITS) - 1) as u16
    }

    /// Confidence currently associated with the signature this access would
    /// produce (exposed for tests).
    pub fn confidence_for(&self, meta: &TlbMeta) -> u8 {
        // sig() masks to TABLE_BITS, within conf's 2^TABLE_BITS entries
        self.conf[self.sig(meta) as usize]
    }
}

impl Policy<TlbMeta> for Chirp {
    fn on_fill(&mut self, set: usize, way: usize, meta: &TlbMeta) {
        self.update_history(meta);
        let sig = self.sig(meta);
        self.signature.row_mut(set)[way] = sig;
        self.reused.row_mut(set)[way] = false;
        if self.conf[sig as usize] >= CONF_THRESHOLD {
            // Predicted to be reused soon: insert at MRU.
            self.stack.touch(set, way);
        } else {
            // Predicted dead: insert next to LRU so it leaves quickly.
            self.stack.place_at_height(set, way, 1);
        }
    }

    fn on_hit(&mut self, set: usize, way: usize, meta: &TlbMeta) {
        self.update_history(meta);
        self.stack.touch(set, way);
        if !self.reused.row(set)[way] {
            self.reused.row_mut(set)[way] = true;
            let s = self.signature.row(set)[way] as usize;
            self.conf[s] = (self.conf[s] + 1).min(CONF_MAX);
        }
    }

    fn victim(&mut self, set: usize, _incoming: &TlbMeta) -> usize {
        self.stack.lru(set)
    }

    fn on_evict(&mut self, set: usize, way: usize) {
        if !self.reused.row(set)[way] {
            let s = self.signature.row(set)[way] as usize;
            self.conf[s] = self.conf[s].saturating_sub(1);
        }
    }

    fn name(&self) -> &'static str {
        "chirp"
    }

    fn meta_bits(&self, sets: usize, ways: usize) -> u64 {
        // LRU ranks + per-entry signature and reuse bit; global confidence
        // table (3-bit counters) and the 64-bit folded history register.
        sets as u64 * ways as u64 * (crate::traits::rank_bits(ways) + TABLE_BITS as u64 + 1)
            + 3 * (1u64 << TABLE_BITS)
            + 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itpx_types::TranslationKind;

    fn meta(vpn: u64, pc: u64) -> TlbMeta {
        TlbMeta {
            vpn,
            pc,
            kind: TranslationKind::Instruction,
            thread: itpx_types::ThreadId(0),
        }
    }

    fn data_meta(vpn: u64, pc: u64) -> TlbMeta {
        TlbMeta {
            kind: TranslationKind::Data,
            ..meta(vpn, pc)
        }
    }

    #[test]
    fn unreused_entries_train_confidence_down_and_insert_low() {
        let mut p = Chirp::new(1, 4);
        // Data translations do not perturb the control-flow history, so the
        // signature is stable across these fills.
        let m = data_meta(100, 0x4000);
        // Evict without reuse until confidence is low.
        for _ in 0..CONF_THRESHOLD + 1 {
            p.on_fill(0, 0, &m);
            p.on_evict(0, 0);
        }
        assert!(p.confidence_for(&m) < CONF_THRESHOLD);
        p.on_fill(0, 0, &m);
        // Predicted dead: near the LRU position.
        assert!(p.stack.height_of(0, 0) <= 1);
    }

    #[test]
    fn confident_entries_insert_at_mru() {
        let mut p = Chirp::new(1, 4);
        let m = meta(7, 0x1000);
        p.on_fill(0, 2, &m); // default confidence == threshold
        assert_eq!(p.stack.mru(0), 2);
    }

    #[test]
    fn reuse_trains_up_once_per_generation() {
        let mut p = Chirp::new(1, 2);
        let m = meta(3, 0x2000);
        p.on_fill(0, 0, &m);
        let sig = p.signature.row(0)[0] as usize;
        let before = p.conf[sig];
        p.on_hit(0, 0, &m);
        p.on_hit(0, 0, &m);
        assert_eq!(p.conf[sig], (before + 1).min(CONF_MAX));
    }

    #[test]
    fn victim_is_lru() {
        let mut p = Chirp::new(1, 3);
        for w in 0..3 {
            p.on_fill(0, w, &meta(w as u64, 0x3000 + w as u64));
        }
        let v = p.victim(0, &meta(9, 0x9000));
        assert_eq!(v, p.stack.lru(0));
    }
}
