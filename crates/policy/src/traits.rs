//! The replacement-policy trait shared by TLBs and caches.

use crate::meta::{CacheMeta, TlbMeta};

/// A set-associative replacement policy over per-access metadata `M`.
///
/// The owning structure (a TLB in `itpx-vm`, a cache in `itpx-mem`) calls:
///
/// * [`Policy::victim`] when a fill finds its set full — the policy picks a
///   way to evict. The structure then calls [`Policy::on_evict`] for the
///   victim and [`Policy::on_fill`] for the newcomer.
/// * [`Policy::on_fill`] when a block/entry is installed (also into an
///   invalid way, in which case no victim was requested).
/// * [`Policy::on_hit`] when a lookup hits.
///
/// Implementations keep all their state (recency stacks, RRPVs, predictor
/// tables) internally, sized at construction from `(sets, ways)`.
pub trait Policy<M>: std::fmt::Debug + Send {
    /// Records that `meta` was installed into `(set, way)`.
    fn on_fill(&mut self, set: usize, way: usize, meta: &M);

    /// Records a hit on `(set, way)`.
    fn on_hit(&mut self, set: usize, way: usize, meta: &M);

    /// Picks the way to evict from a full `set` so `incoming` can be
    /// installed. Must return a value `< ways`.
    fn victim(&mut self, set: usize, incoming: &M) -> usize;

    /// Notifies the policy that `(set, way)` was evicted (used by policies
    /// that train on reuse outcomes, e.g. SHiP, CHiRP). Default: no-op.
    fn on_evict(&mut self, _set: usize, _way: usize) {}

    /// Short, stable policy name for reports (e.g. `"lru"`, `"ship"`).
    fn name(&self) -> &'static str;
}

/// A boxed cache replacement policy.
pub type CachePolicy = Box<dyn Policy<CacheMeta>>;

/// A boxed TLB replacement policy.
pub type TlbPolicy = Box<dyn Policy<TlbMeta>>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Lru;

    #[test]
    fn policies_are_object_safe() {
        let _c: CachePolicy = Box::new(Lru::new(2, 2));
        let _t: TlbPolicy = Box::new(Lru::new(2, 2));
    }
}
