//! The replacement-policy trait shared by TLBs and caches.

use crate::meta::{CacheMeta, TlbMeta};

/// Bits needed to encode a recency rank among `ways` ways (true LRU keeps
/// one rank per entry).
pub fn rank_bits(ways: usize) -> u64 {
    if ways <= 1 {
        0
    } else {
        (usize::BITS - (ways - 1).leading_zeros()) as u64
    }
}

/// Architectural state of one [`itpx_types::Rng64`] (4 × 64-bit xoshiro
/// words). Stochastic policies charge this against their budget; a hardware
/// implementation would use a comparably sized LFSR.
pub const RNG_STATE_BITS: u64 = 256;

/// Width of the set-dueling PSEL counter (see `SetDuel`: 10-bit as in
/// Qureshi et al., ISCA 2007).
pub const PSEL_BITS: u64 = 10;

/// A set-associative replacement policy over per-access metadata `M`.
///
/// The owning structure (a TLB in `itpx-vm`, a cache in `itpx-mem`) calls:
///
/// * [`Policy::victim`] when a fill finds its set full — the policy picks a
///   way to evict. The structure then calls [`Policy::on_evict`] for the
///   victim and [`Policy::on_fill`] for the newcomer.
/// * [`Policy::on_fill`] when a block/entry is installed (also into an
///   invalid way, in which case no victim was requested).
/// * [`Policy::on_hit`] when a lookup hits.
///
/// Implementations keep all their state (recency stacks, RRPVs, predictor
/// tables) internally, sized at construction from `(sets, ways)`.
pub trait Policy<M>: std::fmt::Debug + Send {
    /// Records that `meta` was installed into `(set, way)`.
    fn on_fill(&mut self, set: usize, way: usize, meta: &M);

    /// Records a hit on `(set, way)`.
    fn on_hit(&mut self, set: usize, way: usize, meta: &M);

    /// Picks the way to evict from a full `set` so `incoming` can be
    /// installed. Must return a value `< ways`.
    fn victim(&mut self, set: usize, incoming: &M) -> usize;

    /// Notifies the policy that `(set, way)` was evicted (used by policies
    /// that train on reuse outcomes, e.g. SHiP, CHiRP). Default: no-op.
    fn on_evict(&mut self, _set: usize, _way: usize) {}

    /// Short, stable policy name for reports (e.g. `"lru"`, `"ship"`).
    fn name(&self) -> &'static str;

    /// Total architectural metadata this policy keeps for a structure of
    /// `sets × ways` entries, in bits.
    ///
    /// This is the hardware cost audited by `cargo xtask analyze`: every
    /// field of the policy's state counted at its *architectural* width
    /// (a 2-bit RRPV counts 2 bits even though the model stores a `u8`),
    /// including global predictor tables, PSEL counters, and PRNG state.
    /// The audit cross-checks the returned value against an independently
    /// coded formula and against the declared per-entry budget (paper
    /// Section 4.1.3 for iTP, Figure 6 for xPTP).
    fn meta_bits(&self, sets: usize, ways: usize) -> u64;
}

impl<M> Policy<M> for Box<dyn Policy<M>> {
    fn on_fill(&mut self, set: usize, way: usize, meta: &M) {
        (**self).on_fill(set, way, meta);
    }

    fn on_hit(&mut self, set: usize, way: usize, meta: &M) {
        (**self).on_hit(set, way, meta);
    }

    fn victim(&mut self, set: usize, incoming: &M) -> usize {
        (**self).victim(set, incoming)
    }

    fn on_evict(&mut self, set: usize, way: usize) {
        (**self).on_evict(set, way);
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn meta_bits(&self, sets: usize, ways: usize) -> u64 {
        (**self).meta_bits(sets, ways)
    }
}

/// A boxed cache replacement policy.
pub type CachePolicy = Box<dyn Policy<CacheMeta>>;

/// A boxed TLB replacement policy.
pub type TlbPolicy = Box<dyn Policy<TlbMeta>>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Lru;

    #[test]
    fn policies_are_object_safe() {
        let _c: CachePolicy = Box::new(Lru::new(2, 2));
        let _t: TlbPolicy = Box::new(Lru::new(2, 2));
    }
}
