//! Random replacement — the policy vendors typically use for first-level
//! TLBs (Section 2.3).

use crate::traits::Policy;
use itpx_types::Rng64;

/// Evicts a uniformly random way. Deterministic given its seed.
#[derive(Debug, Clone)]
pub struct RandomEvict {
    ways: usize,
    rng: Rng64,
}

impl RandomEvict {
    /// Creates a random policy for the given associativity and seed.
    pub fn new(ways: usize, seed: u64) -> Self {
        assert!(ways > 0, "RandomEvict needs ways > 0");
        Self {
            ways,
            rng: Rng64::new(seed),
        }
    }
}

impl<M> Policy<M> for RandomEvict {
    fn on_fill(&mut self, _set: usize, _way: usize, _meta: &M) {}

    fn on_hit(&mut self, _set: usize, _way: usize, _meta: &M) {}

    fn victim(&mut self, _set: usize, _incoming: &M) -> usize {
        self.rng.index(self.ways)
    }

    fn name(&self) -> &'static str {
        "random"
    }

    fn meta_bits(&self, _sets: usize, _ways: usize) -> u64 {
        // No per-entry state; only the shared generator.
        crate::traits::RNG_STATE_BITS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::TlbMeta;
    use itpx_types::TranslationKind;

    #[test]
    fn victims_stay_in_range_and_cover_ways() {
        let mut p = RandomEvict::new(4, 1);
        let meta = TlbMeta::demand(1, TranslationKind::Data);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let v = Policy::<TlbMeta>::victim(&mut p, 0, &meta);
            assert!(v < 4);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let meta = TlbMeta::demand(1, TranslationKind::Data);
        let mut a = RandomEvict::new(8, 42);
        let mut b = RandomEvict::new(8, 42);
        for _ in 0..50 {
            assert_eq!(
                Policy::<TlbMeta>::victim(&mut a, 0, &meta),
                Policy::<TlbMeta>::victim(&mut b, 0, &meta)
            );
        }
    }
}
