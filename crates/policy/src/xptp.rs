//! xPTP — extended Page Table Prioritization (paper Section 4.2).
//!
//! xPTP is an L2-cache replacement policy that amplifies iTP: because iTP
//! trades data STLB hits for instruction STLB hits, the number of *data*
//! page walks rises (Finding 3), and each walk references PTE blocks in the
//! L2C. xPTP keeps exactly LRU's insertion and promotion but changes victim
//! selection (Figure 6):
//!
//! 1. identify the `LRUpos` block (the LRU victim), and in parallel
//! 2. identify the *alternative* victim — the block closest to `LRUpos`
//!    that does **not** hold a data PTE;
//! 3. if the alternative sits at or above `LRUpos + K` in the stack (i.e.
//!    it is too recently used to sacrifice), evict the LRU block anyway;
//! 4. otherwise evict the alternative, preserving the data PTE.
//!
//! Unlike PTP and T-DRRIP, xPTP protects only **data** PTEs — instruction
//! PTEs are covered by iTP keeping their translations in the STLB, so
//! caching them would waste L2C space.

use crate::{CacheMeta, Policy, RecencyStack};
use itpx_types::SetGrid;

/// Tunable parameters of [`Xptp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XptpParams {
    /// Recency-stack height threshold `K`: an alternative victim at height
    /// `>= K` is considered too recently used, and the LRU block (a data
    /// PTE) is evicted instead. With `K` equal to the associativity the
    /// protection is strict. Paper default (Table 1): 8 for the 8-way L2C.
    pub k: usize,
}

impl Default for XptpParams {
    fn default() -> Self {
        Self { k: 8 }
    }
}

/// The xPTP L2-cache replacement policy.
#[derive(Debug, Clone)]
pub struct Xptp {
    params: XptpParams,
    stack: RecencyStack,
    /// The per-block `Type` bit: true when the block holds a data PTE.
    is_data_pte: SetGrid<bool>,
}

impl Xptp {
    /// Creates an xPTP policy for `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `params.k == 0` or `params.k > ways`.
    pub fn new(sets: usize, ways: usize, params: XptpParams) -> Self {
        assert!(
            params.k >= 1 && params.k <= ways,
            "xPTP requires 1 <= K <= ways (K={}, ways={ways})",
            params.k
        );
        Self {
            params,
            stack: RecencyStack::new(sets, ways),
            is_data_pte: SetGrid::new(sets, ways, false),
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> &XptpParams {
        &self.params
    }

    /// Whether `(set, way)` currently holds a data PTE (the stored `Type`
    /// bit).
    pub fn type_bit(&self, set: usize, way: usize) -> bool {
        self.is_data_pte.row(set)[way]
    }

    /// Victim selection shared with [`crate::AdaptiveXptp`]: Figure 6 steps
    /// a–d.
    pub(crate) fn select_victim(
        stack: &RecencyStack,
        is_data_pte: &[bool],
        set: usize,
        k: usize,
    ) -> usize {
        let lru = stack.lru(set);
        // Step b: the block closest to LRUpos not holding a data PTE.
        let alt = stack.iter_lru_to_mru(set).find(|&w| !is_data_pte[w]);
        match alt {
            // Step c/d: if the alternative is K or more positions above
            // LRUpos it is too hot to evict — fall back to the LRU block.
            Some(alt) if stack.height_of(set, alt) < k => alt,
            _ => lru,
        }
    }
}

impl Policy<CacheMeta> for Xptp {
    fn on_fill(&mut self, set: usize, way: usize, meta: &CacheMeta) {
        // LRU insertion; the only addition is recording the Type bit
        // (Figure 7 step 3.1: written back when the fill completes).
        self.is_data_pte.row_mut(set)[way] = meta.fill.is_data_pte();
        self.stack.touch(set, way);
    }

    fn on_hit(&mut self, set: usize, way: usize, meta: &CacheMeta) {
        // A hit by a data page walk marks the block as holding a data PTE;
        // payload hits leave the bit unchanged (a PTE block is still a PTE
        // block when the walker re-reads it).
        if meta.fill.is_data_pte() {
            self.is_data_pte.row_mut(set)[way] = true;
        }
        self.stack.touch(set, way);
    }

    fn victim(&mut self, set: usize, _incoming: &CacheMeta) -> usize {
        Self::select_victim(&self.stack, self.is_data_pte.row(set), set, self.params.k)
    }

    fn name(&self) -> &'static str {
        "xptp"
    }

    fn meta_bits(&self, sets: usize, ways: usize) -> u64 {
        // LRU ranks + the per-block Type bit (Figure 6's only addition).
        sets as u64 * ways as u64 * (crate::traits::rank_bits(ways) + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itpx_types::FillClass;

    fn m(b: u64, fill: FillClass) -> CacheMeta {
        CacheMeta::demand(b, fill)
    }

    #[test]
    fn protects_data_pte_at_lru_pos() {
        let mut p = Xptp::new(1, 8, XptpParams::default());
        p.on_fill(0, 0, &m(0, FillClass::DataPte)); // becomes LRU
        for w in 1..8 {
            p.on_fill(0, w, &m(w as u64, FillClass::DataPayload));
        }
        // LRU is the data PTE; the alternative is way 1 (height 1 < K=8).
        assert_eq!(p.victim(0, &m(9, FillClass::DataPayload)), 1);
    }

    #[test]
    fn does_not_protect_instruction_ptes() {
        let mut p = Xptp::new(1, 4, XptpParams { k: 4 });
        p.on_fill(0, 0, &m(0, FillClass::InstrPte));
        for w in 1..4 {
            p.on_fill(0, w, &m(w as u64, FillClass::DataPayload));
        }
        assert_eq!(p.victim(0, &m(9, FillClass::DataPayload)), 0);
    }

    #[test]
    fn k_threshold_falls_back_to_lru_when_alt_is_hot() {
        let mut p = Xptp::new(1, 4, XptpParams { k: 2 });
        // Fill: ways 0..2 hold data PTEs at the bottom, way 3 is payload
        // and most recently used (height 3 >= K=2).
        p.on_fill(0, 0, &m(0, FillClass::DataPte));
        p.on_fill(0, 1, &m(1, FillClass::DataPte));
        p.on_fill(0, 2, &m(2, FillClass::DataPte));
        p.on_fill(0, 3, &m(3, FillClass::DataPayload));
        assert_eq!(p.victim(0, &m(9, FillClass::DataPayload)), 0);
    }

    #[test]
    fn all_data_pte_set_degenerates_to_lru() {
        let mut p = Xptp::new(1, 3, XptpParams { k: 3 });
        for w in 0..3 {
            p.on_fill(0, w, &m(w as u64, FillClass::DataPte));
        }
        assert_eq!(p.victim(0, &m(9, FillClass::DataPte)), 0);
    }

    #[test]
    fn walker_hit_sets_type_bit() {
        let mut p = Xptp::new(1, 2, XptpParams { k: 2 });
        p.on_fill(0, 0, &m(0, FillClass::DataPayload));
        assert!(!p.type_bit(0, 0));
        p.on_hit(0, 0, &m(0, FillClass::DataPte));
        assert!(p.type_bit(0, 0));
        // A later payload hit does not clear it.
        p.on_hit(0, 0, &m(0, FillClass::DataPayload));
        assert!(p.type_bit(0, 0));
    }

    #[test]
    fn insertion_and_promotion_are_plain_lru() {
        let mut p = Xptp::new(1, 3, XptpParams { k: 3 });
        p.on_fill(0, 0, &m(0, FillClass::DataPayload));
        p.on_fill(0, 1, &m(1, FillClass::DataPayload));
        p.on_fill(0, 2, &m(2, FillClass::DataPayload));
        p.on_hit(0, 0, &m(0, FillClass::DataPayload));
        // LRU order now: 1 (oldest), 2, 0.
        assert_eq!(p.victim(0, &m(9, FillClass::DataPayload)), 1);
    }

    #[test]
    #[should_panic(expected = "1 <= K <= ways")]
    fn k_zero_panics() {
        let _ = Xptp::new(1, 8, XptpParams { k: 0 });
    }

    #[test]
    #[should_panic(expected = "1 <= K <= ways")]
    fn k_above_ways_panics() {
        let _ = Xptp::new(1, 8, XptpParams { k: 9 });
    }
}
