//! DIP — Dynamic Insertion Policy (Qureshi et al., ISCA 2007): set-duels
//! traditional LRU insertion against Bimodal Insertion (LIP with an
//! occasional MRU insert). One of the recency-based translation-oblivious
//! baselines the paper's related-work section classifies (its reference 67).

use crate::meta::CacheMeta;
use crate::recency::RecencyStack;
use crate::rrip::SetDuel;
use crate::traits::Policy;
use itpx_types::Rng64;

/// Probability denominator for BIP's occasional MRU insertion (1/32).
const BIP_EPSILON: u64 = 32;

/// Dynamic Insertion Policy over a true recency stack.
#[derive(Debug, Clone)]
pub struct Dip {
    stack: RecencyStack,
    duel: SetDuel,
    rng: Rng64,
}

impl Dip {
    /// Creates a DIP policy with a deterministic seed.
    pub fn new(sets: usize, ways: usize, seed: u64) -> Self {
        Self {
            stack: RecencyStack::new(sets, ways),
            duel: SetDuel::new(sets),
            rng: Rng64::new(seed),
        }
    }
}

impl Policy<CacheMeta> for Dip {
    fn on_fill(&mut self, set: usize, way: usize, _meta: &CacheMeta) {
        self.duel.on_fill(set);
        if self.duel.use_primary(set) {
            // Traditional LRU insertion at MRU.
            self.stack.touch(set, way);
        } else if self.rng.below(BIP_EPSILON) == 0 {
            // BIP: occasionally admit to MRU so a new working set can
            // establish itself.
            self.stack.touch(set, way);
        } else {
            // LIP: insert at LRU — thrash-resistant.
            self.stack.place_at_height(set, way, 0);
        }
    }

    fn on_hit(&mut self, set: usize, way: usize, _meta: &CacheMeta) {
        self.stack.touch(set, way);
    }

    fn victim(&mut self, set: usize, _incoming: &CacheMeta) -> usize {
        self.stack.lru(set)
    }

    fn name(&self) -> &'static str {
        "dip"
    }

    fn meta_bits(&self, sets: usize, ways: usize) -> u64 {
        sets as u64 * ways as u64 * crate::traits::rank_bits(ways)
            + crate::traits::PSEL_BITS
            + crate::traits::RNG_STATE_BITS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itpx_types::FillClass;

    fn m(b: u64) -> CacheMeta {
        CacheMeta::demand(b, FillClass::DataPayload)
    }

    #[test]
    fn leader_sets_use_their_pinned_flavor() {
        // Set 0 is an LRU leader (primary), set 1 a BIP leader.
        let mut p = Dip::new(64, 4, 1);
        p.on_fill(0, 2, &m(1));
        assert_eq!(p.stack.mru(0), 2, "LRU leader inserts at MRU");
        // BIP leader inserts at LRU (except the 1/32 epsilon).
        let mut lru_inserts = 0;
        for i in 0..32 {
            p.on_fill(1, (i % 4) as usize, &m(i));
            if p.stack.lru(1) == (i % 4) as usize {
                lru_inserts += 1;
            }
        }
        assert!(
            lru_inserts >= 28,
            "BIP mostly inserts at LRU: {lru_inserts}"
        );
    }

    #[test]
    fn hits_always_promote_to_mru() {
        let mut p = Dip::new(64, 4, 2);
        p.on_fill(1, 3, &m(7)); // BIP leader, likely LRU insert
        p.on_hit(1, 3, &m(7));
        assert_eq!(p.stack.mru(1), 3);
    }

    #[test]
    fn victim_is_lru() {
        let mut p = Dip::new(64, 4, 3);
        for w in 0..4 {
            p.on_fill(2, w, &m(w as u64));
            p.on_hit(2, w, &m(w as u64));
        }
        assert_eq!(p.victim(2, &m(9)), 0);
    }

    #[test]
    fn thrash_pattern_flips_followers_toward_bip() {
        // 128 sets → duel stride 4: sets ≡ 0 are LRU leaders, ≡ 1 are BIP
        // leaders, the rest follow the PSEL winner.
        let mut p = Dip::new(128, 4, 4);
        // Miss storm on the LRU leader sets only: PSEL moves toward BIP.
        for i in 0..600u64 {
            let set = ((i % 16) * 8) as usize; // multiples of 4 ⊂ leaders
            p.on_fill(set, (i % 4) as usize, &m(i));
        }
        // A follower set now inserts at LRU most of the time.
        let follower = 2usize;
        let mut lru_inserts = 0;
        for i in 0..32u64 {
            p.on_fill(follower, (i % 4) as usize, &m(1000 + i));
            if p.stack.lru(follower) == (i % 4) as usize {
                lru_inserts += 1;
            }
        }
        assert!(
            lru_inserts >= 24,
            "followers should use BIP after LRU-leader thrash: {lru_inserts}"
        );
    }
}
