//! The RRIP family (Jaleel et al., ISCA 2010): SRRIP, BRRIP, and the
//! set-dueling hybrid DRRIP. These are the translation-oblivious baselines
//! T-DRRIP builds on and a common vendor-grade cache policy.

use crate::meta::CacheMeta;
use crate::traits::Policy;
use itpx_types::{Rng64, SetGrid};

/// Maximum re-reference prediction value for 2-bit RRIP.
pub(crate) const RRPV_MAX: u8 = 3;
/// Architectural width of one RRPV counter.
pub(crate) const RRPV_BITS: u64 = 2;
/// "Long re-reference interval" insertion value.
pub(crate) const RRPV_LONG: u8 = 2;

/// Shared RRPV bookkeeping for the RRIP family.
#[derive(Debug, Clone)]
pub(crate) struct RripState {
    rrpv: SetGrid<u8>,
}

impl RripState {
    pub(crate) fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0 && ways > 0, "RRIP needs sets > 0, ways > 0");
        Self {
            rrpv: SetGrid::new(sets, ways, RRPV_MAX),
        }
    }

    pub(crate) fn set_rrpv(&mut self, set: usize, way: usize, v: u8) {
        self.rrpv.row_mut(set)[way] = v;
    }

    #[cfg(test)]
    pub(crate) fn rrpv(&self, set: usize, way: usize) -> u8 {
        self.rrpv.row(set)[way]
    }

    /// Standard RRIP victim search: the first way at `RRPV_MAX`, aging the
    /// whole set until one exists.
    pub(crate) fn victim(&mut self, set: usize) -> usize {
        loop {
            if let Some(w) = self.rrpv.row(set).iter().position(|&v| v == RRPV_MAX) {
                return w;
            }
            for v in self.rrpv.row_mut(set) {
                *v += 1;
            }
        }
    }
}

/// Static RRIP: inserts at a long re-reference interval, promotes hits to
/// near-immediate.
#[derive(Debug, Clone)]
pub struct Srrip {
    state: RripState,
}

impl Srrip {
    /// Creates an SRRIP policy.
    pub fn new(sets: usize, ways: usize) -> Self {
        Self {
            state: RripState::new(sets, ways),
        }
    }
}

impl Policy<CacheMeta> for Srrip {
    fn on_fill(&mut self, set: usize, way: usize, _meta: &CacheMeta) {
        self.state.set_rrpv(set, way, RRPV_LONG);
    }

    fn on_hit(&mut self, set: usize, way: usize, _meta: &CacheMeta) {
        self.state.set_rrpv(set, way, 0);
    }

    fn victim(&mut self, set: usize, _incoming: &CacheMeta) -> usize {
        self.state.victim(set)
    }

    fn name(&self) -> &'static str {
        "srrip"
    }

    fn meta_bits(&self, sets: usize, ways: usize) -> u64 {
        sets as u64 * ways as u64 * RRPV_BITS
    }
}

/// Bimodal RRIP: inserts at the distant interval most of the time, at the
/// long interval with probability 1/32.
#[derive(Debug, Clone)]
pub struct Brrip {
    state: RripState,
    rng: Rng64,
}

impl Brrip {
    /// Creates a BRRIP policy with a deterministic seed.
    pub fn new(sets: usize, ways: usize, seed: u64) -> Self {
        Self {
            state: RripState::new(sets, ways),
            rng: Rng64::new(seed),
        }
    }
}

impl Policy<CacheMeta> for Brrip {
    fn on_fill(&mut self, set: usize, way: usize, _meta: &CacheMeta) {
        let v = if self.rng.below(32) == 0 {
            RRPV_LONG
        } else {
            RRPV_MAX
        };
        self.state.set_rrpv(set, way, v);
    }

    fn on_hit(&mut self, set: usize, way: usize, _meta: &CacheMeta) {
        self.state.set_rrpv(set, way, 0);
    }

    fn victim(&mut self, set: usize, _incoming: &CacheMeta) -> usize {
        self.state.victim(set)
    }

    fn name(&self) -> &'static str {
        "brrip"
    }

    fn meta_bits(&self, sets: usize, ways: usize) -> u64 {
        sets as u64 * ways as u64 * RRPV_BITS + crate::traits::RNG_STATE_BITS
    }
}

/// Which insertion flavor a set-dueling policy should use for a given set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DuelRole {
    /// Leader set pinned to the primary (SRRIP-like) flavor.
    LeaderPrimary,
    /// Leader set pinned to the alternate (BRRIP-like) flavor.
    LeaderAlternate,
    /// Follower set: uses whichever flavor the PSEL counter favors.
    Follower,
}

/// Set-dueling selector (Qureshi et al., ISCA 2007): a handful of leader
/// sets are pinned to each flavor and a saturating PSEL counter, bumped on
/// leader-set fills (i.e. misses), decides what followers do.
#[derive(Debug, Clone)]
pub(crate) struct SetDuel {
    psel: i32,
    max: i32,
    stride: usize,
}

impl SetDuel {
    pub(crate) fn new(sets: usize) -> Self {
        // One leader pair per 32 sets, 10-bit PSEL as in the literature.
        let stride = (sets / 32).max(2);
        Self {
            psel: 0,
            max: 512,
            stride,
        }
    }

    pub(crate) fn role(&self, set: usize) -> DuelRole {
        if set.is_multiple_of(self.stride) {
            DuelRole::LeaderPrimary
        } else if set % self.stride == 1 {
            DuelRole::LeaderAlternate
        } else {
            DuelRole::Follower
        }
    }

    /// Records a fill (≈ miss) in `set`; leader misses move PSEL away from
    /// their own flavor.
    pub(crate) fn on_fill(&mut self, set: usize) {
        match self.role(set) {
            DuelRole::LeaderPrimary => self.psel = self.psel.saturating_add(1).min(self.max),
            DuelRole::LeaderAlternate => self.psel = self.psel.saturating_sub(1).max(-self.max),
            DuelRole::Follower => {}
        }
    }

    /// `true` when followers should use the primary flavor.
    pub(crate) fn primary_wins(&self) -> bool {
        self.psel <= 0
    }

    /// Effective flavor for `set`: leaders use their pinned flavor,
    /// followers the current winner.
    pub(crate) fn use_primary(&self, set: usize) -> bool {
        match self.role(set) {
            DuelRole::LeaderPrimary => true,
            DuelRole::LeaderAlternate => false,
            DuelRole::Follower => self.primary_wins(),
        }
    }
}

/// Dynamic RRIP: set-duels SRRIP against BRRIP insertion.
#[derive(Debug, Clone)]
pub struct Drrip {
    state: RripState,
    duel: SetDuel,
    rng: Rng64,
}

impl Drrip {
    /// Creates a DRRIP policy with a deterministic seed.
    pub fn new(sets: usize, ways: usize, seed: u64) -> Self {
        Self {
            state: RripState::new(sets, ways),
            duel: SetDuel::new(sets),
            rng: Rng64::new(seed),
        }
    }

    fn insertion_rrpv(&mut self, set: usize) -> u8 {
        if self.duel.use_primary(set) || self.rng.below(32) == 0 {
            // SRRIP flavor, or BRRIP's occasional long-interval insert.
            RRPV_LONG
        } else {
            RRPV_MAX
        }
    }
}

impl Policy<CacheMeta> for Drrip {
    fn on_fill(&mut self, set: usize, way: usize, _meta: &CacheMeta) {
        self.duel.on_fill(set);
        let v = self.insertion_rrpv(set);
        self.state.set_rrpv(set, way, v);
    }

    fn on_hit(&mut self, set: usize, way: usize, _meta: &CacheMeta) {
        self.state.set_rrpv(set, way, 0);
    }

    fn victim(&mut self, set: usize, _incoming: &CacheMeta) -> usize {
        self.state.victim(set)
    }

    fn name(&self) -> &'static str {
        "drrip"
    }

    fn meta_bits(&self, sets: usize, ways: usize) -> u64 {
        sets as u64 * ways as u64 * RRPV_BITS
            + crate::traits::PSEL_BITS
            + crate::traits::RNG_STATE_BITS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itpx_types::FillClass;

    fn m(b: u64) -> CacheMeta {
        CacheMeta::demand(b, FillClass::DataPayload)
    }

    #[test]
    fn srrip_victimizes_distant_blocks_first() {
        let mut p = Srrip::new(1, 4);
        for w in 0..4 {
            p.on_fill(0, w, &m(w as u64)); // all at RRPV_LONG
        }
        p.on_hit(0, 2, &m(2)); // way 2 -> RRPV 0
        let v = p.victim(0, &m(9));
        assert_ne!(v, 2, "hit block should not be the first victim");
    }

    #[test]
    fn srrip_victim_scan_ages_until_found() {
        let mut p = Srrip::new(1, 2);
        p.on_fill(0, 0, &m(0));
        p.on_fill(0, 1, &m(1));
        p.on_hit(0, 0, &m(0));
        p.on_hit(0, 1, &m(1));
        // Both at 0; aging should still produce a victim.
        let v = p.victim(0, &m(9));
        assert!(v < 2);
    }

    #[test]
    fn brrip_mostly_inserts_distant() {
        let mut p = Brrip::new(1, 16, 7);
        let mut distant = 0;
        for w in 0..16 {
            p.on_fill(0, w, &m(w as u64));
            if p.state.rrpv(0, w) == RRPV_MAX {
                distant += 1;
            }
        }
        assert!(distant >= 12, "BRRIP should usually insert at RRPV max");
    }

    #[test]
    fn duel_roles_partition_sets() {
        let d = SetDuel::new(64);
        let mut primary = 0;
        let mut alternate = 0;
        for s in 0..64 {
            match d.role(s) {
                DuelRole::LeaderPrimary => primary += 1,
                DuelRole::LeaderAlternate => alternate += 1,
                DuelRole::Follower => {}
            }
        }
        assert_eq!(primary, alternate);
        assert!(primary > 0);
    }

    #[test]
    fn duel_follows_the_less_missing_leader() {
        let mut d = SetDuel::new(64);
        // Hammer misses on the primary leader sets only.
        for _ in 0..100 {
            d.on_fill(0);
        }
        assert!(
            !d.primary_wins(),
            "primary missed a lot, alternate should win"
        );
        // Now hammer the alternate leader harder.
        for _ in 0..300 {
            d.on_fill(1);
        }
        assert!(d.primary_wins());
    }

    #[test]
    fn drrip_produces_valid_victims() {
        let mut p = Drrip::new(8, 4, 3);
        for s in 0..8 {
            for w in 0..4 {
                p.on_fill(s, w, &m((s * 4 + w) as u64));
            }
            assert!(p.victim(s, &m(99)) < 4);
        }
    }
}
