//! Per-access metadata handed to replacement policies.

use itpx_types::{FillClass, LevelId, ThreadId, TranslationKind};

/// Metadata describing one TLB access, as seen by a TLB replacement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbMeta {
    /// Virtual page number of the translation.
    pub vpn: u64,
    /// Program counter of the instruction that triggered the access
    /// (the fetch address itself for instruction translations).
    pub pc: u64,
    /// Whether the entry translates instruction or data addresses — the
    /// paper's per-entry `Type` bit.
    pub kind: TranslationKind,
    /// Hardware thread performing the access.
    pub thread: ThreadId,
}

impl TlbMeta {
    /// Convenience constructor for a demand access on thread 0 with
    /// `pc == vpn`'s page base; tests and docs use this.
    pub fn demand(vpn: u64, kind: TranslationKind) -> Self {
        Self {
            vpn,
            pc: vpn << 12,
            kind,
            thread: ThreadId(0),
        }
    }
}

/// Metadata describing one cache access, as seen by a cache replacement
/// policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheMeta {
    /// Block index (physical address >> 6) being accessed or filled.
    pub block: u64,
    /// Program counter of the triggering instruction; 0 for page-walk and
    /// prefetch traffic, which has no architectural PC.
    pub pc: u64,
    /// What the block holds — the classification xPTP and the
    /// translation-aware baselines key on.
    pub fill: FillClass,
    /// `true` if the demand access that created this fill also missed in
    /// the STLB (used by T-DRRIP's deprioritization rule).
    pub stlb_miss: bool,
    /// Hardware thread performing the access.
    pub thread: ThreadId,
    /// The chain level this access is currently being applied to. The
    /// hierarchy stamps this as the access descends the level chain, so a
    /// policy can tell which level it is attached to.
    pub level: LevelId,
}

impl CacheMeta {
    /// Convenience constructor for a demand access of the given class on
    /// thread 0, entering the chain at [`LevelId::entry_for`] its class.
    pub fn demand(block: u64, fill: FillClass) -> Self {
        Self {
            block,
            pc: block << 6,
            fill,
            stlb_miss: false,
            thread: ThreadId(0),
            level: LevelId::entry_for(fill),
        }
    }

    /// Same as [`CacheMeta::demand`] but flagged as having missed the STLB.
    pub fn demand_stlb_miss(block: u64, fill: FillClass) -> Self {
        Self {
            stlb_miss: true,
            ..Self::demand(block, fill)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let t = TlbMeta::demand(5, TranslationKind::Instruction);
        assert_eq!(t.vpn, 5);
        assert_eq!(t.kind, TranslationKind::Instruction);

        let c = CacheMeta::demand(9, FillClass::DataPte);
        assert!(c.fill.is_data_pte());
        assert!(!c.stlb_miss);
        assert!(CacheMeta::demand_stlb_miss(9, FillClass::DataPayload).stlb_miss);
    }
}
