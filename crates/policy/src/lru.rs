//! True least-recently-used replacement — the paper's baseline at every
//! TLB and cache level.

use crate::recency::RecencyStack;
use crate::traits::Policy;

/// True LRU over an explicit recency stack.
///
/// Inserts at `MRUpos`, promotes hits to `MRUpos`, evicts `LRUpos` — the
/// baseline the paper measures every other policy against. Works for both
/// TLBs and caches (it ignores the access metadata).
#[derive(Debug, Clone)]
pub struct Lru {
    stack: RecencyStack,
}

impl Lru {
    /// Creates an LRU policy for `sets` sets of `ways` ways.
    pub fn new(sets: usize, ways: usize) -> Self {
        Self {
            stack: RecencyStack::new(sets, ways),
        }
    }

    /// Read-only view of the recency stack (used by tests).
    pub fn stack(&self) -> &RecencyStack {
        &self.stack
    }
}

impl<M> Policy<M> for Lru {
    fn on_fill(&mut self, set: usize, way: usize, _meta: &M) {
        self.stack.touch(set, way);
    }

    fn on_hit(&mut self, set: usize, way: usize, _meta: &M) {
        self.stack.touch(set, way);
    }

    fn victim(&mut self, set: usize, _incoming: &M) -> usize {
        self.stack.lru(set)
    }

    fn name(&self) -> &'static str {
        "lru"
    }

    fn meta_bits(&self, sets: usize, ways: usize) -> u64 {
        // One recency rank per entry (the full MRU→LRU ordering).
        sets as u64 * ways as u64 * crate::traits::rank_bits(ways)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::CacheMeta;
    use itpx_types::FillClass;

    fn m(b: u64) -> CacheMeta {
        CacheMeta::demand(b, FillClass::DataPayload)
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut p = Lru::new(1, 4);
        for w in 0..4 {
            p.on_fill(0, w, &m(w as u64));
        }
        // Touch 0 again; LRU is now 1.
        p.on_hit(0, 0, &m(0));
        assert_eq!(Policy::<CacheMeta>::victim(&mut p, 0, &m(9)), 1);
    }

    #[test]
    fn fill_after_eviction_cycles_through_all_ways() {
        let mut p = Lru::new(1, 3);
        for w in 0..3 {
            p.on_fill(0, w, &m(w as u64));
        }
        let mut victims = Vec::new();
        for i in 0..3 {
            let v = Policy::<CacheMeta>::victim(&mut p, 0, &m(10 + i));
            victims.push(v);
            p.on_fill(0, v, &m(10 + i));
        }
        victims.sort_unstable();
        assert_eq!(victims, vec![0, 1, 2]);
    }

    #[test]
    fn sets_are_independent() {
        let mut p = Lru::new(2, 2);
        p.on_fill(0, 0, &m(1));
        p.on_fill(0, 1, &m(2));
        p.on_fill(1, 1, &m(3));
        p.on_fill(1, 0, &m(4));
        assert_eq!(Policy::<CacheMeta>::victim(&mut p, 0, &m(9)), 0);
        assert_eq!(Policy::<CacheMeta>::victim(&mut p, 1, &m(9)), 1);
    }
}
