//! Hot-path analysis: a call-graph walk from the per-access entry points,
//! and the three rules enforced on every function it reaches.
//!
//! The ROADMAP's target — *no allocation in steady state, per-access calls
//! that inline* — is only meaningful on the code that actually runs per
//! access. The graph roots at the entry points the simulators drive on
//! every reference:
//!
//! * `Hierarchy::{instr_fetch, data_access, pte_access, access_chain}`
//! * `Cache::{probe, fill}`
//! * `Tlb::{lookup, fill, fill_and_complete, mshr_alloc, merge}`
//! * `PageWalker::walk`, `PageTable::translate`
//! * `System::translate`, `Engine::step`
//! * every `Policy` trait method body (`on_fill`, `on_hit`, `victim`,
//!   `on_evict`) — the engine enums dispatch straight into these, so they
//!   stand in for the `PolicyEngine` match arms the macro generates.
//!
//! Edges are resolved by name: `T::m(…)` binds to methods of `T`,
//! `recv.m(…)` to every workspace function named `m`, and `f(…)` to every
//! function named `f`. That over-approximates (two unrelated `len`s merge)
//! but never under-approximates within the parsed set, which is the safe
//! direction for a gate. Calls into std resolve to nothing and are instead
//! covered by the pattern rules below.
//!
//! Rules on hot functions:
//!
//! * `hot-alloc` — steady-state allocation: allocator constructors
//!   (`Box::new`, `vec!`, `format!`, …), allocating conversions
//!   (`.collect()`, `.to_vec()`, `.clone()`, …), and growth calls
//!   (`.push(…)`, `.insert(…)`, …) whose receiver resolves to a std
//!   collection type through the file's fields, params, and `let`s.
//! * `hot-float` — float literals, `as f32/f64` casts, and `f32::`/`f64::`
//!   paths: float state on an access path invites platform-dependent
//!   rounding into simulated decisions.
//! * `arith-width` — truncating `as` casts to sub-64-bit integers,
//!   `<<` with non-literal operands, and `+` on operands known to be
//!   sub-64-bit: the silent wrap/truncate cases address and cycle math
//!   must not hit.

use crate::ast::{FileAst, FnDef};
use crate::lexer::{Delim, TokKind, Token};
use crate::rules::{ty_base, RawFinding};
use std::collections::{BTreeMap, BTreeSet};

/// Typed entry points: `(self type, method)`.
const TYPED_ROOTS: &[(&str, &str)] = &[
    ("Hierarchy", "instr_fetch"),
    ("Hierarchy", "data_access"),
    ("Hierarchy", "pte_access"),
    ("Hierarchy", "access_chain"),
    ("Cache", "probe"),
    ("Cache", "fill"),
    ("Tlb", "lookup"),
    ("Tlb", "fill"),
    ("Tlb", "fill_and_complete"),
    ("Tlb", "mshr_alloc"),
    ("Tlb", "merge"),
    ("PageWalker", "walk"),
    ("PageTable", "translate"),
    ("System", "translate"),
    ("Engine", "step"),
];

/// Per-access trait methods: every implementation is a root.
const POLICY_ROOTS: &[&str] = &["on_fill", "on_hit", "victim", "on_evict"];

/// One function in the cross-file table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct FnId {
    /// Index into the analyzed file list.
    pub file: usize,
    /// Index into that file's `fns`.
    pub idx: usize,
}

/// Computes the set of hot functions over the analyzed files (only files
/// with `in_graph` set participate — the simulator crates).
pub fn hot_set(files: &[(&FileAst, bool)]) -> BTreeSet<FnId> {
    let mut by_name: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
    let mut by_typed: BTreeMap<(&str, &str), Vec<FnId>> = BTreeMap::new();
    for (fi, (ast, in_graph)) in files.iter().enumerate() {
        if !in_graph {
            continue;
        }
        for (gi, f) in ast.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            let id = FnId { file: fi, idx: gi };
            by_name.entry(&f.name).or_default().push(id);
            if let Some(ty) = &f.self_ty {
                by_typed.entry((ty, &f.name)).or_default().push(id);
            }
        }
    }
    let mut hot: BTreeSet<FnId> = BTreeSet::new();
    let mut queue: Vec<FnId> = Vec::new();
    let push = |id: FnId, hot: &mut BTreeSet<FnId>, queue: &mut Vec<FnId>| {
        if hot.insert(id) {
            queue.push(id);
        }
    };
    for &(ty, name) in TYPED_ROOTS {
        if let Some(ids) = by_typed.get(&(ty, name)) {
            for &id in ids {
                push(id, &mut hot, &mut queue);
            }
        }
    }
    for (fi, (ast, in_graph)) in files.iter().enumerate() {
        if !in_graph {
            continue;
        }
        for (gi, f) in ast.fns.iter().enumerate() {
            if !f.is_test
                && f.trait_name.as_deref() == Some("Policy")
                && POLICY_ROOTS.contains(&f.name.as_str())
            {
                push(FnId { file: fi, idx: gi }, &mut hot, &mut queue);
            }
        }
    }
    while let Some(id) = queue.pop() {
        let f = &files[id.file].0.fns[id.idx];
        for callee in callees(f) {
            match callee {
                Callee::Typed(ty, name) => {
                    if let Some(ids) = by_typed.get(&(ty.as_str(), name.as_str())) {
                        for &c in ids {
                            push(c, &mut hot, &mut queue);
                        }
                    }
                }
                Callee::Named(name) => {
                    if let Some(ids) = by_name.get(name.as_str()) {
                        for &c in ids {
                            push(c, &mut hot, &mut queue);
                        }
                    }
                }
            }
        }
    }
    hot
}

enum Callee {
    /// `Type::method(…)`
    Typed(String, String),
    /// `recv.method(…)` or `free_fn(…)`
    Named(String),
}

/// Extracts call targets from a function body by token shape.
fn callees(f: &FnDef) -> Vec<Callee> {
    let mut ts = Vec::new();
    crate::ast::linearize(&f.body, &mut ts);
    let mut out = Vec::new();
    let ident = |i: usize| -> Option<&str> {
        ts.get(i)
            .and_then(|t: &Token| (t.kind == TokKind::Ident).then_some(t.text.as_str()))
    };
    let punct = |i: usize, s: &str| ts.get(i).is_some_and(|t| t.is_punct(s));
    let open = |i: usize| {
        ts.get(i)
            .is_some_and(|t| t.kind == TokKind::Open(Delim::Paren))
    };
    for i in 0..ts.len() {
        // `Type::method(`
        if let (Some(ty), true, Some(m), true) =
            (ident(i), punct(i + 1, "::"), ident(i + 2), open(i + 3))
        {
            if ty.chars().next().is_some_and(|c| c.is_uppercase()) {
                let ty = if ty == "Self" {
                    f.self_ty.clone().unwrap_or_else(|| ty.to_string())
                } else {
                    ty.to_string()
                };
                out.push(Callee::Typed(ty, m.to_string()));
            }
            continue;
        }
        // `.method(`
        if punct(i, ".") && open(i + 2) {
            if let Some(m) = ident(i + 1) {
                out.push(Callee::Named(m.to_string()));
            }
            continue;
        }
        // bare `call(` — not a macro, not a path segment, not a method.
        if let Some(name) = ident(i) {
            if open(i + 1)
                && !is_call_keyword(name)
                && !(i > 0 && (punct(i - 1, ".") || punct(i - 1, "::") || punct(i - 1, "!")))
            {
                out.push(Callee::Named(name.to_string()));
            }
        }
    }
    out
}

fn is_call_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "while"
            | "for"
            | "match"
            | "return"
            | "loop"
            | "as"
            | "in"
            | "fn"
            | "let"
            | "move"
            | "else"
            | "unsafe"
            | "Some"
            | "Ok"
            | "Err"
            | "None"
    )
}

/// Allocator constructors flagged wherever they appear in a hot body.
const ALLOC_CTORS: &[(&str, &str)] = &[
    ("Box", "new"),
    ("Rc", "new"),
    ("Arc", "new"),
    ("String", "from"),
    ("Vec", "with_capacity"),
    ("Vec", "from"),
    ("String", "with_capacity"),
];

/// Allocating conversions/duplications flagged on any receiver.
const ALLOC_METHODS: &[&str] = &[
    "to_vec",
    "to_string",
    "to_owned",
    "collect",
    "clone",
    "reserve",
    "reserve_exact",
    "shrink_to_fit",
];

/// Growth calls flagged only when the receiver resolves to a std
/// collection (workspace receivers are covered by the call graph walking
/// into the callee's own body).
const GROW_METHODS: &[&str] = &[
    "push",
    "push_back",
    "push_front",
    "insert",
    "extend",
    "entry",
    "append",
    "push_str",
];

/// Std collection type names that own heap storage.
const STD_COLLECTIONS: &[&str] = &[
    "Vec",
    "VecDeque",
    "String",
    "BTreeMap",
    "BTreeSet",
    "HashMap",
    "HashSet",
    "BinaryHeap",
];

/// Integer types narrower than the address/cycle width.
const NARROW_INTS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// The per-function type environment: field, param, and `let` types by
/// identifier, used to resolve growth-call receivers and `+` operand
/// widths.
pub struct TypeEnv {
    map: BTreeMap<String, String>,
}

impl TypeEnv {
    /// Builds the environment for `f` in `ast`: all struct fields in the
    /// file, the function's params, and its type-ascribed `let`s.
    pub fn build(ast: &FileAst, f: &FnDef) -> Self {
        let mut map = BTreeMap::new();
        for field in &ast.fields {
            map.insert(field.name.clone(), field.ty.clone());
        }
        for (name, ty) in &f.params {
            map.insert(name.clone(), ty.clone());
        }
        let mut ts = Vec::new();
        crate::ast::linearize(&f.body, &mut ts);
        let mut i = 0usize;
        while i < ts.len() {
            if ts[i].is_ident("let") {
                let mut j = i + 1;
                if ts.get(j).is_some_and(|t| t.is_ident("mut")) {
                    j += 1;
                }
                if let Some(name) = ts.get(j).filter(|t| t.kind == TokKind::Ident) {
                    if ts.get(j + 1).is_some_and(|t| t.is_punct(":")) {
                        // Type runs until `=` or `;` at depth 0.
                        let mut k = j + 2;
                        let mut ty = String::new();
                        let mut depth = 0i32;
                        while let Some(t) = ts.get(k) {
                            match t.text.as_str() {
                                "<" => depth += 1,
                                ">" => depth -= 1,
                                "=" | ";" if depth <= 0 => break,
                                _ => {}
                            }
                            if !ty.is_empty() {
                                ty.push(' ');
                            }
                            ty.push_str(&t.text);
                            k += 1;
                        }
                        map.insert(name.text.clone(), ty);
                    }
                }
            }
            i += 1;
        }
        Self { map }
    }

    /// Flattened type of `name`, if known.
    pub fn lookup(&self, name: &str) -> Option<&str> {
        self.map.get(name).map(|s| s.as_str())
    }

    /// `true` when `name` is known to be a sub-64-bit integer.
    pub fn is_narrow(&self, name: &str) -> bool {
        self.lookup(name)
            .and_then(ty_base)
            .is_some_and(|b| NARROW_INTS.contains(&b))
    }

    /// Resolves a receiver type through `layers` levels of indexing
    /// (`Vec<BTreeMap<…>>` indexed once → `BTreeMap<…>`), returning the
    /// base type name.
    pub fn collection_base(&self, name: &str, layers: usize) -> Option<String> {
        let mut ty = self.lookup(name)?.to_string();
        for _ in 0..layers {
            ty = inner_of(&ty)?;
        }
        ty_base(&ty).map(|s| s.to_string())
    }
}

/// The first generic argument of a flattened type (`Vec < BTreeMap < a ,
/// b > >` → `BTreeMap < a , b >`).
fn inner_of(ty: &str) -> Option<String> {
    let words: Vec<&str> = ty.split_whitespace().collect();
    let open = words.iter().position(|w| *w == "<")?;
    let mut depth = 1i32;
    let mut end = words.len();
    for (i, w) in words.iter().enumerate().skip(open + 1) {
        match *w {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth == 0 {
                    end = i;
                    break;
                }
            }
            _ => {}
        }
    }
    Some(words[open + 1..end].join(" "))
}

/// Runs the three hot-path rules over one hot function.
pub fn scan_hot_fn(ast: &FileAst, f: &FnDef) -> Vec<RawFinding> {
    let env = TypeEnv::build(ast, f);
    let mut ts = Vec::new();
    crate::ast::linearize(&f.body, &mut ts);
    let mut out = Vec::new();
    let ident = |i: usize| -> Option<&str> {
        ts.get(i)
            .and_then(|t| (t.kind == TokKind::Ident).then_some(t.text.as_str()))
    };
    let punct = |i: usize, s: &str| ts.get(i).is_some_and(|t: &Token| t.is_punct(s));
    let open = |i: usize| {
        ts.get(i)
            .is_some_and(|t| t.kind == TokKind::Open(Delim::Paren))
    };
    let hot = format!("reachable from the per-access roots via `{}`", f.name);
    for i in 0..ts.len() {
        let t = &ts[i];
        // ---- hot-float ----
        if t.kind == TokKind::Float {
            out.push(RawFinding::at(
                "hot-float",
                t,
                format!("float literal; {hot}"),
            ));
        }
        if t.is_ident("as") {
            if let Some(ty) = ident(i + 1) {
                if ty == "f32" || ty == "f64" {
                    out.push(RawFinding::at("hot-float", t, format!("float cast; {hot}")));
                } else if NARROW_INTS.contains(&ty) && !width_cast_exempt(&ts, i, ty, &env) {
                    out.push(RawFinding::at(
                        "arith-width",
                        t,
                        format!("truncating cast to {ty}; mask explicitly or annotate; {hot}"),
                    ));
                }
            }
        }
        if (t.is_ident("f32") || t.is_ident("f64")) && punct(i + 1, "::") {
            out.push(RawFinding::at(
                "hot-float",
                t,
                format!("float intrinsic path; {hot}"),
            ));
        }
        // ---- hot-alloc: constructors and macros ----
        if t.kind == TokKind::Ident && punct(i + 1, "::") {
            if let Some(m) = ident(i + 2) {
                if ALLOC_CTORS.contains(&(t.text.as_str(), m)) && open(i + 3) {
                    out.push(RawFinding::at(
                        "hot-alloc",
                        t,
                        format!("{}::{} allocates; {hot}", t.text, m),
                    ));
                }
            }
        }
        if (t.is_ident("vec") || t.is_ident("format")) && punct(i + 1, "!") {
            out.push(RawFinding::at(
                "hot-alloc",
                t,
                format!("{}! allocates; {hot}", t.text),
            ));
        }
        // ---- hot-alloc: methods ----
        if punct(i, ".") && open(i + 2) {
            if let Some(m) = ident(i + 1) {
                if ALLOC_METHODS.contains(&m) {
                    out.push(RawFinding::at(
                        "hot-alloc",
                        &ts[i + 1],
                        format!(".{m}() allocates; {hot}"),
                    ));
                } else if GROW_METHODS.contains(&m) {
                    if let Some(base) = receiver_collection(&ts, i, &env) {
                        out.push(RawFinding::at(
                            "hot-alloc",
                            &ts[i + 1],
                            format!(".{m}() grows a {base}; {hot}"),
                        ));
                    }
                }
            }
        }
        // ---- arith-width: shifts and narrow addition ----
        if t.is_punct("<<") || t.is_punct("<<=") {
            let prev_lit = i > 0 && ts[i - 1].kind == TokKind::Int;
            // A literal or SCREAMING_CASE-const shift amount is a fixed,
            // reviewable distance; only a runtime-varying one can wander
            // past the operand width.
            let next_fixed = ts.get(i + 1).is_some_and(|n| {
                n.kind == TokKind::Int || (n.kind == TokKind::Ident && is_const_ident(&n.text))
            });
            if !prev_lit && !next_fixed {
                out.push(RawFinding::at(
                    "arith-width",
                    t,
                    format!("unchecked shift with non-literal operands; {hot}"),
                ));
            }
        }
        if t.is_punct("+") {
            let prev_narrow =
                i > 0 && ts[i - 1].kind == TokKind::Ident && env.is_narrow(&ts[i - 1].text);
            let next_narrow = ts
                .get(i + 1)
                .is_some_and(|n| n.kind == TokKind::Ident && env.is_narrow(&n.text));
            if prev_narrow || next_narrow {
                out.push(RawFinding::at(
                    "arith-width",
                    t,
                    format!(
                        "unchecked `+` on a sub-64-bit operand; use wrapping/saturating; {hot}"
                    ),
                ));
            }
        }
    }
    out
}

/// Bit width of a narrow integer type name.
fn int_bits(ty: &str) -> Option<u32> {
    match ty {
        "u8" | "i8" => Some(8),
        "u16" | "i16" => Some(16),
        "u32" | "i32" => Some(32),
        "u64" | "i64" | "usize" | "isize" => Some(64),
        _ => None,
    }
}

/// `true` for SCREAMING_CASE constant names.
fn is_const_ident(s: &str) -> bool {
    s.chars().next().is_some_and(|c| c.is_ascii_uppercase())
        && s.chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
}

/// Walks back from `end` (exclusive) over one `(…)`/`[…]` group; returns
/// the index of its opening delimiter, or `None`.
fn matching_open(ts: &[Token], end: usize, delim: Delim) -> Option<usize> {
    let mut depth = 1i32;
    let mut j = end;
    while j > 0 && depth > 0 {
        j -= 1;
        if ts[j].kind == TokKind::Close(delim) {
            depth += 1;
        } else if ts[j].kind == TokKind::Open(delim) {
            depth -= 1;
        }
    }
    (depth == 0).then_some(j)
}

/// A truncating cast is exempt when the scanner can see the value fits:
///
/// * the operand is a literal (`3 as u8`);
/// * the value is masked — an `&` or `%` just before the `as`
///   (`(x & 0xfff) as u16`) or just after the cast (`(x as u16) & MASK`);
/// * the operand is a parenthesized constant expression (literals and
///   `SCREAMING_CASE` consts only: `((1 << RDP_BITS) - 1) as u16`);
/// * the operand is a call to an explicitly-modular helper
///   (`now.wrapping_sub(t) as i32`);
/// * the operand's type resolves through the type environment to an
///   integer no wider than the target (`level as u32` with `level: u8`),
///   including through index chains (`self.tables[t][i] as i32` with
///   `tables: Vec<Vec<i8>>`).
fn width_cast_exempt(ts: &[Token], as_idx: usize, dst: &str, env: &TypeEnv) -> bool {
    if as_idx == 0 {
        return true;
    }
    let prev = &ts[as_idx - 1];
    if matches!(prev.kind, TokKind::Int | TokKind::Float) {
        return true;
    }
    // Mask just before the cast.
    let lo = as_idx.saturating_sub(6);
    if ts[lo..as_idx]
        .iter()
        .any(|t| t.is_punct("&") || t.is_punct("%"))
    {
        return true;
    }
    // Mask applied to the cast result: `(x as u16) & MASK`.
    let hi = (as_idx + 5).min(ts.len());
    if ts[as_idx + 2..hi]
        .iter()
        .any(|t| t.is_punct("&") || t.is_punct("%"))
    {
        return true;
    }
    if prev.kind == TokKind::Close(Delim::Paren) {
        if let Some(open) = matching_open(ts, as_idx - 1, Delim::Paren) {
            // Constant expression: only literals, consts, and operators.
            let const_expr = ts[open + 1..as_idx - 1].iter().all(|t| match t.kind {
                TokKind::Ident => is_const_ident(&t.text),
                TokKind::Int => true,
                TokKind::Float | TokKind::Str | TokKind::Char | TokKind::Lifetime => false,
                _ => true,
            });
            if const_expr {
                return true;
            }
            // Explicitly-modular callee: `x.wrapping_sub(y) as i32`.
            if open > 0 && ts[open - 1].kind == TokKind::Ident {
                let callee = &ts[open - 1].text;
                if callee.starts_with("wrapping_")
                    || callee.starts_with("saturating_")
                    || callee.starts_with("checked_")
                    || callee.starts_with("rotate_")
                {
                    return true;
                }
            }
        }
        return false;
    }
    // Typed operand: plain ident, `recv.field`, or an index chain.
    let dst_bits = int_bits(dst).unwrap_or(0);
    let mut i = as_idx;
    let mut layers = 0usize;
    while i > 0 && ts[i - 1].kind == TokKind::Close(Delim::Bracket) {
        match matching_open(ts, i - 1, Delim::Bracket) {
            Some(open) => {
                layers += 1;
                i = open;
            }
            None => return false,
        }
    }
    if i > 0 && ts[i - 1].kind == TokKind::Ident {
        if let Some(src) = env.collection_base(&ts[i - 1].text, layers) {
            if int_bits(&src).is_some_and(|b| b <= dst_bits) {
                return true;
            }
        }
    }
    false
}

/// Resolves the receiver of `.method(` at `dot` to a std collection base
/// type, if the chain is `name.…`, `self.field.…`, or either indexed.
fn receiver_collection(ts: &[Token], dot: usize, env: &TypeEnv) -> Option<String> {
    let mut i = dot;
    let mut layers = 0usize;
    // Step back over `[…]` index groups.
    while i > 0 && ts[i - 1].kind == TokKind::Close(Delim::Bracket) {
        let mut depth = 1i32;
        let mut j = i - 1;
        while j > 0 && depth > 0 {
            j -= 1;
            match ts[j].kind {
                TokKind::Close(Delim::Bracket) => depth += 1,
                TokKind::Open(Delim::Bracket) => depth -= 1,
                _ => {}
            }
        }
        layers += 1;
        i = j;
    }
    if i == 0 || ts[i - 1].kind != TokKind::Ident {
        return None;
    }
    let name = &ts[i - 1].text;
    let base = env.collection_base(name, layers)?;
    STD_COLLECTIONS.contains(&base.as_str()).then_some(base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse_file;

    fn hot_findings(src: &str) -> Vec<&'static str> {
        let ast = parse_file("crates/mem/src/x.rs", src).expect("parses");
        let files = vec![(&ast, true)];
        let hot = hot_set(&files);
        let mut out = Vec::new();
        for id in hot {
            for f in scan_hot_fn(&ast, &ast.fns[id.idx]) {
                out.push(f.rule);
            }
        }
        out.sort();
        out
    }

    #[test]
    fn alloc_in_root_is_flagged() {
        let src = "struct Cache { v: Vec<u64> }\n\
                   impl Cache { pub fn probe(&mut self) { self.v.push(1); } }";
        assert_eq!(hot_findings(src), ["hot-alloc"]);
    }

    #[test]
    fn alloc_behind_a_call_is_flagged() {
        let src = "struct Cache { v: Vec<u64> }\n\
                   impl Cache {\n\
                       pub fn probe(&mut self) { self.grow(); }\n\
                       fn grow(&mut self) { self.v.push(1); }\n\
                   }";
        assert_eq!(hot_findings(src), ["hot-alloc"]);
    }

    #[test]
    fn cold_alloc_is_not_flagged() {
        let src = "struct Cache { v: Vec<u64> }\n\
                   impl Cache {\n\
                       pub fn probe(&mut self) {}\n\
                       pub fn report(&self) -> Vec<u64> { self.v.clone() }\n\
                   }";
        assert!(hot_findings(src).is_empty());
    }

    #[test]
    fn collect_and_boxes_are_flagged() {
        let src = "struct Tlb { }\n\
                   impl Tlb { pub fn lookup(&mut self) { let v: Vec<u64> = (0..4).collect(); let b = Box::new(v); } }";
        assert_eq!(hot_findings(src), ["hot-alloc", "hot-alloc"]);
    }

    #[test]
    fn btreemap_insert_through_index_is_flagged() {
        let src = "struct Mock { samples: Vec<BTreeMap<u64, u32>> }\n\
                   impl Policy for Mock { fn on_fill(&mut self, s: usize) { self.samples[s].insert(1, 2); } }";
        assert_eq!(hot_findings(src), ["hot-alloc"]);
    }

    #[test]
    fn float_in_hot_path_is_flagged() {
        let src = "struct PageWalker {}\n\
                   impl PageWalker { pub fn walk(&mut self, t: u64) { let x = t as f64 * 0.5; } }";
        assert_eq!(hot_findings(src), ["hot-float", "hot-float"]);
    }

    #[test]
    fn narrow_cast_is_flagged_masked_is_not() {
        let flagged = "struct Cache {}\n\
                       impl Cache { pub fn probe(&mut self, x: u64) { let s = x as u16; } }";
        assert_eq!(hot_findings(flagged), ["arith-width"]);
        let masked = "struct Cache {}\n\
                      impl Cache { pub fn probe(&mut self, x: u64) { let s = (x & 0xfff) as u16; } }";
        assert!(hot_findings(masked).is_empty());
    }

    #[test]
    fn shift_with_literal_is_fine_nonliteral_is_not() {
        let fine = "struct Cache { valid: u64 }\n\
                    impl Cache { pub fn probe(&mut self, way: u32) { self.valid |= 1 << way; } }";
        assert!(hot_findings(fine).is_empty());
        let bad = "struct Cache {}\n\
                   impl Cache { pub fn probe(&mut self, b: u64, s: u64) -> u64 { b << s } }";
        assert_eq!(hot_findings(bad), ["arith-width"]);
    }

    #[test]
    fn narrow_add_is_flagged_saturating_is_not() {
        let bad = "struct E { confidence: u8 }\n\
                   impl E { pub fn probe(&mut self) { self.confidence = self.confidence + 1; } }";
        // `probe` on a non-Cache type is still a typed root by name only if
        // the self type matches — `E::probe` is not a root, so force one:
        let src = "struct Cache { confidence: u8 }\n\
                   impl Cache { pub fn probe(&mut self) { self.confidence = self.confidence + 1; } }";
        let _ = bad;
        assert_eq!(hot_findings(src), ["arith-width"]);
        let good = "struct Cache { confidence: u8 }\n\
                    impl Cache { pub fn probe(&mut self) { self.confidence = self.confidence.saturating_add(1).min(3); } }";
        assert!(hot_findings(good).is_empty());
    }

    #[test]
    fn policy_impls_are_roots() {
        let src = "struct P {}\n\
                   impl Policy<CacheMeta> for P { fn victim(&mut self) -> usize { let v: Vec<u32> = Vec::with_capacity(4); v.len() } }";
        assert_eq!(hot_findings(src), ["hot-alloc"]);
    }
}
