//! The six determinism rules, ported from the regex scanner onto the
//! syntax model, plus the `nested-vec` data-layout rule.
//!
//! Working over tokens instead of line text removes the regex engine's
//! known failure modes:
//!
//! * string literals are single tokens — `"Instant::now"` inside a log
//!   message no longer false-positives `std-time`;
//! * patterns match across line breaks — `Box<dyn\nPolicy` no longer
//!   escapes `dispatch`;
//! * spacing is irrelevant — `m . values ()` is the same token sequence
//!   as `m.values()`;
//! * `#[cfg(test)]` scopes are resolved structurally, not by requiring
//!   the attribute on its own line.
//!
//! Each scanner returns [`RawFinding`]s; the driver in `lib.rs` attaches
//! paths, excerpts, and annotation filtering.

use crate::ast::{FileAst, FnDef, Group, Tree};
use crate::lexer::{Delim, TokKind, Token};

/// A rule hit before path/excerpt attachment.
#[derive(Debug, Clone)]
pub struct RawFinding {
    /// Rule identifier.
    pub rule: &'static str,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Short explanation specific to this hit.
    pub note: String,
}

impl RawFinding {
    pub(crate) fn at(rule: &'static str, tok: &Token, note: impl Into<String>) -> Self {
        Self {
            rule,
            line: tok.span.line,
            col: tok.span.col,
            note: note.into(),
        }
    }
}

/// The file's token stream with test-gated lines removed — the view the
/// file-scope rules (`std-time`, `entropy`, `layering`, `dispatch`) scan,
/// so `use` imports, struct fields, and const initializers are covered
/// along with function bodies.
pub fn non_test_tokens(ast: &FileAst) -> Vec<&Token> {
    ast.tokens
        .iter()
        .filter(|t| !ast.is_test_line(t.span.line))
        .collect()
}

fn ident_at<'a>(ts: &'a [&Token], i: usize) -> Option<&'a str> {
    ts.get(i).and_then(|t| {
        if t.kind == TokKind::Ident {
            Some(t.text.as_str())
        } else {
            None
        }
    })
}

fn punct_at(ts: &[&Token], i: usize, s: &str) -> bool {
    ts.get(i).is_some_and(|t| t.is_punct(s))
}

fn open_at(ts: &[&Token], i: usize, d: Delim) -> bool {
    ts.get(i).is_some_and(|t| t.kind == TokKind::Open(d))
}

/// `std-time`: wall-clock reads. Simulated time comes from the model's
/// own clocks.
pub fn scan_std_time(ts: &[&Token]) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for i in 0..ts.len() {
        let Some(id) = ident_at(ts, i) else { continue };
        match id {
            "SystemTime" => out.push(RawFinding::at(
                "std-time",
                ts[i],
                "wall-clock type; use the model's own cycle counters",
            )),
            "std" if punct_at(ts, i + 1, "::") && ident_at(ts, i + 2) == Some("time") => {
                out.push(RawFinding::at(
                    "std-time",
                    ts[i],
                    "std::time on a simulation path",
                ));
            }
            "Instant" if punct_at(ts, i + 1, "::") && ident_at(ts, i + 2) == Some("now") => {
                out.push(RawFinding::at(
                    "std-time",
                    ts[i],
                    "Instant::now() reads the host clock",
                ));
            }
            _ => {}
        }
    }
    out
}

/// `entropy`: ambient randomness. All randomness must flow from seeded
/// `itpx_types::Rng64` state.
pub fn scan_entropy(ts: &[&Token]) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for i in 0..ts.len() {
        let Some(id) = ident_at(ts, i) else { continue };
        match id {
            "thread_rng" | "RandomState" | "from_entropy" => out.push(RawFinding::at(
                "entropy",
                ts[i],
                "ambient randomness; seed an Rng64 instead",
            )),
            "rand" if punct_at(ts, i + 1, "::") => out.push(RawFinding::at(
                "entropy",
                ts[i],
                "rand:: crate path; all randomness flows from Rng64 seeds",
            )),
            _ => {}
        }
    }
    out
}

/// `layering`: direct `hierarchy.l2` / `hierarchy.llc` field access
/// outside `itpx-mem`. Callers go through the depth-stable
/// `l2c()`/`llc()` accessors.
pub fn scan_layering(ts: &[&Token]) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for i in 0..ts.len() {
        if ident_at(ts, i) != Some("hierarchy") || !punct_at(ts, i + 1, ".") {
            continue;
        }
        let Some(field) = ident_at(ts, i + 2) else {
            continue;
        };
        if (field == "l2" || field == "llc") && !open_at(ts, i + 3, Delim::Paren) {
            out.push(RawFinding::at(
                "layering",
                ts[i + 2],
                "shared-level field access; use l2c()/l2c_mut()/llc()/llc_mut()",
            ));
        }
    }
    out
}

/// `dispatch`: `Box<dyn Policy` in the hot-path crates. Policies dispatch
/// through the engine enums so per-access calls inline.
pub fn scan_dispatch(ts: &[&Token]) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for i in 0..ts.len() {
        if ident_at(ts, i) == Some("Box")
            && punct_at(ts, i + 1, "<")
            && ident_at(ts, i + 2) == Some("dyn")
            && ident_at(ts, i + 3) == Some("Policy")
        {
            out.push(RawFinding::at(
                "dispatch",
                ts[i],
                "boxed trait object on a hot-path crate; use the policy engine enums",
            ));
        }
    }
    out
}

/// `nested-vec`: `Vec<Vec<…>>` in the hot-path crates. Nested vectors
/// scatter per-set rows across the heap (one pointer chase and one
/// allocation per row); set-indexed state uses the flat
/// `itpx_types::SetGrid` layout instead.
pub fn scan_nested_vec(ts: &[&Token]) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for i in 0..ts.len() {
        if ident_at(ts, i) == Some("Vec")
            && punct_at(ts, i + 1, "<")
            && ident_at(ts, i + 2) == Some("Vec")
            && punct_at(ts, i + 3, "<")
        {
            out.push(RawFinding::at(
                "nested-vec",
                ts[i],
                "nested Vec scatters rows across the heap; use itpx_types::SetGrid",
            ));
        }
    }
    out
}

/// Base type name of a flattened type text: strips `&`/`mut`, returns the
/// first identifier (`& mut HashMap < u64 , u64 >` → `HashMap`).
pub fn ty_base(ty: &str) -> Option<&str> {
    ty.split_whitespace().find(|w| {
        !matches!(*w, "&" | "mut" | "'" | "'_")
            && w.chars()
                .next()
                .is_some_and(|c| c.is_alphabetic() || c == '_')
    })
}

const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Iteration methods whose order depends on the hasher.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
    "retain",
];

/// `map-iter`: iteration over a `HashMap`/`HashSet`. Tracks identifiers
/// bound to hash types through struct fields, fn params, and `let`
/// bindings, then flags order-dependent traversals of them.
pub fn scan_map_iter(ast: &FileAst) -> Vec<RawFinding> {
    let mut tracked: Vec<&str> = Vec::new();
    for f in &ast.fields {
        if ty_base(&f.ty).is_some_and(|b| HASH_TYPES.contains(&b)) {
            tracked.push(&f.name);
        }
    }
    for f in &ast.fns {
        if f.is_test {
            continue;
        }
        for (name, ty) in &f.params {
            if ty_base(ty).is_some_and(|b| HASH_TYPES.contains(&b)) {
                tracked.push(name);
            }
        }
    }
    let mut out = Vec::new();
    for f in &ast.fns {
        if f.is_test {
            continue;
        }
        let mut ts = Vec::new();
        crate::ast::linearize(&f.body, &mut ts);
        let ts: Vec<&Token> = ts.iter().collect();
        // `let [mut] name … = … HashMap/HashSet … ;` adds a local binding.
        let mut local: Vec<String> = Vec::new();
        for i in 0..ts.len() {
            if ident_at(&ts, i) != Some("let") {
                continue;
            }
            let mut j = i + 1;
            if ident_at(&ts, j) == Some("mut") {
                j += 1;
            }
            let Some(name) = ident_at(&ts, j) else {
                continue;
            };
            let mut k = j + 1;
            while k < ts.len() && !ts[k].is_punct(";") {
                if let Some(id) = ident_at(&ts, k) {
                    if HASH_TYPES.contains(&id) {
                        local.push(name.to_string());
                        break;
                    }
                }
                k += 1;
            }
        }
        let is_tracked = |id: &str| tracked.contains(&id) || local.iter().any(|l| l == id);
        for i in 0..ts.len() {
            // `name.values()` / `self.name.drain(..)` — flag at the method.
            if let Some(id) = ident_at(&ts, i) {
                if is_tracked(id)
                    && punct_at(&ts, i + 1, ".")
                    && ident_at(&ts, i + 2).is_some_and(|m| ITER_METHODS.contains(&m))
                    && open_at(&ts, i + 3, Delim::Paren)
                {
                    out.push(RawFinding::at(
                        "map-iter",
                        ts[i + 2],
                        format!("hash-order iteration over `{id}`; use BTreeMap/BTreeSet or sort"),
                    ));
                }
                // `for x in [&][mut] [self.]name { … }`
                if id == "in" {
                    let mut j = i + 1;
                    if punct_at(&ts, j, "&") {
                        j += 1;
                    }
                    if ident_at(&ts, j) == Some("mut") {
                        j += 1;
                    }
                    if ident_at(&ts, j) == Some("self") && punct_at(&ts, j + 1, ".") {
                        j += 2;
                    }
                    if let Some(name) = ident_at(&ts, j) {
                        if is_tracked(name) && open_at(&ts, j + 1, Delim::Brace) {
                            out.push(RawFinding::at(
                                "map-iter",
                                ts[j],
                                format!(
                                    "hash-order for-loop over `{name}`; use BTreeMap/BTreeSet or sort"
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }
    out
}

/// `panicking-index`: `.unwrap()`/`.expect(…)` and computed indexing
/// without a justifying comment. The comment exemption is resolved by the
/// driver (it owns the comment stream); this scanner reports candidates.
pub fn scan_panicking(f: &FnDef) -> Vec<RawFinding> {
    let mut out = Vec::new();
    let mut ts = Vec::new();
    crate::ast::linearize(&f.body, &mut ts);
    let ts: Vec<&Token> = ts.iter().collect();
    for i in 0..ts.len() {
        if !punct_at(&ts, i, ".") {
            continue;
        }
        match ident_at(&ts, i + 1) {
            Some("unwrap")
                if open_at(&ts, i + 2, Delim::Paren)
                    && ts
                        .get(i + 3)
                        .is_some_and(|t| t.kind == TokKind::Close(Delim::Paren)) =>
            {
                out.push(RawFinding::at(
                    "panicking-index",
                    ts[i + 1],
                    "bare unwrap; justify with a comment or handle the None/Err arm",
                ));
            }
            Some("expect") if open_at(&ts, i + 2, Delim::Paren) => {
                out.push(RawFinding::at(
                    "panicking-index",
                    ts[i + 1],
                    "bare expect; justify with a comment or handle the None/Err arm",
                ));
            }
            _ => {}
        }
    }
    walk_computed_index(&f.body, &mut out);
    out
}

/// Recursively finds `base[computed]` index expressions.
fn walk_computed_index(trees: &[Tree], out: &mut Vec<RawFinding>) {
    for i in 0..trees.len() {
        let Tree::Group(g) = &trees[i] else { continue };
        if g.delim == Delim::Bracket && i > 0 && is_indexable(&trees[i - 1]) && is_computed(g) {
            out.push(RawFinding {
                rule: "panicking-index",
                line: g.open.line,
                col: g.open.col,
                note: "computed index can panic; justify with a comment or use get()".to_string(),
            });
        }
        walk_computed_index(&g.trees, out);
    }
}

/// An expression the `[…]` that follows indexes into: an identifier, a
/// call/paren result, or another index result.
fn is_indexable(prev: &Tree) -> bool {
    match prev {
        Tree::Tok(t) => t.kind == TokKind::Ident && !is_expr_keyword(&t.text),
        Tree::Group(g) => matches!(g.delim, Delim::Paren | Delim::Bracket),
    }
}

fn is_expr_keyword(s: &str) -> bool {
    matches!(
        s,
        "return" | "break" | "in" | "if" | "else" | "match" | "mut" | "ref" | "as" | "dyn"
    )
}

/// Index content involving arithmetic or a call — the off-by-one panic
/// cases. Ranges (`a[1..3]`) and plain `a[i]` stay exempt.
fn is_computed(g: &Group) -> bool {
    let mut ts = Vec::new();
    crate::ast::linearize(&g.trees, &mut ts);
    if ts.iter().any(|t| t.is_punct("..") || t.is_punct("..=")) {
        return false;
    }
    if ts.iter().any(|t| t.kind == TokKind::Open(Delim::Paren)) {
        return true;
    }
    for (i, t) in ts.iter().enumerate() {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "+" | "/" | "%" => return true,
            "-" | "*" if i > 0 => return true,
            _ => {}
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse_file;

    fn file(src: &str) -> FileAst {
        parse_file("crates/vm/src/x.rs", src).expect("parses")
    }

    fn file_rules(src: &str) -> Vec<&'static str> {
        let ast = file(src);
        let ts = non_test_tokens(&ast);
        let mut out = Vec::new();
        out.extend(scan_std_time(&ts));
        out.extend(scan_entropy(&ts));
        out.extend(scan_layering(&ts));
        out.extend(scan_dispatch(&ts));
        out.extend(scan_nested_vec(&ts));
        out.extend(scan_map_iter(&ast));
        for f in ast.fns.iter().filter(|f| !f.is_test) {
            for c in scan_panicking(f) {
                if !ast.has_comment_near(c.line) {
                    out.push(c);
                }
            }
        }
        out.into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn wall_clock_is_flagged() {
        // Both the `std::time` path and the `Instant::now` call match.
        assert_eq!(
            file_rules("fn f() { let t = std::time::Instant::now(); }"),
            ["std-time", "std-time"]
        );
        assert_eq!(
            file_rules("fn f() { let t = Instant::now(); }"),
            ["std-time"]
        );
    }

    #[test]
    fn string_literal_mentioning_time_is_clean() {
        // Historical regex false positive: the scanner matched inside
        // string literals.
        assert!(file_rules("fn f() { let m = \"uses Instant::now internally\"; }").is_empty());
        assert!(file_rules("fn f() { let m = \"RandomState docs\"; }").is_empty());
    }

    #[test]
    fn entropy_is_flagged() {
        assert_eq!(
            file_rules("fn f() { let r = rand::thread_rng(); }"),
            ["entropy", "entropy"]
        );
        assert_eq!(
            file_rules("fn f() { let s = RandomState::new(); }"),
            ["entropy"]
        );
    }

    #[test]
    fn layering_flags_fields_not_accessors() {
        assert_eq!(
            file_rules("fn f(config: &mut Config) { config.hierarchy.l2.sets = 1024; }"),
            ["layering"]
        );
        assert!(file_rules("fn f(c: &mut Config) { c.hierarchy.l2c_mut().sets = 4; }").is_empty());
        assert!(file_rules("fn f(c: &Config) { let x = c.hierarchy.llc(); }").is_empty());
    }

    #[test]
    fn dispatch_matches_across_lines() {
        // Historical regex false negative: a line break inside the type
        // defeated the substring match.
        let src = "fn f() { let p: Box<dyn\n    Policy<CacheMeta>> = mk(); }";
        assert_eq!(file_rules(src), ["dispatch"]);
    }

    #[test]
    fn nested_vec_is_flagged() {
        assert_eq!(
            file_rules("struct S { rows: Vec<Vec<u8>> }"),
            ["nested-vec"]
        );
        // Matches across line breaks and spacing, like every token rule.
        assert_eq!(
            file_rules("fn f() { let x: Vec<\n    Vec<bool>> = Vec::new(); }"),
            ["nested-vec"]
        );
    }

    #[test]
    fn flat_vec_and_nested_mentions_in_strings_are_clean() {
        assert!(file_rules("struct S { rows: Vec<u8> }").is_empty());
        assert!(file_rules("fn f() { let m = \"was Vec<Vec<u8>> once\"; }").is_empty());
        assert!(file_rules("fn f(g: &SetGrid<u8>) -> &[u8] { g.row(0) }").is_empty());
    }

    #[test]
    fn map_iter_tracks_fields_params_and_lets() {
        let field = "struct S { counts: HashMap<u64, u64> }\n\
                     impl S { fn sum(&self) -> u64 { self.counts.values().sum() } }";
        assert_eq!(file_rules(field), ["map-iter"]);
        let param = "fn total(m: &HashMap<u64, u64>) -> u64 { m.values().sum() }";
        assert_eq!(file_rules(param), ["map-iter"]);
        let local = "fn f() { let mut seen = HashMap::new(); seen.insert(1, 2);\n\
                     for (k, v) in &seen { let _ = (k, v); } }";
        assert_eq!(file_rules(local), ["map-iter"]);
    }

    #[test]
    fn map_iter_spaced_call_is_caught() {
        // Historical regex false negative: `m . values ()` defeated the
        // `m.values()` substring.
        let src = "fn total(m: &HashMap<u64, u64>) -> u64 { m . values () . sum() }";
        assert_eq!(file_rules(src), ["map-iter"]);
    }

    #[test]
    fn btree_iteration_is_clean() {
        assert!(file_rules("fn f(m: &BTreeMap<u64, u64>) -> u64 { m.values().sum() }").is_empty());
    }

    #[test]
    fn hash_point_lookup_is_clean() {
        let src = "struct S { counts: HashMap<u64, u64> }\n\
                   impl S { fn get(&self, k: u64) -> Option<&u64> { self.counts.get(&k) } }";
        assert!(file_rules(src).is_empty());
    }

    #[test]
    fn unwrap_and_expect_are_flagged_without_comment() {
        assert_eq!(
            file_rules("fn f(o: Option<u32>) { let x = o.unwrap(); }"),
            ["panicking-index"]
        );
        assert_eq!(
            file_rules("fn f(o: Option<u32>) { let x = o.expect(\"msg\"); }"),
            ["panicking-index"]
        );
        assert!(
            file_rules("fn f(o: Option<u32>) { let x = o.unwrap(); // checked above\n }")
                .is_empty()
        );
    }

    #[test]
    fn unwrap_or_variants_are_clean() {
        assert!(file_rules("fn f(o: Option<u32>) -> u32 { o.unwrap_or(0) }").is_empty());
        assert!(file_rules("fn f(o: Option<u32>) -> u32 { o.unwrap_or_default() }").is_empty());
    }

    #[test]
    fn computed_index_is_flagged_plain_is_not() {
        assert_eq!(
            file_rules("fn f(v: &[u32], i: usize) { let x = v[i + 1]; }"),
            ["panicking-index"]
        );
        assert_eq!(
            file_rules("fn f(v: &[u32], i: usize) { let x = v[idx(i)]; }"),
            ["panicking-index"]
        );
        assert!(file_rules("fn f(v: &[u32], i: usize) { let x = v[i]; }").is_empty());
        assert!(file_rules("fn f(v: &[u32]) { let x = &v[1..3]; }").is_empty());
        assert!(file_rules("fn f() { let x: [u8; 4] = [0; 4]; }").is_empty());
        assert!(file_rules("fn f(n: usize) { let x = vec![0; n]; }").is_empty());
    }

    #[test]
    fn test_scopes_are_exempt_even_single_line() {
        // Historical regex false negative turned exemption bug: the mask
        // required `#[cfg(test)]` on its own line.
        let src = "fn prod() {}\n#[cfg(test)] mod tests { fn t() { let x = Instant::now(); } }";
        assert!(file_rules(src).is_empty());
    }
}
