//! Token trees and the item-level syntax model.
//!
//! The lexer's flat token stream is first folded into *token trees*
//! (bracketed groups nest), then an item parser walks the trees and
//! recognizes the structure the rules need: modules (with structural
//! `#[cfg(test)]` resolution), functions (name, `impl` context, trait
//! context, signature, body), and struct fields (for receiver-type
//! resolution). Function bodies stay as token trees — the rules
//! pattern-match them structurally, which is exactly the level the
//! workspace's invariants live at (call expressions, index expressions,
//! casts, path segments), without needing full expression parsing.

use crate::lexer::{self, Comment, Delim, Span, TokKind, Token};

/// A token tree: a token, or a delimited group of nested trees.
#[derive(Debug, Clone)]
pub enum Tree {
    /// A leaf token.
    Tok(Token),
    /// A `(…)` / `[…]` / `{…}` group.
    Group(Group),
}

impl Tree {
    /// The leaf token, if this tree is one.
    pub fn token(&self) -> Option<&Token> {
        match self {
            Tree::Tok(t) => Some(t),
            Tree::Group(_) => None,
        }
    }

    /// The group, if this tree is one.
    pub fn group(&self) -> Option<&Group> {
        match self {
            Tree::Tok(_) => None,
            Tree::Group(g) => Some(g),
        }
    }

    /// Span of the tree's first character.
    pub fn span(&self) -> Span {
        match self {
            Tree::Tok(t) => t.span,
            Tree::Group(g) => g.open,
        }
    }

    /// `true` for an identifier leaf with the given text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.token().is_some_and(|t| t.is_ident(s))
    }

    /// `true` for a punctuation leaf with the given text.
    pub fn is_punct(&self, s: &str) -> bool {
        self.token().is_some_and(|t| t.is_punct(s))
    }
}

/// A delimited group.
#[derive(Debug, Clone)]
pub struct Group {
    /// Delimiter kind.
    pub delim: Delim,
    /// Span of the opening delimiter.
    pub open: Span,
    /// Span of the closing delimiter.
    pub close: Span,
    /// Nested trees.
    pub trees: Vec<Tree>,
}

/// Folds a flat token stream into token trees.
pub fn build_trees(tokens: Vec<Token>) -> Result<Vec<Tree>, String> {
    let mut stack: Vec<(Delim, Span, Vec<Tree>)> = Vec::new();
    let mut top: Vec<Tree> = Vec::new();
    for tok in tokens {
        match tok.kind {
            TokKind::Open(d) => {
                stack.push((d, tok.span, std::mem::take(&mut top)));
            }
            TokKind::Close(d) => {
                let Some((open_delim, open_span, parent)) = stack.pop() else {
                    return Err(format!(
                        "{}:{}: unbalanced closing delimiter `{}`",
                        tok.span.line, tok.span.col, tok.text
                    ));
                };
                if open_delim != d {
                    return Err(format!(
                        "{}:{}: mismatched delimiter (opened at {}:{})",
                        tok.span.line, tok.span.col, open_span.line, open_span.col
                    ));
                }
                let group = Group {
                    delim: d,
                    open: open_span,
                    close: tok.span,
                    trees: std::mem::replace(&mut top, parent),
                };
                top.push(Tree::Group(group));
            }
            _ => top.push(Tree::Tok(tok)),
        }
    }
    if let Some((_, open_span, _)) = stack.pop() {
        return Err(format!(
            "{}:{}: unclosed delimiter",
            open_span.line, open_span.col
        ));
    }
    Ok(top)
}

/// One function definition (free, inherent, trait-impl, or trait default).
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// `impl` self-type name (last path segment), when inside an impl.
    pub self_ty: Option<String>,
    /// Trait name for `impl Trait for Type` methods, or the trait's own
    /// name for default methods in `trait … { }` blocks.
    pub trait_name: Option<String>,
    /// `true` when the function or an enclosing module/item is gated on
    /// `#[cfg(test)]`, or the function carries `#[test]`.
    pub is_test: bool,
    /// Span of the `fn` keyword.
    pub span: Span,
    /// Line of the body's closing brace (the `fn` line for bodyless
    /// declarations).
    pub body_end_line: u32,
    /// Parameter list `(name, flattened type text)` — `self` receivers are
    /// omitted.
    pub params: Vec<(String, String)>,
    /// Body token trees; empty for bodyless trait declarations.
    pub body: Vec<Tree>,
    /// Raw attribute texts (`cfg(test)`, `inline`, `allow(dead_code)`, …).
    pub attrs: Vec<String>,
}

/// One struct field: `owner.name: ty` (type text flattened).
#[derive(Debug, Clone)]
pub struct StructField {
    /// Owning struct's name.
    pub owner: String,
    /// Field name.
    pub name: String,
    /// Flattened type text, e.g. `Vec < BTreeMap < u64 , SampleEntry > >`.
    pub ty: String,
}

/// The parsed model of one source file.
#[derive(Debug)]
pub struct FileAst {
    /// Repo-relative path (forward slashes).
    pub path: String,
    /// Every function in the file, in source order.
    pub fns: Vec<FnDef>,
    /// Every named struct field in the file.
    pub fields: Vec<StructField>,
    /// The comment stream.
    pub comments: Vec<Comment>,
    /// Source lines (for excerpts in findings).
    pub lines: Vec<String>,
    /// The full flat token stream (for file-scope rules that must also see
    /// `use` imports, struct fields, and const initializers).
    pub tokens: Vec<Token>,
    /// Inclusive line ranges of `#[cfg(test)]`-gated items.
    pub test_ranges: Vec<(u32, u32)>,
    /// `true` for files under a `tests/` directory: the whole file is test
    /// code.
    pub file_is_test: bool,
}

impl FileAst {
    /// Line `line` (1-based), trimmed, for finding excerpts.
    pub fn excerpt(&self, line: u32) -> String {
        self.lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }

    /// `true` when a comment exists on `line` or the line above — the
    /// `panicking-index` rule's "justifying comment" exemption.
    pub fn has_comment_near(&self, line: u32) -> bool {
        self.comments
            .iter()
            .any(|c| c.span.line == line || c.end_line == line || c.end_line + 1 == line)
    }

    /// `true` when `line` falls inside a `#[cfg(test)]`-gated item (or the
    /// whole file is test code).
    pub fn is_test_line(&self, line: u32) -> bool {
        self.file_is_test
            || self
                .test_ranges
                .iter()
                .any(|&(lo, hi)| line >= lo && line <= hi)
    }
}

/// Parses one file into its syntax model. Any lex or tree error is
/// returned as a hard error: the engine refuses to vouch for files it
/// cannot parse.
pub fn parse_file(path: &str, src: &str) -> Result<FileAst, String> {
    let (tokens, comments) = lexer::lex(src).map_err(|e| format!("{path}:{e}"))?;
    let trees = build_trees(tokens.clone()).map_err(|e| format!("{path}:{e}"))?;
    let file_is_test = path.contains("/tests/");
    let mut ast = FileAst {
        path: path.to_string(),
        fns: Vec::new(),
        fields: Vec::new(),
        comments,
        lines: src.lines().map(|l| l.to_string()).collect(),
        tokens,
        test_ranges: Vec::new(),
        file_is_test,
    };
    parse_items(&trees, &ItemCtx::new(file_is_test), &mut ast);
    Ok(ast)
}

/// Item-walk context: the enclosing module/impl/trait state.
#[derive(Debug, Clone)]
struct ItemCtx {
    in_test: bool,
    self_ty: Option<String>,
    trait_name: Option<String>,
}

impl ItemCtx {
    fn new(in_test: bool) -> Self {
        Self {
            in_test,
            self_ty: None,
            trait_name: None,
        }
    }
}

/// `true` when an attribute gates its item to test builds: `#[test]`,
/// `#[cfg(test)]`, `#[cfg(any(test, …))]` — but not `#[cfg(not(test))]`.
fn attr_is_test(attr: &str) -> bool {
    if attr == "test" {
        return true;
    }
    attr.starts_with("cfg") && attr.contains("test") && !attr.contains("not")
}

/// Flattens a token-tree run into a canonical space-separated string
/// (used for attribute and type texts).
fn flatten(trees: &[Tree]) -> String {
    let mut out = String::new();
    for t in trees {
        if !out.is_empty() {
            out.push(' ');
        }
        match t {
            Tree::Tok(tok) => out.push_str(&tok.text),
            Tree::Group(g) => {
                let (open, close) = match g.delim {
                    Delim::Paren => ("(", ")"),
                    Delim::Bracket => ("[", "]"),
                    Delim::Brace => ("{", "}"),
                };
                out.push_str(open);
                let inner = flatten(&g.trees);
                if !inner.is_empty() {
                    out.push(' ');
                    out.push_str(&inner);
                    out.push(' ');
                }
                out.push_str(close);
            }
        }
    }
    out
}

/// Skips a generics region starting at `<` (index `i` points at the `<`).
/// Returns the index just past the matching `>`. Merged shift tokens
/// (`<<`, `>>`) count twice.
fn skip_generics(trees: &[Tree], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < trees.len() {
        if let Some(t) = trees[i].token() {
            match t.text.as_str() {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                "->" => {}
                _ => {}
            }
        }
        i += 1;
        if depth <= 0 {
            break;
        }
    }
    i
}

/// Recognizes items in a tree run, recursing into module/impl/trait
/// bodies and collecting functions and struct fields.
fn parse_items(trees: &[Tree], ctx: &ItemCtx, ast: &mut FileAst) {
    let mut pending_attrs: Vec<String> = Vec::new();
    let mut i = 0usize;
    while i < trees.len() {
        // Attribute: `#` `[ … ]` (or inner `#` `!` `[ … ]`, ignored).
        if trees[i].is_punct("#") {
            if let Some(g) = trees.get(i + 1).and_then(|t| t.group()) {
                if g.delim == Delim::Bracket {
                    pending_attrs.push(flatten(&g.trees));
                    i += 2;
                    continue;
                }
            }
            if trees.get(i + 1).is_some_and(|t| t.is_punct("!")) {
                i += 3; // `#` `!` `[…]`
                continue;
            }
            i += 1;
            continue;
        }
        let Some(tok) = trees[i].token() else {
            i += 1;
            pending_attrs.clear();
            continue;
        };
        if tok.kind != TokKind::Ident {
            i += 1;
            // `;`, `=`, … end an item: drop attributes that bound nothing.
            pending_attrs.clear();
            continue;
        }
        match tok.text.as_str() {
            "mod" => {
                let attrs = std::mem::take(&mut pending_attrs);
                let is_test = ctx.in_test || attrs.iter().any(|a| attr_is_test(a));
                let mod_line = tok.span.line;
                // `mod name { … }` or `mod name;`
                let mut j = i + 1;
                while j < trees.len() {
                    if let Some(g) = trees[j].group() {
                        if g.delim == Delim::Brace {
                            if is_test && !ctx.in_test {
                                ast.test_ranges.push((mod_line, g.close.line));
                            }
                            let sub = ItemCtx {
                                in_test: is_test,
                                self_ty: None,
                                trait_name: None,
                            };
                            parse_items(&g.trees, &sub, ast);
                            break;
                        }
                    }
                    if trees[j].is_punct(";") {
                        break;
                    }
                    j += 1;
                }
                i = j + 1;
            }
            "fn" => {
                let attrs = std::mem::take(&mut pending_attrs);
                i = parse_fn(trees, i, ctx, attrs, ast);
            }
            "impl" => {
                pending_attrs.clear();
                i = parse_impl(trees, i, ctx, ast);
            }
            "trait" => {
                pending_attrs.clear();
                i = parse_trait(trees, i, ctx, ast);
            }
            "struct" => {
                pending_attrs.clear();
                i = parse_struct(trees, i, ast);
            }
            "enum" | "union" => {
                pending_attrs.clear();
                // Skip to the variant/body group or `;`.
                let mut j = i + 1;
                while j < trees.len() {
                    if trees[j].group().is_some_and(|g| g.delim == Delim::Brace)
                        || trees[j].is_punct(";")
                    {
                        break;
                    }
                    j += 1;
                }
                i = j + 1;
            }
            "macro_rules" => {
                pending_attrs.clear();
                // `macro_rules ! name { … }` — definitions are not
                // expanded; rules cannot see through them (DESIGN.md).
                let mut j = i + 1;
                while j < trees.len() {
                    if trees[j].group().is_some_and(|g| g.delim == Delim::Brace) {
                        break;
                    }
                    j += 1;
                }
                i = j + 1;
            }
            "use" | "extern" | "type" | "static" | "const" => {
                // `const fn` carries into the fn branch; everything else
                // skips to `;` (initializers of consts/statics are
                // compile-time evaluated — no steady-state behavior).
                if trees.get(i + 1).is_some_and(|t| t.is_ident("fn")) {
                    i += 1;
                    continue;
                }
                pending_attrs.clear();
                let mut j = i + 1;
                while j < trees.len() && !trees[j].is_punct(";") {
                    j += 1;
                }
                i = j + 1;
            }
            _ => {
                // Modifiers (`pub`, `unsafe`, `async`, `default`) keep
                // pending attributes alive for the item they decorate.
                let keeps_attrs =
                    matches!(tok.text.as_str(), "pub" | "unsafe" | "async" | "default");
                if !keeps_attrs {
                    pending_attrs.clear();
                }
                // `pub ( crate )` visibility group.
                if tok.text == "pub"
                    && trees
                        .get(i + 1)
                        .is_some_and(|t| t.group().is_some_and(|g| g.delim == Delim::Paren))
                {
                    i += 2;
                    continue;
                }
                i += 1;
            }
        }
    }
}

/// Parses `fn name <generics>? ( params ) -> ret? where…? { body }`.
/// Returns the index just past the function.
fn parse_fn(
    trees: &[Tree],
    fn_idx: usize,
    ctx: &ItemCtx,
    attrs: Vec<String>,
    ast: &mut FileAst,
) -> usize {
    let span = trees[fn_idx].span();
    let Some(name_tok) = trees.get(fn_idx + 1).and_then(|t| t.token()) else {
        return fn_idx + 1;
    };
    let name = name_tok.text.clone();
    let mut i = fn_idx + 2;
    // Generics.
    if trees.get(i).is_some_and(|t| t.is_punct("<")) {
        i = skip_generics(trees, i);
    }
    // Parameter group.
    let mut params = Vec::new();
    if let Some(g) = trees.get(i).and_then(|t| t.group()) {
        if g.delim == Delim::Paren {
            params = parse_params(&g.trees);
            i += 1;
        }
    }
    // Skip to body `{ … }` or declaration-ending `;`.
    let mut body = Vec::new();
    let mut end_line = span.line;
    while i < trees.len() {
        if let Some(g) = trees[i].group() {
            if g.delim == Delim::Brace {
                body = g.trees.clone();
                end_line = g.close.line;
                i += 1;
                break;
            }
        }
        if trees[i].is_punct(";") {
            i += 1;
            break;
        }
        i += 1;
    }
    let is_test = ctx.in_test || attrs.iter().any(|a| attr_is_test(a));
    if is_test && !ctx.in_test {
        ast.test_ranges.push((span.line, end_line));
    }
    ast.fns.push(FnDef {
        name,
        self_ty: ctx.self_ty.clone(),
        trait_name: ctx.trait_name.clone(),
        is_test,
        span,
        body_end_line: end_line,
        params,
        body,
        attrs,
    });
    i
}

/// Extracts `(name, type text)` pairs from a parameter group's trees.
fn parse_params(trees: &[Tree]) -> Vec<(String, String)> {
    let mut out = Vec::new();
    // Split on top-level commas (angle-bracket depth tracked).
    let mut depth = 0i32;
    let mut start = 0usize;
    let mut segments: Vec<&[Tree]> = Vec::new();
    for (i, t) in trees.iter().enumerate() {
        if let Some(tok) = t.token() {
            match tok.text.as_str() {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                "," if depth <= 0 => {
                    segments.push(&trees[start..i]);
                    start = i + 1;
                }
                _ => {}
            }
        }
    }
    if start < trees.len() {
        segments.push(&trees[start..]);
    }
    for seg in segments {
        // `name : Type` — find the top-level `:` (not `::`).
        let colon = seg.iter().position(|t| t.is_punct(":"));
        let Some(c) = colon else { continue };
        if c == 0 {
            continue;
        }
        let Some(name_tok) = seg[c - 1].token() else {
            continue;
        };
        if name_tok.kind != TokKind::Ident || name_tok.text == "self" {
            continue;
        }
        out.push((name_tok.text.clone(), flatten(&seg[c + 1..])));
    }
    out
}

/// Parses `impl <generics>? [Trait for] Type { items }`. Returns the index
/// just past the impl block.
fn parse_impl(trees: &[Tree], impl_idx: usize, ctx: &ItemCtx, ast: &mut FileAst) -> usize {
    let mut i = impl_idx + 1;
    if trees.get(i).is_some_and(|t| t.is_punct("<")) {
        i = skip_generics(trees, i);
    }
    // Collect header idents (angle regions masked) until the brace body.
    let mut header: Vec<String> = Vec::new();
    let mut depth = 0i32;
    let mut body: Option<&Group> = None;
    while i < trees.len() {
        match &trees[i] {
            Tree::Group(g) if g.delim == Delim::Brace && depth <= 0 => {
                body = Some(g);
                i += 1;
                break;
            }
            Tree::Tok(tok) => {
                match tok.text.as_str() {
                    "<" => depth += 1,
                    "<<" => depth += 2,
                    ">" => depth -= 1,
                    ">>" => depth -= 2,
                    _ if tok.kind == TokKind::Ident && depth <= 0 => {
                        header.push(tok.text.clone());
                    }
                    _ => {}
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    // `impl Trait for Type` → trait = last ident before `for`,
    // type = last ident after; `impl Type` → type = last ident.
    let (trait_name, self_ty) = match header.iter().position(|s| s == "for") {
        Some(p) => (
            header[..p].iter().rev().find(|s| !is_keyword(s)).cloned(),
            header[p + 1..]
                .iter()
                .rev()
                .find(|s| !is_keyword(s))
                .cloned(),
        ),
        None => (None, header.iter().rev().find(|s| !is_keyword(s)).cloned()),
    };
    if let Some(g) = body {
        let sub = ItemCtx {
            in_test: ctx.in_test,
            self_ty,
            trait_name,
        };
        parse_items(&g.trees, &sub, ast);
    }
    i
}

/// Parses `trait Name … { items }` (default method bodies are linted).
fn parse_trait(trees: &[Tree], trait_idx: usize, ctx: &ItemCtx, ast: &mut FileAst) -> usize {
    let name = trees
        .get(trait_idx + 1)
        .and_then(|t| t.token())
        .map(|t| t.text.clone());
    let mut i = trait_idx + 1;
    let mut depth = 0i32;
    while i < trees.len() {
        match &trees[i] {
            Tree::Group(g) if g.delim == Delim::Brace && depth <= 0 => {
                let sub = ItemCtx {
                    in_test: ctx.in_test,
                    self_ty: None,
                    trait_name: name,
                };
                parse_items(&g.trees, &sub, ast);
                return i + 1;
            }
            Tree::Tok(tok) => {
                match tok.text.as_str() {
                    "<" => depth += 1,
                    "<<" => depth += 2,
                    ">" => depth -= 1,
                    ">>" => depth -= 2,
                    ";" if depth <= 0 => return i + 1,
                    _ => {}
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Parses `struct Name { fields }` (tuple/unit structs carry no named
/// fields and are skipped).
fn parse_struct(trees: &[Tree], struct_idx: usize, ast: &mut FileAst) -> usize {
    let Some(name) = trees
        .get(struct_idx + 1)
        .and_then(|t| t.token())
        .map(|t| t.text.clone())
    else {
        return struct_idx + 1;
    };
    let mut i = struct_idx + 2;
    if trees.get(i).is_some_and(|t| t.is_punct("<")) {
        i = skip_generics(trees, i);
    }
    while i < trees.len() {
        if let Some(g) = trees[i].group() {
            match g.delim {
                Delim::Brace => {
                    collect_fields(&g.trees, &name, ast);
                    return i + 1;
                }
                Delim::Paren => return i + 1, // tuple struct
                Delim::Bracket => {}
            }
        }
        if trees[i].is_punct(";") {
            return i + 1;
        }
        i += 1;
    }
    i
}

/// Collects `name: Type` fields from a struct body (attributes and
/// visibility skipped; types flattened).
fn collect_fields(trees: &[Tree], owner: &str, ast: &mut FileAst) {
    let mut depth = 0i32;
    let mut i = 0usize;
    while i < trees.len() {
        // Skip field attributes.
        if trees[i].is_punct("#") {
            i += 2;
            continue;
        }
        let is_colon = trees[i].is_punct(":") && depth <= 0;
        if let Some(tok) = trees[i].token() {
            match tok.text.as_str() {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                _ => {}
            }
        }
        if is_colon && i > 0 {
            if let Some(name_tok) = trees[i - 1].token() {
                if name_tok.kind == TokKind::Ident {
                    // Type runs to the next top-level comma.
                    let mut j = i + 1;
                    let mut d = 0i32;
                    while j < trees.len() {
                        if let Some(t) = trees[j].token() {
                            match t.text.as_str() {
                                "<" => d += 1,
                                "<<" => d += 2,
                                ">" => d -= 1,
                                ">>" => d -= 2,
                                "," if d <= 0 => break,
                                _ => {}
                            }
                        }
                        j += 1;
                    }
                    ast.fields.push(StructField {
                        owner: owner.to_string(),
                        name: name_tok.text.clone(),
                        ty: flatten(&trees[i + 1..j]),
                    });
                    i = j + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "pub"
            | "unsafe"
            | "impl"
            | "for"
            | "where"
            | "dyn"
            | "mut"
            | "ref"
            | "const"
            | "crate"
            | "self"
            | "Self"
            | "super"
            | "as"
            | "in"
    )
}

/// Flattens a body's trees into a linear token list with group boundary
/// markers — the form most rule scans consume. Group opens/closes are
/// re-materialized as punct-like tokens so patterns can see structure.
pub fn linearize(trees: &[Tree], out: &mut Vec<Token>) {
    for t in trees {
        match t {
            Tree::Tok(tok) => out.push(tok.clone()),
            Tree::Group(g) => {
                let (open, close) = match g.delim {
                    Delim::Paren => ("(", ")"),
                    Delim::Bracket => ("[", "]"),
                    Delim::Brace => ("{", "}"),
                };
                out.push(Token {
                    kind: TokKind::Open(g.delim),
                    text: open.to_string(),
                    span: g.open,
                });
                linearize(&g.trees, out);
                out.push(Token {
                    kind: TokKind::Close(g.delim),
                    text: close.to_string(),
                    span: g.close,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> FileAst {
        parse_file("crates/mem/src/x.rs", src).expect("parses")
    }

    #[test]
    fn free_fn_is_found() {
        let ast = parse("pub fn foo(a: u64, b: &mut Vec<u8>) -> u64 { a }\n");
        assert_eq!(ast.fns.len(), 1);
        assert_eq!(ast.fns[0].name, "foo");
        assert_eq!(ast.fns[0].params[0], ("a".into(), "u64".into()));
        assert!(ast.fns[0].params[1].1.contains("Vec"));
        assert!(!ast.fns[0].is_test);
    }

    #[test]
    fn impl_context_and_trait() {
        let ast = parse(
            "struct Cache { sets: usize }\n\
             impl Cache { fn probe(&mut self) {} }\n\
             impl Policy<CacheMeta> for Cache { fn victim(&mut self) -> usize { 0 } }\n",
        );
        let probe = ast.fns.iter().find(|f| f.name == "probe").unwrap();
        assert_eq!(probe.self_ty.as_deref(), Some("Cache"));
        assert_eq!(probe.trait_name, None);
        let victim = ast.fns.iter().find(|f| f.name == "victim").unwrap();
        assert_eq!(victim.self_ty.as_deref(), Some("Cache"));
        assert_eq!(victim.trait_name.as_deref(), Some("Policy"));
    }

    #[test]
    fn cfg_test_modules_mark_fns_test() {
        let ast = parse(
            "fn prod() {}\n\
             #[cfg(test)]\n\
             mod tests {\n    fn helper() {}\n    #[test]\n    fn t() {}\n}\n",
        );
        assert!(!ast.fns.iter().find(|f| f.name == "prod").unwrap().is_test);
        assert!(ast.fns.iter().find(|f| f.name == "helper").unwrap().is_test);
        assert!(ast.fns.iter().find(|f| f.name == "t").unwrap().is_test);
    }

    #[test]
    fn single_line_cfg_test_mod_is_resolved() {
        // The legacy regex required `#[cfg(test)]` on its own line; the
        // structural parser does not care about formatting.
        let ast = parse("#[cfg(test)] mod tests { fn t() { bad(); } }\n");
        assert!(ast.fns[0].is_test);
    }

    #[test]
    fn cfg_not_test_is_not_test() {
        let ast = parse("#[cfg(not(test))] fn prod() {}\n");
        assert!(!ast.fns[0].is_test);
    }

    #[test]
    fn struct_fields_are_collected() {
        let ast = parse(
            "pub struct Tlb {\n    pub cfg: TlbConfig,\n    entries: Box<[Entry]>,\n    \
             samples: Vec<BTreeMap<u64, SampleEntry>>,\n}\n",
        );
        assert_eq!(ast.fields.len(), 3);
        let s = ast.fields.iter().find(|f| f.name == "samples").unwrap();
        assert_eq!(s.owner, "Tlb");
        assert!(s.ty.starts_with("Vec"));
        assert!(s.ty.contains("BTreeMap"));
    }

    #[test]
    fn test_attr_survives_pub_and_async() {
        let ast = parse("#[cfg(test)]\npub async fn helper() {}\n");
        assert!(ast.fns[0].is_test);
    }

    #[test]
    fn nested_generics_do_not_break_parsing() {
        let ast = parse("fn f(m: &mut Vec<Vec<u64>>) -> Option<Box<dyn Policy<M>>> { None }\n");
        assert_eq!(ast.fns.len(), 1);
        assert!(ast.fns[0].params[0].1.contains("Vec"));
    }

    #[test]
    fn trait_default_methods_get_trait_context() {
        let ast = parse("trait Policy<M> { fn on_evict(&mut self, s: usize) { let _ = s; } }\n");
        assert_eq!(ast.fns[0].trait_name.as_deref(), Some("Policy"));
    }

    #[test]
    fn macro_rules_bodies_are_skipped() {
        let ast = parse("macro_rules! m { ($x:ident) => { fn generated() {} }; }\nfn real() {}\n");
        assert_eq!(ast.fns.len(), 1);
        assert_eq!(ast.fns[0].name, "real");
    }

    #[test]
    fn files_under_tests_dirs_are_test_scoped() {
        let ast = parse_file("crates/mem/tests/x.rs", "fn t() {}\n").unwrap();
        assert!(ast.fns[0].is_test);
    }
}
