//! `itpx-lint`: AST-based static analysis for the itpx workspace.
//!
//! `cargo xtask analyze` drives [`run`], which parses every linted source
//! file into a syntax model (lexer → token trees → items, in-tree for the
//! same reason the workspace carries `proptest-shim`/`criterion-shim`: no
//! registry access, so the parser is the offline analogue of `syn`),
//! resolves `#[cfg(test)]` scopes structurally, and applies:
//!
//! * the six determinism rules ported from the retired regex scanner
//!   (`std-time`, `entropy`, `map-iter`, `panicking-index`, `layering`,
//!   `dispatch`) plus the `nested-vec` data-layout rule — see [`rules`];
//! * the three hot-path rules over the call graph rooted at the
//!   per-access entry points (`hot-alloc`, `hot-float`, `arith-width`) —
//!   see [`hot`];
//! * the annotation pass: `// itpx-allow: <rule> <reason>` comments
//!   suppress findings in place, and unused or malformed annotations are
//!   themselves hard failures — see [`annotations`].
//!
//! The static pass is cross-checked dynamically by [`alloc_witness`]: a
//! counting `#[global_allocator]` that the `alloc_witness` integration
//! test wraps around 100k warm accesses per registered policy to prove
//! the zero-steady-state-allocation claim on real machine code, not just
//! on syntax.

pub mod annotations;
pub mod ast;
pub mod hot;
pub mod legacy;
pub mod lexer;
pub mod rules;

use std::fs;
use std::path::{Path, PathBuf};

/// Crate directories (under `crates/`) that receive the full rule set.
/// `bench`, `xtask`, and `lint` are excluded: none of them runs inside a
/// simulation.
pub const LINTED_CRATES: &[&str] = &["types", "policy", "core", "vm", "mem", "cpu", "trace"];

/// Bench files on the simulation-cache path: cache keys and persisted
/// results must be process-stable, so `std-time` and `entropy` extend
/// here.
pub const LINTED_CACHE_FILES: &[&str] = &[
    "crates/bench/src/simcache.rs",
    "crates/bench/src/campaign.rs",
    "crates/bench/src/store.rs",
];

/// The rules enforced on [`LINTED_CACHE_FILES`].
pub const CACHE_PATH_RULES: &[&str] = &["std-time", "entropy"];

/// Extra source roots scanned with only the `layering` rule.
pub const LAYERING_EXTRA_ROOTS: &[&str] = &["crates/bench/src"];

/// Every rule the engine knows (the valid names for `itpx-allow`).
pub const ALL_RULES: &[&str] = &[
    "std-time",
    "entropy",
    "map-iter",
    "panicking-index",
    "layering",
    "dispatch",
    "nested-vec",
    "hot-alloc",
    "hot-float",
    "arith-width",
];

/// One finding with file position and explanation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier.
    pub rule: String,
    /// Repo-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// The offending line, trimmed.
    pub excerpt: String,
    /// Why this is a finding.
    pub note: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {} — {}",
            self.path, self.line, self.col, self.rule, self.excerpt, self.note
        )
    }
}

/// Result of an analysis run.
#[derive(Debug, Default)]
pub struct Report {
    /// Rule findings that survived annotation filtering.
    pub findings: Vec<Finding>,
    /// Stale (`stale-allow`) and malformed (`bad-allow`) annotations.
    pub annotation_errors: Vec<Finding>,
    /// Number of files analyzed.
    pub files_scanned: usize,
    /// Number of functions the call graph marked hot.
    pub hot_fns: usize,
}

impl Report {
    /// `true` when the tree is clean: no findings, no annotation rot.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.annotation_errors.is_empty()
    }

    /// Renders the report as a JSON object (hand-rolled — the workspace
    /// carries no serde) for CI trend tracking.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        fn finding(f: &Finding) -> String {
            format!(
                "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"excerpt\":\"{}\",\"note\":\"{}\"}}",
                esc(&f.rule),
                esc(&f.path),
                f.line,
                f.col,
                esc(&f.excerpt),
                esc(&f.note)
            )
        }
        let findings: Vec<String> = self.findings.iter().map(finding).collect();
        let errors: Vec<String> = self.annotation_errors.iter().map(finding).collect();
        format!(
            "{{\"files_scanned\":{},\"hot_fns\":{},\"findings\":[{}],\"annotation_errors\":[{}]}}\n",
            self.files_scanned,
            self.hot_fns,
            findings.join(","),
            errors.join(",")
        )
    }
}

/// Which rules apply to one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scope {
    /// All nine rules; participates in the call graph.
    Full,
    /// `std-time` + `entropy` only (bench cache path).
    CachePath,
    /// `layering` only (bench harness).
    LayeringOnly,
}

/// Runs the analysis over the workspace rooted at `root`.
pub fn run(root: &Path) -> Result<Report, String> {
    let mut inputs: Vec<(String, String, Scope)> = Vec::new();
    for krate in LINTED_CRATES {
        let dir = root.join("crates").join(krate).join("src");
        let mut files = Vec::new();
        collect_rs_files(&dir, &mut files)
            .map_err(|e| format!("walking {}: {e}", dir.display()))?;
        files.sort();
        for file in files {
            let src = fs::read_to_string(&file)
                .map_err(|e| format!("reading {}: {e}", file.display()))?;
            inputs.push((rel_path(root, &file), src, Scope::Full));
        }
    }
    for rel in LINTED_CACHE_FILES {
        let file = root.join(rel);
        let src =
            fs::read_to_string(&file).map_err(|e| format!("reading {}: {e}", file.display()))?;
        inputs.push((rel.to_string(), src, Scope::CachePath));
    }
    for root_rel in LAYERING_EXTRA_ROOTS {
        let dir = root.join(root_rel);
        let mut files = Vec::new();
        collect_rs_files(&dir, &mut files)
            .map_err(|e| format!("walking {}: {e}", dir.display()))?;
        files.sort();
        for file in files {
            let rel = rel_path(root, &file);
            if LINTED_CACHE_FILES.contains(&rel.as_str()) {
                continue; // already covered with the cache-path scope
            }
            let src = fs::read_to_string(&file)
                .map_err(|e| format!("reading {}: {e}", file.display()))?;
            inputs.push((rel, src, Scope::LayeringOnly));
        }
    }
    analyze(&inputs)
}

/// Analyzes in-memory sources with full-rule scope — the fixture-corpus
/// entry point.
pub fn analyze_sources(files: &[(String, String)]) -> Result<Report, String> {
    let inputs: Vec<(String, String, Scope)> = files
        .iter()
        .map(|(p, s)| (p.clone(), s.clone(), Scope::Full))
        .collect();
    analyze(&inputs)
}

fn analyze(inputs: &[(String, String, Scope)]) -> Result<Report, String> {
    let mut asts = Vec::new();
    for (path, src, scope) in inputs {
        let ast = ast::parse_file(path, src)?;
        asts.push((ast, *scope));
    }
    // The hot-path graph covers the simulated machine. `crates/trace` is
    // deliberately outside it: the generator and analysis code run per
    // instruction too, but they model the *workload* (with seeded-Rng64
    // float dice and unbounded recording structures by design), not the
    // microarchitecture the zero-alloc/no-float budget applies to.
    let graph_files: Vec<(&ast::FileAst, bool)> = asts
        .iter()
        .map(|(a, s)| (a, *s == Scope::Full && !a.path.contains("crates/trace/")))
        .collect();
    let hot = hot::hot_set(&graph_files);
    let mut report = Report {
        files_scanned: asts.len(),
        hot_fns: hot.len(),
        ..Report::default()
    };
    for (fi, (ast, scope)) in asts.iter().enumerate() {
        let (anns, bad) = annotations::collect(ast, ALL_RULES);
        let mut used = vec![false; anns.len()];
        let mut raw: Vec<rules::RawFinding> = Vec::new();
        let ts = rules::non_test_tokens(ast);
        match scope {
            Scope::Full => {
                raw.extend(rules::scan_std_time(&ts));
                raw.extend(rules::scan_entropy(&ts));
                if !ast.path.contains("crates/mem/") {
                    raw.extend(rules::scan_layering(&ts));
                }
                if ["crates/mem/", "crates/vm/", "crates/cpu/"]
                    .iter()
                    .any(|c| ast.path.contains(c))
                {
                    raw.extend(rules::scan_dispatch(&ts));
                }
                if ["crates/mem/", "crates/vm/", "crates/cpu/", "crates/policy/"]
                    .iter()
                    .any(|c| ast.path.contains(c))
                {
                    raw.extend(rules::scan_nested_vec(&ts));
                }
                raw.extend(rules::scan_map_iter(ast));
                for f in ast.fns.iter().filter(|f| !f.is_test) {
                    for c in rules::scan_panicking(f) {
                        if !ast.has_comment_near(c.line) {
                            raw.push(c);
                        }
                    }
                }
                for id in hot.iter().filter(|id| id.file == fi) {
                    raw.extend(hot::scan_hot_fn(ast, &ast.fns[id.idx]));
                }
            }
            Scope::CachePath => {
                raw.extend(rules::scan_std_time(&ts));
                raw.extend(rules::scan_entropy(&ts));
            }
            Scope::LayeringOnly => {
                raw.extend(rules::scan_layering(&ts));
            }
        }
        for c in raw {
            let mut suppressed = false;
            for (ai, ann) in anns.iter().enumerate() {
                if annotations::covers(ann, c.rule, c.line) {
                    used[ai] = true;
                    suppressed = true;
                    break;
                }
            }
            if !suppressed {
                report.findings.push(Finding {
                    rule: c.rule.to_string(),
                    path: ast.path.clone(),
                    line: c.line,
                    col: c.col,
                    excerpt: ast.excerpt(c.line),
                    note: c.note,
                });
            }
        }
        for (ai, ann) in anns.iter().enumerate() {
            if !used[ai] {
                report.annotation_errors.push(Finding {
                    rule: "stale-allow".to_string(),
                    path: ast.path.clone(),
                    line: ann.own_line,
                    col: 1,
                    excerpt: ast.excerpt(ann.own_line),
                    note: format!(
                        "annotation for `{}` suppressed nothing — fix the excuse or delete it",
                        ann.rule
                    ),
                });
            }
        }
        for b in bad {
            report.annotation_errors.push(Finding {
                rule: "bad-allow".to_string(),
                path: ast.path.clone(),
                line: b.line,
                col: 1,
                excerpt: ast.excerpt(b.line),
                note: b.why,
            });
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.col, &a.rule).cmp(&(&b.path, b.line, b.col, &b.rule)));
    report
        .annotation_errors
        .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(report)
}

fn rel_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The dynamic half of the hot-path gate: a counting global allocator.
///
/// The `alloc_witness` integration test declares
/// `#[global_allocator] static A: CountingAllocator = …`, warms every
/// registered policy through its engine, snapshots the counters with
/// [`CountingAllocator::snapshot`], drives 100k further accesses, and
/// asserts the counts did not move. The static analyzer claims the hot
/// path cannot allocate; this proves the claim on the machine code that
/// actually ran, macros, std internals, and all.
pub mod alloc_witness {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A `GlobalAlloc` that delegates to [`System`] and counts.
    pub struct CountingAllocator {
        allocs: AtomicU64,
        reallocs: AtomicU64,
        bytes: AtomicU64,
    }

    /// A point-in-time reading of the counters.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Snapshot {
        /// Number of `alloc`/`alloc_zeroed` calls so far.
        pub allocs: u64,
        /// Number of `realloc` calls so far.
        pub reallocs: u64,
        /// Total bytes requested so far.
        pub bytes: u64,
    }

    impl Snapshot {
        /// Allocation events between `self` and a later `after` reading.
        pub fn events_until(&self, after: Snapshot) -> u64 {
            (after.allocs - self.allocs) + (after.reallocs - self.reallocs)
        }
    }

    impl CountingAllocator {
        /// A zeroed counter set (const so it can back a static).
        pub const fn new() -> Self {
            Self {
                allocs: AtomicU64::new(0),
                reallocs: AtomicU64::new(0),
                bytes: AtomicU64::new(0),
            }
        }

        /// Reads the counters.
        pub fn snapshot(&self) -> Snapshot {
            Snapshot {
                allocs: self.allocs.load(Ordering::Relaxed),
                reallocs: self.reallocs.load(Ordering::Relaxed),
                bytes: self.bytes.load(Ordering::Relaxed),
            }
        }
    }

    impl Default for CountingAllocator {
        fn default() -> Self {
            Self::new()
        }
    }

    // SAFETY: delegates every operation to `System` unchanged; the only
    // added behavior is relaxed counter increments, which allocate
    // nothing.
    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            self.allocs.fetch_add(1, Ordering::Relaxed);
            self.bytes
                .fetch_add(layout.size() as u64, Ordering::Relaxed);
            unsafe { System.alloc(layout) }
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            self.allocs.fetch_add(1, Ordering::Relaxed);
            self.bytes
                .fetch_add(layout.size() as u64, Ordering::Relaxed);
            unsafe { System.alloc_zeroed(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            self.reallocs.fetch_add(1, Ordering::Relaxed);
            self.bytes.fetch_add(new_size as u64, Ordering::Relaxed);
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze_one(path: &str, src: &str) -> Report {
        analyze_sources(&[(path.to_string(), src.to_string())]).expect("analyzes")
    }

    #[test]
    fn clean_file_is_clean() {
        let r = analyze_one(
            "crates/mem/src/x.rs",
            "pub fn f(v: &[u32], i: usize) -> u32 { v[i] }\n",
        );
        assert!(r.is_clean(), "{:?}", r.findings);
        assert_eq!(r.files_scanned, 1);
    }

    #[test]
    fn annotation_suppresses_and_registers_use() {
        let src = "struct Cache { v: Vec<u64> }\n\
                   impl Cache {\n\
                       pub fn probe(&mut self) {\n\
                           self.v.push(1); // itpx-allow: hot-alloc grow-once, capacity proven in tests\n\
                       }\n\
                   }\n";
        let r = analyze_one("crates/mem/src/cache.rs", src);
        assert!(r.is_clean(), "{:?} / {:?}", r.findings, r.annotation_errors);
    }

    #[test]
    fn annotation_above_the_line_works() {
        let src = "struct Cache { v: Vec<u64> }\n\
                   impl Cache {\n\
                       pub fn probe(&mut self) {\n\
                           // itpx-allow: hot-alloc grow-once, capacity proven in tests\n\
                           self.v.push(1);\n\
                       }\n\
                   }\n";
        let r = analyze_one("crates/mem/src/cache.rs", src);
        assert!(r.is_clean(), "{:?} / {:?}", r.findings, r.annotation_errors);
    }

    #[test]
    fn fn_scope_annotation_covers_whole_body() {
        let src = "struct Stats { m: f64 }\n\
                   impl Stats {\n\
                       // itpx-allow: hot-float statistics accumulator, never feeds simulated state\n\
                       pub fn add(&mut self, x: f64) {\n\
                           self.m = self.m * 0.5 + x * 0.5;\n\
                       }\n\
                   }\n\
                   struct Cache {}\n\
                   impl Cache { pub fn probe(&mut self, s: &mut Stats, x: f64) { s.add(x); } }\n";
        let r = analyze_one("crates/mem/src/x.rs", src);
        assert!(r.is_clean(), "{:?} / {:?}", r.findings, r.annotation_errors);
    }

    #[test]
    fn stale_annotation_is_reported() {
        let src = "// itpx-allow: hot-alloc nothing here allocates\n\
                   pub fn f() -> u32 { 7 }\n";
        let r = analyze_one("crates/mem/src/x.rs", src);
        assert!(!r.is_clean());
        assert_eq!(r.annotation_errors.len(), 1);
        assert_eq!(r.annotation_errors[0].rule, "stale-allow");
    }

    #[test]
    fn unknown_rule_annotation_is_reported() {
        let src = "pub fn f() -> u32 { 7 } // itpx-allow: hot-allok typo\n";
        let r = analyze_one("crates/mem/src/x.rs", src);
        assert_eq!(r.annotation_errors.len(), 1);
        assert_eq!(r.annotation_errors[0].rule, "bad-allow");
    }

    #[test]
    fn missing_reason_is_reported() {
        let src = "pub fn f() -> u32 { 7 } // itpx-allow: hot-alloc\n";
        let r = analyze_one("crates/mem/src/x.rs", src);
        assert_eq!(r.annotation_errors.len(), 1);
        assert_eq!(r.annotation_errors[0].rule, "bad-allow");
    }

    #[test]
    fn json_report_escapes_and_counts() {
        let r = analyze_one(
            "crates/vm/src/x.rs",
            "fn f(o: Option<u32>) { o.unwrap(); }\n",
        );
        assert_eq!(r.findings.len(), 1);
        let json = r.to_json();
        assert!(json.contains("\"findings\":[{"));
        assert!(json.contains("\"rule\":\"panicking-index\""));
        assert!(json.contains("\"files_scanned\":1"));
    }

    #[test]
    fn parse_error_is_a_hard_error() {
        let r = analyze_sources(&[(
            "crates/vm/src/x.rs".to_string(),
            "fn f() { let x = (; }\n".to_string(),
        )]);
        assert!(r.is_err());
    }

    #[test]
    fn counting_allocator_counts() {
        // Not installed as the global allocator here (the integration test
        // does that); exercise the GlobalAlloc impl directly.
        use std::alloc::{GlobalAlloc, Layout};
        let a = alloc_witness::CountingAllocator::new();
        let before = a.snapshot();
        let layout = Layout::from_size_align(64, 8).expect("valid layout");
        // SAFETY: matching alloc/dealloc with a valid layout.
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            a.dealloc(p, layout);
        }
        let after = a.snapshot();
        assert_eq!(before.events_until(after), 1);
        assert_eq!(after.bytes - before.bytes, 64);
    }
}
