//! A Rust lexer producing spanned tokens and a separate comment stream.
//!
//! This is the foundation of the AST engine: unlike the retired line-regex
//! scanner, every downstream pass works on *tokens*, so string literals,
//! comments, and formatting can never masquerade as code (or hide it).
//!
//! The lexer understands the full surface syntax the workspace uses:
//! nested block comments, raw/byte string literals, char literals vs
//! lifetimes, numeric literals with separators/suffixes/exponents, and
//! multi-character operators (`::`, `->`, `<<`, `..=`, …). Comments are
//! not discarded — they are returned as a side stream because two rules
//! consume them: `panicking-index` (a justifying comment exempts a site)
//! and the `// itpx-allow:` annotation grammar.

/// A source position, 1-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column (in characters).
    pub col: u32,
}

/// Delimiter kind of a bracketed group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delim {
    /// `( … )`
    Paren,
    /// `[ … ]`
    Bracket,
    /// `{ … }`
    Brace,
}

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (keywords are not distinguished here).
    Ident,
    /// A lifetime (`'a`) — the text excludes the quote.
    Lifetime,
    /// Integer literal.
    Int,
    /// Floating-point literal.
    Float,
    /// String / raw string / byte string literal (text is the raw source).
    Str,
    /// Character or byte literal.
    Char,
    /// Operator or punctuation (possibly multi-character: `::`, `<<`, …).
    Punct,
    /// Opening delimiter.
    Open(Delim),
    /// Closing delimiter.
    Close(Delim),
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: TokKind,
    /// Source text (for `Str`, the full literal including quotes).
    pub text: String,
    /// Position of the first character.
    pub span: Span,
}

impl Token {
    /// `true` if this token is an identifier with the given text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// `true` if this token is punctuation with the given text.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// One comment (line or block), with the position of its opening `/`.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Full comment text including the `//` / `/*` markers.
    pub text: String,
    /// Position of the first character.
    pub span: Span,
    /// Line of the last character (block comments can span lines).
    pub end_line: u32,
}

/// Lexer failure: position plus message. Any failure fails the whole
/// analysis run — a file the engine cannot read is a file it cannot vouch
/// for.
#[derive(Debug, Clone)]
pub struct LexError {
    /// Where lexing failed.
    pub span: Span,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.span.line, self.span.col, self.msg)
    }
}

/// Multi-character operators, longest first so maximal munch works.
const OPERATORS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn span(&self) -> Span {
        Span {
            line: self.line,
            col: self.col,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s.as_bytes())
    }

    /// Advances one byte, maintaining line/col. Multi-byte UTF-8
    /// continuation bytes do not advance the column so columns count
    /// characters, not bytes.
    fn bump(&mut self) {
        let b = self.src[self.pos];
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if b & 0xc0 != 0x80 {
            self.col += 1;
        }
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn slice_from(&self, start: usize) -> &'a str {
        // The lexer only splits at ASCII boundaries, so this is valid UTF-8.
        std::str::from_utf8(&self.src[start..self.pos]).unwrap_or("")
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into a token stream plus a comment stream.
pub fn lex(src: &str) -> Result<(Vec<Token>, Vec<Comment>), LexError> {
    let mut cur = Cursor::new(src);
    let mut tokens = Vec::new();
    let mut comments = Vec::new();
    while let Some(b) = cur.peek() {
        let span = cur.span();
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => cur.bump(),
            b'/' if cur.peek_at(1) == Some(b'/') => {
                let start = cur.pos;
                while cur.peek().is_some_and(|c| c != b'\n') {
                    cur.bump();
                }
                comments.push(Comment {
                    text: cur.slice_from(start).to_string(),
                    span,
                    end_line: span.line,
                });
            }
            b'/' if cur.peek_at(1) == Some(b'*') => {
                let start = cur.pos;
                cur.bump_n(2);
                let mut depth = 1u32;
                while depth > 0 {
                    match cur.peek() {
                        None => {
                            return Err(LexError {
                                span,
                                msg: "unterminated block comment".into(),
                            })
                        }
                        Some(b'/') if cur.peek_at(1) == Some(b'*') => {
                            depth += 1;
                            cur.bump_n(2);
                        }
                        Some(b'*') if cur.peek_at(1) == Some(b'/') => {
                            depth -= 1;
                            cur.bump_n(2);
                        }
                        Some(_) => cur.bump(),
                    }
                }
                comments.push(Comment {
                    text: cur.slice_from(start).to_string(),
                    span,
                    end_line: cur.line,
                });
            }
            b'"' => tokens.push(lex_string(&mut cur, span)?),
            b'r' | b'b' if starts_string(&cur) => tokens.push(lex_string(&mut cur, span)?),
            b'\'' => lex_quote(&mut cur, span, &mut tokens)?,
            _ if is_ident_start(b) => {
                let start = cur.pos;
                while cur.peek().is_some_and(is_ident_continue) {
                    cur.bump();
                }
                tokens.push(Token {
                    kind: TokKind::Ident,
                    text: cur.slice_from(start).to_string(),
                    span,
                });
            }
            _ if b.is_ascii_digit() => tokens.push(lex_number(&mut cur, span)),
            b'(' | b'[' | b'{' => {
                let delim = match b {
                    b'(' => Delim::Paren,
                    b'[' => Delim::Bracket,
                    _ => Delim::Brace,
                };
                cur.bump();
                tokens.push(Token {
                    kind: TokKind::Open(delim),
                    text: (b as char).to_string(),
                    span,
                });
            }
            b')' | b']' | b'}' => {
                let delim = match b {
                    b')' => Delim::Paren,
                    b']' => Delim::Bracket,
                    _ => Delim::Brace,
                };
                cur.bump();
                tokens.push(Token {
                    kind: TokKind::Close(delim),
                    text: (b as char).to_string(),
                    span,
                });
            }
            _ => {
                let mut matched = false;
                for op in OPERATORS {
                    if cur.starts_with(op) {
                        cur.bump_n(op.len());
                        tokens.push(Token {
                            kind: TokKind::Punct,
                            text: (*op).to_string(),
                            span,
                        });
                        matched = true;
                        break;
                    }
                }
                if !matched {
                    cur.bump();
                    tokens.push(Token {
                        kind: TokKind::Punct,
                        text: (b as char).to_string(),
                        span,
                    });
                }
            }
        }
    }
    Ok((tokens, comments))
}

/// Is the cursor at the start of a raw/byte string (`r"`, `r#"`, `b"`,
/// `br"`, `b'`…)? `b'x'` byte chars are handled by the char path via the
/// returned `false` here.
fn starts_string(cur: &Cursor<'_>) -> bool {
    let b0 = cur.peek();
    let b1 = cur.peek_at(1);
    match (b0, b1) {
        (Some(b'r'), Some(b'"' | b'#')) => true,
        (Some(b'b'), Some(b'"')) => true,
        (Some(b'b'), Some(b'r')) => matches!(cur.peek_at(2), Some(b'"' | b'#')),
        _ => false,
    }
}

fn lex_string(cur: &mut Cursor<'_>, span: Span) -> Result<Token, LexError> {
    let start = cur.pos;
    let mut raw = false;
    if cur.peek() == Some(b'b') {
        cur.bump();
    }
    if cur.peek() == Some(b'r') {
        raw = true;
        cur.bump();
    }
    let mut hashes = 0usize;
    while raw && cur.peek() == Some(b'#') {
        hashes += 1;
        cur.bump();
    }
    if cur.peek() != Some(b'"') {
        // `r` / `b` turned out to be an identifier start after all
        // (e.g. `r#ident` raw identifiers). Treat as identifier.
        while cur.peek().is_some_and(is_ident_continue) {
            cur.bump();
        }
        return Ok(Token {
            kind: TokKind::Ident,
            text: cur.slice_from(start).to_string(),
            span,
        });
    }
    cur.bump(); // opening quote
    loop {
        match cur.peek() {
            None => {
                return Err(LexError {
                    span,
                    msg: "unterminated string literal".into(),
                })
            }
            Some(b'\\') if !raw => {
                cur.bump();
                if cur.peek().is_some() {
                    cur.bump();
                }
            }
            Some(b'"') => {
                cur.bump();
                if !raw {
                    break;
                }
                let mut seen = 0usize;
                while seen < hashes && cur.peek() == Some(b'#') {
                    seen += 1;
                    cur.bump();
                }
                if seen == hashes {
                    break;
                }
            }
            Some(_) => cur.bump(),
        }
    }
    Ok(Token {
        kind: TokKind::Str,
        text: cur.slice_from(start).to_string(),
        span,
    })
}

/// Disambiguates `'a` (lifetime) from `'a'` / `'\n'` (char literal).
fn lex_quote(cur: &mut Cursor<'_>, span: Span, tokens: &mut Vec<Token>) -> Result<(), LexError> {
    let start = cur.pos;
    cur.bump(); // the quote
    match cur.peek() {
        Some(b'\\') => {
            // Escaped char literal.
            cur.bump();
            while cur.peek().is_some_and(|c| c != b'\'') {
                cur.bump();
            }
            if cur.peek() != Some(b'\'') {
                return Err(LexError {
                    span,
                    msg: "unterminated char literal".into(),
                });
            }
            cur.bump();
            tokens.push(Token {
                kind: TokKind::Char,
                text: cur.slice_from(start).to_string(),
                span,
            });
        }
        Some(c) if is_ident_start(c) || c.is_ascii_digit() => {
            // Could be `'a'` (char) or `'abc` (lifetime): scan the ident
            // run and check for a closing quote.
            let mut n = 0usize;
            while cur.peek_at(n).is_some_and(is_ident_continue) {
                n += 1;
            }
            if cur.peek_at(n) == Some(b'\'') {
                cur.bump_n(n + 1);
                tokens.push(Token {
                    kind: TokKind::Char,
                    text: cur.slice_from(start).to_string(),
                    span,
                });
            } else {
                cur.bump_n(n);
                tokens.push(Token {
                    kind: TokKind::Lifetime,
                    text: cur.slice_from(start + 1).to_string(),
                    span,
                });
            }
        }
        Some(_) => {
            // `'('` style char literal of a single non-ident character.
            cur.bump();
            if cur.peek() == Some(b'\'') {
                cur.bump();
                tokens.push(Token {
                    kind: TokKind::Char,
                    text: cur.slice_from(start).to_string(),
                    span,
                });
            } else {
                return Err(LexError {
                    span,
                    msg: "stray quote".into(),
                });
            }
        }
        None => {
            return Err(LexError {
                span,
                msg: "stray quote at end of input".into(),
            })
        }
    }
    Ok(())
}

fn lex_number(cur: &mut Cursor<'_>, span: Span) -> Token {
    let start = cur.pos;
    let mut float = false;
    if cur.starts_with("0x")
        || cur.starts_with("0X")
        || cur.starts_with("0b")
        || cur.starts_with("0o")
    {
        cur.bump_n(2);
        while cur
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
        {
            cur.bump();
        }
    } else {
        while cur.peek().is_some_and(|c| c.is_ascii_digit() || c == b'_') {
            cur.bump();
        }
        // A `.` continues the number only when followed by a digit — this
        // keeps `0..n` (range) and `1.max(x)` (method call) out of floats.
        if cur.peek() == Some(b'.') && cur.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
            float = true;
            cur.bump();
            while cur.peek().is_some_and(|c| c.is_ascii_digit() || c == b'_') {
                cur.bump();
            }
        }
        // Exponent.
        if matches!(cur.peek(), Some(b'e' | b'E'))
            && (cur.peek_at(1).is_some_and(|c| c.is_ascii_digit())
                || (matches!(cur.peek_at(1), Some(b'+' | b'-'))
                    && cur.peek_at(2).is_some_and(|c| c.is_ascii_digit())))
        {
            float = true;
            cur.bump();
            if matches!(cur.peek(), Some(b'+' | b'-')) {
                cur.bump();
            }
            while cur.peek().is_some_and(|c| c.is_ascii_digit()) {
                cur.bump();
            }
        }
        // Type suffix (`u64`, `f64`, `usize`, …). An `f32`/`f64` suffix
        // makes an integer-looking literal a float.
        if cur.peek().is_some_and(is_ident_start) {
            let suffix_start = cur.pos;
            while cur.peek().is_some_and(is_ident_continue) {
                cur.bump();
            }
            let suffix = &cur.src[suffix_start..cur.pos];
            if suffix == b"f32" || suffix == b"f64" {
                float = true;
            }
        }
    }
    Token {
        kind: if float { TokKind::Float } else { TokKind::Int },
        text: cur.slice_from(start).to_string(),
        span,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src)
            .expect("lexes")
            .0
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    fn texts(src: &str) -> Vec<String> {
        lex(src)
            .expect("lexes")
            .0
            .into_iter()
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        assert_eq!(
            texts("a::b -> c"),
            vec![
                "a".to_string(),
                "::".into(),
                "b".into(),
                "->".into(),
                "c".into()
            ]
        );
    }

    #[test]
    fn strings_are_single_tokens() {
        let (toks, _) = lex(r#"let s = "std::time::Instant::now()";"#).unwrap();
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
        assert!(!toks.iter().any(|t| t.is_ident("Instant")));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let (toks, _) = lex(r###"let s = r#"quote " inside"#;"###).unwrap();
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
    }

    #[test]
    fn comments_are_captured_separately() {
        let (toks, comments) = lex("x; // Instant::now()\n/* RandomState */ y;").unwrap();
        assert_eq!(comments.len(), 2);
        assert!(!toks.iter().any(|t| t.is_ident("Instant")));
        assert!(toks.iter().any(|t| t.is_ident("y")));
    }

    #[test]
    fn nested_block_comments() {
        let (toks, comments) = lex("/* outer /* inner */ still */ z").unwrap();
        assert_eq!(comments.len(), 1);
        assert!(toks[0].is_ident("z"));
    }

    #[test]
    fn lifetime_vs_char() {
        let (toks, _) = lex("&'a str; 'x'; '\\n'").unwrap();
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "a"));
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("1 0xff 1_000u64"), vec![TokKind::Int; 3]);
        assert_eq!(kinds("1.5 2e3 7f64"), vec![TokKind::Float; 3]);
        // Ranges do not produce floats.
        assert_eq!(
            kinds("0..n"),
            vec![TokKind::Int, TokKind::Punct, TokKind::Ident]
        );
    }

    #[test]
    fn spans_track_lines_and_cols() {
        let (toks, _) = lex("a\n  b").unwrap();
        assert_eq!((toks[0].span.line, toks[0].span.col), (1, 1));
        assert_eq!((toks[1].span.line, toks[1].span.col), (2, 3));
    }

    #[test]
    fn shifts_are_merged() {
        assert_eq!(texts("a << b >> c")[1], "<<");
        assert_eq!(texts("a << b >> c")[3], ">>");
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let (toks, _) = lex("r#type x").unwrap();
        assert_eq!(toks[0].kind, TokKind::Ident);
        assert_eq!(toks[0].text, "r#type");
    }
}
