//! Inline lint exceptions: `// itpx-allow: <rule> <reason>`.
//!
//! The old `allowlist.txt` matched findings by `rule|path-suffix|needle`
//! string triplets that lived far from the code they excused and silently
//! rotted when the code moved. Annotations live on the line they excuse:
//!
//! ```text
//! self.slots.push(Some(value)); // itpx-allow: hot-alloc grow-once pool, capacity fixed after warmup
//! ```
//!
//! Grammar: the comment must contain `itpx-allow:` followed by a rule name
//! and a free-text reason. The reason is mandatory — an excuse without a
//! justification is reported as `bad-allow`. Placement:
//!
//! * trailing on a code line → covers that line;
//! * on its own line (possibly stacked with other annotation lines) →
//!   covers the next code line;
//! * covering a line that starts a `fn` item → covers the whole function
//!   body for that rule (function-scope allow, for statistics helpers
//!   that are float-heavy by design).
//!
//! Every annotation must suppress at least one finding; unused ones are
//! reported as `stale-allow` and fail `cargo xtask analyze`, so excuses
//! cannot outlive the code they excused.

use crate::ast::FileAst;

/// The marker that introduces an annotation inside a comment.
pub const MARKER: &str = "itpx-allow:";

/// One parsed annotation.
#[derive(Debug, Clone)]
pub struct Annotation {
    /// Rule the annotation excuses (must name a real rule).
    pub rule: String,
    /// Free-text justification (non-empty).
    pub reason: String,
    /// Line the annotation itself sits on.
    pub own_line: u32,
    /// First code line the annotation covers.
    pub target_line: u32,
    /// Set when the target line starts a `fn`: the allow covers the whole
    /// function body.
    pub fn_scope: Option<(u32, u32)>,
}

/// A malformed annotation (missing rule, unknown rule, or empty reason).
#[derive(Debug, Clone)]
pub struct BadAnnotation {
    /// Line of the malformed comment.
    pub line: u32,
    /// What is wrong with it.
    pub why: String,
}

/// Extracts all annotations from a parsed file. `known_rules` guards
/// against typos: `// itpx-allow: hot-allok …` must fail loudly, not
/// silently suppress nothing.
pub fn collect(ast: &FileAst, known_rules: &[&str]) -> (Vec<Annotation>, Vec<BadAnnotation>) {
    let mut out = Vec::new();
    let mut bad = Vec::new();
    for c in &ast.comments {
        let Some(pos) = c.text.find(MARKER) else {
            continue;
        };
        let rest = c.text[pos + MARKER.len()..].trim();
        let mut words = rest.splitn(2, char::is_whitespace);
        let rule = words.next().unwrap_or("").trim();
        let reason = words.next().unwrap_or("").trim();
        if rule.is_empty() {
            bad.push(BadAnnotation {
                line: c.span.line,
                why: "missing rule name after `itpx-allow:`".to_string(),
            });
            continue;
        }
        if !known_rules.contains(&rule) {
            bad.push(BadAnnotation {
                line: c.span.line,
                why: format!("unknown rule `{rule}`"),
            });
            continue;
        }
        if reason.is_empty() {
            bad.push(BadAnnotation {
                line: c.span.line,
                why: format!("annotation for `{rule}` has no reason"),
            });
            continue;
        }
        let target_line = target_of(ast, c.span.line, c.end_line);
        let fn_scope = ast
            .fns
            .iter()
            .find(|f| f.span.line == target_line)
            .map(|f| (f.span.line, f.body_end_line));
        out.push(Annotation {
            rule: rule.to_string(),
            reason: reason.to_string(),
            own_line: c.span.line,
            target_line,
            fn_scope,
        });
    }
    (out, bad)
}

/// The first code line an annotation at `line` covers: the annotation's
/// own line when it trails code, else the first following line that is
/// neither blank nor comment-only.
fn target_of(ast: &FileAst, line: u32, end_line: u32) -> u32 {
    let own = ast
        .lines
        .get(line as usize - 1)
        .map(|l| l.trim_start())
        .unwrap_or("");
    if !own.is_empty() && !own.starts_with("//") && !own.starts_with("/*") {
        return line;
    }
    let mut l = end_line + 1;
    while let Some(text) = ast.lines.get(l as usize - 1) {
        let t = text.trim_start();
        if !t.is_empty() && !t.starts_with("//") && !t.starts_with("/*") && !t.starts_with('#') {
            return l;
        }
        l += 1;
    }
    l
}

/// Matches findings against annotations. Returns, per annotation index,
/// whether it suppressed anything; the caller filters the findings.
pub fn covers(ann: &Annotation, rule: &str, line: u32) -> bool {
    if ann.rule != rule {
        return false;
    }
    if let Some((lo, hi)) = ann.fn_scope {
        return line >= lo && line <= hi;
    }
    line == ann.target_line || line == ann.own_line
}
