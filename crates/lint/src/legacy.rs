//! The retired line-regex lint engine, kept verbatim (minus the
//! allowlist machinery) as a cross-check oracle.
//!
//! The AST engine in this crate replaced this scanner. The meta-test in
//! `tests/meta_agreement.rs` runs both over the current tree and asserts
//! they agree (both report zero findings); the fixture corpus documents
//! the cases where they *must* disagree — the regex engine's false
//! positives (patterns inside string literals) and false negatives
//! (multi-line types, spaced method calls, single-line `#[cfg(test)]`
//! modules). Once a release cycle passes with the AST engine gating CI,
//! this module can be deleted along with the meta-test.

/// One legacy lint hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier.
    pub rule: &'static str,
    /// Repo-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending line, trimmed.
    pub excerpt: String,
}

/// Path fragments the `dispatch` rule applies to.
const DISPATCH_RULE_CRATES: &[&str] = &["crates/mem/", "crates/vm/", "crates/cpu/"];

/// Lints one source file; pure so fixtures can be tested inline.
pub fn lint_source(path: &str, src: &str) -> Vec<Finding> {
    let lines: Vec<&str> = src.lines().collect();
    let in_test = test_module_mask(&lines);
    let tracked = tracked_hash_idents(&lines, &in_test);
    let mut out = Vec::new();
    for (i, &line) in lines.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        let trimmed = line.trim();
        if trimmed.starts_with("//") {
            continue;
        }
        let code = code_part(line);
        let has_comment = line.len() > code.len()
            || i.checked_sub(1)
                .map(|p| lines[p].trim().starts_with("//"))
                .unwrap_or(false);
        let mut push = |rule: &'static str| {
            out.push(Finding {
                rule,
                path: path.to_string(),
                line: i + 1,
                excerpt: trimmed.to_string(),
            });
        };
        if code.contains("std::time")
            || code.contains("Instant::now")
            || code.contains("SystemTime")
        {
            push("std-time");
        }
        if code.contains("thread_rng")
            || code.contains("RandomState")
            || code.contains("from_entropy")
            || code.contains("rand::")
        {
            push("entropy");
        }
        if iterates_tracked_map(code, &tracked) {
            push("map-iter");
        }
        if !has_comment && (code.contains(".unwrap()") || code.contains(".expect(")) {
            push("panicking-index");
        }
        if !has_comment && has_computed_index(code) {
            push("panicking-index");
        }
        if !path.contains("crates/mem/") && reaches_into_hierarchy(code) {
            push("layering");
        }
        if DISPATCH_RULE_CRATES.iter().any(|c| path.contains(c)) && code.contains("Box<dyn Policy")
        {
            push("dispatch");
        }
    }
    out
}

/// `true` if `code` accesses a shared cache level of a hierarchy config
/// as a *field* rather than through the depth-stable accessors.
fn reaches_into_hierarchy(code: &str) -> bool {
    for needle in ["hierarchy.l2", "hierarchy.llc"] {
        for (pos, _) in code.match_indices(needle) {
            let after = code[pos + needle.len()..].chars().next();
            let permitted = matches!(after, Some(c) if c.is_alphanumeric() || c == '_' || c == '(');
            if !permitted {
                return true;
            }
        }
    }
    false
}

/// The part of a line before a `//` comment (naive: ignores `//` inside
/// string literals — one of the false-positive classes that retired this
/// engine).
fn code_part(line: &str) -> &str {
    match line.find("//") {
        Some(pos) => &line[..pos],
        None => line,
    }
}

/// Marks lines belonging to `#[cfg(test)] mod ... { ... }` blocks. Only
/// recognizes the attribute on its own line — the formatting sensitivity
/// the AST engine removed.
fn test_module_mask(lines: &[&str]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if lines[i].trim() == "#[cfg(test)]" {
            let mut j = i + 1;
            while j < lines.len() && lines[j].trim().starts_with("#[") {
                j += 1;
            }
            if j < lines.len() && lines[j].trim_start().starts_with("mod ") {
                let mut depth = 0i64;
                let mut opened = false;
                for (k, l) in lines.iter().enumerate().take(lines.len()).skip(i) {
                    mask[k] = true;
                    for c in l.chars() {
                        match c {
                            '{' => {
                                depth += 1;
                                opened = true;
                            }
                            '}' => depth -= 1,
                            _ => {}
                        }
                    }
                    if opened && depth <= 0 {
                        i = k;
                        break;
                    }
                }
            }
        }
        i += 1;
    }
    mask
}

/// Identifiers bound to `HashMap`/`HashSet` values in non-test code.
fn tracked_hash_idents(lines: &[&str], in_test: &[bool]) -> Vec<String> {
    let mut idents = Vec::new();
    for (i, &line) in lines.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        let code = code_part(line);
        if !code.contains("HashMap") && !code.contains("HashSet") {
            continue;
        }
        for marker in [
            ": HashMap",
            ": HashSet",
            ": &HashMap",
            ": &HashSet",
            ": &mut HashMap",
            ": &mut HashSet",
        ] {
            let mut rest = code;
            while let Some(pos) = rest.find(marker) {
                if let Some(id) = ident_ending_at(&rest[..pos]) {
                    idents.push(id);
                }
                rest = &rest[pos + marker.len()..];
            }
        }
        if let Some(eq) = code.find('=') {
            let rhs = &code[eq..];
            if rhs.contains("HashMap::") || rhs.contains("HashSet::") {
                if let Some(id) = let_binding_name(&code[..eq]) {
                    idents.push(id);
                }
            }
        }
    }
    idents.sort();
    idents.dedup();
    idents
}

/// The identifier whose last character ends `prefix`.
fn ident_ending_at(prefix: &str) -> Option<String> {
    let id: String = prefix
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    if id.is_empty() || id.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        None
    } else {
        Some(id)
    }
}

/// Extracts `name` from `let [mut] name`.
fn let_binding_name(lhs: &str) -> Option<String> {
    let lhs = lhs.trim();
    let after_let = lhs.strip_prefix("let ")?.trim_start();
    let after_mut = after_let.strip_prefix("mut ").unwrap_or(after_let).trim();
    let name: String = after_mut
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// `true` if `code` iterates one of the tracked map/set identifiers.
fn iterates_tracked_map(code: &str, tracked: &[String]) -> bool {
    for id in tracked {
        for call in [
            ".iter()",
            ".iter_mut()",
            ".keys()",
            ".values()",
            ".values_mut()",
            ".into_iter()",
            ".drain(",
            ".retain(",
        ] {
            if code.contains(&format!("{id}{call}")) {
                return true;
            }
        }
        if code.contains("for ")
            && (code.contains(&format!("in &{id}"))
                || code.contains(&format!("in &mut {id}"))
                || code.contains(&format!("in {id} ")))
        {
            return true;
        }
    }
    false
}

/// `true` if `code` contains an index expression whose content involves
/// arithmetic or a call.
fn has_computed_index(code: &str) -> bool {
    let bytes = code.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'[' {
            let prev = code[..i].chars().next_back();
            let indexable =
                matches!(prev, Some(c) if c.is_alphanumeric() || c == '_' || c == ')' || c == ']');
            if indexable {
                let mut depth = 1;
                let mut j = i + 1;
                while j < bytes.len() && depth > 0 {
                    match bytes[j] {
                        b'[' => depth += 1,
                        b']' => depth -= 1,
                        _ => {}
                    }
                    j += 1;
                }
                let inner = &code[i + 1..j.saturating_sub(1).max(i + 1)];
                let computed = inner.contains('(')
                    || ["+", "-", "*", "/", "%"]
                        .iter()
                        .any(|op| contains_arith(inner, op));
                if computed && !inner.contains("..") {
                    return true;
                }
                i = j;
                continue;
            }
        }
        i += 1;
    }
    false
}

/// Arithmetic-operator check that ignores `->`, `=>`, unary minus, and
/// path separators.
fn contains_arith(inner: &str, op: &str) -> bool {
    let inner = inner.trim();
    for (pos, _) in inner.match_indices(op) {
        let before = inner[..pos].chars().next_back();
        let after = inner[pos + op.len()..].chars().next();
        if op == "-" && (pos == 0 || matches!(before, Some('=') | Some('<'))) {
            continue;
        }
        if op == "*" && pos == 0 {
            continue;
        }
        if matches!(after, Some('>') | Some('=')) {
            continue;
        }
        let _ = before;
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(src: &str) -> Vec<&'static str> {
        lint_source("fixture.rs", src)
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn legacy_semantics_are_preserved() {
        assert_eq!(rules("let t = Instant::now();\n"), ["std-time"]);
        assert_eq!(rules("let s = RandomState::new();\n"), ["entropy"]);
        assert_eq!(rules("let x = o.unwrap();\n"), ["panicking-index"]);
        assert!(rules("let x = o.unwrap(); // verified above\n").is_empty());
        assert_eq!(rules("let x = v[i + 1];\n"), ["panicking-index"]);
        assert!(rules("let x = v[i];\n").is_empty());
        assert_eq!(rules("config.hierarchy.l2.sets = 1024;\n"), ["layering"]);
        assert!(rules("config.hierarchy.l2c_mut().sets = 4;\n").is_empty());
    }

    #[test]
    fn legacy_false_positive_matches_inside_strings() {
        // Documented defect: substring match fires inside string literals.
        assert_eq!(
            rules("let m = \"uses Instant::now internally\";\n"),
            ["std-time"]
        );
    }

    #[test]
    fn legacy_false_negative_misses_multiline_types() {
        // Documented defect: the substring cannot span the line break.
        let src = "let p: Box<dyn\n    Policy<CacheMeta>> = mk();\n";
        assert!(lint_source("crates/mem/src/cache.rs", src).is_empty());
    }

    #[test]
    fn legacy_false_negative_misses_single_line_test_mod() {
        // Documented defect: the mask needs `#[cfg(test)]` on its own line,
        // so this *test* code is wrongly linted.
        let src = "#[cfg(test)] mod tests { fn t() { let x = Instant::now(); } }\n";
        assert_eq!(rules(src), ["std-time"]);
    }
}
