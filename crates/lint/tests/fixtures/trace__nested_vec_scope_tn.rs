//! TN: the nested-vec rule is scoped to the mem/vm/cpu/policy hot-path
//! crates; `itpx-trace` models the workload, not the machine, and may
//! keep nested recording structures.

pub struct Recording {
    per_phase: Vec<Vec<u64>>,
}
