//! TN: the same allocation in a function no per-access root reaches.

pub struct Log {
    events: Vec<u64>,
}

impl Log {
    pub fn note(&mut self, way: u64) {
        self.events.push(way);
    }
}
