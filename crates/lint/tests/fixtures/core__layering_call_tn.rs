//! TN: going through the hierarchy's method API is the sanctioned route.

pub fn drive(hierarchy: &mut itpx_mem::Hierarchy, now: u64) -> u64 {
    hierarchy.l2(now)
}
