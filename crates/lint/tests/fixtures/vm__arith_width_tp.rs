//! TP: truncating cast and variable-amount shift in hot code.

pub struct Pack;

impl Policy<CacheMeta> for Pack {
    fn on_hit(&mut self, set: usize, way: usize, meta: &CacheMeta) {
        let tag = meta.block as u16;
        let scaled = meta.block << way;
        let _ = (tag, scaled);
    }
}
