//! TP: computed index without a bounds justification.

pub fn pick(v: &[u64], i: usize) -> u64 {
    v[i + 1]
}
