//! TP: nested-Vec policy metadata in a hot-path crate — per-set rows
//! scatter across the heap; `itpx_types::SetGrid` is the flat layout.

pub struct Rrpv {
    rows: Vec<Vec<u8>>,
}
