//! TN: an annotation targeting the `fn` line covers the whole body —
//! both float sites below ride on the one justification.

pub struct Fuzzy {
    score: f64,
}

impl Policy<CacheMeta> for Fuzzy {
    // itpx-allow: hot-float fixture-wide justification for the whole body
    fn victim(&mut self, set: usize, incoming: &CacheMeta) -> usize {
        let bias = 0.125;
        if self.score > bias {
            0
        } else {
            1
        }
    }
}
