//! TN: test-gated code may build nested-Vec reference models; the rule
//! only scans non-test tokens.

pub struct Flat {
    rows: Vec<u8>,
}

#[cfg(test)]
mod tests {
    fn model(sets: usize, width: usize) -> Vec<Vec<u8>> {
        vec![vec![0; width]; sets]
    }
}
