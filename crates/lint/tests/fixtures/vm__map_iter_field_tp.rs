//! TP: iterating a `HashMap` field on a simulation path — order varies
//! per process.

use std::collections::HashMap;

pub struct Table {
    map: HashMap<u64, u64>,
}

impl Table {
    pub fn sum(&self) -> u64 {
        let mut acc = 0;
        for (_k, v) in self.map.iter() {
            acc += v;
        }
        acc
    }
}
