//! TN (historical regex FP): a single-line `#[cfg(test)]` module is still
//! test scope — the retired regex engine only recognized the multi-line
//! form and flagged this.

pub fn simulated() -> u64 {
    7
}

#[cfg(test)] mod tests { pub fn t() -> std::hash::RandomState { std::hash::RandomState::new() } }
