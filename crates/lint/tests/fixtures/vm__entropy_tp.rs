//! TP: ambient entropy (per-process hasher seeds) breaks replayability.

pub fn seed() -> u64 {
    let s = std::hash::RandomState::new();
    let _ = s;
    0
}
