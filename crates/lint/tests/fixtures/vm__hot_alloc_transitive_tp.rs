//! TP: allocation two calls deep from a per-access root — the call-graph
//! walk, not line-local matching, finds it.

pub struct Deep {
    scratch: Vec<u64>,
}

impl Deep {
    fn remember(&mut self, x: u64) {
        self.scratch.push(x);
    }

    fn relay(&mut self, x: u64) {
        self.remember(x);
    }
}

impl Policy<CacheMeta> for Deep {
    fn on_evict(&mut self, set: usize, way: usize) {
        self.relay(way as u64);
    }
}
