//! TP: boxed trait-object policy dispatch in a hot-path crate — the
//! static-dispatch engines exist precisely to avoid this.

pub struct Holder {
    policy: Box<dyn Policy<CacheMeta>>,
}
