//! TN: ordered maps iterate deterministically.

use std::collections::BTreeMap;

pub struct Table {
    map: BTreeMap<u64, u64>,
}

impl Table {
    pub fn sum(&self) -> u64 {
        self.map.values().copied().sum()
    }
}
