//! TP: typed per-access root — `Cache::probe` seeds the hot set directly,
//! without any `impl Policy` in sight.

pub struct Cache {
    log: Vec<u64>,
}

impl Cache {
    pub fn probe(&mut self, block: u64) -> bool {
        self.log.push(block);
        false
    }
}
