//! TN: the four sanctioned shapes — mask-then-cast, cast-then-mask,
//! constant shift amount, and a cast the type environment proves widening.

const TAG_MASK: u64 = 0xffff;
const BLOCK_SHIFT: u32 = 6;

pub struct Pack;

impl Policy<CacheMeta> for Pack {
    fn on_hit(&mut self, set: usize, way: usize, meta: &CacheMeta) {
        let a = (meta.block & TAG_MASK) as u16;
        let b = (meta.block as u16) & 0x3fff;
        let c = meta.block << BLOCK_SHIFT;
        let d = way as u64;
        let _ = (a, b, c, d);
    }
}
