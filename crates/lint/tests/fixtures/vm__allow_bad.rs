//! Malformed annotations: an unknown rule name and a missing reason are
//! both hard failures.

pub fn quiet() -> u64 {
    // itpx-allow: no-such-rule this rule does not exist
    // itpx-allow: hot-alloc
    7
}
