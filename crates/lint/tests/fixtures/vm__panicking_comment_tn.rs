//! TN: a justification comment next to the panic site is accepted.

pub fn head(v: &[u64]) -> u64 {
    // non-empty by construction at every call site
    *v.first().unwrap()
}
