//! TP: wall-clock time on a simulation path breaks determinism.

pub fn stamp() -> u64 {
    let t = std::time::Instant::now();
    let _ = t;
    0
}
