//! TP (historical regex FN): the iteration call split across lines still
//! fires — the retired regex engine matched line-by-line and missed it.

use std::collections::HashMap;

pub struct Table {
    map: HashMap<u64, u64>,
}

impl Table {
    pub fn keys_sum(&self) -> u64 {
        self.map
            .keys()
            .sum()
    }
}
