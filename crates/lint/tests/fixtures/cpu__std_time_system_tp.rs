//! TP: `SystemTime` is wall-clock too, in any simulated crate.

pub fn epoch() -> u64 {
    let t = std::time::SystemTime::now();
    let _ = t;
    0
}
