//! TN: an `itpx-allow` annotation is the escape hatch for a justified
//! nested-Vec (e.g. cold construction-time scaffolding).

pub struct Builder {
    // itpx-allow: nested-vec construction-time scratch, never touched per access
    staging: Vec<Vec<u8>>,
}
