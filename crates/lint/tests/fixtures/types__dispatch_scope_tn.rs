//! TN: the dispatch rule is scoped to the mem/vm/cpu hot-path crates;
//! `itpx-types` may hold boxed policies (e.g. registry builders).

pub struct Holder {
    policy: Box<dyn Policy<CacheMeta>>,
}
