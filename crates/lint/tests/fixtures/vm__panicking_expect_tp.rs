//! TP: `expect` without justification is still a panic site;
//! `unwrap_or` is not.

pub fn head(v: &[u64]) -> u64 {
    let fallback = v.iter().copied().next().unwrap_or(0);
    let _ = fallback;
    *v.first().expect("fixture")
}
