//! TP: float arithmetic in a policy decision — not bit-stable across
//! targets in general, and banned from the simulated machine.

pub struct Fuzzy {
    score: f64,
}

impl Policy<CacheMeta> for Fuzzy {
    fn victim(&mut self, set: usize, incoming: &CacheMeta) -> usize {
        if self.score > 0.5 {
            0
        } else {
            1
        }
    }
}
