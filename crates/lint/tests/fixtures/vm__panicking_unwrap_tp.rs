//! TP: unjustified unwrap on a simulation path.

pub fn head(v: &[u64]) -> u64 {
    *v.first().unwrap()
}
