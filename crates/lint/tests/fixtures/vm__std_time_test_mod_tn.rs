//! TN: test-only code may read the clock.

pub fn simulated() -> u64 {
    42
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing() {
        let t = std::time::Instant::now();
        let _ = t;
    }
}
