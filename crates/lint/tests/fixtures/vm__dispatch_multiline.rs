//! TP (historical regex FN): the boxed-dyn pattern split across lines
//! still fires — the retired regex engine matched line-by-line.

pub struct Holder {
    policy: Box<
        dyn Policy<CacheMeta>,
    >,
}
