//! TN (historical regex FP): the token scan must not fire on string
//! literal contents — the retired regex engine flagged this line.

pub fn describe() -> &'static str {
    "uses std::time::SystemTime for wall-clock stamps"
}
