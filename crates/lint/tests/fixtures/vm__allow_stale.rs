//! A stale annotation suppresses nothing and is itself a hard failure.

pub fn quiet() -> u64 {
    // itpx-allow: hot-alloc nothing here allocates
    7
}
