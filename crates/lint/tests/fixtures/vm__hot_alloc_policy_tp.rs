//! TP: allocation reachable from a per-access policy root.

pub struct Log {
    events: Vec<u64>,
}

impl Policy<CacheMeta> for Log {
    fn on_fill(&mut self, set: usize, way: usize, meta: &CacheMeta) {
        self.events.push(way as u64);
    }
}
