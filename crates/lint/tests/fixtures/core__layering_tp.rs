//! TP: reaching into the hierarchy's levels from outside `itpx-mem`.

pub fn peek(hierarchy: &itpx_mem::Hierarchy) -> u64 {
    hierarchy.l2.stats.demand_misses
}
