//! TN: an `itpx-allow` annotation suppresses its finding and, because it
//! is used, is not reported stale.

pub struct Log {
    events: Vec<u64>,
}

impl Policy<CacheMeta> for Log {
    fn on_fill(&mut self, set: usize, way: usize, meta: &CacheMeta) {
        // itpx-allow: hot-alloc bounded by construction in this fixture
        self.events.push(way as u64);
    }
}
