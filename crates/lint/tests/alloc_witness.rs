//! The dynamic half of the hot-path gate (see DESIGN.md, "Static
//! analysis"): every registered replacement policy, driven through the
//! enum engines inside the real `Cache`/`Tlb` structures, must make **zero
//! heap allocations** once warm. The static analyzer proves "no allocation
//! is *reachable* from the per-access roots" on the source tree; this test
//! proves it on the machine code that actually ran — macros, std
//! internals, and all. If either side regresses, the two reports disagree
//! and point at each other.
//!
//! Everything runs in one `#[test]` because the counting allocator is
//! process-global: a second test thread allocating concurrently would
//! charge its allocations to whichever policy happens to be mid-drive.

use itpx_core::registry::{cache_policies, tlb_policies, REGISTRY_SEED};
use itpx_cpu::HashedPerceptron;
use itpx_lint::alloc_witness::CountingAllocator;
use itpx_mem::{Cache, CacheConfig, Probe};
use itpx_types::{Asid, FillClass, PageSize, PhysAddr, Rng64, ThreadId, TranslationKind, VirtAddr};
use itpx_vm::{SplitPscs, Tlb, TlbConfig, TlbLookup};

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator::new();

/// Accesses driven after warmup, per policy.
const MEASURED: u64 = 100_000;
/// Accesses driven before the counters are snapshotted. Long enough for
/// every set to fill, every grow-once pool (MSHRs, FTQ-style rings) to
/// reach its high-water mark, and first-touch state to populate.
const WARMUP: u64 = 20_000;

/// Geometry used for every policy: power-of-two ways so tree-PLRU's
/// `pow2_ways_only` constraint is satisfied by the same drive.
const SETS: usize = 64;
const WAYS: usize = 8;
/// Working set in blocks/pages: ~4x the structure capacity, so the drive
/// mixes hits, misses, and evictions in steady state.
const FOOTPRINT: u64 = (SETS * WAYS * 4) as u64;

fn fill_class(r: &mut Rng64) -> FillClass {
    match r.below(4) {
        0 => FillClass::InstrPayload,
        1 => FillClass::DataPayload,
        2 => FillClass::InstrPte,
        _ => FillClass::DataPte,
    }
}

/// One deterministic cache access: probe, and on a miss fill after a fixed
/// 20-cycle miss path. Returns the advanced clock.
fn cache_access(cache: &mut Cache, r: &mut Rng64, now: u64) -> u64 {
    let mut meta = itpx_policy::CacheMeta::demand(r.below(FOOTPRINT), fill_class(r));
    meta.pc = r.below(1 << 20) << 2;
    meta.stlb_miss = r.chance(0.1);
    meta.thread = ThreadId((now & 1) as u8);
    if let Probe::Miss(start) = cache.probe(&meta, now, true) {
        cache.fill(&meta, start, start + 20, true);
    }
    now + 1
}

/// One deterministic TLB access: lookup, and on a miss install the page's
/// identity translation after a fixed 30-cycle walk.
fn tlb_access(tlb: &mut Tlb, r: &mut Rng64, now: u64) -> u64 {
    let page = r.below(FOOTPRINT);
    let va = VirtAddr(page << 12 | r.below(4096));
    let kind = if r.chance(0.4) {
        TranslationKind::Instruction
    } else {
        TranslationKind::Data
    };
    let pc = r.below(1 << 20) << 2;
    let thread = ThreadId((now & 1) as u8);
    if let TlbLookup::Miss = tlb.lookup(va, kind, pc, thread, now) {
        let done = tlb.mshr_alloc(va, kind, now) + 30;
        tlb.fill(
            page,
            PageSize::Base4K,
            PhysAddr::new(page << 12),
            kind,
            Asid::GLOBAL,
            pc,
            thread,
            done - now,
            done,
        );
        tlb.mshr_complete(va, done);
    }
    now + 1
}

#[test]
fn zero_steady_state_allocations_for_every_registered_policy() {
    let mut failures = Vec::new();

    for entry in cache_policies() {
        let cfg = CacheConfig {
            sets: SETS,
            ways: WAYS,
            latency: 1,
            mshr_entries: 8,
        };
        let mut cache = Cache::new(cfg, (entry.build_engine)(SETS, WAYS));
        let mut r = Rng64::new(REGISTRY_SEED ^ 0xcac4e);
        let mut now = 0;
        for _ in 0..WARMUP {
            now = cache_access(&mut cache, &mut r, now);
        }
        let warm = ALLOCATOR.snapshot();
        for _ in 0..MEASURED {
            now = cache_access(&mut cache, &mut r, now);
        }
        let events = warm.events_until(ALLOCATOR.snapshot());
        if events != 0 {
            failures.push(format!(
                "cache policy `{}`: {events} allocation event(s) across {MEASURED} warm accesses",
                entry.name
            ));
        }
    }

    for entry in tlb_policies() {
        let cfg = TlbConfig {
            sets: SETS,
            ways: WAYS,
            latency: 1,
            mshr_entries: 8,
        };
        let mut tlb = Tlb::new(cfg, (entry.build_engine)(SETS, WAYS));
        let mut r = Rng64::new(REGISTRY_SEED ^ 0x71b);
        let mut now = 0;
        for _ in 0..WARMUP {
            now = tlb_access(&mut tlb, &mut r, now);
        }
        let warm = ALLOCATOR.snapshot();
        for _ in 0..MEASURED {
            now = tlb_access(&mut tlb, &mut r, now);
        }
        let events = warm.events_until(ALLOCATOR.snapshot());
        if events != 0 {
            failures.push(format!(
                "TLB policy `{}`: {events} allocation event(s) across {MEASURED} warm accesses",
                entry.name
            ));
        }
    }

    // The flat-grid structures outside the policy engines: the split PSC
    // hierarchy (SetGrid tag arrays + LRU) and the hashed-perceptron
    // branch predictor (one SetGrid of weights). Both sit on the
    // per-access path and must be allocation-free after construction.
    {
        let mut pscs = SplitPscs::asplos25();
        let mut r = Rng64::new(REGISTRY_SEED ^ 0x95c);
        let drive = |pscs: &mut SplitPscs, r: &mut Rng64| {
            let vpn4k = r.below(FOOTPRINT << 9);
            let start = pscs.start_level(vpn4k);
            if start == 5 {
                pscs.fill(vpn4k, 1);
            }
        };
        for _ in 0..WARMUP {
            drive(&mut pscs, &mut r);
        }
        let warm = ALLOCATOR.snapshot();
        for _ in 0..MEASURED {
            drive(&mut pscs, &mut r);
        }
        let events = warm.events_until(ALLOCATOR.snapshot());
        if events != 0 {
            failures.push(format!(
                "split PSCs: {events} allocation event(s) across {MEASURED} warm walks"
            ));
        }
    }

    {
        let mut bp = HashedPerceptron::new();
        let mut r = Rng64::new(REGISTRY_SEED ^ 0xb9a);
        let drive = |bp: &mut HashedPerceptron, r: &mut Rng64| {
            let pc = r.below(1 << 16) << 2;
            let taken = r.chance(0.6);
            let _ = bp.predict(pc);
            bp.update(pc, taken);
        };
        for _ in 0..WARMUP {
            drive(&mut bp, &mut r);
        }
        let warm = ALLOCATOR.snapshot();
        for _ in 0..MEASURED {
            drive(&mut bp, &mut r);
        }
        let events = warm.events_until(ALLOCATOR.snapshot());
        if events != 0 {
            failures.push(format!(
                "hashed perceptron: {events} allocation event(s) across {MEASURED} warm predictions"
            ));
        }
    }

    assert!(
        failures.is_empty(),
        "steady-state allocations detected:\n  {}",
        failures.join("\n  ")
    );
}
