//! Fixture corpus for the AST engine.
//!
//! Each `tests/fixtures/<crate>__<case>.rs` is analyzed as if it lived at
//! `crates/<crate>/src/<case>.rs` (the crate prefix drives rule scoping:
//! `types__*` skips the dispatch rule, non-`mem` files get layering, and
//! so on), and its findings are compared line-for-line against the paired
//! `<crate>__<case>.expected` file.
//!
//! Expected-file format: one `<line>:<col> <rule>` per finding, in report
//! order (rule findings first, then `stale-allow`/`bad-allow` annotation
//! errors). Blank lines and lines starting with `#` are comments. An empty
//! (comment-only) file asserts the fixture is clean.
//!
//! To regenerate after an intentional engine change:
//! `ITPX_BLESS=1 cargo test -p itpx-lint --test fixtures` — then diff the
//! rewritten `.expected` files and review every change like source.

use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// `line:col rule` lines for one fixture, in report order.
fn actual_lines(report: &itpx_lint::Report) -> Vec<String> {
    report
        .findings
        .iter()
        .chain(&report.annotation_errors)
        .map(|f| format!("{}:{} {}", f.line, f.col, f.rule))
        .collect()
}

fn expected_lines(raw: &str) -> Vec<String> {
    raw.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(String::from)
        .collect()
}

#[test]
fn fixtures_match_expected_findings() {
    let dir = fixture_dir();
    let bless = std::env::var_os("ITPX_BLESS").is_some();
    let mut names: Vec<String> = fs::read_dir(&dir)
        .expect("tests/fixtures exists")
        .filter_map(|e| {
            let path = e.expect("fixture dir entry").path();
            (path.extension()? == "rs")
                .then(|| path.file_stem().unwrap().to_string_lossy().into_owned())
        })
        .collect();
    names.sort();
    assert!(
        names.len() >= 20,
        "fixture corpus shrank to {}",
        names.len()
    );

    let mut failures = Vec::new();
    let mut rules_seen = BTreeSet::new();
    for name in &names {
        let src = fs::read_to_string(dir.join(format!("{name}.rs"))).expect("fixture reads");
        let (krate, case) = name
            .split_once("__")
            .unwrap_or_else(|| panic!("fixture `{name}` is not named <crate>__<case>"));
        let synthetic = format!("crates/{krate}/src/{case}.rs");
        let report = itpx_lint::analyze_sources(&[(synthetic, src)])
            .unwrap_or_else(|e| panic!("fixture `{name}` failed to parse: {e}"));
        let actual = actual_lines(&report);
        for f in report.findings.iter().chain(&report.annotation_errors) {
            rules_seen.insert(f.rule.clone());
        }

        let expected_path = dir.join(format!("{name}.expected"));
        if bless {
            let mut out = String::new();
            for line in &actual {
                out.push_str(line);
                out.push('\n');
            }
            fs::write(&expected_path, out).expect("expected file writes");
            continue;
        }
        let expected_raw = fs::read_to_string(&expected_path)
            .unwrap_or_else(|_| panic!("fixture `{name}` has no .expected file"));
        let expected = expected_lines(&expected_raw);
        if actual != expected {
            failures.push(format!(
                "{name}:\n    expected: {expected:?}\n    actual:   {actual:?}"
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "fixtures disagree with their .expected files:\n  {}",
        failures.join("\n  ")
    );

    if !bless {
        // Every rule the engine knows must have at least one true-positive
        // fixture, and both annotation failure modes must be exercised.
        for rule in itpx_lint::ALL_RULES {
            assert!(rules_seen.contains(*rule), "no fixture exercises `{rule}`");
        }
        for rule in ["stale-allow", "bad-allow"] {
            assert!(rules_seen.contains(rule), "no fixture exercises `{rule}`");
        }
    }
}
