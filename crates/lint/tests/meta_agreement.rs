//! Cross-checks between the AST engine, the retired regex engine, and the
//! tree as committed.
//!
//! The port's contract is "same rules, fewer lies": on a tree that is
//! clean under the AST engine (after `itpx-allow` filtering), the legacy
//! regex scanner must agree for the six rules it implemented — any
//! disagreement is either a regex false positive the port fixed (belongs
//! in `tests/fixtures/`, not here) or an AST-engine regression.

use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    // crates/lint/ -> crates/ -> repo root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("lint crate sits two levels under the repo root")
        .to_path_buf()
}

#[test]
fn ast_engine_reports_a_clean_tree() {
    let report = itpx_lint::run(&repo_root()).expect("analysis runs");
    assert!(
        report.is_clean(),
        "the committed tree must analyze clean:\n{}",
        report
            .findings
            .iter()
            .chain(&report.annotation_errors)
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    // A scoping bug that silently dropped files or roots would also
    // "pass"; pin the breadth of the run.
    assert!(report.files_scanned >= 90, "file set collapsed");
    assert!(report.hot_fns >= 150, "hot-path call graph collapsed");
}

#[test]
fn legacy_regex_engine_agrees_on_the_current_tree() {
    let root = repo_root();
    let mut checked = 0usize;
    let mut disagreements = Vec::new();
    for krate in itpx_lint::LINTED_CRATES {
        let src = root.join("crates").join(krate).join("src");
        let mut files = Vec::new();
        collect_rs(&src, &mut files);
        for file in files {
            let text = std::fs::read_to_string(&file).expect("source reads");
            let rel = file
                .strip_prefix(&root)
                .expect("under root")
                .to_string_lossy()
                .replace('\\', "/");
            for f in itpx_lint::legacy::lint_source(&rel, &text) {
                disagreements.push(format!("  {rel}:{}: [{}] {}", f.line, f.rule, f.excerpt));
            }
            checked += 1;
        }
    }
    assert!(checked >= 60, "file set collapsed");
    assert!(
        disagreements.is_empty(),
        "legacy regex engine disagrees with the clean AST verdict:\n{}",
        disagreements.join("\n")
    );
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}
