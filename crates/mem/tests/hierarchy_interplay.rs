//! Integration-grade tests of hierarchy interplay: PTE traffic vs payload
//! churn, prefetcher interactions, and writeback propagation.

use itpx_mem::{Cache, CacheConfig, Hierarchy, HierarchyConfig, HierarchyPolicies, Probe};
use itpx_policy::{CacheMeta, Lru};
use itpx_types::{FillClass, LevelId, PhysAddr, ThreadId, TranslationKind};

fn small_hierarchy() -> Hierarchy {
    let mut cfg = HierarchyConfig::asplos25();
    cfg.l1i.sets = 8;
    cfg.l1d.sets = 8;
    cfg.l2c_mut().sets = 64;
    cfg.llc_mut().expect("asplos25 has an LLC").sets = 128;
    Hierarchy::new(
        &cfg,
        HierarchyPolicies {
            l1i: Lru::new(8, cfg.l1i.ways).into(),
            l1d: Lru::new(8, cfg.l1d.ways).into(),
            l2: Lru::new(64, cfg.l2c().ways).into(),
            llc: Lru::new(128, cfg.last_level().ways).into(),
        },
    )
}

fn l2c(h: &Hierarchy) -> &Cache {
    h.cache(LevelId::L2C).expect("chain has an L2C")
}

#[test]
fn pte_blocks_warm_the_l2_for_subsequent_walks() {
    let mut h = small_hierarchy();
    let pte = PhysAddr::new(0x40_0000);
    let t1 = h.pte_access(pte, TranslationKind::Data, ThreadId(0), 0);
    let t2 = h.pte_access(pte, TranslationKind::Data, ThreadId(0), t1 + 100);
    assert!(t2 - (t1 + 100) < t1, "second walk ref must be an L2 hit");
    // Adjacent PTEs in the same block also hit.
    let t3 = h.pte_access(pte.offset(8), TranslationKind::Data, ThreadId(0), t1 + 300);
    assert_eq!(t3 - (t1 + 300), 5, "same-block PTE is an L2 hit");
}

#[test]
fn payload_churn_evicts_pte_blocks_under_lru() {
    let mut h = small_hierarchy();
    let pte = PhysAddr::new(0x40_0000);
    h.pte_access(pte, TranslationKind::Data, ThreadId(0), 0);
    assert!(l2c(&h).contains(PhysAddr::new(0x40_0000).block().index()));
    // Fill the whole (small) L2 with payload via the data path.
    let mut t = 1_000;
    for i in 0..64 * 8 * 2 {
        h.data_access(
            PhysAddr::new(0x100_0000 + i * 64),
            0x1,
            ThreadId(0),
            false,
            false,
            t,
        );
        t += 200;
    }
    assert!(
        !l2c(&h).contains(PhysAddr::new(0x40_0000).block().index()),
        "LRU L2 must eventually evict the PTE block under churn"
    );
}

#[test]
fn stride_prefetcher_hides_regular_misses() {
    let mut h = small_hierarchy();
    // A regular stride from one PC: after training, later accesses should
    // hit prefetched L2 blocks.
    let pc = 0x4444;
    let stride = 4096u64; // one page: distinct L1D/L2 blocks
    let mut t = 0;
    for i in 0..32u64 {
        h.data_access(
            PhysAddr::new(0x200_0000 + i * stride),
            pc,
            ThreadId(0),
            false,
            false,
            t,
        );
        t += 500;
    }
    assert!(
        l2c(&h).prefetches_issued() > 0,
        "stride prefetcher should have fired"
    );
    assert!(
        l2c(&h).prefetches_useful() > 0,
        "and its blocks should be used"
    );
}

#[test]
fn writeback_dirty_chain_reaches_dram() {
    let cfg = CacheConfig {
        sets: 1,
        ways: 2,
        latency: 1,
        mshr_entries: 4,
    };
    let mut c = Cache::new(cfg, Lru::new(1, 2));
    let m = |b: u64| CacheMeta::demand(b, FillClass::DataPayload);
    // Fill two blocks, dirty both, displace both.
    for b in 0..2 {
        if let Probe::Miss(s) = c.probe(&m(b), b * 10, true) {
            c.fill(&m(b), s, s + 5, true);
        }
        c.mark_dirty(b);
    }
    let mut wbs = 0;
    for b in 2..4 {
        if let Probe::Miss(s) = c.probe(&m(b), 100 + b, true) {
            wbs += c.fill(&m(b), s, s + 5, true).is_some() as u32;
        }
    }
    assert_eq!(wbs, 2, "both dirty blocks must be written back");
}

#[test]
fn instruction_and_pte_classes_never_mix_in_stats() {
    let mut h = small_hierarchy();
    h.instr_fetch(PhysAddr::new(0x10_0000), 0x10_0000, ThreadId(0), 0);
    h.pte_access(
        PhysAddr::new(0x50_0000),
        TranslationKind::Instruction,
        ThreadId(0),
        0,
    );
    let b = l2c(&h).stats().mpki_breakdown(1_000);
    assert!(b.instr > 0.0, "demand instruction miss recorded");
    assert!(b.instr_pte > 0.0, "instruction-PTE miss recorded");
    assert_eq!(b.data, 0.0);
    assert_eq!(b.data_pte, 0.0);
}
