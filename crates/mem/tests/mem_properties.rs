//! Property tests for the cache and DRAM models.

use itpx_mem::cache::{Cache, CacheConfig, Probe};
use itpx_mem::dram::{Dram, DramConfig};
use itpx_policy::{CacheMeta, Lru};
use itpx_types::FillClass;
use proptest::prelude::*;

fn cache(sets: usize, ways: usize) -> Cache {
    Cache::new(
        CacheConfig {
            sets,
            ways,
            latency: 4,
            mshr_entries: 8,
        },
        Lru::new(sets, ways),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn filled_blocks_are_resident_until_evicted(
        blocks in prop::collection::vec(0u64..64, 1..100)
    ) {
        let mut c = cache(4, 4);
        for (i, &b) in blocks.iter().enumerate() {
            let m = CacheMeta::demand(b, FillClass::DataPayload);
            if let Probe::Miss(start) = c.probe(&m, i as u64 * 10, true) {
                c.fill(&m, start, start + 50, true);
            }
            prop_assert!(c.contains(b), "block {b} lost right after fill");
        }
    }

    #[test]
    fn hits_never_complete_before_fill_ready(
        delay in 0u64..200, ready in 1u64..500
    ) {
        let mut c = cache(2, 2);
        let m = CacheMeta::demand(7, FillClass::DataPayload);
        prop_assert!(matches!(c.probe(&m, 0, true), Probe::Miss(_)));
        c.fill(&m, 0, ready, true);
        match c.probe(&m, delay, true) {
            Probe::Hit(t) => prop_assert!(t >= ready.min(delay + 4)),
            Probe::Miss(_) => prop_assert!(false, "must hit after fill"),
        }
    }

    #[test]
    fn dram_reads_are_monotonic_in_queue_order(gaps in prop::collection::vec(0u64..100, 2..40)) {
        let mut d = Dram::new(DramConfig::default());
        let mut now = 0;
        let mut last_done = 0;
        for &g in &gaps {
            now += g;
            let done = d.read(now);
            prop_assert!(done >= last_done, "DRAM completion went backwards");
            prop_assert!(done >= now + 90, "cannot beat the array latency");
            last_done = done;
        }
    }

    #[test]
    fn cache_export_import_roundtrip_preserves_dirty_and_class_bits(
        ops in prop::collection::vec((0u64..512, any::<bool>(), 0usize..4), 1..150),
        junk in prop::collection::vec(10_000u64..20_000, 0..30),
    ) {
        const CLASSES: [FillClass; 4] = [
            FillClass::InstrPayload,
            FillClass::DataPayload,
            FillClass::InstrPte,
            FillClass::DataPte,
        ];
        let mut src = cache(8, 4);
        for (i, &(block, store, class)) in ops.iter().enumerate() {
            let m = CacheMeta::demand(block, CLASSES[class]);
            let now = i as u64 * 10;
            if let Probe::Miss(start) = src.probe(&m, now, true) {
                src.fill(&m, start, start + 20, true);
            }
            if store {
                src.mark_dirty(block);
            }
        }
        let snapshot = src.export_lines();
        prop_assert_eq!(snapshot.len(), src.resident_count());

        // Import into a polluted cache: import must drop the junk
        // residents (including their dirty bits — no spurious writebacks
        // can surface later from lines the snapshot never held).
        let mut dst = cache(8, 4);
        for &b in &junk {
            let m = CacheMeta::demand(b, FillClass::DataPayload);
            if let Probe::Miss(start) = dst.probe(&m, 0, true) {
                dst.fill(&m, start, start + 20, true);
            }
            dst.mark_dirty(b);
        }
        dst.import_lines(snapshot.clone());

        // Multiset equality on the FULL (block, dirty, fill-class)
        // tuple: the dirty bit and the fill class survive the roundtrip,
        // not just block membership.
        let key = |l: &(u64, bool, FillClass)| (l.0, l.1, l.2 as u8);
        let mut before = snapshot.clone();
        let mut after = dst.export_lines();
        before.sort_by_key(key);
        after.sort_by_key(key);
        prop_assert_eq!(before, after, "roundtrip must preserve lines bit-for-bit");

        for &(block, _, _) in &snapshot {
            prop_assert!(dst.contains(block));
        }
        for &b in &junk {
            prop_assert!(!dst.contains(b), "import must evict pre-existing residents");
        }
    }

    #[test]
    fn writebacks_only_from_dirty_blocks(ops in prop::collection::vec((0u64..16, any::<bool>()), 1..120)) {
        let mut c = cache(2, 2);
        let mut dirtied = std::collections::HashSet::new();
        let mut t = 0u64;
        for &(b, store) in &ops {
            t += 10;
            let m = CacheMeta::demand(b, FillClass::DataPayload);
            if let Probe::Miss(start) = c.probe(&m, t, true) {
                if let Some(wb) = c.fill(&m, start, start + 20, true) {
                    prop_assert!(dirtied.remove(&wb.block), "clean block written back");
                }
            }
            if store {
                c.mark_dirty(b);
                if c.contains(b) {
                    dirtied.insert(b);
                }
            }
        }
    }
}
