//! Property tests for the level chain: dirty blocks are never silently
//! dropped, at any chain depth.
//!
//! Every writeback a level emits must be accounted for: either a lower
//! level absorbed it (as a dirty mark, counted by
//! `Hierarchy::writebacks_absorbed`) or it reached DRAM as a write.
//! The conservation law
//!
//! ```text
//! sum(level.writebacks()) == writebacks_absorbed() + dram.writes()
//! ```
//!
//! holds after *any* interleaving of fetches, loads, stores, and PTE
//! accesses, on 2-, 3-, and 4-level chains alike. A violation means a
//! dirty block fell out of the chain without its data going anywhere.

use itpx_mem::cache::CacheConfig;
use itpx_mem::dram::DramConfig;
use itpx_mem::{Hierarchy, HierarchyConfig, HierarchyPolicies};
use itpx_policy::Lru;
use itpx_types::{PhysAddr, ThreadId, TranslationKind};
use proptest::prelude::*;

/// Small caches with power-of-two sets so random traffic causes plenty
/// of evictions at every level.
fn config(shared_depth: usize) -> HierarchyConfig {
    let l1 = CacheConfig {
        sets: 4,
        ways: 2,
        latency: 4,
        mshr_entries: 8,
    };
    let l2c = CacheConfig {
        sets: 8,
        ways: 2,
        latency: 5,
        mshr_entries: 16,
    };
    let l3 = CacheConfig {
        sets: 16,
        ways: 2,
        latency: 8,
        mshr_entries: 16,
    };
    let llc = CacheConfig {
        sets: 16,
        ways: 4,
        latency: 10,
        mshr_entries: 32,
    };
    let shared: &[CacheConfig] = match shared_depth {
        1 => &[l2c],
        2 => &[l2c, llc],
        _ => &[l2c, l3, llc],
    };
    HierarchyConfig::new(l1, l1, shared, DramConfig::default())
}

fn hierarchy(cfg: &HierarchyConfig) -> Hierarchy {
    Hierarchy::new(
        cfg,
        HierarchyPolicies {
            l1i: Lru::new(cfg.l1i.sets, cfg.l1i.ways).into(),
            l1d: Lru::new(cfg.l1d.sets, cfg.l1d.ways).into(),
            l2: Lru::new(cfg.l2c().sets, cfg.l2c().ways).into(),
            llc: Lru::new(cfg.last_level().sets, cfg.last_level().ways).into(),
        },
    )
}

/// One randomized access: which entry point, which block, store or not.
#[derive(Debug, Clone, Copy)]
enum Op {
    Fetch(u64),
    Load(u64),
    Store(u64),
    Pte(u64, bool),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // A small block universe keeps sets contended so evictions (and
    // therefore writebacks) actually happen.
    let block = 0u64..192;
    prop_oneof![
        block.clone().prop_map(Op::Fetch),
        block.clone().prop_map(Op::Load),
        block.clone().prop_map(Op::Store),
        (block, any::<bool>()).prop_map(|(b, i)| Op::Pte(b, i)),
    ]
}

fn run(h: &mut Hierarchy, ops: &[Op]) {
    let mut now = 0u64;
    for (i, op) in ops.iter().enumerate() {
        now += 20;
        let thread = ThreadId((i % 2) as u8);
        match *op {
            Op::Fetch(b) => {
                h.instr_fetch(PhysAddr::new(b * 64), 0x40 + b, thread, now);
            }
            Op::Load(b) => {
                h.data_access(PhysAddr::new(b * 64), 0x8000 + b, thread, false, false, now);
            }
            Op::Store(b) => {
                h.data_access(PhysAddr::new(b * 64), 0x9000 + b, thread, true, false, now);
            }
            Op::Pte(b, instr) => {
                let kind = if instr {
                    TranslationKind::Instruction
                } else {
                    TranslationKind::Data
                };
                h.pte_access(PhysAddr::new(b * 64), kind, thread, now);
            }
        }
    }
}

fn assert_conservation(h: &Hierarchy) {
    let emitted: u64 = h.levels().map(|(_, c)| c.writebacks()).sum();
    let absorbed = h.writebacks_absorbed();
    let to_dram = h.dram().writes();
    assert_eq!(
        emitted,
        absorbed + to_dram,
        "writeback leak: {emitted} emitted, {absorbed} absorbed, {to_dram} reached DRAM"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn two_level_chain_conserves_writebacks(
        ops in prop::collection::vec(op_strategy(), 1..250)
    ) {
        let mut h = hierarchy(&config(1));
        run(&mut h, &ops);
        assert_conservation(&h);
    }

    #[test]
    fn three_level_chain_conserves_writebacks(
        ops in prop::collection::vec(op_strategy(), 1..250)
    ) {
        let mut h = hierarchy(&config(2));
        run(&mut h, &ops);
        assert_conservation(&h);
    }

    #[test]
    fn four_level_chain_conserves_writebacks(
        ops in prop::collection::vec(op_strategy(), 1..250)
    ) {
        let mut h = hierarchy(&config(3));
        run(&mut h, &ops);
        assert_conservation(&h);
    }

    #[test]
    fn reset_preserves_conservation_going_forward(
        warm in prop::collection::vec(op_strategy(), 1..120),
        measured in prop::collection::vec(op_strategy(), 1..120),
    ) {
        // The warmup/measurement boundary zeroes every counter in the
        // law at once, so it keeps holding over the measured window.
        let mut h = hierarchy(&config(2));
        run(&mut h, &warm);
        h.reset_stats();
        let emitted: u64 = h.levels().map(|(_, c)| c.writebacks()).sum();
        prop_assert_eq!(emitted, 0);
        prop_assert_eq!(h.writebacks_absorbed(), 0);
        prop_assert_eq!(h.dram().writes(), 0);
        run(&mut h, &measured);
        assert_conservation(&h);
    }
}

/// Pins the refactored 3-level chain's timing bit-for-bit: a fixed
/// access sequence must keep producing these exact completion cycles
/// and counter values. (The full-system equivalent lives in
/// `itpx-cpu/tests/golden_stats.rs`.)
#[test]
fn three_level_chain_timing_is_pinned() {
    let cfg = config(2);
    let mut h = hierarchy(&cfg);
    let t0 = h.instr_fetch(PhysAddr::new(0x4000), 0x400, ThreadId(0), 0);
    assert_eq!(t0, 4 + 5 + 10 + 90, "cold fetch walks the whole chain");
    let t1 = h.data_access(PhysAddr::new(0x4000), 0x99, ThreadId(0), false, false, 200);
    assert_eq!(t1, 200 + 4 + 5, "data access hits the shared L2C copy");
    let t2 = h.pte_access(
        PhysAddr::new(0x4000),
        TranslationKind::Data,
        ThreadId(0),
        400,
    );
    assert_eq!(t2, 400 + 5, "PTE access enters at the (warm) L2C");
    let t3 = h.instr_fetch(PhysAddr::new(0x4000), 0x400, ThreadId(0), 600);
    assert_eq!(t3, 604, "warm fetch is an L1I hit");
    assert_eq!(
        h.dram().reads(),
        2,
        "cold fetch plus its next-line prefetch"
    );
    assert_eq!(h.dram().writes(), 0);
}
