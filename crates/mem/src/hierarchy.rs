//! The composable level-chain cache hierarchy of Table 1, with
//! prefetchers and DRAM.
//!
//! The hierarchy is an ordered chain of [`Cache`] levels over DRAM:
//! `L1I, L1D, L2C, [L3,] [LLC]`. Both L1s front the first shared level,
//! and the shared tail is depth-configurable — the paper's Table 1
//! machine is the 3-level `L1 → L2C → LLC` preset, but 2-level (no LLC)
//! and 4-level (extra L3) chains build from the same code. Three access
//! paths exist, matching the paper's system diagram (Figure 7); each is
//! a declarative *entry point* into the chain:
//!
//! * [`Hierarchy::instr_fetch`] — front-end fetches enter at the L1I,
//! * [`Hierarchy::data_access`] — loads/stores enter at the L1D,
//! * [`Hierarchy::pte_access`] — page-walk references enter **at the
//!   L2C** carrying their translation kind as a [`FillClass`]; this is
//!   where xPTP's `Type` bit is produced and consumed.
//!
//! From its entry level an access descends through one generic
//! recursion ([`access_chain`](Hierarchy)) — probe, recurse below on a
//! miss, fill — and every displaced dirty block rides one
//! `route_writeback` walk of the strictly-lower levels: the first lower
//! level holding the block absorbs it as a dirty mark, otherwise it is
//! a DRAM write. Prefetchers are not baked into the chain; they attach
//! to individual levels via [`LevelHooks`] and are run for demand
//! traffic at their level.

use crate::cache::{Cache, CacheConfig, Probe, Writeback};
use crate::dram::{Dram, DramConfig};
use crate::prefetch::{NextLinePrefetcher, StridePrefetcher};
use itpx_policy::{CacheMeta, CachePolicyEngine, Lru};
use itpx_types::fingerprint::{Fingerprint, Fnv1a};
use itpx_types::{
    Cycle, FillClass, LevelId, PhysAddr, ResetBoundary, StructStats, ThreadId, TranslationKind,
};

/// Maximum number of shared levels (L2C and below) a chain can have.
pub const MAX_SHARED_LEVELS: usize = 3;

/// One shared level of the chain: its identity plus its geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLevelConfig {
    /// Which level this is ([`LevelId::L2C`], [`LevelId::L3`], or
    /// [`LevelId::Llc`]).
    pub id: LevelId,
    /// Geometry and timing of the level.
    pub cache: CacheConfig,
}

/// Placeholder for unused shared-level slots. Only constructors write
/// slots at or beyond `depth`, so equal-depth configs always carry
/// identical padding and derived `PartialEq` stays meaningful.
const UNUSED_SLOT: CacheLevelConfig = CacheLevelConfig {
    id: LevelId::Llc,
    cache: CacheConfig {
        sets: 0,
        ways: 0,
        latency: 0,
        mshr_entries: 0,
    },
};

/// Geometry of every level plus DRAM timing.
///
/// The shared tail (L2C and below) is depth-configurable: one to
/// [`MAX_SHARED_LEVELS`] levels. Shared-level storage is a fixed-size
/// array so the config stays `Copy` (the campaign engine embeds it in
/// by-value simulation requests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Shared levels, outermost first; only `..depth` are active.
    shared: [CacheLevelConfig; MAX_SHARED_LEVELS],
    /// Number of active shared levels.
    depth: usize,
    /// DRAM timing.
    pub dram: DramConfig,
}

impl HierarchyConfig {
    /// Builds a chain with the given L1s and one to
    /// [`MAX_SHARED_LEVELS`] shared levels, outermost (L2C) first.
    ///
    /// Level identities are assigned by depth: 1 → `[L2C]`,
    /// 2 → `[L2C, LLC]`, 3 → `[L2C, L3, LLC]`.
    ///
    /// # Panics
    ///
    /// Panics if `shared` is empty or longer than [`MAX_SHARED_LEVELS`],
    /// or if any level fails [`CacheConfig::validate`].
    pub fn new(
        l1i: CacheConfig,
        l1d: CacheConfig,
        shared: &[CacheConfig],
        dram: DramConfig,
    ) -> Self {
        assert!(
            !shared.is_empty() && shared.len() <= MAX_SHARED_LEVELS,
            "a hierarchy needs 1..={MAX_SHARED_LEVELS} shared levels, got {}",
            shared.len()
        );
        for level in [&l1i, &l1d].into_iter().chain(shared) {
            level.validate();
        }
        let ids: &[LevelId] = match shared.len() {
            1 => &[LevelId::L2C],
            2 => &[LevelId::L2C, LevelId::Llc],
            _ => &[LevelId::L2C, LevelId::L3, LevelId::Llc],
        };
        let mut slots = [UNUSED_SLOT; MAX_SHARED_LEVELS];
        for (slot, (&id, &cache)) in slots.iter_mut().zip(ids.iter().zip(shared)) {
            *slot = CacheLevelConfig { id, cache };
        }
        Self {
            l1i,
            l1d,
            shared: slots,
            depth: shared.len(),
            dram,
        }
    }

    /// The paper's Table 1 configuration (32 KiB L1s, 512 KiB 8-way L2C,
    /// 2 MiB 16-way LLC per core, 64 B blocks).
    pub fn asplos25() -> Self {
        Self::new(
            CacheConfig {
                sets: 64,
                ways: 8,
                latency: 4,
                mshr_entries: 8,
            },
            // 32 KiB 8-way L1D. (An earlier revision used 42×12, which
            // matches the byte budget but is unindexable hardware — set
            // counts must be powers of two; see `CacheConfig::validate`.)
            CacheConfig {
                sets: 64,
                ways: 8,
                latency: 5,
                mshr_entries: 8,
            },
            &[
                CacheConfig {
                    sets: 1024,
                    ways: 8,
                    latency: 5,
                    mshr_entries: 32,
                },
                CacheConfig {
                    sets: 2048,
                    ways: 16,
                    latency: 10,
                    mshr_entries: 64,
                },
            ],
            DramConfig::default(),
        )
    }

    /// A 2-level variant of [`HierarchyConfig::asplos25`]: the LLC is
    /// removed and the L2C misses straight to DRAM.
    pub fn asplos25_no_llc() -> Self {
        let base = Self::asplos25();
        Self::new(base.l1i, base.l1d, &[*base.l2c()], base.dram)
    }

    /// A 4-level variant of [`HierarchyConfig::asplos25`]: a 1 MiB 8-way
    /// L3 (2048 sets, 8-cycle access, 48 MSHRs) sits between the L2C and
    /// the LLC.
    pub fn asplos25_deep() -> Self {
        let base = Self::asplos25();
        let l3 = CacheConfig {
            sets: 2048,
            ways: 8,
            latency: 8,
            mshr_entries: 48,
        };
        Self::new(
            base.l1i,
            base.l1d,
            &[*base.l2c(), l3, *base.last_level()],
            base.dram,
        )
    }

    /// The active shared levels, outermost (L2C) first.
    pub fn shared_levels(&self) -> &[CacheLevelConfig] {
        &self.shared[..self.depth]
    }

    /// Number of active shared levels (1 = no LLC, 2 = the paper's
    /// 3-level machine, 3 = 4-level chain).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The first shared level (the L2C, where xPTP operates).
    pub fn l2c(&self) -> &CacheConfig {
        &self.shared[0].cache
    }

    /// Mutable access to the L2C geometry.
    pub fn l2c_mut(&mut self) -> &mut CacheConfig {
        &mut self.shared[0].cache
    }

    /// The LLC geometry, if this chain has one (depth ≥ 2).
    pub fn llc(&self) -> Option<&CacheConfig> {
        // depth ≤ MAX_SHARED_LEVELS is a constructor invariant.
        (self.depth >= 2).then(|| &self.shared[self.depth - 1].cache)
    }

    /// Mutable access to the LLC geometry, if this chain has one.
    pub fn llc_mut(&mut self) -> Option<&mut CacheConfig> {
        // depth ≤ MAX_SHARED_LEVELS is a constructor invariant.
        (self.depth >= 2).then(|| &mut self.shared[self.depth - 1].cache)
    }

    /// The innermost shared level (the LLC, or the L2C of no-LLC chains).
    pub fn last_level(&self) -> &CacheConfig {
        // 1 ≤ depth ≤ MAX_SHARED_LEVELS is a constructor invariant.
        &self.shared[self.depth - 1].cache
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self::asplos25()
    }
}

impl Fingerprint for HierarchyConfig {
    fn fingerprint(&self, h: &mut Fnv1a) {
        // Shared levels hash without a length prefix: the depth-2 stream
        // is byte-identical to the pre-chain four-field layout, keeping
        // existing simcache keys stable. Identities are implied by
        // position, and depth changes the stream length, so different
        // depths cannot collide with each other.
        self.l1i.fingerprint(h);
        self.l1d.fingerprint(h);
        for level in self.shared_levels() {
            level.cache.fingerprint(h);
        }
        self.dram.fingerprint(h);
    }
}

/// The replacement policy at each named level.
///
/// Interior levels of 4-level chains (the L3) are not part of the
/// paper's policy space and always run LRU; `llc` is unused by no-LLC
/// chains.
#[derive(Debug)]
pub struct HierarchyPolicies {
    /// L1I policy (LRU in every configuration the paper evaluates).
    pub l1i: CachePolicyEngine,
    /// L1D policy (LRU in every configuration the paper evaluates).
    pub l1d: CachePolicyEngine,
    /// L2C policy — LRU, PTP, T-DRRIP, or (adaptive) xPTP.
    pub l2: CachePolicyEngine,
    /// LLC policy — LRU, SHiP, or Mockingjay.
    pub llc: CachePolicyEngine,
}

/// Prefetchers attached to one level of the chain.
///
/// Hooks run for demand traffic at their level, after the access
/// completes (probe + fill): first the next-line prefetcher, then the
/// stride prefetcher. Default placement mirrors the paper's machine —
/// next-line at the L1D, stride at the L2C — but any level can carry
/// any hook via [`Hierarchy::set_hooks`].
#[derive(Debug, Default)]
pub struct LevelHooks {
    /// Next-line prefetcher (observes every demand access at the level).
    pub next_line: Option<NextLinePrefetcher>,
    /// PC-indexed stride prefetcher (observes demand data-payload
    /// accesses with a real PC).
    pub stride: Option<StridePrefetcher>,
}

impl LevelHooks {
    /// No prefetchers.
    pub fn none() -> Self {
        Self::default()
    }

    /// The paper's default hook placement for `id`: next-line at the
    /// L1D, stride at the L2C, nothing elsewhere.
    pub fn defaults_for(id: LevelId) -> Self {
        match id {
            LevelId::L1D => Self {
                next_line: Some(NextLinePrefetcher::new()),
                stride: None,
            },
            LevelId::L2C => Self {
                next_line: None,
                stride: Some(StridePrefetcher::default()),
            },
            _ => Self::none(),
        }
    }

    /// Total candidate blocks the next-line prefetcher has nominated.
    pub fn nominations(&self) -> u64 {
        self.next_line.as_ref().map_or(0, |p| p.nominated())
    }

    /// Zeroes hook counters (prefetcher training state is preserved).
    pub fn reset_stats(&mut self) {
        if let Some(p) = &mut self.next_line {
            p.reset_stats();
        }
    }
}

/// One level of the chain: identity, storage, link to the next-lower
/// level, and attached prefetchers.
#[derive(Debug)]
struct Level {
    id: LevelId,
    cache: Cache,
    /// Index of the next-lower level in `Hierarchy::levels`; `None`
    /// means this level misses to DRAM.
    next: Option<usize>,
    hooks: LevelHooks,
}

/// Index of the L1I entry level in `Hierarchy::levels`.
const L1I_INDEX: usize = 0;
/// Index of the L1D entry level.
const L1D_INDEX: usize = 1;
/// Index of the first shared level (the PTE entry point).
const SHARED_INDEX: usize = 2;

/// The full cache hierarchy plus DRAM.
#[derive(Debug)]
pub struct Hierarchy {
    /// Chain levels: `[L1I, L1D, shared...]`. Both L1s link to the
    /// first shared level; shared levels link downward in order.
    levels: Vec<Level>,
    dram: Dram,
    /// Writebacks absorbed by a lower level (dirty mark instead of a
    /// DRAM write). Together with `dram.writes()` this accounts for
    /// every writeback any level emitted.
    wb_absorbed: u64,
}

impl Hierarchy {
    /// Builds the hierarchy: both L1s in front of `cfg`'s shared chain.
    pub fn new(cfg: &HierarchyConfig, policies: HierarchyPolicies) -> Self {
        let HierarchyPolicies { l1i, l1d, l2, llc } = policies;
        let shared = cfg.shared_levels();
        let last = shared.len() - 1;
        let mut levels = Vec::with_capacity(2 + shared.len());
        levels.push(Level {
            id: LevelId::L1I,
            cache: Cache::new(cfg.l1i, l1i),
            next: Some(SHARED_INDEX),
            hooks: LevelHooks::defaults_for(LevelId::L1I),
        });
        levels.push(Level {
            id: LevelId::L1D,
            cache: Cache::new(cfg.l1d, l1d),
            next: Some(SHARED_INDEX),
            hooks: LevelHooks::defaults_for(LevelId::L1D),
        });
        // The named policies bind to the chain ends: `l2` to the first
        // shared level, `llc` to the last. The L3 of 4-level chains is
        // interior and runs LRU; no-LLC chains drop the LLC policy.
        let mut l2 = Some(l2);
        let mut llc = Some(llc);
        for (i, level) in shared.iter().enumerate() {
            let policy = if i == 0 {
                l2.take()
                    .unwrap_or_else(|| Lru::new(level.cache.sets, level.cache.ways).into())
            } else if i == last {
                llc.take()
                    .unwrap_or_else(|| Lru::new(level.cache.sets, level.cache.ways).into())
            } else {
                Lru::new(level.cache.sets, level.cache.ways).into()
            };
            levels.push(Level {
                id: level.id,
                cache: Cache::new(level.cache, policy),
                next: (i != last).then_some(SHARED_INDEX + i + 1),
                hooks: LevelHooks::defaults_for(level.id),
            });
        }
        Self {
            levels,
            dram: Dram::new(cfg.dram),
            wb_absorbed: 0,
        }
    }

    fn meta(
        pa: PhysAddr,
        pc: u64,
        fill: FillClass,
        stlb_miss: bool,
        thread: ThreadId,
    ) -> CacheMeta {
        CacheMeta {
            block: pa.block().index(),
            pc,
            fill,
            stlb_miss,
            thread,
            level: LevelId::entry_for(fill),
        }
    }

    /// Front-end instruction fetch of the block at `pa`.
    pub fn instr_fetch(&mut self, pa: PhysAddr, pc: u64, thread: ThreadId, now: Cycle) -> Cycle {
        let meta = Self::meta(pa, pc, FillClass::InstrPayload, false, thread);
        self.access_chain(L1I_INDEX, &meta, now, true)
    }

    /// FDIP-style instruction prefetch issued by the front end along the
    /// fetch target queue.
    pub fn prefetch_instr(&mut self, pa: PhysAddr, thread: ThreadId, now: Cycle) {
        let meta = Self::meta(pa, 0, FillClass::InstrPayload, false, thread);
        self.prefetch_into(L1I_INDEX, meta.block, &meta, now);
    }

    /// Data load/store to `pa`. `stlb_miss` flags an access whose
    /// translation missed the STLB (consumed by T-DRRIP).
    #[allow(clippy::too_many_arguments)]
    pub fn data_access(
        &mut self,
        pa: PhysAddr,
        pc: u64,
        thread: ThreadId,
        store: bool,
        stlb_miss: bool,
        now: Cycle,
    ) -> Cycle {
        let meta = Self::meta(pa, pc, FillClass::DataPayload, stlb_miss, thread);
        let done = self.access_chain(L1D_INDEX, &meta, now, true);
        if store {
            self.levels[L1D_INDEX].cache.mark_dirty(meta.block);
        }
        done
    }

    /// Page-walk reference to the PTE at `pa`, entering at the L2C.
    pub fn pte_access(
        &mut self,
        pa: PhysAddr,
        kind: TranslationKind,
        thread: ThreadId,
        now: Cycle,
    ) -> Cycle {
        let meta = Self::meta(pa, 0, FillClass::pte_for(kind), false, thread);
        self.access_chain(SHARED_INDEX, &meta, now, true)
    }

    /// The one probe → miss-below → fill recursion every access class
    /// descends through. `now` is the cycle the access reaches this
    /// level; the level's demand hooks run against that same cycle.
    fn access_chain(&mut self, idx: usize, meta: &CacheMeta, now: Cycle, demand: bool) -> Cycle {
        let mut meta = *meta;
        meta.level = self.levels[idx].id;
        let done = match self.levels[idx].cache.probe(&meta, now, demand) {
            Probe::Hit(t) => t,
            Probe::Miss(start) => {
                let lower_start = start + self.levels[idx].cache.latency();
                let below = match self.levels[idx].next {
                    Some(next) => self.access_chain(next, &meta, lower_start, demand),
                    None => self.dram.read(lower_start),
                };
                let wb = self.levels[idx].cache.fill(&meta, start, below, demand);
                self.route_writeback(idx, wb, below);
                below
            }
        };
        if demand {
            self.run_hooks(idx, &meta, now);
        }
        done
    }

    /// Routes a displaced dirty block from level `idx`: the first
    /// strictly-lower level holding the block absorbs it as a dirty
    /// mark; otherwise it becomes a DRAM write at cycle `at`.
    fn route_writeback(&mut self, from: usize, wb: Option<Writeback>, at: Cycle) {
        let Some(wb) = wb else { return };
        let mut next = self.levels[from].next;
        while let Some(idx) = next {
            if self.levels[idx].cache.contains(wb.block) {
                self.levels[idx].cache.mark_dirty(wb.block);
                self.wb_absorbed += 1;
                return;
            }
            next = self.levels[idx].next;
        }
        self.dram.write(at);
    }

    /// Prefetches `block` into level `idx` (no-op when already
    /// resident), reusing the demand access's PC and thread so
    /// PC-trained policies below see the triggering instruction.
    fn prefetch_into(&mut self, idx: usize, block: u64, demand: &CacheMeta, now: Cycle) {
        if self.levels[idx].cache.contains(block) {
            return;
        }
        let fill = if self.levels[idx].id == LevelId::L1I {
            FillClass::InstrPayload
        } else {
            FillClass::DataPayload
        };
        let meta = CacheMeta {
            block,
            pc: demand.pc,
            fill,
            stlb_miss: false,
            thread: demand.thread,
            level: self.levels[idx].id,
        };
        let below = match self.levels[idx].next {
            Some(next) => self.access_chain(next, &meta, now, false),
            None => self.dram.read(now),
        };
        let wb = self.levels[idx].cache.fill(&meta, now, below, false);
        // Private-level prefetch writebacks route at the issue cycle;
        // shared-level ones route when the line arrives.
        let at = if self.levels[idx].id.is_private() {
            now
        } else {
            below
        };
        self.route_writeback(idx, wb, at);
    }

    /// Runs level `idx`'s prefetch hooks against a demand access.
    /// Reentrancy-safe: prefetches descend with `demand == false`, so a
    /// hook can never re-trigger hooks (its own or a lower level's).
    fn run_hooks(&mut self, idx: usize, meta: &CacheMeta, now: Cycle) {
        let mut hooks = std::mem::take(&mut self.levels[idx].hooks);
        if let Some(next_line) = &mut hooks.next_line {
            if let Some(cand) = next_line.observe(meta.block) {
                self.prefetch_into(idx, cand, meta, now);
            }
        }
        if let Some(stride) = &mut hooks.stride {
            if meta.fill == FillClass::DataPayload && meta.pc != 0 {
                for cand in stride.observe(meta.pc, meta.block) {
                    self.prefetch_into(idx, cand, meta, now);
                }
            }
        }
        self.levels[idx].hooks = hooks;
    }

    /// The cache at level `id`, if this chain has one.
    pub fn cache(&self, id: LevelId) -> Option<&Cache> {
        self.levels.iter().find(|l| l.id == id).map(|l| &l.cache)
    }

    /// Mutable cache at level `id`, if this chain has one (warm-state
    /// handoff).
    pub fn cache_mut(&mut self, id: LevelId) -> Option<&mut Cache> {
        self.levels
            .iter_mut()
            .find(|l| l.id == id)
            .map(|l| &mut l.cache)
    }

    /// Iterates the chain's levels mutably (warm-state handoff imports).
    pub fn levels_mut(&mut self) -> impl Iterator<Item = (LevelId, &mut Cache)> + '_ {
        self.levels.iter_mut().map(|l| (l.id, &mut l.cache))
    }

    /// Iterates the chain's levels in order (L1I, L1D, then shared
    /// levels outermost-first).
    pub fn levels(&self) -> impl Iterator<Item = (LevelId, &Cache)> + '_ {
        self.levels.iter().map(|l| (l.id, &l.cache))
    }

    /// Statistics of level `id`; empty stats when the chain has no such
    /// level (e.g. the LLC of a no-LLC chain).
    pub fn stats_of(&self, id: LevelId) -> StructStats {
        self.cache(id)
            .map(|c| c.stats().clone())
            .unwrap_or_default()
    }

    /// The prefetch hooks attached to level `id`.
    pub fn hooks(&self, id: LevelId) -> Option<&LevelHooks> {
        self.levels.iter().find(|l| l.id == id).map(|l| &l.hooks)
    }

    /// Replaces the prefetch hooks of level `id`; returns `false` (and
    /// drops `hooks`) when the chain has no such level.
    pub fn set_hooks(&mut self, id: LevelId, hooks: LevelHooks) -> bool {
        match self.levels.iter_mut().find(|l| l.id == id) {
            Some(level) => {
                level.hooks = hooks;
                true
            }
            None => false,
        }
    }

    /// Total candidate blocks nominated by next-line prefetch hooks
    /// across the chain.
    pub fn prefetch_nominations(&self) -> u64 {
        self.levels.iter().map(|l| l.hooks.nominations()).sum()
    }

    /// Writebacks absorbed by a lower chain level instead of DRAM.
    pub fn writebacks_absorbed(&self) -> u64 {
        self.wb_absorbed
    }

    /// The DRAM device.
    pub fn dram(&self) -> &Dram {
        &self.dram
    }

    /// Zeroes every counter in the chain — per-level cache stats
    /// (including prefetch issued/useful), hook nomination counts, the
    /// writeback-absorption counter, and DRAM counters. Cache contents,
    /// policy state, and prefetcher training state are preserved.
    pub fn reset_stats(&mut self) {
        for level in &mut self.levels {
            level.cache.reset_stats();
            level.hooks.reset_stats();
        }
        self.dram.reset_stats();
        self.wb_absorbed = 0;
    }
}

impl ResetBoundary for LevelHooks {
    fn reset_boundary(&mut self) {
        self.reset_stats();
    }
}

impl ResetBoundary for Hierarchy {
    fn reset_boundary(&mut self) {
        self.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itpx_policy::Lru;

    fn small() -> HierarchyConfig {
        HierarchyConfig::new(
            CacheConfig {
                sets: 8,
                ways: 2,
                latency: 4,
                mshr_entries: 8,
            },
            CacheConfig {
                sets: 8,
                ways: 2,
                latency: 5,
                mshr_entries: 8,
            },
            &[
                CacheConfig {
                    sets: 32,
                    ways: 4,
                    latency: 5,
                    mshr_entries: 16,
                },
                CacheConfig {
                    sets: 64,
                    ways: 8,
                    latency: 10,
                    mshr_entries: 32,
                },
            ],
            DramConfig::default(),
        )
    }

    fn hierarchy(cfg: &HierarchyConfig) -> Hierarchy {
        Hierarchy::new(
            cfg,
            HierarchyPolicies {
                l1i: Lru::new(cfg.l1i.sets, cfg.l1i.ways).into(),
                l1d: Lru::new(cfg.l1d.sets, cfg.l1d.ways).into(),
                l2: Lru::new(cfg.l2c().sets, cfg.l2c().ways).into(),
                llc: Lru::new(cfg.last_level().sets, cfg.last_level().ways).into(),
            },
        )
    }

    fn cache(h: &Hierarchy, id: LevelId) -> &Cache {
        h.cache(id).expect("chain has this level")
    }

    #[test]
    fn cold_fetch_goes_to_dram_and_warms_all_levels() {
        let cfg = small();
        let mut h = hierarchy(&cfg);
        let pa = PhysAddr::new(0x4000);
        let t = h.instr_fetch(pa, 0x400, ThreadId(0), 0);
        // L1I lat 4 + L2 lat 5 + LLC lat 10 + DRAM 90 = 109.
        assert_eq!(t, 109);
        // Warm everywhere now.
        let t2 = h.instr_fetch(pa, 0x400, ThreadId(0), 200);
        assert_eq!(t2, 204);
        assert_eq!(cache(&h, LevelId::L1I).stats().misses(), 1);
        assert_eq!(cache(&h, LevelId::L2C).stats().misses(), 1);
        assert_eq!(cache(&h, LevelId::Llc).stats().misses(), 1);
        assert_eq!(h.dram().reads(), 1);
    }

    #[test]
    fn l2_hit_short_circuits() {
        let cfg = small();
        let mut h = hierarchy(&cfg);
        let pa = PhysAddr::new(0x8000);
        h.pte_access(pa, TranslationKind::Data, ThreadId(0), 0);
        // Same block via the data path: L1D miss, L2 hit.
        let t = h.data_access(pa, 0x99, ThreadId(0), false, false, 1000);
        assert_eq!(t, 1000 + 5 + 5);
        // The only *demand* L2 miss is the cold PTE access (the data access
        // also spawned a next-line prefetch, which does not count).
        assert_eq!(cache(&h, LevelId::L2C).stats().misses(), 1);
    }

    #[test]
    fn pte_accesses_carry_their_class_into_l2_stats() {
        let cfg = small();
        let mut h = hierarchy(&cfg);
        h.pte_access(PhysAddr::new(0x100), TranslationKind::Data, ThreadId(0), 0);
        h.pte_access(
            PhysAddr::new(0x10000),
            TranslationKind::Instruction,
            ThreadId(0),
            0,
        );
        let b = cache(&h, LevelId::L2C).stats().mpki_breakdown(1000);
        assert!(b.data_pte > 0.0);
        assert!(b.instr_pte > 0.0);
        assert_eq!(b.data, 0.0);
    }

    #[test]
    fn next_line_prefetch_warms_l1d() {
        let cfg = small();
        let mut h = hierarchy(&cfg);
        let pa = PhysAddr::new(0);
        h.data_access(pa, 0x10, ThreadId(0), false, false, 0);
        // Block 1 was prefetched; a demand access to it hits in L1D.
        let t = h.data_access(PhysAddr::new(64), 0x10, ThreadId(0), false, false, 500);
        assert_eq!(t, 505);
        assert!(cache(&h, LevelId::L1D).prefetches_issued() >= 1);
        assert_eq!(cache(&h, LevelId::L1D).prefetches_useful(), 1);
    }

    #[test]
    fn stores_mark_dirty_and_eventually_write_back() {
        let cfg = small();
        let mut h = hierarchy(&cfg);
        // Store to a block, then displace it with 2 more blocks in its set.
        let set_stride = 64 * cfg.l1d.sets as u64;
        h.data_access(PhysAddr::new(0), 0x30, ThreadId(0), true, false, 0);
        let wb_before = cache(&h, LevelId::L1D).writebacks();
        for i in 1..=2 {
            h.data_access(
                PhysAddr::new(i * set_stride),
                0x30 + i,
                ThreadId(0),
                false,
                false,
                1000 * i,
            );
        }
        assert!(
            cache(&h, LevelId::L1D).writebacks() > wb_before,
            "dirty block displaced"
        );
    }

    #[test]
    fn fdip_prefetch_is_idempotent_for_resident_blocks() {
        let cfg = small();
        let mut h = hierarchy(&cfg);
        let pa = PhysAddr::new(0x2000);
        h.prefetch_instr(pa, ThreadId(0), 0);
        let issued = cache(&h, LevelId::L1I).prefetches_issued();
        h.prefetch_instr(pa, ThreadId(0), 10);
        assert_eq!(cache(&h, LevelId::L1I).prefetches_issued(), issued);
        // Demand fetch hits the prefetched block.
        let t = h.instr_fetch(pa, 0x1, ThreadId(0), 500);
        assert_eq!(t, 504);
    }

    #[test]
    fn smt_threads_share_capacity() {
        let cfg = small();
        let mut h = hierarchy(&cfg);
        let pa = PhysAddr::new(0x7000);
        h.data_access(pa, 0x1, ThreadId(0), false, false, 0);
        // The other thread hits the block thread 0 brought in.
        let t = h.data_access(pa, 0x2, ThreadId(1), false, false, 500);
        assert_eq!(t, 505);
    }

    fn small_shared(depth: usize) -> HierarchyConfig {
        let base = small();
        let l3 = CacheConfig {
            sets: 64,
            ways: 4,
            latency: 8,
            mshr_entries: 16,
        };
        let shared: &[CacheConfig] = match depth {
            1 => &[*base.l2c()],
            2 => &[*base.l2c(), *base.last_level()],
            _ => &[*base.l2c(), l3, *base.last_level()],
        };
        HierarchyConfig::new(base.l1i, base.l1d, shared, base.dram)
    }

    #[test]
    fn no_llc_chain_misses_straight_to_dram() {
        let cfg = small_shared(1);
        assert!(cfg.llc().is_none());
        let mut h = hierarchy(&cfg);
        assert!(h.cache(LevelId::Llc).is_none());
        let t = h.instr_fetch(PhysAddr::new(0x4000), 0x400, ThreadId(0), 0);
        // L1I lat 4 + L2 lat 5 + DRAM 90 = 99: no LLC latency in the path.
        assert_eq!(t, 99);
        assert_eq!(h.dram().reads(), 1);
    }

    #[test]
    fn four_level_chain_adds_one_hop() {
        let cfg = small_shared(3);
        let mut h = hierarchy(&cfg);
        let t = h.instr_fetch(PhysAddr::new(0x4000), 0x400, ThreadId(0), 0);
        // L1I 4 + L2 5 + L3 8 + LLC 10 + DRAM 90 = 117.
        assert_eq!(t, 117);
        assert_eq!(cache(&h, LevelId::L3).stats().misses(), 1);
        // Warm fetch never leaves the L1I.
        assert_eq!(
            h.instr_fetch(PhysAddr::new(0x4000), 0x400, ThreadId(0), 500),
            504
        );
    }

    #[test]
    fn depth_changes_the_fingerprint() {
        let three = small_shared(2).fingerprint_u64();
        assert_ne!(small_shared(1).fingerprint_u64(), three);
        assert_ne!(small_shared(3).fingerprint_u64(), three);
        assert_eq!(small().fingerprint_u64(), three);
    }

    #[test]
    fn writeback_absorption_is_counted() {
        let cfg = small();
        let mut h = hierarchy(&cfg);
        let set_stride = 64 * cfg.l1d.sets as u64;
        // Dirty a block, displace it from the L1D while it is still
        // resident in the L2/LLC: the writeback must be absorbed below.
        h.data_access(PhysAddr::new(0), 0x30, ThreadId(0), true, false, 0);
        for i in 1..=2 {
            h.data_access(
                PhysAddr::new(i * set_stride),
                0x30 + i,
                ThreadId(0),
                false,
                false,
                1000 * i,
            );
        }
        assert!(cache(&h, LevelId::L1D).writebacks() >= 1);
        assert!(h.writebacks_absorbed() >= 1);
        assert_eq!(h.dram().writes(), 0);
    }
}
