//! The three-level cache hierarchy of Table 1, with prefetchers and DRAM.
//!
//! Three access paths exist, matching the paper's system diagram
//! (Figure 7):
//!
//! * [`Hierarchy::instr_fetch`] — front-end fetches: L1I → L2C → LLC → DRAM,
//! * [`Hierarchy::data_access`] — loads/stores: L1D → L2C → LLC → DRAM,
//! * [`Hierarchy::pte_access`] — page-walk references, which enter **at the
//!   L2C** carrying their translation kind as a [`FillClass`]; this is
//!   where xPTP's `Type` bit is produced and consumed.

use crate::cache::{Cache, CacheConfig, Probe};
use crate::dram::{Dram, DramConfig};
use crate::prefetch::{NextLinePrefetcher, StridePrefetcher};
use itpx_policy::{CacheMeta, CachePolicy};
use itpx_types::fingerprint::{Fingerprint, Fnv1a};
use itpx_types::{Cycle, FillClass, PhysAddr, ThreadId, TranslationKind};

/// Geometry of every level plus DRAM timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2 cache (where xPTP operates).
    pub l2: CacheConfig,
    /// Last-level cache.
    pub llc: CacheConfig,
    /// DRAM timing.
    pub dram: DramConfig,
}

impl HierarchyConfig {
    /// The paper's Table 1 configuration (32 KiB L1s, 512 KiB 8-way L2C,
    /// 2 MiB 16-way LLC per core, 64 B blocks).
    pub fn asplos25() -> Self {
        Self {
            l1i: CacheConfig {
                sets: 64,
                ways: 8,
                latency: 4,
                mshr_entries: 8,
            },
            l1d: CacheConfig {
                sets: 42,
                ways: 12,
                latency: 5,
                mshr_entries: 8,
            },
            l2: CacheConfig {
                sets: 1024,
                ways: 8,
                latency: 5,
                mshr_entries: 32,
            },
            llc: CacheConfig {
                sets: 2048,
                ways: 16,
                latency: 10,
                mshr_entries: 64,
            },
            dram: DramConfig::default(),
        }
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self::asplos25()
    }
}

impl Fingerprint for HierarchyConfig {
    fn fingerprint(&self, h: &mut Fnv1a) {
        self.l1i.fingerprint(h);
        self.l1d.fingerprint(h);
        self.l2.fingerprint(h);
        self.llc.fingerprint(h);
        self.dram.fingerprint(h);
    }
}

/// The replacement policy at each level.
#[derive(Debug)]
pub struct HierarchyPolicies {
    /// L1I policy (LRU in every configuration the paper evaluates).
    pub l1i: CachePolicy,
    /// L1D policy (LRU in every configuration the paper evaluates).
    pub l1d: CachePolicy,
    /// L2C policy — LRU, PTP, T-DRRIP, or (adaptive) xPTP.
    pub l2: CachePolicy,
    /// LLC policy — LRU, SHiP, or Mockingjay.
    pub llc: CachePolicy,
}

/// The full cache hierarchy plus DRAM.
#[derive(Debug)]
pub struct Hierarchy {
    /// L1 instruction cache.
    pub l1i: Cache,
    /// L1 data cache.
    pub l1d: Cache,
    /// Unified L2.
    pub l2: Cache,
    /// Last-level cache.
    pub llc: Cache,
    /// DRAM device.
    pub dram: Dram,
    next_line: NextLinePrefetcher,
    stride: StridePrefetcher,
}

impl Hierarchy {
    /// Builds the hierarchy.
    pub fn new(cfg: &HierarchyConfig, policies: HierarchyPolicies) -> Self {
        Self {
            l1i: Cache::new(cfg.l1i, policies.l1i),
            l1d: Cache::new(cfg.l1d, policies.l1d),
            l2: Cache::new(cfg.l2, policies.l2),
            llc: Cache::new(cfg.llc, policies.llc),
            dram: Dram::new(cfg.dram),
            next_line: NextLinePrefetcher::new(),
            stride: StridePrefetcher::default(),
        }
    }

    fn meta(
        pa: PhysAddr,
        pc: u64,
        fill: FillClass,
        stlb_miss: bool,
        thread: ThreadId,
    ) -> CacheMeta {
        CacheMeta {
            block: pa.block().index(),
            pc,
            fill,
            stlb_miss,
            thread,
        }
    }

    /// Front-end instruction fetch of the block at `pa`.
    pub fn instr_fetch(&mut self, pa: PhysAddr, pc: u64, thread: ThreadId, now: Cycle) -> Cycle {
        let meta = Self::meta(pa, pc, FillClass::InstrPayload, false, thread);
        match self.l1i.probe(&meta, now, true) {
            Probe::Hit(t) => t,
            Probe::Miss(start) => {
                let below = self.l2_chain(&meta, start + self.l1i.latency(), true);
                self.l1i.fill(&meta, start, below, true);
                below
            }
        }
    }

    /// FDIP-style instruction prefetch issued by the front end along the
    /// fetch target queue.
    pub fn prefetch_instr(&mut self, pa: PhysAddr, thread: ThreadId, now: Cycle) {
        let meta = Self::meta(pa, 0, FillClass::InstrPayload, false, thread);
        if self.l1i.contains(meta.block) {
            return;
        }
        let below = self.l2_chain(&meta, now, false);
        self.l1i.fill(&meta, now, below, false);
    }

    /// Data load/store to `pa`. `stlb_miss` flags an access whose
    /// translation missed the STLB (consumed by T-DRRIP).
    #[allow(clippy::too_many_arguments)]
    pub fn data_access(
        &mut self,
        pa: PhysAddr,
        pc: u64,
        thread: ThreadId,
        store: bool,
        stlb_miss: bool,
        now: Cycle,
    ) -> Cycle {
        let meta = Self::meta(pa, pc, FillClass::DataPayload, stlb_miss, thread);
        let done = match self.l1d.probe(&meta, now, true) {
            Probe::Hit(t) => t,
            Probe::Miss(start) => {
                let below = self.l2_chain(&meta, start + self.l1d.latency(), true);
                let wb = self.l1d.fill(&meta, start, below, true);
                self.handle_l1d_writeback(wb, below);
                below
            }
        };
        if store {
            self.l1d.mark_dirty(meta.block);
        }
        // Next-line prefetch into the L1D.
        if let Some(cand) = self.next_line.observe(meta.block) {
            self.prefetch_into_l1d(cand, &meta, now);
        }
        done
    }

    /// Page-walk reference to the PTE at `pa`, entering at the L2C.
    pub fn pte_access(
        &mut self,
        pa: PhysAddr,
        kind: TranslationKind,
        thread: ThreadId,
        now: Cycle,
    ) -> Cycle {
        let meta = Self::meta(pa, 0, FillClass::pte_for(kind), false, thread);
        self.l2_chain(&meta, now, true)
    }

    fn prefetch_into_l1d(&mut self, block: u64, demand: &CacheMeta, now: Cycle) {
        if self.l1d.contains(block) {
            return;
        }
        let meta = CacheMeta {
            block,
            pc: demand.pc,
            fill: FillClass::DataPayload,
            stlb_miss: false,
            thread: demand.thread,
        };
        let below = self.l2_chain(&meta, now, false);
        let wb = self.l1d.fill(&meta, now, below, false);
        self.handle_l1d_writeback(wb, now);
    }

    fn handle_l1d_writeback(&mut self, wb: Option<crate::cache::Writeback>, now: Cycle) {
        if let Some(wb) = wb {
            if self.l2.contains(wb.block) {
                self.l2.mark_dirty(wb.block);
            } else if self.llc.contains(wb.block) {
                self.llc.mark_dirty(wb.block);
            } else {
                self.dram.write(now);
            }
        }
    }

    /// L2C access (and below). Demand accesses update statistics; data
    /// payload demand accesses train the stride prefetcher.
    fn l2_chain(&mut self, meta: &CacheMeta, now: Cycle, demand: bool) -> Cycle {
        let done = match self.l2.probe(meta, now, demand) {
            Probe::Hit(t) => t,
            Probe::Miss(start) => {
                let below = self.llc_chain(meta, start + self.l2.latency(), demand);
                let wb = self.l2.fill(meta, start, below, demand);
                if let Some(wb) = wb {
                    if self.llc.contains(wb.block) {
                        self.llc.mark_dirty(wb.block);
                    } else {
                        self.dram.write(below);
                    }
                }
                below
            }
        };
        if demand && meta.fill == FillClass::DataPayload && meta.pc != 0 {
            let candidates = self.stride.observe(meta.pc, meta.block);
            for cand in candidates {
                self.prefetch_into_l2(cand, meta, now);
            }
        }
        done
    }

    fn prefetch_into_l2(&mut self, block: u64, demand: &CacheMeta, now: Cycle) {
        if self.l2.contains(block) {
            return;
        }
        let meta = CacheMeta {
            block,
            pc: demand.pc,
            fill: FillClass::DataPayload,
            stlb_miss: false,
            thread: demand.thread,
        };
        let below = self.llc_chain(&meta, now, false);
        let wb = self.l2.fill(&meta, now, below, false);
        if let Some(wb) = wb {
            if self.llc.contains(wb.block) {
                self.llc.mark_dirty(wb.block);
            } else {
                self.dram.write(below);
            }
        }
    }

    fn llc_chain(&mut self, meta: &CacheMeta, now: Cycle, demand: bool) -> Cycle {
        match self.llc.probe(meta, now, demand) {
            Probe::Hit(t) => t,
            Probe::Miss(start) => {
                let below = self.dram.read(start + self.llc.latency());
                let wb = self.llc.fill(meta, start, below, demand);
                if wb.is_some() {
                    self.dram.write(below);
                }
                below
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itpx_policy::Lru;

    fn small() -> HierarchyConfig {
        HierarchyConfig {
            l1i: CacheConfig {
                sets: 8,
                ways: 2,
                latency: 4,
                mshr_entries: 8,
            },
            l1d: CacheConfig {
                sets: 8,
                ways: 2,
                latency: 5,
                mshr_entries: 8,
            },
            l2: CacheConfig {
                sets: 32,
                ways: 4,
                latency: 5,
                mshr_entries: 16,
            },
            llc: CacheConfig {
                sets: 64,
                ways: 8,
                latency: 10,
                mshr_entries: 32,
            },
            dram: DramConfig::default(),
        }
    }

    fn hierarchy(cfg: &HierarchyConfig) -> Hierarchy {
        Hierarchy::new(
            cfg,
            HierarchyPolicies {
                l1i: Box::new(Lru::new(cfg.l1i.sets, cfg.l1i.ways)),
                l1d: Box::new(Lru::new(cfg.l1d.sets, cfg.l1d.ways)),
                l2: Box::new(Lru::new(cfg.l2.sets, cfg.l2.ways)),
                llc: Box::new(Lru::new(cfg.llc.sets, cfg.llc.ways)),
            },
        )
    }

    #[test]
    fn cold_fetch_goes_to_dram_and_warms_all_levels() {
        let cfg = small();
        let mut h = hierarchy(&cfg);
        let pa = PhysAddr::new(0x4000);
        let t = h.instr_fetch(pa, 0x400, ThreadId(0), 0);
        // L1I lat 4 + L2 lat 5 + LLC lat 10 + DRAM 90 = 109.
        assert_eq!(t, 109);
        // Warm everywhere now.
        let t2 = h.instr_fetch(pa, 0x400, ThreadId(0), 200);
        assert_eq!(t2, 204);
        assert_eq!(h.l1i.stats().misses(), 1);
        assert_eq!(h.l2.stats().misses(), 1);
        assert_eq!(h.llc.stats().misses(), 1);
        assert_eq!(h.dram.reads(), 1);
    }

    #[test]
    fn l2_hit_short_circuits() {
        let cfg = small();
        let mut h = hierarchy(&cfg);
        let pa = PhysAddr::new(0x8000);
        h.pte_access(pa, TranslationKind::Data, ThreadId(0), 0);
        // Same block via the data path: L1D miss, L2 hit.
        let t = h.data_access(pa, 0x99, ThreadId(0), false, false, 1000);
        assert_eq!(t, 1000 + 5 + 5);
        // The only *demand* L2 miss is the cold PTE access (the data access
        // also spawned a next-line prefetch, which does not count).
        assert_eq!(h.l2.stats().misses(), 1);
    }

    #[test]
    fn pte_accesses_carry_their_class_into_l2_stats() {
        let cfg = small();
        let mut h = hierarchy(&cfg);
        h.pte_access(PhysAddr::new(0x100), TranslationKind::Data, ThreadId(0), 0);
        h.pte_access(
            PhysAddr::new(0x10000),
            TranslationKind::Instruction,
            ThreadId(0),
            0,
        );
        let b = h.l2.stats().mpki_breakdown(1000);
        assert!(b.data_pte > 0.0);
        assert!(b.instr_pte > 0.0);
        assert_eq!(b.data, 0.0);
    }

    #[test]
    fn next_line_prefetch_warms_l1d() {
        let cfg = small();
        let mut h = hierarchy(&cfg);
        let pa = PhysAddr::new(0);
        h.data_access(pa, 0x10, ThreadId(0), false, false, 0);
        // Block 1 was prefetched; a demand access to it hits in L1D.
        let t = h.data_access(PhysAddr::new(64), 0x10, ThreadId(0), false, false, 500);
        assert_eq!(t, 505);
        assert!(h.l1d.prefetches_issued() >= 1);
        assert_eq!(h.l1d.prefetches_useful(), 1);
    }

    #[test]
    fn stores_mark_dirty_and_eventually_write_back() {
        let cfg = small();
        let mut h = hierarchy(&cfg);
        // Store to a block, then displace it with 2 more blocks in its set.
        let set_stride = 64 * cfg.l1d.sets as u64;
        h.data_access(PhysAddr::new(0), 0x30, ThreadId(0), true, false, 0);
        let wb_before = h.l1d.writebacks();
        for i in 1..=2 {
            h.data_access(
                PhysAddr::new(i * set_stride),
                0x30 + i,
                ThreadId(0),
                false,
                false,
                1000 * i,
            );
        }
        assert!(h.l1d.writebacks() > wb_before, "dirty block displaced");
    }

    #[test]
    fn fdip_prefetch_is_idempotent_for_resident_blocks() {
        let cfg = small();
        let mut h = hierarchy(&cfg);
        let pa = PhysAddr::new(0x2000);
        h.prefetch_instr(pa, ThreadId(0), 0);
        let issued = h.l1i.prefetches_issued();
        h.prefetch_instr(pa, ThreadId(0), 10);
        assert_eq!(h.l1i.prefetches_issued(), issued);
        // Demand fetch hits the prefetched block.
        let t = h.instr_fetch(pa, 0x1, ThreadId(0), 500);
        assert_eq!(t, 504);
    }

    #[test]
    fn smt_threads_share_capacity() {
        let cfg = small();
        let mut h = hierarchy(&cfg);
        let pa = PhysAddr::new(0x7000);
        h.data_access(pa, 0x1, ThreadId(0), false, false, 0);
        // The other thread hits the block thread 0 brought in.
        let t = h.data_access(pa, 0x2, ThreadId(1), false, false, 500);
        assert_eq!(t, 505);
    }
}
