//! One set-associative cache level with pluggable replacement and
//! MSHR-aware fill timing.

use itpx_policy::{CacheMeta, CachePolicyEngine, Policy};
use itpx_types::fingerprint::{Fingerprint, Fnv1a};
use itpx_types::{Cycle, FillClass, ResetBoundary, SetMask, SlotPool, StructStats};

/// One resident line as exported/imported at a tier boundary:
/// `(block, dirty, fill_class)`. The fill class is the stored meta's class
/// so class-aware policies see the right kind on re-install.
pub type CacheLineSnapshot = (u64, bool, FillClass);

/// Geometry and timing of a cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets.
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Lookup latency in cycles.
    pub latency: u64,
    /// Miss-status-holding-register capacity.
    pub mshr_entries: usize,
}

impl CacheConfig {
    /// Capacity in bytes (64-byte blocks).
    pub fn bytes(&self) -> usize {
        self.sets * self.ways * 64
    }

    /// Validates the geometry.
    ///
    /// Real caches index sets with address bits, so the set count must
    /// be a power of two; a non-power-of-two count would silently model
    /// an unbuildable indexing function (and skew set-contention
    /// behavior). [`Cache::new`] calls this, so every constructed cache
    /// is covered.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is zero or not a power of two, `ways` is zero or
    /// exceeds 64 (the validity-bitmask width), or `mshr_entries` is
    /// zero.
    pub fn validate(&self) {
        assert!(
            self.sets.is_power_of_two(),
            "cache set count must be a power of two, got {}",
            self.sets
        );
        assert!(self.ways > 0, "cache needs ways > 0");
        assert!(self.ways <= 64, "valid bitmask holds at most 64 ways");
        assert!(self.mshr_entries > 0, "cache needs at least one MSHR");
    }
}

impl Fingerprint for CacheConfig {
    fn fingerprint(&self, h: &mut Fnv1a) {
        h.write_usize(self.sets);
        h.write_usize(self.ways);
        h.write_u64(self.latency);
        h.write_usize(self.mshr_entries);
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    block: u64,
    ready: Cycle,
    dirty: bool,
    meta: CacheMeta,
}

/// Result of a cache probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// Present: the access completes at the given cycle (waiting for an
    /// in-flight fill if necessary).
    Hit(Cycle),
    /// Absent: the miss may proceed to the next level at the given cycle
    /// (delayed past `now` if all MSHRs are busy).
    Miss(Cycle),
}

/// A dirty block displaced by a fill, to be written toward memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Writeback {
    /// Block index of the displaced dirty block.
    pub block: u64,
}

/// One set-associative cache level.
///
/// Tag storage is a single flat slice indexed by `set * ways + way`, with
/// per-set validity bitmasks — the probe/fill loops below are the
/// simulator's most-executed code, and the flat layout removes the
/// per-access double indirection (and per-way `Option` discriminant) of
/// nested per-set vectors of `Option<Line>`.
#[derive(Debug)]
pub struct Cache {
    cfg: CacheConfig,
    /// `sets * ways` line slots; a slot's content is meaningful only when
    /// the corresponding bit of `valid` is set.
    lines: Box<[Line]>,
    /// Per-set validity bitmask (bit `w` ⇔ way `w` holds a line).
    valid: Box<[u64]>,
    /// `ways` low bits set: the mask of a fully occupied set.
    full_mask: u64,
    /// Power-of-two set selection, precomputed from the validated
    /// geometry: one AND per access instead of a `%` division.
    set_mask: SetMask,
    /// Enum-dispatched so the per-access `on_hit`/`victim`/`on_fill`
    /// calls inline instead of going through a vtable.
    policy: CachePolicyEngine,
    stats: StructStats,
    /// Completion times of outstanding misses (lazy-cleaned MSHR model).
    inflight: SlotPool<Cycle>,
    prefetch_issued: u64,
    prefetch_useful: u64,
    writebacks: u64,
    evictions: u64,
}

impl Cache {
    /// Creates a cache with the given geometry and replacement policy.
    ///
    /// Any in-tree policy converts into [`CachePolicyEngine`] directly
    /// (`Lru::new(..)`, boxed trait objects, or an explicit engine all
    /// work); out-of-tree policies go through
    /// [`CachePolicyEngine::boxed`].
    ///
    /// # Panics
    ///
    /// Panics if [`CacheConfig::validate`] rejects the geometry.
    pub fn new(cfg: CacheConfig, policy: impl Into<CachePolicyEngine>) -> Self {
        let policy = policy.into();
        cfg.validate();
        let placeholder = Line {
            block: 0,
            ready: 0,
            dirty: false,
            meta: CacheMeta::demand(0, FillClass::DataPayload),
        };
        Self {
            lines: vec![placeholder; cfg.sets * cfg.ways].into_boxed_slice(),
            valid: vec![0; cfg.sets].into_boxed_slice(),
            full_mask: u64::MAX >> (64 - cfg.ways as u32),
            // validate() enforced power-of-two sets just above.
            set_mask: SetMask::new(cfg.sets),
            policy,
            stats: StructStats::new(),
            inflight: SlotPool::with_capacity(cfg.mshr_entries),
            prefetch_issued: 0,
            prefetch_useful: 0,
            writebacks: 0,
            evictions: 0,
            cfg,
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Lookup latency in cycles.
    pub fn latency(&self) -> u64 {
        self.cfg.latency
    }

    /// Demand access/miss statistics with per-class breakdown.
    pub fn stats(&self) -> &StructStats {
        &self.stats
    }

    /// Name of the replacement policy in use.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Number of dirty blocks displaced so far.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Number of valid blocks displaced by fills (dirty or clean).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Prefetches issued into this cache.
    pub fn prefetches_issued(&self) -> u64 {
        self.prefetch_issued
    }

    /// Prefetched blocks that later served a demand hit.
    pub fn prefetches_useful(&self) -> u64 {
        self.prefetch_useful
    }

    fn set_of(&self, block: u64) -> usize {
        self.set_mask.set_of(block)
    }

    /// The flat-slice index of `(set, way)`.
    fn slot(&self, set: usize, way: usize) -> usize {
        set * self.cfg.ways + way
    }

    /// First valid way in `set` holding `block`, if any. Ways are scanned
    /// in ascending order (bit order of the validity mask), matching the
    /// nested-storage scan.
    fn find_way(&self, set: usize, block: u64) -> Option<usize> {
        let mut mask = self.valid[set];
        while mask != 0 {
            let way = mask.trailing_zeros() as usize;
            // way < cfg.ways because only the low `ways` mask bits are set
            if self.lines[self.slot(set, way)].block == block {
                return Some(way);
            }
            mask &= mask - 1;
        }
        None
    }

    /// Lowest invalid way in `set`, if the set is not full.
    fn first_free_way(&self, set: usize) -> Option<usize> {
        let free = !self.valid[set] & self.full_mask;
        if free == 0 {
            None
        } else {
            Some(free.trailing_zeros() as usize)
        }
    }

    /// Probes for `meta.block` at `now`. `demand` controls whether the
    /// access is recorded in the demand statistics (prefetch and writeback
    /// probes are not).
    pub fn probe(&mut self, meta: &CacheMeta, now: Cycle, demand: bool) -> Probe {
        let set = self.set_of(meta.block);
        match self.find_way(set, meta.block) {
            Some(way) => {
                let slot = self.slot(set, way);
                if demand {
                    self.stats.record(meta.fill, false);
                    // slot indexes a valid way found above
                    let line = &mut self.lines[slot];
                    if line.meta.pc == u64::MAX {
                        // First demand touch of a prefetched block.
                        line.meta.pc = meta.pc;
                        self.prefetch_useful += 1;
                    }
                }
                self.policy.on_hit(set, way, meta);
                // slot indexes a valid way found above
                let ready = self.lines[slot].ready;
                Probe::Hit(ready.max(now + self.cfg.latency))
            }
            None => {
                if demand {
                    self.stats.record(meta.fill, true);
                }
                Probe::Miss(self.mshr_allocate(now))
            }
        }
    }

    /// Reserves an MSHR: returns the cycle the miss may proceed.
    fn mshr_allocate(&mut self, now: Cycle) -> Cycle {
        self.inflight.retain(|&r| r > now);
        if self.inflight.len() >= self.cfg.mshr_entries {
            // guarded: len >= mshr_entries >= 1, so a minimum exists
            self.inflight.iter().copied().min().unwrap_or(now).max(now)
        } else {
            now
        }
    }

    /// Installs `meta.block`, becoming readable at `ready`. Returns the
    /// displaced dirty block, if any. `demand` records the end-to-end miss
    /// latency (`ready - miss_start`).
    pub fn fill(
        &mut self,
        meta: &CacheMeta,
        miss_start: Cycle,
        ready: Cycle,
        demand: bool,
    ) -> Option<Writeback> {
        if demand {
            self.stats
                .record_miss_latency(ready.saturating_sub(miss_start));
        } else {
            self.prefetch_issued += 1;
        }
        self.inflight.insert(ready);
        let set = self.set_of(meta.block);
        // Refill of a resident block (e.g. racing prefetch): refresh only.
        if let Some(way) = self.find_way(set, meta.block) {
            self.policy.on_hit(set, way, meta);
            return None;
        }
        let mut stored = *meta;
        if !demand {
            // Mark prefetched lines so the first demand touch is counted.
            stored.pc = u64::MAX;
        }
        let (way, wb) = match self.first_free_way(set) {
            Some(w) => (w, None),
            None => {
                let v = self.policy.victim(set, meta);
                // In-range victims are the policy contract (checked for
                // every in-tree policy by the CheckedPolicy drives); the
                // release hot path does not re-check unless the
                // strict-contracts feature asks for it. An out-of-range
                // way still cannot corrupt memory — the slot index below
                // bounds-checks.
                #[cfg(feature = "strict-contracts")]
                assert!(v < self.cfg.ways, "policy returned way out of range");
                #[cfg(not(feature = "strict-contracts"))]
                debug_assert!(v < self.cfg.ways, "policy returned way out of range");
                self.policy.on_evict(set, v);
                self.evictions += 1;
                // the set had no free way, so every way holds a valid line
                let victim = self.lines[self.slot(set, v)];
                let wb = victim.dirty.then(|| {
                    self.writebacks += 1;
                    Writeback {
                        block: victim.block,
                    }
                });
                (v, wb)
            }
        };
        self.valid[set] |= 1 << way;
        // way came from first_free_way or a range-checked victim
        self.lines[self.slot(set, way)] = Line {
            block: meta.block,
            ready,
            dirty: false,
            meta: stored,
        };
        self.policy.on_fill(set, way, meta);
        wb
    }

    /// Marks `block` dirty if resident (stores; dirty writeback landing).
    pub fn mark_dirty(&mut self, block: u64) {
        let set = self.set_of(block);
        if let Some(way) = self.find_way(set, block) {
            let slot = self.slot(set, way);
            // slot indexes a valid way found above
            self.lines[slot].dirty = true;
        }
    }

    /// Clears statistics (tags and replacement state are preserved), for
    /// the warmup/measurement boundary.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
        self.prefetch_issued = 0;
        self.prefetch_useful = 0;
        self.writebacks = 0;
        self.evictions = 0;
    }

    /// Whether `block` is resident.
    pub fn contains(&self, block: u64) -> bool {
        let set = self.set_of(block);
        self.find_way(set, block).is_some()
    }

    /// Exports every resident line in set order, ways ascending — the
    /// warm-state snapshot handed across a tier boundary. Statistics and
    /// replacement metadata are not touched.
    pub fn export_lines(&self) -> Vec<CacheLineSnapshot> {
        let mut out = Vec::new();
        for set in 0..self.cfg.sets {
            let mut mask = self.valid[set];
            while mask != 0 {
                let way = mask.trailing_zeros() as usize;
                // way comes from the set's valid mask, so slot(set, way)
                // is in bounds by construction
                let line = &self.lines[self.slot(set, way)];
                out.push((line.block, line.dirty, line.meta.fill));
                mask &= mask - 1;
            }
        }
        out
    }

    /// Replaces the cache's contents with `lines`: the warm-state import
    /// at a tier boundary. Resident lines and in-flight MSHRs are
    /// dropped, then each line is installed through the regular policy
    /// fill path in iteration order. Statistics, writeback/eviction
    /// counters, and prefetch counters are NOT perturbed: a handoff is
    /// not simulated traffic. Replacement metadata beyond the fill class
    /// (e.g. RRPV ages) is reconstructed by the policy's fill hook — a
    /// documented fidelity limit of the handoff.
    pub fn import_lines<I: IntoIterator<Item = CacheLineSnapshot>>(&mut self, lines: I) {
        for v in self.valid.iter_mut() {
            *v = 0;
        }
        self.inflight.retain(|_| false);
        for (block, dirty, class) in lines {
            let set = self.set_of(block);
            if self.find_way(set, block).is_some() {
                continue;
            }
            let meta = CacheMeta::demand(block, class);
            let way = match self.first_free_way(set) {
                Some(w) => w,
                None => {
                    let v = self.policy.victim(set, &meta);
                    #[cfg(feature = "strict-contracts")]
                    assert!(v < self.cfg.ways, "policy returned way out of range");
                    #[cfg(not(feature = "strict-contracts"))]
                    debug_assert!(v < self.cfg.ways, "policy returned way out of range");
                    self.policy.on_evict(set, v);
                    v
                }
            };
            self.valid[set] |= 1 << way;
            // way is a free slot or a checked victim (< ways), so
            // slot(set, way) is in bounds
            self.lines[self.slot(set, way)] = Line {
                block,
                ready: 0,
                dirty,
                meta,
            };
            self.policy.on_fill(set, way, &meta);
        }
    }

    /// Number of resident lines.
    pub fn resident_count(&self) -> usize {
        self.valid.iter().map(|v| v.count_ones() as usize).sum()
    }
}

impl ResetBoundary for Cache {
    fn reset_boundary(&mut self) {
        self.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itpx_policy::Lru;
    use itpx_types::FillClass;

    fn cache(sets: usize, ways: usize) -> Cache {
        Cache::new(
            CacheConfig {
                sets,
                ways,
                latency: 4,
                mshr_entries: 4,
            },
            Lru::new(sets, ways),
        )
    }

    fn m(block: u64) -> CacheMeta {
        CacheMeta::demand(block, FillClass::DataPayload)
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_are_rejected() {
        let _ = cache(42, 12);
    }

    #[test]
    fn validate_accepts_power_of_two_sets() {
        for sets in [1, 2, 64, 2048] {
            CacheConfig {
                sets,
                ways: 8,
                latency: 4,
                mshr_entries: 8,
            }
            .validate();
        }
    }

    #[test]
    fn miss_fill_hit_cycle() {
        let mut c = cache(4, 2);
        assert!(matches!(c.probe(&m(8), 0, true), Probe::Miss(0)));
        c.fill(&m(8), 0, 100, true);
        // Hit before the fill completes waits for it.
        assert_eq!(c.probe(&m(8), 50, true), Probe::Hit(100));
        // Hit after completion pays only the lookup latency.
        assert_eq!(c.probe(&m(8), 200, true), Probe::Hit(204));
        assert_eq!(c.stats().misses(), 1);
        assert_eq!(c.stats().accesses(), 3);
    }

    #[test]
    fn eviction_writes_back_dirty_blocks_only() {
        let mut c = cache(1, 2);
        c.fill(&m(1), 0, 0, true);
        c.fill(&m(2), 0, 0, true);
        c.mark_dirty(1);
        // Filling block 3 evicts LRU block 1 (dirty).
        let wb = c.fill(&m(3), 0, 0, true);
        assert_eq!(wb, Some(Writeback { block: 1 }));
        // Filling block 4 evicts block 2 (clean).
        let wb2 = c.fill(&m(4), 0, 0, true);
        assert_eq!(wb2, None);
        assert_eq!(c.writebacks(), 1);
        assert_eq!(c.evictions(), 2, "both displacements count as evictions");
        c.reset_stats();
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.writebacks(), 0);
    }

    #[test]
    fn mshr_saturation_delays_misses() {
        let mut c = Cache::new(
            CacheConfig {
                sets: 4,
                ways: 2,
                latency: 1,
                mshr_entries: 2,
            },
            Lru::new(4, 2),
        );
        assert!(matches!(c.probe(&m(1), 0, true), Probe::Miss(0)));
        c.fill(&m(1), 0, 50, true);
        assert!(matches!(c.probe(&m(2), 0, true), Probe::Miss(0)));
        c.fill(&m(2), 0, 80, true);
        // Two fills in flight: the third miss waits for the earliest (50).
        assert!(matches!(c.probe(&m(3), 10, true), Probe::Miss(50)));
    }

    #[test]
    fn prefetch_accounting() {
        let mut c = cache(4, 2);
        c.fill(&m(4), 0, 10, false); // prefetch fill
        assert_eq!(c.prefetches_issued(), 1);
        assert_eq!(c.prefetches_useful(), 0);
        assert_eq!(c.stats().accesses(), 0, "prefetches are not demand");
        // First demand touch counts the prefetch as useful.
        assert!(matches!(c.probe(&m(4), 20, true), Probe::Hit(_)));
        assert_eq!(c.prefetches_useful(), 1);
        // Second touch does not double-count.
        let _ = c.probe(&m(4), 30, true);
        assert_eq!(c.prefetches_useful(), 1);
    }

    #[test]
    fn refill_of_resident_block_does_not_evict() {
        let mut c = cache(1, 2);
        c.fill(&m(1), 0, 0, true);
        c.fill(&m(2), 0, 0, true);
        c.fill(&m(1), 0, 0, true); // resident refresh
        assert!(c.contains(1) && c.contains(2));
    }

    /// A policy that violates the `victim() < ways` contract.
    #[cfg(any(debug_assertions, feature = "strict-contracts"))]
    #[derive(Debug)]
    struct OutOfRangeVictim;

    #[cfg(any(debug_assertions, feature = "strict-contracts"))]
    impl itpx_policy::Policy<CacheMeta> for OutOfRangeVictim {
        fn on_fill(&mut self, _: usize, _: usize, _: &CacheMeta) {}
        fn on_hit(&mut self, _: usize, _: usize, _: &CacheMeta) {}
        fn victim(&mut self, _: usize, _: &CacheMeta) -> usize {
            usize::MAX
        }
        fn name(&self) -> &'static str {
            "out-of-range-victim"
        }
        fn meta_bits(&self, _: usize, _: usize) -> u64 {
            0
        }
    }

    /// Debug and strict-contracts builds must catch a policy returning an
    /// out-of-range way at the eviction site (plain release builds defer
    /// to the slice bounds check).
    #[cfg(any(debug_assertions, feature = "strict-contracts"))]
    #[test]
    #[should_panic(expected = "out of range")]
    fn strict_builds_catch_out_of_range_victims() {
        let mut c = Cache::new(
            CacheConfig {
                sets: 1,
                ways: 2,
                latency: 4,
                mshr_entries: 4,
            },
            CachePolicyEngine::boxed(OutOfRangeVictim),
        );
        c.fill(&m(1), 0, 0, true);
        c.fill(&m(2), 0, 0, true);
        // The set is full: the next fill asks the policy for a victim.
        c.fill(&m(3), 0, 0, true);
    }

    #[test]
    fn export_import_roundtrip_preserves_membership_and_dirt() {
        let mut src = cache(4, 2);
        for b in 0..6u64 {
            src.fill(&m(b), 0, 0, true);
        }
        src.mark_dirty(2);
        let exported = src.export_lines();
        assert_eq!(exported.len(), src.resident_count());

        let mut dst = cache(4, 2);
        dst.fill(&m(99), 0, 0, true); // stale content, must be dropped
        dst.import_lines(exported.clone());
        assert_eq!(dst.resident_count(), exported.len());
        assert!(!dst.contains(99));
        for b in 0..6u64 {
            assert!(dst.contains(b));
        }
        // Imports are not simulated traffic.
        assert_eq!(dst.stats().accesses(), 0);
        assert_eq!(dst.evictions(), 0);
        assert_eq!(dst.writebacks(), 0);
        // Dirt survives: evicting block 2 produces a writeback.
        let dirty = dst
            .export_lines()
            .into_iter()
            .find(|(b, _, _)| *b == 2)
            .expect("block 2 resident");
        assert!(dirty.1, "dirty bit carried across the roundtrip");
    }

    #[test]
    fn reset_boundary_clears_all_counters_keeps_lines() {
        let mut c = cache(1, 2);
        c.fill(&m(1), 0, 0, true);
        c.fill(&m(2), 0, 0, true);
        c.mark_dirty(1);
        c.fill(&m(3), 0, 0, true); // evicts dirty block 1
        c.fill(&m(7), 0, 10, false); // prefetch
        assert!(c.writebacks() > 0 && c.evictions() > 0 && c.prefetches_issued() > 0);
        c.reset_boundary();
        assert_eq!(c.stats().accesses(), 0);
        assert_eq!(c.writebacks(), 0);
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.prefetches_issued(), 0);
        assert_eq!(c.prefetches_useful(), 0);
        assert!(c.contains(3) && c.contains(7), "contents preserved");
    }

    #[test]
    fn per_class_stats() {
        let mut c = cache(4, 2);
        let pte = CacheMeta::demand(3, FillClass::DataPte);
        let _ = c.probe(&pte, 0, true);
        let b = c.stats().mpki_breakdown(1000);
        assert!(b.data_pte > 0.0);
        assert_eq!(b.instr, 0.0);
    }
}
