//! A simple DRAM timing model: fixed access latency plus a shared data-bus
//! with finite bandwidth (Table 1: tRP = tRCD = tCAS = 12 DRAM cycles,
//! 12.8 GB/s, against a 4 GHz core clock).

use itpx_types::fingerprint::{Fingerprint, Fnv1a};
use itpx_types::Cycle;

/// DRAM timing parameters, in core cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Access latency (activate + CAS) in core cycles.
    pub latency: u64,
    /// Core cycles the data bus is occupied per 64-byte transfer
    /// (64 B / 12.8 GB/s = 5 ns = 20 cycles at 4 GHz).
    pub bus_interval: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        // tRP + tRCD + tCAS = 36 DRAM cycles ≈ 22.5 ns ≈ 90 core cycles.
        Self {
            latency: 90,
            bus_interval: 20,
        }
    }
}

impl Fingerprint for DramConfig {
    fn fingerprint(&self, h: &mut Fnv1a) {
        h.write_u64(self.latency);
        h.write_u64(self.bus_interval);
    }
}

/// The DRAM device: every read occupies the bus, so bandwidth contention
/// (e.g. between two SMT threads, or demand vs page-walk traffic) emerges
/// naturally.
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    next_free: Cycle,
    reads: u64,
    writes: u64,
    wait: u64,
}

impl Dram {
    /// Creates a DRAM model.
    pub fn new(cfg: DramConfig) -> Self {
        Self {
            cfg,
            next_free: 0,
            reads: 0,
            writes: 0,
            wait: 0,
        }
    }

    /// Performs a 64-byte read; returns the data-available cycle.
    pub fn read(&mut self, now: Cycle) -> Cycle {
        let start = now.max(self.next_free);
        self.wait += start - now;
        self.next_free = start + self.cfg.bus_interval;
        self.reads += 1;
        start + self.cfg.latency
    }

    /// Performs a 64-byte writeback; occupies the bus but nothing waits
    /// for it.
    pub fn write(&mut self, now: Cycle) {
        let start = now.max(self.next_free);
        self.next_free = start + self.cfg.bus_interval;
        self.writes += 1;
    }

    /// Total reads served.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Total writebacks absorbed.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Clears traffic counters (bus state is preserved). Named to match
    /// the `reset_stats` convention every other structure follows.
    pub fn reset_stats(&mut self) {
        self.reads = 0;
        self.writes = 0;
        self.wait = 0;
    }

    /// Mean cycles reads waited for the bus.
    pub fn avg_queue_wait(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.wait as f64 / self.reads as f64
        }
    }
}

impl Default for Dram {
    fn default() -> Self {
        Self::new(DramConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolated_read_pays_latency() {
        let mut d = Dram::default();
        assert_eq!(d.read(100), 190);
    }

    #[test]
    fn back_to_back_reads_queue_on_the_bus() {
        let mut d = Dram::default();
        let a = d.read(0);
        let b = d.read(0);
        assert_eq!(a, 90);
        assert_eq!(b, 20 + 90, "second read waits one bus interval");
        assert!(d.avg_queue_wait() > 0.0);
    }

    #[test]
    fn writes_occupy_bus_but_do_not_block_caller() {
        let mut d = Dram::default();
        d.write(0);
        let r = d.read(0);
        assert_eq!(r, 20 + 90);
        assert_eq!(d.writes(), 1);
        assert_eq!(d.reads(), 1);
    }

    #[test]
    fn idle_gaps_do_not_accumulate_bandwidth() {
        let mut d = Dram::default();
        let a = d.read(0);
        let b = d.read(1000);
        assert_eq!(a, 90);
        assert_eq!(b, 1090, "bus long since free");
    }
}
