//! Memory substrate for the `itpx` simulator: set-associative caches with
//! MSHR-aware timing, hardware prefetchers, a DRAM model, and a
//! depth-configurable level-chain hierarchy whose default preset is the
//! three-level machine of the paper's Table 1.
//!
//! The timing model is *latency-propagating*: each access walks the
//! hierarchy functionally, updating tags, replacement state, and
//! statistics, and returns the cycle at which its data is available.
//! In-flight fills are modeled by a per-line `ready` cycle (an access that
//! hits a line still being filled waits for it — the behavior an MSHR merge
//! produces), and MSHR capacity delays new misses until a register frees
//! up. DESIGN.md discusses why this substitution for a cycle-stepped queue
//! model preserves the paper's comparisons.
//!
//! Every fill carries a [`itpx_types::FillClass`] so translation-aware
//! policies (xPTP, PTP, T-DRRIP) can distinguish PTE blocks, and the
//! per-class MPKI breakdowns of the paper's Figure 4 fall out of the same
//! bookkeeping.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod cache;
pub mod dram;
pub mod hierarchy;
pub mod prefetch;

pub use cache::{Cache, CacheConfig, CacheLineSnapshot, Probe};
pub use dram::{Dram, DramConfig};
pub use hierarchy::{
    CacheLevelConfig, Hierarchy, HierarchyConfig, HierarchyPolicies, LevelHooks, MAX_SHARED_LEVELS,
};
pub use prefetch::{NextLinePrefetcher, StrideCandidates, StridePrefetcher};
