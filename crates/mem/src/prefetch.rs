//! Hardware prefetchers of the baseline configuration (Table 1): a
//! next-line prefetcher at the L1D and a PC-indexed stride prefetcher at
//! the L2C. (The L1I's FDIP-style fetch-directed prefetching lives in the
//! front end, `itpx-cpu`, because it follows the fetch target queue.)
//!
//! Prefetchers only *nominate* block addresses; the hierarchy issues the
//! fills, so all bandwidth and MSHR effects are shared with demand traffic.

/// Degree-1 next-line prefetcher.
#[derive(Debug, Clone, Default)]
pub struct NextLinePrefetcher {
    issued: u64,
}

impl NextLinePrefetcher {
    /// Creates the prefetcher.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the block to prefetch for a demand access to `block`.
    pub fn observe(&mut self, block: u64) -> Option<u64> {
        self.issued += 1;
        Some(block + 1)
    }

    /// Number of candidates nominated.
    pub fn nominated(&self) -> u64 {
        self.issued
    }

    /// Zeroes the nomination counter (used at the warmup/measurement
    /// boundary).
    pub fn reset_stats(&mut self) {
        self.issued = 0;
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct StrideEntry {
    tag: u64,
    last_block: u64,
    stride: i64,
    confidence: u8,
}

/// Prefetch candidates nominated by one [`StridePrefetcher::observe`] call,
/// stored inline so the per-access path never touches the heap.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StrideCandidates {
    blocks: [u64; StridePrefetcher::MAX_DEGREE],
    len: usize,
}

impl StrideCandidates {
    /// Candidate block addresses, in nomination order.
    pub fn as_slice(&self) -> &[u64] {
        &self.blocks[..self.len]
    }

    /// `true` when no candidates were nominated.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl IntoIterator for StrideCandidates {
    type Item = u64;
    type IntoIter = core::iter::Take<core::array::IntoIter<u64, { StridePrefetcher::MAX_DEGREE }>>;

    fn into_iter(self) -> Self::IntoIter {
        self.blocks.into_iter().take(self.len)
    }
}

/// PC-indexed stride prefetcher (degree 2, confidence-gated).
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    table: Vec<StrideEntry>,
    degree: usize,
}

impl StridePrefetcher {
    /// Confidence needed before prefetches are issued.
    const THRESHOLD: u8 = 2;

    /// Largest supported prefetch degree (the baseline uses 2; the inline
    /// candidate buffer is sized for this).
    pub const MAX_DEGREE: usize = 4;

    /// Creates a stride prefetcher with `entries` table entries (rounded up
    /// to a power of two) and the given prefetch degree (clamped to
    /// `1..=MAX_DEGREE`).
    pub fn new(entries: usize, degree: usize) -> Self {
        Self {
            table: vec![StrideEntry::default(); entries.next_power_of_two().max(16)],
            degree: degree.clamp(1, Self::MAX_DEGREE),
        }
    }

    /// Observes a demand access from instruction `pc` to `block`; returns
    /// blocks to prefetch (empty until a stable stride is seen).
    pub fn observe(&mut self, pc: u64, block: u64) -> StrideCandidates {
        let mut out = StrideCandidates::default();
        let idx = ((pc >> 2) as usize) & (self.table.len() - 1);
        let e = &mut self.table[idx];
        let tag = pc;
        if e.tag != tag {
            *e = StrideEntry {
                tag,
                last_block: block,
                stride: 0,
                confidence: 0,
            };
            return out;
        }
        let stride = block as i64 - e.last_block as i64;
        if stride == e.stride && stride != 0 {
            e.confidence = e.confidence.saturating_add(1).min(3);
        } else {
            e.stride = stride;
            e.confidence = 0;
        }
        e.last_block = block;
        if e.confidence >= Self::THRESHOLD {
            for i in 1..=self.degree as i64 {
                if let Some(cand) = block.checked_add_signed(e.stride * i) {
                    out.blocks[out.len] = cand;
                    out.len += 1;
                }
            }
        }
        out
    }
}

impl Default for StridePrefetcher {
    fn default() -> Self {
        Self::new(256, 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_line_nominates_successor() {
        let mut p = NextLinePrefetcher::new();
        assert_eq!(p.observe(100), Some(101));
        assert_eq!(p.nominated(), 1);
    }

    #[test]
    fn stride_detects_after_confidence_builds() {
        let mut p = StridePrefetcher::new(64, 2);
        let pc = 0x400;
        assert!(p.observe(pc, 10).is_empty()); // allocate
        assert!(p.observe(pc, 14).is_empty()); // stride 4, conf 0
        assert!(p.observe(pc, 18).is_empty()); // conf 1
        let out = p.observe(pc, 22); // conf 2 → fire
        assert_eq!(out.as_slice(), &[26, 30]);
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut p = StridePrefetcher::new(64, 1);
        let pc = 0x8;
        p.observe(pc, 0);
        p.observe(pc, 4);
        p.observe(pc, 8);
        assert!(!p.observe(pc, 12).is_empty());
        assert!(p.observe(pc, 100).is_empty(), "stride broke");
        assert!(p.observe(pc, 104).is_empty(), "confidence rebuilding");
    }

    #[test]
    fn zero_stride_never_fires() {
        let mut p = StridePrefetcher::new(64, 2);
        for _ in 0..10 {
            assert!(p.observe(0x10, 5).is_empty());
        }
    }

    #[test]
    fn different_pcs_use_different_entries() {
        let mut p = StridePrefetcher::new(64, 1);
        p.observe(0x100, 0);
        p.observe(0x100, 8);
        p.observe(0x104, 1000); // different pc, same table? different idx
        p.observe(0x100, 16);
        let out = p.observe(0x100, 24);
        assert!(!out.is_empty(), "interleaved PC did not destroy the stride");
    }
}
