//! The timing engine: a timestamp-dataflow out-of-order core.
//!
//! Instead of stepping every pipeline stage every cycle, each dynamic
//! instruction is assigned the cycle at which each of its lifecycle events
//! completes (fetch → dispatch → ready → complete → retire), with
//! structural limits enforced along the way:
//!
//! * **front end** — fetch groups of `fetch_width` instructions per cycle
//!   from one cache block; crossing into a new block performs ITLB
//!   translation and an L1I access. Pipelining hides hit latencies; only
//!   the *excess* latency of misses stalls fetch, and the excess caused by
//!   instruction-translation misses is accounted separately (the paper's
//!   Figure 1 metric). FDIP prefetches upcoming FTQ blocks into the L1I.
//! * **back end** — ROB occupancy bounds in-flight instructions (the slot
//!   of instruction *i* frees when instruction *i − ROB* retires);
//!   register dependencies come from the trace; loads translate through
//!   DTLB/STLB and access the hierarchy at their ready time, so their
//!   latency overlaps with independent work — the out-of-order latency
//!   hiding that makes data translation cheaper than instruction
//!   translation, as the paper observes.
//! * **branches** — a hashed perceptron predicts directions; a
//!   misprediction redirects fetch after the branch resolves.
//! * **SMT** — two threads interleave fetch cycles (each thread gets every
//!   other fetch slot), split the ROB, and share every TLB/cache/walker
//!   structure; the engine advances whichever thread is earliest in
//!   simulated time.

use crate::branch::HashedPerceptron;
use crate::functional::FunctionalMachine;
use crate::output::{LevelReport, SimulationOutput, ThreadOutput, WalkerSummary};
use crate::system::System;
use itpx_trace::{
    ContextSchedule, InstructionStream, SwitchPolicy, TierSchedule, TraceGenerator, TraceInst,
    WorkloadSource, WorkloadSpec,
};
use itpx_types::{
    Asid, Cycle, LevelId, PageSize, ResetBoundary, ThreadId, TranslationKind, VirtAddr,
};
use std::collections::VecDeque;

/// Ring size for dependency tracking (dep distances are `u8`).
const DEP_RING: usize = 256;

/// Cap on the functionally-executed warm tail of a fast-forward segment.
///
/// A fast-forward of N instructions splits into a *free skip* of
/// `N - min(N, FF_WARM_CAP)` (the phase fork re-seeds the generator, so
/// skipped instructions cost nothing) and a *warm tail* executed through
/// the functional machine to refresh TLB/cache/predictor state. 250k
/// instructions is far past the warm-state half-life of every Table 1
/// structure, so a longer tail changes nothing but wall-clock.
const FF_WARM_CAP: u64 = 250_000;

/// One segment of a tiered run (the engine's execution-tier abstraction).
///
/// A run is a schedule of segments: [`Tier::FastForward`] advances
/// program state through the functional machine at ~7× cycle-model speed
/// (plus the free skip beyond [`FF_WARM_CAP`]), and [`Tier::Window`]
/// measures cycle-accurately. [`Tier::segments`] lowers a
/// [`TierSchedule`] into this form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Functional fast-forward covering `instructions` program
    /// instructions (warm-state handoff at both edges).
    FastForward {
        /// Program instructions the segment covers.
        instructions: u64,
    },
    /// Cycle-accurate measurement window of `instructions` instructions.
    Window {
        /// Instructions measured by the segment.
        instructions: u64,
    },
}

impl Tier {
    /// Lowers a schedule into its segment sequence: `windows` repetitions
    /// of (fast-forward, window), fast-forwards omitted when the gap is
    /// zero. The flat schedule lowers to no segments — the engine runs
    /// the classic single-window path instead.
    pub fn segments(schedule: &TierSchedule) -> Vec<Tier> {
        let mut out = Vec::new();
        if schedule.is_flat() {
            return out;
        }
        for _ in 0..schedule.windows {
            if schedule.fast_forward > 0 {
                out.push(Tier::FastForward {
                    instructions: schedule.fast_forward,
                });
            }
            out.push(Tier::Window {
                instructions: schedule.window,
            });
        }
        out
    }
}

/// Tenant `t`'s workload: the same statistical shape as `spec` with the
/// layout re-seeded, so every tenant runs over its own concrete pages
/// (tenant 0 keeps the spec verbatim — its stream IS the original one).
fn tenant_spec(spec: &WorkloadSpec, tenant: u16) -> WorkloadSpec {
    let mut s = spec.clone();
    s.seed = spec.seed ^ (tenant as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    s
}

/// Live state of a multi-tenant [`ContextSchedule`].
///
/// The schedule clock counts *executed program instructions* across both
/// execution tiers (cycle windows and functional fast-forwards advance it
/// identically), so switches, shootdowns, and churn fire at the same
/// program points no matter how a run is tiered. Cadence events
/// (shootdown/churn) target the data VA of the instruction they fire on —
/// well-defined in both tiers and guaranteed to hit live translations.
struct ContextState {
    schedule: ContextSchedule,
    /// Unmounted tenant streams (`None` = currently mounted on the pipe).
    streams: Vec<Option<Box<dyn InstructionStream>>>,
    /// Tenant currently executing.
    current: usize,
    /// Executed program instructions, both tiers.
    clock: u64,
    next_switch: u64,
    next_shootdown: u64,
    next_churn: u64,
}

impl std::fmt::Debug for ContextState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ContextState")
            .field("schedule", &self.schedule)
            .field("current", &self.current)
            .field("clock", &self.clock)
            .finish_non_exhaustive()
    }
}

impl ContextState {
    /// Whether a switch boundary has been reached.
    fn switch_due(&self) -> bool {
        self.clock >= self.next_switch
    }

    /// Advances to the next tenant round-robin: remounts the pipe's
    /// instruction stream and flushes its front-end lookahead (the FTQ
    /// holds the outgoing tenant's speculative path — a context switch
    /// discards it). Returns the incoming tenant's ASID; the caller
    /// applies the tier-appropriate TLB/PSC effects.
    fn rotate(&mut self, pipe: &mut ThreadPipe) -> Asid {
        self.next_switch += self.schedule.quantum;
        let next = (self.current + 1) % self.streams.len();
        // next < streams.len() by the modulo, and every slot except the
        // executing tenant's holds Some by the mount/unmount discipline.
        let incoming = self.streams[next].take().expect("unmounted tenant stream");
        self.streams[self.current] = Some(std::mem::replace(&mut pipe.stream, incoming));
        self.current = next;
        pipe.lookahead.clear();
        pipe.cur_block = u64::MAX;
        pipe.group_count = 0;
        // itpx-allow: arith-width streams.len() == schedule.tenants, a u16, so the index fits
        Asid(next as u16)
    }

    /// The executing tenant's ASID.
    fn asid(&self) -> Asid {
        // itpx-allow: arith-width current indexes streams, whose length is the u16 tenant count
        Asid(self.current as u16)
    }

    /// Whether switches flush the incoming tenant's cached translations.
    fn flushes(&self) -> bool {
        self.schedule.policy == SwitchPolicy::FlushAsid
    }

    /// Whether the shootdown cadence fires at the current clock (consumes
    /// the event when it does).
    fn shootdown_due(&mut self) -> bool {
        if self.schedule.shootdown_every > 0 && self.clock >= self.next_shootdown {
            self.next_shootdown += self.schedule.shootdown_every;
            true
        } else {
            false
        }
    }

    /// Whether the churn cadence fires at the current clock (consumes the
    /// event when it does).
    fn churn_due(&mut self) -> bool {
        if self.schedule.churn_every > 0 && self.clock >= self.next_churn {
            self.next_churn += self.schedule.churn_every;
            true
        } else {
            false
        }
    }

    /// Advances the clock across a free skip of `skip` instructions.
    /// Cadence events are executed-instruction driven, so skipped spans
    /// advance their counters without firing (documented limit); switch
    /// boundaries still count — the caller rotates once per crossing.
    fn skip(&mut self, skip: u64) -> u64 {
        self.clock += skip;
        let crossings = self
            .clock
            .saturating_sub(self.next_switch)
            .checked_div(self.schedule.quantum)
            .map_or(0, |full| full + u64::from(self.clock >= self.next_switch));
        for (every, next) in [
            (self.schedule.shootdown_every, &mut self.next_shootdown),
            (self.schedule.churn_every, &mut self.next_churn),
        ] {
            if every > 0 && *next <= self.clock {
                *next += (self.clock - *next) / every * every + every;
            }
        }
        crossings
    }
}

#[derive(Debug)]
struct ThreadPipe {
    id: ThreadId,
    name: String,
    /// The synthetic spec behind `stream`, kept so fast-forward segments
    /// can phase-fork the generator (`None` for trace replays, which
    /// cannot be tiered).
    spec: Option<WorkloadSpec>,
    stream: Box<dyn InstructionStream>,
    lookahead: VecDeque<TraceInst>,
    bp: HashedPerceptron,
    va_offset: u64,
    // Front-end state.
    frontend_time: Cycle,
    cur_block: u64,
    group_count: usize,
    recent_pf: [u64; 64],
    // Back-end state.
    completions: Vec<Cycle>,
    retire_ring: Vec<Cycle>,
    rob_size: usize,
    last_retire: Cycle,
    retire_cycle: Cycle,
    retired_this_cycle: usize,
    produced: u64,
    /// New-block fetches left to run without FDIP after a misprediction
    /// (the prefetcher was off on the wrong path).
    fdip_suppress: u8,
    // Measurement.
    warmup: u64,
    target: u64,
    meas_start_cycle: Cycle,
    itrans_stall: u64,
    mispredicts: u64,
    end_cycle: Option<Cycle>,
}

impl ThreadPipe {
    fn new(source: WorkloadSource, id: ThreadId, rob_size: usize) -> Self {
        let name = source.name().to_string();
        let warmup = source.warmup();
        let spec = match &source {
            WorkloadSource::Synthetic(s) => Some(s.clone()),
            WorkloadSource::Replay { .. } => None,
        };
        // A tiered schedule defines the measured instruction count itself
        // (windows × window); the flat schedule measures `instructions`.
        let tiers = spec.as_ref().map_or_else(TierSchedule::flat, |s| s.tiers);
        let target = if tiers.is_flat() {
            warmup + source.instructions()
        } else {
            warmup + tiers.measured_instructions()
        };
        Self {
            id,
            name,
            spec,
            stream: source.into_stream(),
            lookahead: VecDeque::new(),
            bp: HashedPerceptron::new(),
            va_offset: (id.0 as u64) << 44,
            frontend_time: 0,
            cur_block: u64::MAX,
            group_count: 0,
            recent_pf: [u64::MAX; 64],
            fdip_suppress: 0,
            completions: vec![0; DEP_RING],
            retire_ring: vec![0; rob_size],
            rob_size,
            last_retire: 0,
            retire_cycle: 0,
            retired_this_cycle: 0,
            produced: 0,
            warmup,
            target,
            meas_start_cycle: 0,
            itrans_stall: 0,
            mispredicts: 0,
            end_cycle: None,
        }
    }

    fn warmed(&self) -> bool {
        self.produced >= self.warmup
    }

    fn finished(&self) -> bool {
        self.produced >= self.target
    }

    fn tiers(&self) -> TierSchedule {
        self.spec
            .as_ref()
            .map_or_else(TierSchedule::flat, |s| s.tiers)
    }
}

impl ResetBoundary for ThreadPipe {
    /// The per-thread half of a measurement boundary: zero the measured
    /// counters and pin the measurement clock to the retire frontier.
    /// Pipeline state (FTQ, predictor, recency of everything) is kept.
    fn reset_boundary(&mut self) {
        self.meas_start_cycle = self.last_retire;
        self.itrans_stall = 0;
        self.mispredicts = 0;
    }
}

/// The multi-thread simulation engine.
#[derive(Debug)]
pub struct Engine {
    system: System,
    threads: Vec<ThreadPipe>,
    /// Multi-tenant schedule state (`None` = classic single-tenant run).
    ctx: Option<ContextState>,
}

impl Engine {
    /// Creates an engine running `specs` (one per hardware thread, 1 or 2)
    /// on `system`.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty or has more than two entries.
    pub fn new(system: System, specs: &[WorkloadSpec]) -> Self {
        Self::from_sources(
            system,
            specs.iter().cloned().map(WorkloadSource::from).collect(),
        )
    }

    /// Creates an engine from arbitrary instruction sources (synthetic
    /// generators or recorded-trace replays).
    ///
    /// # Panics
    ///
    /// Panics if `sources` is empty or has more than two entries.
    pub fn from_sources(system: System, sources: Vec<WorkloadSource>) -> Self {
        assert!(
            (1..=2).contains(&sources.len()),
            "1 or 2 hardware threads supported"
        );
        let rob_per_thread = system.config.rob_entries / sources.len();
        let threads: Vec<ThreadPipe> = sources
            .into_iter()
            .enumerate()
            .map(|(i, s)| ThreadPipe::new(s, ThreadId(i as u8), rob_per_thread))
            .collect();
        let mut system = system;
        let contexts = threads[0]
            .spec
            .as_ref()
            .map_or_else(ContextSchedule::flat, |s| s.contexts);
        let ctx = if contexts.is_flat() {
            None
        } else {
            assert!(
                threads.len() == 1,
                "multi-tenant schedules support a single hardware thread"
            );
            let spec = threads[0]
                .spec
                .as_ref()
                // Unreachable: replay sources carry no spec, so their
                // schedule is flat and this branch never runs.
                .expect("multi-tenant runs need a synthetic workload");
            system.configure_address_spaces(
                contexts.tenants as usize,
                contexts.global_fraction,
                contexts.global_seed,
            );
            // Tenant 0's stream is the pipe's own; slots hold the rest.
            let streams = (0..contexts.tenants)
                .map(|t| {
                    (t > 0).then(|| {
                        Box::new(TraceGenerator::new(&tenant_spec(spec, t)))
                            as Box<dyn InstructionStream>
                    })
                })
                .collect();
            Some(ContextState {
                schedule: contexts,
                streams,
                current: 0,
                clock: 0,
                next_switch: contexts.quantum,
                next_shootdown: contexts.shootdown_every,
                next_churn: contexts.churn_every,
            })
        };
        Self {
            system,
            threads,
            ctx,
        }
    }

    /// Executes one instruction on thread `ti`.
    fn step(&mut self, ti: usize, smt_active: bool) {
        // A due context switch lands before the instruction: rotate the
        // tenant streams and apply the switch to the cycle structures.
        if let Some(ctx) = self.ctx.as_mut() {
            if ctx.switch_due() {
                let flush = ctx.flushes();
                let asid = ctx.rotate(&mut self.threads[ti]);
                self.system.context_switch(asid, flush);
            }
        }
        let cfg = self.system.config;
        let sys = &mut self.system;
        let t = &mut self.threads[ti];
        let mut ctx = self.ctx.as_mut();

        // Keep the FTQ lookahead full.
        while t.lookahead.len() < cfg.ftq_entries {
            let next = t.stream.next_inst();
            // itpx-allow: hot-alloc ring bounded by ftq_entries; the deque's capacity stabilizes after the first refill
            t.lookahead.push_back(next);
        }
        // the refill loop above guarantees ftq_entries >= 1 elements
        let inst = t.lookahead.pop_front().expect("non-empty lookahead");
        let pc = inst.pc + t.va_offset;

        // ---- Fetch ----
        let quantum: u64 = if smt_active { 2 } else { 1 };
        let block = pc >> 6;
        if block != t.cur_block {
            t.cur_block = block;
            t.group_count = 1;
            t.frontend_time += quantum;
            let tr = sys.translate(
                VirtAddr::new(pc),
                TranslationKind::Instruction,
                pc,
                t.id,
                t.frontend_time,
            );
            // Stall attributable to instruction address translation: the
            // excess beyond a pipelined ITLB hit.
            let tstall = tr.done.saturating_sub(t.frontend_time + cfg.itlb.latency);
            t.itrans_stall += tstall;
            let fdone = sys.hierarchy.instr_fetch(tr.pa, pc, t.id, tr.done);
            let fstall = fdone.saturating_sub(tr.done + cfg.hierarchy.l1i.latency);
            t.frontend_time += tstall + fstall;

            // FDIP: prefetch upcoming distinct blocks along the FTQ —
            // unless a recent misprediction means the prefetcher was
            // running down the wrong path.
            if t.fdip_suppress > 0 {
                t.fdip_suppress -= 1;
            } else {
                let mut seen = block;
                let mut depth = 0usize;
                let mut nominations: [u64; 16] = [u64::MAX; 16];
                for la in t.lookahead.iter() {
                    let b = (la.pc + t.va_offset) >> 6;
                    if b != seen {
                        seen = b;
                        let slot = (b as usize) & 63;
                        if t.recent_pf[slot] != b {
                            t.recent_pf[slot] = b;
                            // .min(15) clamps into the 16-slot array
                            nominations[depth.min(15)] = b;
                        }
                        depth += 1;
                        if depth >= cfg.fdip_depth {
                            break;
                        }
                    }
                }
                for &b in nominations.iter().filter(|&&b| b != u64::MAX) {
                    let pa = sys.fdip_target(VirtAddr::new(b << 6), t.id);
                    sys.hierarchy.prefetch_instr(pa, t.id, t.frontend_time);
                }
            }
        } else {
            t.group_count += 1;
            if t.group_count > cfg.fetch_width {
                t.frontend_time += quantum;
                t.group_count = 1;
            }
        }
        let fetch_done = t.frontend_time;

        // ---- Dispatch: ROB slot of instruction (produced - rob_size). ----
        let rob_idx = (t.produced % t.rob_size as u64) as usize;
        let dispatch = fetch_done.max(t.retire_ring[rob_idx]);

        // ---- Ready: register dependencies. ----
        let mut ready = dispatch;
        for d in [inst.src1_dist, inst.src2_dist] {
            let d = d as u64;
            if d > 0 && d <= t.produced {
                // % DEP_RING keeps the index inside the ring
                ready = ready.max(t.completions[((t.produced - d) % DEP_RING as u64) as usize]);
            }
        }

        // ---- Execute. ----
        let completion = if let Some(m) = inst.mem {
            let va = VirtAddr::new(m.addr + t.va_offset);
            // Due cadence events target this instruction's VA *before* it
            // translates, so the access itself exercises the refill.
            if let Some(c) = ctx.as_deref_mut() {
                if c.shootdown_due() {
                    sys.shootdown(va, c.asid());
                }
                if c.churn_due() {
                    sys.churn_region(t.id, va.vpn(PageSize::Huge2M).0);
                }
            }
            let tr = sys.translate(va, TranslationKind::Data, pc, t.id, ready);
            let mdone = sys
                .hierarchy
                .data_access(tr.pa, pc, t.id, m.store, tr.stlb_miss, tr.done);
            if m.store {
                // Stores complete into the store buffer; the cache access
                // has already updated state and timing downstream.
                ready + 1
            } else {
                mdone
            }
        } else {
            ready + inst.exec_latency.max(1) as u64
        };

        // ---- Branch resolution. ----
        if let Some(b) = inst.branch {
            let correct = t.bp.update(pc, b.taken);
            if !correct {
                t.mispredicts += 1;
                t.frontend_time = t.frontend_time.max(completion + cfg.mispredict_penalty);
                t.cur_block = u64::MAX;
                t.group_count = 0;
                t.fdip_suppress = 2;
            }
        }

        // ---- In-order retire with bandwidth. ----
        let mut retire = completion.max(t.last_retire);
        if retire == t.retire_cycle {
            if t.retired_this_cycle >= cfg.retire_width {
                retire += 1;
                t.retire_cycle = retire;
                t.retired_this_cycle = 1;
            } else {
                t.retired_this_cycle += 1;
            }
        } else {
            t.retire_cycle = retire;
            t.retired_this_cycle = 1;
        }
        t.last_retire = retire;
        t.retire_ring[rob_idx] = retire;
        // % DEP_RING keeps the index inside the ring
        t.completions[(t.produced % DEP_RING as u64) as usize] = completion;
        t.produced += 1;
        if let Some(c) = ctx {
            c.clock += 1;
        }
        sys.on_retire(1);
    }

    /// The warmup → measurement boundary: statistics reset everywhere,
    /// warm contents kept (one [`ResetBoundary`] cascade instead of the
    /// three hand-rolled resets this consolidates).
    fn measurement_boundary(&mut self) {
        self.system.reset_boundary();
        for t in &mut self.threads {
            t.reset_boundary();
        }
    }

    /// Runs one functional fast-forward segment on thread `ti`, covering
    /// `instructions` program instructions.
    ///
    /// The warm stream is a *phase fork* of the thread's spec (same
    /// layout tables, execution RNG re-seeded by `salt`), so the real
    /// stream is not advanced and measurement windows stay contiguous —
    /// the fast-forward models "elsewhere in the same program phase".
    /// Everything beyond the last [`FF_WARM_CAP`] instructions is a free
    /// skip; the warm tail runs through a [`FunctionalMachine`] snapshot
    /// of the cycle structures plus a clone of the branch predictor, and
    /// both hand their state back at the segment edge. No simulated time
    /// passes and no statistics accrue.
    fn fast_forward(&mut self, ti: usize, salt: u64, instructions: u64) {
        let spec = self.threads[ti]
            .spec
            .clone()
            // Unreachable invariant: non-synthetic sources carry no
            // schedule, so tiers() is flat and this path never runs.
            .expect("tiered runs need a synthetic workload");
        let mut fun = FunctionalMachine::from_cycle(&self.system);
        let mut warm_bp = self.threads[ti].bp.clone();
        let warm = instructions.min(FF_WARM_CAP);
        let va_offset = self.threads[ti].va_offset;
        let tid = self.threads[ti].id;
        // One phase-forked warm stream per tenant (a single one when the
        // run is single-tenant): the schedule keeps firing through the
        // fast-forward so both tiers see switches at the same program
        // points.
        let mut gens: Vec<TraceGenerator> = match self.ctx.as_ref() {
            Some(ctx) => (0..ctx.schedule.tenants)
                .map(|t| TraceGenerator::phase_fork(&tenant_spec(&spec, t), salt))
                .collect(),
            None => vec![TraceGenerator::phase_fork(&spec, salt)],
        };
        // The free skip advances the schedule clock too: switch
        // boundaries crossed inside it still rotate tenants (and flush,
        // per policy); cadence events are executed-instruction driven, so
        // they re-arm without firing.
        if let Some(ctx) = self.ctx.as_mut() {
            let crossings = ctx.skip(instructions - warm);
            for _ in 0..crossings {
                let flush = ctx.flushes();
                let asid = ctx.rotate(&mut self.threads[ti]);
                fun.context_switch(asid, flush);
                self.system.address_space_mut(tid).switch_to(asid);
            }
        }
        let mut cur_block = u64::MAX;
        for _ in 0..warm {
            if let Some(ctx) = self.ctx.as_mut() {
                if ctx.switch_due() {
                    let flush = ctx.flushes();
                    let asid = ctx.rotate(&mut self.threads[ti]);
                    fun.context_switch(asid, flush);
                    self.system.address_space_mut(tid).switch_to(asid);
                    cur_block = u64::MAX;
                }
            }
            let tenant = self.ctx.as_ref().map_or(0, |c| c.current);
            let inst = gens[tenant].next_inst();
            let pc = inst.pc + va_offset;
            let block = pc >> 6;
            if block != cur_block {
                cur_block = block;
                fun.fetch(self.system.address_space_mut(tid), VirtAddr::new(pc));
            }
            if let Some(m) = inst.mem {
                let va = VirtAddr::new(m.addr + va_offset);
                // Cadence events mirror the cycle tier: target the VA of
                // the instruction they fire on, before it translates.
                if let Some(ctx) = self.ctx.as_mut() {
                    if ctx.shootdown_due() {
                        fun.shootdown(va, ctx.asid());
                    }
                    if ctx.churn_due() {
                        let region = va.vpn(PageSize::Huge2M).0;
                        if self
                            .system
                            .address_space_mut(tid)
                            .churn_region(region)
                            .is_some()
                        {
                            fun.invalidate_region(region);
                        }
                    }
                }
                if m.store {
                    fun.store(self.system.address_space_mut(tid), va);
                } else {
                    fun.load(self.system.address_space_mut(tid), va);
                }
            }
            if let Some(b) = inst.branch {
                warm_bp.update(pc, b.taken);
            }
            if let Some(ctx) = self.ctx.as_mut() {
                ctx.clock += 1;
            }
        }
        self.threads[ti].bp.import_state(&warm_bp);
        fun.seed_cycle(&mut self.system);
        #[cfg(feature = "strict-contracts")]
        fun.verify_seeded(&self.system);
    }

    /// Runs warmup and measurement, returning the collected results.
    pub fn run(mut self, preset: &str, llc_policy: &str) -> SimulationOutput {
        let smt = self.threads.len() == 2;
        // Phase 1: warm every thread up, interleaved by simulated time.
        loop {
            let next = self
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| !t.warmed())
                .min_by_key(|(_, t)| t.frontend_time)
                .map(|(i, _)| i);
            match next {
                Some(i) => self.step(i, smt),
                None => break,
            }
        }
        self.measurement_boundary();
        let schedule = self.threads[0].tiers();
        if schedule.is_flat() {
            // Phase 2 (classic): run to each thread's target.
            loop {
                let next = self
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| !t.finished())
                    .min_by_key(|(_, t)| t.frontend_time)
                    .map(|(i, _)| i);
                match next {
                    Some(i) => {
                        self.step(i, smt);
                        let t = &mut self.threads[i];
                        if t.finished() && t.end_cycle.is_none() {
                            t.end_cycle = Some(t.last_retire);
                        }
                    }
                    None => break,
                }
            }
        } else {
            // Phase 2 (tiered): alternate fast-forward and measurement
            // segments. Fast-forwards consume no simulated time and no
            // statistics, so the measured counters aggregate exactly the
            // windowed instructions — same invariant as the classic path,
            // over a far longer program horizon.
            assert!(
                self.threads.len() == 1,
                "tiered schedules support a single hardware thread"
            );
            let mut salt = 0u64;
            for tier in Tier::segments(&schedule) {
                match tier {
                    Tier::FastForward { instructions } => {
                        self.fast_forward(0, salt, instructions);
                        salt += 1;
                    }
                    Tier::Window { instructions } => {
                        let until = self.threads[0].produced + instructions;
                        while self.threads[0].produced < until {
                            self.step(0, smt);
                        }
                    }
                }
            }
            let t = &mut self.threads[0];
            t.end_cycle = Some(t.last_retire);
        }

        let threads = self
            .threads
            .iter()
            .map(|t| ThreadOutput {
                workload: t.name.clone(),
                instructions: t.target - t.warmup,
                cycles: t
                    .end_cycle
                    // reports are only built after every thread finished
                    .expect("thread finished")
                    .saturating_sub(t.meas_start_cycle)
                    .max(1),
                itrans_stall_cycles: t.itrans_stall,
                mispredictions: t.mispredicts,
            })
            .collect();

        let sys = &self.system;
        SimulationOutput {
            preset: preset.to_string(),
            llc_policy: llc_policy.to_string(),
            threads,
            tiers: schedule,
            itlb: sys.itlb().stats().clone(),
            dtlb: sys.dtlb().stats().clone(),
            stlb: sys.stlb().stats(),
            l1i: sys.hierarchy.stats_of(LevelId::L1I),
            l1d: sys.hierarchy.stats_of(LevelId::L1D),
            l2c: sys.hierarchy.stats_of(LevelId::L2C),
            llc: sys.hierarchy.stats_of(LevelId::Llc),
            cache_levels: sys
                .hierarchy
                .levels()
                .map(|(id, cache)| LevelReport {
                    id,
                    stats: cache.stats().clone(),
                })
                .collect(),
            walker: WalkerSummary {
                walks: sys.walker().walks(),
                instruction_walks: sys.walker().instruction_walks(),
                data_walks: sys.walker().data_walks(),
                avg_latency: sys.walker().avg_latency(),
                avg_memory_refs: sys.walker().avg_memory_refs(),
            },
            dram_reads: sys.hierarchy.dram().reads(),
            dram_writes: sys.hierarchy.dram().writes(),
            xptp_enabled_fraction: sys.xptp_enabled_fraction(),
        }
    }
}
