//! The structural model: TLBs, page tables, walker, caches, and the
//! iTP+xPTP cooperative plumbing of the paper's Figure 7.

use crate::config::SystemConfig;
use itpx_core::presets::PolicyBundle;
use itpx_core::StlbPressureMonitor;
use itpx_mem::{Hierarchy, HierarchyPolicies};
use itpx_policy::Lru;
use itpx_types::{Asid, Cycle, PhysAddr, ResetBoundary, ThreadId, TranslationKind, VirtAddr};
use itpx_vm::address_space::AddressSpace;
use itpx_vm::path::TranslationPath;
use itpx_vm::psc::SplitPscs;
use itpx_vm::tlb::{LastLevelTlb, Tlb, TlbConfig};
use itpx_vm::walker::{PageWalker, PteMemory};

/// Result of a full translation: physical address, availability cycle, and
/// whether the STLB missed (the flag T-DRRIP consumes, Figure 7 step 2).
pub type Translated = itpx_vm::path::PathResult;

/// Adapter giving the walker its L2C window (Figure 7 step 3).
#[derive(Debug)]
struct WalkMemory<'a> {
    hierarchy: &'a mut Hierarchy,
    thread: ThreadId,
}

impl PteMemory for WalkMemory<'_> {
    fn pte_access(&mut self, pa: PhysAddr, kind: TranslationKind, now: Cycle) -> Cycle {
        self.hierarchy.pte_access(pa, kind, self.thread, now)
    }
}

/// The simulated machine: every structure of Table 1, wired per Figure 7.
#[derive(Debug)]
pub struct System {
    /// Configuration the system was built with.
    pub config: SystemConfig,
    path: TranslationPath,
    spaces: Vec<AddressSpace>,
    /// The cache hierarchy (public: the engine issues fetches/accesses).
    pub hierarchy: Hierarchy,
    monitor: Option<StlbPressureMonitor>,
}

impl System {
    /// Builds the machine for `threads` hardware threads using the policy
    /// objects of `bundle`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `threads` is not 1 or 2.
    pub fn new(config: SystemConfig, bundle: PolicyBundle, threads: usize) -> Self {
        config.validate();
        assert!((1..=2).contains(&threads), "1 or 2 hardware threads");
        let PolicyBundle {
            stlb: stlb_policy,
            l2c,
            llc,
            monitor,
        } = bundle;
        let stlb = if config.split_stlb {
            // Section 6.6: split designs use LRU on each half (the paper
            // pairs iTP+xPTP only with unified STLBs).
            let half = TlbConfig {
                sets: config.stlb.sets / 2,
                ..config.stlb
            };
            LastLevelTlb::Split {
                instr: Tlb::new(half, Lru::new(half.sets, half.ways)),
                data: Tlb::new(half, Lru::new(half.sets, half.ways)),
            }
        } else {
            LastLevelTlb::Unified(Tlb::new(config.stlb, stlb_policy))
        };
        let hierarchy = Hierarchy::new(
            &config.hierarchy,
            HierarchyPolicies {
                l1i: Lru::new(config.hierarchy.l1i.sets, config.hierarchy.l1i.ways).into(),
                l1d: Lru::new(config.hierarchy.l1d.sets, config.hierarchy.l1d.ways).into(),
                l2: l2c,
                llc,
            },
        );
        let spaces = (0..threads)
            .map(|t| {
                AddressSpace::single(
                    config.huge_pages,
                    config.seed ^ (t as u64).wrapping_mul(0x1234_5677),
                    (t as u64) << 44,
                )
            })
            .collect();
        let path = TranslationPath::new(
            Tlb::new(config.itlb, Lru::new(config.itlb.sets, config.itlb.ways)),
            Tlb::new(config.dtlb, Lru::new(config.dtlb.sets, config.dtlb.ways)),
            stlb,
            SplitPscs::asplos25(),
            PageWalker::new(config.walker_concurrency),
        );
        Self {
            path,
            spaces,
            hierarchy,
            monitor,
            config,
        }
    }

    /// Reconfigures thread 0's address space for a multi-tenant run:
    /// `tenants` per-ASID page tables (tenant 0 keeps the exact tables a
    /// single-tenant build would get) plus an optional shared global
    /// table. Call once after construction, before any traffic.
    ///
    /// # Panics
    ///
    /// Panics on SMT configurations — consolidation scenarios schedule
    /// tenants over one hardware thread — or after traffic has touched
    /// the address space.
    pub fn configure_address_spaces(
        &mut self,
        tenants: usize,
        global_fraction: f64,
        global_seed: u64,
    ) {
        assert_eq!(
            self.spaces.len(),
            1,
            "multi-tenant scheduling requires a single hardware thread"
        );
        assert_eq!(
            self.spaces[0].table().mapped_4k_pages(),
            0,
            "configure address spaces before any traffic"
        );
        self.spaces[0] = AddressSpace::multi(
            tenants,
            self.config.huge_pages,
            self.config.seed,
            0,
            global_fraction,
            global_seed,
        );
    }

    /// Switches thread 0 to tenant `asid`: retargets every TLB level's
    /// current-ASID register and the address space. With `flush`, the
    /// incoming tenant's stale entries (TLBs and PSC namespaces) are
    /// invalidated first, so it restarts translation cold — the
    /// `SwitchPolicy::FlushAsid` behavior; without it, tagged entries
    /// survive across quanta.
    pub fn context_switch(&mut self, asid: Asid, flush: bool) {
        if flush {
            self.path.flush_asid(asid);
        }
        self.path.set_current_asid(asid);
        self.spaces[0].switch_to(asid);
    }

    /// Targeted TLB shootdown: invalidates `va`'s translation under
    /// `asid` in every TLB level (PSC interior nodes survive — see
    /// `TranslationPath::invalidate_page`).
    pub fn shootdown(&mut self, va: VirtAddr, asid: Asid) {
        self.path.invalidate_page(va, asid);
    }

    /// Huge-page promotion/demotion churn: flips the current tenant's
    /// mapping granularity for a 2 MiB region and invalidates the
    /// region's TLB entries. Returns the new huge state, or `None` if the
    /// region is globally mapped (globals stay stable).
    pub fn churn_region(&mut self, thread: ThreadId, region_vpn2m: u64) -> Option<bool> {
        let flipped = self.spaces[thread.0 as usize].churn_region(region_vpn2m);
        if flipped.is_some() {
            self.path.invalidate_region(region_vpn2m);
        }
        flipped
    }

    /// Translates `va` for `thread`, modeling the full ITLB/DTLB → STLB →
    /// page-walk path with all timing side effects.
    pub fn translate(
        &mut self,
        va: VirtAddr,
        kind: TranslationKind,
        pc: u64,
        thread: ThreadId,
        now: Cycle,
    ) -> Translated {
        let result = self.path.translate(
            &mut self.spaces[thread.0 as usize],
            WalkMemory {
                hierarchy: &mut self.hierarchy,
                thread,
            },
            va,
            kind,
            pc,
            thread,
            now,
        );
        // Figure 7 step 5: STLB misses feed the adaptive monitor.
        if result.stlb_miss {
            if let Some(m) = self.monitor.as_mut() {
                m.on_stlb_miss();
            }
        }
        result
    }

    /// FDIP translation for an instruction prefetch: resolves the physical
    /// block functionally (the FTQ caches physical fetch addresses) without
    /// touching TLB state, so demand fetches still expose every ITLB/STLB
    /// miss — the bottleneck the paper targets.
    pub fn fdip_target(&mut self, va: VirtAddr, thread: ThreadId) -> PhysAddr {
        self.spaces[thread.0 as usize]
            .translate(va, TranslationKind::Instruction)
            .pa
    }

    /// Reports `n` retired instructions to the adaptive monitor
    /// (Figure 7 step 5).
    pub fn on_retire(&mut self, n: u64) {
        if let Some(m) = self.monitor.as_mut() {
            m.on_retire(n);
        }
    }

    /// Fraction of epochs with xPTP enabled, if the adaptive monitor runs.
    pub fn xptp_enabled_fraction(&self) -> Option<f64> {
        self.monitor.as_ref().map(|m| m.enabled_fraction())
    }

    /// The first-level instruction TLB.
    pub fn itlb(&self) -> &Tlb {
        self.path.itlb()
    }

    /// The first-level data TLB.
    pub fn dtlb(&self) -> &Tlb {
        self.path.dtlb()
    }

    /// The last-level TLB organization.
    pub fn stlb(&self) -> &LastLevelTlb {
        self.path.stlb()
    }

    /// The page-table walker.
    pub fn walker(&self) -> &PageWalker {
        self.path.walker()
    }

    /// The split page-structure caches.
    pub fn pscs(&self) -> &SplitPscs {
        self.path.pscs()
    }

    /// Mutable access to the whole translation path (warm-state imports at
    /// a tier boundary).
    pub fn path_mut(&mut self) -> &mut TranslationPath {
        &mut self.path
    }

    /// Mutable access to `thread`'s address space, so the functional tier
    /// allocates frames out of the same first-touch sequence the cycle
    /// model would.
    pub fn address_space_mut(&mut self, thread: ThreadId) -> &mut AddressSpace {
        &mut self.spaces[thread.0 as usize]
    }

    /// Clears every statistic (warmup/measurement boundary); structure
    /// contents and replacement state are preserved. Both halves iterate
    /// their own structures — the translation path its pipeline, the
    /// hierarchy its level chain — so new levels are covered for free.
    pub fn reset_stats(&mut self) {
        self.path.reset_stats();
        self.hierarchy.reset_stats();
    }
}

impl ResetBoundary for System {
    /// A measurement boundary for the whole machine: statistics reset,
    /// warm contents kept (delegates to both halves' boundaries).
    fn reset_boundary(&mut self) {
        self.path.reset_boundary();
        self.hierarchy.reset_boundary();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itpx_core::presets::BuildConfig;
    use itpx_core::Preset;
    use itpx_types::LevelId;

    fn system(preset: Preset) -> System {
        let cfg = SystemConfig::asplos25();
        let bundle = preset.build(&cfg.dims(), &BuildConfig::default());
        System::new(cfg, bundle, 1)
    }

    #[test]
    fn cold_translation_walks_and_fills_tlbs() {
        let mut s = system(Preset::Lru);
        let va = VirtAddr::new(0x10_0000_1000);
        let t0 = s.translate(va, TranslationKind::Instruction, va.0, ThreadId(0), 0);
        assert!(t0.stlb_miss);
        assert!(t0.done > 50, "cold walk takes real time: {}", t0.done);
        assert_eq!(s.walker().walks(), 1);
        assert_eq!(s.walker().instruction_walks(), 1);
        // Second access: ITLB hit, 1 cycle.
        let t1 = s.translate(va, TranslationKind::Instruction, va.0, ThreadId(0), 1000);
        assert!(!t1.stlb_miss);
        assert_eq!(t1.done, 1001);
        assert_eq!(t1.pa, t0.pa);
    }

    #[test]
    fn stlb_catches_itlb_capacity_misses() {
        let mut s = system(Preset::Lru);
        // Touch 65 instruction pages in the same ITLB set region to push
        // the first one out of the 64-entry ITLB but keep it in the STLB.
        let base = 0x10_0000_0000u64;
        for i in 0..80u64 {
            let va = VirtAddr::new(base + i * 4096);
            s.translate(
                va,
                TranslationKind::Instruction,
                va.0,
                ThreadId(0),
                i * 10_000,
            );
        }
        let walks_before = s.walker().walks();
        let t = s.translate(
            VirtAddr::new(base),
            TranslationKind::Instruction,
            base,
            ThreadId(0),
            10_000_000,
        );
        assert!(!t.stlb_miss, "STLB should hold the entry");
        assert_eq!(s.walker().walks(), walks_before, "no extra walk");
    }

    #[test]
    fn page_walk_traffic_reaches_l2() {
        let mut s = system(Preset::Lru);
        let va = VirtAddr::new(0x20_0000_0000);
        s.translate(va, TranslationKind::Data, 0x99, ThreadId(0), 0);
        let b = s.hierarchy.stats_of(LevelId::L2C).mpki_breakdown(1000);
        assert!(
            b.data_pte > 0.0,
            "walk refs must appear as L2 data-PTE traffic"
        );
    }

    #[test]
    fn smt_threads_have_disjoint_address_spaces() {
        let cfg = SystemConfig::asplos25();
        let bundle = Preset::Lru.build(&cfg.dims(), &BuildConfig::default());
        let mut s = System::new(cfg, bundle, 2);
        let va = VirtAddr::new(0x10_0000_0000);
        let a = s.translate(va, TranslationKind::Data, 0, ThreadId(0), 0);
        let b = s.translate(
            VirtAddr::new(va.0 | 1 << 44),
            TranslationKind::Data,
            0,
            ThreadId(1),
            0,
        );
        assert_ne!(a.pa, b.pa, "threads must not share frames");
    }

    #[test]
    fn monitor_is_fed_by_stlb_misses() {
        let mut s = system(Preset::ItpXptp);
        assert_eq!(s.xptp_enabled_fraction(), Some(0.0));
        for i in 0..64u64 {
            let va = VirtAddr::new(0x20_0000_0000 + i * (1 << 21));
            s.translate(va, TranslationKind::Data, 0, ThreadId(0), i * 1000);
        }
        s.on_retire(1000);
        assert!(s.xptp_enabled_fraction().unwrap() > 0.0);
    }

    #[test]
    fn split_stlb_builds_and_routes() {
        let cfg = SystemConfig::asplos25().with_split_stlb(true);
        let bundle = Preset::Lru.build(&cfg.dims(), &BuildConfig::default());
        let mut s = System::new(cfg, bundle, 1);
        let va = VirtAddr::new(0x10_0000_2000);
        s.translate(va, TranslationKind::Instruction, va.0, ThreadId(0), 0);
        match s.stlb() {
            LastLevelTlb::Split { instr, data } => {
                assert_eq!(instr.stats().accesses(), 1);
                assert_eq!(data.stats().accesses(), 0);
            }
            _ => panic!("expected split"),
        }
    }

    #[test]
    fn merged_misses_share_the_walk() {
        let mut s = system(Preset::Lru);
        let va = VirtAddr::new(0x30_0000_0000);
        let first = s.translate(va, TranslationKind::Data, 0, ThreadId(0), 0);
        // Different VA on the same page while the walk is in flight: the
        // DTLB MSHR merge returns the same completion.
        let second = s.translate(
            VirtAddr::new(va.0 + 8),
            TranslationKind::Data,
            0,
            ThreadId(0),
            2,
        );
        assert_eq!(second.done, first.done);
        assert_eq!(s.walker().walks(), 1, "no duplicate walk");
    }

    #[test]
    fn flushing_context_switch_restarts_the_tenant_cold() {
        let mut s = system(Preset::Lru);
        s.configure_address_spaces(2, 0.0, 0);
        let va = VirtAddr::new(0x10_0000_1000);
        s.translate(va, TranslationKind::Data, 0, ThreadId(0), 0);
        assert_eq!(s.walker().walks(), 1);
        // Preserving switch away and back: tenant 0's entry survives.
        s.context_switch(Asid(1), false);
        s.context_switch(Asid(0), false);
        s.translate(va, TranslationKind::Data, 0, ThreadId(0), 1_000_000);
        assert_eq!(s.walker().walks(), 1, "tagged entry survived the switch");
        // Flushing switch back in: the entry is gone, the walk repeats.
        s.context_switch(Asid(1), true);
        s.context_switch(Asid(0), true);
        s.translate(va, TranslationKind::Data, 0, ThreadId(0), 2_000_000);
        assert_eq!(s.walker().walks(), 2, "flush restarted translation cold");
    }

    #[test]
    fn tenants_translate_the_same_va_to_different_frames() {
        let mut s = system(Preset::Lru);
        s.configure_address_spaces(2, 0.0, 0);
        let va = VirtAddr::new(0x10_0000_1000);
        let a = s.translate(va, TranslationKind::Data, 0, ThreadId(0), 0);
        s.context_switch(Asid(1), false);
        let b = s.translate(va, TranslationKind::Data, 0, ThreadId(0), 1_000_000);
        assert_ne!(a.pa, b.pa, "tenants must not share frames");
        assert_eq!(s.walker().walks(), 2, "tenant 1 cannot hit tenant 0's tag");
    }

    #[test]
    fn shootdown_forces_a_rewalk_of_exactly_that_page() {
        let mut s = system(Preset::Lru);
        s.configure_address_spaces(2, 0.0, 0);
        let hit = VirtAddr::new(0x10_0000_1000);
        let shot = VirtAddr::new(0x10_0040_2000);
        s.translate(hit, TranslationKind::Data, 0, ThreadId(0), 0);
        s.translate(shot, TranslationKind::Data, 0, ThreadId(0), 1_000_000);
        assert_eq!(s.walker().walks(), 2);
        s.shootdown(shot, Asid(0));
        s.translate(hit, TranslationKind::Data, 0, ThreadId(0), 2_000_000);
        assert_eq!(s.walker().walks(), 2, "untargeted page still hits");
        s.translate(shot, TranslationKind::Data, 0, ThreadId(0), 3_000_000);
        assert_eq!(s.walker().walks(), 3, "shot page re-walks");
    }

    #[test]
    fn churn_flips_the_mapping_granularity_and_rewalks() {
        let mut s = system(Preset::Lru);
        s.configure_address_spaces(2, 0.0, 0);
        let va = VirtAddr::new(0x10_0000_1000);
        let before = s.translate(va, TranslationKind::Data, 0, ThreadId(0), 0);
        let region = va.vpn(itpx_types::PageSize::Huge2M).0;
        let flipped = s.churn_region(ThreadId(0), region);
        assert!(flipped.is_some(), "private region must churn");
        let after = s.translate(va, TranslationKind::Data, 0, ThreadId(0), 1_000_000);
        assert!(after.stlb_miss, "churned region re-walks");
        assert_ne!(before.pa, after.pa, "promotion remapped the page");
    }
}
