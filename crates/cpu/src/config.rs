//! System configuration mirroring the paper's Table 1.

use itpx_core::presets::StructureDims;
use itpx_mem::HierarchyConfig;
use itpx_types::fingerprint::{Fingerprint, Fnv1a};
use itpx_vm::page_table::HugePagePolicy;
use itpx_vm::tlb::TlbConfig;

/// Full machine configuration.
///
/// [`SystemConfig::asplos25`] reproduces Table 1; the `with_*` helpers
/// express the sensitivity sweeps of Sections 6.4–6.6.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConfig {
    /// Instructions fetched per cycle (decoupled front end, Table 1: 6).
    pub fetch_width: usize,
    /// Reorder-buffer entries (Table 1: 352; halved per thread under SMT).
    pub rob_entries: usize,
    /// Fetch-target-queue entries (Table 1: 128).
    pub ftq_entries: usize,
    /// Instructions retired per cycle.
    pub retire_width: usize,
    /// Cycles lost on a branch misprediction redirect.
    pub mispredict_penalty: u64,
    /// First-level instruction TLB (Table 1: 64-entry, 4-way, 1-cycle).
    pub itlb: TlbConfig,
    /// First-level data TLB (Table 1: 64-entry, 4-way, 1-cycle).
    pub dtlb: TlbConfig,
    /// Last-level TLB (Table 1: 1536-entry, 12-way, 8-cycle).
    pub stlb: TlbConfig,
    /// Use a split instruction/data STLB instead of a unified one
    /// (Section 6.6); each half gets `stlb.sets / 2` sets.
    pub split_stlb: bool,
    /// Cache hierarchy geometry.
    pub hierarchy: HierarchyConfig,
    /// Concurrent page walks supported by the walker (Table 1: 4... "1
    /// page walk / cycle" issue with 4 in flight).
    pub walker_concurrency: usize,
    /// Distinct upcoming fetch blocks the FDIP prefetcher runs ahead.
    pub fdip_depth: usize,
    /// Huge-page allocation policy (Section 6.5 sweeps this).
    pub huge_pages: HugePagePolicy,
    /// Seed for machine-side randomness (frame scattering).
    pub seed: u64,
}

impl SystemConfig {
    /// The paper's Table 1 configuration.
    pub fn asplos25() -> Self {
        Self {
            fetch_width: 6,
            rob_entries: 352,
            ftq_entries: 128,
            retire_width: 6,
            mispredict_penalty: 12,
            itlb: TlbConfig {
                sets: 16,
                ways: 4,
                latency: 1,
                mshr_entries: 8,
            },
            dtlb: TlbConfig {
                sets: 16,
                ways: 4,
                latency: 1,
                mshr_entries: 8,
            },
            stlb: TlbConfig {
                sets: 128,
                ways: 12,
                latency: 8,
                mshr_entries: 16,
            },
            split_stlb: false,
            hierarchy: HierarchyConfig::asplos25(),
            walker_concurrency: 4,
            fdip_depth: 8,
            huge_pages: HugePagePolicy::none(),
            seed: 0xa5f0_5c25,
        }
    }

    /// Returns a copy with an ITLB of `entries` entries (4-way), for the
    /// Section 6.4 / Figure 1 sweeps.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a positive multiple of 4.
    #[must_use]
    pub fn with_itlb_entries(mut self, entries: usize) -> Self {
        assert!(
            entries >= 4 && entries.is_multiple_of(4),
            "ITLB entries must be a multiple of 4"
        );
        self.itlb.sets = entries / 4;
        self
    }

    /// Returns a copy with a unified STLB of `entries` entries (12-way),
    /// for the Section 6.6 sweep.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a positive multiple of 12.
    #[must_use]
    pub fn with_stlb_entries(mut self, entries: usize) -> Self {
        assert!(
            entries >= 12 && entries.is_multiple_of(12),
            "STLB entries must be a multiple of 12"
        );
        self.stlb.sets = entries / 12;
        self
    }

    /// Returns a copy using a split STLB (Section 6.6): each half keeps
    /// the unified associativity with half the sets.
    #[must_use]
    pub fn with_split_stlb(mut self, split: bool) -> Self {
        self.split_stlb = split;
        self
    }

    /// Returns a copy with the given huge-page policy (Section 6.5).
    #[must_use]
    pub fn with_huge_pages(mut self, huge: HugePagePolicy) -> Self {
        self.huge_pages = huge;
        self
    }

    /// Structure dimensions handed to [`itpx_core::Preset::build`]. The
    /// L2C is the chain's first shared level; `llc` reports the innermost
    /// shared level, so no-LLC chains still hand the LLC policy sane
    /// dimensions (it is unused there).
    pub fn dims(&self) -> StructureDims {
        let l2c = self.hierarchy.l2c();
        let last = self.hierarchy.last_level();
        StructureDims {
            stlb: (self.stlb.sets, self.stlb.ways),
            l2c: (l2c.sets, l2c.ways),
            llc: (last.sets, last.ways),
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on degenerate widths or sizes.
    pub fn validate(&self) {
        assert!(self.fetch_width > 0 && self.retire_width > 0, "zero width");
        assert!(self.rob_entries >= 16, "ROB too small");
        assert!(self.ftq_entries >= 8, "FTQ too small");
        assert!(self.walker_concurrency > 0, "walker needs a slot");
        if self.split_stlb {
            assert!(
                self.stlb.sets.is_multiple_of(2),
                "split STLB needs even sets"
            );
        }
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::asplos25()
    }
}

impl Fingerprint for SystemConfig {
    fn fingerprint(&self, h: &mut Fnv1a) {
        // Every field can change simulated results, so every field is
        // hashed, in declaration order.
        h.write_usize(self.fetch_width);
        h.write_usize(self.rob_entries);
        h.write_usize(self.ftq_entries);
        h.write_usize(self.retire_width);
        h.write_u64(self.mispredict_penalty);
        self.itlb.fingerprint(h);
        self.dtlb.fingerprint(h);
        self.stlb.fingerprint(h);
        h.write_bool(self.split_stlb);
        self.hierarchy.fingerprint(h);
        h.write_usize(self.walker_concurrency);
        h.write_usize(self.fdip_depth);
        self.huge_pages.fingerprint(h);
        h.write_u64(self.seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let c = SystemConfig::asplos25();
        c.validate();
        assert_eq!(c.rob_entries, 352);
        assert_eq!(c.ftq_entries, 128);
        assert_eq!(c.fetch_width, 6);
        assert_eq!(c.itlb.entries(), 64);
        assert_eq!(c.dtlb.entries(), 64);
        assert_eq!(c.stlb.entries(), 1536);
        assert_eq!(c.stlb.latency, 8);
        assert_eq!(c.hierarchy.l2c().bytes(), 512 * 1024);
        assert_eq!(
            c.hierarchy.llc().expect("asplos25 has an LLC").bytes(),
            2 * 1024 * 1024
        );
        assert_eq!(c.walker_concurrency, 4);
    }

    #[test]
    fn itlb_sweep_helper() {
        for entries in [8, 64, 128, 512, 1024] {
            let c = SystemConfig::asplos25().with_itlb_entries(entries);
            assert_eq!(c.itlb.entries(), entries);
            c.validate();
        }
    }

    #[test]
    fn stlb_sweep_helper() {
        let c = SystemConfig::asplos25().with_stlb_entries(3072);
        assert_eq!(c.stlb.entries(), 3072);
        assert_eq!(c.stlb.ways, 12);
    }

    #[test]
    #[should_panic(expected = "multiple of 4")]
    fn bad_itlb_entries_panics() {
        let _ = SystemConfig::asplos25().with_itlb_entries(10);
    }

    #[test]
    fn dims_match_structures() {
        let c = SystemConfig::asplos25();
        let d = c.dims();
        assert_eq!(d.stlb, (128, 12));
        assert_eq!(d.l2c, (1024, 8));
        assert_eq!(d.llc, (2048, 16));
    }
}
