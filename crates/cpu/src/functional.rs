//! The functional tier: a timing-free reference machine with warm-state
//! import/export surfaces.
//!
//! This model started life as the difftest crate's obviously-correct
//! reference machine and was promoted here so the execution engine can
//! drive it as the *fast-forward tier* of a tiered schedule (see
//! DESIGN.md, "Tiered execution"): per-set MRU-first recency lists
//! instead of policy objects and validity bitmasks, straight-line
//! lookups instead of MSHR merging, and no timing at all. It still
//! shares **no** structure code with `itpx-vm`/`itpx-mem` — only the
//! page table (the deterministic address mapping both machines must
//! agree on) and the type vocabulary — which is exactly what makes it
//! usable as a differential reference *and* as a warming engine.
//!
//! Two jobs, one model:
//!
//! * **Difftest reference** — `itpx-difftest` wraps [`FunctionalMachine`]
//!   and compares its counters against the quiescent cycle model bit for
//!   bit.
//! * **Fast-forward tier** — at a tier boundary the engine snapshots the
//!   cycle structures ([`FunctionalMachine::from_cycle`]), runs the
//!   fast-forward warm tail through this model at functional speed, and
//!   seeds the warmed contents back ([`FunctionalMachine::seed_cycle`]).
//!   Handoffs carry *membership, dirt, recency order, and the paper's
//!   `Type` bit*; replacement metadata richer than recency (RRPV ages,
//!   SHiP counters) is reconstructed through the policies' fill hooks —
//!   the documented fidelity limit of a handoff.

use crate::config::SystemConfig;
use crate::system::System;
use itpx_mem::CacheLineSnapshot;
#[cfg(feature = "strict-contracts")]
use itpx_types::Vpn;
use itpx_types::{
    Asid, FillClass, LevelCounts, LevelId, PageSize, PhysAddr, StructCounts, TranslationKind,
    VirtAddr,
};
use itpx_vm::address_space::AddressSpace;
use itpx_vm::psc::{namespaced_vpn, tag_asid};
use itpx_vm::tlb::{LastLevelTlb, TlbConfig, TlbEntry};

/// A TLB modeled as per-set MRU-first lists of [`TlbEntry`] tuples.
///
/// Equivalent to the production structure under LRU: a hit or a refill
/// of a resident entry moves it to the front, a fill pushes to the
/// front and drops the back of a full set. The production first-free-way
/// fill plus recency-stack victim selection preserves exactly this
/// membership and eviction order.
#[derive(Debug)]
pub struct FunctionalTlb {
    sets: usize,
    ways: usize,
    /// Per-set entries, most recently used first.
    // itpx-allow: nested-vec reference model optimizes for auditability, not speed
    lists: Vec<Vec<TlbEntry>>,
    /// The address space lookups currently run under (mirrors the
    /// production TLB's current-ASID register).
    current: Asid,
    /// Access/miss counters in the difftest vocabulary.
    pub stats: StructCounts,
}

impl FunctionalTlb {
    /// Builds an empty TLB with `cfg`'s geometry.
    pub fn new(cfg: &TlbConfig) -> Self {
        Self {
            sets: cfg.sets,
            ways: cfg.ways,
            lists: vec![Vec::new(); cfg.sets],
            current: Asid::KERNEL,
            stats: StructCounts::default(),
        }
    }

    fn stat_class(kind: TranslationKind) -> FillClass {
        match kind {
            TranslationKind::Instruction => FillClass::InstrPayload,
            TranslationKind::Data => FillClass::DataPayload,
        }
    }

    /// Probes both page-size granularities in the production order
    /// (4 KiB first), touching recency and recording stats.
    pub fn lookup(&mut self, va: VirtAddr, kind: TranslationKind) -> Option<(PhysAddr, PageSize)> {
        for size in [PageSize::Base4K, PageSize::Huge2M] {
            let vpn = va.vpn(size).0;
            let set = (vpn as usize) % self.sets;
            let current = self.current;
            let list = &mut self.lists[set];
            if let Some(pos) = list
                .iter()
                .position(|&(v, s, _, _, a)| v == vpn && s == size && a.matches(current))
            {
                let entry = list.remove(pos);
                list.insert(0, entry);
                self.stats.record(Self::stat_class(kind), false);
                return Some((entry.2, size));
            }
        }
        self.stats.record(Self::stat_class(kind), true);
        None
    }

    /// Installs a translation; a resident entry is refreshed in place.
    /// `kind` is the `Type` bit of the installing fill, carried so a
    /// later export hands it back to kind-aware cycle policies. `asid` is
    /// the entry's address-space tag.
    pub fn fill(
        &mut self,
        vpn: u64,
        size: PageSize,
        frame: PhysAddr,
        kind: TranslationKind,
        asid: Asid,
    ) {
        let set = (vpn as usize) % self.sets;
        let list = &mut self.lists[set];
        if let Some(pos) = list
            .iter()
            .position(|&(v, s, _, _, a)| v == vpn && s == size && a.matches(asid))
        {
            let entry = list.remove(pos);
            list.insert(0, entry);
            return;
        }
        if list.len() == self.ways {
            list.pop();
        }
        list.insert(0, (vpn, size, frame, kind, asid));
    }

    /// Retargets lookups to `asid` (mirrors `Tlb::set_current_asid`).
    pub fn set_current_asid(&mut self, asid: Asid) {
        self.current = asid;
    }

    /// The address space lookups currently run under.
    pub fn current_asid(&self) -> Asid {
        self.current
    }

    /// Drops every entry tagged exactly `asid`, preserving the recency
    /// order of survivors (mirrors `Tlb::flush_asid`).
    pub fn flush_asid(&mut self, asid: Asid) {
        for list in &mut self.lists {
            list.retain(|&(_, _, _, _, a)| a != asid);
        }
    }

    /// Targeted shootdown of `va` under exactly `asid`, both page sizes
    /// (mirrors `Tlb::invalidate_page`).
    pub fn invalidate_page(&mut self, va: VirtAddr, asid: Asid) {
        for size in [PageSize::Base4K, PageSize::Huge2M] {
            let vpn = va.vpn(size).0;
            let set = (vpn as usize) % self.sets;
            self.lists[set].retain(|&(v, s, _, _, a)| !(v == vpn && s == size && a == asid));
        }
    }

    /// Drops every entry (any tag) inside the 2 MiB region `region_vpn2m`
    /// (mirrors `Tlb::invalidate_region`).
    pub fn invalidate_region(&mut self, region_vpn2m: u64) {
        for list in &mut self.lists {
            list.retain(|&(v, s, _, _, _)| match s {
                PageSize::Base4K => v >> 9 != region_vpn2m,
                PageSize::Huge2M => v != region_vpn2m,
            });
        }
    }

    /// Exports resident entries per set in **LRU-first** order, so
    /// replaying them through a fill path reproduces the recency order.
    pub fn export_entries(&self) -> Vec<TlbEntry> {
        let mut out = Vec::new();
        for list in &self.lists {
            out.extend(list.iter().rev().copied());
        }
        out
    }

    /// Replaces contents with `entries`, installing in iteration order
    /// (last entry into a set becomes its MRU). Stats are not touched.
    pub fn import_entries<I: IntoIterator<Item = TlbEntry>>(&mut self, entries: I) {
        for list in &mut self.lists {
            list.clear();
        }
        for (vpn, size, frame, kind, asid) in entries {
            self.fill(vpn, size, frame, kind, asid);
        }
    }

    /// Occupancy of the fullest set (used by capacity-invariant tests).
    pub fn max_set_occupancy(&self) -> usize {
        self.lists.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Whether a `(vpn, size)` translation visible under the current ASID
    /// is resident, without touching recency or stats.
    pub fn contains(&self, vpn: u64, size: PageSize) -> bool {
        let set = (vpn as usize) % self.sets;
        let current = self.current;
        self.lists[set]
            .iter()
            .any(|&(v, s, _, _, a)| v == vpn && s == size && a.matches(current))
    }
}

/// One page-structure cache as per-set MRU-first tag lists.
#[derive(Debug)]
pub struct FunctionalPsc {
    level: u8,
    sets: usize,
    ways: usize,
    // itpx-allow: nested-vec reference model optimizes for auditability, not speed
    lists: Vec<Vec<u64>>,
}

impl FunctionalPsc {
    fn new(level: u8, sets: usize, ways: usize) -> Self {
        Self {
            level,
            sets,
            ways,
            lists: vec![Vec::new(); sets],
        }
    }

    fn tag(&self, vpn4k: u64) -> u64 {
        vpn4k >> (9 * (self.level as u32 - 1))
    }

    /// Probe, touching recency on a hit (the production lookup does).
    pub fn lookup(&mut self, vpn4k: u64) -> bool {
        let tag = self.tag(vpn4k);
        let set = (tag as usize) % self.sets;
        let list = &mut self.lists[set];
        if let Some(pos) = list.iter().position(|&t| t == tag) {
            let t = list.remove(pos);
            list.insert(0, t);
            true
        } else {
            false
        }
    }

    /// Install after a walk. A resident tag is left untouched — the
    /// production fill early-returns without a recency update.
    pub fn fill(&mut self, vpn4k: u64) {
        let tag = self.tag(vpn4k);
        self.install_tag(tag);
    }

    fn install_tag(&mut self, tag: u64) {
        let set = (tag as usize) % self.sets;
        let list = &mut self.lists[set];
        if list.contains(&tag) {
            return;
        }
        if list.len() == self.ways {
            list.pop();
        }
        list.insert(0, tag);
    }

    /// Exports resident tags LRU-first (see the TLB counterpart).
    pub fn export_tags(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for list in &self.lists {
            out.extend(list.iter().rev().copied());
        }
        out
    }

    /// Replaces contents with raw level tags, installing in order.
    pub fn import_tags<I: IntoIterator<Item = u64>>(&mut self, tags: I) {
        for list in &mut self.lists {
            list.clear();
        }
        for tag in tags {
            self.install_tag(tag);
        }
    }

    /// Drops tags cached under `asid`'s namespace (mirrors
    /// `PageStructureCache::flush_asid`).
    pub fn flush_asid(&mut self, asid: Asid) {
        let level = self.level;
        for list in &mut self.lists {
            list.retain(|&t| tag_asid(t, level) != asid);
        }
    }
}

/// The split PSC hierarchy with the Table 1 geometry, replicating the
/// production probe order (PSCL2 → PSCL3 → PSCL4 → PSCL5) and fill
/// order (2, 3, 4, 5).
#[derive(Debug)]
pub struct FunctionalPscs {
    pscl5: FunctionalPsc,
    pscl4: FunctionalPsc,
    pscl3: FunctionalPsc,
    pscl2: FunctionalPsc,
}

impl FunctionalPscs {
    /// The paper's Table 1 geometry.
    pub fn asplos25() -> Self {
        Self {
            pscl5: FunctionalPsc::new(5, 1, 2),
            pscl4: FunctionalPsc::new(4, 1, 4),
            pscl3: FunctionalPsc::new(3, 4, 2),
            pscl2: FunctionalPsc::new(2, 8, 4),
        }
    }

    /// Deepest level a walk for `vpn4k` may start at.
    pub fn start_level(&mut self, vpn4k: u64) -> u8 {
        if self.pscl2.lookup(vpn4k) {
            2
        } else if self.pscl3.lookup(vpn4k) {
            3
        } else if self.pscl4.lookup(vpn4k) {
            4
        } else {
            // Production consults PSCL5 even though the answer is the
            // root either way; replicate for identical recency state.
            let _ = self.pscl5.lookup(vpn4k);
            5
        }
    }

    /// Fills all levels after a resolved walk.
    pub fn fill(&mut self, vpn4k: u64) {
        self.pscl2.fill(vpn4k);
        self.pscl3.fill(vpn4k);
        self.pscl4.fill(vpn4k);
        self.pscl5.fill(vpn4k);
    }

    /// Snapshots all four levels as `[PSCL5, PSCL4, PSCL3, PSCL2]`,
    /// matching [`itpx_vm::SplitPscs::export_tags`]'s layout.
    pub fn export_tags(&self) -> [Vec<u64>; 4] {
        [
            self.pscl5.export_tags(),
            self.pscl4.export_tags(),
            self.pscl3.export_tags(),
            self.pscl2.export_tags(),
        ]
    }

    /// Replaces all four levels from an export snapshot.
    pub fn import_tags(&mut self, tags: [Vec<u64>; 4]) {
        let [t5, t4, t3, t2] = tags;
        self.pscl5.import_tags(t5);
        self.pscl4.import_tags(t4);
        self.pscl3.import_tags(t3);
        self.pscl2.import_tags(t2);
    }

    /// Drops every level's tags under `asid`'s namespace (mirrors
    /// `SplitPscs::flush_asid`).
    pub fn flush_asid(&mut self, asid: Asid) {
        self.pscl2.flush_asid(asid);
        self.pscl3.flush_asid(asid);
        self.pscl4.flush_asid(asid);
        self.pscl5.flush_asid(asid);
    }
}

/// One cached block of the functional chain. Unlike the original
/// reference line, it remembers the installing access's [`FillClass`] so
/// a warm-state export can hand class-aware cycle policies the right
/// kind.
#[derive(Debug, Clone, Copy)]
struct FunctionalLine {
    block: u64,
    dirty: bool,
    class: FillClass,
}

/// One level of the functional chain.
#[derive(Debug)]
pub struct FunctionalLevel {
    id: LevelId,
    sets: usize,
    ways: usize,
    /// Per-set lines, most recently used first.
    // itpx-allow: nested-vec reference model optimizes for auditability, not speed
    lists: Vec<Vec<FunctionalLine>>,
    /// Index of the next-lower level; `None` misses to DRAM.
    next: Option<usize>,
    counts: StructCounts,
    writebacks: u64,
    evictions: u64,
}

impl FunctionalLevel {
    fn set_of(&self, block: u64) -> usize {
        (block as usize) % self.sets
    }

    /// Non-touching residency check (writeback routing uses this).
    pub fn contains(&self, block: u64) -> bool {
        let set = self.set_of(block);
        self.lists[set].iter().any(|l| l.block == block)
    }

    fn mark_dirty(&mut self, block: u64) {
        let set = self.set_of(block);
        if let Some(line) = self.lists[set].iter_mut().find(|l| l.block == block) {
            line.dirty = true;
        }
    }

    /// This level's identity.
    pub fn id(&self) -> LevelId {
        self.id
    }

    /// Exports resident lines LRU-first in the mem crate's snapshot form.
    pub fn export_lines(&self) -> Vec<CacheLineSnapshot> {
        let mut out = Vec::new();
        for list in &self.lists {
            out.extend(list.iter().rev().map(|l| (l.block, l.dirty, l.class)));
        }
        out
    }

    /// Replaces contents with `lines`, installing MRU-last per set.
    /// Counters are not touched.
    pub fn import_lines<I: IntoIterator<Item = CacheLineSnapshot>>(&mut self, lines: I) {
        for list in &mut self.lists {
            list.clear();
        }
        for (block, dirty, class) in lines {
            let set = self.set_of(block);
            let list = &mut self.lists[set];
            if let Some(pos) = list.iter().position(|l| l.block == block) {
                let line = list.remove(pos);
                list.insert(0, line);
                continue;
            }
            if list.len() == self.ways {
                list.pop();
            }
            list.insert(
                0,
                FunctionalLine {
                    block,
                    dirty,
                    class,
                },
            );
        }
    }
}

/// The functional cache chain: `[L1I, L1D, shared…]` with DRAM at the
/// bottom, mirroring the production level-chain topology.
#[derive(Debug)]
pub struct FunctionalChain {
    levels: Vec<FunctionalLevel>,
    dram_reads: u64,
    dram_writes: u64,
    wb_absorbed: u64,
}

/// Index of the L1I entry level.
const L1I: usize = 0;
/// Index of the L1D entry level.
const L1D: usize = 1;
/// Index of the first shared level (the page-walk entry point).
const SHARED: usize = 2;

impl FunctionalChain {
    /// Builds the chain for `cfg`'s topology.
    pub fn new(cfg: &itpx_mem::HierarchyConfig) -> Self {
        let shared = cfg.shared_levels();
        let last = shared.len() - 1;
        let mut levels = Vec::with_capacity(2 + shared.len());
        let mk = |id, sets: usize, ways: usize, next| FunctionalLevel {
            id,
            sets,
            ways,
            lists: vec![Vec::new(); sets],
            next,
            counts: StructCounts::default(),
            writebacks: 0,
            evictions: 0,
        };
        levels.push(mk(LevelId::L1I, cfg.l1i.sets, cfg.l1i.ways, Some(SHARED)));
        levels.push(mk(LevelId::L1D, cfg.l1d.sets, cfg.l1d.ways, Some(SHARED)));
        for (i, level) in shared.iter().enumerate() {
            let next = (i != last).then_some(SHARED + i + 1);
            levels.push(mk(level.id, level.cache.sets, level.cache.ways, next));
        }
        Self {
            levels,
            dram_reads: 0,
            dram_writes: 0,
            wb_absorbed: 0,
        }
    }

    /// The probe → miss-below → fill recursion, in the production order:
    /// on a miss the lower levels fill (and route their writebacks)
    /// before this level does.
    pub fn access(&mut self, idx: usize, block: u64, class: FillClass) {
        let set = self.levels[idx].set_of(block);
        let pos = self.levels[idx].lists[set]
            .iter()
            .position(|l| l.block == block);
        if let Some(pos) = pos {
            self.levels[idx].counts.record(class, false);
            let line = self.levels[idx].lists[set].remove(pos);
            // itpx-allow: hot-alloc reference model: the set list is bounded by the way count, so this insert shifts a few words and never grows
            self.levels[idx].lists[set].insert(0, line);
            return;
        }
        self.levels[idx].counts.record(class, true);
        match self.levels[idx].next {
            Some(next) => self.access(next, block, class),
            None => self.dram_reads += 1,
        }
        if let Some(victim) = self.fill(idx, block, class) {
            self.route_writeback(idx, victim);
        }
    }

    /// Installs `block` clean; returns a displaced dirty block.
    fn fill(&mut self, idx: usize, block: u64, class: FillClass) -> Option<u64> {
        let set = self.levels[idx].set_of(block);
        let ways = self.levels[idx].ways;
        let list = &mut self.levels[idx].lists[set];
        if let Some(pos) = list.iter().position(|l| l.block == block) {
            // Resident refresh (production `fill` of a present block).
            let line = list.remove(pos);
            list.insert(0, line);
            return None;
        }
        let mut wb = None;
        if list.len() == ways {
            // popped from a full list checked just above
            let victim = list.pop().unwrap_or(FunctionalLine {
                block: 0,
                dirty: false,
                class,
            });
            self.levels[idx].evictions += 1;
            if victim.dirty {
                self.levels[idx].writebacks += 1;
                wb = Some(victim.block);
            }
        }
        // itpx-allow: hot-alloc reference model: the set list is bounded by the way count (a victim was just popped when full), so this insert never grows past it
        self.levels[idx].lists[set].insert(
            0,
            FunctionalLine {
                block,
                dirty: false,
                class,
            },
        );
        wb
    }

    /// First strictly-lower level holding the block absorbs the
    /// writeback as a dirty mark; otherwise it is a DRAM write.
    fn route_writeback(&mut self, from: usize, block: u64) {
        let mut next = self.levels[from].next;
        while let Some(idx) = next {
            if self.levels[idx].contains(block) {
                self.levels[idx].mark_dirty(block);
                self.wb_absorbed += 1;
                return;
            }
            next = self.levels[idx].next;
        }
        self.dram_writes += 1;
    }

    /// The chain's levels in order (L1I, L1D, then shared
    /// outermost-first).
    pub fn levels(&self) -> &[FunctionalLevel] {
        &self.levels
    }

    /// Mutable level lookup by identity (warm-state imports).
    pub fn level_mut(&mut self, id: LevelId) -> Option<&mut FunctionalLevel> {
        self.levels.iter_mut().find(|l| l.id == id)
    }

    /// Level lookup by identity.
    pub fn level(&self, id: LevelId) -> Option<&FunctionalLevel> {
        self.levels.iter().find(|l| l.id == id)
    }

    /// Per-level counters in the difftest report vocabulary.
    pub fn level_counts(&self) -> Vec<LevelCounts> {
        self.levels
            .iter()
            .map(|l| LevelCounts {
                id: l.id,
                counts: l.counts,
                writebacks: l.writebacks,
                evictions: l.evictions,
            })
            .collect()
    }

    /// DRAM reads observed.
    pub fn dram_reads(&self) -> u64 {
        self.dram_reads
    }

    /// DRAM writes observed.
    pub fn dram_writes(&self) -> u64 {
        self.dram_writes
    }

    /// Writebacks absorbed by a lower level instead of DRAM.
    pub fn writebacks_absorbed(&self) -> u64 {
        self.wb_absorbed
    }

    /// Marks `block` dirty at the L1D (store semantics).
    pub fn mark_dirty_l1d(&mut self, block: u64) {
        self.levels[L1D].mark_dirty(block);
    }
}

/// The functional machine: TLBs, PSCs, page-walk bookkeeping, and the
/// cache chain. The page table is **not** owned — callers pass the one
/// the cycle model uses so first-touch frame allocation stays shared
/// across tiers (the difftest wrapper owns its own).
#[derive(Debug)]
pub struct FunctionalMachine {
    /// First-level instruction TLB.
    pub itlb: FunctionalTlb,
    /// First-level data TLB.
    pub dtlb: FunctionalTlb,
    /// Unified second-level TLB.
    pub stlb: FunctionalTlb,
    /// Split page-structure caches.
    pub pscs: FunctionalPscs,
    /// The cache chain.
    pub chain: FunctionalChain,
    /// Page walks performed.
    pub walks: u64,
    /// Walks triggered by instruction translations.
    pub instr_walks: u64,
    /// Memory references issued by walks.
    pub walk_refs: u64,
}

impl FunctionalMachine {
    /// Builds an empty (cold) machine for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` requests a split STLB — the functional tier (like
    /// the difftest reference) models the unified organization the paper
    /// optimizes.
    pub fn new(cfg: &SystemConfig) -> Self {
        assert!(
            !cfg.split_stlb,
            "functional tier models the unified STLB only"
        );
        Self {
            itlb: FunctionalTlb::new(&cfg.itlb),
            dtlb: FunctionalTlb::new(&cfg.dtlb),
            stlb: FunctionalTlb::new(&cfg.stlb),
            pscs: FunctionalPscs::asplos25(),
            chain: FunctionalChain::new(&cfg.hierarchy),
            walks: 0,
            instr_walks: 0,
            walk_refs: 0,
        }
    }

    /// Snapshots the cycle model's warm contents into a fresh functional
    /// machine — the cycle → functional half of a tier handoff. Carries
    /// membership, dirt, page size, and the `Type` bit; cycle-side
    /// recency is approximated by the cycle export's way order.
    pub fn from_cycle(system: &System) -> Self {
        let mut m = Self::new(&system.config);
        m.itlb.import_entries(system.itlb().export_entries());
        m.itlb.set_current_asid(system.itlb().current_asid());
        m.dtlb.import_entries(system.dtlb().export_entries());
        m.dtlb.set_current_asid(system.dtlb().current_asid());
        match system.stlb() {
            LastLevelTlb::Unified(t) => {
                m.stlb.import_entries(t.export_entries());
                m.stlb.set_current_asid(t.current_asid());
            }
            // Self::new above already rejected split configurations.
            LastLevelTlb::Split { .. } => unreachable!("split STLB rejected at construction"),
        }
        m.pscs.import_tags(system.pscs().export_tags());
        for (id, cache) in system.hierarchy.levels() {
            if let Some(level) = m.chain.level_mut(id) {
                level.import_lines(cache.export_lines());
            }
        }
        m
    }

    /// Seeds the cycle model's structures from this machine's contents —
    /// the functional → cycle half of a tier handoff. Exports iterate
    /// LRU-first, so the cycle policies' fill hooks rebuild each set
    /// with the same MRU ordering. Cycle-side statistics are untouched:
    /// a handoff is not simulated traffic.
    pub fn seed_cycle(&self, system: &mut System) {
        let path = system.path_mut();
        path.set_current_asid(self.itlb.current_asid());
        path.itlb_mut().import_entries(self.itlb.export_entries());
        path.dtlb_mut().import_entries(self.dtlb.export_entries());
        match path.stlb_mut() {
            LastLevelTlb::Unified(t) => t.import_entries(self.stlb.export_entries()),
            LastLevelTlb::Split { .. } => unreachable!("split STLB rejected at construction"),
        }
        path.pscs_mut().import_tags(self.pscs.export_tags());
        for (id, cache) in system.hierarchy.levels_mut() {
            if let Some(level) = self.chain.level(id) {
                cache.import_lines(level.export_lines());
            }
        }
    }

    /// Tier-boundary lockstep check: every entry this machine holds must
    /// be resident in the just-seeded cycle structures. Run after
    /// [`Self::seed_cycle`]; compiled only under `strict-contracts`.
    ///
    /// # Panics
    ///
    /// Panics on the first membership divergence, naming the structure.
    #[cfg(feature = "strict-contracts")]
    pub fn verify_seeded(&self, system: &System) {
        for (vpn, size, _, _, asid) in self.itlb.export_entries() {
            assert!(
                system
                    .itlb()
                    .contains_tagged(Vpn(vpn).base(size), size, asid),
                "tier handoff lost ITLB entry vpn={vpn:#x}"
            );
        }
        for (vpn, size, _, _, asid) in self.dtlb.export_entries() {
            assert!(
                system
                    .dtlb()
                    .contains_tagged(Vpn(vpn).base(size), size, asid),
                "tier handoff lost DTLB entry vpn={vpn:#x}"
            );
        }
        if let LastLevelTlb::Unified(t) = system.stlb() {
            for (vpn, size, _, _, asid) in self.stlb.export_entries() {
                assert!(
                    t.contains_tagged(Vpn(vpn).base(size), size, asid),
                    "tier handoff lost STLB entry vpn={vpn:#x}"
                );
            }
        }
        for level in self.chain.levels() {
            let cycle = system
                .hierarchy
                .cache(level.id())
                // The functional chain was built from this very
                // hierarchy's level list, so the lookup cannot fail.
                .expect("chain topologies match");
            for (block, _, _) in level.export_lines() {
                assert!(
                    cycle.contains(block),
                    "tier handoff lost {} block {block:#x}",
                    level.id().name()
                );
            }
        }
    }

    /// The full ITLB/DTLB → STLB → page-walk path, minus all timing.
    /// Returns the physical address.
    pub fn translate(
        &mut self,
        space: &mut AddressSpace,
        va: VirtAddr,
        kind: TranslationKind,
    ) -> PhysAddr {
        let l1 = if kind.is_instruction() {
            &mut self.itlb
        } else {
            &mut self.dtlb
        };
        if let Some((frame, size)) = l1.lookup(va, kind) {
            return frame.offset(va.page_offset(size));
        }
        // Production translates on every L1-TLB miss (page-table node
        // and frame allocation are first-touch, so call order matters).
        let tr = space.translate(va, kind);
        if self.stlb.lookup(va, kind).is_none() {
            // Page walk: PSC start level, then one chain access per
            // remaining page-table level, entering at the first shared
            // level with the translation kind's PTE class. Tags are
            // namespaced per address space exactly like the production
            // walker.
            let vpn4k = namespaced_vpn(
                match tr.size {
                    PageSize::Base4K => tr.vpn,
                    PageSize::Huge2M => tr.vpn << 9,
                },
                tr.asid,
            );
            let start_level = self.pscs.start_level(vpn4k);
            // itpx-allow: hot-alloc reference model: copies at most four (level, pa) pairs to release the page-table borrow before touching the chain
            let steps = tr.path.from_level(start_level).to_vec();
            for &(_level, pa) in &steps {
                self.chain
                    .access(SHARED, pa.block().index(), FillClass::pte_for(kind));
            }
            self.pscs.fill(vpn4k);
            self.walks += 1;
            if kind.is_instruction() {
                self.instr_walks += 1;
            }
            self.walk_refs += steps.len() as u64;
            self.stlb.fill(tr.vpn, tr.size, tr.frame, kind, tr.asid);
        }
        let l1 = if kind.is_instruction() {
            &mut self.itlb
        } else {
            &mut self.dtlb
        };
        l1.fill(tr.vpn, tr.size, tr.frame, kind, tr.asid);
        tr.pa
    }

    /// Instruction fetch of the block containing `va`.
    pub fn fetch(&mut self, space: &mut AddressSpace, va: VirtAddr) {
        let pa = self.translate(space, va, TranslationKind::Instruction);
        self.chain
            .access(L1I, pa.block().index(), FillClass::InstrPayload);
    }

    /// Data load from `va`.
    pub fn load(&mut self, space: &mut AddressSpace, va: VirtAddr) {
        let pa = self.translate(space, va, TranslationKind::Data);
        self.chain
            .access(L1D, pa.block().index(), FillClass::DataPayload);
    }

    /// Data store to `va` (dirties the L1D block after the chain access,
    /// matching the production order).
    pub fn store(&mut self, space: &mut AddressSpace, va: VirtAddr) {
        let pa = self.translate(space, va, TranslationKind::Data);
        let block = pa.block().index();
        self.chain.access(L1D, block, FillClass::DataPayload);
        self.chain.mark_dirty_l1d(block);
    }

    /// Mirrors [`System::context_switch`]: optionally flushes the
    /// incoming tenant's TLB entries and PSC namespace, then retargets
    /// every TLB level. The caller retargets the [`AddressSpace`]
    /// separately (it is not owned by the machine).
    pub fn context_switch(&mut self, asid: Asid, flush: bool) {
        if flush {
            self.itlb.flush_asid(asid);
            self.dtlb.flush_asid(asid);
            self.stlb.flush_asid(asid);
            self.pscs.flush_asid(asid);
        }
        self.itlb.set_current_asid(asid);
        self.dtlb.set_current_asid(asid);
        self.stlb.set_current_asid(asid);
    }

    /// Mirrors [`System::shootdown`]: a targeted invalidation of `va`
    /// under `asid` across every TLB level (PSC interiors survive, like
    /// production).
    pub fn shootdown(&mut self, va: VirtAddr, asid: Asid) {
        self.itlb.invalidate_page(va, asid);
        self.dtlb.invalidate_page(va, asid);
        self.stlb.invalidate_page(va, asid);
    }

    /// Mirrors the TLB half of [`System::churn_region`]: drops every
    /// entry inside a 2 MiB region after huge-page promotion/demotion.
    pub fn invalidate_region(&mut self, region_vpn2m: u64) {
        self.itlb.invalidate_region(region_vpn2m);
        self.dtlb.invalidate_region(region_vpn2m);
        self.stlb.invalidate_region(region_vpn2m);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::System;
    use itpx_core::presets::BuildConfig;
    use itpx_core::Preset;
    use itpx_types::{ThreadId, Vpn};

    fn cfg() -> SystemConfig {
        SystemConfig::asplos25()
    }

    fn table(c: &SystemConfig) -> AddressSpace {
        AddressSpace::single(c.huge_pages, c.seed, 0)
    }

    #[test]
    fn cold_fetch_walks_and_warms_everything() {
        let c = cfg();
        let mut pt = table(&c);
        let mut m = FunctionalMachine::new(&c);
        m.fetch(&mut pt, VirtAddr::new(0x51_0000_0000));
        assert_eq!(m.itlb.stats.accesses, [0, 1, 0, 0]);
        assert_eq!(m.itlb.stats.misses, [0, 1, 0, 0]);
        assert_eq!(m.walks, 1);
        assert_eq!(m.instr_walks, 1);
        assert_eq!(m.walk_refs, 5, "cold 4 KiB walk reads all five levels");
        m.fetch(&mut pt, VirtAddr::new(0x51_0000_0000));
        assert_eq!(m.walks, 1);
        assert_eq!(m.itlb.stats.misses, [0, 1, 0, 0]);
    }

    #[test]
    fn tlb_roundtrip_preserves_membership_and_recency() {
        let c = cfg();
        let mut src = FunctionalTlb::new(&c.itlb);
        src.fill(
            0x10,
            PageSize::Base4K,
            PhysAddr::new(0x1000),
            TranslationKind::Instruction,
            Asid::KERNEL,
        );
        src.fill(
            0x20,
            PageSize::Base4K,
            PhysAddr::new(0x2000),
            TranslationKind::Instruction,
            Asid::KERNEL,
        );
        let mut dst = FunctionalTlb::new(&c.itlb);
        dst.import_entries(src.export_entries());
        assert!(dst.contains(0x10, PageSize::Base4K));
        assert!(dst.contains(0x20, PageSize::Base4K));
        assert_eq!(dst.export_entries(), src.export_entries());
        assert_eq!(
            dst.stats.accesses, [0; 4],
            "imports do not count as traffic"
        );
    }

    #[test]
    fn cycle_handoff_roundtrip_preserves_membership() {
        let c = cfg();
        let bundle = Preset::Lru.build(&c.dims(), &BuildConfig::default());
        let mut sys = System::new(c, bundle, 1);
        // Warm the cycle model with a few translations + fetches.
        for i in 0..32u64 {
            let va = VirtAddr::new(0x51_0000_0000 + i * 4096);
            let tr = sys.translate(va, TranslationKind::Instruction, va.0, ThreadId(0), i * 500);
            sys.hierarchy.instr_fetch(tr.pa, va.0, ThreadId(0), i * 500);
        }
        let fun = FunctionalMachine::from_cycle(&sys);
        // Functional snapshot holds exactly what the cycle model holds.
        for i in 0..32u64 {
            let va = VirtAddr::new(0x51_0000_0000 + i * 4096);
            let resident_cycle = sys.itlb().contains(va, PageSize::Base4K)
                || match sys.stlb() {
                    LastLevelTlb::Unified(t) => t.contains(va, PageSize::Base4K),
                    LastLevelTlb::Split { .. } => false,
                };
            let vpn = va.vpn(PageSize::Base4K).0;
            let resident_fun = fun.itlb.contains(vpn, PageSize::Base4K)
                || fun.stlb.contains(vpn, PageSize::Base4K);
            assert_eq!(resident_cycle, resident_fun, "page {i} diverged");
        }
        // Seed back into a fresh cycle machine and verify membership.
        let c2 = cfg();
        let bundle2 = Preset::Lru.build(&c2.dims(), &BuildConfig::default());
        let mut sys2 = System::new(c2, bundle2, 1);
        fun.seed_cycle(&mut sys2);
        #[cfg(feature = "strict-contracts")]
        fun.verify_seeded(&sys2);
        for (vpn, size, _, _, _) in fun.itlb.export_entries() {
            assert!(sys2.itlb().contains(Vpn(vpn).base(size), size));
        }
        let l1i_fun = fun.chain.level(LevelId::L1I).expect("has L1I");
        let l1i_cycle = sys2.hierarchy.cache(LevelId::L1I).expect("has L1I");
        for (block, _, _) in l1i_fun.export_lines() {
            assert!(l1i_cycle.contains(block));
        }
        assert_eq!(
            l1i_cycle.stats().accesses(),
            0,
            "seeding is not simulated traffic"
        );
    }
}
