//! Trace-driven cycle-level out-of-order core and full-system simulator.
//!
//! This crate assembles the substrates (`itpx-vm`, `itpx-mem`,
//! `itpx-trace`) and the policies (`itpx-policy`, `itpx-core`) into the
//! simulated machine of the paper's Table 1 and runs workloads through it:
//!
//! * [`config`] — [`SystemConfig::asplos25`] mirrors Table 1; every knob
//!   the sensitivity studies sweep (ITLB size, STLB size/organization,
//!   huge-page fractions) is a field.
//! * [`branch`] — a hashed-perceptron-style branch predictor driving the
//!   decoupled front end.
//! * [`system`] — the structural model: TLBs, page-structure caches,
//!   walker, per-thread page tables, cache hierarchy, and the iTP+xPTP
//!   monitor plumbing of Figure 7.
//! * [`engine`] — the timing model: a timestamp-dataflow out-of-order
//!   core (decoupled front end with FDIP, ROB occupancy, register
//!   dependencies, in-order retire) for one or two SMT threads, plus the
//!   tiered schedule that interleaves functional fast-forward with
//!   cycle-accurate measurement windows.
//! * [`functional`] — the timing-free functional machine: the difftest
//!   reference model, promoted here so it can serve as the fast-forward
//!   tier with warm-state handoff at every tier boundary.
//! * [`sim`] — the [`Simulation`] facade used by examples and the
//!   experiment harness.
//!
//! # Example
//!
//! ```
//! use itpx_cpu::{Simulation, SystemConfig};
//! use itpx_core::Preset;
//! use itpx_trace::WorkloadSpec;
//!
//! let cfg = SystemConfig::asplos25();
//! let w = WorkloadSpec::server_like(1).instructions(5_000).warmup(1_000);
//! let out = Simulation::single_thread(&cfg, Preset::Lru, &w).run();
//! assert!(out.ipc() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod branch;
pub mod config;
pub mod engine;
pub mod functional;
pub mod output;
pub mod sim;
pub mod system;

pub use branch::HashedPerceptron;
pub use config::SystemConfig;
pub use engine::{Engine, Tier};
pub use functional::{FunctionalChain, FunctionalMachine, FunctionalPscs, FunctionalTlb};
pub use output::{LevelReport, SimulationOutput, ThreadOutput, WalkerSummary};
pub use sim::Simulation;
pub use system::System;
