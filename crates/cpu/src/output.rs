//! Simulation results: everything the paper's figures report.

use itpx_trace::TierSchedule;
use itpx_types::{LevelId, MpkiBreakdown, StructStats};

/// Per-hardware-thread results.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadOutput {
    /// Workload name.
    pub workload: String,
    /// Measured (post-warmup) instructions.
    pub instructions: u64,
    /// Cycles spent retiring them.
    pub cycles: u64,
    /// Cycles the front end stalled waiting for instruction address
    /// translation (the Figure 1 metric).
    pub itrans_stall_cycles: u64,
    /// Branch mispredictions during measurement.
    pub mispredictions: u64,
}

impl ThreadOutput {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Fraction of cycles spent on instruction address translation.
    pub fn itrans_stall_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.itrans_stall_cycles as f64 / self.cycles as f64
        }
    }
}

/// Page-walker summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalkerSummary {
    /// Total page walks.
    pub walks: u64,
    /// Walks serving instruction translations.
    pub instruction_walks: u64,
    /// Walks serving data translations.
    pub data_walks: u64,
    /// Mean walk latency in cycles.
    pub avg_latency: f64,
    /// Mean memory references per walk.
    pub avg_memory_refs: f64,
}

/// Statistics of one cache level of the chain.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelReport {
    /// Which chain level this reports.
    pub id: LevelId,
    /// The level's access/miss statistics.
    pub stats: StructStats,
}

/// Full results of one simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationOutput {
    /// Name of the policy preset that ran.
    pub preset: String,
    /// LLC policy name.
    pub llc_policy: String,
    /// Per-thread results (1 or 2 entries).
    pub threads: Vec<ThreadOutput>,
    /// Tiered execution schedule the run used (flat = the classic
    /// single-window run). Carried so downstream consumers can tell how
    /// the measured counters were gathered.
    pub tiers: TierSchedule,
    /// First-level instruction TLB statistics.
    pub itlb: StructStats,
    /// First-level data TLB statistics.
    pub dtlb: StructStats,
    /// Last-level TLB statistics (aggregated over split organizations).
    pub stlb: StructStats,
    /// L1I statistics.
    pub l1i: StructStats,
    /// L1D statistics.
    pub l1d: StructStats,
    /// L2C statistics — the structure xPTP manages.
    pub l2c: StructStats,
    /// LLC statistics (empty when the chain has no LLC).
    pub llc: StructStats,
    /// Every cache level of the chain in order (L1I, L1D, then the
    /// shared levels). Covers levels the named fields cannot express,
    /// such as the L3 of 4-level chains.
    pub cache_levels: Vec<LevelReport>,
    /// Walker summary.
    pub walker: WalkerSummary,
    /// DRAM reads during measurement.
    pub dram_reads: u64,
    /// DRAM writebacks during measurement.
    pub dram_writes: u64,
    /// Fraction of epochs with xPTP enabled (only for iTP+xPTP).
    pub xptp_enabled_fraction: Option<f64>,
}

impl SimulationOutput {
    /// Total measured instructions across threads.
    pub fn instructions(&self) -> u64 {
        self.threads.iter().map(|t| t.instructions).sum()
    }

    /// Aggregate IPC: the sum of per-thread IPCs (the standard SMT
    /// throughput metric; equals plain IPC for one thread).
    pub fn ipc(&self) -> f64 {
        self.threads.iter().map(|t| t.ipc()).sum()
    }

    /// Relative IPC improvement over a baseline run, in percent.
    pub fn speedup_pct_over(&self, baseline: &SimulationOutput) -> f64 {
        (self.ipc() / baseline.ipc() - 1.0) * 100.0
    }

    /// STLB misses per kilo-instruction.
    pub fn stlb_mpki(&self) -> f64 {
        self.stlb.mpki(self.instructions())
    }

    /// STLB MPKI split into instruction (`instr`) and data (`data`)
    /// translations — the Figure 10 breakdown.
    pub fn stlb_breakdown(&self) -> MpkiBreakdown {
        self.stlb.mpki_breakdown(self.instructions())
    }

    /// L2C misses per kilo-instruction.
    pub fn l2c_mpki(&self) -> f64 {
        self.l2c.mpki(self.instructions())
    }

    /// L2C MPKI broken into the four Figure 4 classes.
    pub fn l2c_breakdown(&self) -> MpkiBreakdown {
        self.l2c.mpki_breakdown(self.instructions())
    }

    /// LLC misses per kilo-instruction.
    pub fn llc_mpki(&self) -> f64 {
        self.llc.mpki(self.instructions())
    }

    /// LLC MPKI broken into the four Figure 4 classes.
    pub fn llc_breakdown(&self) -> MpkiBreakdown {
        self.llc.mpki_breakdown(self.instructions())
    }

    /// Mean cycles the front end stalled on instruction translation, as a
    /// fraction of all cycles (averaged over threads) — the Figure 1
    /// metric.
    pub fn itrans_stall_fraction(&self) -> f64 {
        if self.threads.is_empty() {
            return 0.0;
        }
        self.threads
            .iter()
            .map(|t| t.itrans_stall_fraction())
            .sum::<f64>()
            / self.threads.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn thread(instructions: u64, cycles: u64) -> ThreadOutput {
        ThreadOutput {
            workload: "w".into(),
            instructions,
            cycles,
            itrans_stall_cycles: cycles / 10,
            mispredictions: 0,
        }
    }

    fn output(threads: Vec<ThreadOutput>) -> SimulationOutput {
        SimulationOutput {
            preset: "LRU".into(),
            llc_policy: "LRU".into(),
            threads,
            tiers: TierSchedule::flat(),
            itlb: StructStats::new(),
            dtlb: StructStats::new(),
            stlb: StructStats::new(),
            l1i: StructStats::new(),
            l1d: StructStats::new(),
            l2c: StructStats::new(),
            llc: StructStats::new(),
            cache_levels: Vec::new(),
            walker: WalkerSummary {
                walks: 0,
                instruction_walks: 0,
                data_walks: 0,
                avg_latency: 0.0,
                avg_memory_refs: 0.0,
            },
            dram_reads: 0,
            dram_writes: 0,
            xptp_enabled_fraction: None,
        }
    }

    #[test]
    fn smt_ipc_is_throughput_sum() {
        let o = output(vec![thread(1000, 2000), thread(1000, 1000)]);
        assert!((o.ipc() - 1.5).abs() < 1e-12);
        assert_eq!(o.instructions(), 2000);
    }

    #[test]
    fn speedup_is_relative_percent() {
        let a = output(vec![thread(1000, 1000)]);
        let b = output(vec![thread(1000, 2000)]);
        assert!((a.speedup_pct_over(&b) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn stall_fraction_averages_threads() {
        let o = output(vec![thread(10, 100), thread(10, 100)]);
        assert!((o.itrans_stall_fraction() - 0.1).abs() < 1e-12);
    }
}
