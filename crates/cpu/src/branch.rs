//! A hashed-perceptron branch predictor (Table 1 cites Tarjan & Skadron's
//! hashed perceptron).
//!
//! Four weight tables are indexed by hashes of the branch PC with
//! different slices of the global history; the prediction is the sign of
//! the summed weights, and training adjusts all contributing weights on a
//! misprediction or a low-confidence correct prediction.

use itpx_types::SetGrid;

/// Hashed-perceptron predictor.
///
/// The weight tables live in one flat [`SetGrid`] (one row per table), so
/// each of the four per-prediction table reads is a single indexed load.
#[derive(Debug, Clone)]
pub struct HashedPerceptron {
    tables: SetGrid<i8>,
    history: u64,
    threshold: i32,
    predictions: u64,
    mispredictions: u64,
}

const TABLE_BITS: usize = 12;
const NUM_TABLES: usize = 4;

impl HashedPerceptron {
    /// Creates a predictor with default geometry (4 × 4096 weights).
    pub fn new() -> Self {
        Self {
            tables: SetGrid::new(NUM_TABLES, 1 << TABLE_BITS, 0i8),
            history: 0,
            threshold: 6,
            predictions: 0,
            mispredictions: 0,
        }
    }

    fn index(&self, table: usize, pc: u64) -> usize {
        // Each table sees a different history slice length (0, 4, 8, 16).
        let bits = [0u32, 4, 8, 16][table];
        let h = if bits == 0 {
            0
        } else {
            self.history & ((1u64 << bits) - 1)
        };
        let x = (pc >> 2) ^ h.wrapping_mul(0x9e37_79b9) ^ (table as u64) << 7;
        (x as usize) & ((1 << TABLE_BITS) - 1)
    }

    fn sum(&self, pc: u64) -> i32 {
        (0..NUM_TABLES)
            // index() masks into each table's power-of-two length
            .map(|t| i32::from(self.tables.row(t)[self.index(t, pc)]))
            .sum()
    }

    /// Predicts the direction of the branch at `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        self.sum(pc) >= 0
    }

    /// Trains on the actual outcome and updates the global history.
    /// Returns `true` if the prediction was correct.
    pub fn update(&mut self, pc: u64, taken: bool) -> bool {
        let sum = self.sum(pc);
        let predicted = sum >= 0;
        let correct = predicted == taken;
        self.predictions += 1;
        if !correct {
            self.mispredictions += 1;
        }
        if !correct || sum.abs() <= self.threshold {
            for t in 0..NUM_TABLES {
                let i = self.index(t, pc);
                let w = &mut self.tables.row_mut(t)[i];
                *w = if taken {
                    w.saturating_add(1)
                } else {
                    w.saturating_sub(1)
                };
            }
        }
        self.history = (self.history << 1) | taken as u64;
        correct
    }

    /// Mispredictions per kilo-prediction.
    pub fn mpki_like(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 * 1000.0 / self.predictions as f64
        }
    }

    /// (predictions, mispredictions) so far.
    pub fn counts(&self) -> (u64, u64) {
        (self.predictions, self.mispredictions)
    }

    /// Adopts `other`'s learned state — weight tables and global history —
    /// without touching this predictor's prediction/misprediction
    /// counters. This is the warm-state import at a tier boundary: the
    /// functional tier trains a clone, and the cycle model takes the
    /// training without inheriting off-window accounting.
    pub fn import_state(&mut self, other: &Self) {
        self.tables = other.tables.clone();
        self.history = other.history;
        self.threshold = other.threshold;
    }
}

impl Default for HashedPerceptron {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_an_always_taken_branch() {
        let mut p = HashedPerceptron::new();
        for _ in 0..50 {
            p.update(0x400, true);
        }
        assert!(p.predict(0x400));
        let (n, m) = p.counts();
        assert_eq!(n, 50);
        assert!(m < 5);
    }

    #[test]
    fn learns_an_alternating_pattern_via_history() {
        let mut p = HashedPerceptron::new();
        let mut correct = 0;
        for i in 0..2000u32 {
            let taken = i % 2 == 0;
            if p.predict(0x88) == taken {
                correct += 1;
            }
            p.update(0x88, taken);
        }
        // The last 500: should be nearly perfect once history kicks in.
        assert!(correct > 1500, "correct={correct}");
    }

    #[test]
    fn distinguishes_sites() {
        let mut p = HashedPerceptron::new();
        for _ in 0..64 {
            p.update(0x100, true);
            p.update(0x200, false);
        }
        assert!(p.predict(0x100));
        assert!(!p.predict(0x200));
    }

    #[test]
    fn mpki_like_is_bounded() {
        let mut p = HashedPerceptron::new();
        assert_eq!(p.mpki_like(), 0.0);
        for i in 0..100u32 {
            p.update(0x40 + (i as u64 % 7) * 4, i % 3 == 0);
        }
        assert!(p.mpki_like() <= 1000.0);
    }
}
