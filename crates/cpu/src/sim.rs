//! The [`Simulation`] facade: configure, run, get results.

use crate::config::SystemConfig;
use crate::engine::Engine;
use crate::output::SimulationOutput;
use crate::system::System;
use itpx_core::presets::{BuildConfig, PolicyBundle};
use itpx_core::Preset;
use itpx_trace::{SmtPairSpec, TraceLoop, WorkloadSource, WorkloadSpec};

/// One configured simulation run.
///
/// # Examples
///
/// ```
/// use itpx_cpu::{Simulation, SystemConfig};
/// use itpx_core::Preset;
/// use itpx_trace::WorkloadSpec;
///
/// let cfg = SystemConfig::asplos25();
/// let w = WorkloadSpec::server_like(3).instructions(5_000).warmup(1_000);
/// let lru = Simulation::single_thread(&cfg, Preset::Lru, &w).run();
/// let itp = Simulation::single_thread(&cfg, Preset::Itp, &w).run();
/// let _uplift = itp.speedup_pct_over(&lru);
/// ```
#[derive(Debug)]
pub struct Simulation {
    config: SystemConfig,
    build: BuildConfig,
    source: Source,
    workloads: Vec<WorkloadSource>,
}

#[derive(Debug)]
enum Source {
    Preset(Preset),
    // Boxed: a bundle of inline policy engines is hundreds of bytes, and
    // this setup-only enum is consumed once when the run starts.
    Custom {
        bundle: Box<PolicyBundle>,
        label: String,
    },
}

impl Simulation {
    /// A single-thread run of `preset` on workload `w`.
    pub fn single_thread(config: &SystemConfig, preset: Preset, w: &WorkloadSpec) -> Self {
        Self {
            config: *config,
            build: BuildConfig::default(),
            source: Source::Preset(preset),
            workloads: vec![w.clone().into()],
        }
    }

    /// A single-thread run of `preset` replaying a recorded trace in a
    /// loop (see [`itpx_trace::TraceLoop`]); `name` labels the run.
    pub fn replay(
        config: &SystemConfig,
        preset: Preset,
        name: impl Into<String>,
        insts: Vec<itpx_trace::TraceInst>,
        instructions: u64,
        warmup: u64,
    ) -> Self {
        Self {
            config: *config,
            build: BuildConfig::default(),
            source: Source::Preset(preset),
            workloads: vec![WorkloadSource::Replay {
                name: name.into(),
                stream: TraceLoop::new(insts),
                instructions,
                warmup,
            }],
        }
    }

    /// A two-hardware-thread (SMT) run replaying two recorded traces.
    #[allow(clippy::too_many_arguments)]
    pub fn replay_pair(
        config: &SystemConfig,
        preset: Preset,
        a: (String, Vec<itpx_trace::TraceInst>),
        b: (String, Vec<itpx_trace::TraceInst>),
        instructions: u64,
        warmup: u64,
    ) -> Self {
        let replay = |(name, insts): (String, Vec<itpx_trace::TraceInst>)| WorkloadSource::Replay {
            name,
            stream: TraceLoop::new(insts),
            instructions,
            warmup,
        };
        Self {
            config: *config,
            build: BuildConfig::default(),
            source: Source::Preset(preset),
            workloads: vec![replay(a), replay(b)],
        }
    }

    /// A two-hardware-thread (SMT) run of `preset` on a workload pair.
    pub fn smt(config: &SystemConfig, preset: Preset, pair: &SmtPairSpec) -> Self {
        Self {
            config: *config,
            build: BuildConfig::default(),
            source: Source::Preset(preset),
            workloads: vec![pair.a.clone().into(), pair.b.clone().into()],
        }
    }

    /// A run with hand-built policies (used for the Figure 3 motivation
    /// policies and ablations); `label` names the configuration in the
    /// output.
    pub fn custom(
        config: &SystemConfig,
        bundle: PolicyBundle,
        label: impl Into<String>,
        workloads: &[WorkloadSpec],
    ) -> Self {
        Self {
            config: *config,
            build: BuildConfig::default(),
            source: Source::Custom {
                bundle: Box::new(bundle),
                label: label.into(),
            },
            workloads: workloads.iter().cloned().map(Into::into).collect(),
        }
    }

    /// Overrides the policy build knobs (LLC choice, iTP/xPTP parameters,
    /// adaptive threshold). Ignored for [`Simulation::custom`] runs.
    #[must_use]
    pub fn build_config(mut self, build: BuildConfig) -> Self {
        self.build = build;
        self
    }

    /// Runs the simulation to completion.
    pub fn run(self) -> SimulationOutput {
        let threads = self.workloads.len();
        let (bundle, label) = match self.source {
            Source::Preset(p) => (
                p.build(&self.config.dims(), &self.build),
                p.name().to_string(),
            ),
            Source::Custom { bundle, label } => (*bundle, label),
        };
        let llc_name = self.build.llc.name().to_string();
        let system = System::new(self.config, bundle, threads);
        Engine::from_sources(system, self.workloads).run(&label, &llc_name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itpx_core::presets::LlcChoice;
    use itpx_trace::suites;

    fn tiny(seed: u64) -> WorkloadSpec {
        WorkloadSpec::server_like(seed)
            .instructions(20_000)
            .warmup(5_000)
    }

    #[test]
    fn single_thread_run_produces_sane_output() {
        let cfg = SystemConfig::asplos25();
        let out = Simulation::single_thread(&cfg, Preset::Lru, &tiny(1)).run();
        assert_eq!(out.threads.len(), 1);
        assert_eq!(out.instructions(), 20_000);
        let ipc = out.ipc();
        // Short cold runs over a multi-megabyte footprint are
        // DRAM-bound, so the floor is low.
        assert!(ipc > 0.01 && ipc < 6.0, "implausible IPC {ipc}");
        assert!(out.stlb.accesses() > 0, "STLB never consulted");
        assert!(out.walker.walks > 0, "no page walks on a huge footprint");
        assert!(out.l2c.accesses() > 0);
    }

    #[test]
    fn server_workloads_pressure_the_stlb() {
        let cfg = SystemConfig::asplos25();
        let out = Simulation::single_thread(&cfg, Preset::Lru, &tiny(2)).run();
        assert!(
            out.stlb_mpki() > 1.0,
            "server workload should exceed the paper's MPKI >= 1 selection bar, got {}",
            out.stlb_mpki()
        );
        let b = out.stlb_breakdown();
        assert!(b.instr > 0.0, "instruction STLB misses expected");
    }

    #[test]
    fn spec_workloads_barely_miss_on_instructions() {
        let cfg = SystemConfig::asplos25();
        let w = WorkloadSpec::spec_like(1)
            .instructions(20_000)
            .warmup(5_000);
        let out = Simulation::single_thread(&cfg, Preset::Lru, &w).run();
        let b = out.stlb_breakdown();
        assert!(
            b.instr < 0.05,
            "SPEC-like code fits the ITLB, got iMPKI {}",
            b.instr
        );
        assert!(out.itrans_stall_fraction() < 0.02);
    }

    #[test]
    fn smt_run_reports_two_threads() {
        let cfg = SystemConfig::asplos25();
        let pair = &suites::smt_suite(1)[0];
        let mut pair = pair.clone();
        pair.a = pair.a.instructions(15_000).warmup(3_000);
        pair.b = pair.b.instructions(15_000).warmup(3_000);
        let out = Simulation::smt(&cfg, Preset::Lru, &pair).run();
        assert_eq!(out.threads.len(), 2);
        assert!(out.ipc() > 0.01);
        assert!(out.threads[0].cycles > 0 && out.threads[1].cycles > 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let cfg = SystemConfig::asplos25();
        let a = Simulation::single_thread(&cfg, Preset::ItpXptp, &tiny(5)).run();
        let b = Simulation::single_thread(&cfg, Preset::ItpXptp, &tiny(5)).run();
        assert_eq!(a, b);
    }

    #[test]
    fn llc_choice_is_plumbed_through() {
        let cfg = SystemConfig::asplos25();
        let out = Simulation::single_thread(&cfg, Preset::Itp, &tiny(1))
            .build_config(BuildConfig {
                llc: LlcChoice::Ship,
                ..BuildConfig::default()
            })
            .run();
        assert_eq!(out.llc_policy, "SHiP");
    }

    #[test]
    fn itp_xptp_reports_monitor_activity() {
        let cfg = SystemConfig::asplos25();
        let out = Simulation::single_thread(&cfg, Preset::ItpXptp, &tiny(3)).run();
        let f = out.xptp_enabled_fraction.expect("monitor present");
        assert!(
            f > 0.5,
            "high-pressure workload should keep xPTP mostly on, got {f}"
        );
        let lru = Simulation::single_thread(&cfg, Preset::Lru, &tiny(3)).run();
        assert_eq!(lru.xptp_enabled_fraction, None);
    }
}
