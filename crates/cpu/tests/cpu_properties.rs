//! Property tests for the full-system simulator: structural invariants
//! that must hold for any workload seed and preset.

use itpx_core::Preset;
use itpx_cpu::{Simulation, SystemConfig};
use itpx_trace::WorkloadSpec;
use proptest::prelude::*;

fn small(seed: u64) -> WorkloadSpec {
    WorkloadSpec::server_like(seed)
        .instructions(12_000)
        .warmup(3_000)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn outputs_are_internally_consistent(seed in 0u64..64, preset_idx in 0usize..10) {
        let cfg = SystemConfig::asplos25();
        let preset = Preset::EVALUATED[preset_idx];
        let out = Simulation::single_thread(&cfg, preset, &small(seed)).run();

        // Counts.
        prop_assert_eq!(out.instructions(), 12_000);
        prop_assert!(out.threads[0].cycles > 0);

        // IPC cannot exceed the fetch/retire width.
        prop_assert!(out.ipc() <= cfg.fetch_width as f64);

        // Hit/miss accounting.
        prop_assert!(out.stlb.misses() <= out.stlb.accesses());
        prop_assert!(out.l2c.misses() <= out.l2c.accesses());
        prop_assert!(out.llc.misses() <= out.llc.accesses());
        prop_assert!(out.itlb.accesses() > 0, "fetch must consult the ITLB");
        prop_assert!(out.dtlb.accesses() > 0, "loads must consult the DTLB");

        // The STLB only sees L1-TLB misses.
        prop_assert!(
            out.stlb.accesses() <= out.itlb.misses() + out.dtlb.misses(),
            "STLB accesses ({}) exceed L1 TLB misses ({})",
            out.stlb.accesses(),
            out.itlb.misses() + out.dtlb.misses()
        );

        // Walker activity matches STLB misses (merges allow fewer walks).
        prop_assert!(out.walker.walks <= out.stlb.misses() + 16);

        // Stall fraction is a fraction.
        let f = out.itrans_stall_fraction();
        prop_assert!((0.0..=1.0).contains(&f), "stall fraction {f}");
    }

    #[test]
    fn deterministic_across_presets(seed in 0u64..32) {
        let cfg = SystemConfig::asplos25();
        let a = Simulation::single_thread(&cfg, Preset::ItpXptp, &small(seed)).run();
        let b = Simulation::single_thread(&cfg, Preset::ItpXptp, &small(seed)).run();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn bigger_stlb_never_increases_misses_much(seed in 0u64..16) {
        let small_cfg = SystemConfig::asplos25();
        let big_cfg = small_cfg.with_stlb_entries(3072);
        let w = small(seed);
        let s = Simulation::single_thread(&small_cfg, Preset::Lru, &w).run();
        let b = Simulation::single_thread(&big_cfg, Preset::Lru, &w).run();
        prop_assert!(
            b.stlb.misses() <= s.stlb.misses() + s.stlb.misses() / 10 + 8,
            "doubling the STLB should not increase misses: {} -> {}",
            s.stlb.misses(),
            b.stlb.misses()
        );
    }
}
