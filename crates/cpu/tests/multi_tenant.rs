//! Multi-tenant execution contracts: the flat context schedule is
//! byte-identical to a classic run, consolidation runs are deterministic
//! in both execution tiers, and the switch-policy/shootdown/churn knobs
//! move the translation counters the way the hardware story says they
//! should.

use itpx_core::Preset;
use itpx_cpu::{Simulation, SystemConfig};
use itpx_trace::{ContextSchedule, SwitchPolicy, TierSchedule, WorkloadSpec};

fn base(seed: u64) -> WorkloadSpec {
    WorkloadSpec::server_like(seed)
        .instructions(30_000)
        .warmup(8_000)
}

fn consolidated(tenants: u16, policy: SwitchPolicy) -> WorkloadSpec {
    base(7).contexts(ContextSchedule::round_robin(tenants, 3_000, policy))
}

/// The explicit flat schedule must reproduce the untouched spec's run
/// *exactly* — every counter, every cycle, every `f64` bit. This is the
/// degenerate-case gate: single-tenant behavior (and goldens) cannot move.
#[test]
fn flat_contexts_are_byte_identical_to_the_classic_run() {
    let cfg = SystemConfig::asplos25();
    for preset in [Preset::Lru, Preset::ItpXptp] {
        let classic = Simulation::single_thread(&cfg, preset, &base(7)).run();
        let w = base(7).contexts(ContextSchedule::flat());
        let flat = Simulation::single_thread(&cfg, preset, &w).run();
        assert_eq!(classic, flat, "{preset:?}: flat contexts diverged");
    }
}

/// A 2-tenant round-robin run completes, reports plausible results, and
/// is bit-for-bit reproducible.
#[test]
fn consolidation_run_is_deterministic_and_sane() {
    let cfg = SystemConfig::asplos25();
    let w = consolidated(2, SwitchPolicy::FlushAsid);
    let a = Simulation::single_thread(&cfg, Preset::Lru, &w).run();
    let b = Simulation::single_thread(&cfg, Preset::Lru, &w).run();
    assert_eq!(a, b, "consolidation run not deterministic");
    let ipc = a.ipc();
    assert!(ipc > 0.01 && ipc < 6.0, "implausible IPC {ipc}");
    assert!(a.walker.walks > 0, "tenants never walked");
    assert!(a.stlb.misses() > 0, "tenants never missed the STLB");
}

/// Tag-preserving switches keep each tenant's translations live across
/// quanta; flushing switches restart every quantum cold. The flush run
/// must therefore walk strictly more.
#[test]
fn flush_policy_walks_more_than_preserve() {
    let cfg = SystemConfig::asplos25();
    let flush =
        Simulation::single_thread(&cfg, Preset::Lru, &consolidated(2, SwitchPolicy::FlushAsid))
            .run();
    let preserve =
        Simulation::single_thread(&cfg, Preset::Lru, &consolidated(2, SwitchPolicy::Preserve))
            .run();
    assert!(
        flush.walker.walks > preserve.walker.walks,
        "flushing switches must force more walks ({} vs {})",
        flush.walker.walks,
        preserve.walker.walks
    );
}

/// More tenants sharing one STLB means more capacity pressure: walks grow
/// monotonically from 1 to 4 tenants under the preserving policy.
#[test]
fn tenant_pressure_grows_with_consolidation() {
    let cfg = SystemConfig::asplos25();
    let single = Simulation::single_thread(&cfg, Preset::Lru, &base(7)).run();
    let quad =
        Simulation::single_thread(&cfg, Preset::Lru, &consolidated(4, SwitchPolicy::Preserve))
            .run();
    assert!(
        quad.walker.walks > single.walker.walks,
        "4 tenants must out-walk 1 ({} vs {})",
        quad.walker.walks,
        single.walker.walks
    );
}

/// Shootdown and churn cadences inject invalidations both tiers must
/// absorb: the run stays deterministic and walks strictly more than the
/// cadence-free schedule (every fired event destroys live translations).
#[test]
fn shootdowns_and_churn_force_extra_walks() {
    let cfg = SystemConfig::asplos25();
    let calm = consolidated(2, SwitchPolicy::Preserve);
    let stormy = base(7).contexts(
        ContextSchedule::round_robin(2, 3_000, SwitchPolicy::Preserve)
            .shootdowns(500)
            .churn(2_000),
    );
    let calm_out = Simulation::single_thread(&cfg, Preset::Lru, &calm).run();
    let a = Simulation::single_thread(&cfg, Preset::Lru, &stormy).run();
    let b = Simulation::single_thread(&cfg, Preset::Lru, &stormy).run();
    assert_eq!(a, b, "storm run not deterministic");
    assert!(
        a.walker.walks > calm_out.walker.walks,
        "cadence events must force extra walks ({} vs {})",
        a.walker.walks,
        calm_out.walker.walks
    );
}

/// Global pages are exempt from tag matching and survive flushing
/// switches, so a run with a shared global fraction walks less than the
/// same run with fully private address spaces.
#[test]
fn global_pages_survive_flushing_switches() {
    let cfg = SystemConfig::asplos25();
    let private = consolidated(2, SwitchPolicy::FlushAsid);
    let shared = base(7)
        .contexts(ContextSchedule::round_robin(2, 3_000, SwitchPolicy::FlushAsid).globals(0.5, 11));
    let p = Simulation::single_thread(&cfg, Preset::Lru, &private).run();
    let s = Simulation::single_thread(&cfg, Preset::Lru, &shared).run();
    assert!(
        s.walker.walks < p.walker.walks,
        "shared globals must reduce re-walks ({} vs {})",
        s.walker.walks,
        p.walker.walks
    );
}

/// The multi-tenant schedule composes with tiered execution: the
/// schedule clock spans fast-forwards and windows, both tiers fire the
/// same switches, and the run stays deterministic.
#[test]
fn tiered_and_multi_tenant_schedules_compose() {
    let cfg = SystemConfig::asplos25();
    let w = WorkloadSpec::server_like(3)
        .warmup(5_000)
        .tiers(TierSchedule::tiered(5_000, 20_000, 3))
        .contexts(
            ContextSchedule::round_robin(2, 3_000, SwitchPolicy::FlushAsid)
                .shootdowns(700)
                .churn(2_500),
        );
    let a = Simulation::single_thread(&cfg, Preset::Lru, &w).run();
    let b = Simulation::single_thread(&cfg, Preset::Lru, &w).run();
    assert_eq!(a, b, "tiered multi-tenant run not deterministic");
    assert_eq!(a.instructions(), 15_000, "3 × 5k measured");
    let ipc = a.ipc();
    assert!(ipc > 0.01 && ipc < 6.0, "implausible IPC {ipc}");
}
