//! Tiered-execution contracts: the degenerate schedule is byte-identical
//! to the classic run, warm-state handoffs keep windows warm, and tiered
//! runs are deterministic.

use itpx_core::Preset;
use itpx_cpu::{Simulation, SystemConfig, Tier};
use itpx_trace::{TierSchedule, WorkloadSpec};

fn base(seed: u64) -> WorkloadSpec {
    WorkloadSpec::server_like(seed)
        .instructions(30_000)
        .warmup(8_000)
}

/// A zero-fast-forward schedule whose windows sum to the flat run's
/// instruction count must reproduce the flat run *exactly* — every
/// counter, every cycle, every `f64` bit. The schedule metadata is the
/// only permitted difference.
#[test]
fn degenerate_schedule_is_byte_identical_to_flat() {
    let cfg = SystemConfig::asplos25();
    for preset in [Preset::Lru, Preset::ItpXptp] {
        let flat = Simulation::single_thread(&cfg, preset, &base(7)).run();
        let w = base(7).tiers(TierSchedule::tiered(10_000, 0, 3));
        let mut tiered = Simulation::single_thread(&cfg, preset, &w).run();
        assert!(!tiered.tiers.is_flat());
        assert_eq!(flat.tiers, TierSchedule::flat());
        tiered.tiers = flat.tiers;
        assert_eq!(flat, tiered, "{preset:?}: degenerate schedule diverged");
    }
}

/// A real tiered run: 4 windows of 5k instructions with 50k fast-forward
/// gaps covers an 11× longer horizon than it measures, stays warm across
/// every handoff, and reports plausible results.
#[test]
fn tiered_run_measures_windows_over_a_long_horizon() {
    let cfg = SystemConfig::asplos25();
    let schedule = TierSchedule::tiered(5_000, 50_000, 4);
    let w = WorkloadSpec::server_like(3).warmup(5_000).tiers(schedule);
    let out = Simulation::single_thread(&cfg, Preset::Lru, &w).run();
    assert_eq!(out.instructions(), 20_000, "4 × 5k measured");
    assert_eq!(out.tiers, schedule);
    assert_eq!(out.tiers.horizon(), 220_000, "11× the measured span");
    let ipc = out.ipc();
    assert!(ipc > 0.01 && ipc < 6.0, "implausible IPC {ipc}");
    assert!(out.stlb.accesses() > 0, "STLB never consulted");
    assert!(out.walker.walks > 0, "no walks on a huge footprint");
    // Warm-state handoff: post-fast-forward windows must not be cold.
    // A cold 8-way 64-set L1I would miss on nearly every distinct block;
    // warm handoffs keep the hit rate high.
    let l1i_miss_rate = out.l1i.misses() as f64 / out.l1i.accesses().max(1) as f64;
    assert!(
        l1i_miss_rate < 0.5,
        "L1I miss rate {l1i_miss_rate:.2} suggests windows started cold"
    );
}

/// Same spec, same schedule, two runs: identical output (the phase fork
/// is deterministic per segment).
#[test]
fn tiered_runs_are_deterministic() {
    let cfg = SystemConfig::asplos25();
    let w = WorkloadSpec::server_like(5)
        .warmup(4_000)
        .tiers(TierSchedule::tiered(4_000, 30_000, 3));
    let a = Simulation::single_thread(&cfg, Preset::ItpXptp, &w).run();
    let b = Simulation::single_thread(&cfg, Preset::ItpXptp, &w).run();
    assert_eq!(a, b);
}

/// The schedule lowers into the segment sequence the engine executes.
#[test]
fn schedule_lowers_to_alternating_segments() {
    let s = TierSchedule::tiered(1_000, 9_000, 2);
    assert_eq!(
        Tier::segments(&s),
        vec![
            Tier::FastForward {
                instructions: 9_000
            },
            Tier::Window {
                instructions: 1_000
            },
            Tier::FastForward {
                instructions: 9_000
            },
            Tier::Window {
                instructions: 1_000
            },
        ]
    );
    // Back-to-back windows: no fast-forward segments.
    let s = TierSchedule::tiered(1_000, 0, 2);
    assert_eq!(
        Tier::segments(&s),
        vec![
            Tier::Window {
                instructions: 1_000
            },
            Tier::Window {
                instructions: 1_000
            },
        ]
    );
    assert!(Tier::segments(&TierSchedule::flat()).is_empty());
}
