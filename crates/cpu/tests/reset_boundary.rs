//! The warmup/measurement boundary must zero *every* counter the
//! simulator reports — one missed counter silently pollutes measured
//! statistics with warmup traffic.
//!
//! `System::reset_stats` derives its coverage by iterating structures
//! (the translation path walks its pipeline, the hierarchy walks its
//! level chain), so these assertions also guard new levels: a 4-level
//! chain is reset through the same iteration as the paper's 3-level
//! machine.

use itpx_core::presets::BuildConfig;
use itpx_core::Preset;
use itpx_cpu::{Simulation, System, SystemConfig};
use itpx_mem::HierarchyConfig;
use itpx_trace::{TierSchedule, WorkloadSpec};
use itpx_types::{ResetBoundary, ThreadId, TranslationKind, VirtAddr};

/// Drives enough varied traffic through the machine that every counter
/// class is nonzero: TLB accesses and misses, walks, cache accesses and
/// misses at each level, prefetch nominations, and DRAM reads.
fn warm_up(s: &mut System) {
    for i in 0..200u64 {
        let code = VirtAddr::new(0x10_0000_0000 + i * 4096);
        let t = s.translate(
            code,
            TranslationKind::Instruction,
            code.0,
            ThreadId(0),
            i * 50,
        );
        s.hierarchy.instr_fetch(t.pa, code.0, ThreadId(0), t.done);
        let data = VirtAddr::new(0x20_0000_0000 + i * 4096);
        let t = s.translate(
            data,
            TranslationKind::Data,
            code.0,
            ThreadId(0),
            i * 50 + 10,
        );
        s.hierarchy
            .data_access(t.pa, code.0, ThreadId(0), i % 3 == 0, t.stlb_miss, t.done);
    }
}

fn assert_all_counters_zero(s: &System) {
    assert_eq!(s.itlb().stats().accesses(), 0, "ITLB accesses");
    assert_eq!(s.itlb().stats().misses(), 0, "ITLB misses");
    assert_eq!(s.dtlb().stats().accesses(), 0, "DTLB accesses");
    assert_eq!(s.dtlb().stats().misses(), 0, "DTLB misses");
    assert_eq!(s.stlb().stats().accesses(), 0, "STLB accesses");
    assert_eq!(s.stlb().stats().misses(), 0, "STLB misses");
    assert_eq!(s.walker().walks(), 0, "walks");
    assert_eq!(s.walker().instruction_walks(), 0, "instruction walks");
    assert_eq!(s.walker().data_walks(), 0, "data walks");
    for (id, cache) in s.hierarchy.levels() {
        assert_eq!(cache.stats().accesses(), 0, "{id} accesses");
        assert_eq!(cache.stats().misses(), 0, "{id} misses");
        assert_eq!(cache.writebacks(), 0, "{id} writebacks");
        assert_eq!(cache.prefetches_issued(), 0, "{id} prefetches issued");
        assert_eq!(cache.prefetches_useful(), 0, "{id} prefetches useful");
    }
    assert_eq!(s.hierarchy.prefetch_nominations(), 0, "hook nominations");
    assert_eq!(s.hierarchy.writebacks_absorbed(), 0, "absorbed writebacks");
    assert_eq!(s.hierarchy.dram().reads(), 0, "DRAM reads");
    assert_eq!(s.hierarchy.dram().writes(), 0, "DRAM writes");
}

fn system_with(hierarchy: HierarchyConfig) -> System {
    let cfg = SystemConfig {
        hierarchy,
        ..SystemConfig::asplos25()
    };
    let bundle = Preset::Lru.build(&cfg.dims(), &BuildConfig::default());
    System::new(cfg, bundle, 1)
}

#[test]
fn reset_zeroes_every_counter_in_the_chain() {
    let mut s = system_with(HierarchyConfig::asplos25());
    warm_up(&mut s);
    // The warmup actually exercised the counters being tested.
    assert!(s.itlb().stats().misses() > 0);
    assert!(s.walker().walks() > 0);
    assert!(s.hierarchy.prefetch_nominations() > 0);
    assert!(s.hierarchy.dram().reads() > 0);
    s.reset_stats();
    assert_all_counters_zero(&s);
}

#[test]
fn reset_covers_shallow_and_deep_chains() {
    for hierarchy in [
        HierarchyConfig::asplos25_no_llc(),
        HierarchyConfig::asplos25_deep(),
    ] {
        let mut s = system_with(hierarchy);
        warm_up(&mut s);
        s.reset_stats();
        assert_all_counters_zero(&s);
    }
}

/// The [`ResetBoundary`] trait (which the engine's measurement boundary
/// now cascades through) must cover exactly what `reset_stats` covers.
#[test]
fn reset_boundary_trait_covers_the_whole_system() {
    let mut s = system_with(HierarchyConfig::asplos25());
    warm_up(&mut s);
    assert!(s.itlb().stats().misses() > 0);
    s.reset_boundary();
    assert_all_counters_zero(&s);
}

/// The boundary contract extends to the tiered path: fast-forward
/// segments drive the *functional* machine, so none of their traffic may
/// appear in the measured cycle-model counters. A leak of even one 30k
/// fast-forward segment would multiply the access counts several-fold.
#[test]
fn tiered_measurement_excludes_fast_forward_traffic() {
    let cfg = SystemConfig::asplos25();
    let w = WorkloadSpec::server_like(9)
        .warmup(4_000)
        .tiers(TierSchedule::tiered(4_000, 30_000, 3));
    let out = Simulation::single_thread(&cfg, Preset::Lru, &w).run();
    let measured = out.instructions();
    assert_eq!(measured, 12_000);
    // Fetches happen once per block group and data accesses on ~1/3 of
    // instructions: both are well below one per measured instruction.
    assert!(
        out.l1i.accesses() < measured,
        "L1I accesses {} exceed measured instructions — fast-forward leaked",
        out.l1i.accesses()
    );
    assert!(
        out.dtlb.accesses() < measured,
        "DTLB accesses {} exceed measured instructions — fast-forward leaked",
        out.dtlb.accesses()
    );
}

#[test]
fn reset_preserves_structure_contents() {
    let mut s = system_with(HierarchyConfig::asplos25());
    let va = VirtAddr::new(0x10_0000_1000);
    let t = s.translate(va, TranslationKind::Instruction, va.0, ThreadId(0), 0);
    s.hierarchy.instr_fetch(t.pa, va.0, ThreadId(0), t.done);
    s.reset_stats();
    // Warm state survives the boundary: the same access is now all hits.
    let t2 = s.translate(va, TranslationKind::Instruction, va.0, ThreadId(0), 100_000);
    assert!(!t2.stlb_miss, "TLB contents survive reset");
    assert_eq!(s.walker().walks(), 0, "no new walk after reset");
    let done = s.hierarchy.instr_fetch(t2.pa, va.0, ThreadId(0), 200_000);
    assert_eq!(done, 200_004, "L1I contents survive reset");
}
