//! Golden statistics pinning the simulator's exact output.
//!
//! The values below pin the simulator bit-for-bit — including the `f64`
//! miss-latency means, compared by IEEE-754 bit pattern — so any
//! divergence in probe order, victim choice, or MSHR timing shows up as
//! a hard failure here. They were originally captured from the
//! nested-storage implementation immediately before the flat-storage
//! refactor (which reproduced them exactly, as did the level-chain
//! refactor), then regenerated once when the L1D geometry was corrected
//! from the unindexable 42×12 to 64×8 (see
//! `itpx_mem::CacheConfig::validate`).

use itpx_core::Preset;
use itpx_cpu::{Simulation, SystemConfig};
use itpx_trace::{smt_suite, WorkloadSpec};

struct Golden {
    preset: Preset,
    seed: u64,
    cycles: u64,
    stlb: (u64, u64),
    l1i: (u64, u64),
    l1d: (u64, u64),
    l2c: (u64, u64),
    llc: (u64, u64),
    itlb: (u64, u64),
    dtlb: (u64, u64),
    walks: u64,
    dram: (u64, u64),
    stall: u64,
    lat_stlb_bits: u64,
    lat_l2c_bits: u64,
}

const GOLDENS: [Golden; 4] = [
    Golden {
        preset: Preset::Lru,
        seed: 7,
        cycles: 219_105,
        stlb: (1309, 943),
        l1i: (3603, 22),
        l1d: (8932, 2017),
        l2c: (4351, 1619),
        llc: (1619, 1489),
        itlb: (3603, 267),
        dtlb: (8932, 1042),
        walks: 943,
        dram: (6155, 135),
        stall: 61_234,
        lat_stlb_bits: 4645018173982370654,
        lat_l2c_bits: 4643408902440788702,
    },
    Golden {
        preset: Preset::ItpXptp,
        seed: 7,
        cycles: 218_981,
        stlb: (1309, 943),
        l1i: (3603, 22),
        l1d: (8932, 2017),
        l2c: (4352, 1628),
        llc: (1628, 1487),
        itlb: (3603, 267),
        dtlb: (8932, 1042),
        walks: 943,
        dram: (6153, 134),
        stall: 61_212,
        lat_stlb_bits: 4645009872261490734,
        lat_l2c_bits: 4643383247515435370,
    },
    Golden {
        preset: Preset::Tdrrip,
        seed: 11,
        cycles: 187_192,
        stlb: (1066, 733),
        l1i: (3597, 11),
        l1d: (9031, 1918),
        l2c: (3796, 1266),
        llc: (1266, 1197),
        itlb: (3597, 204),
        dtlb: (9031, 862),
        walks: 733,
        dram: (5630, 77),
        stall: 46_105,
        lat_stlb_bits: 4644830008938367208,
        lat_l2c_bits: 4643292228808427620,
    },
    Golden {
        preset: Preset::Chirp,
        seed: 3,
        cycles: 214_359,
        stlb: (1402, 916),
        l1i: (3510, 5),
        l1d: (9002, 2378),
        l2c: (4682, 1684),
        llc: (1684, 1521),
        itlb: (3510, 209),
        dtlb: (9002, 1193),
        walks: 916,
        dram: (6052, 171),
        stall: 57_768,
        lat_stlb_bits: 4646180377350058574,
        lat_l2c_bits: 4643712070787932374,
    },
];

/// Regenerates the constants above after a *deliberate* behavior change
/// (run with `cargo test -p itpx-cpu --release --test golden_stats -- \
/// --ignored --nocapture` and paste the output). Never regenerate to
/// paper over an unexplained divergence.
#[test]
#[ignore = "generator, not a check"]
fn print_goldens() {
    let cfg = SystemConfig::asplos25();
    for g in &GOLDENS {
        let w = WorkloadSpec::server_like(g.seed)
            .instructions(30_000)
            .warmup(8_000);
        let o = Simulation::single_thread(&cfg, g.preset, &w).run();
        println!(
            "Golden {{\n    preset: Preset::{:?},\n    seed: {},\n    cycles: {},\n    \
             stlb: {:?},\n    l1i: {:?},\n    l1d: {:?},\n    l2c: {:?},\n    llc: {:?},\n    \
             itlb: {:?},\n    dtlb: {:?},\n    walks: {},\n    dram: {:?},\n    stall: {},\n    \
             lat_stlb_bits: {},\n    lat_l2c_bits: {},\n}},",
            g.preset,
            g.seed,
            o.threads[0].cycles,
            (o.stlb.accesses(), o.stlb.misses()),
            (o.l1i.accesses(), o.l1i.misses()),
            (o.l1d.accesses(), o.l1d.misses()),
            (o.l2c.accesses(), o.l2c.misses()),
            (o.llc.accesses(), o.llc.misses()),
            (o.itlb.accesses(), o.itlb.misses()),
            (o.dtlb.accesses(), o.dtlb.misses()),
            o.walker.walks,
            (o.dram_reads, o.dram_writes),
            o.threads[0].itrans_stall_cycles,
            o.stlb.avg_miss_latency().to_bits(),
            o.l2c.avg_miss_latency().to_bits(),
        );
    }
    let mut pair = smt_suite(2).remove(1);
    pair.a = pair.a.instructions(20_000).warmup(5_000);
    pair.b = pair.b.instructions(20_000).warmup(5_000);
    let o = Simulation::smt(&cfg, Preset::ItpXptp, &pair).run();
    println!(
        "smt: cycles {:?} stlb {:?} l2c {:?} llc {:?} walks {} dram {:?}",
        (o.threads[0].cycles, o.threads[1].cycles),
        (o.stlb.accesses(), o.stlb.misses()),
        (o.l2c.accesses(), o.l2c.misses()),
        (o.llc.accesses(), o.llc.misses()),
        o.walker.walks,
        (o.dram_reads, o.dram_writes),
    );
}

#[test]
fn single_thread_stats_match_nested_era_goldens() {
    let cfg = SystemConfig::asplos25();
    for g in &GOLDENS {
        let w = WorkloadSpec::server_like(g.seed)
            .instructions(30_000)
            .warmup(8_000);
        let o = Simulation::single_thread(&cfg, g.preset, &w).run();
        let ctx = format!("{:?} seed {}", g.preset, g.seed);
        assert_eq!(o.threads[0].cycles, g.cycles, "cycles, {ctx}");
        assert_eq!((o.stlb.accesses(), o.stlb.misses()), g.stlb, "stlb, {ctx}");
        assert_eq!((o.l1i.accesses(), o.l1i.misses()), g.l1i, "l1i, {ctx}");
        assert_eq!((o.l1d.accesses(), o.l1d.misses()), g.l1d, "l1d, {ctx}");
        assert_eq!((o.l2c.accesses(), o.l2c.misses()), g.l2c, "l2c, {ctx}");
        assert_eq!((o.llc.accesses(), o.llc.misses()), g.llc, "llc, {ctx}");
        assert_eq!((o.itlb.accesses(), o.itlb.misses()), g.itlb, "itlb, {ctx}");
        assert_eq!((o.dtlb.accesses(), o.dtlb.misses()), g.dtlb, "dtlb, {ctx}");
        assert_eq!(o.walker.walks, g.walks, "walks, {ctx}");
        assert_eq!((o.dram_reads, o.dram_writes), g.dram, "dram, {ctx}");
        assert_eq!(
            o.threads[0].itrans_stall_cycles, g.stall,
            "itrans stall, {ctx}"
        );
        assert_eq!(
            o.stlb.avg_miss_latency().to_bits(),
            g.lat_stlb_bits,
            "stlb miss-latency bits, {ctx}"
        );
        assert_eq!(
            o.l2c.avg_miss_latency().to_bits(),
            g.lat_l2c_bits,
            "l2c miss-latency bits, {ctx}"
        );
    }
}

#[test]
fn smt_stats_match_nested_era_goldens() {
    let cfg = SystemConfig::asplos25();
    let mut pair = smt_suite(2).remove(1);
    pair.a = pair.a.instructions(20_000).warmup(5_000);
    pair.b = pair.b.instructions(20_000).warmup(5_000);
    let o = Simulation::smt(&cfg, Preset::ItpXptp, &pair).run();
    assert_eq!(
        (o.threads[0].cycles, o.threads[1].cycles),
        (265_948, 249_803)
    );
    assert_eq!((o.stlb.accesses(), o.stlb.misses()), (2055, 1121));
    assert_eq!((o.l2c.accesses(), o.l2c.misses()), (7248, 2329));
    assert_eq!((o.llc.accesses(), o.llc.misses()), (2329, 1965));
    assert_eq!(o.walker.walks, 1121);
    assert_eq!((o.dram_reads, o.dram_writes), (8011, 229));
}
