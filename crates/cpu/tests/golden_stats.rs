//! Golden statistics pinning the simulator's exact output.
//!
//! The values below were captured from the nested-storage implementation
//! (`Vec<Vec<Option<_>>>` cache/TLB sets, `Vec`/`BTreeMap` MSHR lists)
//! immediately before the flat-storage refactor. The flattened structures
//! must reproduce them bit-for-bit — including the `f64` miss-latency
//! means, compared by IEEE-754 bit pattern — so any divergence in probe
//! order, victim choice, or MSHR timing shows up as a hard failure here.

use itpx_core::Preset;
use itpx_cpu::{Simulation, SystemConfig};
use itpx_trace::{smt_suite, WorkloadSpec};

struct Golden {
    preset: Preset,
    seed: u64,
    cycles: u64,
    stlb: (u64, u64),
    l1i: (u64, u64),
    l1d: (u64, u64),
    l2c: (u64, u64),
    llc: (u64, u64),
    itlb: (u64, u64),
    dtlb: (u64, u64),
    walks: u64,
    dram: (u64, u64),
    stall: u64,
    lat_stlb_bits: u64,
    lat_l2c_bits: u64,
}

const GOLDENS: [Golden; 4] = [
    Golden {
        preset: Preset::Lru,
        seed: 7,
        cycles: 218_267,
        stlb: (1309, 943),
        l1i: (3603, 22),
        l1d: (8932, 1061),
        l2c: (3395, 1641),
        llc: (1641, 1486),
        itlb: (3603, 267),
        dtlb: (8932, 1042),
        walks: 943,
        dram: (6149, 129),
        stall: 61_108,
        lat_stlb_bits: 4645053544909984878,
        lat_l2c_bits: 4643337598683867190,
    },
    Golden {
        preset: Preset::ItpXptp,
        seed: 7,
        cycles: 218_042,
        stlb: (1309, 943),
        l1i: (3603, 22),
        l1d: (8932, 1061),
        l2c: (3396, 1643),
        llc: (1643, 1484),
        itlb: (3603, 267),
        dtlb: (8932, 1042),
        walks: 943,
        dram: (6147, 128),
        stall: 60_996,
        lat_stlb_bits: 4645041885189647911,
        lat_l2c_bits: 4643330774157004473,
    },
    Golden {
        preset: Preset::Tdrrip,
        seed: 11,
        cycles: 187_502,
        stlb: (1066, 733),
        l1i: (3597, 11),
        l1d: (9031, 907),
        l2c: (2785, 1282),
        llc: (1282, 1200),
        itlb: (3597, 204),
        dtlb: (9031, 862),
        walks: 733,
        dram: (5634, 84),
        stall: 45_987,
        lat_stlb_bits: 4644843209077963973,
        lat_l2c_bits: 4643245110280393004,
    },
    Golden {
        preset: Preset::Chirp,
        seed: 3,
        cycles: 213_673,
        stlb: (1402, 916),
        l1i: (3510, 5),
        l1d: (9002, 1203),
        l2c: (3507, 1717),
        llc: (1717, 1516),
        itlb: (3510, 209),
        dtlb: (9002, 1193),
        walks: 916,
        dram: (6044, 163),
        stall: 58_026,
        lat_stlb_bits: 4646231406212853349,
        lat_l2c_bits: 4643620446746645918,
    },
];

#[test]
fn single_thread_stats_match_nested_era_goldens() {
    let cfg = SystemConfig::asplos25();
    for g in &GOLDENS {
        let w = WorkloadSpec::server_like(g.seed)
            .instructions(30_000)
            .warmup(8_000);
        let o = Simulation::single_thread(&cfg, g.preset, &w).run();
        let ctx = format!("{:?} seed {}", g.preset, g.seed);
        assert_eq!(o.threads[0].cycles, g.cycles, "cycles, {ctx}");
        assert_eq!((o.stlb.accesses(), o.stlb.misses()), g.stlb, "stlb, {ctx}");
        assert_eq!((o.l1i.accesses(), o.l1i.misses()), g.l1i, "l1i, {ctx}");
        assert_eq!((o.l1d.accesses(), o.l1d.misses()), g.l1d, "l1d, {ctx}");
        assert_eq!((o.l2c.accesses(), o.l2c.misses()), g.l2c, "l2c, {ctx}");
        assert_eq!((o.llc.accesses(), o.llc.misses()), g.llc, "llc, {ctx}");
        assert_eq!((o.itlb.accesses(), o.itlb.misses()), g.itlb, "itlb, {ctx}");
        assert_eq!((o.dtlb.accesses(), o.dtlb.misses()), g.dtlb, "dtlb, {ctx}");
        assert_eq!(o.walker.walks, g.walks, "walks, {ctx}");
        assert_eq!((o.dram_reads, o.dram_writes), g.dram, "dram, {ctx}");
        assert_eq!(
            o.threads[0].itrans_stall_cycles, g.stall,
            "itrans stall, {ctx}"
        );
        assert_eq!(
            o.stlb.avg_miss_latency().to_bits(),
            g.lat_stlb_bits,
            "stlb miss-latency bits, {ctx}"
        );
        assert_eq!(
            o.l2c.avg_miss_latency().to_bits(),
            g.lat_l2c_bits,
            "l2c miss-latency bits, {ctx}"
        );
    }
}

#[test]
fn smt_stats_match_nested_era_goldens() {
    let cfg = SystemConfig::asplos25();
    let mut pair = smt_suite(2).remove(1);
    pair.a = pair.a.instructions(20_000).warmup(5_000);
    pair.b = pair.b.instructions(20_000).warmup(5_000);
    let o = Simulation::smt(&cfg, Preset::ItpXptp, &pair).run();
    assert_eq!(
        (o.threads[0].cycles, o.threads[1].cycles),
        (265_837, 248_897)
    );
    assert_eq!((o.stlb.accesses(), o.stlb.misses()), (2047, 1121));
    assert_eq!((o.l2c.accesses(), o.l2c.misses()), (4996, 2363));
    assert_eq!((o.llc.accesses(), o.llc.misses()), (2363, 1963));
    assert_eq!(o.walker.walks, 1121);
    assert_eq!((o.dram_reads, o.dram_writes), (8010, 228));
}
