//! The trace instruction record and its binary serialization.

use std::io::{self, Read, Write};

/// A memory operand of one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRef {
    /// Virtual address accessed.
    pub addr: u64,
    /// `true` for stores, `false` for loads.
    pub store: bool,
}

/// Control-flow information of a branch instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Branch {
    /// Whether the branch was taken.
    pub taken: bool,
    /// Target if taken (the fall-through is `pc + 4`).
    pub target: u64,
}

/// One dynamic instruction of a trace.
///
/// The representation is deliberately small (`Copy`) — generators produce
/// hundreds of millions of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceInst {
    /// Program counter (virtual).
    pub pc: u64,
    /// Execution latency class in cycles (1 = simple ALU).
    pub exec_latency: u8,
    /// Distance (in instructions) to the first source-operand producer;
    /// 0 = no register dependency.
    pub src1_dist: u8,
    /// Distance to the second producer; 0 = none.
    pub src2_dist: u8,
    /// Memory operand, if any.
    pub mem: Option<MemRef>,
    /// Branch information, if this is a branch.
    pub branch: Option<Branch>,
}

impl TraceInst {
    /// A plain 1-cycle ALU instruction at `pc`.
    pub fn alu(pc: u64) -> Self {
        Self {
            pc,
            exec_latency: 1,
            src1_dist: 0,
            src2_dist: 0,
            mem: None,
            branch: None,
        }
    }

    /// The address of the next sequential instruction.
    pub fn next_pc(&self) -> u64 {
        match self.branch {
            Some(b) if b.taken => b.target,
            _ => self.pc + 4,
        }
    }
}

const FLAG_MEM: u8 = 1 << 0;
const FLAG_STORE: u8 = 1 << 1;
const FLAG_BRANCH: u8 = 1 << 2;
const FLAG_TAKEN: u8 = 1 << 3;

/// Magic bytes heading every trace file.
const MAGIC: &[u8; 8] = b"ITPXTRC1";

/// Writes a trace in the `itpx` binary format.
///
/// # Errors
///
/// Returns any I/O error from the underlying writer.
pub fn write_trace<W: Write>(mut w: W, insts: &[TraceInst]) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(insts.len() as u64).to_le_bytes())?;
    for i in insts {
        let mut flags = 0u8;
        if let Some(m) = i.mem {
            flags |= FLAG_MEM;
            if m.store {
                flags |= FLAG_STORE;
            }
        }
        if let Some(b) = i.branch {
            flags |= FLAG_BRANCH;
            if b.taken {
                flags |= FLAG_TAKEN;
            }
        }
        w.write_all(&[flags, i.exec_latency, i.src1_dist, i.src2_dist])?;
        w.write_all(&i.pc.to_le_bytes())?;
        if let Some(m) = i.mem {
            w.write_all(&m.addr.to_le_bytes())?;
        }
        if let Some(b) = i.branch {
            w.write_all(&b.target.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Reads a trace written by [`write_trace`].
///
/// # Errors
///
/// Returns `InvalidData` for a bad header or a truncated stream, and any
/// I/O error from the underlying reader.
pub fn read_trace<R: Read>(mut r: R) -> io::Result<Vec<TraceInst>> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not an itpx trace (bad magic)",
        ));
    }
    let mut lenb = [0u8; 8];
    r.read_exact(&mut lenb)?;
    let len = u64::from_le_bytes(lenb) as usize;
    let mut out = Vec::with_capacity(len.min(1 << 24));
    for _ in 0..len {
        let mut head = [0u8; 4];
        r.read_exact(&mut head)?;
        let [flags, exec_latency, src1_dist, src2_dist] = head;
        let mut pcb = [0u8; 8];
        r.read_exact(&mut pcb)?;
        let pc = u64::from_le_bytes(pcb);
        let mem = if flags & FLAG_MEM != 0 {
            let mut a = [0u8; 8];
            r.read_exact(&mut a)?;
            Some(MemRef {
                addr: u64::from_le_bytes(a),
                store: flags & FLAG_STORE != 0,
            })
        } else {
            None
        };
        let branch = if flags & FLAG_BRANCH != 0 {
            let mut t = [0u8; 8];
            r.read_exact(&mut t)?;
            Some(Branch {
                taken: flags & FLAG_TAKEN != 0,
                target: u64::from_le_bytes(t),
            })
        } else {
            None
        };
        out.push(TraceInst {
            pc,
            exec_latency,
            src1_dist,
            src2_dist,
            mem,
            branch,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceInst> {
        vec![
            TraceInst::alu(0x1000),
            TraceInst {
                pc: 0x1004,
                exec_latency: 3,
                src1_dist: 1,
                src2_dist: 0,
                mem: Some(MemRef {
                    addr: 0xbeef_0000,
                    store: false,
                }),
                branch: None,
            },
            TraceInst {
                pc: 0x1008,
                exec_latency: 1,
                src1_dist: 2,
                src2_dist: 1,
                mem: Some(MemRef {
                    addr: 0xbeef_4000,
                    store: true,
                }),
                branch: Some(Branch {
                    taken: true,
                    target: 0x9000,
                }),
            },
            TraceInst {
                pc: 0x9000,
                exec_latency: 1,
                src1_dist: 0,
                src2_dist: 0,
                mem: None,
                branch: Some(Branch {
                    taken: false,
                    target: 0x1000,
                }),
            },
        ]
    }

    #[test]
    fn roundtrip() {
        let insts = sample();
        let mut buf = Vec::new();
        write_trace(&mut buf, &insts).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(insts, back);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_trace(&b"NOTATRCE\0\0\0\0\0\0\0\0"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_stream_rejected() {
        let insts = sample();
        let mut buf = Vec::new();
        write_trace(&mut buf, &insts).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_trace(buf.as_slice()).is_err());
    }

    #[test]
    fn next_pc_follows_taken_branches() {
        let insts = sample();
        assert_eq!(insts[0].next_pc(), 0x1004);
        assert_eq!(insts[2].next_pc(), 0x9000);
        assert_eq!(insts[3].next_pc(), 0x9004, "not-taken falls through");
    }
}
