//! The workload suites of Section 5.2.
//!
//! The paper evaluates 120 single-thread Qualcomm Server workloads (all
//! with STLB MPKI ≥ 1) and 75 SMT pairs in three pressure categories.
//! These builders produce seeded suites of any size with the same
//! structure; the experiment harness defaults to a reduced count
//! (see EXPERIMENTS.md) and accepts the full 120/75 when given the budget.

use crate::profile::{SmtCategory, SmtPairSpec, WorkloadSpec};
use itpx_types::Rng64;

/// Builds `n` server-like single-thread workloads (the Qualcomm Server
/// stand-ins). Seeds are consecutive so suites of different sizes share
/// their prefix.
pub fn qualcomm_like_suite(n: usize) -> Vec<WorkloadSpec> {
    (0..n as u64).map(WorkloadSpec::server_like).collect()
}

/// Builds `n` SPEC-CPU-like single-thread workloads.
pub fn spec_like_suite(n: usize) -> Vec<WorkloadSpec> {
    (0..n as u64).map(WorkloadSpec::spec_like).collect()
}

/// Builds `n` SMT pairs split evenly across the three categories.
///
/// * `Intense` — two high-pressure server workloads,
/// * `Medium` — one high-pressure server workload plus one with a reduced
///   footprint,
/// * `Relaxed` — one high-pressure server workload plus a SPEC-like one.
pub fn smt_suite(n: usize) -> Vec<SmtPairSpec> {
    let mut rng = Rng64::new(0x50a7);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        // SmtCategory::ALL has exactly 3 entries
        let category = SmtCategory::ALL[i % 3];
        let a = WorkloadSpec::server_like(rng.below(1000));
        let b = match category {
            SmtCategory::Intense => WorkloadSpec::server_like(rng.below(1000)),
            SmtCategory::Medium => {
                let mut w = WorkloadSpec::server_like(rng.below(1000));
                // Halve the pressure: smaller footprints.
                w.profile.code_pages = (w.profile.code_pages / 4).max(256);
                w.profile.data_pages = (w.profile.data_pages / 4).max(1024);
                w.name = format!("med_{}", w.seed);
                w
            }
            SmtCategory::Relaxed => WorkloadSpec::spec_like(rng.below(1000)),
        };
        out.push(SmtPairSpec { a, b, category });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_sizes() {
        assert_eq!(qualcomm_like_suite(120).len(), 120);
        assert_eq!(spec_like_suite(30).len(), 30);
        assert_eq!(smt_suite(75).len(), 75);
    }

    #[test]
    fn suites_share_prefixes() {
        let small = qualcomm_like_suite(4);
        let big = qualcomm_like_suite(12);
        assert_eq!(small[..], big[..4]);
    }

    #[test]
    fn smt_categories_cycle() {
        let pairs = smt_suite(9);
        for chunk in pairs.chunks(3) {
            assert_eq!(chunk[0].category, SmtCategory::Intense);
            assert_eq!(chunk[1].category, SmtCategory::Medium);
            assert_eq!(chunk[2].category, SmtCategory::Relaxed);
        }
    }

    #[test]
    fn smt_pairs_are_deterministic() {
        assert_eq!(smt_suite(6), smt_suite(6));
    }

    #[test]
    fn relaxed_pairs_mix_server_with_spec() {
        let pairs = smt_suite(3);
        let relaxed = &pairs[2];
        assert!(relaxed.a.name.starts_with("srv_"));
        assert!(relaxed.b.name.starts_with("spec_"));
        assert!(relaxed.name().contains('+'));
    }
}
