//! ChampSim trace import.
//!
//! The paper's artifact distributes workloads as `*.champsimtrace.xz`
//! files: fixed 64-byte records of ChampSim's `input_instr` struct. This
//! module decodes that format (decompressed files — pipe through `xz -d`
//! first; this crate has no compression dependency) and converts each
//! record into [`TraceInst`], reconstructing register-dependency
//! *distances* with a renaming scan over the producers seen so far.
//!
//! ```text
//! struct input_instr {            // little-endian, 64 bytes
//!     uint64_t ip;
//!     uint8_t  is_branch;
//!     uint8_t  branch_taken;
//!     uint8_t  destination_registers[2];
//!     uint8_t  source_registers[4];
//!     uint64_t destination_memory[2];
//!     uint64_t source_memory[4];
//! }
//! ```

use crate::record::{Branch, MemRef, TraceInst};
use std::io::{self, Read};

/// Size of one ChampSim record.
pub const CHAMPSIM_RECORD_BYTES: usize = 64;

/// One decoded ChampSim record, before conversion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChampSimRecord {
    /// Instruction pointer.
    pub ip: u64,
    /// Branch flag.
    pub is_branch: bool,
    /// Taken flag (meaningful when `is_branch`).
    pub branch_taken: bool,
    /// Destination architectural registers (0 = unused).
    pub dest_regs: [u8; 2],
    /// Source architectural registers (0 = unused).
    pub src_regs: [u8; 4],
    /// Destination memory addresses (0 = unused).
    pub dest_mem: [u64; 2],
    /// Source memory addresses (0 = unused).
    pub src_mem: [u64; 4],
}

impl ChampSimRecord {
    /// Decodes one 64-byte record.
    pub fn decode(buf: &[u8; CHAMPSIM_RECORD_BYTES]) -> Self {
        // every call site passes o <= 56, so o..o+8 stays in the record
        let u64_at = |o: usize| u64::from_le_bytes(buf[o..o + 8].try_into().expect("8 bytes"));
        Self {
            ip: u64_at(0),
            is_branch: buf[8] != 0,
            branch_taken: buf[9] != 0,
            dest_regs: [buf[10], buf[11]],
            src_regs: [buf[12], buf[13], buf[14], buf[15]],
            dest_mem: [u64_at(16), u64_at(24)],
            src_mem: [u64_at(32), u64_at(40), u64_at(48), u64_at(56)],
        }
    }

    /// Encodes back to the 64-byte wire format (used by tests and by
    /// tools that synthesize ChampSim-format traces).
    pub fn encode(&self) -> [u8; CHAMPSIM_RECORD_BYTES] {
        let mut b = [0u8; CHAMPSIM_RECORD_BYTES];
        b[0..8].copy_from_slice(&self.ip.to_le_bytes());
        b[8] = self.is_branch as u8;
        b[9] = self.branch_taken as u8;
        b[10] = self.dest_regs[0];
        b[11] = self.dest_regs[1];
        b[12..16].copy_from_slice(&self.src_regs);
        b[16..24].copy_from_slice(&self.dest_mem[0].to_le_bytes());
        b[24..32].copy_from_slice(&self.dest_mem[1].to_le_bytes());
        for (i, m) in self.src_mem.iter().enumerate() {
            b[32 + 8 * i..40 + 8 * i].copy_from_slice(&m.to_le_bytes());
        }
        b
    }
}

/// Converts a stream of ChampSim records into [`TraceInst`]s.
///
/// * `next_pc` chains: a record followed by a non-sequential IP becomes a
///   taken branch to that IP (ChampSim stores taken-ness but not targets;
///   the successor IP supplies it).
/// * Register dependencies become distances via a last-writer table.
/// * The first source memory address becomes a load, else the first
///   destination memory address a store (one memory operand per
///   instruction, like the engine models).
#[derive(Debug)]
pub struct ChampSimConverter {
    /// Last writer (instruction index) of each architectural register.
    last_writer: [u64; 256],
    produced: u64,
    pending: Option<ChampSimRecord>,
}

impl Default for ChampSimConverter {
    fn default() -> Self {
        Self::new()
    }
}

impl ChampSimConverter {
    /// Creates a converter.
    pub fn new() -> Self {
        Self {
            last_writer: [0; 256],
            produced: 0,
            pending: None,
        }
    }

    /// Feeds the next record; returns the `TraceInst` for the *previous*
    /// record (its control flow needs this record's IP). Returns `None`
    /// for the first call.
    pub fn push(&mut self, rec: ChampSimRecord) -> Option<TraceInst> {
        let out = self.pending.take().map(|prev| self.convert(prev, rec.ip));
        self.pending = Some(rec);
        out
    }

    /// Flushes the final record (fall-through control flow).
    pub fn finish(&mut self) -> Option<TraceInst> {
        self.pending.take().map(|prev| {
            let next = prev.ip.wrapping_add(4);
            self.convert(prev, next)
        })
    }

    fn convert(&mut self, rec: ChampSimRecord, next_ip: u64) -> TraceInst {
        let idx = self.produced;
        // Dependency distances from the last-writer table (reg 0 = none).
        let mut dists = [0u8; 2];
        let mut n = 0;
        for &r in rec.src_regs.iter() {
            if r != 0 && n < 2 {
                let w = self.last_writer[r as usize];
                if w != 0 {
                    let d = idx + 1 - w;
                    if d <= u8::MAX as u64 {
                        dists[n] = d as u8;
                        n += 1;
                    }
                }
            }
        }
        for &r in rec.dest_regs.iter() {
            if r != 0 {
                self.last_writer[r as usize] = idx + 1;
            }
        }
        let mem = if rec.src_mem[0] != 0 {
            Some(MemRef {
                addr: rec.src_mem[0],
                store: false,
            })
        } else if rec.dest_mem[0] != 0 {
            Some(MemRef {
                addr: rec.dest_mem[0],
                store: true,
            })
        } else {
            None
        };
        let sequential = next_ip == rec.ip.wrapping_add(4);
        let branch = if rec.is_branch || !sequential {
            Some(Branch {
                taken: !sequential,
                target: if sequential {
                    rec.ip.wrapping_add(8)
                } else {
                    next_ip
                },
            })
        } else {
            None
        };
        self.produced += 1;
        TraceInst {
            pc: rec.ip,
            exec_latency: 1,
            src1_dist: dists[0],
            src2_dist: dists[1],
            mem,
            branch,
        }
    }
}

/// Reads a decompressed ChampSim trace, converting up to `limit`
/// instructions (`usize::MAX` for all).
///
/// # Errors
///
/// Returns any I/O error; a trailing partial record is ignored (ChampSim
/// traces are frequently truncated at collection boundaries).
pub fn read_champsim<R: Read>(mut r: R, limit: usize) -> io::Result<Vec<TraceInst>> {
    let mut conv = ChampSimConverter::new();
    let mut out = Vec::new();
    let mut buf = [0u8; CHAMPSIM_RECORD_BYTES];
    while out.len() < limit {
        let mut filled = 0;
        while filled < CHAMPSIM_RECORD_BYTES {
            match r.read(&mut buf[filled..])? {
                0 => {
                    if filled == 0 {
                        if let Some(last) = conv.finish() {
                            out.push(last);
                        }
                    }
                    return Ok(out);
                }
                n => filled += n,
            }
        }
        if let Some(inst) = conv.push(ChampSimRecord::decode(&buf)) {
            out.push(inst);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ip: u64) -> ChampSimRecord {
        ChampSimRecord {
            ip,
            is_branch: false,
            branch_taken: false,
            dest_regs: [0; 2],
            src_regs: [0; 4],
            dest_mem: [0; 2],
            src_mem: [0; 4],
        }
    }

    #[test]
    fn decode_encode_roundtrip() {
        let r = ChampSimRecord {
            ip: 0x401_000,
            is_branch: true,
            branch_taken: true,
            dest_regs: [3, 0],
            src_regs: [1, 2, 0, 0],
            dest_mem: [0xdead_0000, 0],
            src_mem: [0xbeef_0000, 0, 0, 0],
        };
        assert_eq!(ChampSimRecord::decode(&r.encode()), r);
    }

    #[test]
    fn sequential_records_have_no_branches() {
        let bytes: Vec<u8> = (0..4u64)
            .flat_map(|i| rec(0x1000 + i * 4).encode())
            .collect();
        let insts = read_champsim(bytes.as_slice(), usize::MAX).unwrap();
        assert_eq!(insts.len(), 4);
        for pair in insts.windows(2) {
            assert_eq!(pair[1].pc, pair[0].next_pc());
        }
        assert!(insts[..3].iter().all(|i| i.branch.is_none()));
    }

    #[test]
    fn non_sequential_ip_becomes_taken_branch() {
        let mut a = rec(0x1000);
        a.is_branch = true;
        a.branch_taken = true;
        let b = rec(0x9000);
        let bytes: Vec<u8> = [a, b].iter().flat_map(|r| r.encode()).collect();
        let insts = read_champsim(bytes.as_slice(), usize::MAX).unwrap();
        assert_eq!(
            insts[0].branch,
            Some(Branch {
                taken: true,
                target: 0x9000
            })
        );
        assert_eq!(insts[0].next_pc(), 0x9000);
    }

    #[test]
    fn register_dependencies_become_distances() {
        let mut producer = rec(0x1000);
        producer.dest_regs = [7, 0];
        let middle = rec(0x1004);
        let mut consumer = rec(0x1008);
        consumer.src_regs = [7, 0, 0, 0];
        let bytes: Vec<u8> = [producer, middle, consumer, rec(0x100c)]
            .iter()
            .flat_map(|r| r.encode())
            .collect();
        let insts = read_champsim(bytes.as_slice(), usize::MAX).unwrap();
        assert_eq!(insts[2].src1_dist, 2, "consumer is 2 instructions after");
    }

    #[test]
    fn memory_operands_map_to_loads_and_stores() {
        let mut ld = rec(0x1000);
        ld.src_mem[0] = 0xAAAA_0000;
        let mut st = rec(0x1004);
        st.dest_mem[0] = 0xBBBB_0000;
        let bytes: Vec<u8> = [ld, st, rec(0x1008)]
            .iter()
            .flat_map(|r| r.encode())
            .collect();
        let insts = read_champsim(bytes.as_slice(), usize::MAX).unwrap();
        assert_eq!(
            insts[0].mem,
            Some(MemRef {
                addr: 0xAAAA_0000,
                store: false
            })
        );
        assert_eq!(
            insts[1].mem,
            Some(MemRef {
                addr: 0xBBBB_0000,
                store: true
            })
        );
    }

    #[test]
    fn truncated_tail_is_tolerated_and_limit_respected() {
        let mut bytes: Vec<u8> = (0..5u64)
            .flat_map(|i| rec(0x2000 + i * 4).encode())
            .collect();
        bytes.truncate(bytes.len() - 10); // partial last record
        let insts = read_champsim(bytes.as_slice(), usize::MAX).unwrap();
        assert_eq!(
            insts.len(),
            3,
            "4 full records -> 3 chained + pending dropped"
        );
        let limited = read_champsim(
            (0..50u64)
                .flat_map(|i| rec(0x3000 + i * 4).encode())
                .collect::<Vec<_>>()
                .as_slice(),
            10,
        )
        .unwrap();
        assert_eq!(limited.len(), 10);
    }
}
