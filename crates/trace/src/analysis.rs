//! Trace analysis: footprint and reuse-distance characterization.
//!
//! These are the tools used to calibrate the synthetic suites against the
//! paper's workload characterization (Section 3): page-level footprints,
//! LRU stack (reuse) distances, and instruction-mix summaries. They work
//! on any iterator of [`TraceInst`], so recorded trace files and live
//! generators can both be analyzed.

use crate::record::TraceInst;
use std::collections::HashMap;

/// Page-granularity reuse-distance histogram computed with an exact LRU
/// stack (unique pages touched between consecutive uses).
///
/// Distances are bucketed by power of two; the bucket index for a reuse
/// at stack depth *d* is `floor(log2(d + 1))`. Cold (first) touches are
/// counted separately.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReuseProfile {
    /// Power-of-two bucketed reuse-distance counts.
    pub buckets: Vec<u64>,
    /// First-touch (compulsory) accesses.
    pub cold: u64,
    /// Total accesses analyzed.
    pub total: u64,
}

impl ReuseProfile {
    /// Fraction of (warm) reuses with stack distance below `capacity` —
    /// the hit rate a fully-associative LRU structure of that capacity
    /// would achieve on this stream.
    pub fn hit_fraction_at(&self, capacity: u64) -> f64 {
        let warm: u64 = self.buckets.iter().sum();
        if warm == 0 {
            return 0.0;
        }
        let cap_bucket = (64 - (capacity + 1).leading_zeros()).saturating_sub(1) as usize;
        let below: u64 = self.buckets.iter().take(cap_bucket).sum();
        below as f64 / warm as f64
    }
}

/// Exact LRU stack-distance tracker over `u64` keys.
#[derive(Debug, Default)]
struct LruStack {
    // Position list: most recent at the back. For analysis sizes (tens of
    // thousands of pages) the O(n) update is acceptable.
    order: Vec<u64>,
    index: HashMap<u64, usize>,
}

impl LruStack {
    /// Touches `key`, returning its previous stack depth (0 = MRU) or
    /// `None` on first touch.
    fn touch(&mut self, key: u64) -> Option<u64> {
        if let Some(&pos) = self.index.get(&key) {
            let depth = (self.order.len() - 1 - pos) as u64;
            self.order.remove(pos);
            for k in &self.order[pos..] {
                // index holds every key present in order
                *self.index.get_mut(k).expect("indexed") -= 1;
            }
            self.index.insert(key, self.order.len());
            self.order.push(key);
            Some(depth)
        } else {
            self.index.insert(key, self.order.len());
            self.order.push(key);
            None
        }
    }
}

/// Computes page-level reuse profiles for the instruction and data streams
/// of a trace.
pub fn page_reuse_profiles<I: IntoIterator<Item = TraceInst>>(
    trace: I,
) -> (ReuseProfile, ReuseProfile) {
    let mut code = LruStack::default();
    let mut data = LruStack::default();
    let mut code_profile = ReuseProfile {
        buckets: vec![0; 32],
        cold: 0,
        total: 0,
    };
    let mut data_profile = code_profile.clone();
    let record = |profile: &mut ReuseProfile, depth: Option<u64>| {
        profile.total += 1;
        match depth {
            Some(d) => {
                let b = (64 - (d + 1).leading_zeros()).saturating_sub(1) as usize;
                // .min(31) clamps into the 32 histogram buckets
                profile.buckets[b.min(31)] += 1;
            }
            None => profile.cold += 1,
        }
    };
    let mut last_code_page = u64::MAX;
    for inst in trace {
        let page = inst.pc >> 12;
        // Count one instruction-stream access per page *transition* so the
        // profile reflects TLB-visible behavior, not per-instruction noise.
        if page != last_code_page {
            last_code_page = page;
            record(&mut code_profile, code.touch(page));
        }
        if let Some(m) = inst.mem {
            record(&mut data_profile, data.touch(m.addr >> 12));
        }
    }
    (code_profile, data_profile)
}

/// Instruction-mix and footprint summary of a trace prefix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixSummary {
    /// Instructions analyzed.
    pub instructions: u64,
    /// Distinct 4 KiB code pages.
    pub code_pages: usize,
    /// Distinct 4 KiB data pages.
    pub data_pages: usize,
    /// Load fraction.
    pub load_ratio: f64,
    /// Store fraction.
    pub store_ratio: f64,
    /// Branch fraction.
    pub branch_ratio: f64,
}

/// Computes a [`MixSummary`].
pub fn mix_summary<I: IntoIterator<Item = TraceInst>>(trace: I) -> MixSummary {
    let mut code = std::collections::HashSet::new();
    let mut data = std::collections::HashSet::new();
    let (mut n, mut loads, mut stores, mut branches) = (0u64, 0u64, 0u64, 0u64);
    for inst in trace {
        n += 1;
        code.insert(inst.pc >> 12);
        if let Some(m) = inst.mem {
            data.insert(m.addr >> 12);
            if m.store {
                stores += 1;
            } else {
                loads += 1;
            }
        }
        branches += inst.branch.is_some() as u64;
    }
    let d = n.max(1) as f64;
    MixSummary {
        instructions: n,
        code_pages: code.len(),
        data_pages: data.len(),
        load_ratio: loads as f64 / d,
        store_ratio: stores as f64 / d,
        branch_ratio: branches as f64 / d,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TraceGenerator;
    use crate::profile::WorkloadSpec;
    use crate::record::MemRef;

    fn inst(pc: u64, mem: Option<u64>) -> TraceInst {
        TraceInst {
            mem: mem.map(|addr| MemRef { addr, store: false }),
            ..TraceInst::alu(pc)
        }
    }

    #[test]
    fn reuse_depths_are_exact() {
        // Data pages A B C A: A's reuse sees 2 distinct pages in between.
        let trace = vec![
            inst(0x1000, Some(0xA000)),
            inst(0x1004, Some(0xB000)),
            inst(0x1008, Some(0xC000)),
            inst(0x100c, Some(0xA000)),
        ];
        let (_, data) = page_reuse_profiles(trace);
        assert_eq!(data.cold, 3);
        assert_eq!(data.total, 4);
        // Depth 2 lands in bucket floor(log2(3)) = 1.
        assert_eq!(data.buckets[1], 1);
    }

    #[test]
    fn immediate_reuse_is_depth_zero() {
        let trace = vec![inst(0x1000, Some(0xA000)), inst(0x1004, Some(0xA000))];
        let (_, data) = page_reuse_profiles(trace);
        assert_eq!(data.buckets[0], 1);
    }

    #[test]
    fn code_stream_counts_page_transitions_only() {
        // Four instructions in one page: one code access.
        let trace: Vec<TraceInst> = (0..4).map(|i| inst(0x1000 + i * 4, None)).collect();
        let (code, _) = page_reuse_profiles(trace);
        assert_eq!(code.total, 1);
        assert_eq!(code.cold, 1);
    }

    #[test]
    fn hit_fraction_monotone_in_capacity() {
        let spec = WorkloadSpec::server_like(3);
        let (code, data) = page_reuse_profiles(TraceGenerator::new(&spec).take(60_000));
        for profile in [&code, &data] {
            let small = profile.hit_fraction_at(64);
            let mid = profile.hit_fraction_at(1536);
            let large = profile.hit_fraction_at(1 << 20);
            assert!(small <= mid + 1e-12, "{small} > {mid}");
            assert!(mid <= large + 1e-12);
            assert!(large <= 1.0);
        }
        // The server profile's code working set exceeds a 64-entry ITLB
        // but is substantially covered by STLB-scale capacity.
        assert!(code.hit_fraction_at(1536) > code.hit_fraction_at(64));
    }

    #[test]
    fn mix_summary_matches_generator_parameters() {
        let spec = WorkloadSpec::server_like(5);
        let s = mix_summary(TraceGenerator::new(&spec).take(50_000));
        assert_eq!(s.instructions, 50_000);
        assert!((s.load_ratio - spec.profile.load_ratio).abs() < 0.02);
        assert!((s.store_ratio - spec.profile.store_ratio).abs() < 0.02);
        assert!(s.code_pages > 100);
        assert!(s.branch_ratio > 0.05);
    }
}
