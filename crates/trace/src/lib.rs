//! Workload substrate: synthetic instruction traces with controllable
//! code/data footprints.
//!
//! The paper evaluates on proprietary Qualcomm Server traces (CVP-1/IPC-1)
//! and SPEC CPU 2006/2017. Neither is redistributable, so this crate
//! synthesizes traces that reproduce the *properties the paper's analysis
//! depends on* (see DESIGN.md, substitution 2):
//!
//! * **Server profile** — instruction footprints of thousands of 4 KiB
//!   pages reached through a skewed (Zipf) function-call pattern, large
//!   data footprints, STLB MPKI ≥ 1: the workloads where instruction
//!   translation is the bottleneck (paper Figures 1–2).
//! * **SPEC-like profile** — code that fits a 64-entry ITLB with a large
//!   data footprint: the contrast class for which the paper reports ≈0
//!   instruction-translation overhead.
//!
//! [`WorkloadSpec`] describes one workload; [`TraceGenerator`] turns it
//! into a deterministic instruction stream ([`TraceInst`]); [`suites`]
//! builds the single-thread and SMT workload sets mirroring Section 5.2;
//! [`record`] serializes traces to a compact binary format; [`fuzz`]
//! generates adversarial traces for the differential harness.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod analysis;
pub mod champsim;
pub mod fuzz;
pub mod gen;
pub mod oracle;
pub mod profile;
pub mod record;
pub mod stream;
pub mod suites;

pub use analysis::{mix_summary, page_reuse_profiles, MixSummary, ReuseProfile};
pub use champsim::{read_champsim, ChampSimConverter, ChampSimRecord};
pub use fuzz::{FuzzPattern, FuzzSpec};
pub use gen::{TraceGenerator, ZipfSampler};
pub use oracle::{replay_min_and_lru, tlb_key_streams, OracleResult};
pub use profile::{
    ContextSchedule, Profile, SmtCategory, SmtPairSpec, SwitchPolicy, TierSchedule, WorkloadSpec,
};
pub use record::{read_trace, write_trace, Branch, MemRef, TraceInst};
pub use stream::{InstructionStream, TraceLoop, WorkloadSource};
pub use suites::{qualcomm_like_suite, smt_suite, spec_like_suite};
