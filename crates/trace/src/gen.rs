//! The deterministic trace generator.
//!
//! Code is modeled as a set of functions packed into a contiguous code
//! region spanning `code_pages` 4 KiB pages. Execution runs through a
//! function's basic blocks (with biased conditional branches and bounded
//! loops) and transfers to the next function through a Zipf-skewed call
//! distribution over a *scrambled* function order — hot functions are
//! scattered across the code region, reproducing the poor code layout of
//! large server binaries that makes their ITLB/STLB behavior painful.
//!
//! Data references mix Zipf-skewed page reuse with sequential streaming.

use crate::profile::{Profile, WorkloadSpec, CODE_BASE, DATA_BASE, INSTS_PER_PAGE};

/// Instructions per ring function: short visits so the ring cycles through
/// its pages quickly enough for STLB-scale reuse.
const RING_FN_MIN: u64 = 16;
const RING_FN_MAX: u64 = 48;
use crate::record::{Branch, MemRef, TraceInst};
use itpx_types::Rng64;

/// Samples ranks from a Zipf distribution via an explicit CDF.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always `false`: construction requires at least one rank.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `0..n` (rank 0 is the most popular).
    pub fn sample(&self, rng: &mut Rng64) -> usize {
        let u = rng.f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[derive(Debug, Clone, Copy)]
struct Function {
    start: u64,
    len: u32,
}

/// Deterministic instruction-stream generator for one workload.
///
/// Implements [`Iterator`] over [`TraceInst`]; the stream is infinite, so
/// callers take as many instructions as they need.
#[derive(Debug)]
pub struct TraceGenerator {
    profile: Profile,
    rng: Rng64,
    functions: Vec<Function>,
    fn_zipf: ZipfSampler,
    /// Scrambled map from popularity rank to function index.
    fn_perm: Vec<u32>,
    data_zipf: ZipfSampler,
    data_perm: Vec<u32>,
    /// Code-ring functions (cyclic working set) and the cursor into them.
    ring: Vec<Function>,
    ring_pos: usize,
    // Execution state.
    cur: Function,
    idx: u32,
    block_end: u32,
    loop_budget: u8,
    stream_addr: u64,
    hot_addr: u64,
    produced: u64,
}

impl TraceGenerator {
    /// Builds the generator for a workload spec.
    pub fn new(spec: &WorkloadSpec) -> Self {
        spec.profile.validate();
        let p = spec.profile;
        let mut rng = Rng64::new(spec.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x17b7);
        // Pack functions into the code region until `code_pages` are used.
        let total_insts = p.code_pages * INSTS_PER_PAGE;
        let mut functions = Vec::new();
        let mut cursor = 0usize;
        while cursor < total_insts {
            let len = rng.range(p.fn_len_min as u64, p.fn_len_max as u64) as usize;
            let len = len.min(total_insts - cursor).max(4);
            functions.push(Function {
                start: CODE_BASE + (cursor as u64) * 4,
                len: len as u32,
            });
            cursor += len;
        }
        let n = functions.len();
        let fn_perm = permutation(n, &mut rng);
        let data_perm = permutation(p.data_pages, &mut rng);
        let fn_zipf = ZipfSampler::new(n, p.code_zipf_s);
        let data_zipf = ZipfSampler::new(p.data_pages, p.data_zipf_s);
        // The code ring: one short function at the top of each of its
        // pages, so every ring visit touches the next page and the ring
        // cycles its whole footprint at STLB-relevant timescales.
        let ring_base = CODE_BASE + (p.code_pages as u64) * 4096 + (64 << 12);
        let ring = (0..p.ring_pages)
            .map(|i| Function {
                start: ring_base + (i as u64) * 4096,
                len: rng.range(RING_FN_MIN, RING_FN_MAX) as u32,
            })
            .collect();
        let first = fn_perm[0] as usize;
        let cur = functions[first];
        let start_stream = DATA_BASE + (p.data_pages as u64) * 4096;
        Self {
            profile: p,
            functions,
            fn_zipf,
            fn_perm,
            data_zipf,
            data_perm,
            cur,
            ring,
            ring_pos: 0,
            idx: 0,
            block_end: 0,
            loop_budget: 0,
            stream_addr: start_stream,
            hot_addr: start_stream + (p.stream_blocks as u64) * 64 + (64 << 12),
            produced: 0,
            rng,
        }
    }

    /// Number of functions in the code layout.
    pub fn function_count(&self) -> usize {
        self.functions.len()
    }

    /// Builds a generator over the *same* code/data layout as `spec`
    /// (identical function packing, permutations, ring, and address
    /// bands) whose execution-phase randomness is re-seeded by `salt`.
    ///
    /// The tiered engine uses this as the functional fast-forward's warm
    /// stream: the synthetic source is stationary, so a phase fork is a
    /// distribution-faithful projection of the stream's future over the
    /// exact same virtual address space — without advancing (or paying
    /// for) the real stream the measurement windows consume.
    pub fn phase_fork(spec: &WorkloadSpec, salt: u64) -> Self {
        let mut g = Self::new(spec);
        g.rng = Rng64::new(
            spec.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                ^ 0x7153_7f0c_ca5e_17b7u64.wrapping_add(salt.wrapping_mul(0xd134_2543_de82_ef95)),
        );
        g
    }

    /// Picks the next function at a transfer: the cyclic code ring with
    /// probability `ring_ratio`, otherwise a Zipf-sampled scattered one.
    fn pick_function(&mut self) -> Function {
        if !self.ring.is_empty() && self.rng.chance(self.profile.ring_ratio) {
            let f = self.ring[self.ring_pos];
            self.ring_pos = (self.ring_pos + 1) % self.ring.len();
            f
        } else {
            let rank = self.fn_zipf.sample(&mut self.rng);
            self.functions[self.fn_perm[rank] as usize]
        }
    }

    fn data_address(&mut self) -> u64 {
        let roll = self.rng.f64();
        if roll < self.profile.transit_ratio {
            // Transit band: a VPN-contiguous region above the streaming
            // region, touched uniformly — persistent STLB misses whose
            // leaf PTE blocks have L2C-scale reuse.
            let span = (self.profile.data_pages as u64 / 4 + 2) * 4096;
            let base = DATA_BASE + (self.profile.data_pages as u64) * 4096 + span;
            let page = self.rng.below(self.profile.transit_pages as u64);
            // Touch only the first block of a transit page: the band
            // exists to generate page-walk traffic, and its payload
            // working set (one block per page) stays cache-friendly.
            return base + page * 4096 + self.rng.below(8) * 8;
        }
        let hot_lo = self.profile.transit_ratio + self.profile.stream_ratio;
        if roll >= hot_lo && roll < hot_lo + self.profile.hot_ratio {
            // L2C-marginal circular buffer.
            self.hot_addr += 64;
            let base = DATA_BASE
                + (self.profile.data_pages as u64) * 4096
                + (self.profile.stream_blocks as u64) * 64
                + (64 << 12);
            let span = (self.profile.hot_blocks as u64) * 64;
            if self.hot_addr >= base + span {
                self.hot_addr = base;
            }
            return self.hot_addr;
        }
        if roll < self.profile.transit_ratio + self.profile.stream_ratio {
            self.stream_addr += 64;
            // Circular buffer: a block-level working set sized between
            // the L2C and the LLC (see Profile::stream_blocks).
            let span = (self.profile.stream_blocks as u64) * 64;
            let base = DATA_BASE + (self.profile.data_pages as u64) * 4096;
            if self.stream_addr >= base + span {
                self.stream_addr = base;
            }
            self.stream_addr
        } else {
            let rank = self.data_zipf.sample(&mut self.rng);
            let page = self.data_perm[rank] as u64;
            // A handful of blocks per page keeps the block-level working
            // set above the page-level one (caches feel more pressure
            // than TLBs) without drowning the backend in DRAM latency.
            DATA_BASE + page * 4096 + (self.rng.below(32) * 8)
        }
    }

    fn new_block(&mut self) {
        let f = self.cur;
        let remaining = f.len - self.idx;
        let block = self.rng.range(4, 12).min(remaining as u64) as u32;
        self.block_end = self.idx + block;
        self.loop_budget = self.rng.below(4) as u8;
    }

    /// Per-site branch bias derived from the branch PC, so outcomes are
    /// learnable by a history-based predictor.
    fn branch_bias(pc: u64) -> f64 {
        match (pc >> 2) & 3 {
            0 => 0.95,
            1 => 0.85,
            2 => 0.5,
            _ => 0.08,
        }
    }
}

fn permutation(n: usize, rng: &mut Rng64) -> Vec<u32> {
    let mut v: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.index(i + 1);
        v.swap(i, j);
    }
    v
}

impl Iterator for TraceGenerator {
    type Item = TraceInst;

    fn next(&mut self) -> Option<TraceInst> {
        let f = self.cur;
        if self.idx >= f.len {
            // Shouldn't happen (transfer handled below), but recover.
            self.idx = 0;
        }
        if self.block_end <= self.idx {
            self.new_block();
        }
        let pc = f.start + (self.idx as u64) * 4;
        let p = self.profile;

        // Memory operand.
        let roll = self.rng.f64();
        let mem = if roll < p.load_ratio {
            Some(MemRef {
                addr: self.data_address(),
                store: false,
            })
        } else if roll < p.load_ratio + p.store_ratio {
            Some(MemRef {
                addr: self.data_address(),
                store: true,
            })
        } else {
            None
        };

        // Dependencies and latency. Producers are mostly nearby ALU
        // results; long-latency loads are consumed at a spread of
        // distances, so an out-of-order window hides part (not all) of
        // their latency — the asymmetry against front-end stalls that
        // the paper's Finding 2 rests on.
        let src1_dist = if self.rng.chance(0.5) {
            1 + self.rng.below(8) as u8
        } else {
            0
        };
        let src2_dist = if self.rng.chance(0.15) {
            1 + self.rng.below(48) as u8
        } else {
            0
        };
        let exec_latency = if self.rng.chance(p.long_latency_ratio) {
            2 + self.rng.below(4) as u8
        } else {
            1
        };

        // Control flow.
        let at_fn_end = self.idx + 1 >= f.len;
        let at_block_end = self.idx + 1 >= self.block_end;
        let branch = if at_fn_end {
            // Unconditional transfer to the next function (ring or Zipf).
            let next = self.pick_function();
            let target = next.start;
            self.cur = next;
            self.idx = 0;
            self.block_end = 0;
            Some(Branch {
                taken: true,
                target,
            })
        } else if at_block_end {
            let bias = Self::branch_bias(pc);
            let mut taken = self.rng.chance(bias);
            let backward = self.loop_budget > 0 && self.rng.chance(p.loop_prob);
            let target = if backward {
                self.loop_budget -= 1;
                // Loop back a few instructions (stay in the function).
                let back = self.rng.range(2, 8).min(self.idx as u64);
                pc - back * 4
            } else {
                // Short forward skip within the function; the target must
                // stay at or before the final instruction (index len - 1).
                let max_fwd = (f.len - self.idx).saturating_sub(2) as u64;
                if max_fwd == 0 {
                    taken = false;
                    pc + 4
                } else {
                    let fwd = self.rng.range(1, 4).min(max_fwd);
                    pc + (fwd + 1) * 4
                }
            };
            if taken {
                self.idx = ((target - f.start) / 4) as u32;
                self.block_end = 0;
            } else {
                self.idx += 1;
            }
            Some(Branch { taken, target })
        } else {
            self.idx += 1;
            None
        };

        self.produced += 1;
        Some(TraceInst {
            pc,
            exec_latency,
            src1_dist,
            src2_dist,
            mem,
            branch,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn gen(seed: u64) -> TraceGenerator {
        TraceGenerator::new(&WorkloadSpec::server_like(seed))
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let z = ZipfSampler::new(1000, 1.0);
        let mut rng = Rng64::new(1);
        let mut counts = vec![0u32; 1000];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[100] && counts[0] > counts[999]);
        assert!(counts[0] > 500, "rank 0 should dominate: {}", counts[0]);
    }

    #[test]
    fn zipf_zero_exponent_is_uniformish() {
        let z = ZipfSampler::new(10, 0.0);
        let mut rng = Rng64::new(2);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 700));
    }

    #[test]
    fn stream_is_deterministic() {
        let a: Vec<TraceInst> = gen(3).take(5000).collect();
        let b: Vec<TraceInst> = gen(3).take(5000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<TraceInst> = gen(3).take(100).collect();
        let b: Vec<TraceInst> = gen(4).take(100).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn control_flow_is_consistent() {
        let mut g = gen(5);
        let mut prev: Option<TraceInst> = None;
        for inst in (&mut g).take(20_000) {
            if let Some(p) = prev {
                assert_eq!(inst.pc, p.next_pc(), "pc chain broken after {:x?}", p);
            }
            prev = Some(inst);
        }
    }

    #[test]
    fn server_touches_many_code_pages() {
        let pages: HashSet<u64> = gen(6).take(200_000).map(|i| i.pc >> 12).collect();
        assert!(pages.len() > 300, "only {} code pages touched", pages.len());
    }

    #[test]
    fn spec_code_stays_tiny() {
        let g = TraceGenerator::new(&WorkloadSpec::spec_like(1));
        let pages: HashSet<u64> = g.take(100_000).map(|i| i.pc >> 12).collect();
        assert!(pages.len() <= 12, "{} pages", pages.len());
    }

    #[test]
    fn memory_mix_matches_profile() {
        let spec = WorkloadSpec::server_like(7);
        let insts: Vec<TraceInst> = TraceGenerator::new(&spec).take(100_000).collect();
        let loads = insts
            .iter()
            .filter(|i| matches!(i.mem, Some(m) if !m.store))
            .count() as f64;
        let stores = insts
            .iter()
            .filter(|i| matches!(i.mem, Some(m) if m.store))
            .count() as f64;
        let n = insts.len() as f64;
        assert!((loads / n - spec.profile.load_ratio).abs() < 0.02);
        assert!((stores / n - spec.profile.store_ratio).abs() < 0.02);
    }

    #[test]
    fn data_addresses_stay_in_data_region() {
        for inst in gen(8).take(50_000) {
            if let Some(m) = inst.mem {
                assert!(m.addr >= DATA_BASE);
                assert_eq!(m.addr % 8, 0, "8-byte aligned");
            }
        }
    }

    #[test]
    fn phase_fork_same_layout_different_sequence() {
        let spec = WorkloadSpec::server_like(3);
        let base: Vec<TraceInst> = TraceGenerator::new(&spec).take(20_000).collect();
        let fork: Vec<TraceInst> = TraceGenerator::phase_fork(&spec, 1).take(20_000).collect();
        assert_ne!(base, fork, "phase fork must explore a different path");
        // Same address space: every forked pc and data page lies in the
        // set of pages the base layout can produce (code region + ring).
        let base_pages: HashSet<u64> = base.iter().map(|i| i.pc >> 12).collect();
        let fork_pages: HashSet<u64> = fork.iter().map(|i| i.pc >> 12).collect();
        let overlap = fork_pages.intersection(&base_pages).count();
        assert!(
            overlap * 2 > fork_pages.len(),
            "layouts diverged: {overlap}/{} shared code pages",
            fork_pages.len()
        );
        // Deterministic per salt.
        let again: Vec<TraceInst> = TraceGenerator::phase_fork(&spec, 1).take(20_000).collect();
        assert_eq!(fork, again);
        let other: Vec<TraceInst> = TraceGenerator::phase_fork(&spec, 2).take(20_000).collect();
        assert_ne!(fork, other);
    }

    #[test]
    fn branches_exist_and_loop_backwards_sometimes() {
        let insts: Vec<TraceInst> = gen(9).take(50_000).collect();
        let branches = insts.iter().filter(|i| i.branch.is_some()).count();
        assert!(branches > 2000, "branches: {branches}");
        let backward = insts
            .iter()
            .filter(|i| matches!(i.branch, Some(b) if b.taken && b.target < i.pc))
            .count();
        assert!(backward > 50, "backward taken: {backward}");
    }
}
