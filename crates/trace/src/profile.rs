//! Workload descriptions: footprints, locality, and mix parameters.

use itpx_types::fingerprint::{Fingerprint, Fnv1a};

/// Base of the code region in a workload's virtual address space.
pub const CODE_BASE: u64 = 0x10_0000_0000;
/// Base of the data region.
pub const DATA_BASE: u64 = 0x20_0000_0000;
/// Instructions per 4 KiB code page (4-byte instructions).
pub const INSTS_PER_PAGE: usize = 1024;

/// Statistical shape of a workload: footprints, locality skews, and
/// instruction mix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Profile {
    /// Distinct 4 KiB code pages (the instruction footprint).
    pub code_pages: usize,
    /// Minimum instructions per function.
    pub fn_len_min: usize,
    /// Maximum instructions per function.
    pub fn_len_max: usize,
    /// Zipf exponent of function popularity (higher = more skewed reuse).
    pub code_zipf_s: f64,
    /// Fraction of function transfers that advance the *code ring*: a
    /// cyclically-visited set of short functions spanning `ring_pages`
    /// pages. Its reuse distance sits near STLB capacity, so instruction
    /// entries are evicted by data churn under LRU but survive under iTP —
    /// the capacity-contention regime of the paper's Finding 2.
    pub ring_ratio: f64,
    /// Pages spanned by the code ring (disjoint from the Zipf code region).
    pub ring_pages: usize,
    /// Probability that a basic block loops back at its end.
    pub loop_prob: f64,
    /// Distinct 4 KiB data pages (the data footprint).
    pub data_pages: usize,
    /// Zipf exponent of data-page popularity.
    pub data_zipf_s: f64,
    /// Fraction of instructions that are loads.
    pub load_ratio: f64,
    /// Fraction of instructions that are stores.
    pub store_ratio: f64,
    /// Fraction of memory references that stream sequentially through a
    /// block-granularity circular buffer of `stream_blocks` cache blocks.
    /// Sized between the L2C and the LLC, this models the intermediate
    /// working sets of server software: it churns the L2C (evicting
    /// unprotected PTE blocks, the pressure xPTP answers) while staying
    /// TLB-friendly (few hundred pages) and LLC-resident (cheap misses).
    pub stream_ratio: f64,
    /// Cache blocks in the streaming circular buffer.
    pub stream_blocks: usize,
    /// Fraction of memory references walking a second, smaller circular
    /// buffer whose block working set is *L2C-marginal*: it hits the L2C
    /// only while enough L2C capacity is left over. Policies that protect
    /// blocks indiscriminately (PTP keeping instruction PTEs) pay here,
    /// which is how the paper's critique of translation-aware-but-
    /// instruction-oblivious policies manifests.
    pub hot_ratio: f64,
    /// Cache blocks in the L2C-marginal buffer.
    pub hot_blocks: usize,
    /// Fraction of memory references hitting the *transit band*: a
    /// VPN-contiguous region reused beyond STLB reach (its pages miss the
    /// STLB persistently) whose leaf-PTE blocks nevertheless fit in the
    /// L2C — the traffic xPTP's data-PTE protection accelerates.
    pub transit_ratio: f64,
    /// Pages in the transit band.
    pub transit_pages: usize,
    /// Fraction of instructions with a multi-cycle execution latency.
    pub long_latency_ratio: f64,
}

impl Profile {
    /// A big-code server workload in the style of the Qualcomm Server
    /// traces: megabytes of instructions reached through skewed calls,
    /// tens of megabytes of data.
    pub fn server() -> Self {
        Self {
            code_pages: 4096,
            fn_len_min: 16,
            fn_len_max: 256,
            code_zipf_s: 1.25,
            ring_ratio: 0.35,
            ring_pages: 448,
            loop_prob: 0.45,
            data_pages: 24_576,
            data_zipf_s: 1.60,
            load_ratio: 0.22,
            store_ratio: 0.08,
            stream_ratio: 0.18,
            stream_blocks: 16_384,
            hot_ratio: 0.14,
            hot_blocks: 3_584,
            transit_ratio: 0.050,
            transit_pages: 20_480,
            long_latency_ratio: 0.10,
        }
    }

    /// A SPEC-CPU-like workload: tiny code footprint (fits a 64-entry
    /// ITLB), large data footprint.
    pub fn spec() -> Self {
        Self {
            code_pages: 8,
            fn_len_min: 32,
            fn_len_max: 256,
            code_zipf_s: 0.9,
            ring_ratio: 0.0,
            ring_pages: 1,
            loop_prob: 0.6,
            data_pages: 24_576,
            data_zipf_s: 1.70,
            load_ratio: 0.25,
            store_ratio: 0.10,
            stream_ratio: 0.30,
            stream_blocks: 16_384,
            hot_ratio: 0.15,
            hot_blocks: 4_096,
            transit_ratio: 0.002,
            transit_pages: 4096,
            long_latency_ratio: 0.12,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on degenerate footprints or out-of-range ratios.
    pub fn validate(&self) {
        assert!(
            self.code_pages > 0 && self.data_pages > 0,
            "empty footprint"
        );
        assert!(
            self.fn_len_min >= 4 && self.fn_len_min <= self.fn_len_max,
            "bad function length range"
        );
        for r in [
            self.ring_ratio,
            self.loop_prob,
            self.load_ratio,
            self.store_ratio,
            self.stream_ratio,
            self.transit_ratio,
            self.long_latency_ratio,
        ] {
            assert!((0.0..=1.0).contains(&r), "ratio out of range: {r}");
        }
        assert!(
            self.load_ratio + self.store_ratio <= 0.9,
            "memory mix too dense"
        );
        assert!(
            self.stream_ratio + self.transit_ratio <= 1.0,
            "reference mix exceeds 1"
        );
        assert!(self.transit_pages > 0, "empty transit band");
        assert!(self.stream_blocks > 0, "empty stream buffer");
        assert!(self.hot_blocks > 0, "empty hot buffer");
        assert!(
            self.stream_ratio + self.transit_ratio + self.hot_ratio <= 1.0,
            "reference mix exceeds 1"
        );
        assert!(self.ring_pages > 0, "empty code ring");
    }
}

impl Fingerprint for Profile {
    fn fingerprint(&self, h: &mut Fnv1a) {
        h.write_usize(self.code_pages);
        h.write_usize(self.fn_len_min);
        h.write_usize(self.fn_len_max);
        h.write_f64(self.code_zipf_s);
        h.write_f64(self.ring_ratio);
        h.write_usize(self.ring_pages);
        h.write_f64(self.loop_prob);
        h.write_usize(self.data_pages);
        h.write_f64(self.data_zipf_s);
        h.write_f64(self.load_ratio);
        h.write_f64(self.store_ratio);
        h.write_f64(self.stream_ratio);
        h.write_usize(self.stream_blocks);
        h.write_f64(self.hot_ratio);
        h.write_usize(self.hot_blocks);
        h.write_f64(self.transit_ratio);
        h.write_usize(self.transit_pages);
        h.write_f64(self.long_latency_ratio);
    }
}

/// A SMARTS-style tiered execution schedule.
///
/// After the ordinary cycle-accurate warmup, a tiered run repeats
/// `windows` segments of (functional fast-forward of `fast_forward`
/// instructions → cycle-accurate window of `window` instructions). The
/// flat schedule (all fields zero) is the default and means "no tiering":
/// the engine takes the classic single-window path and produces
/// byte-identical outputs to a pre-tiering build, and the flat schedule
/// contributes nothing to a workload's fingerprint so existing simcache
/// keys stay byte-identical too.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TierSchedule {
    /// Instructions per cycle-accurate measurement window.
    pub window: u64,
    /// Instructions covered by the functional fast-forward before each
    /// window (0 = windows are back-to-back).
    pub fast_forward: u64,
    /// Number of (fast-forward, window) segments.
    pub windows: u64,
}

impl TierSchedule {
    /// The non-tiered schedule: one classic warmup + measurement run.
    pub fn flat() -> Self {
        Self::default()
    }

    /// A tiered schedule of `windows` segments.
    ///
    /// # Panics
    ///
    /// Panics if `window` or `windows` is zero.
    pub fn tiered(window: u64, fast_forward: u64, windows: u64) -> Self {
        let s = Self {
            window,
            fast_forward,
            windows,
        };
        s.validate();
        s
    }

    /// Whether this is the flat (non-tiered) schedule.
    pub fn is_flat(&self) -> bool {
        *self == Self::flat()
    }

    /// Instructions measured cycle-accurately across all windows
    /// (0 for the flat schedule, which measures `spec.instructions`).
    pub fn measured_instructions(&self) -> u64 {
        self.windows * self.window
    }

    /// Program instructions covered after warmup: measured windows plus
    /// every fast-forwarded gap.
    pub fn horizon(&self) -> u64 {
        self.windows * (self.window + self.fast_forward)
    }

    /// Validates the schedule.
    ///
    /// # Panics
    ///
    /// Panics on a non-flat schedule with zero-length windows or zero
    /// window count.
    pub fn validate(&self) {
        if !self.is_flat() {
            assert!(self.window > 0, "tiered schedule needs window > 0");
            assert!(self.windows > 0, "tiered schedule needs windows > 0");
        }
    }
}

impl Fingerprint for TierSchedule {
    fn fingerprint(&self, h: &mut Fnv1a) {
        h.write_u64(self.window);
        h.write_u64(self.fast_forward);
        h.write_u64(self.windows);
    }
}

/// How a context switch treats the incoming tenant's cached
/// translations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SwitchPolicy {
    /// Flush the incoming tenant's TLB entries and PSC namespace before
    /// switching — each quantum starts translation-cold, the classic
    /// non-ASID-tagged hardware behavior (global entries still survive).
    #[default]
    FlushAsid,
    /// Keep tagged entries across switches — ASID-tagged hardware; a
    /// returning tenant finds whatever survived the other tenants'
    /// capacity pressure.
    Preserve,
}

impl SwitchPolicy {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            SwitchPolicy::FlushAsid => "flush",
            SwitchPolicy::Preserve => "preserve",
        }
    }
}

/// A deterministic multi-tenant context-switch schedule.
///
/// A consolidation run time-slices `tenants` independent workload streams
/// over one core, round-robin, switching every `quantum` *produced*
/// instructions (the schedule clock is instruction count, not cycles, so
/// the cycle and functional tiers fire switches at identical points).
/// Each tenant is a re-seeded instance of the spec's profile — same
/// statistical shape, different concrete pages, like the generator's
/// `phase_fork`. Optional cadences inject targeted TLB shootdowns and
/// huge-page promotion/demotion churn, and `global_fraction` of 2 MiB
/// regions are backed by mappings shared across every tenant.
///
/// The flat schedule (all zeros) is the default and means "no
/// multi-tenancy": the engine takes the classic single-tenant path,
/// produces byte-identical outputs to a pre-multi-tenant build, and
/// contributes nothing to the workload fingerprint so existing simcache
/// keys stay byte-identical (the same trick [`TierSchedule`] uses).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ContextSchedule {
    /// Number of tenant streams time-sliced over the core (0 = flat).
    pub tenants: u16,
    /// Produced instructions per tenant quantum.
    pub quantum: u64,
    /// What a switch does to the incoming tenant's cached translations.
    pub policy: SwitchPolicy,
    /// Produced instructions between injected TLB shootdowns (0 = never).
    pub shootdown_every: u64,
    /// Produced instructions between huge-page promotion/demotion churn
    /// events (0 = never).
    pub churn_every: u64,
    /// Fraction of 2 MiB regions backed by global (cross-tenant shared)
    /// mappings.
    pub global_fraction: f64,
    /// Seed of the per-region global decision and of shootdown/churn
    /// target selection.
    pub global_seed: u64,
}

impl ContextSchedule {
    /// The single-tenant schedule: no switches, shootdowns, or churn.
    pub fn flat() -> Self {
        Self::default()
    }

    /// A round-robin schedule over `tenants` streams.
    ///
    /// # Panics
    ///
    /// Panics if the schedule fails [`ContextSchedule::validate`].
    pub fn round_robin(tenants: u16, quantum: u64, policy: SwitchPolicy) -> Self {
        let s = Self {
            tenants,
            quantum,
            policy,
            ..Self::default()
        };
        s.validate();
        s
    }

    /// Sets the shootdown cadence.
    #[must_use]
    pub fn shootdowns(mut self, every: u64) -> Self {
        self.shootdown_every = every;
        self
    }

    /// Sets the huge-page churn cadence.
    #[must_use]
    pub fn churn(mut self, every: u64) -> Self {
        self.churn_every = every;
        self
    }

    /// Sets the globally-mapped region fraction and its seed.
    #[must_use]
    pub fn globals(mut self, fraction: f64, seed: u64) -> Self {
        self.global_fraction = fraction;
        self.global_seed = seed;
        self
    }

    /// Whether this is the flat (single-tenant) schedule.
    pub fn is_flat(&self) -> bool {
        *self == Self::flat()
    }

    /// Validates the schedule.
    ///
    /// # Panics
    ///
    /// Panics on a non-flat schedule with fewer than two tenants, a zero
    /// quantum, or a global fraction outside `[0, 1]`.
    pub fn validate(&self) {
        if !self.is_flat() {
            assert!(self.tenants >= 2, "context schedule needs tenants >= 2");
            assert!(self.quantum > 0, "context schedule needs quantum > 0");
            assert!(
                (0.0..=1.0).contains(&self.global_fraction),
                "global_fraction in [0, 1]"
            );
        }
    }
}

impl Fingerprint for ContextSchedule {
    fn fingerprint(&self, h: &mut Fnv1a) {
        h.write_u64(u64::from(self.tenants));
        h.write_u64(self.quantum);
        h.write_str(self.policy.name());
        h.write_u64(self.shootdown_every);
        h.write_u64(self.churn_every);
        h.write_f64(self.global_fraction);
        h.write_u64(self.global_seed);
    }
}

/// One workload: a profile plus identity and run lengths.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Display name (e.g. `srv_017`).
    pub name: String,
    /// Seed controlling every stochastic choice of the generator.
    pub seed: u64,
    /// Statistical shape.
    pub profile: Profile,
    /// Instructions to measure.
    pub instructions: u64,
    /// Instructions to warm up structures before measuring.
    pub warmup: u64,
    /// Tiered execution schedule ([`TierSchedule::flat`] = classic run).
    pub tiers: TierSchedule,
    /// Multi-tenant context schedule ([`ContextSchedule::flat`] =
    /// single-tenant run).
    pub contexts: ContextSchedule,
}

impl WorkloadSpec {
    /// A server-like workload with slight per-seed parameter variation
    /// (footprints and skews are jittered so a suite of seeds spans a
    /// range of STLB pressures, as the real trace set does).
    pub fn server_like(seed: u64) -> Self {
        let mut p = Profile::server();
        let mut r = itpx_types::Rng64::new(seed ^ 0x5e7_5eed);
        p.code_pages = (p.code_pages as f64 * (0.5 + 1.5 * r.f64())) as usize;
        p.data_pages = (p.data_pages as f64 * (0.5 + 1.5 * r.f64())) as usize;
        p.code_zipf_s = 1.15 + 0.20 * r.f64();
        p.data_zipf_s = 1.50 + 0.30 * r.f64();
        p.transit_ratio = 0.040 + 0.020 * r.f64();
        p.transit_pages = 18_432 + (r.below(6) as usize) * 1024;
        p.ring_pages = 384 + (r.below(4) as usize) * 64;
        p.ring_ratio = 0.25 + 0.20 * r.f64();
        Self {
            name: format!("srv_{seed:03}"),
            seed,
            profile: p,
            instructions: 1_000_000,
            warmup: 200_000,
            tiers: TierSchedule::flat(),
            contexts: ContextSchedule::flat(),
        }
    }

    /// A SPEC-like workload.
    pub fn spec_like(seed: u64) -> Self {
        let mut p = Profile::spec();
        let mut r = itpx_types::Rng64::new(seed ^ 0x0bad_5eed);
        p.data_pages = (p.data_pages as f64 * (0.5 + 1.5 * r.f64())) as usize;
        p.code_pages = 4 + (r.below(8) as usize);
        Self {
            name: format!("spec_{seed:03}"),
            seed,
            profile: p,
            instructions: 1_000_000,
            warmup: 200_000,
            tiers: TierSchedule::flat(),
            contexts: ContextSchedule::flat(),
        }
    }

    /// Sets the measured instruction count.
    #[must_use]
    pub fn instructions(mut self, n: u64) -> Self {
        self.instructions = n;
        self
    }

    /// Sets the warmup instruction count.
    #[must_use]
    pub fn warmup(mut self, n: u64) -> Self {
        self.warmup = n;
        self
    }

    /// Sets the tiered execution schedule.
    #[must_use]
    pub fn tiers(mut self, tiers: TierSchedule) -> Self {
        tiers.validate();
        self.tiers = tiers;
        self
    }

    /// Sets the multi-tenant context schedule.
    #[must_use]
    pub fn contexts(mut self, contexts: ContextSchedule) -> Self {
        contexts.validate();
        self.contexts = contexts;
        self
    }
}

impl Fingerprint for WorkloadSpec {
    fn fingerprint(&self, h: &mut Fnv1a) {
        // The name flows into SimulationOutput, so it is part of the
        // cached result's identity, not just a label.
        h.write_str(&self.name);
        h.write_u64(self.seed);
        self.profile.fingerprint(h);
        h.write_u64(self.instructions);
        h.write_u64(self.warmup);
        // The flat schedule is hashed as *nothing* so every pre-tiering
        // simcache key stays byte-identical (the same trick
        // HierarchyConfig uses for optional levels); any tiered schedule
        // changes the key.
        if !self.tiers.is_flat() {
            self.tiers.fingerprint(h);
        }
        // Same key-stability trick: the flat context schedule is hashed
        // as nothing, so single-tenant specs keep their pre-multi-tenant
        // simcache keys.
        if !self.contexts.is_flat() {
            self.contexts.fingerprint(h);
        }
    }
}

/// SMT co-location pressure category (Section 5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SmtCategory {
    /// Two workloads with high STLB MPKI.
    Intense,
    /// One high + one medium STLB MPKI workload.
    Medium,
    /// One high + one low STLB MPKI workload.
    Relaxed,
}

impl SmtCategory {
    /// All categories, in paper order.
    pub const ALL: [SmtCategory; 3] = [
        SmtCategory::Intense,
        SmtCategory::Medium,
        SmtCategory::Relaxed,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            SmtCategory::Intense => "intense",
            SmtCategory::Medium => "medium",
            SmtCategory::Relaxed => "relaxed",
        }
    }
}

/// Two workloads co-located on one SMT core.
#[derive(Debug, Clone, PartialEq)]
pub struct SmtPairSpec {
    /// Workload on hardware thread 0.
    pub a: WorkloadSpec,
    /// Workload on hardware thread 1.
    pub b: WorkloadSpec,
    /// Pressure category of the pair.
    pub category: SmtCategory,
}

impl SmtPairSpec {
    /// Display name of the pair.
    pub fn name(&self) -> String {
        format!("{}+{}", self.a.name, self.b.name)
    }
}

impl Fingerprint for SmtPairSpec {
    fn fingerprint(&self, h: &mut Fnv1a) {
        self.a.fingerprint(h);
        self.b.fingerprint(h);
        h.write_str(self.category.name());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canned_profiles_validate() {
        Profile::server().validate();
        Profile::spec().validate();
    }

    #[test]
    fn spec_code_fits_a_64_entry_itlb() {
        for seed in 0..20 {
            let w = WorkloadSpec::spec_like(seed);
            assert!(w.profile.code_pages <= 64, "{}", w.profile.code_pages);
            w.profile.validate();
        }
    }

    #[test]
    fn server_code_footprint_is_large_and_varies() {
        let sizes: Vec<usize> = (0..20)
            .map(|s| WorkloadSpec::server_like(s).profile.code_pages)
            .collect();
        assert!(sizes.iter().all(|&s| s >= 1024), "{sizes:?}");
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        assert!(max > min, "seeds must vary the footprint");
    }

    #[test]
    fn builders_override_lengths() {
        let w = WorkloadSpec::server_like(1).instructions(5000).warmup(100);
        assert_eq!(w.instructions, 5000);
        assert_eq!(w.warmup, 100);
    }

    #[test]
    #[should_panic(expected = "ratio out of range")]
    fn bad_ratio_panics() {
        let mut p = Profile::server();
        p.loop_prob = 1.5;
        p.validate();
    }

    fn key_of(w: &WorkloadSpec) -> u64 {
        let mut h = Fnv1a::new();
        w.fingerprint(&mut h);
        h.finish()
    }

    #[test]
    fn flat_schedule_leaves_fingerprint_unchanged() {
        // The explicit flat schedule must hash exactly like an untouched
        // spec: pre-tiering simcache keys depend on this.
        let base = WorkloadSpec::server_like(1);
        let flat = base.clone().tiers(TierSchedule::flat());
        assert_eq!(key_of(&base), key_of(&flat));
    }

    #[test]
    fn tiered_schedule_changes_fingerprint() {
        let base = WorkloadSpec::server_like(1);
        let tiered = base.clone().tiers(TierSchedule::tiered(10_000, 90_000, 4));
        assert_ne!(key_of(&base), key_of(&tiered));
        // Every schedule field is key-relevant.
        let a = base.clone().tiers(TierSchedule::tiered(10_000, 90_000, 5));
        let b = base.clone().tiers(TierSchedule::tiered(10_000, 80_000, 4));
        let c = base.tiers(TierSchedule::tiered(20_000, 90_000, 4));
        let keys = [key_of(&tiered), key_of(&a), key_of(&b), key_of(&c)];
        for (i, x) in keys.iter().enumerate() {
            for y in keys.iter().skip(i + 1) {
                assert_ne!(x, y);
            }
        }
    }

    #[test]
    fn tier_schedule_accounting() {
        let t = TierSchedule::tiered(10_000, 490_000, 4);
        assert!(!t.is_flat());
        assert_eq!(t.measured_instructions(), 40_000);
        assert_eq!(t.horizon(), 2_000_000);
        assert!(TierSchedule::flat().is_flat());
        assert_eq!(TierSchedule::flat().measured_instructions(), 0);
    }

    #[test]
    #[should_panic(expected = "window > 0")]
    fn zero_window_tiered_schedule_panics() {
        let _ = TierSchedule::tiered(0, 1000, 2);
    }

    #[test]
    fn flat_context_schedule_leaves_fingerprint_unchanged() {
        // The explicit flat schedule must hash exactly like an untouched
        // spec: pre-multi-tenant simcache keys depend on this.
        let base = WorkloadSpec::server_like(1);
        let flat = base.clone().contexts(ContextSchedule::flat());
        assert_eq!(key_of(&base), key_of(&flat));
    }

    #[test]
    fn every_context_schedule_field_changes_the_fingerprint() {
        let base = WorkloadSpec::server_like(1);
        let sched = ContextSchedule::round_robin(2, 10_000, SwitchPolicy::FlushAsid)
            .shootdowns(5_000)
            .churn(7_000)
            .globals(0.25, 9);
        let with = |f: &dyn Fn(&mut ContextSchedule)| {
            let mut s = sched;
            f(&mut s);
            key_of(&base.clone().contexts(s))
        };
        let keys = [
            key_of(&base),
            with(&|_| {}),
            with(&|s| s.tenants = 4),
            with(&|s| s.quantum = 20_000),
            with(&|s| s.policy = SwitchPolicy::Preserve),
            with(&|s| s.shootdown_every = 6_000),
            with(&|s| s.churn_every = 8_000),
            with(&|s| s.global_fraction = 0.5),
            with(&|s| s.global_seed = 10),
        ];
        for (i, x) in keys.iter().enumerate() {
            for (j, y) in keys.iter().enumerate().skip(i + 1) {
                assert_ne!(x, y, "fields {i} and {j} collide");
            }
        }
    }

    #[test]
    #[should_panic(expected = "tenants >= 2")]
    fn single_tenant_round_robin_panics() {
        let _ = ContextSchedule::round_robin(1, 10_000, SwitchPolicy::FlushAsid);
    }
}
