//! Belady's MIN oracle over access streams.
//!
//! The paper's related work leans on Belady-style reasoning (its reference
//! 32, Jain & Lin's Hawkeye, mimics MIN). This module computes the
//! clairvoyant-optimal miss count of a set-associative structure over any
//! key stream — used by the `oracle` experiment to bound how much headroom
//! *any* STLB replacement policy has on a workload, which contextualizes
//! iTP's gains.

use std::collections::{BTreeMap, HashMap};

/// Result of an oracle replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleResult {
    /// Total accesses.
    pub accesses: u64,
    /// Misses under Belady's MIN (compulsory + unavoidable capacity).
    pub min_misses: u64,
    /// Misses under LRU on the same geometry (for headroom comparison).
    pub lru_misses: u64,
}

impl OracleResult {
    /// Fraction of LRU misses that MIN avoids — the replacement-policy
    /// headroom of this stream on this geometry.
    pub fn headroom(&self) -> f64 {
        if self.lru_misses == 0 {
            0.0
        } else {
            1.0 - self.min_misses as f64 / self.lru_misses as f64
        }
    }
}

/// Replays `keys` through a `sets`-set, `ways`-way structure under both
/// Belady's MIN and LRU.
///
/// # Panics
///
/// Panics if `sets == 0` or `ways == 0`.
pub fn replay_min_and_lru(keys: &[u64], sets: usize, ways: usize) -> OracleResult {
    assert!(sets > 0 && ways > 0, "oracle needs sets > 0, ways > 0");
    // Precompute next-use indices: next_use[i] = next j > i with the same
    // key, or u64::MAX.
    let mut next_use = vec![u64::MAX; keys.len()];
    let mut last_pos: HashMap<u64, usize> = HashMap::new();
    for (i, &k) in keys.iter().enumerate().rev() {
        if let Some(&j) = last_pos.get(&k) {
            next_use[i] = j as u64;
        }
        last_pos.insert(k, i);
    }

    let mut min_misses = 0u64;
    let mut lru_misses = 0u64;
    // Per-set resident maps: key -> next use (MIN) / last use (LRU).
    // Ordered maps: `max_by_key`/`min_by_key` break ties by iteration
    // order, which for a `HashMap` differs between processes. `BTreeMap`
    // iteration is key-ordered, so tie-breaks (and miss counts) are stable.
    let mut min_sets: Vec<BTreeMap<u64, u64>> = vec![BTreeMap::new(); sets];
    let mut lru_sets: Vec<BTreeMap<u64, u64>> = vec![BTreeMap::new(); sets];
    for (i, &k) in keys.iter().enumerate() {
        let s = (k as usize) % sets;

        // --- MIN ---
        let resident = min_sets[s].contains_key(&k);
        if resident {
            min_sets[s].insert(k, next_use[i]);
        } else {
            min_misses += 1;
            if min_sets[s].len() >= ways {
                // Evict the key with the farthest next use.
                let victim = *min_sets[s]
                    .iter()
                    .max_by_key(|&(_, &nu)| nu)
                    .map(|(key, _)| key)
                    // len() >= ways >= 1: the set is non-empty
                    .expect("full set");
                min_sets[s].remove(&victim);
            }
            min_sets[s].insert(k, next_use[i]);
        }

        // --- LRU ---
        if lru_sets[s].contains_key(&k) {
            lru_sets[s].insert(k, i as u64);
        } else {
            lru_misses += 1;
            if lru_sets[s].len() >= ways {
                let victim = *lru_sets[s]
                    .iter()
                    .min_by_key(|&(_, &lu)| lu)
                    .map(|(key, _)| key)
                    // len() >= ways >= 1: the set is non-empty
                    .expect("full set");
                lru_sets[s].remove(&victim);
            }
            lru_sets[s].insert(k, i as u64);
        }
    }
    OracleResult {
        accesses: keys.len() as u64,
        min_misses,
        lru_misses,
    }
}

/// Extracts the page-level key streams from a trace: instruction page
/// transitions, data pages, and the *unified* interleaving a shared STLB
/// sees (code and data regions are disjoint, so page numbers never
/// collide). The unified stream is where cross-stream contention — the
/// phenomenon iTP exploits — lives; the split streams isolate each side's
/// intrinsic replacement headroom.
pub fn tlb_key_streams<I: IntoIterator<Item = crate::record::TraceInst>>(
    trace: I,
) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
    let mut code = Vec::new();
    let mut data = Vec::new();
    let mut unified = Vec::new();
    let mut last_page = u64::MAX;
    for inst in trace {
        let page = inst.pc >> 12;
        if page != last_page {
            last_page = page;
            code.push(page);
            unified.push(page);
        }
        if let Some(m) = inst.mem {
            data.push(m.addr >> 12);
            unified.push(m.addr >> 12);
        }
    }
    (code, data, unified)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_beats_or_matches_lru_always() {
        // Classic MIN-vs-LRU example: cyclic pattern over capacity + 1.
        let keys: Vec<u64> = (0..5u64).cycle().take(100).collect();
        let r = replay_min_and_lru(&keys, 1, 4);
        assert!(r.min_misses <= r.lru_misses);
        // LRU thrashes completely on a cyclic overflow...
        assert_eq!(r.lru_misses, 100);
        // ...while MIN keeps 3 of 5 and misses far less.
        assert!(r.min_misses < 50, "MIN misses: {}", r.min_misses);
        assert!(r.headroom() > 0.5);
    }

    #[test]
    fn fits_in_capacity_means_compulsory_only() {
        let keys: Vec<u64> = (0..4u64).cycle().take(64).collect();
        let r = replay_min_and_lru(&keys, 1, 4);
        assert_eq!(r.min_misses, 4);
        assert_eq!(r.lru_misses, 4);
        assert_eq!(r.headroom(), 0.0);
    }

    #[test]
    fn set_mapping_partitions_keys() {
        // Keys 0..8 over 2 sets x 4 ways: everything fits.
        let keys: Vec<u64> = (0..8u64).cycle().take(80).collect();
        let r = replay_min_and_lru(&keys, 2, 4);
        assert_eq!(r.min_misses, 8);
        assert_eq!(r.lru_misses, 8);
    }

    #[test]
    fn min_on_synthetic_workload_bounds_lru() {
        use crate::gen::TraceGenerator;
        use crate::profile::WorkloadSpec;
        let (code, data, unified) =
            tlb_key_streams(TraceGenerator::new(&WorkloadSpec::server_like(1)).take(40_000));
        assert_eq!(unified.len(), code.len() + data.len());
        for stream in [&code, &data, &unified] {
            let r = replay_min_and_lru(stream, 128, 12);
            assert!(r.min_misses <= r.lru_misses);
            assert!(r.min_misses > 0, "compulsory misses exist");
        }
    }

    #[test]
    fn key_streams_split_code_transitions_and_data() {
        use crate::record::{MemRef, TraceInst};
        let trace = vec![
            TraceInst::alu(0x1000),
            TraceInst::alu(0x1004), // same page: no new code key
            TraceInst {
                mem: Some(MemRef {
                    addr: 0xA000,
                    store: false,
                }),
                ..TraceInst::alu(0x2000)
            },
        ];
        let (code, data, unified) = tlb_key_streams(trace);
        assert_eq!(code, vec![0x1, 0x2]);
        assert_eq!(data, vec![0xA]);
        assert_eq!(unified, vec![0x1, 0x2, 0xA]);
    }
}
