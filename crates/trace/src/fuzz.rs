//! Adversarial trace fuzzing for the differential harness.
//!
//! [`FuzzSpec`] names one deterministic adversarial workload: a pattern, a
//! seed, and a length. [`generate`] expands it into a concrete instruction
//! stream; [`corpus`] derives a whole family of specs from one master
//! seed. The patterns stress the paths where the optimized simulator has
//! the most machinery to get wrong:
//!
//! * **instruction thrash** — code footprints far beyond the ITLB (and
//!   pushing the STLB), exercising fill/evict churn at both TLB levels;
//! * **page-walk heavy** — sparse pages scattered across the address
//!   space so the page-structure caches miss and walks run deep;
//! * **phase shifting** — periodic migration to a disjoint working set,
//!   exercising whole-structure turnover;
//! * **writeback storm** — store-heavy cycling over more blocks than the
//!   caches hold, exercising dirty evictions and writeback routing at
//!   every chain level;
//! * **mixed** — bursts drawn from all of the above, for interactions no
//!   single pattern produces.
//!
//! Everything is seeded from [`Rng64`]: the same spec always expands to
//! the same trace, so a failing fuzz case is its spec.

use crate::record::{MemRef, TraceInst};
use itpx_types::Rng64;

/// Base virtual address of fuzzer code pages.
const CODE_BASE: u64 = 0x0051_0000_0000;
/// Base virtual address of fuzzer data pages.
const DATA_BASE: u64 = 0x0062_0000_0000;
/// Bytes per 4 KiB page.
const PAGE: u64 = 4096;

/// One adversarial access pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuzzPattern {
    /// Code footprint far beyond the ITLB: TLB fill/evict churn.
    InstrThrash,
    /// Sparse scattered pages: PSC misses and deep page walks.
    PageWalkHeavy,
    /// Disjoint working sets swapped periodically.
    PhaseShift,
    /// Store-heavy cycling: dirty evictions and writeback routing.
    WritebackStorm,
    /// Bursts of all four patterns interleaved.
    Mixed,
    /// One abrupt working-set migration placed *mid-trace*, with dense
    /// straddling traffic on both sides — the shape of a tier handoff:
    /// state warmed before the boundary must carry the first accesses
    /// after it. The ddmin shrinker preserves the straddle when it
    /// minimizes, so handoff bugs reduce to a few pre/post accesses.
    TierBoundary,
    /// Dense reuse over a small working set whose window drifts slowly.
    /// The difftest lowering injects high-rate context switches on top,
    /// so consecutive scheduler quanta run under different ASIDs while
    /// their working sets overlap partially: the same VPNs recur under
    /// different tags and the TLBs must refuse every stale entry.
    ContextStorm,
    /// A hot, heavily revisited working set. The difftest lowering
    /// injects targeted shootdowns of recently touched pages (plus slow
    /// tenant rotation), so invalidations keep landing on translations
    /// that are actually resident and the very next access re-walks.
    ShootdownStorm,
}

impl FuzzPattern {
    /// Every pattern, in corpus round-robin order.
    pub const ALL: [FuzzPattern; 8] = [
        FuzzPattern::InstrThrash,
        FuzzPattern::PageWalkHeavy,
        FuzzPattern::PhaseShift,
        FuzzPattern::WritebackStorm,
        FuzzPattern::Mixed,
        FuzzPattern::TierBoundary,
        FuzzPattern::ContextStorm,
        FuzzPattern::ShootdownStorm,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            FuzzPattern::InstrThrash => "instr-thrash",
            FuzzPattern::PageWalkHeavy => "page-walk-heavy",
            FuzzPattern::PhaseShift => "phase-shift",
            FuzzPattern::WritebackStorm => "writeback-storm",
            FuzzPattern::Mixed => "mixed",
            FuzzPattern::TierBoundary => "tier-boundary",
            FuzzPattern::ContextStorm => "context-storm",
            FuzzPattern::ShootdownStorm => "shootdown-storm",
        }
    }
}

impl std::fmt::Display for FuzzPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One deterministic fuzz workload: `generate` expands it to a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzSpec {
    /// The access pattern to synthesize.
    pub pattern: FuzzPattern,
    /// Seed for every stochastic choice of the expansion.
    pub seed: u64,
    /// Number of instructions to produce.
    pub instructions: usize,
}

impl std::fmt::Display for FuzzSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/seed={:#x}/n={}",
            self.pattern, self.seed, self.instructions
        )
    }
}

/// Expands a spec into its instruction stream. Deterministic: equal specs
/// produce equal traces.
pub fn generate(spec: &FuzzSpec) -> Vec<TraceInst> {
    let mut rng = Rng64::new(spec.seed);
    let mut out = Vec::with_capacity(spec.instructions);
    emit(spec.pattern, &mut rng, spec.instructions, &mut out);
    out.truncate(spec.instructions);
    out
}

/// A family of specs cycling through every pattern, seeds forked from
/// `master_seed`.
pub fn corpus(master_seed: u64, traces: usize, instructions: usize) -> Vec<FuzzSpec> {
    let mut rng = Rng64::new(master_seed);
    let mut patterns = FuzzPattern::ALL.iter().copied().cycle();
    (0..traces)
        .map(|_| FuzzSpec {
            pattern: patterns.next().unwrap_or(FuzzPattern::Mixed),
            seed: rng.next_u64(),
            instructions,
        })
        .collect()
}

fn emit(pattern: FuzzPattern, rng: &mut Rng64, budget: usize, out: &mut Vec<TraceInst>) {
    match pattern {
        FuzzPattern::InstrThrash => instr_thrash(rng, budget, out),
        FuzzPattern::PageWalkHeavy => page_walk_heavy(rng, budget, out),
        FuzzPattern::PhaseShift => phase_shift(rng, budget, out),
        FuzzPattern::WritebackStorm => writeback_storm(rng, budget, out),
        FuzzPattern::Mixed => mixed(rng, budget, out),
        FuzzPattern::TierBoundary => tier_boundary(rng, budget, out),
        FuzzPattern::ContextStorm => context_storm(rng, budget, out),
        FuzzPattern::ShootdownStorm => shootdown_storm(rng, budget, out),
    }
}

/// A short straight-line run of instructions starting inside `page`,
/// optionally decorating some with a data reference drawn by `data_ref`.
fn run_in_page(
    rng: &mut Rng64,
    out: &mut Vec<TraceInst>,
    page_base: u64,
    mem_every: u64,
    mut data_ref: impl FnMut(&mut Rng64) -> MemRef,
) {
    let len = rng.range(4, 12);
    // Keep the run inside its page: offsets stay below PAGE - len * 4.
    let start = rng.below(PAGE / 4 - 16) * 4;
    let mut pc = page_base + start;
    for _ in 0..len {
        let mut inst = TraceInst::alu(pc);
        if mem_every > 0 && rng.below(mem_every) == 0 {
            inst.mem = Some(data_ref(rng));
        }
        out.push(inst);
        pc += 4;
    }
}

/// Code spread over 512 pages (8x the 64-entry ITLB, deep into the STLB),
/// visited in short runs with rare data traffic.
fn instr_thrash(rng: &mut Rng64, budget: usize, out: &mut Vec<TraceInst>) {
    const CODE_PAGES: u64 = 512;
    const DATA_PAGES: u64 = 8;
    while out.len() < budget {
        let page = CODE_BASE + rng.below(CODE_PAGES) * PAGE;
        run_in_page(rng, out, page, 8, |r| MemRef {
            addr: DATA_BASE + r.below(DATA_PAGES) * PAGE + r.below(PAGE / 8) * 8,
            store: r.chance(0.2),
        });
    }
}

/// Loads scattered over millions of pages spanning thousands of level-2
/// page-table regions: the PSCs thrash and most walks start near the
/// root. A slice of the traffic is far instruction pages, so instruction
/// walks run too.
fn page_walk_heavy(rng: &mut Rng64, budget: usize, out: &mut Vec<TraceInst>) {
    const SPARSE_PAGES: u64 = 1 << 22;
    const FAR_CODE_PAGES: u64 = 1 << 18;
    while out.len() < budget {
        let page = if rng.chance(0.1) {
            CODE_BASE + rng.below(FAR_CODE_PAGES) * PAGE
        } else {
            CODE_BASE + rng.below(4) * PAGE
        };
        run_in_page(rng, out, page, 2, |r| MemRef {
            addr: DATA_BASE + r.below(SPARSE_PAGES) * PAGE + r.below(PAGE / 8) * 8,
            store: r.chance(0.1),
        });
    }
}

/// Small, heavily reused working sets that migrate to disjoint address
/// ranges every phase, turning over every structure at once.
fn phase_shift(rng: &mut Rng64, budget: usize, out: &mut Vec<TraceInst>) {
    const PHASES: u64 = 6;
    const PHASE_STRIDE: u64 = 1 << 26;
    const CODE_PAGES: u64 = 24;
    const DATA_PAGES: u64 = 48;
    let per_phase = (budget / PHASES as usize).max(1);
    let mut phase = 0u64;
    while out.len() < budget {
        let phase_end = out.len() + per_phase;
        let code_base = CODE_BASE + phase * PHASE_STRIDE;
        let data_base = DATA_BASE + phase * PHASE_STRIDE;
        while out.len() < phase_end && out.len() < budget {
            let page = code_base + rng.below(CODE_PAGES) * PAGE;
            run_in_page(rng, out, page, 3, |r| MemRef {
                addr: data_base + r.below(DATA_PAGES) * PAGE + r.below(PAGE / 8) * 8,
                store: r.chance(0.3),
            });
        }
        phase += 1;
    }
}

/// Store-heavy cycling over more blocks than the whole chain holds:
/// every level keeps displacing dirty blocks, exercising writeback
/// emission, absorption, and DRAM routing.
fn writeback_storm(rng: &mut Rng64, budget: usize, out: &mut Vec<TraceInst>) {
    // 640 pages = 2.5 MiB of data: beyond the L1D, the L2C, and the LLC.
    const STORM_PAGES: u64 = 640;
    const CODE_PAGES: u64 = 6;
    let mut cursor = 0u64;
    while out.len() < budget {
        let page = CODE_BASE + rng.below(CODE_PAGES) * PAGE;
        run_in_page(rng, out, page, 1, |r| {
            // Mostly a sequential sweep (deterministic pressure), with a
            // random scatter component so sets fill unevenly.
            let p = if r.chance(0.75) {
                cursor = (cursor + 1) % (STORM_PAGES * (PAGE / 64));
                cursor / (PAGE / 64) * PAGE + cursor % (PAGE / 64) * 64
            } else {
                r.below(STORM_PAGES) * PAGE + r.below(PAGE / 64) * 64
            };
            MemRef {
                addr: DATA_BASE + p,
                store: r.chance(0.7),
            }
        });
    }
}

/// One phase shift pinned to the middle of the trace, straddled by dense
/// revisits: the first half warms a working set, the boundary jumps to a
/// disjoint range, and the second half keeps interleaving *both* ranges
/// so any state dropped or duplicated at a handoff shows up as a count
/// divergence immediately after the boundary.
fn tier_boundary(rng: &mut Rng64, budget: usize, out: &mut Vec<TraceInst>) {
    const CODE_PAGES: u64 = 32;
    const DATA_PAGES: u64 = 64;
    const SHIFT: u64 = 1 << 27;
    let boundary = budget / 2;
    // Pre-boundary: warm one working set densely.
    while out.len() < boundary {
        let page = CODE_BASE + rng.below(CODE_PAGES) * PAGE;
        run_in_page(rng, out, page, 2, |r| MemRef {
            addr: DATA_BASE + r.below(DATA_PAGES) * PAGE + r.below(PAGE / 8) * 8,
            store: r.chance(0.3),
        });
    }
    // Post-boundary: the shifted set dominates, but every few runs dips
    // back into the warmed set — the straddling reuse a broken handoff
    // would get wrong.
    while out.len() < budget {
        let (code, data) = if rng.chance(0.7) {
            (CODE_BASE + SHIFT, DATA_BASE + SHIFT)
        } else {
            (CODE_BASE, DATA_BASE)
        };
        let page = code + rng.below(CODE_PAGES) * PAGE;
        run_in_page(rng, out, page, 2, |r| MemRef {
            addr: data + r.below(DATA_PAGES) * PAGE + r.below(PAGE / 8) * 8,
            store: r.chance(0.3),
        });
    }
}

/// A compact working set whose window slides forward every few hundred
/// instructions. With the difftest harness rotating ASIDs every few
/// dozen events, adjacent quanta share most — but not all — of their
/// pages: exactly the partial overlap where a tag-matching bug (hitting
/// another tenant's entry for the same VPN) would change counts.
fn context_storm(rng: &mut Rng64, budget: usize, out: &mut Vec<TraceInst>) {
    const CODE_PAGES: u64 = 20;
    const DATA_PAGES: u64 = 40;
    const DRIFT_EVERY: usize = 160;
    while out.len() < budget {
        let drift = (out.len() / DRIFT_EVERY) as u64 * 4;
        let page = CODE_BASE + (drift + rng.below(CODE_PAGES)) * PAGE;
        run_in_page(rng, out, page, 2, |r| MemRef {
            addr: DATA_BASE + (drift + r.below(DATA_PAGES)) * PAGE + r.below(PAGE / 8) * 8,
            store: r.chance(0.3),
        });
    }
}

/// A hot set small enough that almost every page stays TLB-resident, so
/// the shootdowns the difftest harness injects (targeting recently
/// accessed pages) reliably invalidate live entries and the revisit
/// traffic re-walks them immediately.
fn shootdown_storm(rng: &mut Rng64, budget: usize, out: &mut Vec<TraceInst>) {
    const CODE_PAGES: u64 = 12;
    const DATA_PAGES: u64 = 32;
    while out.len() < budget {
        let page = CODE_BASE + rng.below(CODE_PAGES) * PAGE;
        run_in_page(rng, out, page, 1, |r| MemRef {
            addr: DATA_BASE + r.below(DATA_PAGES) * PAGE + r.below(PAGE / 8) * 8,
            store: r.chance(0.25),
        });
    }
}

/// Bursts of every pattern back to back.
fn mixed(rng: &mut Rng64, budget: usize, out: &mut Vec<TraceInst>) {
    const BURST: usize = 96;
    let singles = [
        FuzzPattern::InstrThrash,
        FuzzPattern::PageWalkHeavy,
        FuzzPattern::PhaseShift,
        FuzzPattern::WritebackStorm,
    ];
    while out.len() < budget {
        let pick = rng.index(singles.len());
        let burst_end = (out.len() + BURST).min(budget);
        // `pick` is in range by construction of `index`.
        let pattern = singles[pick];
        emit(pattern, rng, burst_end, out);
        out.truncate(burst_end);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for pattern in FuzzPattern::ALL {
            let spec = FuzzSpec {
                pattern,
                seed: 0xfeed,
                instructions: 500,
            };
            assert_eq!(generate(&spec), generate(&spec), "{pattern}");
        }
    }

    #[test]
    fn generation_honors_length() {
        for pattern in FuzzPattern::ALL {
            let spec = FuzzSpec {
                pattern,
                seed: 1,
                instructions: 333,
            };
            assert_eq!(generate(&spec).len(), 333, "{pattern}");
        }
    }

    #[test]
    fn corpus_cycles_patterns_with_distinct_seeds() {
        let specs = corpus(7, 16, 100);
        assert_eq!(specs.len(), 16);
        assert_eq!(specs[0].pattern, FuzzPattern::InstrThrash);
        assert_eq!(specs[4].pattern, FuzzPattern::Mixed);
        assert_eq!(specs[5].pattern, FuzzPattern::TierBoundary);
        assert_eq!(specs[6].pattern, FuzzPattern::ContextStorm);
        assert_eq!(specs[7].pattern, FuzzPattern::ShootdownStorm);
        assert_eq!(specs[8].pattern, FuzzPattern::InstrThrash);
        let mut seeds: Vec<u64> = specs.iter().map(|s| s.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 16, "seeds must differ per trace");
    }

    #[test]
    fn tier_boundary_shifts_mid_trace_and_straddles() {
        let spec = FuzzSpec {
            pattern: FuzzPattern::TierBoundary,
            seed: 21,
            instructions: 4_000,
        };
        let trace = generate(&spec);
        let shifted = |pc: u64| pc >= CODE_BASE + (1 << 27);
        // First half never touches the shifted range...
        assert!(trace[..1800].iter().all(|i| !shifted(i.pc)));
        // ...the second half touches both ranges (straddling reuse).
        let post = &trace[2200..];
        assert!(post.iter().any(|i| shifted(i.pc)), "no shift happened");
        assert!(
            post.iter().any(|i| !shifted(i.pc)),
            "post-boundary traffic must dip back into the warmed set"
        );
    }

    #[test]
    fn instr_thrash_touches_many_code_pages() {
        let spec = FuzzSpec {
            pattern: FuzzPattern::InstrThrash,
            seed: 3,
            instructions: 4_000,
        };
        let trace = generate(&spec);
        let mut pages: Vec<u64> = trace.iter().map(|i| i.pc / PAGE).collect();
        pages.sort_unstable();
        pages.dedup();
        assert!(pages.len() > 128, "got {} code pages", pages.len());
    }

    #[test]
    fn writeback_storm_is_store_heavy() {
        let spec = FuzzSpec {
            pattern: FuzzPattern::WritebackStorm,
            seed: 9,
            instructions: 4_000,
        };
        let trace = generate(&spec);
        let mems = trace.iter().filter_map(|i| i.mem).count();
        let stores = trace
            .iter()
            .filter_map(|i| i.mem)
            .filter(|m| m.store)
            .count();
        assert!(mems > 500, "storm needs memory traffic, got {mems}");
        assert!(stores * 2 > mems, "stores must dominate: {stores}/{mems}");
    }

    #[test]
    fn context_storm_window_drifts_with_partial_overlap() {
        let spec = FuzzSpec {
            pattern: FuzzPattern::ContextStorm,
            seed: 5,
            instructions: 4_000,
        };
        let trace = generate(&spec);
        let pages = |slice: &[TraceInst]| -> Vec<u64> {
            let mut p: Vec<u64> = slice.iter().map(|i| i.pc / PAGE).collect();
            p.sort_unstable();
            p.dedup();
            p
        };
        let early = pages(&trace[..800]);
        let late = pages(&trace[3200..]);
        assert!(
            early.iter().all(|p| !late.contains(p)),
            "distant windows must have fully drifted apart"
        );
        // Adjacent windows still overlap: that partial reuse is the point.
        let a = pages(&trace[1600..1900]);
        let b = pages(&trace[1900..2200]);
        assert!(
            a.iter().any(|p| b.contains(p)),
            "adjacent windows must share pages — drift is gradual"
        );
    }

    #[test]
    fn shootdown_storm_stays_hot_and_memory_dense() {
        let spec = FuzzSpec {
            pattern: FuzzPattern::ShootdownStorm,
            seed: 13,
            instructions: 4_000,
        };
        let trace = generate(&spec);
        let mut pages: Vec<u64> = trace
            .iter()
            .filter_map(|i| i.mem)
            .map(|m| m.addr / PAGE)
            .collect();
        let mems = pages.len();
        pages.sort_unstable();
        pages.dedup();
        assert!(
            pages.len() <= 32,
            "hot set must stay small: {}",
            pages.len()
        );
        assert!(mems > 2_000, "storm needs dense data traffic, got {mems}");
    }

    #[test]
    fn page_walk_heavy_scatters_data_pages() {
        let spec = FuzzSpec {
            pattern: FuzzPattern::PageWalkHeavy,
            seed: 11,
            instructions: 4_000,
        };
        let trace = generate(&spec);
        let mut regions: Vec<u64> = trace
            .iter()
            .filter_map(|i| i.mem)
            .map(|m| m.addr >> 21)
            .collect();
        regions.sort_unstable();
        regions.dedup();
        assert!(
            regions.len() > 64,
            "need many level-2 regions, got {}",
            regions.len()
        );
    }
}
