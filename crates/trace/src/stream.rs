//! Instruction-stream abstraction: the simulator consumes instructions
//! from either a live synthetic generator or a recorded trace file.

use crate::gen::TraceGenerator;
use crate::profile::WorkloadSpec;
use crate::record::TraceInst;

/// An endless source of dynamic instructions for one hardware thread.
///
/// Implementations must be infinite — the engine draws exactly as many
/// instructions as the run needs.
pub trait InstructionStream: std::fmt::Debug + Send {
    /// Produces the next dynamic instruction.
    fn next_inst(&mut self) -> TraceInst;
}

impl InstructionStream for TraceGenerator {
    fn next_inst(&mut self) -> TraceInst {
        // the Iterator impl below always returns Some
        self.next().expect("generator is infinite")
    }
}

/// Replays a recorded trace in a loop.
///
/// Because a finite trace ends mid-control-flow, the replay stitches the
/// wrap-around by rewriting the last instruction into an unconditional
/// branch back to the first instruction's PC — keeping the PC chain
/// consistent for the front end.
#[derive(Debug, Clone)]
pub struct TraceLoop {
    insts: Vec<TraceInst>,
    pos: usize,
}

impl TraceLoop {
    /// Creates a looping replay over `insts`.
    ///
    /// # Panics
    ///
    /// Panics if `insts` is empty.
    pub fn new(mut insts: Vec<TraceInst>) -> Self {
        assert!(!insts.is_empty(), "cannot replay an empty trace");
        let first_pc = insts[0].pc;
        // asserted non-empty above
        let last = insts.last_mut().expect("non-empty");
        last.branch = Some(crate::record::Branch {
            taken: true,
            target: first_pc,
        });
        Self { insts, pos: 0 }
    }

    /// Number of instructions in one loop iteration.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Always `false` (construction requires a non-empty trace).
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}

impl InstructionStream for TraceLoop {
    fn next_inst(&mut self) -> TraceInst {
        let inst = self.insts[self.pos];
        self.pos = (self.pos + 1) % self.insts.len();
        inst
    }
}

/// A workload from either source, with the identity/run-length metadata
/// the engine needs.
#[derive(Debug)]
pub enum WorkloadSource {
    /// Synthesize instructions from a seeded spec.
    Synthetic(WorkloadSpec),
    /// Replay a recorded trace in a loop.
    Replay {
        /// Display name (e.g. the trace file name).
        name: String,
        /// The looping replayer.
        stream: TraceLoop,
        /// Instructions to measure.
        instructions: u64,
        /// Warmup instructions.
        warmup: u64,
    },
}

impl WorkloadSource {
    /// Display name.
    pub fn name(&self) -> &str {
        match self {
            WorkloadSource::Synthetic(w) => &w.name,
            WorkloadSource::Replay { name, .. } => name,
        }
    }

    /// Measured instruction count.
    pub fn instructions(&self) -> u64 {
        match self {
            WorkloadSource::Synthetic(w) => w.instructions,
            WorkloadSource::Replay { instructions, .. } => *instructions,
        }
    }

    /// Warmup instruction count.
    pub fn warmup(&self) -> u64 {
        match self {
            WorkloadSource::Synthetic(w) => w.warmup,
            WorkloadSource::Replay { warmup, .. } => *warmup,
        }
    }

    /// Consumes the source, producing the boxed stream.
    pub fn into_stream(self) -> Box<dyn InstructionStream> {
        match self {
            WorkloadSource::Synthetic(w) => Box::new(TraceGenerator::new(&w)),
            WorkloadSource::Replay { stream, .. } => Box::new(stream),
        }
    }
}

impl From<WorkloadSpec> for WorkloadSource {
    fn from(w: WorkloadSpec) -> Self {
        WorkloadSource::Synthetic(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TraceGenerator;

    #[test]
    fn generator_stream_matches_iterator() {
        let spec = WorkloadSpec::server_like(1);
        let mut a = TraceGenerator::new(&spec);
        let b: Vec<TraceInst> = TraceGenerator::new(&spec).take(100).collect();
        for expect in b {
            assert_eq!(a.next_inst(), expect);
        }
    }

    #[test]
    fn trace_loop_wraps_with_consistent_pc_chain() {
        let spec = WorkloadSpec::server_like(2);
        let insts: Vec<TraceInst> = TraceGenerator::new(&spec).take(500).collect();
        let mut replay = TraceLoop::new(insts);
        let mut prev: Option<TraceInst> = None;
        for _ in 0..1500 {
            let i = replay.next_inst();
            if let Some(p) = prev {
                assert_eq!(i.pc, p.next_pc(), "chain broken at wrap");
            }
            prev = Some(i);
        }
    }

    #[test]
    fn replay_is_periodic() {
        let spec = WorkloadSpec::server_like(3);
        let insts: Vec<TraceInst> = TraceGenerator::new(&spec).take(64).collect();
        let mut replay = TraceLoop::new(insts);
        let first: Vec<TraceInst> = (0..64).map(|_| replay.next_inst()).collect();
        let second: Vec<TraceInst> = (0..64).map(|_| replay.next_inst()).collect();
        assert_eq!(first, second);
        assert_eq!(replay.len(), 64);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_trace_panics() {
        let _ = TraceLoop::new(Vec::new());
    }

    #[test]
    fn source_metadata_passthrough() {
        let spec = WorkloadSpec::spec_like(1).instructions(1234).warmup(56);
        let src = WorkloadSource::from(spec);
        assert_eq!(src.instructions(), 1234);
        assert_eq!(src.warmup(), 56);
        assert!(src.name().starts_with("spec_"));
    }
}
