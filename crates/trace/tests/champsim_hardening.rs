//! ChampSim decoder hardening: a committed fixture trace pins the wire
//! format end to end, and adversarial inputs (truncated records, short
//! reads, garbage tails, mid-stream I/O errors) pin the decoder's exact
//! error and EOF behavior so "tolerant" never silently drifts into
//! "wrong".

use itpx_trace::champsim::{
    read_champsim, ChampSimConverter, ChampSimRecord, CHAMPSIM_RECORD_BYTES,
};
use itpx_trace::{Branch, MemRef};
use std::io::{self, Read};

/// The committed fixture: six records with a register dependency, a
/// load, a store, and a taken branch.
const FIXTURE: &[u8] = include_bytes!("fixtures/tiny.champsimtrace");

/// The fixture's records, reconstructed in code. The committed bytes
/// must equal these records' encoding — this pins the wire format: any
/// accidental field reorder or width change in `encode`/`decode` breaks
/// the comparison.
fn fixture_records() -> Vec<ChampSimRecord> {
    let blank = |ip: u64| ChampSimRecord {
        ip,
        is_branch: false,
        branch_taken: false,
        dest_regs: [0; 2],
        src_regs: [0; 4],
        dest_mem: [0; 2],
        src_mem: [0; 4],
    };
    let mut producer = blank(0x0040_1000);
    producer.dest_regs = [7, 0];
    let mut load = blank(0x0040_1004);
    load.src_mem[0] = 0x0062_0000_0100;
    let mut consumer = blank(0x0040_1008);
    consumer.src_regs = [7, 0, 0, 0];
    let mut branch = blank(0x0040_100c);
    branch.is_branch = true;
    branch.branch_taken = true;
    let mut store = blank(0x0040_9000);
    store.dest_mem[0] = 0x0062_0000_0200;
    vec![producer, load, consumer, branch, store, blank(0x0040_9004)]
}

#[test]
fn fixture_bytes_match_the_encoder() {
    let encoded: Vec<u8> = fixture_records().iter().flat_map(|r| r.encode()).collect();
    assert_eq!(FIXTURE, encoded.as_slice(), "wire format drifted");
    assert_eq!(FIXTURE.len(), 6 * CHAMPSIM_RECORD_BYTES);
}

#[test]
fn fixture_decodes_to_the_expected_instructions() {
    let insts = read_champsim(FIXTURE, usize::MAX).expect("fixture reads");
    // All six records convert: EOF at a record boundary flushes the
    // pending record with fall-through control flow.
    assert_eq!(insts.len(), 6);
    let pcs: Vec<u64> = insts.iter().map(|i| i.pc).collect();
    assert_eq!(
        pcs,
        [
            0x0040_1000,
            0x0040_1004,
            0x0040_1008,
            0x0040_100c,
            0x0040_9000,
            0x0040_9004
        ]
    );
    assert_eq!(
        insts[1].mem,
        Some(MemRef {
            addr: 0x0062_0000_0100,
            store: false
        })
    );
    assert_eq!(insts[2].src1_dist, 2, "r7 producer is 2 instructions back");
    assert_eq!(
        insts[3].branch,
        Some(Branch {
            taken: true,
            target: 0x0040_9000
        })
    );
    assert_eq!(
        insts[4].mem,
        Some(MemRef {
            addr: 0x0062_0000_0200,
            store: true
        })
    );
    assert!(insts[5].branch.is_none(), "final record falls through");
}

#[test]
fn truncating_mid_record_drops_the_tail_and_the_pending_record() {
    // Cut 10 bytes into the last record: the partial tail cannot decode,
    // and the decoder also drops the *pending* (fifth) record — its
    // control flow needed the successor's IP, which never arrived. This
    // asymmetry with the clean-EOF case (where finish() flushes the
    // pending record) is deliberate and pinned here.
    let cut = FIXTURE.len() - CHAMPSIM_RECORD_BYTES + 10;
    let insts = read_champsim(&FIXTURE[..cut], usize::MAX).expect("truncation is tolerated");
    assert_eq!(
        insts.len(),
        4,
        "5 full records -> 4 chained, pending dropped"
    );
    let clean = read_champsim(&FIXTURE[..5 * CHAMPSIM_RECORD_BYTES], usize::MAX).unwrap();
    assert_eq!(clean.len(), 5, "clean EOF flushes the pending record");
}

#[test]
fn garbage_tail_shorter_than_a_record_is_dropped() {
    for tail_len in [1, 13, CHAMPSIM_RECORD_BYTES - 1] {
        let mut bytes = FIXTURE.to_vec();
        bytes.extend(std::iter::repeat_n(0xA5, tail_len));
        let insts = read_champsim(bytes.as_slice(), usize::MAX).expect("tail is tolerated");
        // The garbage absorbs the pending-record flush: six full records
        // chain into five instructions, the sixth stays pending forever.
        assert_eq!(insts.len(), 5, "tail_len={tail_len}");
    }
}

#[test]
fn empty_and_single_record_inputs() {
    assert_eq!(read_champsim(&[][..], usize::MAX).unwrap().len(), 0);
    let one = &FIXTURE[..CHAMPSIM_RECORD_BYTES];
    let insts = read_champsim(one, usize::MAX).unwrap();
    assert_eq!(insts.len(), 1, "finish() flushes the only record");
    assert_eq!(insts[0].pc, 0x0040_1000);
}

/// A reader that returns at most one byte per call: the decoder's inner
/// fill loop must reassemble records across arbitrarily fragmented
/// reads.
struct OneByteReader<'a>(&'a [u8]);

impl Read for OneByteReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self.0.split_first() {
            Some((&b, rest)) if !buf.is_empty() => {
                buf[0] = b;
                self.0 = rest;
                Ok(1)
            }
            _ => Ok(0),
        }
    }
}

#[test]
fn short_reads_reassemble_records() {
    let fragmented = read_champsim(OneByteReader(FIXTURE), usize::MAX).unwrap();
    let whole = read_champsim(FIXTURE, usize::MAX).unwrap();
    assert_eq!(fragmented, whole, "fragmentation must not change decoding");
}

/// A reader that fails with an I/O error after `ok_bytes` bytes.
struct FailingReader<'a> {
    data: &'a [u8],
    ok_bytes: usize,
}

impl Read for FailingReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.ok_bytes == 0 {
            return Err(io::Error::other("disk fell off"));
        }
        let n = self.ok_bytes.min(buf.len()).min(self.data.len());
        buf[..n].copy_from_slice(&self.data[..n]);
        self.data = &self.data[n..];
        self.ok_bytes -= n;
        Ok(n)
    }
}

#[test]
fn io_errors_propagate_mid_stream() {
    // Error after two full records plus half a record: no silent
    // salvage — the caller sees the error, not a truncated Ok.
    let err = read_champsim(
        FailingReader {
            data: FIXTURE,
            ok_bytes: 2 * CHAMPSIM_RECORD_BYTES + 32,
        },
        usize::MAX,
    )
    .expect_err("mid-stream I/O errors must propagate");
    assert_eq!(err.to_string(), "disk fell off");
}

#[test]
fn limit_zero_reads_nothing() {
    let insts = read_champsim(FIXTURE, 0).unwrap();
    assert!(insts.is_empty());
}

#[test]
fn converter_streams_equal_batch_reads() {
    // Pushing records one at a time through the converter must produce
    // exactly what read_champsim produces.
    let mut conv = ChampSimConverter::new();
    let mut streamed = Vec::new();
    for rec in fixture_records() {
        streamed.extend(conv.push(rec));
    }
    streamed.extend(conv.finish());
    assert_eq!(streamed, read_champsim(FIXTURE, usize::MAX).unwrap());
}
