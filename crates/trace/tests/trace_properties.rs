//! Property tests for trace generation and serialization.

use itpx_trace::{read_trace, write_trace, TraceGenerator, WorkloadSpec, ZipfSampler};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pc_chains_are_consistent_for_any_seed(seed in 0u64..500) {
        let spec = WorkloadSpec::server_like(seed);
        let mut prev: Option<itpx_trace::TraceInst> = None;
        for inst in TraceGenerator::new(&spec).take(3000) {
            if let Some(p) = prev {
                prop_assert_eq!(inst.pc, p.next_pc(), "broken chain, seed {}", seed);
            }
            prev = Some(inst);
        }
    }

    #[test]
    fn generation_is_deterministic(seed in 0u64..500) {
        let spec = WorkloadSpec::spec_like(seed);
        let a: Vec<_> = TraceGenerator::new(&spec).take(500).collect();
        let b: Vec<_> = TraceGenerator::new(&spec).take(500).collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn serialization_roundtrips(seed in 0u64..200, n in 1usize..400) {
        let spec = WorkloadSpec::server_like(seed);
        let insts: Vec<_> = TraceGenerator::new(&spec).take(n).collect();
        let mut buf = Vec::new();
        write_trace(&mut buf, &insts).unwrap();
        prop_assert_eq!(read_trace(buf.as_slice()).unwrap(), insts);
    }

    #[test]
    fn zipf_samples_in_range(n in 1usize..5000, s in 0.0f64..2.5, seed in any::<u64>()) {
        let z = ZipfSampler::new(n, s);
        let mut rng = itpx_types::Rng64::new(seed);
        for _ in 0..50 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    #[test]
    fn dep_distances_fit_the_engine_ring(seed in 0u64..100) {
        let spec = WorkloadSpec::server_like(seed);
        for inst in TraceGenerator::new(&spec).take(2000) {
            prop_assert!(inst.src1_dist as usize <= 255);
            prop_assert!(inst.src2_dist as usize <= 255);
            prop_assert!(inst.exec_latency >= 1);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn belady_min_never_exceeds_lru(
        keys in prop::collection::vec(0u64..64, 1..400),
        sets in 1usize..4,
        ways in 1usize..6,
    ) {
        let r = itpx_trace::replay_min_and_lru(&keys, sets, ways);
        prop_assert!(r.min_misses <= r.lru_misses);
        prop_assert!(r.min_misses >= 1, "at least one compulsory miss");
        prop_assert_eq!(r.accesses, keys.len() as u64);
        prop_assert!((0.0..=1.0).contains(&r.headroom()));
    }

    #[test]
    fn champsim_roundtrip_preserves_records(
        ips in prop::collection::vec(1u64..1_000_000, 2..64),
    ) {
        use itpx_trace::ChampSimRecord;
        let recs: Vec<ChampSimRecord> = ips
            .iter()
            .map(|&ip| ChampSimRecord {
                ip: ip * 4,
                is_branch: ip % 3 == 0,
                branch_taken: ip % 6 == 0,
                dest_regs: [(ip % 16) as u8, 0],
                src_regs: [((ip + 1) % 16) as u8, 0, 0, 0],
                dest_mem: [0; 2],
                src_mem: [if ip % 2 == 0 { ip << 12 } else { 0 }, 0, 0, 0],
            })
            .collect();
        for r in &recs {
            prop_assert_eq!(ChampSimRecord::decode(&r.encode()), *r);
        }
        // The converted stream has a consistent pc chain.
        let bytes: Vec<u8> = recs.iter().flat_map(|r| r.encode()).collect();
        let insts = itpx_trace::read_champsim(bytes.as_slice(), usize::MAX).unwrap();
        for pair in insts.windows(2) {
            prop_assert_eq!(pair[1].pc, pair[0].next_pc());
        }
    }
}
