//! Metamorphic properties: transformations of an input that must leave
//! observable results unchanged (or move them in a known direction).
//!
//! Five families ride alongside the differential comparison:
//!
//! 1. **Address-relabeling invariance** — XOR-ing every VPN with a
//!    set-preserving mask renames TLB entries without changing set
//!    pressure, so LRU and iTP must produce identical hit/miss counts.
//! 2. **Warm/cold simcache equivalence** — a simulation result served
//!    from a freshly-read cache file must equal the directly computed
//!    one, and re-running the simulation must reproduce it exactly.
//! 3. **Host-thread-count invariance** — sweeping the same jobs over 1
//!    and 4 host threads must return identical, identically-ordered
//!    results (`ITPX_THREADS` only changes wall-clock time).
//! 4. **Depth sanity** — chains of depth 2/3/4 share every structure
//!    above the shared tail, so TLB/walker/L1/L2C counts must be
//!    identical across depths and adding cache levels must not increase
//!    DRAM reads.
//! 5. **ASID-relabeling invariance** — ASIDs are opaque tags: permuting
//!    tenant ids in a multi-tenant event list renames entries without
//!    changing any tag-equality outcome, so every translation-side count
//!    (TLB hits/misses, walks, walk references) is unchanged.

use crate::driver::{run_reference, run_system};
use crate::events::{events_from_spec, events_from_trace, Event, EventKind};
use itpx_bench::{SimCache, Sweep};
use itpx_core::presets::BuildConfig;
use itpx_core::{Itp, ItpParams, Preset};
use itpx_cpu::{Simulation, SystemConfig};
use itpx_mem::HierarchyConfig;
use itpx_policy::{Lru, TlbPolicyEngine};
use itpx_trace::fuzz::{self, FuzzPattern, FuzzSpec};
use itpx_trace::WorkloadSpec;
use itpx_types::{Asid, PageSize, PhysAddr, Rng64, ThreadId, TranslationKind, VirtAddr};
use itpx_vm::tlb::{Tlb, TlbConfig, TlbLookup};

use crate::report::StructCounts;

/// STLB geometry of Table 1 (what both relabeled runs use).
fn stlb_config() -> TlbConfig {
    TlbConfig {
        sets: 128,
        ways: 12,
        latency: 8,
        mshr_entries: 16,
    }
}

/// Drives a standalone TLB over a VPN stream: miss → fill, like the
/// pipeline does, with accesses far enough apart that fill-ready times
/// never matter. Policies arrive as engines, so this pins the same
/// enum-dispatched path the simulated machine uses.
fn drive_tlb(policy: TlbPolicyEngine, stream: &[(u64, TranslationKind)]) -> StructCounts {
    let mut tlb = Tlb::new(stlb_config(), policy);
    let mut now = 0;
    for &(vpn, kind) in stream {
        let va = VirtAddr::new(vpn << 12);
        if tlb.lookup(va, kind, 0, ThreadId(0), now) == TlbLookup::Miss {
            tlb.fill(
                vpn,
                PageSize::Base4K,
                PhysAddr::new(vpn << 12),
                kind,
                Asid::KERNEL,
                0,
                ThreadId(0),
                1,
                now,
            );
        }
        now += 1_000;
    }
    tlb.stats().into()
}

/// A reusing VPN stream mixing instruction and data translations.
fn vpn_stream(seed: u64, len: usize) -> Vec<(u64, TranslationKind)> {
    let mut rng = Rng64::new(seed);
    (0..len)
        .map(|_| {
            let vpn = rng.below(1 << 14);
            let kind = if rng.chance(0.5) {
                TranslationKind::Instruction
            } else {
                TranslationKind::Data
            };
            (vpn, kind)
        })
        .collect()
}

/// A named policy constructor for the relabeling property.
type PolicyMaker = (&'static str, fn() -> TlbPolicyEngine);

/// Property 1: set-preserving VPN relabeling leaves LRU and iTP counts
/// unchanged. The mask keeps the low 7 bits (the 128-set index) zero,
/// so every renamed page lands in its original set.
fn check_relabeling(failures: &mut Vec<String>) {
    /// XOR mask with the set-index bits clear.
    const MASK: u64 = 0x1580;
    let stream = vpn_stream(0x5eed_1ab3, 6_000);
    let relabeled: Vec<(u64, TranslationKind)> =
        stream.iter().map(|&(v, k)| (v ^ MASK, k)).collect();
    let policies: [PolicyMaker; 2] = [
        ("lru", || Lru::new(128, 12).into()),
        ("itp", || Itp::new(128, 12, ItpParams::default()).into()),
    ];
    for (name, make) in policies {
        let base = drive_tlb(make(), &stream);
        let renamed = drive_tlb(make(), &relabeled);
        if base != renamed {
            failures.push(format!(
                "relabeling/{name}: counts changed under set-preserving rename: \
                 {base:?} vs {renamed:?}"
            ));
        }
    }
}

/// Property 2: a cold-started simcache read returns exactly what was
/// inserted, and the simulation itself is reproducible.
fn check_simcache_warm_cold(failures: &mut Vec<String>) {
    let w = WorkloadSpec::server_like(5).instructions(4_000).warmup(500);
    let cfg = SystemConfig::asplos25();
    let first = Simulation::single_thread(&cfg, Preset::ItpXptp, &w).run();
    let second = Simulation::single_thread(&cfg, Preset::ItpXptp, &w).run();
    if first != second {
        failures.push("simcache/determinism: identical runs produced different outputs".into());
        return;
    }
    let dir = std::env::temp_dir().join(format!("itpx-difftest-mm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let key = 0x00d1_ff7e_57aa_u64;
    let warm = SimCache::new(Some(dir.clone()));
    warm.insert(key, &first);
    // A fresh instance models a fresh process: it can only read the file.
    let cold = SimCache::new(Some(dir.clone()));
    match cold.get(key) {
        Some(out) if out == first => {}
        Some(_) => {
            failures.push("simcache/warm-cold: disk round trip altered the output".into());
        }
        None => failures.push("simcache/warm-cold: cold read missed a written entry".into()),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Property 3: host-thread count changes scheduling only. The same jobs
/// through 1- and 4-thread sweeps must give identical ordered results.
fn check_thread_invariance(failures: &mut Vec<String>) {
    let specs = fuzz::corpus(0x7442_ead5, 8, 300);
    let run = |threads: usize| {
        Sweep::new(threads).run_generic(specs.clone(), |spec| {
            run_reference(&events_from_spec(spec), &HierarchyConfig::asplos25())
        })
    };
    if run(1) != run(4) {
        failures
            .push("threads: 1-thread and 4-thread sweeps returned different results".to_string());
    }
}

/// Property 4: depth presets share everything above the shared tail.
fn check_depth_sanity(failures: &mut Vec<String>) {
    let spec = FuzzSpec {
        pattern: FuzzPattern::Mixed,
        seed: 0xdee9_5a11,
        instructions: 900,
    };
    let events = events_from_trace(&fuzz::generate(&spec));
    let shallow = run_system(&events, &HierarchyConfig::asplos25_no_llc());
    let paper = run_system(&events, &HierarchyConfig::asplos25());
    let deep = run_system(&events, &HierarchyConfig::asplos25_deep());
    for (name, r) in [("no_llc", &shallow), ("paper", &paper), ("deep", &deep)] {
        if !r.writebacks_conserved() {
            failures.push(format!("depth/{name}: writeback conservation violated"));
        }
    }
    for (name, other) in [("paper", &paper), ("deep", &deep)] {
        let translation_equal = other.itlb == shallow.itlb
            && other.dtlb == shallow.dtlb
            && other.stlb == shallow.stlb
            && other.walks == shallow.walks
            && other.instruction_walks == shallow.instruction_walks
            && other.walk_refs == shallow.walk_refs;
        if !translation_equal {
            failures.push(format!(
                "depth/{name}: translation counts differ from the 2-level chain"
            ));
        }
        // L1I, L1D, L2C are positions 0..3 of every chain.
        if other.levels[..3] != shallow.levels[..3] {
            failures.push(format!(
                "depth/{name}: L1/L2C counts differ from the 2-level chain"
            ));
        }
        if other.dram_reads > shallow.dram_reads {
            failures.push(format!(
                "depth/{name}: adding cache levels increased DRAM reads \
                 ({} > {})",
                other.dram_reads, shallow.dram_reads
            ));
        }
    }
    // The monitorless LRU bundle must build for every depth (smoke-checks
    // the preset plumbing the harness relies on).
    let cfg = SystemConfig::asplos25();
    let _ = Preset::Lru.build(&cfg.dims(), &BuildConfig::default());
}

/// Property 5: permuting ASID labels leaves every translation-side count
/// unchanged. ASIDs enter lookups only through tag equality (and the PSC
/// namespace, far above the set-index bits), so relabeling tenants
/// renames entries without moving any of them or changing any
/// hit/miss/walk outcome. Cache-side counts are exempt: each tenant's
/// table scatters frames with its own seed, so tenant `t`'s traffic
/// lands on different physical blocks once it runs as tenant `π(t)`.
///
/// Both lists get an explicit leading switch so even the pre-rotation
/// quantum carries a permutable label. The harness config maps pure 4 KiB
/// pages, which keeps page sizes independent of the per-tenant seeds.
fn check_asid_relabeling(failures: &mut Vec<String>) {
    let spec = FuzzSpec {
        pattern: FuzzPattern::ContextStorm,
        seed: 0x0a51_d5ee,
        instructions: 2_000,
    };
    // π = the 3-cycle (0 1 2) over the storm's three tenants.
    let perm = |a: Asid| Asid((a.0 + 1) % 3);
    let relabel = |evs: &[Event]| -> Vec<Event> {
        evs.iter()
            .map(|ev| {
                let kind = match ev.kind {
                    EventKind::Switch { asid, flush } => EventKind::Switch {
                        asid: perm(asid),
                        flush,
                    },
                    EventKind::Shootdown { asid } => EventKind::Shootdown { asid: perm(asid) },
                    k => k,
                };
                Event { kind, ..*ev }
            })
            .collect()
    };
    let mut base = vec![Event {
        kind: EventKind::Switch {
            asid: Asid(0),
            flush: false,
        },
        va: 0,
        pc: 0,
    }];
    base.extend(events_from_spec(&spec));
    let renamed = relabel(&base);
    let h = HierarchyConfig::asplos25();
    let translation = |r: &crate::report::DiffReport| {
        (
            r.itlb,
            r.dtlb,
            r.stlb,
            r.walks,
            r.instruction_walks,
            r.walk_refs,
        )
    };
    for (machine, run) in [
        (
            "optimized",
            run_system as fn(&[Event], &HierarchyConfig) -> _,
        ),
        ("reference", run_reference),
    ] {
        let a = translation(&run(&base, &h));
        let b = translation(&run(&renamed, &h));
        if a != b {
            failures.push(format!(
                "asid-relabeling/{machine}: translation counts changed under a \
                 tenant permutation: {a:?} vs {b:?}"
            ));
        }
    }
}

/// Runs every metamorphic property; returns one line per failure.
pub fn run_all() -> Vec<String> {
    let mut failures = Vec::new();
    check_relabeling(&mut failures);
    check_simcache_warm_cold(&mut failures);
    check_thread_invariance(&mut failures);
    check_depth_sanity(&mut failures);
    check_asid_relabeling(&mut failures);
    failures
}

/// Number of property families [`run_all`] evaluates.
pub const PROPERTY_COUNT: usize = 5;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relabeling_holds() {
        let mut f = Vec::new();
        check_relabeling(&mut f);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn simcache_warm_cold_holds() {
        let mut f = Vec::new();
        check_simcache_warm_cold(&mut f);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn thread_invariance_holds() {
        let mut f = Vec::new();
        check_thread_invariance(&mut f);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn depth_sanity_holds() {
        let mut f = Vec::new();
        check_depth_sanity(&mut f);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn asid_relabeling_holds() {
        let mut f = Vec::new();
        check_asid_relabeling(&mut f);
        assert!(f.is_empty(), "{f:?}");
    }
}
