//! The obviously-correct functional reference machine.
//!
//! The model itself now lives in `itpx_cpu::functional` — it was promoted
//! there so the execution engine can drive it as the fast-forward tier of
//! a tiered schedule (warm-state handoff at every tier boundary). This
//! module keeps the difftest-facing wrapper: [`RefMachine`] owns its own
//! [`AddressSpace`] (the harness replays event lists against a standalone
//! address space), feeds [`crate::events::Event`]s through the functional
//! machine, and snapshots its counters as a [`DiffReport`].
//!
//! When the optimized pipeline is driven in *quiescent* mode (events
//! spaced far enough apart that every miss resolves before the next
//! event arrives; see the driver module), its counts are purely
//! functional and must equal this model's bit for bit. That same
//! equivalence is what licenses the fast-forward tier: the state the
//! functional machine hands the cycle model at a tier boundary is the
//! state the cycle model would have reached itself, up to timing-induced
//! reordering.

use crate::events::{Event, EventKind};
use crate::report::DiffReport;
use itpx_cpu::{FunctionalMachine, SystemConfig};
use itpx_vm::address_space::AddressSpace;

/// The functional reference machine: a [`FunctionalMachine`] over its own
/// production address space.
#[derive(Debug)]
pub struct RefMachine {
    machine: FunctionalMachine,
    space: AddressSpace,
}

impl RefMachine {
    /// Builds the reference machine for `cfg` (single-threaded: the page
    /// table uses the thread-0 seed and region offset).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` requests a split STLB — the harness compares the
    /// unified organization the paper optimizes.
    pub fn new(cfg: &SystemConfig) -> Self {
        Self::with_tenants(cfg, 1)
    }

    /// Like [`RefMachine::new`], but with `tenants` per-ASID page tables —
    /// built with the exact arguments `System::configure_address_spaces`
    /// uses (no global table), so both machines translate identically.
    ///
    /// # Panics
    ///
    /// Panics as [`RefMachine::new`] does.
    pub fn with_tenants(cfg: &SystemConfig, tenants: usize) -> Self {
        let space = if tenants > 1 {
            AddressSpace::multi(tenants, cfg.huge_pages, cfg.seed, 0, 0.0, 0)
        } else {
            AddressSpace::single(cfg.huge_pages, cfg.seed, 0)
        };
        Self {
            machine: FunctionalMachine::new(cfg),
            space,
        }
    }

    /// The wrapped functional machine (structure-level assertions).
    pub fn machine(&self) -> &FunctionalMachine {
        &self.machine
    }

    /// Executes one event: translate, then walk the cache chain — or, for
    /// a control event, the matching switch/shootdown on TLBs and space.
    pub fn apply(&mut self, ev: &Event) {
        let va = itpx_types::VirtAddr::new(ev.va);
        match ev.kind {
            EventKind::Fetch => self.machine.fetch(&mut self.space, va),
            EventKind::Load => self.machine.load(&mut self.space, va),
            EventKind::Store => self.machine.store(&mut self.space, va),
            EventKind::Switch { asid, flush } => {
                self.machine.context_switch(asid, flush);
                self.space.switch_to(asid);
            }
            EventKind::Shootdown { asid } => self.machine.shootdown(va, asid),
        }
    }

    /// Runs every event in order.
    pub fn run(&mut self, events: &[Event]) {
        for ev in events {
            self.apply(ev);
        }
    }

    /// Snapshots the reference counters in [`DiffReport`] form.
    pub fn report(&self) -> DiffReport {
        let m = &self.machine;
        DiffReport {
            itlb: m.itlb.stats,
            dtlb: m.dtlb.stats,
            stlb: m.stlb.stats,
            walks: m.walks,
            instruction_walks: m.instr_walks,
            walk_refs: m.walk_refs,
            levels: m.chain.level_counts(),
            dram_reads: m.chain.dram_reads(),
            dram_writes: m.chain.dram_writes(),
            writebacks_absorbed: m.chain.writebacks_absorbed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{Event, EventKind};
    use itpx_types::LevelId;

    fn machine() -> RefMachine {
        RefMachine::new(&SystemConfig::asplos25())
    }

    fn fetch(va: u64) -> Event {
        Event {
            kind: EventKind::Fetch,
            va,
            pc: va,
        }
    }

    fn load(va: u64) -> Event {
        Event {
            kind: EventKind::Load,
            va,
            pc: 0x10,
        }
    }

    fn store(va: u64) -> Event {
        Event {
            kind: EventKind::Store,
            va,
            pc: 0x10,
        }
    }

    #[test]
    fn cold_fetch_walks_and_warms_everything() {
        let mut m = machine();
        m.run(&[fetch(0x51_0000_0000)]);
        let r = m.report();
        assert_eq!(r.itlb.accesses, [0, 1, 0, 0]);
        assert_eq!(r.itlb.misses, [0, 1, 0, 0]);
        assert_eq!(r.walks, 1);
        assert_eq!(r.instruction_walks, 1);
        assert_eq!(r.walk_refs, 5, "cold 4 KiB walk reads all five levels");
        // Repeat: everything hits, no new walk.
        m.run(&[fetch(0x51_0000_0000)]);
        let r2 = m.report();
        assert_eq!(r2.walks, 1);
        assert_eq!(r2.itlb.misses, [0, 1, 0, 0]);
    }

    #[test]
    fn psc_warm_walk_reads_fewer_levels() {
        let mut m = machine();
        m.run(&[load(0x62_0000_0000), load(0x62_0000_0000 + 4096)]);
        let r = m.report();
        assert_eq!(r.walks, 2);
        // Second walk starts at level 2 (PSCL2 hit): 5 + 2 references.
        assert_eq!(r.walk_refs, 7);
    }

    #[test]
    fn stores_write_back_on_eviction() {
        let mut m = machine();
        // Dirty one block, then pour enough distinct pages through the
        // L1D (frames scatter pseudo-randomly across its 512 blocks)
        // that the dirty line is certainly displaced.
        m.run(&[store(0x62_0000_0000)]);
        for i in 1..=4096u64 {
            m.run(&[load(0x62_0000_0000 + i * 4096)]);
        }
        let r = m.report();
        let l1d = &r.levels[1];
        assert_eq!(l1d.id, LevelId::L1D);
        assert!(l1d.writebacks >= 1, "dirty block displaced");
        assert!(r.writebacks_conserved());
    }

    #[test]
    fn tlb_lists_bound_their_ways() {
        let mut m = machine();
        // 70 pages mapping to the same ITLB set (16 sets): more than the
        // 4 ways can hold.
        for i in 0..70u64 {
            m.run(&[fetch(0x51_0000_0000 + i * 16 * 4096)]);
        }
        let set_len = m.machine().itlb.max_set_occupancy();
        assert!(set_len <= 4, "ITLB set overflow: {set_len}");
        let r = m.report();
        assert_eq!(r.itlb.misses[1], 70, "all distinct pages miss");
    }
}
