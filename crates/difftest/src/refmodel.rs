//! The obviously-correct functional reference machine.
//!
//! [`RefMachine`] re-implements the translation pipeline and cache chain
//! with the simplest data structures that can be audited by eye: per-set
//! MRU-first recency lists instead of policy objects and validity
//! bitmasks, straight-line lookups instead of MSHR merging, and no
//! timing at all. It intentionally shares **no** structure code with
//! `itpx-vm`/`itpx-mem`/`itpx-cpu` — only the page table (the
//! deterministic address mapping both machines must agree on) and the
//! type vocabulary come from the production crates.
//!
//! When the optimized pipeline is driven in *quiescent* mode (events
//! spaced far enough apart that every miss resolves before the next
//! event arrives; see the driver module), its counts are purely
//! functional and must equal this model's bit for bit.

use crate::events::{Event, EventKind};
use crate::report::{DiffReport, LevelCounts, StructCounts};
use itpx_cpu::SystemConfig;
use itpx_types::{FillClass, LevelId, PageSize, PhysAddr, TranslationKind, VirtAddr};
use itpx_vm::page_table::PageTable;
use itpx_vm::tlb::TlbConfig;

/// A TLB modeled as per-set MRU-first lists of `(vpn, size, frame)`.
///
/// Equivalent to the production structure under LRU: a hit or a refill
/// of a resident entry moves it to the front, a fill pushes to the
/// front and drops the back of a full set. The production first-free-way
/// fill plus recency-stack victim selection preserves exactly this
/// membership and eviction order.
#[derive(Debug)]
struct RefTlb {
    sets: usize,
    ways: usize,
    /// Per-set entries, most recently used first.
    lists: Vec<Vec<(u64, PageSize, PhysAddr)>>,
    stats: StructCounts,
}

impl RefTlb {
    fn new(cfg: &TlbConfig) -> Self {
        Self {
            sets: cfg.sets,
            ways: cfg.ways,
            lists: vec![Vec::new(); cfg.sets],
            stats: StructCounts::default(),
        }
    }

    fn stat_class(kind: TranslationKind) -> FillClass {
        match kind {
            TranslationKind::Instruction => FillClass::InstrPayload,
            TranslationKind::Data => FillClass::DataPayload,
        }
    }

    /// Probes both page-size granularities in the production order
    /// (4 KiB first), touching recency and recording stats.
    fn lookup(&mut self, va: VirtAddr, kind: TranslationKind) -> Option<(PhysAddr, PageSize)> {
        for size in [PageSize::Base4K, PageSize::Huge2M] {
            let vpn = va.vpn(size).0;
            let set = (vpn as usize) % self.sets;
            let list = &mut self.lists[set];
            if let Some(pos) = list.iter().position(|&(v, s, _)| v == vpn && s == size) {
                let entry = list.remove(pos);
                list.insert(0, entry);
                self.stats.record(Self::stat_class(kind), false);
                return Some((entry.2, size));
            }
        }
        self.stats.record(Self::stat_class(kind), true);
        None
    }

    /// Installs a translation; a resident entry is refreshed in place.
    fn fill(&mut self, vpn: u64, size: PageSize, frame: PhysAddr) {
        let set = (vpn as usize) % self.sets;
        let list = &mut self.lists[set];
        if let Some(pos) = list.iter().position(|&(v, s, _)| v == vpn && s == size) {
            let entry = list.remove(pos);
            list.insert(0, entry);
            return;
        }
        if list.len() == self.ways {
            list.pop();
        }
        list.insert(0, (vpn, size, frame));
    }
}

/// One page-structure cache as per-set MRU-first tag lists.
#[derive(Debug)]
struct RefPsc {
    level: u8,
    sets: usize,
    ways: usize,
    lists: Vec<Vec<u64>>,
}

impl RefPsc {
    fn new(level: u8, sets: usize, ways: usize) -> Self {
        Self {
            level,
            sets,
            ways,
            lists: vec![Vec::new(); sets],
        }
    }

    fn tag(&self, vpn4k: u64) -> u64 {
        vpn4k >> (9 * (self.level as u32 - 1))
    }

    /// Probe, touching recency on a hit (the production lookup does).
    fn lookup(&mut self, vpn4k: u64) -> bool {
        let tag = self.tag(vpn4k);
        let set = (tag as usize) % self.sets;
        let list = &mut self.lists[set];
        if let Some(pos) = list.iter().position(|&t| t == tag) {
            let t = list.remove(pos);
            list.insert(0, t);
            true
        } else {
            false
        }
    }

    /// Install after a walk. A resident tag is left untouched — the
    /// production fill early-returns without a recency update.
    fn fill(&mut self, vpn4k: u64) {
        let tag = self.tag(vpn4k);
        let set = (tag as usize) % self.sets;
        let list = &mut self.lists[set];
        if list.contains(&tag) {
            return;
        }
        if list.len() == self.ways {
            list.pop();
        }
        list.insert(0, tag);
    }
}

/// The split PSC hierarchy with the Table 1 geometry, replicating the
/// production probe order (PSCL2 → PSCL3 → PSCL4 → PSCL5) and fill
/// order (2, 3, 4, 5).
#[derive(Debug)]
struct RefPscs {
    pscl5: RefPsc,
    pscl4: RefPsc,
    pscl3: RefPsc,
    pscl2: RefPsc,
}

impl RefPscs {
    fn asplos25() -> Self {
        Self {
            pscl5: RefPsc::new(5, 1, 2),
            pscl4: RefPsc::new(4, 1, 4),
            pscl3: RefPsc::new(3, 4, 2),
            pscl2: RefPsc::new(2, 8, 4),
        }
    }

    fn start_level(&mut self, vpn4k: u64) -> u8 {
        if self.pscl2.lookup(vpn4k) {
            2
        } else if self.pscl3.lookup(vpn4k) {
            3
        } else if self.pscl4.lookup(vpn4k) {
            4
        } else {
            // Production consults PSCL5 even though the answer is the
            // root either way; replicate for identical recency state.
            let _ = self.pscl5.lookup(vpn4k);
            5
        }
    }

    fn fill(&mut self, vpn4k: u64) {
        self.pscl2.fill(vpn4k);
        self.pscl3.fill(vpn4k);
        self.pscl4.fill(vpn4k);
        self.pscl5.fill(vpn4k);
    }
}

/// One cached block of the reference chain.
#[derive(Debug, Clone, Copy)]
struct RefLine {
    block: u64,
    dirty: bool,
}

/// One level of the reference chain.
#[derive(Debug)]
struct RefLevel {
    id: LevelId,
    sets: usize,
    ways: usize,
    /// Per-set lines, most recently used first.
    lists: Vec<Vec<RefLine>>,
    /// Index of the next-lower level; `None` misses to DRAM.
    next: Option<usize>,
    counts: StructCounts,
    writebacks: u64,
    evictions: u64,
}

impl RefLevel {
    fn set_of(&self, block: u64) -> usize {
        (block as usize) % self.sets
    }

    /// Non-touching residency check (writeback routing uses this).
    fn contains(&self, block: u64) -> bool {
        let set = self.set_of(block);
        self.lists[set].iter().any(|l| l.block == block)
    }

    fn mark_dirty(&mut self, block: u64) {
        let set = self.set_of(block);
        if let Some(line) = self.lists[set].iter_mut().find(|l| l.block == block) {
            line.dirty = true;
        }
    }
}

/// The reference cache chain: `[L1I, L1D, shared…]` with DRAM at the
/// bottom, mirroring the production level-chain topology.
#[derive(Debug)]
struct RefChain {
    levels: Vec<RefLevel>,
    dram_reads: u64,
    dram_writes: u64,
    wb_absorbed: u64,
}

/// Index of the L1I entry level.
const L1I: usize = 0;
/// Index of the L1D entry level.
const L1D: usize = 1;
/// Index of the first shared level (the page-walk entry point).
const SHARED: usize = 2;

impl RefChain {
    fn new(cfg: &itpx_mem::HierarchyConfig) -> Self {
        let shared = cfg.shared_levels();
        let last = shared.len() - 1;
        let mut levels = Vec::with_capacity(2 + shared.len());
        let mk = |id, sets: usize, ways: usize, next| RefLevel {
            id,
            sets,
            ways,
            lists: vec![Vec::new(); sets],
            next,
            counts: StructCounts::default(),
            writebacks: 0,
            evictions: 0,
        };
        levels.push(mk(LevelId::L1I, cfg.l1i.sets, cfg.l1i.ways, Some(SHARED)));
        levels.push(mk(LevelId::L1D, cfg.l1d.sets, cfg.l1d.ways, Some(SHARED)));
        for (i, level) in shared.iter().enumerate() {
            let next = (i != last).then_some(SHARED + i + 1);
            levels.push(mk(level.id, level.cache.sets, level.cache.ways, next));
        }
        Self {
            levels,
            dram_reads: 0,
            dram_writes: 0,
            wb_absorbed: 0,
        }
    }

    /// The probe → miss-below → fill recursion, in the production order:
    /// on a miss the lower levels fill (and route their writebacks)
    /// before this level does.
    fn access(&mut self, idx: usize, block: u64, class: FillClass) {
        let set = self.levels[idx].set_of(block);
        let pos = self.levels[idx].lists[set]
            .iter()
            .position(|l| l.block == block);
        if let Some(pos) = pos {
            self.levels[idx].counts.record(class, false);
            let line = self.levels[idx].lists[set].remove(pos);
            self.levels[idx].lists[set].insert(0, line);
            return;
        }
        self.levels[idx].counts.record(class, true);
        match self.levels[idx].next {
            Some(next) => self.access(next, block, class),
            None => self.dram_reads += 1,
        }
        if let Some(victim) = self.fill(idx, block) {
            self.route_writeback(idx, victim);
        }
    }

    /// Installs `block` clean; returns a displaced dirty block.
    fn fill(&mut self, idx: usize, block: u64) -> Option<u64> {
        let set = self.levels[idx].set_of(block);
        let ways = self.levels[idx].ways;
        let list = &mut self.levels[idx].lists[set];
        if let Some(pos) = list.iter().position(|l| l.block == block) {
            // Resident refresh (production `fill` of a present block).
            let line = list.remove(pos);
            list.insert(0, line);
            return None;
        }
        let mut wb = None;
        if list.len() == ways {
            // popped from a full list checked just above
            let victim = list.pop().unwrap_or(RefLine {
                block: 0,
                dirty: false,
            });
            self.levels[idx].evictions += 1;
            if victim.dirty {
                self.levels[idx].writebacks += 1;
                wb = Some(victim.block);
            }
        }
        self.levels[idx].lists[set].insert(
            0,
            RefLine {
                block,
                dirty: false,
            },
        );
        wb
    }

    /// First strictly-lower level holding the block absorbs the
    /// writeback as a dirty mark; otherwise it is a DRAM write.
    fn route_writeback(&mut self, from: usize, block: u64) {
        let mut next = self.levels[from].next;
        while let Some(idx) = next {
            if self.levels[idx].contains(block) {
                self.levels[idx].mark_dirty(block);
                self.wb_absorbed += 1;
                return;
            }
            next = self.levels[idx].next;
        }
        self.dram_writes += 1;
    }
}

/// The functional reference machine: TLBs, PSCs, page walker
/// bookkeeping, and the cache chain, over the production page table.
#[derive(Debug)]
pub struct RefMachine {
    itlb: RefTlb,
    dtlb: RefTlb,
    stlb: RefTlb,
    pscs: RefPscs,
    chain: RefChain,
    page_table: PageTable,
    walks: u64,
    instr_walks: u64,
    walk_refs: u64,
}

impl RefMachine {
    /// Builds the reference machine for `cfg` (single-threaded: the page
    /// table uses the thread-0 seed and region offset).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` requests a split STLB — the harness compares the
    /// unified organization the paper optimizes.
    pub fn new(cfg: &SystemConfig) -> Self {
        assert!(!cfg.split_stlb, "reference models the unified STLB only");
        Self {
            itlb: RefTlb::new(&cfg.itlb),
            dtlb: RefTlb::new(&cfg.dtlb),
            stlb: RefTlb::new(&cfg.stlb),
            pscs: RefPscs::asplos25(),
            chain: RefChain::new(&cfg.hierarchy),
            page_table: PageTable::with_region_offset(cfg.huge_pages, cfg.seed, 0),
            walks: 0,
            instr_walks: 0,
            walk_refs: 0,
        }
    }

    /// The full ITLB/DTLB → STLB → page-walk path, minus all timing.
    fn translate(&mut self, va: VirtAddr, kind: TranslationKind) -> PhysAddr {
        let l1 = if kind.is_instruction() {
            &mut self.itlb
        } else {
            &mut self.dtlb
        };
        if let Some((frame, size)) = l1.lookup(va, kind) {
            return frame.offset(va.page_offset(size));
        }
        // Production translates on every L1-TLB miss (page-table node
        // and frame allocation are first-touch, so call order matters).
        let tr = self.page_table.translate(va, kind);
        if self.stlb.lookup(va, kind).is_none() {
            // Page walk: PSC start level, then one chain access per
            // remaining page-table level, entering at the first shared
            // level with the translation kind's PTE class.
            let vpn4k = match tr.size {
                PageSize::Base4K => tr.vpn,
                PageSize::Huge2M => tr.vpn << 9,
            };
            let start_level = self.pscs.start_level(vpn4k);
            let steps = tr.path.from_level(start_level).to_vec();
            for &(_level, pa) in &steps {
                self.chain
                    .access(SHARED, pa.block().index(), FillClass::pte_for(kind));
            }
            self.pscs.fill(vpn4k);
            self.walks += 1;
            if kind.is_instruction() {
                self.instr_walks += 1;
            }
            self.walk_refs += steps.len() as u64;
            self.stlb.fill(tr.vpn, tr.size, tr.frame);
        }
        let l1 = if kind.is_instruction() {
            &mut self.itlb
        } else {
            &mut self.dtlb
        };
        l1.fill(tr.vpn, tr.size, tr.frame);
        tr.pa
    }

    /// Executes one event: translate, then walk the cache chain.
    pub fn apply(&mut self, ev: &Event) {
        match ev.kind {
            EventKind::Fetch => {
                let pa = self.translate(VirtAddr::new(ev.va), TranslationKind::Instruction);
                self.chain
                    .access(L1I, pa.block().index(), FillClass::InstrPayload);
            }
            EventKind::Load | EventKind::Store => {
                let pa = self.translate(VirtAddr::new(ev.va), TranslationKind::Data);
                let block = pa.block().index();
                self.chain.access(L1D, block, FillClass::DataPayload);
                if ev.kind == EventKind::Store {
                    // Production marks the L1D block dirty after the
                    // chain access completes.
                    self.chain.levels[L1D].mark_dirty(block);
                }
            }
        }
    }

    /// Runs every event in order.
    pub fn run(&mut self, events: &[Event]) {
        for ev in events {
            self.apply(ev);
        }
    }

    /// Snapshots the reference counters in [`DiffReport`] form.
    pub fn report(&self) -> DiffReport {
        DiffReport {
            itlb: self.itlb.stats,
            dtlb: self.dtlb.stats,
            stlb: self.stlb.stats,
            walks: self.walks,
            instruction_walks: self.instr_walks,
            walk_refs: self.walk_refs,
            levels: self
                .chain
                .levels
                .iter()
                .map(|l| LevelCounts {
                    id: l.id,
                    counts: l.counts,
                    writebacks: l.writebacks,
                    evictions: l.evictions,
                })
                .collect(),
            dram_reads: self.chain.dram_reads,
            dram_writes: self.chain.dram_writes,
            writebacks_absorbed: self.chain.wb_absorbed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{Event, EventKind};

    fn machine() -> RefMachine {
        RefMachine::new(&SystemConfig::asplos25())
    }

    fn fetch(va: u64) -> Event {
        Event {
            kind: EventKind::Fetch,
            va,
            pc: va,
        }
    }

    fn load(va: u64) -> Event {
        Event {
            kind: EventKind::Load,
            va,
            pc: 0x10,
        }
    }

    fn store(va: u64) -> Event {
        Event {
            kind: EventKind::Store,
            va,
            pc: 0x10,
        }
    }

    #[test]
    fn cold_fetch_walks_and_warms_everything() {
        let mut m = machine();
        m.run(&[fetch(0x51_0000_0000)]);
        let r = m.report();
        assert_eq!(r.itlb.accesses, [0, 1, 0, 0]);
        assert_eq!(r.itlb.misses, [0, 1, 0, 0]);
        assert_eq!(r.walks, 1);
        assert_eq!(r.instruction_walks, 1);
        assert_eq!(r.walk_refs, 5, "cold 4 KiB walk reads all five levels");
        // Repeat: everything hits, no new walk.
        m.run(&[fetch(0x51_0000_0000)]);
        let r2 = m.report();
        assert_eq!(r2.walks, 1);
        assert_eq!(r2.itlb.misses, [0, 1, 0, 0]);
    }

    #[test]
    fn psc_warm_walk_reads_fewer_levels() {
        let mut m = machine();
        m.run(&[load(0x62_0000_0000), load(0x62_0000_0000 + 4096)]);
        let r = m.report();
        assert_eq!(r.walks, 2);
        // Second walk starts at level 2 (PSCL2 hit): 5 + 2 references.
        assert_eq!(r.walk_refs, 7);
    }

    #[test]
    fn stores_write_back_on_eviction() {
        let mut m = machine();
        // Dirty one block, then pour enough distinct pages through the
        // L1D (frames scatter pseudo-randomly across its 512 blocks)
        // that the dirty line is certainly displaced.
        m.run(&[store(0x62_0000_0000)]);
        for i in 1..=4096u64 {
            m.run(&[load(0x62_0000_0000 + i * 4096)]);
        }
        let r = m.report();
        let l1d = &r.levels[1];
        assert_eq!(l1d.id, LevelId::L1D);
        assert!(l1d.writebacks >= 1, "dirty block displaced");
        assert!(r.writebacks_conserved());
    }

    #[test]
    fn tlb_lists_bound_their_ways() {
        let mut m = machine();
        // 70 pages mapping to the same ITLB set (16 sets): more than the
        // 4 ways can hold.
        for i in 0..70u64 {
            m.run(&[fetch(0x51_0000_0000 + i * 16 * 4096)]);
        }
        let set_len = m.itlb.lists.iter().map(Vec::len).max().unwrap_or(0);
        assert!(set_len <= 4, "ITLB set overflow: {set_len}");
        let r = m.report();
        assert_eq!(r.itlb.misses[1], 70, "all distinct pages miss");
    }
}
