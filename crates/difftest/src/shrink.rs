//! Delta-debugging shrinker for failing event lists.
//!
//! A ddmin-style chunk remover: starting from half the input, try
//! deleting each aligned chunk and keep any deletion that preserves the
//! failure, halving the chunk size until single elements have been
//! tried. The predicate is evaluated at most [`MAX_EVALS`] times so a
//! slow oracle cannot stall a difftest run; the result is then the best
//! reduction found so far rather than a guaranteed 1-minimal input.

/// Upper bound on predicate evaluations per minimization.
pub const MAX_EVALS: usize = 512;

/// Minimizes `items` while `fails` keeps returning `true` for the
/// candidate. `fails(&items)` is assumed `true` on entry (the caller
/// observed the failure); if it is not, the input is returned unchanged.
pub fn minimize<T: Clone>(items: &[T], mut fails: impl FnMut(&[T]) -> bool) -> Vec<T> {
    let mut current: Vec<T> = items.to_vec();
    let mut evals = 0usize;
    let mut chunk = (current.len() / 2).max(1);
    while chunk >= 1 && !current.is_empty() {
        let mut i = 0;
        let mut removed_any = false;
        while i < current.len() {
            if evals >= MAX_EVALS {
                return current;
            }
            let end = (i + chunk).min(current.len());
            let candidate: Vec<T> = current[..i]
                .iter()
                .chain(&current[end..])
                .cloned()
                .collect();
            evals += 1;
            if !candidate.is_empty() && fails(&candidate) {
                current = candidate;
                removed_any = true;
                // Re-try the same position: the next chunk slid into it.
            } else {
                i = end;
            }
        }
        if chunk == 1 && !removed_any {
            break;
        }
        chunk = (chunk / 2).max(1);
        if chunk == 1 && current.len() == 1 {
            break;
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_to_the_single_culprit() {
        let items: Vec<u32> = (0..100).collect();
        let out = minimize(&items, |c| c.contains(&37));
        assert_eq!(out, vec![37]);
    }

    #[test]
    fn keeps_a_pair_of_interacting_culprits() {
        let items: Vec<u32> = (0..64).collect();
        let out = minimize(&items, |c| c.contains(&3) && c.contains(&60));
        assert_eq!(out, vec![3, 60]);
    }

    #[test]
    fn order_dependent_failures_preserve_order() {
        // Fails iff a 7 appears somewhere after a 2.
        let items = vec![9, 2, 9, 9, 7, 9];
        let fails = |c: &[i32]| {
            let first2 = c.iter().position(|&x| x == 2);
            match first2 {
                Some(p) => c[p..].contains(&7),
                None => false,
            }
        };
        let out = minimize(&items, fails);
        assert_eq!(out, vec![2, 7]);
    }

    #[test]
    fn non_failing_input_is_returned_unchanged() {
        let items = vec![1, 2, 3];
        let out = minimize(&items, |_| false);
        assert_eq!(out, items);
    }

    #[test]
    fn evaluation_budget_is_respected() {
        let items: Vec<u32> = (0..10_000).collect();
        let mut evals = 0usize;
        let out = minimize(&items, |c| {
            evals += 1;
            c.contains(&1) && c.contains(&9_999)
        });
        assert!(evals <= MAX_EVALS + 1);
        assert!(out.contains(&1) && out.contains(&9_999));
        assert!(out.len() < items.len(), "some reduction happened");
    }
}
