//! Drives the optimized pipeline and the reference model over one event
//! list and compares their reports.
//!
//! The optimized machine is exercised in *quiescent* mode: events are
//! spaced [`EVENT_SPACING`] cycles apart, far past the longest possible
//! miss chain, so every MSHR has retired and every in-flight fill has
//! landed before the next event arrives. Under quiescence the timing
//! machinery (MSHR merging, walker-register contention, fill-ready
//! waits) cannot change any count, and the optimized counts must equal
//! the timing-free reference bit for bit. Prefetch hooks are detached —
//! prefetching is timing-driven speculation with no functional
//! counterpart.

use crate::events::{events_from_spec, tenants_in, Event};
use crate::refmodel::RefMachine;
use crate::report::DiffReport;
use crate::shrink;
use itpx_core::presets::BuildConfig;
use itpx_core::Preset;
use itpx_cpu::{System, SystemConfig};
use itpx_mem::hierarchy::LevelHooks;
use itpx_mem::HierarchyConfig;
use itpx_trace::fuzz::FuzzSpec;
use itpx_types::{Cycle, LevelId, ThreadId, TranslationKind, VirtAddr};

/// Cycles between events: longer than any cold miss chain (a full walk
/// plus five DRAM-latency round trips is a few thousand cycles).
pub const EVENT_SPACING: Cycle = 100_000;

/// The base configuration the harness compares on, with `hierarchy`
/// substituted (depth presets share every translation structure).
fn config_with(hierarchy: &HierarchyConfig) -> SystemConfig {
    let mut cfg = SystemConfig::asplos25();
    cfg.hierarchy = *hierarchy;
    cfg
}

/// Runs the optimized pipeline over `events` in quiescent mode and
/// reports its counts.
pub fn run_system(events: &[Event], hierarchy: &HierarchyConfig) -> DiffReport {
    let cfg = config_with(hierarchy);
    let bundle = Preset::Lru.build(&cfg.dims(), &BuildConfig::default());
    let mut sys = System::new(cfg, bundle, 1);
    let tenants = tenants_in(events);
    if tenants > 1 {
        sys.configure_address_spaces(tenants, 0.0, 0);
    }
    for id in [
        LevelId::L1I,
        LevelId::L1D,
        LevelId::L2C,
        LevelId::L3,
        LevelId::Llc,
    ] {
        // Returns false for levels this chain does not have.
        let _ = sys.hierarchy.set_hooks(id, LevelHooks::none());
    }
    let mut now: Cycle = EVENT_SPACING;
    for ev in events {
        match ev.kind {
            crate::events::EventKind::Fetch => {
                let t = sys.translate(
                    VirtAddr::new(ev.va),
                    TranslationKind::Instruction,
                    ev.pc,
                    ThreadId(0),
                    now,
                );
                sys.hierarchy.instr_fetch(t.pa, ev.pc, ThreadId(0), now);
            }
            crate::events::EventKind::Load | crate::events::EventKind::Store => {
                let store = ev.kind == crate::events::EventKind::Store;
                let t = sys.translate(
                    VirtAddr::new(ev.va),
                    TranslationKind::Data,
                    ev.pc,
                    ThreadId(0),
                    now,
                );
                sys.hierarchy
                    .data_access(t.pa, ev.pc, ThreadId(0), store, t.stlb_miss, now);
            }
            crate::events::EventKind::Switch { asid, flush } => sys.context_switch(asid, flush),
            crate::events::EventKind::Shootdown { asid } => {
                sys.shootdown(VirtAddr::new(ev.va), asid);
            }
        }
        now += EVENT_SPACING;
    }
    DiffReport::from_system(&sys)
}

/// Runs the functional reference over `events` and reports its counts.
/// The tenant count is derived from the event list, exactly as
/// [`run_system`] derives it, so both machines build identical address
/// spaces for every shrink candidate.
pub fn run_reference(events: &[Event], hierarchy: &HierarchyConfig) -> DiffReport {
    let mut m = RefMachine::with_tenants(&config_with(hierarchy), tenants_in(events));
    m.run(events);
    m.report()
}

/// Compares both machines on `events`; `Err` carries one line per
/// divergent counter plus the conservation check.
pub fn check_events(events: &[Event], hierarchy: &HierarchyConfig) -> Result<(), String> {
    let sys = run_system(events, hierarchy);
    let reference = run_reference(events, hierarchy);
    let mut problems = sys.diff(&reference);
    if !sys.writebacks_conserved() {
        problems.push("optimized report violates writeback conservation".to_string());
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems.join("\n  "))
    }
}

/// Fuzzes one spec against one hierarchy preset. On divergence the
/// failing event list is shrunk to a near-minimal reproducer and the
/// returned message describes spec, preset, reduced length, and every
/// divergent counter.
pub fn check_spec(
    spec: &FuzzSpec,
    preset_name: &str,
    hierarchy: &HierarchyConfig,
) -> Result<(), String> {
    let events = events_from_spec(spec);
    match check_events(&events, hierarchy) {
        Ok(()) => Ok(()),
        Err(first) => {
            let minimized =
                shrink::minimize(&events, |cand| check_events(cand, hierarchy).is_err());
            let detail = match check_events(&minimized, hierarchy) {
                Err(d) => d,
                Ok(()) => first,
            };
            Err(format!(
                "{spec} on {preset_name}: optimized and reference diverge \
                 (shrunk {} -> {} events)\n  {detail}",
                events.len(),
                minimized.len(),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventKind;
    use itpx_trace::fuzz::FuzzPattern;

    fn ev(kind: EventKind, va: u64) -> Event {
        Event { kind, va, pc: va }
    }

    #[test]
    fn optimized_matches_reference_on_a_tiny_trace() {
        let events = vec![
            ev(EventKind::Fetch, 0x51_0000_0000),
            ev(EventKind::Load, 0x62_0000_0000),
            ev(EventKind::Store, 0x62_0000_0040),
            ev(EventKind::Fetch, 0x51_0000_0040),
            ev(EventKind::Load, 0x62_0000_0000),
        ];
        check_events(&events, &HierarchyConfig::asplos25()).expect("tiny trace must agree");
    }

    #[test]
    fn optimized_matches_reference_on_all_depths() {
        let spec = FuzzSpec {
            pattern: FuzzPattern::Mixed,
            seed: 0xd1ff_7e57,
            instructions: 600,
        };
        for (name, h) in [
            ("asplos25", HierarchyConfig::asplos25()),
            ("asplos25_no_llc", HierarchyConfig::asplos25_no_llc()),
            ("asplos25_deep", HierarchyConfig::asplos25_deep()),
        ] {
            check_spec(&spec, name, &h).expect("fuzzed trace must agree");
        }
    }

    #[test]
    fn optimized_matches_reference_under_context_and_shootdown_storms() {
        for pattern in [FuzzPattern::ContextStorm, FuzzPattern::ShootdownStorm] {
            let spec = FuzzSpec {
                pattern,
                seed: 0x7e4a_4715,
                instructions: 600,
            };
            for (name, h) in [
                ("asplos25", HierarchyConfig::asplos25()),
                ("asplos25_no_llc", HierarchyConfig::asplos25_no_llc()),
                ("asplos25_deep", HierarchyConfig::asplos25_deep()),
            ] {
                check_spec(&spec, name, &h).expect("multi-tenant trace must agree");
            }
        }
    }

    #[test]
    fn switches_and_shootdowns_change_translation_counts() {
        // Same access pattern with and without control events: the
        // multi-tenant lowering must actually perturb translation
        // behavior, otherwise the new patterns test nothing.
        let spec = FuzzSpec {
            pattern: FuzzPattern::ContextStorm,
            seed: 0xbeef,
            instructions: 800,
        };
        let full = events_from_spec(&spec);
        let plain: Vec<Event> = full
            .iter()
            .copied()
            .filter(|e| {
                matches!(
                    e.kind,
                    EventKind::Fetch | EventKind::Load | EventKind::Store
                )
            })
            .collect();
        let h = HierarchyConfig::asplos25();
        let with_ctx = run_system(&full, &h);
        let without = run_system(&plain, &h);
        assert!(
            with_ctx.walks > without.walks,
            "tenant rotation must force extra walks ({} vs {})",
            with_ctx.walks,
            without.walks
        );
    }

    #[test]
    fn reports_count_real_traffic() {
        let events = vec![
            ev(EventKind::Fetch, 0x51_0000_0000),
            ev(EventKind::Load, 0x62_0000_0000),
        ];
        let r = run_system(&events, &HierarchyConfig::asplos25());
        assert_eq!(r.walks, 2, "two cold pages walk");
        assert!(r.dram_reads >= 2, "cold blocks come from DRAM");
        assert_eq!(r.levels.len(), 4, "L1I, L1D, L2C, LLC");
    }
}
