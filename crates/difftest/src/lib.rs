//! Differential and metamorphic test harness for the itpx simulator.
//!
//! The optimized simulator earns its performance with machinery — MSHR
//! merging, walker-register contention, flat tag arrays, policy
//! objects — that is exactly where count-keeping bugs hide. This crate
//! checks it against a small, obviously-correct functional reference
//! model ([`refmodel::RefMachine`]): straight-line maps and per-set
//! recency lists, no timing, no sharing of structure code. Driven in
//! quiescent mode (events spaced far apart; see [`driver`]), the
//! optimized pipeline's counts must match the reference **bit for bit**
//! on every fuzzed trace and every hierarchy depth.
//!
//! Inputs come from the deterministic adversarial fuzzer in
//! [`itpx_trace::fuzz`]; failing event lists are shrunk to near-minimal
//! reproducers by [`shrink`]. Multi-tenant patterns interleave context
//! switches and targeted shootdowns into the event lists (see
//! [`events::events_from_spec`]), so ASID tagging is oracle-checked end
//! to end. [`metamorphic`] adds invariance properties (VPN and ASID
//! relabeling, warm/cold simcache, host-thread count, chain depth) that
//! catch bug classes a same-input comparison cannot, and [`tiered`]
//! pins the warm-state handoff of the tiered
//! execution engine (degenerate schedules exactly reproduce flat runs;
//! fast-forwarded windows stay within tolerance of them).
//!
//! Entry point: [`run`] with a [`Scale`] — wired to
//! `cargo xtask difftest [--smoke|--full]`.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod driver;
pub mod events;
pub mod metamorphic;
pub mod refmodel;
pub mod report;
pub mod shrink;
pub mod tiered;

pub use driver::{check_events, check_spec, run_reference, run_system, EVENT_SPACING};
pub use events::{events_from_spec, events_from_trace, tenants_in, Event, EventKind};
pub use refmodel::RefMachine;
pub use report::{DiffReport, LevelCounts, StructCounts};

use itpx_bench::Sweep;
use itpx_mem::HierarchyConfig;
use itpx_trace::fuzz;

/// How much fuzzing a difftest run performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Number of fuzzed traces (each runs against every hierarchy preset).
    pub traces: usize,
    /// Instructions per fuzzed trace.
    pub instructions: usize,
    /// Master seed the trace corpus is derived from.
    pub master_seed: u64,
}

impl Scale {
    /// CI-sized run: a couple of dozen traces, ~1 s of work.
    pub fn smoke() -> Self {
        Self {
            traces: 24,
            instructions: 1_200,
            master_seed: 0x17bc_0de5,
        }
    }

    /// The acceptance-bar run: 256 traces per hierarchy preset.
    pub fn full() -> Self {
        Self {
            traces: 256,
            instructions: 1_500,
            master_seed: 0x17bc_0de5,
        }
    }
}

/// Result of a difftest run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Differential checks executed (trace × hierarchy combinations).
    pub differential_checks: usize,
    /// Metamorphic property families evaluated.
    pub metamorphic_checks: usize,
    /// Tier-boundary handoff property families evaluated.
    pub tier_checks: usize,
    /// One line per failed check; empty means everything agreed.
    pub failures: Vec<String>,
}

impl Outcome {
    /// Whether every check passed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The hierarchy presets every trace is compared on.
fn hierarchy_presets() -> [(&'static str, HierarchyConfig); 3] {
    [
        ("asplos25", HierarchyConfig::asplos25()),
        ("asplos25_no_llc", HierarchyConfig::asplos25_no_llc()),
        ("asplos25_deep", HierarchyConfig::asplos25_deep()),
    ]
}

/// Runs the full harness at `scale` using `host_threads` worker threads:
/// every fuzzed trace differentially checked on every hierarchy preset,
/// then the metamorphic properties.
pub fn run_with_threads(scale: &Scale, host_threads: usize) -> Outcome {
    let specs = fuzz::corpus(scale.master_seed, scale.traces, scale.instructions);
    let presets = hierarchy_presets();
    let jobs: Vec<(fuzz::FuzzSpec, usize)> = specs
        .iter()
        .flat_map(|&spec| (0..presets.len()).map(move |p| (spec, p)))
        .collect();
    let differential_checks = jobs.len();
    let results = Sweep::new(host_threads).run_generic(jobs, |&(spec, p)| {
        let (name, hierarchy) = &presets[p];
        check_spec(&spec, name, hierarchy).err()
    });
    let mut failures: Vec<String> = results.into_iter().flatten().collect();
    failures.extend(metamorphic::run_all());
    failures.extend(tiered::run_all());
    Outcome {
        differential_checks,
        metamorphic_checks: metamorphic::PROPERTY_COUNT,
        tier_checks: tiered::PROPERTY_COUNT,
        failures,
    }
}

/// [`run_with_threads`] with the thread count taken from the
/// environment-configured run scale (`ITPX_THREADS`).
pub fn run(scale: &Scale) -> Outcome {
    run_with_threads(scale, itpx_bench::RunScale::from_env().host_threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mini_run_passes_end_to_end() {
        let scale = Scale {
            traces: 3,
            instructions: 400,
            master_seed: 0xe2e,
        };
        let outcome = run_with_threads(&scale, 2);
        assert_eq!(outcome.differential_checks, 9, "3 traces x 3 presets");
        assert_eq!(outcome.metamorphic_checks, 5);
        assert_eq!(outcome.tier_checks, 2);
        assert!(outcome.passed(), "failures: {:#?}", outcome.failures);
    }
}
