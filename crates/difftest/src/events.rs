//! The event vocabulary both machines consume.
//!
//! The differential harness compares the optimized pipeline against the
//! reference model on a common, minimal input language: a flat list of
//! *events* — instruction fetches and data loads/stores by virtual
//! address, plus the multi-tenant control events (context switches and
//! targeted shootdowns). [`events_from_trace`] derives the access list
//! from a fuzzer trace (one fetch per new instruction block, one memory
//! event per operand); [`events_from_spec`] additionally interleaves
//! control events for the multi-tenant fuzz patterns. The shrinker
//! minimizes failing inputs at this granularity, control events
//! included — both drivers derive the tenant count from the event list
//! itself ([`tenants_in`]), so every shrink candidate stays well-formed.

use itpx_trace::fuzz::{generate, FuzzPattern, FuzzSpec};
use itpx_trace::TraceInst;
use itpx_types::{Asid, Rng64};

/// What one event does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Instruction fetch: an instruction-kind translation plus an L1I
    /// access.
    Fetch,
    /// Data load: a data-kind translation plus an L1D access.
    Load,
    /// Data store: like a load, then marks the L1D block dirty.
    Store,
    /// Context switch to tenant `asid`; with `flush`, the incoming
    /// tenant's TLB and PSC entries are invalidated first
    /// (`SwitchPolicy::FlushAsid`). The event's `va`/`pc` are unused.
    Switch {
        /// The tenant the scheduler switches to.
        asid: Asid,
        /// Whether the incoming tenant's stale entries are flushed.
        flush: bool,
    },
    /// Targeted TLB shootdown: invalidates the event's `va` under `asid`
    /// in every TLB level.
    Shootdown {
        /// The tenant whose translation is shot down.
        asid: Asid,
    },
}

/// One access both machines execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// What the event does.
    pub kind: EventKind,
    /// Virtual address accessed (the fetch block for [`EventKind::Fetch`]).
    pub va: u64,
    /// Program counter of the triggering instruction.
    pub pc: u64,
}

/// Lowers a fuzzer trace to the event list: a fetch whenever the
/// instruction stream enters a new 64-byte block, and one load/store per
/// memory operand.
pub fn events_from_trace(trace: &[TraceInst]) -> Vec<Event> {
    let mut out = Vec::with_capacity(trace.len());
    let mut last_block = None;
    for inst in trace {
        let block = inst.pc >> 6;
        if last_block != Some(block) {
            out.push(Event {
                kind: EventKind::Fetch,
                va: inst.pc,
                pc: inst.pc,
            });
            last_block = Some(block);
        }
        if let Some(m) = inst.mem {
            out.push(Event {
                kind: if m.store {
                    EventKind::Store
                } else {
                    EventKind::Load
                },
                va: m.addr,
                pc: inst.pc,
            });
        }
    }
    out
}

/// Lowers a fuzz spec to its full event list: the trace's accesses, with
/// deterministic multi-tenant control events interleaved for the
/// patterns that call for them. Every other pattern lowers exactly as
/// [`events_from_trace`] does.
pub fn events_from_spec(spec: &FuzzSpec) -> Vec<Event> {
    let base = events_from_trace(&generate(spec));
    match spec.pattern {
        FuzzPattern::ContextStorm => inject_context_storm(&base, spec.seed),
        FuzzPattern::ShootdownStorm => inject_shootdown_storm(&base, spec.seed),
        _ => base,
    }
}

/// The tenant count an event list requires: one more than the highest
/// ASID any control event names (access events run under whatever tenant
/// is current). A list with no control events needs exactly one tenant.
pub fn tenants_in(events: &[Event]) -> usize {
    events
        .iter()
        .map(|e| match e.kind {
            EventKind::Switch { asid, .. } | EventKind::Shootdown { asid } => asid.0 as usize + 1,
            _ => 1,
        })
        .max()
        .unwrap_or(1)
}

/// Tenants rotated through by the context-storm injection.
const STORM_TENANTS: u16 = 3;

/// High-rate round-robin switching over [`STORM_TENANTS`] tenants, a few
/// dozen events per quantum, with the flush policy drawn per switch so
/// one trace exercises both `FlushAsid` and `Preserve` transitions.
fn inject_context_storm(base: &[Event], seed: u64) -> Vec<Event> {
    let mut rng = Rng64::new(seed ^ 0x00c0_ffee);
    let mut out = Vec::with_capacity(base.len() + base.len() / 16);
    let mut next_switch = rng.range(16, 48);
    let mut tenant = 0u16;
    for (i, ev) in base.iter().enumerate() {
        if i as u64 >= next_switch {
            next_switch += rng.range(16, 48);
            tenant = (tenant + 1) % STORM_TENANTS;
            out.push(Event {
                kind: EventKind::Switch {
                    asid: Asid(tenant),
                    flush: rng.chance(0.5),
                },
                va: 0,
                pc: 0,
            });
        }
        out.push(*ev);
    }
    out
}

/// Frequent shootdowns of recently accessed pages under the current
/// tenant (so they land on resident translations), over a slow two-tenant
/// rotation. The recency ring resets at each switch: shots always target
/// pages the *current* tenant touched.
fn inject_shootdown_storm(base: &[Event], seed: u64) -> Vec<Event> {
    let mut rng = Rng64::new(seed ^ 0x0005_d00d);
    let mut out = Vec::with_capacity(base.len() + base.len() / 8);
    let mut recent: Vec<u64> = Vec::new();
    let mut tenant = 0u16;
    let mut next_shot = rng.range(8, 24);
    let mut next_switch = rng.range(150, 250);
    for (i, ev) in base.iter().enumerate() {
        let i = i as u64;
        if i >= next_switch {
            next_switch += rng.range(150, 250);
            tenant = (tenant + 1) % 2;
            recent.clear();
            out.push(Event {
                kind: EventKind::Switch {
                    asid: Asid(tenant),
                    flush: rng.chance(0.25),
                },
                va: 0,
                pc: 0,
            });
        }
        if i >= next_shot {
            next_shot += rng.range(8, 24);
            if !recent.is_empty() {
                let va = recent[rng.index(recent.len())];
                out.push(Event {
                    kind: EventKind::Shootdown { asid: Asid(tenant) },
                    va,
                    pc: 0,
                });
            }
        }
        out.push(*ev);
        if recent.len() == 8 {
            recent.remove(0);
        }
        recent.push(ev.va);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use itpx_trace::{MemRef, TraceInst};

    #[test]
    fn sequential_instructions_share_one_fetch_per_block() {
        // Four instructions in one 64-byte block: one fetch event.
        let trace: Vec<TraceInst> = (0..4).map(|i| TraceInst::alu(0x1000 + i * 4)).collect();
        let evs = events_from_trace(&trace);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind, EventKind::Fetch);
    }

    #[test]
    fn memory_operands_become_load_store_events() {
        let mut st = TraceInst::alu(0x2000);
        st.mem = Some(MemRef {
            addr: 0xabc0,
            store: true,
        });
        let mut ld = TraceInst::alu(0x2004);
        ld.mem = Some(MemRef {
            addr: 0xdef0,
            store: false,
        });
        let evs = events_from_trace(&[st, ld]);
        let kinds: Vec<EventKind> = evs.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![EventKind::Fetch, EventKind::Store, EventKind::Load]
        );
        assert_eq!(evs[1].va, 0xabc0);
        assert_eq!(evs[2].pc, 0x2004);
    }

    #[test]
    fn block_reentry_fetches_again() {
        let trace = vec![
            TraceInst::alu(0x1000),
            TraceInst::alu(0x9000),
            TraceInst::alu(0x1000),
        ];
        let evs = events_from_trace(&trace);
        assert_eq!(evs.len(), 3, "returning to a block re-fetches it");
    }

    fn storm_spec(pattern: FuzzPattern) -> FuzzSpec {
        FuzzSpec {
            pattern,
            seed: 0xca11,
            instructions: 2_000,
        }
    }

    #[test]
    fn context_storm_lowering_injects_rotating_switches() {
        let spec = storm_spec(FuzzPattern::ContextStorm);
        let evs = events_from_spec(&spec);
        assert_eq!(
            evs,
            events_from_spec(&spec),
            "lowering must be deterministic"
        );
        let switches: Vec<Asid> = evs
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Switch { asid, .. } => Some(asid),
                _ => None,
            })
            .collect();
        assert!(switches.len() > 20, "storm needs many switches");
        for t in 0..STORM_TENANTS {
            assert!(switches.contains(&Asid(t)), "tenant {t} never scheduled");
        }
        assert_eq!(tenants_in(&evs), STORM_TENANTS as usize);
    }

    #[test]
    fn shootdown_storm_lowering_targets_recent_pages() {
        let evs = events_from_spec(&storm_spec(FuzzPattern::ShootdownStorm));
        let mut current = Asid::KERNEL;
        let mut recent_blocks: Vec<u64> = Vec::new();
        let mut shots = 0;
        for ev in &evs {
            match ev.kind {
                EventKind::Switch { asid, .. } => {
                    current = asid;
                    recent_blocks.clear();
                }
                EventKind::Shootdown { asid } => {
                    shots += 1;
                    assert_eq!(asid, current, "shots target the current tenant");
                    assert!(
                        recent_blocks.contains(&(ev.va >> 12)),
                        "shot {:#x} must target a recently accessed page",
                        ev.va
                    );
                }
                _ => recent_blocks.push(ev.va >> 12),
            }
        }
        assert!(shots > 30, "storm needs many shootdowns, got {shots}");
        assert_eq!(tenants_in(&evs), 2);
    }

    #[test]
    fn plain_patterns_lower_without_control_events() {
        let evs = events_from_spec(&storm_spec(FuzzPattern::Mixed));
        assert!(evs.iter().all(|e| matches!(
            e.kind,
            EventKind::Fetch | EventKind::Load | EventKind::Store
        )));
        assert_eq!(tenants_in(&evs), 1);
    }
}
