//! The event vocabulary both machines consume.
//!
//! The differential harness compares the optimized pipeline against the
//! reference model on a common, minimal input language: a flat list of
//! *events* — instruction fetches and data loads/stores by virtual
//! address. [`events_from_trace`] derives the list from a fuzzer trace
//! (one fetch per new instruction block, one memory event per operand),
//! and the shrinker minimizes failing inputs at this granularity.

use itpx_trace::TraceInst;

/// What one event does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Instruction fetch: an instruction-kind translation plus an L1I
    /// access.
    Fetch,
    /// Data load: a data-kind translation plus an L1D access.
    Load,
    /// Data store: like a load, then marks the L1D block dirty.
    Store,
}

/// One access both machines execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// What the event does.
    pub kind: EventKind,
    /// Virtual address accessed (the fetch block for [`EventKind::Fetch`]).
    pub va: u64,
    /// Program counter of the triggering instruction.
    pub pc: u64,
}

/// Lowers a fuzzer trace to the event list: a fetch whenever the
/// instruction stream enters a new 64-byte block, and one load/store per
/// memory operand.
pub fn events_from_trace(trace: &[TraceInst]) -> Vec<Event> {
    let mut out = Vec::with_capacity(trace.len());
    let mut last_block = None;
    for inst in trace {
        let block = inst.pc >> 6;
        if last_block != Some(block) {
            out.push(Event {
                kind: EventKind::Fetch,
                va: inst.pc,
                pc: inst.pc,
            });
            last_block = Some(block);
        }
        if let Some(m) = inst.mem {
            out.push(Event {
                kind: if m.store {
                    EventKind::Store
                } else {
                    EventKind::Load
                },
                va: m.addr,
                pc: inst.pc,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use itpx_trace::{MemRef, TraceInst};

    #[test]
    fn sequential_instructions_share_one_fetch_per_block() {
        // Four instructions in one 64-byte block: one fetch event.
        let trace: Vec<TraceInst> = (0..4).map(|i| TraceInst::alu(0x1000 + i * 4)).collect();
        let evs = events_from_trace(&trace);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind, EventKind::Fetch);
    }

    #[test]
    fn memory_operands_become_load_store_events() {
        let mut st = TraceInst::alu(0x2000);
        st.mem = Some(MemRef {
            addr: 0xabc0,
            store: true,
        });
        let mut ld = TraceInst::alu(0x2004);
        ld.mem = Some(MemRef {
            addr: 0xdef0,
            store: false,
        });
        let evs = events_from_trace(&[st, ld]);
        let kinds: Vec<EventKind> = evs.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![EventKind::Fetch, EventKind::Store, EventKind::Load]
        );
        assert_eq!(evs[1].va, 0xabc0);
        assert_eq!(evs[2].pc, 0x2004);
    }

    #[test]
    fn block_reentry_fetches_again() {
        let trace = vec![
            TraceInst::alu(0x1000),
            TraceInst::alu(0x9000),
            TraceInst::alu(0x1000),
        ];
        let evs = events_from_trace(&trace);
        assert_eq!(evs.len(), 3, "returning to a block re-fetches it");
    }
}
