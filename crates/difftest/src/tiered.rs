//! Tier-boundary handoff properties for the tiered execution engine.
//!
//! The tiered engine alternates functional fast-forward with
//! cycle-accurate measurement windows, handing warm TLB/cache/predictor
//! state across every boundary. Two properties pin that handoff:
//!
//! 1. **Degenerate exactness** — a schedule with zero fast-forward is
//!    the flat run chopped into windows: same instructions, same cycle
//!    stream, and (because a measurement boundary also precedes the flat
//!    run's single window) *bit-identical* measured counters. Any
//!    divergence means a boundary reset or handoff touched state it must
//!    not.
//! 2. **Window tolerance** — with real fast-forward gaps the windows
//!    measure the same real instruction stream as a flat run of equal
//!    measured length, but the warm state entering each window was built
//!    by the functional model over a phase-forked stream. Headline rates
//!    must therefore stay *close* to flat — a broken handoff (cold
//!    structures, wrong recency order, lost dirty bits) shows up as a
//!    gross rate shift long before it would fail a statistical test.
//!
//! Both properties run inside the standard difftest harness
//! ([`crate::run_with_threads`]) so every full and smoke run exercises
//! the tier boundary path alongside the quiescent-mode comparison.

use itpx_core::Preset;
use itpx_cpu::{Simulation, SimulationOutput, SystemConfig};
use itpx_trace::{TierSchedule, WorkloadSpec};
use itpx_types::StructStats;

/// Absolute tolerance on per-structure miss rates between a tiered run
/// and the flat run measuring the same instructions. Warm handoff keeps
/// the rates within a few points; a cold or corrupted handoff shifts
/// L1I/DTLB rates by tens of points.
const RATE_TOLERANCE: f64 = 0.15;

/// The workload both properties compare on: long enough that every
/// structure sees real pressure, short enough for CI.
fn spec() -> WorkloadSpec {
    WorkloadSpec::server_like(11).warmup(2_000)
}

fn run(spec: &WorkloadSpec) -> SimulationOutput {
    Simulation::single_thread(&SystemConfig::asplos25(), Preset::ItpXptp, spec).run()
}

/// Miss rate of one structure, 0 when it saw no traffic.
fn miss_rate(s: &StructStats) -> f64 {
    let accesses = s.accesses();
    if accesses == 0 {
        return 0.0;
    }
    s.misses() as f64 / accesses as f64
}

/// Property 1: a zero-fast-forward schedule reproduces the flat run
/// bit for bit (the `tiers` metadata field aside, which records how the
/// counters were gathered).
fn check_degenerate_exact(failures: &mut Vec<String>) {
    let flat = run(&spec().instructions(30_000));
    let mut tiered = run(&spec().tiers(TierSchedule::tiered(10_000, 0, 3)));
    if tiered.tiers == flat.tiers {
        failures.push("tiered/degenerate: schedule metadata was not recorded".into());
        return;
    }
    tiered.tiers = flat.tiers;
    if tiered != flat {
        failures.push(format!(
            "tiered/degenerate: zero-fast-forward schedule diverged from the \
             flat run (flat {} insts / {} cycles, tiered {} insts / {} cycles)",
            flat.instructions(),
            flat.threads[0].cycles,
            tiered.instructions(),
            tiered.threads[0].cycles,
        ));
    }
}

/// Property 2: with real fast-forward gaps, measured rates stay within
/// [`RATE_TOLERANCE`] of the flat run over the same measured stream.
fn check_window_tolerance(failures: &mut Vec<String>) {
    let flat = run(&spec().instructions(20_000));
    let tiered = run(&spec().tiers(TierSchedule::tiered(5_000, 25_000, 4)));
    if tiered.instructions() != flat.instructions() {
        failures.push(format!(
            "tiered/tolerance: windows measured {} instructions, flat {}",
            tiered.instructions(),
            flat.instructions(),
        ));
        return;
    }
    let rates = [
        ("l1i", &flat.l1i, &tiered.l1i),
        ("l1d", &flat.l1d, &tiered.l1d),
        ("itlb", &flat.itlb, &tiered.itlb),
        ("dtlb", &flat.dtlb, &tiered.dtlb),
    ];
    for (name, f, t) in rates {
        let (fr, tr) = (miss_rate(f), miss_rate(t));
        if (fr - tr).abs() > RATE_TOLERANCE {
            failures.push(format!(
                "tiered/tolerance: {name} miss rate {tr:.3} is more than \
                 {RATE_TOLERANCE} from the flat run's {fr:.3} — the warm \
                 handoff is not seeding the cycle model"
            ));
        }
    }
    // A warm handoff keeps throughput in the same regime: a cold start
    // every window craters IPC (ratio well below 1), while a broken
    // cycle-accounting boundary inflates it wildly. The band is wide
    // because the fast-forward warming legitimately lifts window IPC
    // above the flat run's cold-start-diluted figure.
    let ratio = tiered.ipc() / flat.ipc();
    if !(0.4..=5.0).contains(&ratio) {
        failures.push(format!(
            "tiered/tolerance: tiered IPC {:.3} vs flat {:.3} (ratio {ratio:.2})",
            tiered.ipc(),
            flat.ipc(),
        ));
    }
}

/// Runs every tier-boundary property; returns one line per failure.
pub fn run_all() -> Vec<String> {
    let mut failures = Vec::new();
    check_degenerate_exact(&mut failures);
    check_window_tolerance(&mut failures);
    failures
}

/// Number of property families [`run_all`] evaluates.
pub const PROPERTY_COUNT: usize = 2;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_exactness_holds() {
        let mut f = Vec::new();
        check_degenerate_exact(&mut f);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn window_tolerance_holds() {
        let mut f = Vec::new();
        check_window_tolerance(&mut f);
        assert!(f.is_empty(), "{f:?}");
    }
}
