//! The count vocabulary the two machines are compared on.
//!
//! A [`DiffReport`] holds every timing-free counter the simulation
//! exposes: per-class access/miss counts for each TLB and cache level,
//! walker totals, per-level writeback/eviction counts, and DRAM traffic.
//! Two reports from the same event list must be identical; [`DiffReport::diff`]
//! names every field that is not.

use itpx_cpu::System;

// The count vocabulary moved to `itpx-types` when the reference machine
// was promoted into `itpx-cpu` (both crates need it without a dependency
// cycle); re-exported here so difftest code keeps its familiar paths.
pub use itpx_types::{LevelCounts, StructCounts};

/// Every timing-free counter of one simulation, from either machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffReport {
    /// First-level instruction TLB counts.
    pub itlb: StructCounts,
    /// First-level data TLB counts.
    pub dtlb: StructCounts,
    /// Last-level TLB counts.
    pub stlb: StructCounts,
    /// Page walks performed.
    pub walks: u64,
    /// Walks serving instruction translations.
    pub instruction_walks: u64,
    /// PTE memory references across all walks.
    pub walk_refs: u64,
    /// Chain levels in order (L1I, L1D, then shared outermost-first).
    pub levels: Vec<LevelCounts>,
    /// DRAM read transactions.
    pub dram_reads: u64,
    /// DRAM write transactions.
    pub dram_writes: u64,
    /// Writebacks absorbed by a lower chain level instead of DRAM.
    pub writebacks_absorbed: u64,
}

impl DiffReport {
    /// Snapshots the optimized pipeline's counters.
    pub fn from_system(sys: &System) -> Self {
        Self {
            itlb: sys.itlb().stats().into(),
            dtlb: sys.dtlb().stats().into(),
            stlb: (&sys.stlb().stats()).into(),
            walks: sys.walker().walks(),
            instruction_walks: sys.walker().instruction_walks(),
            walk_refs: sys.walker().memory_refs(),
            levels: sys
                .hierarchy
                .levels()
                .map(|(id, c)| LevelCounts {
                    id,
                    counts: c.stats().into(),
                    writebacks: c.writebacks(),
                    evictions: c.evictions(),
                })
                .collect(),
            dram_reads: sys.hierarchy.dram().reads(),
            dram_writes: sys.hierarchy.dram().writes(),
            writebacks_absorbed: sys.hierarchy.writebacks_absorbed(),
        }
    }

    /// Every field where `self` (the optimized pipeline) disagrees with
    /// `reference`; empty when the reports match bit-for-bit.
    pub fn diff(&self, reference: &Self) -> Vec<String> {
        let mut out = Vec::new();
        let mut field = |name: &str, got: &dyn std::fmt::Debug, want: &dyn std::fmt::Debug| {
            out.push(format!("{name}: optimized {got:?} != reference {want:?}"));
        };
        if self.itlb != reference.itlb {
            field("itlb", &self.itlb, &reference.itlb);
        }
        if self.dtlb != reference.dtlb {
            field("dtlb", &self.dtlb, &reference.dtlb);
        }
        if self.stlb != reference.stlb {
            field("stlb", &self.stlb, &reference.stlb);
        }
        if self.walks != reference.walks {
            field("walks", &self.walks, &reference.walks);
        }
        if self.instruction_walks != reference.instruction_walks {
            field(
                "instruction_walks",
                &self.instruction_walks,
                &reference.instruction_walks,
            );
        }
        if self.walk_refs != reference.walk_refs {
            field("walk_refs", &self.walk_refs, &reference.walk_refs);
        }
        if self.levels.len() != reference.levels.len() {
            field("levels.len", &self.levels.len(), &reference.levels.len());
        }
        for (a, b) in self.levels.iter().zip(&reference.levels) {
            if a != b {
                field(b.id.name(), a, b);
            }
        }
        if self.dram_reads != reference.dram_reads {
            field("dram_reads", &self.dram_reads, &reference.dram_reads);
        }
        if self.dram_writes != reference.dram_writes {
            field("dram_writes", &self.dram_writes, &reference.dram_writes);
        }
        if self.writebacks_absorbed != reference.writebacks_absorbed {
            field(
                "writebacks_absorbed",
                &self.writebacks_absorbed,
                &reference.writebacks_absorbed,
            );
        }
        out
    }

    /// Writeback-conservation check: every writeback any level emitted is
    /// either absorbed below or a DRAM write.
    pub fn writebacks_conserved(&self) -> bool {
        let emitted: u64 = self.levels.iter().map(|l| l.writebacks).sum();
        emitted == self.writebacks_absorbed + self.dram_writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itpx_types::LevelId;

    fn empty() -> DiffReport {
        DiffReport {
            itlb: StructCounts::default(),
            dtlb: StructCounts::default(),
            stlb: StructCounts::default(),
            walks: 0,
            instruction_walks: 0,
            walk_refs: 0,
            levels: vec![LevelCounts {
                id: LevelId::L1I,
                counts: StructCounts::default(),
                writebacks: 0,
                evictions: 0,
            }],
            dram_reads: 0,
            dram_writes: 0,
            writebacks_absorbed: 0,
        }
    }

    #[test]
    fn equal_reports_have_no_diff() {
        assert!(empty().diff(&empty()).is_empty());
    }

    #[test]
    fn diff_names_the_divergent_field() {
        let a = empty();
        let mut b = empty();
        b.walks = 3;
        b.levels[0].writebacks = 1;
        let d = a.diff(&b);
        assert_eq!(d.len(), 2);
        assert!(d[0].contains("walks"));
        assert!(d[1].contains("L1I"));
    }

    #[test]
    fn conservation_accounts_for_absorption_and_dram() {
        let mut r = empty();
        r.levels[0].writebacks = 5;
        r.writebacks_absorbed = 3;
        r.dram_writes = 2;
        assert!(r.writebacks_conserved());
        r.dram_writes = 1;
        assert!(!r.writebacks_conserved());
    }
}
