//! The determinism lint: a source scanner that rejects constructs known to
//! make simulation runs irreproducible or to crash them.
//!
//! Rules (see DESIGN.md "Determinism rules"):
//!
//! * `std-time` — wall-clock reads (`std::time`, `Instant::now`,
//!   `SystemTime`). Simulated time must come from the model's own clocks.
//! * `entropy` — ambient randomness (`rand::`, `thread_rng`,
//!   `RandomState`, `from_entropy`). All randomness must flow from
//!   `itpx_types::Rng64` seeds.
//! * `map-iter` — iteration over a `std::collections::HashMap`/`HashSet`.
//!   Their iteration order changes between processes (`RandomState`), so
//!   any statistic or eviction decision derived from it is nondeterministic.
//!   Use `BTreeMap`/`BTreeSet` or sort first.
//! * `panicking-index` — `.unwrap()`/`.expect(...)` and computed indexing
//!   (`a[i + 1]`, `a[f(x)]`) without a justifying `//` comment on the same
//!   or preceding line.
//! * `layering` — direct `hierarchy.l2` / `hierarchy.llc` field access
//!   outside `itpx-mem`. The level chain owns its shared levels; callers
//!   go through the `l2c()`/`l2c_mut()`/`llc()`/`llc_mut()` accessors,
//!   which stay valid when the chain depth changes. (The fields are
//!   private, so the compiler rejects this too — the lint exists to give
//!   a targeted message and to catch the pattern in macro/string-built
//!   code paths the compiler can't see.)
//! * `dispatch` — `Box<dyn Policy` in `itpx-mem`/`itpx-vm`/`itpx-cpu`
//!   source. The simulated machine dispatches policies through the
//!   `CachePolicyEngine`/`TlbPolicyEngine` enums so the per-access calls
//!   inline; a boxed trait object on that path reintroduces the virtual
//!   call. Out-of-tree policies enter via `PolicyEngine::boxed(...)` at
//!   construction sites *outside* these crates.
//!
//! Lines inside `#[cfg(test)]` modules are exempt. Audited exceptions live
//! in `crates/xtask/allowlist.txt`, one per line: `rule|path-suffix|needle`.
//!
//! The simulator crates get all rules. The campaign engine's cache path in
//! `itpx-bench` ([`LINTED_CACHE_FILES`]) additionally gets the `std-time`
//! and `entropy` rules: a cache key or persisted result derived from the
//! wall clock or ambient randomness would silently break memoization. The
//! rest of `crates/bench/src` gets only the `layering` rule: harness code
//! configures hierarchies constantly and must do so through the accessors.

use std::fs;
use std::path::{Path, PathBuf};

/// Crate directories (under `crates/`) the lint covers. `bench` and
/// `xtask` are excluded: neither runs inside a simulation.
pub const LINTED_CRATES: &[&str] = &["types", "policy", "core", "vm", "mem", "cpu", "trace"];

/// Bench files on the simulation-cache path. Cache keys and persisted
/// results must be process-stable, so the `std-time` and `entropy` rules
/// extend to these files — wall-clock timing belongs in the reporting
/// binaries, never in cache identity. The other rules stay off: harness
/// code may `.expect(...)` freely.
pub const LINTED_CACHE_FILES: &[&str] = &[
    "crates/bench/src/simcache.rs",
    "crates/bench/src/campaign.rs",
];

/// The rules enforced on [`LINTED_CACHE_FILES`].
pub const CACHE_PATH_RULES: &[&str] = &["std-time", "entropy"];

/// Extra source roots scanned with only the `layering` rule: bench
/// harness code builds hierarchy configs all the time and must use the
/// depth-stable accessors rather than reaching for level fields.
pub const LAYERING_EXTRA_ROOTS: &[&str] = &["crates/bench/src"];

/// One lint hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (`std-time`, `entropy`, `map-iter`,
    /// `panicking-index`, `layering`, `dispatch`).
    pub rule: &'static str,
    /// Repo-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending line, trimmed.
    pub excerpt: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.excerpt
        )
    }
}

/// One allowlist entry: `rule|path-suffix|needle`.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    rule: String,
    path_suffix: String,
    needle: String,
    /// Original line, for the unused-entry report.
    raw: String,
}

/// Result of a lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Findings that survived the allowlist.
    pub findings: Vec<Finding>,
    /// Allowlist entries that suppressed nothing (stale exceptions).
    pub unused_allowlist: Vec<String>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

/// Parses the allowlist format: `#` comments and blank lines ignored.
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, '|');
        match (parts.next(), parts.next(), parts.next()) {
            (Some(rule), Some(path), Some(needle)) if !rule.is_empty() && !path.is_empty() => {
                entries.push(AllowEntry {
                    rule: rule.trim().to_string(),
                    path_suffix: path.trim().to_string(),
                    needle: needle.trim().to_string(),
                    raw: line.to_string(),
                });
            }
            _ => {
                return Err(format!(
                    "allowlist line {}: expected `rule|path-suffix|needle`, got `{line}`",
                    i + 1
                ))
            }
        }
    }
    Ok(entries)
}

/// Runs the lint over the workspace rooted at `root`.
pub fn run(root: &Path) -> Result<LintReport, String> {
    let allow_path = root.join("crates/xtask/allowlist.txt");
    let allowlist = match fs::read_to_string(&allow_path) {
        Ok(text) => parse_allowlist(&text)?,
        Err(_) => Vec::new(),
    };
    let mut report = LintReport::default();
    let mut used = vec![false; allowlist.len()];
    for krate in LINTED_CRATES {
        let dir = root.join("crates").join(krate).join("src");
        let mut files = Vec::new();
        collect_rs_files(&dir, &mut files)
            .map_err(|e| format!("walking {}: {e}", dir.display()))?;
        files.sort();
        for file in files {
            let src = fs::read_to_string(&file)
                .map_err(|e| format!("reading {}: {e}", file.display()))?;
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            report.files_scanned += 1;
            for f in lint_source(&rel, &src) {
                let mut suppressed = false;
                for (i, a) in allowlist.iter().enumerate() {
                    if (a.rule == "*" || a.rule == f.rule)
                        && f.path.ends_with(&a.path_suffix)
                        && f.excerpt.contains(&a.needle)
                    {
                        used[i] = true;
                        suppressed = true;
                        break;
                    }
                }
                if !suppressed {
                    report.findings.push(f);
                }
            }
        }
    }
    for rel in LINTED_CACHE_FILES {
        let file = root.join(rel);
        let src =
            fs::read_to_string(&file).map_err(|e| format!("reading {}: {e}", file.display()))?;
        report.files_scanned += 1;
        for f in lint_source(rel, &src) {
            if !CACHE_PATH_RULES.contains(&f.rule) {
                continue;
            }
            let mut suppressed = false;
            for (i, a) in allowlist.iter().enumerate() {
                if (a.rule == "*" || a.rule == f.rule)
                    && f.path.ends_with(&a.path_suffix)
                    && f.excerpt.contains(&a.needle)
                {
                    used[i] = true;
                    suppressed = true;
                    break;
                }
            }
            if !suppressed {
                report.findings.push(f);
            }
        }
    }
    for root_rel in LAYERING_EXTRA_ROOTS {
        let dir = root.join(root_rel);
        let mut files = Vec::new();
        collect_rs_files(&dir, &mut files)
            .map_err(|e| format!("walking {}: {e}", dir.display()))?;
        files.sort();
        for file in files {
            let src = fs::read_to_string(&file)
                .map_err(|e| format!("reading {}: {e}", file.display()))?;
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            report.files_scanned += 1;
            for f in lint_source(&rel, &src) {
                if f.rule != "layering" {
                    continue;
                }
                let mut suppressed = false;
                for (i, a) in allowlist.iter().enumerate() {
                    if (a.rule == "*" || a.rule == f.rule)
                        && f.path.ends_with(&a.path_suffix)
                        && f.excerpt.contains(&a.needle)
                    {
                        used[i] = true;
                        suppressed = true;
                        break;
                    }
                }
                if !suppressed {
                    report.findings.push(f);
                }
            }
        }
    }
    for (i, a) in allowlist.iter().enumerate() {
        if !used[i] {
            report.unused_allowlist.push(a.raw.clone());
        }
    }
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints one source file; pure so fixtures can be tested inline.
pub fn lint_source(path: &str, src: &str) -> Vec<Finding> {
    let lines: Vec<&str> = src.lines().collect();
    let in_test = test_module_mask(&lines);
    let tracked = tracked_hash_idents(&lines, &in_test);
    let mut out = Vec::new();
    for (i, &line) in lines.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        let trimmed = line.trim();
        if trimmed.starts_with("//") {
            continue;
        }
        let code = code_part(line);
        let has_comment = line.len() > code.len()
            || i.checked_sub(1)
                .map(|p| lines[p].trim().starts_with("//"))
                .unwrap_or(false);
        let mut push = |rule: &'static str| {
            out.push(Finding {
                rule,
                path: path.to_string(),
                line: i + 1,
                excerpt: trimmed.to_string(),
            });
        };
        if code.contains("std::time")
            || code.contains("Instant::now")
            || code.contains("SystemTime")
        {
            push("std-time");
        }
        if code.contains("thread_rng")
            || code.contains("RandomState")
            || code.contains("from_entropy")
            || code.contains("rand::")
        {
            push("entropy");
        }
        if iterates_tracked_map(code, &tracked) {
            push("map-iter");
        }
        if !has_comment && (code.contains(".unwrap()") || code.contains(".expect(")) {
            push("panicking-index");
        }
        if !has_comment && has_computed_index(code) {
            push("panicking-index");
        }
        if !path.contains("crates/mem/") && reaches_into_hierarchy(code) {
            push("layering");
        }
        if DISPATCH_RULE_CRATES.iter().any(|c| path.contains(c)) && code.contains("Box<dyn Policy")
        {
            push("dispatch");
        }
    }
    out
}

/// Path fragments the `dispatch` rule applies to: the crates that run the
/// per-access hot path and must hold policies as engine enums.
const DISPATCH_RULE_CRATES: &[&str] = &["crates/mem/", "crates/vm/", "crates/cpu/"];

/// `true` if `code` accesses a shared cache level of a hierarchy config
/// as a *field* (`hierarchy.l2.sets`, `hierarchy.llc = ...`) rather than
/// through the depth-stable accessors (`l2c()`, `l2c_mut()`, `llc()`,
/// `llc_mut()`). A needle followed by an identifier character is a
/// longer name (`hierarchy.l2c_mut`), and one followed by `(` is a
/// method call — both fine.
fn reaches_into_hierarchy(code: &str) -> bool {
    for needle in ["hierarchy.l2", "hierarchy.llc"] {
        for (pos, _) in code.match_indices(needle) {
            let after = code[pos + needle.len()..].chars().next();
            let permitted = matches!(after, Some(c) if c.is_alphanumeric() || c == '_' || c == '(');
            if !permitted {
                return true;
            }
        }
    }
    false
}

/// The part of a line before a `//` comment (naive: ignores `//` inside
/// string literals, which the linted crates do not contain in practice).
fn code_part(line: &str) -> &str {
    match line.find("//") {
        Some(pos) => &line[..pos],
        None => line,
    }
}

/// Marks lines belonging to `#[cfg(test)] mod ... { ... }` blocks.
fn test_module_mask(lines: &[&str]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if lines[i].trim() == "#[cfg(test)]" {
            // Find the item this attribute decorates (skip further attrs).
            let mut j = i + 1;
            while j < lines.len() && lines[j].trim().starts_with("#[") {
                j += 1;
            }
            if j < lines.len() && lines[j].trim_start().starts_with("mod ") {
                let mut depth = 0i64;
                let mut opened = false;
                for (k, l) in lines.iter().enumerate().take(lines.len()).skip(i) {
                    mask[k] = true;
                    for c in l.chars() {
                        match c {
                            '{' => {
                                depth += 1;
                                opened = true;
                            }
                            '}' => depth -= 1,
                            _ => {}
                        }
                    }
                    if opened && depth <= 0 {
                        i = k;
                        break;
                    }
                }
            }
        }
        i += 1;
    }
    mask
}

/// Identifiers bound to `HashMap`/`HashSet` values in non-test code:
/// `name: HashMap<...>` (fields, params, also behind `&`/`&mut`),
/// `let [mut] name = HashMap::...`, `let [mut] name: HashMap<...>`.
fn tracked_hash_idents(lines: &[&str], in_test: &[bool]) -> Vec<String> {
    let mut idents = Vec::new();
    for (i, &line) in lines.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        let code = code_part(line);
        if !code.contains("HashMap") && !code.contains("HashSet") {
            continue;
        }
        // `name: HashMap<` / `name: HashSet<`, including reference params
        // like `m: &HashMap<..>` / `m: &mut HashSet<..>`.
        for marker in [
            ": HashMap",
            ": HashSet",
            ": &HashMap",
            ": &HashSet",
            ": &mut HashMap",
            ": &mut HashSet",
        ] {
            let mut rest = code;
            while let Some(pos) = rest.find(marker) {
                if let Some(id) = ident_ending_at(&rest[..pos]) {
                    idents.push(id);
                }
                rest = &rest[pos + marker.len()..];
            }
        }
        // `let [mut] name = HashMap::` / `= HashSet::`
        if let Some(eq) = code.find('=') {
            let rhs = &code[eq..];
            if rhs.contains("HashMap::") || rhs.contains("HashSet::") {
                if let Some(id) = let_binding_name(&code[..eq]) {
                    idents.push(id);
                }
            }
        }
    }
    idents.sort();
    idents.dedup();
    idents
}

/// The identifier whose last character ends `prefix` (e.g. for
/// `pub samples` returns `samples`).
fn ident_ending_at(prefix: &str) -> Option<String> {
    let id: String = prefix
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    if id.is_empty() || id.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        None
    } else {
        Some(id)
    }
}

/// Extracts `name` from `let [mut] name` (possibly with a type ascription
/// already stripped by the caller).
fn let_binding_name(lhs: &str) -> Option<String> {
    let lhs = lhs.trim();
    let after_let = lhs.strip_prefix("let ")?.trim_start();
    let after_mut = after_let.strip_prefix("mut ").unwrap_or(after_let).trim();
    let name: String = after_mut
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// `true` if `code` iterates one of the tracked map/set identifiers.
fn iterates_tracked_map(code: &str, tracked: &[String]) -> bool {
    for id in tracked {
        for call in [
            ".iter()",
            ".iter_mut()",
            ".keys()",
            ".values()",
            ".values_mut()",
            ".into_iter()",
            ".drain(",
            ".retain(",
        ] {
            if code.contains(&format!("{id}{call}")) {
                return true;
            }
        }
        if code.contains("for ")
            && (code.contains(&format!("in &{id}"))
                || code.contains(&format!("in &mut {id}"))
                || code.contains(&format!("in {id} ")))
        {
            return true;
        }
    }
    false
}

/// `true` if `code` contains an index expression whose content involves
/// arithmetic or a call — the cases where an off-by-one can panic. Plain
/// `a[i]` is the drive protocol's bread and butter and is left to
/// `CheckedPolicy`/tests.
fn has_computed_index(code: &str) -> bool {
    let bytes = code.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'[' {
            let prev = code[..i].chars().next_back();
            let indexable =
                matches!(prev, Some(c) if c.is_alphanumeric() || c == '_' || c == ')' || c == ']');
            if indexable {
                // Find the matching bracket.
                let mut depth = 1;
                let mut j = i + 1;
                while j < bytes.len() && depth > 0 {
                    match bytes[j] {
                        b'[' => depth += 1,
                        b']' => depth -= 1,
                        _ => {}
                    }
                    j += 1;
                }
                let inner = &code[i + 1..j.saturating_sub(1).max(i + 1)];
                let computed = inner.contains('(')
                    || ["+", "-", "*", "/", "%"]
                        .iter()
                        .any(|op| contains_arith(inner, op));
                if computed && !inner.contains("..") {
                    return true;
                }
                i = j;
                continue;
            }
        }
        i += 1;
    }
    false
}

/// Arithmetic-operator check that ignores `->`, `=>`, unary minus on
/// literals at the start, and path separators.
fn contains_arith(inner: &str, op: &str) -> bool {
    let inner = inner.trim();
    for (pos, _) in inner.match_indices(op) {
        let before = inner[..pos].chars().next_back();
        let after = inner[pos + op.len()..].chars().next();
        // `->` / `=>` / `::` neighbors disqualify; a bare leading `-` is a
        // unary sign, not arithmetic on an index.
        if op == "-" && (pos == 0 || matches!(before, Some('=') | Some('<'))) {
            continue;
        }
        if op == "*" && pos == 0 {
            continue; // deref
        }
        if matches!(after, Some('>') | Some('=')) {
            continue;
        }
        let _ = before;
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(src: &str) -> Vec<&'static str> {
        lint_source("fixture.rs", src)
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn clean_source_passes() {
        let src = "fn f(v: &[u32], i: usize) -> u32 {\n    v[i]\n}\n";
        assert!(rules(src).is_empty());
    }

    #[test]
    fn wall_clock_is_flagged() {
        assert_eq!(rules("let t = std::time::Instant::now();\n"), ["std-time"]);
        assert_eq!(rules("let t = Instant::now();\n"), ["std-time"]);
    }

    #[test]
    fn ambient_entropy_is_flagged() {
        assert_eq!(rules("let r = rand::thread_rng();\n"), ["entropy"]);
        assert_eq!(rules("let s = RandomState::new();\n"), ["entropy"]);
    }

    #[test]
    fn hashmap_iteration_is_flagged() {
        let src = "use std::collections::HashMap;\n\
                   struct S { counts: HashMap<u64, u64> }\n\
                   impl S {\n\
                       fn sum(&self) -> u64 {\n\
                           self.counts.values().sum()\n\
                       }\n\
                   }\n";
        assert_eq!(rules(src), ["map-iter"]);
    }

    #[test]
    fn hashmap_point_lookup_is_fine() {
        let src = "use std::collections::HashMap;\n\
                   struct S { counts: HashMap<u64, u64> }\n\
                   impl S {\n\
                       fn get(&self, k: u64) -> Option<&u64> {\n\
                           self.counts.get(&k)\n\
                       }\n\
                   }\n";
        assert!(rules(src).is_empty());
    }

    #[test]
    fn let_bound_hashmap_for_loop_is_flagged() {
        let src = "fn f() {\n\
                   let mut seen = HashMap::new();\n\
                   seen.insert(1, 2);\n\
                   for (k, v) in &seen { let _ = (k, v); }\n\
                   }\n";
        assert_eq!(rules(src), ["map-iter"]);
    }

    #[test]
    fn hashmap_reference_param_iteration_is_flagged() {
        let src = "use std::collections::HashMap;\n\
                   fn total(m: &HashMap<u64, u64>) -> u64 {\n\
                       m.values().sum()\n\
                   }\n";
        assert_eq!(rules(src), ["map-iter"]);
    }

    #[test]
    fn btreemap_iteration_is_fine() {
        let src = "use std::collections::BTreeMap;\n\
                   fn f(m: &BTreeMap<u64, u64>) -> u64 { m.values().sum() }\n";
        assert!(rules(src).is_empty());
    }

    #[test]
    fn bare_unwrap_is_flagged_commented_is_not() {
        assert_eq!(rules("let x = o.unwrap();\n"), ["panicking-index"]);
        assert!(rules("let x = o.unwrap(); // verified non-empty above\n").is_empty());
        assert!(rules("// set is never empty here\nlet x = o.unwrap();\n").is_empty());
    }

    #[test]
    fn computed_index_is_flagged_plain_is_not() {
        assert_eq!(rules("let x = v[i + 1];\n"), ["panicking-index"]);
        assert_eq!(rules("let x = v[f(i)];\n"), ["panicking-index"]);
        assert!(rules("let x = v[i];\n").is_empty());
        assert!(rules("let x = &v[1..3];\n").is_empty());
        assert!(rules("let x: [u8; 4] = [0; 4];\n").is_empty());
        assert!(rules("let x = vec![0; n];\n").is_empty());
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "fn prod() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { let x = std::time::Instant::now(); let _ = x; }\n\
                   }\n";
        assert!(rules(src).is_empty());
    }

    #[test]
    fn hierarchy_field_access_is_flagged() {
        assert_eq!(rules("config.hierarchy.l2.sets = 1024;\n"), ["layering"]);
        assert_eq!(rules("let c = &config.hierarchy.llc;\n"), ["layering"]);
    }

    #[test]
    fn hierarchy_accessors_are_fine() {
        assert!(rules("config.hierarchy.l2c_mut().sets = 1024;\n").is_empty());
        assert!(rules("let b = config.hierarchy.l2c().bytes();\n").is_empty());
        assert!(rules("let c = config.hierarchy.llc();\n").is_empty());
        assert!(rules("config.hierarchy.llc_mut().map(|l| l.sets);\n").is_empty());
    }

    #[test]
    fn hierarchy_rule_exempts_the_mem_crate() {
        let hits = lint_source("crates/mem/src/hierarchy.rs", "self.hierarchy.l2 = cfg;\n");
        assert!(hits.is_empty(), "itpx-mem owns the fields: {hits:?}");
    }

    #[test]
    fn boxed_policy_in_hot_crates_is_flagged() {
        let src = "let p: Box<dyn Policy<CacheMeta>> = Box::new(Lru::new(4, 2));\n";
        let hits = lint_source("crates/mem/src/cache.rs", src);
        assert_eq!(
            hits.iter().map(|f| f.rule).collect::<Vec<_>>(),
            ["dispatch"]
        );
        let hits = lint_source("crates/vm/src/tlb.rs", src);
        assert_eq!(
            hits.iter().map(|f| f.rule).collect::<Vec<_>>(),
            ["dispatch"]
        );
        let hits = lint_source("crates/cpu/src/system.rs", src);
        assert_eq!(
            hits.iter().map(|f| f.rule).collect::<Vec<_>>(),
            ["dispatch"]
        );
    }

    #[test]
    fn boxed_policy_elsewhere_is_fine() {
        // The registry's trait-object build and out-of-tree examples keep
        // using `Box<dyn Policy>` legitimately.
        let src = "pub build: fn(usize, usize) -> Box<dyn Policy<M>>,\n";
        assert!(lint_source("crates/core/src/registry.rs", src).is_empty());
    }

    #[test]
    fn boxed_policy_in_hot_crate_tests_is_exempt() {
        let src = "fn prod() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { let _p: Box<dyn Policy<TlbMeta>> = Box::new(Lru::new(4, 2)); }\n\
                   }\n";
        assert!(lint_source("crates/vm/src/tlb.rs", src).is_empty());
    }

    #[test]
    fn allowlist_suppresses_matching_findings() {
        let entries =
            parse_allowlist("# audited\npanicking-index|fixture.rs|o.unwrap()\n").expect("parses");
        let f = &lint_source("crates/vm/fixture.rs", "let x = o.unwrap();\n")[0];
        let hit = entries.iter().any(|a| {
            (a.rule == "*" || a.rule == f.rule)
                && f.path.ends_with(&a.path_suffix)
                && f.excerpt.contains(&a.needle)
        });
        assert!(hit);
    }

    #[test]
    fn allowlist_rejects_malformed_lines() {
        assert!(parse_allowlist("just-one-field\n").is_err());
    }

    #[test]
    fn cache_path_rules_cover_time_and_entropy_only() {
        // The cache-path extension must reject nondeterministic identity
        // sources but tolerate harness-style expects.
        let src = "fn key() {\n\
                   let t = std::time::SystemTime::now();\n\
                   let s = RandomState::new();\n\
                   let x = o.expect(\"msg\");\n\
                   }\n";
        let kept: Vec<_> = lint_source("crates/bench/src/simcache.rs", src)
            .into_iter()
            .filter(|f| CACHE_PATH_RULES.contains(&f.rule))
            .map(|f| f.rule)
            .collect();
        assert_eq!(kept, ["std-time", "entropy"]);
    }
}
