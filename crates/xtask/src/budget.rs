//! The hardware-budget auditor.
//!
//! Every policy reports its architectural metadata cost through
//! [`Policy::meta_bits`]. This pass cross-checks that self-report three
//! ways at the paper's structure geometries (Table 1: 1536-entry 12-way
//! STLB, 1 MB 8-way L2C):
//!
//! 1. **Differential check** — the reported total must equal an
//!    independently coded expected formula, so a struct-layout change that
//!    forgets to update `meta_bits` (or vice versa) fails the audit.
//! 2. **Budget check** — for the paper's proposals and the LRU-derived
//!    baselines, the *overhead over the declared baseline policy* must fit
//!    the declared per-entry budget (plus a global slack for PSEL/PRNG/
//!    predictor-table state): iTP ≤ 4 bits/entry over LRU (Section 4.1.3),
//!    xPTP ≤ 1 bit/entry over LRU (the Figure 6 `Type` bit).
//! 3. The results are written to `docs/hardware-budget.md`.

use itpx_core::registry::{self, PolicyEntry};
use itpx_policy::Policy;
use std::path::Path;

/// STLB geometry audited (Table 1: 1536 entries, 12-way).
pub const STLB_DIMS: (usize, usize) = (128, 12);
/// L2C geometry audited (Table 1: 1 MB, 8-way, 64 B blocks → 2048 sets).
pub const L2C_DIMS: (usize, usize) = (2048, 8);

/// Declared budget for one policy's overhead over its baseline.
#[derive(Debug, Clone, Copy)]
struct BudgetRow {
    name: &'static str,
    /// Maximum overhead per entry, in bits.
    per_entry_bits: u64,
    /// Global state excluded from the per-entry figure (PSEL counters,
    /// PRNG state, predictor tables).
    global_slack_bits: u64,
}

/// Budgets for TLB policies (overhead over the entry's declared baseline).
const TLB_BUDGETS: &[BudgetRow] = &[
    // Section 4.1.3: "iTP requires 4 additional bits per STLB entry".
    BudgetRow {
        name: "itp",
        per_entry_bits: 4,
        global_slack_bits: 0,
    },
    // CHiRP: 12-bit signature + 1 control bit per entry, plus the global
    // confidence table (3 × 2^12) and the 64-bit history register.
    BudgetRow {
        name: "chirp",
        per_entry_bits: 13,
        global_slack_bits: 3 * (1 << 12) + 64,
    },
    // Figure-3 motivation policy: 1 Type bit per entry + PRNG state.
    BudgetRow {
        name: "prob-keep-instr-lru",
        per_entry_bits: 1,
        global_slack_bits: 256,
    },
];

/// Budgets for cache policies.
const CACHE_BUDGETS: &[BudgetRow] = &[
    // Figure 6: xPTP adds exactly the 1-bit `Type` field per block.
    BudgetRow {
        name: "xptp",
        per_entry_bits: 1,
        global_slack_bits: 0,
    },
    // Adaptive variant: same per-block cost + the 1-bit status register.
    BudgetRow {
        name: "xptp/lru",
        per_entry_bits: 1,
        global_slack_bits: 1,
    },
    // Extension: Type bit + Emissary-style code bit.
    BudgetRow {
        name: "xptp+emissary",
        per_entry_bits: 2,
        global_slack_bits: 0,
    },
    // PTP: 1 PTE bit per block over LRU.
    BudgetRow {
        name: "ptp",
        per_entry_bits: 1,
        global_slack_bits: 0,
    },
    // DIP is LRU + set dueling: PSEL + PRNG only.
    BudgetRow {
        name: "dip",
        per_entry_bits: 0,
        global_slack_bits: 10 + 256,
    },
    // T-DRRIP is DRRIP with a different insertion rule: no storage over
    // SRRIP beyond PSEL + PRNG.
    BudgetRow {
        name: "tdrrip",
        per_entry_bits: 0,
        global_slack_bits: 10 + 256,
    },
    // T-SHiP reuses SHiP's storage unchanged.
    BudgetRow {
        name: "tship",
        per_entry_bits: 0,
        global_slack_bits: 0,
    },
];

/// Recoded here on purpose: the audit must not share code with
/// `itpx_policy::traits::rank_bits`.
fn rank(ways: u64) -> u64 {
    let mut bits = 0;
    while (1u64 << bits) < ways {
        bits += 1;
    }
    bits
}

/// Independently coded expected totals, per policy name. Any change to a
/// policy's state must update both its `meta_bits` and this table.
fn expected_bits(name: &str, sets: u64, ways: u64) -> Option<u64> {
    let e = sets * ways;
    Some(match name {
        "lru" => e * rank(ways),
        "tree-plru" => sets * (ways - 1),
        "random" => 256,
        "srrip" => e * 2,
        "brrip" => e * 2 + 256,
        "drrip" => e * 2 + 10 + 256,
        "dip" => e * rank(ways) + 10 + 256,
        "ship" | "tship" => e * (2 + 14 + 1) + 3 * (1 << 14),
        "mockingjay" => {
            e * 8 + sets * 32 + 7 * (1 << 12) + sets.div_ceil(8) * 4 * ways * (64 + 32 + 12)
        }
        "ptp" | "xptp" => e * (rank(ways) + 1),
        "xptp/lru" => e * (rank(ways) + 1) + 1,
        "xptp+emissary" => e * (rank(ways) + 2),
        "tdrrip" => e * 2 + 10 + 256,
        "chirp" => e * (rank(ways) + 12 + 1) + 3 * (1 << 12) + 64,
        "prob-keep-instr-lru" => e * (rank(ways) + 1) + 256,
        "itp" => e * (rank(ways) + 1 + 3),
        _ => return None,
    })
}

/// One audited policy, for the report.
#[derive(Debug)]
pub struct AuditRow {
    /// Policy name.
    pub name: String,
    /// `"stlb"` or `"l2c"`.
    pub structure: &'static str,
    /// Geometry the policy was audited at (tree PLRU rounds the STLB's
    /// 12 ways up to its power-of-two requirement).
    pub dims: (usize, usize),
    /// Reported total metadata, in bits.
    pub total_bits: u64,
    /// Overhead over the baseline, in bits (total when no baseline).
    pub overhead_bits: Option<u64>,
    /// Overhead per entry after subtracting the global slack.
    pub overhead_per_entry: Option<f64>,
    /// Declared per-entry budget, if any.
    pub budget_per_entry: Option<u64>,
}

/// Audit outcome.
#[derive(Debug, Default)]
pub struct BudgetReport {
    /// Per-policy rows, in registry order (TLB first).
    pub rows: Vec<AuditRow>,
    /// Differential or budget failures.
    pub failures: Vec<String>,
}

fn audit_side<M: itpx_policy::PolicyMeta>(
    entries: &[PolicyEntry<M>],
    budgets: &[BudgetRow],
    structure: &'static str,
    (sets, ways): (usize, usize),
    report: &mut BudgetReport,
) {
    for e in entries {
        // Policies with geometry constraints are audited at the nearest
        // supported associativity (tree PLRU: 12 → 16 ways).
        let (sets, ways) = if e.supports_ways(ways) {
            (sets, ways)
        } else {
            (sets, ways.next_power_of_two())
        };
        let entry_count = (sets * ways) as u64;
        let policy = (e.build)(sets, ways);
        let total = policy.meta_bits(sets, ways);
        match expected_bits(e.name, sets as u64, ways as u64) {
            Some(expected) if expected != total => report.failures.push(format!(
                "{structure}/{}: meta_bits reports {total} bits but the audit \
                 formula expects {expected} (update both together)",
                e.name
            )),
            Some(_) => {}
            None => report.failures.push(format!(
                "{structure}/{}: no expected-bits formula registered in the audit",
                e.name
            )),
        }
        let overhead = e.baseline.map(|base| {
            let base_entry = entries
                .iter()
                .find(|o| o.name == base)
                .unwrap_or_else(|| panic!("{}: unknown baseline {base}", e.name));
            let base_bits = (base_entry.build)(sets, ways).meta_bits(sets, ways);
            total.saturating_sub(base_bits)
        });
        let budget = budgets.iter().find(|b| b.name == e.name);
        let overhead_per_entry = overhead.map(|o| {
            let slack = budget.map_or(0, |b| b.global_slack_bits);
            o.saturating_sub(slack) as f64 / entry_count as f64
        });
        if let (Some(o), Some(b)) = (overhead, budget) {
            let allowed = b.per_entry_bits * entry_count + b.global_slack_bits;
            if o > allowed {
                report.failures.push(format!(
                    "{structure}/{}: overhead {o} bits exceeds budget \
                     ({} bits/entry × {entry_count} + {} slack = {allowed})",
                    e.name, b.per_entry_bits, b.global_slack_bits
                ));
            }
        } else if budget.is_some() && overhead.is_none() {
            report.failures.push(format!(
                "{structure}/{}: has a budget row but no baseline in the registry",
                e.name
            ));
        }
        report.rows.push(AuditRow {
            name: e.name.to_string(),
            structure,
            dims: (sets, ways),
            total_bits: total,
            overhead_bits: overhead,
            overhead_per_entry,
            budget_per_entry: budget.map(|b| b.per_entry_bits),
        });
    }
}

/// Runs the audit; when `write_report` is set, renders
/// `docs/hardware-budget.md` under `root`.
pub fn run(root: &Path, write_report: bool) -> Result<BudgetReport, String> {
    let mut report = BudgetReport::default();
    audit_side(
        &registry::tlb_policies(),
        TLB_BUDGETS,
        "stlb",
        STLB_DIMS,
        &mut report,
    );
    audit_side(
        &registry::cache_policies(),
        CACHE_BUDGETS,
        "l2c",
        L2C_DIMS,
        &mut report,
    );
    if write_report {
        let path = root.join("docs").join("hardware-budget.md");
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
        }
        std::fs::write(&path, render_markdown(&report))
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
    }
    Ok(report)
}

fn render_markdown(report: &BudgetReport) -> String {
    let mut out = String::new();
    out.push_str("# Hardware metadata budget\n\n");
    out.push_str(
        "Generated by `cargo xtask analyze` (pass 2, the hardware-budget \
         auditor).\nEach policy's `Policy::meta_bits` self-report is checked \
         against an\nindependently coded formula and, where the paper \
         declares a budget, against\nthat budget as overhead over the \
         baseline policy.\n\n",
    );
    out.push_str(&format!(
        "Audited geometries — STLB: {} sets × {} ways; L2C: {} sets × {} ways.\n\n",
        STLB_DIMS.0, STLB_DIMS.1, L2C_DIMS.0, L2C_DIMS.1
    ));
    out.push_str(
        "| Structure | Policy | Sets × ways | Total bits | Total KiB | Overhead vs \
         baseline | Budget (bits/entry) | Status |\n|---|---|---|---:|---:|---:|---:|---|\n",
    );
    for r in &report.rows {
        let kib = r.total_bits as f64 / 8.0 / 1024.0;
        let overhead = match (r.overhead_bits, r.overhead_per_entry) {
            (Some(bits), Some(per)) => format!("{bits} ({per:.2}/entry)"),
            _ => "—".to_string(),
        };
        let budget = r
            .budget_per_entry
            .map_or("—".to_string(), |b| format!("≤ {b}"));
        let ok = !report
            .failures
            .iter()
            .any(|f| f.starts_with(&format!("{}/{}:", r.structure, r.name)));
        out.push_str(&format!(
            "| {} | {} | {}×{} | {} | {:.2} | {} | {} | {} |\n",
            r.structure,
            r.name,
            r.dims.0,
            r.dims.1,
            r.total_bits,
            kib,
            overhead,
            budget,
            if ok { "ok" } else { "FAIL" }
        ));
    }
    if !report.failures.is_empty() {
        out.push_str("\n## Failures\n\n");
        for f in &report.failures {
            out.push_str(&format!("- {f}\n"));
        }
    }
    out.push_str(
        "\nPer-entry overheads exclude declared global state (PSEL counters, \
         PRNG\nstate, predictor tables) — see the budget table in \
         `crates/xtask/src/budget.rs`\nand the DESIGN.md \"Hardware budget \
         audit\" section.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_registry_passes() {
        let report = run(Path::new("/nonexistent-unused"), false).expect("runs");
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        assert_eq!(
            report.rows.len(),
            registry::tlb_policies().len() + registry::cache_policies().len()
        );
    }

    #[test]
    fn itp_overhead_is_exactly_four_bits_per_entry() {
        let report = run(Path::new("/nonexistent-unused"), false).expect("runs");
        let itp = report
            .rows
            .iter()
            .find(|r| r.name == "itp")
            .expect("itp row");
        assert_eq!(itp.overhead_per_entry, Some(4.0));
    }

    #[test]
    fn xptp_overhead_is_one_bit_per_entry() {
        let report = run(Path::new("/nonexistent-unused"), false).expect("runs");
        let x = report
            .rows
            .iter()
            .find(|r| r.name == "xptp" && r.structure == "l2c")
            .expect("xptp row");
        assert_eq!(x.overhead_per_entry, Some(1.0));
    }

    #[test]
    fn rank_matches_ceil_log2() {
        assert_eq!(rank(1), 0);
        assert_eq!(rank(2), 1);
        assert_eq!(rank(8), 3);
        assert_eq!(rank(12), 4);
        assert_eq!(rank(16), 4);
    }
}
