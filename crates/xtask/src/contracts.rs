//! The policy contract checker.
//!
//! Drives every registered policy through a protocol-correct randomized
//! access stream (fills, hits, evictions, invalidations) under
//! [`itpx_policy::CheckedPolicy`], which shadows the structure's valid
//! bits and records every contract violation: out-of-range victims,
//! victims pointing at invalid ways, fills into valid ways, unpaired
//! evictions. The stream is seeded from [`itpx_types::Rng64`], so a
//! failure reproduces bit-for-bit.
//!
//! This is the release-mode twin of the proptest harness in
//! `crates/core/tests/checked_policies.rs`: the harness shrinks fast in
//! debug CI runs, this pass hammers longer streams and reports *all*
//! violations instead of panicking on the first.

use itpx_core::registry;
use itpx_policy::{CacheMeta, CheckedPolicy, Policy, TlbMeta};
use itpx_types::{FillClass, Rng64, ThreadId, TranslationKind};

/// Geometries each policy is driven at: a small one to stress set
/// collisions and the paper's structure shapes.
const GEOMETRIES: &[(usize, usize)] = &[(4, 2), (16, 4), (64, 8), (32, 12)];

/// Accesses per (policy, geometry) drive.
const OPS: usize = 20_000;

/// Contract-checker outcome.
#[derive(Debug, Default)]
pub struct ContractReport {
    /// `(policy, sets, ways)` combinations driven.
    pub drives: usize,
    /// All recorded violations, prefixed with the geometry.
    pub violations: Vec<String>,
}

/// Drives `inner` for `ops` protocol-correct accesses and returns the
/// violations `CheckedPolicy` recorded.
fn drive<M: Copy>(
    inner: Box<dyn Policy<M>>,
    sets: usize,
    ways: usize,
    ops: usize,
    seed: u64,
    mut gen_meta: impl FnMut(&mut Rng64) -> M,
) -> Vec<String> {
    let mut p = CheckedPolicy::new(inner, sets, ways);
    let mut rng = Rng64::new(seed);
    // The driver's own occupancy view; `CheckedPolicy` keeps an
    // independent shadow and flags any disagreement with the policy.
    let mut resident: Vec<Vec<Option<M>>> = vec![vec![None; ways]; sets];
    for _ in 0..ops {
        let set = rng.index(sets);
        let occupied: Vec<usize> = (0..ways).filter(|&w| resident[set][w].is_some()).collect();
        let roll = rng.below(100);
        if roll < 50 && !occupied.is_empty() {
            // Hit on a resident entry, re-presenting its fill metadata.
            let way = occupied[rng.index(occupied.len())];
            let meta = resident[set][way].expect("way is occupied");
            p.on_hit(set, way, &meta);
        } else if roll < 95 {
            // Fill: free way if one exists, else the full victim protocol.
            let meta = gen_meta(&mut rng);
            if occupied.len() < ways {
                let free: Vec<usize> = (0..ways).filter(|&w| resident[set][w].is_none()).collect();
                let way = free[rng.index(free.len())];
                p.on_fill(set, way, &meta);
                resident[set][way] = Some(meta);
            } else {
                let v = p.victim(set, &meta);
                if v >= ways {
                    // The wrapper has recorded the violation; stop driving
                    // this policy rather than indexing out of range.
                    break;
                }
                Policy::<M>::on_evict(&mut p, set, v);
                p.on_fill(set, v, &meta);
                resident[set][v] = Some(meta);
            }
        } else if !occupied.is_empty() {
            // Invalidation: eviction without a victim() request.
            let way = occupied[rng.index(occupied.len())];
            Policy::<M>::on_evict(&mut p, set, way);
            resident[set][way] = None;
        }
    }
    p.take_violations()
}

fn tlb_meta(rng: &mut Rng64) -> TlbMeta {
    TlbMeta {
        vpn: rng.below(1 << 16),
        pc: rng.below(1 << 20) << 2,
        kind: if rng.chance(0.5) {
            TranslationKind::Instruction
        } else {
            TranslationKind::Data
        },
        thread: ThreadId(0),
    }
}

fn cache_meta(rng: &mut Rng64) -> CacheMeta {
    let fill = match rng.below(4) {
        0 => FillClass::InstrPayload,
        1 => FillClass::DataPayload,
        2 => FillClass::InstrPte,
        _ => FillClass::DataPte,
    };
    CacheMeta {
        block: rng.below(1 << 24),
        pc: rng.below(1 << 20) << 2,
        stlb_miss: rng.chance(0.2),
        ..CacheMeta::demand(0, fill)
    }
}

/// Runs the contract drive over every registered policy and geometry.
pub fn run() -> ContractReport {
    let mut report = ContractReport::default();
    for &(sets, ways) in GEOMETRIES {
        for e in registry::tlb_policies() {
            if !e.supports_ways(ways) {
                continue;
            }
            report.drives += 1;
            let seed = 0x5eed_0000 + sets as u64 * 131 + ways as u64;
            for v in drive((e.build)(sets, ways), sets, ways, OPS, seed, tlb_meta) {
                report
                    .violations
                    .push(format!("tlb {sets}x{ways} (seed {seed:#x}): {v}"));
            }
        }
        for e in registry::cache_policies() {
            if !e.supports_ways(ways) {
                continue;
            }
            report.drives += 1;
            let seed = 0xcac4_0000 + sets as u64 * 131 + ways as u64;
            for v in drive((e.build)(sets, ways), sets, ways, OPS, seed, cache_meta) {
                report
                    .violations
                    .push(format!("cache {sets}x{ways} (seed {seed:#x}): {v}"));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A policy that evicts way `ways` (one past the end).
    #[derive(Debug)]
    struct OffByOne {
        ways: usize,
    }
    impl Policy<TlbMeta> for OffByOne {
        fn on_fill(&mut self, _: usize, _: usize, _: &TlbMeta) {}
        fn on_hit(&mut self, _: usize, _: usize, _: &TlbMeta) {}
        fn victim(&mut self, _: usize, _: &TlbMeta) -> usize {
            self.ways
        }
        fn name(&self) -> &'static str {
            "off-by-one"
        }
        fn meta_bits(&self, _: usize, _: usize) -> u64 {
            0
        }
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "policy contract violation"))]
    fn seeded_oob_victim_is_reported() {
        let v = drive(
            Box::new(OffByOne { ways: 2 }),
            2,
            2,
            1_000,
            1,
            super::tlb_meta,
        );
        // Release builds collect instead of panicking.
        assert!(v.iter().any(|m| m.contains(">= ways")), "{v:?}");
    }

    #[test]
    fn drive_is_deterministic() {
        let mk = || {
            drive(
                Box::new(itpx_policy::Lru::new(4, 2)),
                4,
                2,
                2_000,
                42,
                super::tlb_meta,
            )
        };
        assert_eq!(mk(), mk());
    }
}
