//! `cargo xtask` — repository analysis tasks for the itpx workspace.
//!
//! Subcommands:
//!
//! * `analyze [--json <path>]` (default) — run all three passes below;
//!   non-zero exit if any of them finds a violation. `--json` also writes
//!   the lint report as JSON for CI trend tracking.
//! * `lint [--json <path>]` — the AST-based static analysis
//!   (`itpx-lint`) over the simulation crates: determinism rules plus the
//!   hot-path rules (`hot-alloc`, `hot-float`, `arith-width`) over the
//!   call graph rooted at the per-access entry points.
//! * `budget` — the hardware-budget audit (also writes
//!   `docs/hardware-budget.md`).
//! * `contracts` — the randomized policy contract drive.
//! * `difftest [--smoke|--full]` — differential + metamorphic harness:
//!   fuzzed traces through the optimized pipeline and the functional
//!   reference model must agree bit for bit (see docs/testing.md).
//!
//! See DESIGN.md ("Static analysis") for rule definitions and the
//! `// itpx-allow: <rule> <reason>` annotation grammar. Stale or
//! malformed annotations fail `analyze` exactly like findings do.

mod budget;
mod contracts;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn repo_root() -> PathBuf {
    // crates/xtask/ -> crates/ -> repo root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask sits two levels under the repo root")
        .to_path_buf()
}

fn run_lint(root: &Path, json_path: Option<&str>) -> Result<bool, String> {
    let report = itpx_lint::run(root)?;
    println!(
        "lint: analyzed {} files across crates/{{{}}}, {} bench cache-path file(s), \
         and {} (layering rule); {} hot function(s) on the per-access call graph",
        report.files_scanned,
        itpx_lint::LINTED_CRATES.join(","),
        itpx_lint::LINTED_CACHE_FILES.len(),
        itpx_lint::LAYERING_EXTRA_ROOTS.join(", "),
        report.hot_fns,
    );
    for f in &report.findings {
        println!("  violation: {f}");
    }
    for a in &report.annotation_errors {
        println!("  violation: {a}");
    }
    if let Some(path) = json_path {
        std::fs::write(path, report.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("lint: wrote JSON report to {path}");
    }
    if report.is_clean() {
        println!("lint: ok");
    } else {
        println!(
            "lint: {} violation(s) — fix them or annotate the line with \
             `// itpx-allow: <rule> <reason>`",
            report.findings.len() + report.annotation_errors.len()
        );
    }
    Ok(report.is_clean())
}

fn run_budget(root: &Path, write_report: bool) -> Result<bool, String> {
    let report = budget::run(root, write_report)?;
    println!("budget: audited {} policies", report.rows.len());
    for f in &report.failures {
        println!("  violation: {f}");
    }
    if write_report {
        println!("budget: wrote docs/hardware-budget.md");
    }
    if report.failures.is_empty() {
        println!("budget: ok (iTP ≤ 4 bits/entry, xPTP ≤ 1 bit/entry)");
    }
    Ok(report.failures.is_empty())
}

fn run_contracts() -> Result<bool, String> {
    let report = contracts::run();
    println!(
        "contracts: drove {} policy × geometry combinations",
        report.drives
    );
    for v in &report.violations {
        println!("  violation: {v}");
    }
    if report.violations.is_empty() {
        println!("contracts: ok");
    }
    Ok(report.violations.is_empty())
}

fn run_difftest(scale_arg: Option<&str>) -> Result<bool, String> {
    let scale = match scale_arg {
        None | Some("--smoke") => itpx_difftest::Scale::smoke(),
        Some("--full") => itpx_difftest::Scale::full(),
        Some(other) => {
            return Err(format!(
                "unknown difftest option `{other}` (expected --smoke or --full)"
            ))
        }
    };
    println!(
        "difftest: {} fuzzed trace(s) x {} instruction(s) per hierarchy preset",
        scale.traces, scale.instructions
    );
    let outcome = itpx_difftest::run(&scale);
    println!(
        "difftest: {} differential check(s), {} metamorphic propert(y/ies), \
         {} tier-boundary propert(y/ies)",
        outcome.differential_checks, outcome.metamorphic_checks, outcome.tier_checks
    );
    for f in &outcome.failures {
        println!("  divergence: {f}");
    }
    if outcome.passed() {
        println!("difftest: ok (optimized pipeline matches the reference model bit for bit)");
    } else {
        println!("difftest: {} failure(s)", outcome.failures.len());
    }
    Ok(outcome.passed())
}

/// Extracts `--json <path>` from the argument tail, if present.
fn json_arg(args: &[String]) -> Result<Option<&str>, String> {
    match args.iter().position(|a| a == "--json") {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(path) => Ok(Some(path)),
            None => Err("--json requires a path argument".to_string()),
        },
    }
}

const USAGE: &str =
    "usage: cargo xtask [analyze|lint [--json <path>]|budget|contracts|difftest [--smoke|--full]]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(|s| s.as_str()).unwrap_or("analyze");
    let root = repo_root();
    let outcome = match cmd {
        "analyze" => json_arg(&args[1..]).and_then(|json| {
            run_lint(&root, json)
                .and_then(|a| Ok(a & run_budget(&root, true)?))
                .and_then(|a| Ok(a & run_contracts()?))
        }),
        "lint" => json_arg(&args[1..]).and_then(|json| run_lint(&root, json)),
        "budget" => run_budget(&root, true),
        "contracts" => run_contracts(),
        "difftest" => run_difftest(args.get(1).map(|s| s.as_str())),
        "help" | "-h" | "--help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => {
            eprintln!("unknown subcommand `{other}`\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match outcome {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("xtask error: {e}");
            ExitCode::from(2)
        }
    }
}
