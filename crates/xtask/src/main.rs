//! `cargo xtask` — repository analysis tasks for the itpx workspace.
//!
//! Subcommands:
//!
//! * `analyze` (default) — run all three passes below; non-zero exit if
//!   any of them finds a violation.
//! * `lint` — the determinism lint over the simulation crates.
//! * `budget` — the hardware-budget audit (also writes
//!   `docs/hardware-budget.md`).
//! * `contracts` — the randomized policy contract drive.
//! * `difftest [--smoke|--full]` — differential + metamorphic harness:
//!   fuzzed traces through the optimized pipeline and the functional
//!   reference model must agree bit for bit (see docs/testing.md).
//!
//! See DESIGN.md ("Static analysis: cargo xtask analyze") for rule
//! definitions and the allowlist format.

mod budget;
mod contracts;
mod lint;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn repo_root() -> PathBuf {
    // crates/xtask/ -> crates/ -> repo root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask sits two levels under the repo root")
        .to_path_buf()
}

fn run_lint(root: &Path) -> Result<bool, String> {
    let report = lint::run(root)?;
    println!(
        "lint: scanned {} files across crates/{{{}}}, {} bench cache-path file(s), \
         and {} (layering rule)",
        report.files_scanned,
        lint::LINTED_CRATES.join(","),
        lint::LINTED_CACHE_FILES.len(),
        lint::LAYERING_EXTRA_ROOTS.join(", ")
    );
    for f in &report.findings {
        println!("  violation: {f}");
    }
    for a in &report.unused_allowlist {
        println!("  warning: unused allowlist entry `{a}`");
    }
    if report.findings.is_empty() {
        println!("lint: ok");
    } else {
        println!(
            "lint: {} violation(s) — fix them or add audited entries to \
             crates/xtask/allowlist.txt",
            report.findings.len()
        );
    }
    Ok(report.findings.is_empty())
}

fn run_budget(root: &Path, write_report: bool) -> Result<bool, String> {
    let report = budget::run(root, write_report)?;
    println!("budget: audited {} policies", report.rows.len());
    for f in &report.failures {
        println!("  violation: {f}");
    }
    if write_report {
        println!("budget: wrote docs/hardware-budget.md");
    }
    if report.failures.is_empty() {
        println!("budget: ok (iTP ≤ 4 bits/entry, xPTP ≤ 1 bit/entry)");
    }
    Ok(report.failures.is_empty())
}

fn run_contracts() -> Result<bool, String> {
    let report = contracts::run();
    println!(
        "contracts: drove {} policy × geometry combinations",
        report.drives
    );
    for v in &report.violations {
        println!("  violation: {v}");
    }
    if report.violations.is_empty() {
        println!("contracts: ok");
    }
    Ok(report.violations.is_empty())
}

fn run_difftest(scale_arg: Option<&str>) -> Result<bool, String> {
    let scale = match scale_arg {
        None | Some("--smoke") => itpx_difftest::Scale::smoke(),
        Some("--full") => itpx_difftest::Scale::full(),
        Some(other) => {
            return Err(format!(
                "unknown difftest option `{other}` (expected --smoke or --full)"
            ))
        }
    };
    println!(
        "difftest: {} fuzzed trace(s) x {} instruction(s) per hierarchy preset",
        scale.traces, scale.instructions
    );
    let outcome = itpx_difftest::run(&scale);
    println!(
        "difftest: {} differential check(s), {} metamorphic propert(y/ies)",
        outcome.differential_checks, outcome.metamorphic_checks
    );
    for f in &outcome.failures {
        println!("  divergence: {f}");
    }
    if outcome.passed() {
        println!("difftest: ok (optimized pipeline matches the reference model bit for bit)");
    } else {
        println!("difftest: {} failure(s)", outcome.failures.len());
    }
    Ok(outcome.passed())
}

const USAGE: &str = "usage: cargo xtask [analyze|lint|budget|contracts|difftest [--smoke|--full]]";

fn main() -> ExitCode {
    let cmd = std::env::args().nth(1).unwrap_or_else(|| "analyze".into());
    let root = repo_root();
    let outcome = match cmd.as_str() {
        "analyze" => run_lint(&root)
            .and_then(|a| Ok(a & run_budget(&root, true)?))
            .and_then(|a| Ok(a & run_contracts()?)),
        "lint" => run_lint(&root),
        "budget" => run_budget(&root, true),
        "contracts" => run_contracts(),
        "difftest" => run_difftest(std::env::args().nth(2).as_deref()),
        "help" | "-h" | "--help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => {
            eprintln!("unknown subcommand `{other}`\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match outcome {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("xtask error: {e}");
            ExitCode::from(2)
        }
    }
}
