//! A minimal, dependency-free subset of the `criterion` benchmarking API.
//!
//! The build environment has no network access, so the real `criterion`
//! crate cannot be fetched. This shim keeps the workspace's `[[bench]]`
//! targets compiling and runnable: each registered benchmark runs a short
//! timed loop and prints a mean wall-clock time per iteration. It makes no
//! statistical claims — it exists so `cargo test`/`cargo bench` build and so
//! the benches stay exercised.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Measurement knobs (subset; all are advisory in the shim).
#[derive(Debug, Clone)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_millis(200),
        }
    }
}

/// Top-level benchmark driver (mirror of `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, &self.settings, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            settings: self.settings.clone(),
            _parent: std::marker::PhantomData,
        }
    }

    /// Final configuration hook used by `criterion_main!`.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// A named group sharing throughput/sample settings (mirror of
/// `criterion::BenchmarkGroup`).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Declares work-per-iteration so reports can show rates.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Registers and immediately runs one benchmark in the group.
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, &self.settings, &mut f);
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Work-per-iteration declaration (mirror of `criterion::Throughput`).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing harness handed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        std::hint::black_box(out);
        self.elapsed += start.elapsed();
        self.iters_done += 1;
    }
}

fn run_one(id: &str, settings: &Settings, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher::default();
    let deadline = Instant::now() + settings.measurement_time;
    for _ in 0..settings.sample_size {
        f(&mut b);
        if Instant::now() > deadline {
            break;
        }
    }
    if b.iters_done > 0 {
        let per_iter = b.elapsed / b.iters_done as u32;
        println!("bench {id}: {per_iter:?}/iter over {} iters", b.iters_done);
    } else {
        println!("bench {id}: no iterations recorded");
    }
}

/// Re-export of `std::hint::black_box` (mirror of `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function list (mirror of the real macro).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the benchmark entry point (mirror of the real macro).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut hits = 0u64;
        c.bench_function("smoke", |b| b.iter(|| hits += 1));
        assert!(hits > 0);
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2).throughput(Throughput::Elements(1));
        let mut ran = false;
        g.bench_function("inner", |b| b.iter(|| ran = true));
        g.finish();
        assert!(ran);
    }
}
