//! A registry of every replacement policy in the workspace.
//!
//! `cargo xtask analyze` and the cross-policy test suites need to
//! instantiate *all* policies uniformly — for the hardware-budget audit,
//! for the [`itpx_policy::CheckedPolicy`] contract drive, and for the
//! name-stability test. This module is the single place that knows how to
//! build each one, so a policy added to the workspace only has to be
//! registered here to be covered by every audit.
//!
//! Stochastic policies are built from fixed seeds; the registry is fully
//! deterministic.

use crate::adaptive::AdaptiveXptp;
use crate::extension::XptpEmissary;
use crate::itp::{Itp, ItpParams};
use crate::xptp::{Xptp, XptpParams};
use itpx_policy::{
    Brrip, CacheMeta, Chirp, Dip, Drrip, Lru, Mockingjay, Policy, PolicyMeta, ProbKeepInstrLru,
    Ptp, RandomEvict, Ship, Srrip, TShip, Tdrrip, TlbMeta, TreePlru,
};

/// Seed used for every stochastic policy the registry builds.
pub const REGISTRY_SEED: u64 = 0x1735_c0de;

/// One registered policy: its stable name, how to size-and-build it, and
/// the policy whose storage it extends (for overhead-over-baseline
/// accounting in the budget audit).
pub struct PolicyEntry<M: PolicyMeta> {
    /// The policy's `name()` — stable across releases, used in reports.
    pub name: &'static str,
    /// Baseline policy (by registry name) the budget audit subtracts to get
    /// the *overhead* this policy adds; `None` for self-contained designs.
    pub baseline: Option<&'static str>,
    /// Geometry constraint: `true` when the policy's tree structure needs a
    /// power-of-two associativity (tree PLRU).
    pub pow2_ways_only: bool,
    /// Builds the policy for a `sets × ways` structure as a trait object
    /// (the form the contract and budget audits drive).
    pub build: fn(usize, usize) -> Box<dyn Policy<M>>,
    /// Builds the same policy into its enum-engine variant — the form the
    /// simulated machine runs. The `engine_equivalence` suite asserts both
    /// constructions decide identically, and `engine_covers_registry` that
    /// none falls back to the engines' `Dyn` escape hatch.
    pub build_engine: fn(usize, usize) -> M::Engine,
}

impl<M: PolicyMeta> PolicyEntry<M> {
    /// Whether this policy can be built at the given associativity.
    pub fn supports_ways(&self, ways: usize) -> bool {
        ways >= 2 && (!self.pow2_ways_only || ways.is_power_of_two())
    }
}

impl<M: PolicyMeta> std::fmt::Debug for PolicyEntry<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PolicyEntry")
            .field("name", &self.name)
            .field("baseline", &self.baseline)
            .finish()
    }
}

/// iTP parameters that satisfy `N < M < ways` for any associativity ≥ 2:
/// Table 1 defaults when they fit, proportionally scaled otherwise.
pub fn itp_params_for(ways: usize) -> ItpParams {
    let d = ItpParams::default();
    if d.m < ways {
        d
    } else {
        let n = ways / 3;
        ItpParams {
            n,
            m: (2 * ways / 3).max(n + 1).min(ways - 1),
            ..d
        }
    }
}

/// xPTP parameters for any associativity: Table 1's `K = 8` capped at the
/// number of ways (strict protection for narrower structures).
pub fn xptp_params_for(ways: usize) -> XptpParams {
    XptpParams {
        k: XptpParams::default().k.min(ways),
    }
}

/// Every cache replacement policy in the workspace (the Table 2 field, the
/// LLC comparators, and the paper's L2C proposals and extensions).
pub fn cache_policies() -> Vec<PolicyEntry<CacheMeta>> {
    vec![
        PolicyEntry {
            name: "lru",
            baseline: None,
            pow2_ways_only: false,
            build: |s, w| Box::new(Lru::new(s, w)),
            build_engine: |s, w| Lru::new(s, w).into(),
        },
        PolicyEntry {
            name: "tree-plru",
            baseline: None,
            pow2_ways_only: true,
            build: |s, w| Box::new(TreePlru::new(s, w)),
            build_engine: |s, w| TreePlru::new(s, w).into(),
        },
        PolicyEntry {
            name: "random",
            baseline: None,
            pow2_ways_only: false,
            build: |_, w| Box::new(RandomEvict::new(w, REGISTRY_SEED)),
            build_engine: |_, w| RandomEvict::new(w, REGISTRY_SEED).into(),
        },
        PolicyEntry {
            name: "srrip",
            baseline: None,
            pow2_ways_only: false,
            build: |s, w| Box::new(Srrip::new(s, w)),
            build_engine: |s, w| Srrip::new(s, w).into(),
        },
        PolicyEntry {
            name: "brrip",
            baseline: None,
            pow2_ways_only: false,
            build: |s, w| Box::new(Brrip::new(s, w, REGISTRY_SEED)),
            build_engine: |s, w| Brrip::new(s, w, REGISTRY_SEED).into(),
        },
        PolicyEntry {
            name: "drrip",
            baseline: None,
            pow2_ways_only: false,
            build: |s, w| Box::new(Drrip::new(s, w, REGISTRY_SEED)),
            build_engine: |s, w| Drrip::new(s, w, REGISTRY_SEED).into(),
        },
        PolicyEntry {
            name: "dip",
            baseline: Some("lru"),
            pow2_ways_only: false,
            build: |s, w| Box::new(Dip::new(s, w, REGISTRY_SEED)),
            build_engine: |s, w| Dip::new(s, w, REGISTRY_SEED).into(),
        },
        PolicyEntry {
            name: "ship",
            baseline: None,
            pow2_ways_only: false,
            build: |s, w| Box::new(Ship::new(s, w)),
            build_engine: |s, w| Ship::new(s, w).into(),
        },
        PolicyEntry {
            name: "tship",
            baseline: Some("ship"),
            pow2_ways_only: false,
            build: |s, w| Box::new(TShip::new(s, w)),
            build_engine: |s, w| TShip::new(s, w).into(),
        },
        PolicyEntry {
            name: "mockingjay",
            baseline: None,
            pow2_ways_only: false,
            build: |s, w| Box::new(Mockingjay::new(s, w)),
            build_engine: |s, w| Mockingjay::new(s, w).into(),
        },
        PolicyEntry {
            name: "ptp",
            baseline: Some("lru"),
            pow2_ways_only: false,
            build: |s, w| Box::new(Ptp::new(s, w)),
            build_engine: |s, w| Ptp::new(s, w).into(),
        },
        PolicyEntry {
            name: "tdrrip",
            baseline: Some("srrip"),
            pow2_ways_only: false,
            build: |s, w| Box::new(Tdrrip::new(s, w, REGISTRY_SEED)),
            build_engine: |s, w| Tdrrip::new(s, w, REGISTRY_SEED).into(),
        },
        PolicyEntry {
            name: "xptp",
            baseline: Some("lru"),
            pow2_ways_only: false,
            build: |s, w| Box::new(Xptp::new(s, w, xptp_params_for(w))),
            build_engine: |s, w| Xptp::new(s, w, xptp_params_for(w)).into(),
        },
        PolicyEntry {
            name: "xptp/lru",
            baseline: Some("lru"),
            pow2_ways_only: false,
            build: |s, w| {
                Box::new(AdaptiveXptp::new(
                    s,
                    w,
                    xptp_params_for(w),
                    crate::adaptive::XptpSwitch::new(),
                ))
            },
            build_engine: |s, w| {
                AdaptiveXptp::new(s, w, xptp_params_for(w), crate::adaptive::XptpSwitch::new())
                    .into()
            },
        },
        PolicyEntry {
            name: "xptp+emissary",
            baseline: Some("lru"),
            pow2_ways_only: false,
            build: |s, w| Box::new(XptpEmissary::new(s, w, xptp_params_for(w))),
            build_engine: |s, w| XptpEmissary::new(s, w, xptp_params_for(w)).into(),
        },
    ]
}

/// Every TLB replacement policy in the workspace.
pub fn tlb_policies() -> Vec<PolicyEntry<TlbMeta>> {
    vec![
        PolicyEntry {
            name: "lru",
            baseline: None,
            pow2_ways_only: false,
            build: |s, w| Box::new(Lru::new(s, w)),
            build_engine: |s, w| Lru::new(s, w).into(),
        },
        PolicyEntry {
            name: "tree-plru",
            baseline: None,
            pow2_ways_only: true,
            build: |s, w| Box::new(TreePlru::new(s, w)),
            build_engine: |s, w| TreePlru::new(s, w).into(),
        },
        PolicyEntry {
            name: "random",
            baseline: None,
            pow2_ways_only: false,
            build: |_, w| Box::new(RandomEvict::new(w, REGISTRY_SEED)),
            build_engine: |_, w| RandomEvict::new(w, REGISTRY_SEED).into(),
        },
        PolicyEntry {
            name: "chirp",
            baseline: Some("lru"),
            pow2_ways_only: false,
            build: |s, w| Box::new(Chirp::new(s, w)),
            build_engine: |s, w| Chirp::new(s, w).into(),
        },
        PolicyEntry {
            name: "prob-keep-instr-lru",
            baseline: Some("lru"),
            pow2_ways_only: false,
            build: |s, w| Box::new(ProbKeepInstrLru::new(s, w, 0.5, REGISTRY_SEED)),
            build_engine: |s, w| ProbKeepInstrLru::new(s, w, 0.5, REGISTRY_SEED).into(),
        },
        PolicyEntry {
            name: "itp",
            baseline: Some("lru"),
            pow2_ways_only: false,
            build: |s, w| Box::new(Itp::new(s, w, itp_params_for(w))),
            build_engine: |s, w| Itp::new(s, w, itp_params_for(w)).into(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_match_built_policies() {
        for e in cache_policies() {
            assert_eq!((e.build)(16, 8).name(), e.name);
        }
        for e in tlb_policies() {
            assert_eq!((e.build)(16, 4).name(), e.name);
        }
    }

    #[test]
    fn baselines_resolve_within_the_registry() {
        let cache: Vec<_> = cache_policies();
        for e in &cache {
            if let Some(b) = e.baseline {
                assert!(cache.iter().any(|o| o.name == b), "{}: {b}", e.name);
            }
        }
        let tlb: Vec<_> = tlb_policies();
        for e in &tlb {
            if let Some(b) = e.baseline {
                assert!(tlb.iter().any(|o| o.name == b), "{}: {b}", e.name);
            }
        }
    }

    #[test]
    fn itp_params_fit_small_associativities() {
        for ways in 2..=16 {
            itp_params_for(ways).validate(ways);
        }
    }

    #[test]
    fn xptp_params_fit_small_associativities() {
        for ways in 1..=16 {
            let p = xptp_params_for(ways);
            assert!(p.k >= 1 && p.k <= ways);
        }
    }
}
