//! # The ASPLOS'25 contribution: iTP, xPTP, and adaptive iTP+xPTP
//!
//! This crate implements the replacement policies proposed by
//! *"Instruction-Aware Cooperative TLB and Cache Replacement Policies"*
//! (Chasapis, Vavouliotis, Jiménez, Casas — ASPLOS 2025):
//!
//! * [`Itp`] — **Instruction Translation Prioritization**, an STLB
//!   replacement policy that keeps instruction translations near the top of
//!   the recency stack and lets data translations leave quickly
//!   (Section 4.1, Figure 5).
//! * [`Xptp`] — **extended Page Table Prioritization**, an L2-cache
//!   replacement policy that protects blocks holding *data* page-table
//!   entries, absorbing the extra data page walks iTP causes
//!   (Section 4.2, Figure 6).
//! * [`AdaptiveXptp`] + [`StlbPressureMonitor`] — the phase-adaptive scheme
//!   that enables xPTP only while the STLB is under pressure
//!   (Section 4.3.1, Figure 7 step 5).
//! * [`Preset`] — the policy/structure assignment matrix of the paper's
//!   Table 2, used by the evaluation harness.
//!
//! The policy *implementations* live in `itpx-policy` (so the statically
//! dispatched [`itpx_policy::engine`] enums can name them without a
//! dependency cycle); this crate re-exports them and owns the evaluation
//! matrix ([`Preset`]) and the [`registry`]. The policies plug into any
//! structure that speaks the [`itpx_policy::Policy`] trait — in this
//! workspace, the TLBs of `itpx-vm` and the caches of `itpx-mem`.
//!
//! # Examples
//!
//! Drive iTP by hand and watch it let data translations leave quickly:
//!
//! ```
//! use itpx_core::{Itp, ItpParams};
//! use itpx_policy::{Policy, TlbMeta};
//! use itpx_types::TranslationKind;
//!
//! let mut itp = Itp::new(1, 12, ItpParams::default());
//! // A data translation inserts at the very bottom of the stack...
//! itp.on_fill(0, 3, &TlbMeta::demand(100, TranslationKind::Data));
//! // ...so it is the next victim.
//! assert_eq!(itp.victim(0, &TlbMeta::demand(101, TranslationKind::Data)), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod presets;
pub mod registry;

pub use itpx_policy::{adaptive, extension, itp, xptp};

pub use adaptive::{AdaptiveXptp, StlbPressureMonitor, XptpSwitch};
pub use extension::XptpEmissary;
pub use itp::{Itp, ItpParams};
pub use presets::{LlcChoice, PolicyBundle, Preset};
pub use registry::{cache_policies, tlb_policies, PolicyEntry};
pub use xptp::{Xptp, XptpParams};
