//! The policy/structure assignment matrix of the paper's Table 2.
//!
//! Each [`Preset`] names one row of Table 2: which replacement policy runs
//! at the STLB and which at the L2C (L1s always use LRU, the LLC policy is
//! chosen independently via [`LlcChoice`] for the Section 6.3 sensitivity
//! study). [`Preset::build`] manufactures the concrete policy objects sized
//! for a given system configuration.

use crate::adaptive::{AdaptiveXptp, StlbPressureMonitor, XptpSwitch};
use crate::itp::{Itp, ItpParams};
use crate::xptp::{Xptp, XptpParams};
use itpx_policy::{
    CachePolicyEngine, Chirp, Lru, Mockingjay, Ptp, Ship, TShip, Tdrrip, TlbPolicyEngine,
};
use itpx_types::fingerprint::{Fingerprint, Fnv1a};

/// One row of the paper's Table 2: the (STLB policy, L2C policy) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Preset {
    /// LRU everywhere — the baseline all speedups are measured against.
    Lru,
    /// T-DRRIP at L2C (Vasudha & Panda).
    Tdrrip,
    /// PTP at L2C (Park et al.).
    Ptp,
    /// CHiRP at STLB (Mirbagher-Ajorpaz et al.).
    Chirp,
    /// CHiRP at STLB + T-DRRIP at L2C.
    ChirpTdrrip,
    /// CHiRP at STLB + PTP at L2C.
    ChirpPtp,
    /// iTP at STLB (Section 4.1) — the paper's first proposal.
    Itp,
    /// iTP at STLB + T-DRRIP at L2C.
    ItpTdrrip,
    /// iTP at STLB + PTP at L2C.
    ItpPtp,
    /// iTP at STLB + adaptive xPTP at L2C (Section 4.3) — the paper's
    /// headline proposal.
    ItpXptp,
    /// iTP at STLB + xPTP at L2C with the adaptive switch forced on
    /// (ablation of the Section 4.3.1 mechanism; not a Table 2 row).
    ItpXptpStatic,
    /// iTP at STLB + xPTP-with-Emissary-style code preservation at L2C —
    /// the extension the paper's Section 7 conjectures (not a Table 2
    /// row; see [`crate::XptpEmissary`]).
    ItpXptpEmissary,
}

impl Preset {
    /// The nine Table 2 rows the evaluation sweeps (Figure 8), in paper
    /// order, plus the LRU baseline at the front.
    pub const EVALUATED: [Preset; 10] = [
        Preset::Lru,
        Preset::Tdrrip,
        Preset::Ptp,
        Preset::Chirp,
        Preset::ChirpTdrrip,
        Preset::ChirpPtp,
        Preset::Itp,
        Preset::ItpTdrrip,
        Preset::ItpPtp,
        Preset::ItpXptp,
    ];

    /// Stable display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Preset::Lru => "LRU",
            Preset::Tdrrip => "TDRRIP",
            Preset::Ptp => "PTP",
            Preset::Chirp => "CHiRP",
            Preset::ChirpTdrrip => "CHiRP+TDRRIP",
            Preset::ChirpPtp => "CHiRP+PTP",
            Preset::Itp => "iTP",
            Preset::ItpTdrrip => "iTP+TDRRIP",
            Preset::ItpPtp => "iTP+PTP",
            Preset::ItpXptp => "iTP+xPTP",
            Preset::ItpXptpStatic => "iTP+xPTP(static)",
            Preset::ItpXptpEmissary => "iTP+xPTP+E",
        }
    }

    /// `true` if this preset runs iTP at the STLB.
    pub fn uses_itp(self) -> bool {
        matches!(
            self,
            Preset::Itp
                | Preset::ItpTdrrip
                | Preset::ItpPtp
                | Preset::ItpXptp
                | Preset::ItpXptpStatic
                | Preset::ItpXptpEmissary
        )
    }

    /// Builds the concrete policy objects for this preset.
    pub fn build(self, dims: &StructureDims, cfg: &BuildConfig) -> PolicyBundle {
        let (ss, sw) = dims.stlb;
        let (ls, lw) = dims.l2c;
        let stlb: TlbPolicyEngine = match self {
            Preset::Lru | Preset::Tdrrip | Preset::Ptp => Lru::new(ss, sw).into(),
            Preset::Chirp | Preset::ChirpTdrrip | Preset::ChirpPtp => Chirp::new(ss, sw).into(),
            Preset::Itp
            | Preset::ItpTdrrip
            | Preset::ItpPtp
            | Preset::ItpXptp
            | Preset::ItpXptpStatic
            | Preset::ItpXptpEmissary => Itp::new(ss, sw, cfg.itp).into(),
        };
        let mut monitor = None;
        let l2c: CachePolicyEngine = match self {
            Preset::Lru | Preset::Chirp | Preset::Itp => Lru::new(ls, lw).into(),
            Preset::Tdrrip | Preset::ChirpTdrrip | Preset::ItpTdrrip => {
                Tdrrip::new(ls, lw, cfg.seed ^ 0x7d2).into()
            }
            Preset::Ptp | Preset::ChirpPtp | Preset::ItpPtp => Ptp::new(ls, lw).into(),
            Preset::ItpXptp => {
                let switch = XptpSwitch::new();
                monitor = Some(StlbPressureMonitor::with_params(
                    switch.clone(),
                    cfg.epoch_instructions,
                    cfg.t1,
                ));
                AdaptiveXptp::new(ls, lw, cfg.xptp, switch).into()
            }
            Preset::ItpXptpStatic => Xptp::new(ls, lw, cfg.xptp).into(),
            Preset::ItpXptpEmissary => crate::extension::XptpEmissary::new(ls, lw, cfg.xptp).into(),
        };
        let (cs, cw) = dims.llc;
        let llc: CachePolicyEngine = match cfg.llc {
            LlcChoice::Lru => Lru::new(cs, cw).into(),
            LlcChoice::Ship => Ship::new(cs, cw).into(),
            LlcChoice::Mockingjay => Mockingjay::new(cs, cw).into(),
            LlcChoice::TShip => TShip::new(cs, cw).into(),
        };
        PolicyBundle {
            stlb,
            l2c,
            llc,
            monitor,
        }
    }
}

impl std::fmt::Display for Preset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The LLC replacement policy, swept independently in Section 6.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LlcChoice {
    /// True LRU (the default everywhere else in the evaluation).
    #[default]
    Lru,
    /// SHiP (Wu et al., MICRO'11).
    Ship,
    /// Simplified Mockingjay (Shah et al., HPCA'22).
    Mockingjay,
    /// T-SHiP (Vasudha & Panda, ISPASS'22) — the LLC half of the original
    /// T-DRRIP+T-SHiP proposal; an extension beyond the paper's Table 2.
    TShip,
}

impl LlcChoice {
    /// The three LLC policies of Figure 11.
    pub const ALL: [LlcChoice; 3] = [LlcChoice::Lru, LlcChoice::Ship, LlcChoice::Mockingjay];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            LlcChoice::Lru => "LRU",
            LlcChoice::Ship => "SHiP",
            LlcChoice::Mockingjay => "Mockingjay",
            LlcChoice::TShip => "T-SHiP",
        }
    }
}

impl Fingerprint for Preset {
    fn fingerprint(&self, h: &mut Fnv1a) {
        // The stable display name doubles as the cache-key identity.
        h.write_str(self.name());
    }
}

impl Fingerprint for LlcChoice {
    fn fingerprint(&self, h: &mut Fnv1a) {
        // The stable display name doubles as the cache-key identity.
        h.write_str(self.name());
    }
}

/// (sets, ways) of each structure a preset needs to size its policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StructureDims {
    /// STLB geometry.
    pub stlb: (usize, usize),
    /// L2 cache geometry.
    pub l2c: (usize, usize),
    /// Last-level cache geometry.
    pub llc: (usize, usize),
}

/// Knobs shared by every preset build.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BuildConfig {
    /// iTP parameters (Table 1 defaults).
    pub itp: ItpParams,
    /// xPTP parameters (Table 1 defaults).
    pub xptp: XptpParams,
    /// Adaptive-monitor epoch length in retired instructions.
    pub epoch_instructions: u64,
    /// Adaptive-monitor STLB-miss threshold `T1`.
    pub t1: u64,
    /// LLC replacement policy.
    pub llc: LlcChoice,
    /// Seed for stochastic policies (BRRIP's bimodal throttle).
    pub seed: u64,
}

impl Default for BuildConfig {
    fn default() -> Self {
        Self {
            itp: ItpParams::default(),
            xptp: XptpParams::default(),
            epoch_instructions: crate::adaptive::DEFAULT_EPOCH_INSTRUCTIONS,
            t1: crate::adaptive::DEFAULT_T1,
            llc: LlcChoice::Lru,
            seed: 0x1735_c0de,
        }
    }
}

impl Fingerprint for BuildConfig {
    fn fingerprint(&self, h: &mut Fnv1a) {
        h.write_usize(self.itp.n);
        h.write_usize(self.itp.m);
        h.write_u32(self.itp.freq_bits);
        h.write_usize(self.xptp.k);
        h.write_u64(self.epoch_instructions);
        h.write_u64(self.t1);
        self.llc.fingerprint(h);
        h.write_u64(self.seed);
    }
}

/// The concrete policy objects for one simulated system.
///
/// The fields are enum-dispatched engines so `Cache`/`Tlb` can inline
/// policy calls; boxed policies still fit via the engines' `Dyn` variant
/// (`CachePolicyEngine::from(boxed)` or `::boxed(policy)`).
#[derive(Debug)]
pub struct PolicyBundle {
    /// STLB replacement policy.
    pub stlb: TlbPolicyEngine,
    /// L2C replacement policy.
    pub l2c: CachePolicyEngine,
    /// LLC replacement policy.
    pub llc: CachePolicyEngine,
    /// The STLB-pressure monitor, present only for [`Preset::ItpXptp`]; the
    /// simulated system feeds it retired-instruction and STLB-miss events.
    pub monitor: Option<StlbPressureMonitor>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use itpx_policy::Policy;

    fn dims() -> StructureDims {
        StructureDims {
            stlb: (128, 12),
            l2c: (1024, 8),
            llc: (2048, 16),
        }
    }

    #[test]
    fn table2_policy_names_per_structure() {
        let cfg = BuildConfig::default();
        let cases: [(Preset, &str, &str); 10] = [
            (Preset::Lru, "lru", "lru"),
            (Preset::Tdrrip, "lru", "tdrrip"),
            (Preset::Ptp, "lru", "ptp"),
            (Preset::Chirp, "chirp", "lru"),
            (Preset::ChirpTdrrip, "chirp", "tdrrip"),
            (Preset::ChirpPtp, "chirp", "ptp"),
            (Preset::Itp, "itp", "lru"),
            (Preset::ItpTdrrip, "itp", "tdrrip"),
            (Preset::ItpPtp, "itp", "ptp"),
            (Preset::ItpXptp, "itp", "xptp/lru"),
        ];
        for (preset, stlb, l2c) in cases {
            let b = preset.build(&dims(), &cfg);
            assert_eq!(b.stlb.name(), stlb, "{preset}");
            assert_eq!(b.l2c.name(), l2c, "{preset}");
            assert_eq!(b.llc.name(), "lru", "{preset}");
        }
    }

    #[test]
    fn only_itp_xptp_gets_a_monitor() {
        let cfg = BuildConfig::default();
        for p in Preset::EVALUATED {
            let b = p.build(&dims(), &cfg);
            assert_eq!(b.monitor.is_some(), p == Preset::ItpXptp, "{p}");
        }
    }

    #[test]
    fn monitor_drives_the_built_policy() {
        let cfg = BuildConfig::default();
        let b = Preset::ItpXptp.build(&dims(), &cfg);
        let mut mon = b.monitor.expect("monitor");
        assert!(!mon.switch().is_enabled());
        for _ in 0..10 {
            mon.on_stlb_miss();
        }
        mon.on_retire(cfg.epoch_instructions);
        assert!(mon.switch().is_enabled());
    }

    #[test]
    fn llc_choices_build() {
        for llc in LlcChoice::ALL {
            let cfg = BuildConfig {
                llc,
                ..BuildConfig::default()
            };
            let b = Preset::Itp.build(&dims(), &cfg);
            let expect = match llc {
                LlcChoice::Lru => "lru",
                LlcChoice::Ship => "ship",
                LlcChoice::Mockingjay => "mockingjay",
                LlcChoice::TShip => "tship",
            };
            assert_eq!(b.llc.name(), expect);
        }
    }

    #[test]
    fn evaluated_contains_paper_order() {
        assert_eq!(Preset::EVALUATED.len(), 10);
        assert_eq!(Preset::EVALUATED[0], Preset::Lru);
        assert_eq!(Preset::EVALUATED[9], Preset::ItpXptp);
    }

    #[test]
    fn uses_itp_flags() {
        assert!(Preset::ItpXptp.uses_itp());
        assert!(Preset::Itp.uses_itp());
        assert!(!Preset::Chirp.uses_itp());
        assert!(!Preset::Lru.uses_itp());
    }

    #[test]
    fn static_variant_builds_plain_xptp() {
        let b = Preset::ItpXptpStatic.build(&dims(), &BuildConfig::default());
        assert_eq!(b.l2c.name(), "xptp");
        assert!(b.monitor.is_none());
    }
}
