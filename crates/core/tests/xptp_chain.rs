//! xPTP's Figure 6 semantics inside the real level chain: under L2C
//! eviction pressure, data-PTE blocks outlive payload blocks while the
//! switch is on, and are evicted in plain recency order while it is off.
//!
//! The policy-level unit tests in `core/src/adaptive.rs` drive the
//! victim selector directly; this test goes through `Hierarchy` instead,
//! so the PTE `Type` bits are set by real `pte_access` traffic and the
//! pressure comes from real demand fills walking the chain.

use itpx_core::{AdaptiveXptp, XptpParams, XptpSwitch};
use itpx_mem::hierarchy::{HierarchyPolicies, LevelHooks};
use itpx_mem::{Hierarchy, HierarchyConfig};
use itpx_policy::Lru;
use itpx_types::{Cycle, LevelId, PhysAddr, ThreadId, TranslationKind};

/// The L2C set the test targets. The chain has no frame allocator in the
/// way — physical addresses are chosen directly, so `block % 1024` pins
/// the set.
const TARGET_SET: u64 = 17;
/// L2C set count in `HierarchyConfig::asplos25()`.
const L2C_SETS: u64 = 1024;

/// A paper-shaped chain with an adaptive-xPTP L2C driven by `switch`
/// and prefetch hooks detached (hooks inject timing-driven fills that
/// would blur the eviction accounting).
fn chain_with(switch: XptpSwitch) -> Hierarchy {
    let cfg = HierarchyConfig::asplos25();
    let policies = HierarchyPolicies {
        l1i: Lru::new(64, 8).into(),
        l1d: Lru::new(64, 8).into(),
        l2: AdaptiveXptp::new(1024, 8, XptpParams::default(), switch).into(),
        llc: Lru::new(2048, 16).into(),
    };
    let mut chain = Hierarchy::new(&cfg, policies);
    for id in [LevelId::L1I, LevelId::L1D, LevelId::L2C, LevelId::Llc] {
        assert!(chain.set_hooks(id, LevelHooks::none()));
    }
    chain
}

/// The physical address of the `i`-th block landing in [`TARGET_SET`].
fn block_in_target_set(i: u64) -> PhysAddr {
    PhysAddr::new((TARGET_SET + i * L2C_SETS) << 6)
}

/// Fills [`TARGET_SET`] with 3 data PTEs, then pours 40 distinct payload
/// blocks through the same set; returns how many PTE blocks survived and
/// the chain itself for further assertions.
fn run_pressure(switch: XptpSwitch) -> (usize, Hierarchy) {
    let mut chain = chain_with(switch);
    let mut now: Cycle = 1;
    let pte_blocks: Vec<PhysAddr> = (0..3).map(block_in_target_set).collect();
    for pa in &pte_blocks {
        chain.pte_access(*pa, TranslationKind::Data, ThreadId(0), now);
        now += 1_000;
    }
    for j in 0..40 {
        // Loads only: clean L1D evictions, so the L2C set sees pure
        // demand-fill pressure.
        let pa = block_in_target_set(100 + j);
        chain.data_access(pa, 0x4000 + j, ThreadId(0), false, false, now);
        now += 1_000;
    }
    let l2c = chain
        .levels()
        .find(|(id, _)| *id == LevelId::L2C)
        .map(|(_, cache)| cache)
        .expect("the paper chain has an L2C");
    let survivors = pte_blocks
        .iter()
        .filter(|pa| l2c.contains(pa.block().index()))
        .count();
    (survivors, chain)
}

#[test]
fn enabled_xptp_keeps_data_ptes_resident_under_pressure() {
    let switch = XptpSwitch::new();
    switch.set(true);
    let (survivors, chain) = run_pressure(switch);
    assert_eq!(
        survivors, 3,
        "with xPTP on, every data PTE must outlive the payload storm"
    );
    let l2c = chain
        .levels()
        .find(|(id, _)| *id == LevelId::L2C)
        .map(|(_, cache)| cache)
        .expect("chain has an L2C");
    assert!(
        l2c.evictions() >= 30,
        "the payload storm must actually overflow the set \
         (got {} evictions)",
        l2c.evictions()
    );
}

#[test]
fn disabled_xptp_degenerates_to_lru_and_evicts_the_ptes() {
    let switch = XptpSwitch::new(); // off: plain LRU victim selection
    let (survivors, _) = run_pressure(switch);
    assert_eq!(
        survivors, 0,
        "with xPTP off, the PTEs are the coldest blocks and LRU evicts them"
    );
}

#[test]
fn flipping_the_switch_mid_run_changes_protection_immediately() {
    // Same pressure pattern, but the switch turns on only after the PTEs
    // have already been filled: the Type bits recorded while "off" must
    // still protect the blocks (paper Section 4.3.1 — no state is lost
    // across phase changes).
    let switch = XptpSwitch::new();
    let mut chain = chain_with(switch.clone());
    let mut now: Cycle = 1;
    let pte_blocks: Vec<PhysAddr> = (0..3).map(block_in_target_set).collect();
    for pa in &pte_blocks {
        chain.pte_access(*pa, TranslationKind::Data, ThreadId(0), now);
        now += 1_000;
    }
    switch.set(true);
    for j in 0..40 {
        let pa = block_in_target_set(100 + j);
        chain.data_access(pa, 0x4000 + j, ThreadId(0), false, false, now);
        now += 1_000;
    }
    let l2c = chain
        .levels()
        .find(|(id, _)| *id == LevelId::L2C)
        .map(|(_, cache)| cache)
        .expect("chain has an L2C");
    let survivors = pte_blocks
        .iter()
        .filter(|pa| l2c.contains(pa.block().index()))
        .count();
    assert_eq!(survivors, 3, "Type bits set before the phase change hold");
}
