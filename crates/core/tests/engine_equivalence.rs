//! Dyn-vs-enum equivalence: for every policy in the registry, the boxed
//! trait-object build and the enum-engine build must be the *same policy*
//! — identical victim decisions on every eviction, identical hit/fill
//! bookkeeping (both are driven in lockstep by a shared tag array, so a
//! divergent decision surfaces immediately), and identical final
//! `meta_bits`. The engine refactor changes how policies are dispatched,
//! never what they decide; this suite pins that for each registered name.
//!
//! A companion coverage test asserts no registry entry falls back to the
//! engines' `Dyn` escape hatch — every in-tree policy must have (and use)
//! its own inlined variant.

use itpx_core::registry::{cache_policies, tlb_policies};
use itpx_policy::{CacheMeta, Policy, TlbMeta};
use itpx_types::{FillClass, Rng64, ThreadId, TranslationKind};
use proptest::prelude::*;

/// Geometry every registered policy supports (tree-PLRU needs pow2 ways).
const SETS: usize = 32;
const WAYS: usize = 8;
/// Accesses per policy pair: enough churn to exercise victim paths,
/// set-dueling leaders, and predictor training for every policy.
const ACCESSES: usize = 10_000;

/// Drives `a` and `b` in lockstep over one access stream against a shared
/// tag array (decisions must match, so one array serves both), asserting
/// identical victim choices at every eviction and identical `meta_bits`
/// at the end.
fn assert_lockstep<M: Copy, A: Policy<M>, B: Policy<M>>(
    name: &str,
    a: &mut A,
    b: &mut B,
    stream: &[M],
    key: fn(&M) -> u64,
) {
    assert_eq!(a.name(), b.name(), "{name}: name() diverges");
    let mut contents: Vec<Vec<Option<u64>>> = vec![vec![None; WAYS]; SETS];
    for (i, m) in stream.iter().enumerate() {
        let k = key(m);
        let set = (k as usize) % SETS;
        if let Some(way) = contents[set].iter().position(|&c| c == Some(k)) {
            a.on_hit(set, way, m);
            b.on_hit(set, way, m);
        } else {
            let way = match contents[set].iter().position(|c| c.is_none()) {
                Some(free) => free,
                None => {
                    let va = a.victim(set, m);
                    let vb = b.victim(set, m);
                    assert_eq!(va, vb, "{name}: victim diverges at access {i}, set {set}");
                    assert!(va < WAYS, "{name}: victim {va} out of range");
                    a.on_evict(set, va);
                    b.on_evict(set, va);
                    va
                }
            };
            contents[set][way] = Some(k);
            a.on_fill(set, way, m);
            b.on_fill(set, way, m);
        }
    }
    assert_eq!(
        a.meta_bits(SETS, WAYS),
        b.meta_bits(SETS, WAYS),
        "{name}: meta_bits diverges after {ACCESSES} accesses"
    );
}

/// A reusing cache access stream covering all four fill classes and both
/// `stlb_miss` values.
fn cache_stream(seed: u64, len: usize) -> Vec<CacheMeta> {
    let mut rng = Rng64::new(seed);
    (0..len)
        .map(|_| {
            let block = rng.below((SETS * WAYS * 4) as u64);
            let fill = match rng.below(8) {
                0 => FillClass::InstrPte,
                1 => FillClass::DataPte,
                2 | 3 => FillClass::InstrPayload,
                _ => FillClass::DataPayload,
            };
            CacheMeta {
                pc: block * 13 + 7,
                stlb_miss: rng.chance(0.25),
                ..CacheMeta::demand(block, fill)
            }
        })
        .collect()
}

/// A reusing TLB access stream mixing instruction and data translations.
fn tlb_stream(seed: u64, len: usize) -> Vec<TlbMeta> {
    let mut rng = Rng64::new(seed);
    (0..len)
        .map(|_| {
            let vpn = rng.below((SETS * WAYS * 4) as u64);
            let kind = if rng.chance(0.4) {
                TranslationKind::Instruction
            } else {
                TranslationKind::Data
            };
            TlbMeta {
                vpn,
                pc: vpn * 29 + 3,
                kind,
                thread: ThreadId(0),
            }
        })
        .collect()
}

#[test]
fn every_cache_policy_builds_identically() {
    let stream = cache_stream(0xe9c1_5eed, ACCESSES);
    for e in cache_policies() {
        assert!(
            e.supports_ways(WAYS),
            "{}: pick a supported geometry",
            e.name
        );
        let mut dyn_build = (e.build)(SETS, WAYS);
        let mut engine = (e.build_engine)(SETS, WAYS);
        assert_lockstep(e.name, &mut dyn_build, &mut engine, &stream, |m| m.block);
    }
}

#[test]
fn every_tlb_policy_builds_identically() {
    let stream = tlb_stream(0x71b5_eed5, ACCESSES);
    for e in tlb_policies() {
        assert!(
            e.supports_ways(WAYS),
            "{}: pick a supported geometry",
            e.name
        );
        let mut dyn_build = (e.build)(SETS, WAYS);
        let mut engine = (e.build_engine)(SETS, WAYS);
        assert_lockstep(e.name, &mut dyn_build, &mut engine, &stream, |m| m.vpn);
    }
}

/// No registered policy may dispatch through the engines' `Dyn` escape
/// hatch: the enum variant list (in `itpx_policy::engine`) must cover the
/// registry, which is the single source of truth for "every policy".
#[test]
fn engine_covers_registry() {
    for e in cache_policies() {
        assert!(
            !(e.build_engine)(SETS, WAYS).is_dyn(),
            "cache policy {} has no engine variant",
            e.name
        );
    }
    for e in tlb_policies() {
        assert!(
            !(e.build_engine)(SETS, WAYS).is_dyn(),
            "tlb policy {} has no engine variant",
            e.name
        );
    }
}

proptest! {
    /// Randomized streams agree too, not just the fixed seed above (the
    /// registry proptest the engine refactor promises: both construction
    /// forms are behaviorally identical).
    #[test]
    fn constructions_agree_on_random_streams(seed in any::<u64>()) {
        let cache = cache_stream(seed, 2_000);
        for e in cache_policies() {
            assert_lockstep(
                e.name,
                &mut (e.build)(SETS, WAYS),
                &mut (e.build_engine)(SETS, WAYS),
                &cache,
                |m| m.block,
            );
        }
        let tlb = tlb_stream(seed ^ 0x7b1, 2_000);
        for e in tlb_policies() {
            assert_lockstep(
                e.name,
                &mut (e.build)(SETS, WAYS),
                &mut (e.build_engine)(SETS, WAYS),
                &tlb,
                |m| m.vpn,
            );
        }
    }
}
