//! Property harness: every registered policy, driven through a
//! protocol-correct randomized access stream under
//! [`itpx_policy::CheckedPolicy`], never violates the replacement-policy
//! contract (victims in range and valid, fills into free ways, paired
//! evictions).
//!
//! This is the debug-build twin of `cargo xtask analyze`'s contract pass
//! (`crates/xtask/src/contracts.rs`): proptest shrinks a failing stream to
//! a small seed here, while the xtask pass hammers longer streams in
//! release mode. Streams are generated from [`itpx_types::Rng64`] so a
//! failing case is reproducible from its printed seed alone.

use itpx_core::registry::{cache_policies, tlb_policies, PolicyEntry};
use itpx_policy::{CacheMeta, CheckedPolicy, Policy, TlbMeta};
use itpx_types::{FillClass, Rng64, ThreadId, TranslationKind};
use proptest::prelude::*;

/// Small geometries shrink-friendly enough for proptest while still
/// exercising set collisions and the paper's 12-way STLB associativity.
const GEOMETRIES: &[(usize, usize)] = &[(2, 2), (4, 4), (8, 8), (2, 12)];

const OPS: usize = 400;

fn tlb_meta(rng: &mut Rng64) -> TlbMeta {
    TlbMeta {
        vpn: rng.below(1 << 12),
        pc: rng.below(1 << 16) << 2,
        kind: if rng.chance(0.5) {
            TranslationKind::Instruction
        } else {
            TranslationKind::Data
        },
        thread: ThreadId(0),
    }
}

fn cache_meta(rng: &mut Rng64) -> CacheMeta {
    let fill = match rng.below(4) {
        0 => FillClass::InstrPayload,
        1 => FillClass::DataPayload,
        2 => FillClass::InstrPte,
        _ => FillClass::DataPte,
    };
    CacheMeta {
        block: rng.below(1 << 16),
        pc: rng.below(1 << 16) << 2,
        stlb_miss: rng.chance(0.2),
        ..CacheMeta::demand(0, fill)
    }
}

/// Drives one policy under `CheckedPolicy`. In debug builds any contract
/// violation panics inside the wrapper (surfacing as a test failure with
/// the offending seed); the returned list covers release-mode runs.
fn drive<M: Copy>(
    inner: Box<dyn Policy<M>>,
    sets: usize,
    ways: usize,
    seed: u64,
    mut gen_meta: impl FnMut(&mut Rng64) -> M,
) -> Vec<String> {
    let mut p = CheckedPolicy::new(inner, sets, ways);
    let mut rng = Rng64::new(seed);
    let mut resident: Vec<Vec<Option<M>>> = vec![vec![None; ways]; sets];
    for _ in 0..OPS {
        let set = rng.index(sets);
        let occupied: Vec<usize> = (0..ways).filter(|&w| resident[set][w].is_some()).collect();
        let roll = rng.below(100);
        if roll < 50 && !occupied.is_empty() {
            let way = occupied[rng.index(occupied.len())];
            let meta = resident[set][way].expect("way is occupied");
            p.on_hit(set, way, &meta);
        } else if roll < 95 {
            let meta = gen_meta(&mut rng);
            if occupied.len() < ways {
                let free: Vec<usize> = (0..ways).filter(|&w| resident[set][w].is_none()).collect();
                let way = free[rng.index(free.len())];
                p.on_fill(set, way, &meta);
                resident[set][way] = Some(meta);
            } else {
                let v = p.victim(set, &meta);
                if v >= ways {
                    break; // violation already recorded by the wrapper
                }
                Policy::<M>::on_evict(&mut p, set, v);
                p.on_fill(set, v, &meta);
                resident[set][v] = Some(meta);
            }
        } else if !occupied.is_empty() {
            let way = occupied[rng.index(occupied.len())];
            Policy::<M>::on_evict(&mut p, set, way);
            resident[set][way] = None;
        }
    }
    p.take_violations()
}

fn check_all<M: Copy + itpx_policy::PolicyMeta>(
    entries: &[PolicyEntry<M>],
    seed: u64,
    gen_meta: fn(&mut Rng64) -> M,
) -> Result<(), TestCaseError> {
    for &(sets, ways) in GEOMETRIES {
        for e in entries {
            if !e.supports_ways(ways) {
                continue;
            }
            let v = drive((e.build)(sets, ways), sets, ways, seed, gen_meta);
            prop_assert!(
                v.is_empty(),
                "{} at {sets}x{ways}, seed {seed:#x}: {v:?}",
                e.name
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tlb_policies_honor_the_contract(seed in any::<u64>()) {
        check_all(&tlb_policies(), seed, tlb_meta)?;
    }

    #[test]
    fn cache_policies_honor_the_contract(seed in any::<u64>()) {
        check_all(&cache_policies(), seed, cache_meta)?;
    }
}

/// Pinned-seed smoke run so the harness exercises every policy even if a
/// proptest shim ever degenerates to zero cases.
#[test]
fn pinned_seed_drive_is_clean() {
    check_all(&tlb_policies(), 0xA11CE, tlb_meta).expect("TLB drive clean");
    check_all(&cache_policies(), 0xB0B, cache_meta).expect("cache drive clean");
}
