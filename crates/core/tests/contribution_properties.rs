//! Property tests for the paper's policies: the Figure 5/6 flowchart rules
//! hold under arbitrary access sequences.

use itpx_core::{AdaptiveXptp, Itp, ItpParams, Xptp, XptpParams, XptpSwitch};
use itpx_policy::{CacheMeta, Policy, TlbMeta};
use itpx_types::{FillClass, TranslationKind};
use proptest::prelude::*;

const SETS: usize = 2;
const WAYS: usize = 12;

fn tlb_meta(instr: bool, i: u64) -> TlbMeta {
    TlbMeta {
        vpn: i,
        pc: i * 5,
        kind: if instr {
            TranslationKind::Instruction
        } else {
            TranslationKind::Data
        },
        thread: itpx_types::ThreadId(0),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn itp_insertion_rules_always_hold(
        ops in prop::collection::vec((0usize..SETS, 0usize..WAYS, any::<bool>(), any::<bool>()), 1..150)
    ) {
        let params = ItpParams::default();
        let mut itp = Itp::new(SETS, WAYS, params);
        for (i, &(set, way, instr, hit)) in ops.iter().enumerate() {
            let m = tlb_meta(instr, i as u64);
            if hit {
                itp.on_hit(set, way, &m);
                if instr {
                    // Hits promote to MRUpos only with a saturated counter,
                    // otherwise exactly to depth N.
                    let d = itp.depth_of(set, way);
                    prop_assert!(d == 0 || d == params.n, "instr hit depth {d}");
                } else {
                    prop_assert_eq!(itp.depth_of(set, way), WAYS - 1 - params.m);
                    prop_assert_eq!(itp.freq_of(set, way), 0);
                }
            } else {
                itp.on_fill(set, way, &m);
                if instr {
                    prop_assert_eq!(itp.depth_of(set, way), params.n);
                    prop_assert_eq!(itp.freq_of(set, way), 0);
                } else {
                    prop_assert_eq!(itp.depth_of(set, way), WAYS - 1);
                }
            }
            prop_assert!(itp.freq_of(set, way) <= params.freq_max());
            // Eviction is always the LRU position.
            let v = itp.victim(set, &m);
            prop_assert_eq!(itp.depth_of(set, v), WAYS - 1);
        }
    }

    #[test]
    fn itp_mru_is_reserved_for_saturated_instructions(
        hits in 1usize..20
    ) {
        let params = ItpParams::default();
        let mut itp = Itp::new(1, WAYS, params);
        let m = tlb_meta(true, 1);
        itp.on_fill(0, 0, &m);
        for h in 0..hits {
            itp.on_hit(0, 0, &m);
            let expect_mru = h as u32 >= params.freq_max() as u32;
            prop_assert_eq!(
                itp.depth_of(0, 0) == 0,
                expect_mru,
                "hit {} depth {}",
                h,
                itp.depth_of(0, 0)
            );
        }
    }

    #[test]
    fn xptp_never_evicts_protected_data_pte(
        fills in prop::collection::vec((0usize..8, any::<bool>()), 8..80)
    ) {
        // 8-way cache with paper-default K=8: strict protection.
        let mut x = Xptp::new(1, 8, XptpParams::default());
        let mut is_pte = [false; 8];
        for (i, &(way, pte)) in fills.iter().enumerate() {
            let fill = if pte { FillClass::DataPte } else { FillClass::DataPayload };
            x.on_fill(0, way, &CacheMeta::demand(i as u64, fill));
            is_pte[way] = pte;
            let v = x.victim(0, &CacheMeta::demand(999, FillClass::DataPayload));
            if is_pte.iter().any(|&p| !p) {
                prop_assert!(!is_pte[v], "evicted data PTE while payload present");
            }
        }
    }

    #[test]
    fn adaptive_xptp_matches_lru_when_disabled(
        fills in prop::collection::vec(0usize..8, 8..60)
    ) {
        let switch = XptpSwitch::new(); // off
        let mut a = AdaptiveXptp::new(1, 8, XptpParams::default(), switch);
        let mut l = itpx_policy::Lru::new(1, 8);
        for (i, &way) in fills.iter().enumerate() {
            let m = CacheMeta::demand(i as u64, if i % 3 == 0 { FillClass::DataPte } else { FillClass::DataPayload });
            a.on_fill(0, way, &m);
            l.on_fill(0, way, &m);
            let va = a.victim(0, &m);
            let vl = Policy::<CacheMeta>::victim(&mut l, 0, &m);
            prop_assert_eq!(va, vl, "disabled adaptive xPTP must equal LRU");
        }
    }
}
