//! Name-stability tests: every policy name is unique within its structure
//! class, `name()` agrees with the registry, and the preset table only
//! builds registered policies. Reports (`docs/hardware-budget.md`, the
//! evaluation CSVs) key on these strings, so renames are breaking changes.

use itpx_core::presets::{BuildConfig, LlcChoice, Preset, StructureDims};
use itpx_core::registry::{cache_policies, tlb_policies};
use itpx_policy::Policy;
use std::collections::BTreeSet;

fn dims() -> StructureDims {
    StructureDims {
        stlb: (128, 12),
        l2c: (1024, 8),
        llc: (2048, 16),
    }
}

#[test]
fn cache_registry_names_are_unique() {
    let mut seen = BTreeSet::new();
    for e in cache_policies() {
        assert!(
            seen.insert(e.name),
            "duplicate cache policy name {}",
            e.name
        );
    }
}

#[test]
fn tlb_registry_names_are_unique() {
    let mut seen = BTreeSet::new();
    for e in tlb_policies() {
        assert!(seen.insert(e.name), "duplicate TLB policy name {}", e.name);
    }
}

#[test]
fn built_policies_report_their_registry_name() {
    for e in cache_policies() {
        let built = (e.build)(16, 8);
        assert_eq!(built.name(), e.name, "cache registry/name mismatch");
    }
    for e in tlb_policies() {
        let built = (e.build)(16, 4);
        assert_eq!(built.name(), e.name, "TLB registry/name mismatch");
    }
}

/// The registry must cover everything the preset table can build: every
/// policy name a preset produces resolves to a registry entry, so the
/// budget audit and contract drive cannot silently skip a preset policy.
#[test]
fn preset_table_builds_only_registered_policies() {
    let tlb_names: BTreeSet<&str> = tlb_policies().iter().map(|e| e.name).collect();
    let cache_names: BTreeSet<&str> = cache_policies().iter().map(|e| e.name).collect();
    let presets = [
        Preset::EVALUATED.as_slice(),
        &[Preset::ItpXptpStatic, Preset::ItpXptpEmissary],
    ]
    .concat();
    for llc in [
        LlcChoice::Lru,
        LlcChoice::Ship,
        LlcChoice::Mockingjay,
        LlcChoice::TShip,
    ] {
        let cfg = BuildConfig {
            llc,
            ..BuildConfig::default()
        };
        for p in &presets {
            let b = p.build(&dims(), &cfg);
            assert!(
                tlb_names.contains(b.stlb.name()),
                "{p}: STLB policy {} not in registry",
                b.stlb.name()
            );
            assert!(
                cache_names.contains(b.l2c.name()),
                "{p}: L2C policy {} not in registry",
                b.l2c.name()
            );
            assert!(
                cache_names.contains(b.llc.name()),
                "{p}: LLC policy {} not in registry",
                b.llc.name()
            );
        }
    }
}

/// The exact name strings are a stable interface; this list is the
/// change-detector.
#[test]
fn name_strings_are_stable() {
    let cache: Vec<&str> = cache_policies().iter().map(|e| e.name).collect();
    assert_eq!(
        cache,
        [
            "lru",
            "tree-plru",
            "random",
            "srrip",
            "brrip",
            "drrip",
            "dip",
            "ship",
            "tship",
            "mockingjay",
            "ptp",
            "tdrrip",
            "xptp",
            "xptp/lru",
            "xptp+emissary",
        ]
    );
    let tlb: Vec<&str> = tlb_policies().iter().map(|e| e.name).collect();
    assert_eq!(
        tlb,
        [
            "lru",
            "tree-plru",
            "random",
            "chirp",
            "prob-keep-instr-lru",
            "itp",
        ]
    );
}
