//! TLB edge cases: mixed page sizes, MSHR `Type` bits, and split
//! organizations under contention.

use itpx_policy::Lru;
use itpx_types::{Asid, PageSize, PhysAddr, ThreadId, TranslationKind, VirtAddr};
use itpx_vm::tlb::{LastLevelTlb, Tlb, TlbConfig, TlbLookup};

fn tlb(sets: usize, ways: usize) -> Tlb {
    Tlb::new(
        TlbConfig {
            sets,
            ways,
            latency: 8,
            mshr_entries: 4,
        },
        Lru::new(sets, ways),
    )
}

fn fill(t: &mut Tlb, va: u64, size: PageSize, kind: TranslationKind, ready: u64) {
    t.fill(
        VirtAddr::new(va).vpn(size).0,
        size,
        PhysAddr::new(0xF000_0000 + va),
        kind,
        Asid::KERNEL,
        va,
        ThreadId(0),
        50,
        ready,
    );
}

#[test]
fn mixed_page_sizes_coexist_in_one_set_structure() {
    let mut t = tlb(16, 4);
    fill(
        &mut t,
        0x40_0000,
        PageSize::Huge2M,
        TranslationKind::Data,
        0,
    );
    fill(
        &mut t,
        0x40_0000,
        PageSize::Base4K,
        TranslationKind::Data,
        0,
    );
    // The 4 KiB probe is tried first; both sizes are resident.
    match t.lookup(
        VirtAddr::new(0x40_0000),
        TranslationKind::Data,
        0,
        ThreadId(0),
        0,
    ) {
        TlbLookup::Hit { size, .. } => assert_eq!(size, PageSize::Base4K),
        other => panic!("expected a hit, got {other:?}"),
    }
    // An address inside the huge page but outside the 4 KiB page hits 2M.
    match t.lookup(
        VirtAddr::new(0x40_0000 + 8192),
        TranslationKind::Data,
        0,
        ThreadId(0),
        0,
    ) {
        TlbLookup::Hit { size, .. } => assert_eq!(size, PageSize::Huge2M),
        other => panic!("expected a 2M hit, got {other:?}"),
    }
}

#[test]
fn mshr_type_bits_survive_until_completion() {
    let mut t = tlb(16, 4);
    let va = VirtAddr::new(0x7_0000);
    t.mshr_alloc(va, TranslationKind::Instruction, 0);
    assert_eq!(t.mshr_kind(va), Some(TranslationKind::Instruction));
    t.mshr_complete(va, 400);
    // Still inspectable while the walk is outstanding.
    assert_eq!(t.mshr_kind(va), Some(TranslationKind::Instruction));
    // A second miss to a different page carries its own bit.
    let vb = VirtAddr::new(0x9_0000);
    t.mshr_alloc(vb, TranslationKind::Data, 10);
    assert_eq!(t.mshr_kind(vb), Some(TranslationKind::Data));
    assert_eq!(t.mshr_kind(va), Some(TranslationKind::Instruction));
}

#[test]
fn entry_ready_time_gates_early_hits() {
    let mut t = tlb(16, 4);
    fill(&mut t, 0x1000, PageSize::Base4K, TranslationKind::Data, 500);
    match t.lookup(
        VirtAddr::new(0x1000),
        TranslationKind::Data,
        0,
        ThreadId(0),
        100,
    ) {
        TlbLookup::Hit { done, .. } => assert_eq!(done, 500, "waits for the in-flight fill"),
        other => panic!("{other:?}"),
    }
    match t.lookup(
        VirtAddr::new(0x1000),
        TranslationKind::Data,
        0,
        ThreadId(0),
        1000,
    ) {
        TlbLookup::Hit { done, .. } => assert_eq!(done, 1008, "normal latency once filled"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn split_stlb_capacities_are_independent() {
    let mk = || tlb(8, 2); // 16 entries per side
    let mut s = LastLevelTlb::Split {
        instr: mk(),
        data: mk(),
    };
    // Overflow the data side with 32 pages; the instruction side keeps
    // its single entry.
    s.for_kind(TranslationKind::Instruction).fill(
        0x123,
        PageSize::Base4K,
        PhysAddr::new(0x1),
        TranslationKind::Instruction,
        Asid::KERNEL,
        0,
        ThreadId(0),
        1,
        0,
    );
    for i in 0..32u64 {
        s.for_kind(TranslationKind::Data).fill(
            0x1000 + i,
            PageSize::Base4K,
            PhysAddr::new(i),
            TranslationKind::Data,
            Asid::KERNEL,
            0,
            ThreadId(0),
            1,
            0,
        );
    }
    assert!(s
        .for_kind(TranslationKind::Instruction)
        .contains(VirtAddr::new(0x123 << 12), PageSize::Base4K));
    let stats = s.stats();
    assert_eq!(stats.accesses(), 0, "fills alone do not count as accesses");
}

#[test]
fn per_thread_entries_do_not_alias() {
    // Two SMT threads present disjoint VAs (the engine offsets them); the
    // shared STLB must keep both.
    let mut t = tlb(16, 4);
    let va0 = 0x5000u64;
    let va1 = va0 | (1 << 44);
    fill(&mut t, va0, PageSize::Base4K, TranslationKind::Data, 0);
    fill(&mut t, va1, PageSize::Base4K, TranslationKind::Data, 0);
    assert!(t.contains(VirtAddr::new(va0), PageSize::Base4K));
    assert!(t.contains(VirtAddr::new(va1), PageSize::Base4K));
}
