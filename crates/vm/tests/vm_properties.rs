//! Property tests for the virtual-memory substrate.

use itpx_types::{PageSize, TranslationKind, VirtAddr};
use itpx_vm::page_table::{HugePagePolicy, PageTable};
use itpx_vm::psc::SplitPscs;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn translation_preserves_offsets_and_is_stable(
        vas in prop::collection::vec(0u64..(1 << 47), 1..50),
        seed in any::<u64>(),
        frac in 0.0f64..1.0,
    ) {
        let mut pt = PageTable::new(HugePagePolicy::uniform(frac, seed), seed);
        for &raw in &vas {
            let va = VirtAddr::new(raw);
            let a = pt.translate(va, TranslationKind::Data);
            let b = pt.translate(va, TranslationKind::Data);
            prop_assert_eq!(&a, &b, "translation must be stable");
            prop_assert_eq!(a.pa.0 & (a.size.bytes() - 1), va.page_offset(a.size));
        }
    }

    #[test]
    fn distinct_pages_never_share_frames(seed in any::<u64>()) {
        let mut pt = PageTable::new(HugePagePolicy::none(), seed);
        let mut frames = std::collections::HashSet::new();
        for i in 0..200u64 {
            let t = pt.translate(VirtAddr::new(i << 12), TranslationKind::Data);
            prop_assert!(frames.insert(t.frame.0), "frame reuse at page {i}");
        }
    }

    #[test]
    fn walk_paths_descend_strictly(vas in prop::collection::vec(0u64..(1 << 47), 1..30)) {
        let mut pt = PageTable::new(HugePagePolicy::uniform(0.3, 5), 5);
        for &raw in &vas {
            let t = pt.translate(VirtAddr::new(raw), TranslationKind::Instruction);
            let levels: Vec<u8> = t.path.steps().iter().map(|&(l, _)| l).collect();
            prop_assert_eq!(levels[0], 5, "walks start at the root");
            for pair in levels.windows(2) {
                prop_assert_eq!(pair[0] - 1, pair[1], "levels must descend by one");
            }
            let expected_leaf = if t.size == PageSize::Huge2M { 2 } else { 1 };
            prop_assert_eq!(*levels.last().unwrap(), expected_leaf);
        }
    }

    #[test]
    fn psc_start_level_is_sound(vpns in prop::collection::vec(0u64..(1 << 30), 1..50)) {
        let mut pscs = SplitPscs::asplos25();
        for &vpn in &vpns {
            let level = pscs.start_level(vpn);
            prop_assert!((2..=5).contains(&level));
            pscs.fill(vpn, 1);
            // After a fill the same VPN starts at level 2.
            prop_assert_eq!(pscs.start_level(vpn), 2);
        }
    }
}
