//! Property tests for the virtual-memory substrate.

use itpx_policy::Lru;
use itpx_types::{Asid, PageSize, PhysAddr, ThreadId, TranslationKind, VirtAddr};
use itpx_vm::page_table::{HugePagePolicy, PageTable};
use itpx_vm::psc::SplitPscs;
use itpx_vm::tlb::{Tlb, TlbConfig, TlbEntry};
use proptest::prelude::*;

/// Sort key over the full entry tuple so multiset comparison covers the
/// page-size and tag bits, not just membership of the VPN.
fn tlb_entry_key(e: &TlbEntry) -> (u64, bool, u64, bool, u16) {
    (
        e.0,
        e.1 == PageSize::Huge2M,
        e.2 .0,
        e.3 == TranslationKind::Instruction,
        e.4 .0,
    )
}

/// Fills a throwaway 4K data entry under ASID 0 (pre-import pollution).
fn src_junk_fill(tlb: &mut Tlb, vpn: u64) {
    tlb.fill(
        vpn,
        PageSize::Base4K,
        PhysAddr(vpn),
        TranslationKind::Data,
        Asid(0),
        0,
        ThreadId(0),
        1,
        0,
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn translation_preserves_offsets_and_is_stable(
        vas in prop::collection::vec(0u64..(1 << 47), 1..50),
        seed in any::<u64>(),
        frac in 0.0f64..1.0,
    ) {
        let mut pt = PageTable::new(HugePagePolicy::uniform(frac, seed), seed);
        for &raw in &vas {
            let va = VirtAddr::new(raw);
            let a = pt.translate(va, TranslationKind::Data);
            let b = pt.translate(va, TranslationKind::Data);
            prop_assert_eq!(&a, &b, "translation must be stable");
            prop_assert_eq!(a.pa.0 & (a.size.bytes() - 1), va.page_offset(a.size));
        }
    }

    #[test]
    fn distinct_pages_never_share_frames(seed in any::<u64>()) {
        let mut pt = PageTable::new(HugePagePolicy::none(), seed);
        let mut frames = std::collections::HashSet::new();
        for i in 0..200u64 {
            let t = pt.translate(VirtAddr::new(i << 12), TranslationKind::Data);
            prop_assert!(frames.insert(t.frame.0), "frame reuse at page {i}");
        }
    }

    #[test]
    fn walk_paths_descend_strictly(vas in prop::collection::vec(0u64..(1 << 47), 1..30)) {
        let mut pt = PageTable::new(HugePagePolicy::uniform(0.3, 5), 5);
        for &raw in &vas {
            let t = pt.translate(VirtAddr::new(raw), TranslationKind::Instruction);
            let levels: Vec<u8> = t.path.steps().iter().map(|&(l, _)| l).collect();
            prop_assert_eq!(levels[0], 5, "walks start at the root");
            for pair in levels.windows(2) {
                prop_assert_eq!(pair[0] - 1, pair[1], "levels must descend by one");
            }
            let expected_leaf = if t.size == PageSize::Huge2M { 2 } else { 1 };
            prop_assert_eq!(*levels.last().unwrap(), expected_leaf);
        }
    }

    #[test]
    fn tlb_export_import_roundtrip_preserves_every_entry_bit(
        fills in prop::collection::vec((0u64..4096, any::<bool>(), any::<bool>()), 1..120),
        junk in prop::collection::vec(10_000u64..20_000, 0..40),
    ) {
        let cfg = TlbConfig { sets: 16, ways: 4, latency: 1, mshr_entries: 8 };
        let mut src = Tlb::new(cfg, Lru::new(16, 4));
        for (i, &(vpn, huge, instr)) in fills.iter().enumerate() {
            let size = if huge { PageSize::Huge2M } else { PageSize::Base4K };
            let kind = if instr { TranslationKind::Instruction } else { TranslationKind::Data };
            // Derive the tag from the VPN so one page never carries two
            // tags (the structure's never-both invariant).
            let asid = Asid((vpn % 3) as u16);
            src.fill(vpn, size, PhysAddr(vpn * 7 + 1), kind, asid, 0, ThreadId(0), 1, i as u64);
        }
        let snapshot = src.export_entries();
        prop_assert_eq!(snapshot.len(), src.resident_count());

        // Import into a dirty TLB: import must drop the junk residents.
        let mut dst = Tlb::new(cfg, Lru::new(16, 4));
        for &vpn in &junk {
            src_junk_fill(&mut dst, vpn);
        }
        dst.import_entries(snapshot.clone());

        // The import is lossless (a same-geometry snapshot holds at most
        // `ways` entries per set and no duplicates), so the re-export is
        // multiset-equal on the FULL tuple — frame, page size,
        // translation kind, and ASID all survive, not just the VPN set.
        let mut before = snapshot.clone();
        let mut after = dst.export_entries();
        before.sort_by_key(tlb_entry_key);
        after.sort_by_key(tlb_entry_key);
        prop_assert_eq!(before, after, "roundtrip must preserve entries bit-for-bit");

        // Every imported entry is visible under its exact tag at its
        // exact page size.
        for &(vpn, size, _, _, asid) in &snapshot {
            let va = VirtAddr::new(vpn << size.shift());
            prop_assert!(dst.contains_tagged(va, size, asid));
        }
        for &vpn in &junk {
            prop_assert!(
                !dst.contains_tagged(VirtAddr::new(vpn << PageSize::Base4K.shift()),
                                     PageSize::Base4K, Asid(0)),
                "import must evict pre-existing residents"
            );
        }
    }

    #[test]
    fn psc_start_level_is_sound(vpns in prop::collection::vec(0u64..(1 << 30), 1..50)) {
        let mut pscs = SplitPscs::asplos25();
        for &vpn in &vpns {
            let level = pscs.start_level(vpn);
            prop_assert!((2..=5).contains(&level));
            pscs.fill(vpn, 1);
            // After a fill the same VPN starts at level 2.
            prop_assert_eq!(pscs.start_level(vpn), 2);
        }
    }
}
