//! Set-associative TLBs with pluggable replacement and MSHR `Type` bits.
//!
//! One [`Tlb`] models any level (ITLB, DTLB, STLB). Entries for 4 KiB and
//! 2 MiB pages coexist in the same structure (both VPN granularities are
//! probed on lookup). Misses are tracked in an MSHR-like table that carries
//! the paper's per-entry `Type` bit — the translation kind of the miss —
//! so the iTP insertion at walk completion knows what it is inserting
//! (Figure 7, steps 2 and 4).
//!
//! [`LastLevelTlb`] provides the unified vs split STLB organizations
//! compared in Section 6.6.

use crate::page_table::Translation;
use itpx_policy::{Policy, TlbMeta, TlbPolicyEngine};
use itpx_types::fingerprint::{Fingerprint, Fnv1a};
use itpx_types::{
    Asid, Cycle, FillClass, PageSize, PhysAddr, ResetBoundary, SetMask, SlotPool, StructStats,
    ThreadId, TranslationKind, VirtAddr,
};

/// One resident translation as exported/imported at a tier boundary:
/// `(vpn, size, frame, kind, asid)`. `kind` is the translation kind of the
/// fill that installed the entry — the paper's `Type` bit — so kind-aware
/// policies (iTP) see the right class when warm state is re-installed.
/// `asid` is the address-space tag the entry was installed under
/// ([`Asid::GLOBAL`] for mappings that hit in every address space).
pub type TlbEntry = (u64, PageSize, PhysAddr, TranslationKind, Asid);

/// Geometry and timing of one TLB level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of sets.
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Lookup latency in cycles.
    pub latency: u64,
    /// Miss-status-holding-register capacity.
    pub mshr_entries: usize,
}

impl TlbConfig {
    /// Total entry count.
    pub fn entries(&self) -> usize {
        self.sets * self.ways
    }
}

impl Fingerprint for TlbConfig {
    fn fingerprint(&self, h: &mut Fnv1a) {
        h.write_usize(self.sets);
        h.write_usize(self.ways);
        h.write_u64(self.latency);
        h.write_usize(self.mshr_entries);
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    vpn: u64,
    size: PageSize,
    frame: PhysAddr,
    /// Translation kind of the installing fill (kept so warm-state export
    /// at a tier boundary can carry the `Type` bit along).
    kind: TranslationKind,
    /// Address-space tag of the installing fill. Lookups require
    /// [`Asid::matches`] against the structure's current ASID; global
    /// entries match every space.
    asid: Asid,
    /// Cycle at which the entry's fill completes; lookups before this wait
    /// for it (the timing an MSHR merge produces).
    ready: Cycle,
}

#[derive(Debug, Clone, Copy)]
struct Mshr {
    ready: Cycle,
    /// The paper's 1-bit `Type` field per TLB MSHR entry.
    kind: TranslationKind,
}

/// Result of a TLB lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlbLookup {
    /// The translation was resident; the access completes at `done`.
    Hit {
        /// Cycle at which the translated access may proceed.
        done: Cycle,
        /// Physical frame base.
        frame: PhysAddr,
        /// Page size of the hit entry.
        size: PageSize,
    },
    /// Not resident; the caller must consult the next level / walker and
    /// then call [`Tlb::fill`].
    Miss,
}

/// One set-associative TLB level.
///
/// Entry storage is a single flat slice indexed by `set * ways + way` with
/// per-set validity bitmasks, mirroring [`itpx_mem`]'s cache layout: TLB
/// probes run on every simulated memory reference, and the flat layout
/// removes the nested-`Vec` double indirection on that path.
#[derive(Debug)]
pub struct Tlb {
    cfg: TlbConfig,
    /// `sets * ways` entry slots; a slot's content is meaningful only when
    /// the corresponding bit of `valid` is set.
    entries: Box<[Entry]>,
    /// Per-set validity bitmask (bit `w` ⇔ way `w` holds an entry).
    valid: Box<[u64]>,
    /// `ways` low bits set: the mask of a fully occupied set.
    full_mask: u64,
    /// Power-of-two set selection, validated at construction: one AND per
    /// lookup instead of a `%` division.
    set_mask: SetMask,
    /// Enum-dispatched so the per-access `on_hit`/`victim`/`on_fill`
    /// calls inline instead of going through a vtable.
    policy: TlbPolicyEngine,
    /// The address space lookups currently run under. Single-tenant
    /// simulations never move it off [`Asid::KERNEL`].
    current: Asid,
    stats: StructStats,
    /// In-flight misses keyed by 4 KiB VPN (keys unique, lazy-cleaned).
    /// Consumers only take order-insensitive views (key lookup, `retain`,
    /// minimum completion time), so slot order never affects results.
    outstanding: SlotPool<(u64, Mshr)>,
}

impl Tlb {
    /// Creates a TLB with the given geometry and replacement policy.
    ///
    /// Any in-tree policy converts into [`TlbPolicyEngine`] directly
    /// (`Lru::new(..)`, boxed trait objects, or an explicit engine all
    /// work); out-of-tree policies go through [`TlbPolicyEngine::boxed`].
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate or associativity exceeds 64
    /// (the validity-bitmask width).
    pub fn new(cfg: TlbConfig, policy: impl Into<TlbPolicyEngine>) -> Self {
        let policy = policy.into();
        assert!(cfg.sets > 0 && cfg.ways > 0, "TLB needs sets > 0, ways > 0");
        assert!(
            cfg.sets.is_power_of_two(),
            "TLB set count must be a power of two (mask indexing)"
        );
        assert!(cfg.ways <= 64, "valid bitmask holds at most 64 ways");
        assert!(cfg.mshr_entries > 0, "TLB needs at least one MSHR");
        let placeholder = Entry {
            vpn: 0,
            size: PageSize::Base4K,
            frame: PhysAddr::new(0),
            kind: TranslationKind::Data,
            asid: Asid::KERNEL,
            ready: 0,
        };
        Self {
            entries: vec![placeholder; cfg.sets * cfg.ways].into_boxed_slice(),
            valid: vec![0; cfg.sets].into_boxed_slice(),
            full_mask: u64::MAX >> (64 - cfg.ways as u32),
            set_mask: SetMask::new(cfg.sets),
            policy,
            current: Asid::KERNEL,
            stats: StructStats::new(),
            outstanding: SlotPool::with_capacity(cfg.mshr_entries),
            cfg,
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> &TlbConfig {
        &self.cfg
    }

    /// Access/miss statistics (instruction vs data translations are the
    /// `instr`/`data` classes of the breakdown).
    pub fn stats(&self) -> &StructStats {
        &self.stats
    }

    /// The replacement policy driving this TLB.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    fn stat_class(kind: TranslationKind) -> FillClass {
        match kind {
            TranslationKind::Instruction => FillClass::InstrPayload,
            TranslationKind::Data => FillClass::DataPayload,
        }
    }

    fn set_of(&self, vpn: u64) -> usize {
        self.set_mask.set_of(vpn)
    }

    /// The flat-slice index of `(set, way)`.
    fn slot(&self, set: usize, way: usize) -> usize {
        set * self.cfg.ways + way
    }

    /// First valid way in `set` holding `(vpn, size)` visible under
    /// `asid`, if any. Ways are scanned in ascending order (bit order of
    /// the validity mask), matching the nested-storage scan. Visibility is
    /// [`Asid::matches`]: an exact tag match or a global entry. Because a
    /// page's globality is a pure function of its virtual address, a
    /// global and a tenant-tagged entry for the same `(vpn, size)` never
    /// coexist, so the scan order cannot change which entry is found.
    fn find_way(&self, set: usize, vpn: u64, size: PageSize, asid: Asid) -> Option<usize> {
        let mut mask = self.valid[set];
        while mask != 0 {
            let way = mask.trailing_zeros() as usize;
            // way < cfg.ways because only the low `ways` mask bits are set
            let e = &self.entries[self.slot(set, way)];
            if e.vpn == vpn && e.size == size && e.asid.matches(asid) {
                return Some(way);
            }
            mask &= mask - 1;
        }
        None
    }

    /// Lowest invalid way in `set`, if the set is not full.
    fn first_free_way(&self, set: usize) -> Option<usize> {
        let free = !self.valid[set] & self.full_mask;
        if free == 0 {
            None
        } else {
            Some(free.trailing_zeros() as usize)
        }
    }

    fn meta(&self, vpn: u64, pc: u64, kind: TranslationKind, thread: ThreadId) -> TlbMeta {
        TlbMeta {
            vpn,
            pc,
            kind,
            thread,
        }
    }

    /// Looks up `va`, charging the access latency. Records statistics.
    pub fn lookup(
        &mut self,
        va: VirtAddr,
        kind: TranslationKind,
        pc: u64,
        thread: ThreadId,
        now: Cycle,
    ) -> TlbLookup {
        let done = now + self.cfg.latency;
        for size in [PageSize::Base4K, PageSize::Huge2M] {
            let vpn = va.vpn(size).0;
            let set = self.set_of(vpn);
            if let Some(way) = self.find_way(set, vpn, size, self.current) {
                let meta = self.meta(vpn, pc, kind, thread);
                self.policy.on_hit(set, way, &meta);
                self.stats.record(Self::stat_class(kind), false);
                // find_way only reports valid ways
                let entry = self.entries[self.slot(set, way)];
                return TlbLookup::Hit {
                    done: done.max(entry.ready),
                    frame: entry.frame,
                    size,
                };
            }
        }
        self.stats.record(Self::stat_class(kind), true);
        TlbLookup::Miss
    }

    /// If a miss for the page containing `va` is already outstanding,
    /// returns the cycle its walk completes (MSHR merge).
    pub fn merge(&mut self, va: VirtAddr, now: Cycle) -> Option<Cycle> {
        let key = va.vpn(PageSize::Base4K).0;
        match self.outstanding.find(|(k, _)| *k == key) {
            Some((_, m)) if m.ready > now => Some(m.ready),
            _ => None,
        }
    }

    /// Allocates an MSHR for the miss, returning the cycle at which the
    /// allocation succeeds (delayed past `now` if all MSHRs are busy).
    /// The `Type` bit of the miss is stored alongside.
    pub fn mshr_alloc(&mut self, va: VirtAddr, kind: TranslationKind, now: Cycle) -> Cycle {
        let key = va.vpn(PageSize::Base4K).0;
        // Retire completed entries.
        self.outstanding.retain(|(_, m)| m.ready > now);
        let start = if self.outstanding.len() >= self.cfg.mshr_entries {
            // Wait for the earliest in-flight miss to free its register.
            self.outstanding
                .iter()
                .map(|(_, m)| m.ready)
                .min()
                .unwrap_or(now)
                .max(now)
        } else {
            now
        };
        let mshr = Mshr {
            ready: Cycle::MAX,
            kind,
        };
        // Keys are unique: re-allocating an outstanding VPN overwrites its
        // entry, as a keyed map's insert would.
        match self.outstanding.find_mut(|(k, _)| *k == key) {
            Some(e) => e.1 = mshr,
            None => self.outstanding.insert((key, mshr)),
        }
        start
    }

    /// The `Type` bit stored for an outstanding miss.
    pub fn mshr_kind(&self, va: VirtAddr) -> Option<TranslationKind> {
        let key = va.vpn(PageSize::Base4K).0;
        self.outstanding
            .find(|(k, _)| *k == key)
            .map(|(_, m)| m.kind)
    }

    /// Completes the MSHR for `va`: later merged requests observe `ready`.
    pub fn mshr_complete(&mut self, va: VirtAddr, ready: Cycle) {
        let key = va.vpn(PageSize::Base4K).0;
        if let Some((_, m)) = self.outstanding.find_mut(|(k, _)| *k == key) {
            m.ready = ready;
        }
    }

    /// Completes a miss end-to-end: installs `tr` (recording `done -
    /// issued` as the miss latency) and releases the MSHR allocated for
    /// `va` at cycle `done`. One call per miss resolution, whatever
    /// supplied the translation (STLB hit, merged walk, or a fresh walk).
    #[allow(clippy::too_many_arguments)]
    pub fn fill_and_complete(
        &mut self,
        tr: &Translation,
        kind: TranslationKind,
        pc: u64,
        thread: ThreadId,
        va: VirtAddr,
        issued: Cycle,
        done: Cycle,
    ) {
        self.fill(
            tr.vpn,
            tr.size,
            tr.frame,
            kind,
            tr.asid,
            pc,
            thread,
            done - issued,
            done,
        );
        self.mshr_complete(va, done);
    }

    /// Installs a translation, evicting per the policy if the set is full,
    /// and records the end-to-end miss latency. The entry becomes usable at
    /// `ready`; lookups before that cycle wait for it. `asid` is the tag
    /// the entry is installed under ([`Asid::GLOBAL`] for mappings shared
    /// by every address space).
    #[allow(clippy::too_many_arguments)]
    pub fn fill(
        &mut self,
        vpn: u64,
        size: PageSize,
        frame: PhysAddr,
        kind: TranslationKind,
        asid: Asid,
        pc: u64,
        thread: ThreadId,
        miss_latency: u64,
        ready: Cycle,
    ) {
        self.stats.record_miss_latency(miss_latency);
        let set = self.set_of(vpn);
        // Already present (filled by a merged miss): just refresh. Probing
        // with the installing tag is an exact-tag residence check — the
        // never-both invariant (see `find_way`) rules out a global entry
        // shadowing a tenant fill or vice versa.
        if let Some(way) = self.find_way(set, vpn, size, asid) {
            let meta = self.meta(vpn, pc, kind, thread);
            self.policy.on_hit(set, way, &meta);
            return;
        }
        let meta = self.meta(vpn, pc, kind, thread);
        let way = match self.first_free_way(set) {
            Some(w) => w,
            None => {
                let v = self.policy.victim(set, &meta);
                // In-range victims are the policy contract (checked for
                // every in-tree policy by the CheckedPolicy drives); the
                // release hot path does not re-check unless the
                // strict-contracts feature asks for it. An out-of-range
                // way still cannot corrupt memory — the slot index below
                // bounds-checks.
                #[cfg(feature = "strict-contracts")]
                assert!(v < self.cfg.ways, "policy returned way out of range");
                #[cfg(not(feature = "strict-contracts"))]
                debug_assert!(v < self.cfg.ways, "policy returned way out of range");
                self.policy.on_evict(set, v);
                v
            }
        };
        self.valid[set] |= 1 << way;
        // way came from first_free_way or a range-checked victim
        self.entries[self.slot(set, way)] = Entry {
            vpn,
            size,
            frame,
            kind,
            asid,
            ready,
        };
        self.policy.on_fill(set, way, &meta);
    }

    /// The address space lookups currently run under.
    pub fn current_asid(&self) -> Asid {
        self.current
    }

    /// Retargets lookups to `asid` (a context switch). Entries are left
    /// in place — pair with [`Tlb::flush_asid`] for flushing switches.
    pub fn set_current_asid(&mut self, asid: Asid) {
        self.current = asid;
    }

    /// Invalidates every entry tagged exactly `asid` (a flushing context
    /// switch). Global entries are exempt by construction — they carry
    /// the [`Asid::GLOBAL`] tag, which no tenant flush names. Replacement
    /// metadata of the freed ways goes stale but is rewritten by the next
    /// fill into each way, and victims are only chosen from full sets, so
    /// eviction order among live entries is unaffected. In-flight MSHRs
    /// are untouched: a walk already in progress completes and installs
    /// under the tag captured at fill time.
    pub fn flush_asid(&mut self, asid: Asid) {
        for set in 0..self.cfg.sets {
            let mut mask = self.valid[set];
            while mask != 0 {
                let way = mask.trailing_zeros() as usize;
                // way comes from the set's valid mask, so slot(set, way)
                // is in bounds by construction
                if self.entries[self.slot(set, way)].asid == asid {
                    self.valid[set] &= !(1 << way);
                }
                mask &= mask - 1;
            }
        }
    }

    /// Targeted shootdown: invalidates any entry translating `va` under
    /// exactly `asid`, probing both page-size granularities.
    pub fn invalidate_page(&mut self, va: VirtAddr, asid: Asid) {
        for size in [PageSize::Base4K, PageSize::Huge2M] {
            let vpn = va.vpn(size).0;
            let set = self.set_of(vpn);
            let mut mask = self.valid[set];
            while mask != 0 {
                let way = mask.trailing_zeros() as usize;
                // way comes from the set's valid mask, so slot(set, way)
                // is in bounds by construction
                let e = &self.entries[self.slot(set, way)];
                if e.vpn == vpn && e.size == size && e.asid == asid {
                    self.valid[set] &= !(1 << way);
                }
                mask &= mask - 1;
            }
        }
    }

    /// Invalidates every entry (any tag) whose page lies inside the 2 MiB
    /// region `region_vpn2m` — the TLB half of a huge-page promotion or
    /// demotion, which changes the region's translations wholesale.
    pub fn invalidate_region(&mut self, region_vpn2m: u64) {
        for set in 0..self.cfg.sets {
            let mut mask = self.valid[set];
            while mask != 0 {
                let way = mask.trailing_zeros() as usize;
                // way comes from the set's valid mask, so slot(set, way)
                // is in bounds by construction
                let e = &self.entries[self.slot(set, way)];
                let in_region = match e.size {
                    PageSize::Base4K => e.vpn >> 9 == region_vpn2m,
                    PageSize::Huge2M => e.vpn == region_vpn2m,
                };
                if in_region {
                    self.valid[set] &= !(1 << way);
                }
                mask &= mask - 1;
            }
        }
    }

    /// Clears statistics (entries and replacement state are preserved).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Exports every resident entry in set order, ways ascending — the
    /// warm-state snapshot handed to the functional tier at a boundary.
    /// Statistics and replacement metadata are not touched.
    pub fn export_entries(&self) -> Vec<TlbEntry> {
        let mut out = Vec::new();
        for set in 0..self.cfg.sets {
            let mut mask = self.valid[set];
            while mask != 0 {
                let way = mask.trailing_zeros() as usize;
                // way comes from the set's valid mask, so slot(set, way)
                // is in bounds by construction
                let e = &self.entries[self.slot(set, way)];
                out.push((e.vpn, e.size, e.frame, e.kind, e.asid));
                mask &= mask - 1;
            }
        }
        out
    }

    /// Replaces the TLB's contents with `entries`: the warm-state import
    /// at a tier boundary. Resident entries and in-flight MSHRs are
    /// dropped, then each entry is installed through the regular policy
    /// fill path — iterate **LRU-first** so the last entry installed into
    /// a set is its MRU. Statistics are NOT perturbed: a handoff is not
    /// simulated traffic.
    pub fn import_entries<I: IntoIterator<Item = TlbEntry>>(&mut self, entries: I) {
        for v in self.valid.iter_mut() {
            *v = 0;
        }
        self.outstanding.retain(|_| false);
        for (vpn, size, frame, kind, asid) in entries {
            let set = self.set_of(vpn);
            if self.find_way(set, vpn, size, asid).is_some() {
                continue;
            }
            let meta = self.meta(vpn, 0, kind, ThreadId(0));
            let way = match self.first_free_way(set) {
                Some(w) => w,
                None => {
                    let v = self.policy.victim(set, &meta);
                    #[cfg(feature = "strict-contracts")]
                    assert!(v < self.cfg.ways, "policy returned way out of range");
                    #[cfg(not(feature = "strict-contracts"))]
                    debug_assert!(v < self.cfg.ways, "policy returned way out of range");
                    self.policy.on_evict(set, v);
                    v
                }
            };
            self.valid[set] |= 1 << way;
            // way is a free slot or a checked victim (< ways), so
            // slot(set, way) is in bounds
            self.entries[self.slot(set, way)] = Entry {
                vpn,
                size,
                frame,
                kind,
                asid,
                ready: 0,
            };
            self.policy.on_fill(set, way, &meta);
        }
    }

    /// Number of resident entries.
    pub fn resident_count(&self) -> usize {
        self.valid.iter().map(|v| v.count_ones() as usize).sum()
    }

    /// Whether a translation for `va` at `size` is visible under the
    /// current ASID.
    pub fn contains(&self, va: VirtAddr, size: PageSize) -> bool {
        let vpn = va.vpn(size).0;
        let set = self.set_of(vpn);
        self.find_way(set, vpn, size, self.current).is_some()
    }

    /// Whether a translation for `va` at `size` tagged `asid` is resident
    /// (exact tag under the never-both invariant, regardless of the
    /// current ASID).
    pub fn contains_tagged(&self, va: VirtAddr, size: PageSize, asid: Asid) -> bool {
        let vpn = va.vpn(size).0;
        let set = self.set_of(vpn);
        self.find_way(set, vpn, size, asid).is_some()
    }
}

/// Last-level TLB organization: the unified design the paper optimizes, or
/// the split design it compares against in Section 6.6.
// `Tlb` holds its policy engine inline, so `Split` is two engines wide.
// A construct-once singleton on the per-access path: keeping both halves
// inline beats boxing them behind a pointer chase.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum LastLevelTlb {
    /// One shared structure for instruction and data translations.
    Unified(Tlb),
    /// Separate instruction and data STLBs.
    Split {
        /// Instruction-translation STLB.
        instr: Tlb,
        /// Data-translation STLB.
        data: Tlb,
    },
}

impl LastLevelTlb {
    /// The structure responsible for `kind` translations.
    pub fn for_kind(&mut self, kind: TranslationKind) -> &mut Tlb {
        match self {
            LastLevelTlb::Unified(t) => t,
            LastLevelTlb::Split { instr, data } => match kind {
                TranslationKind::Instruction => instr,
                TranslationKind::Data => data,
            },
        }
    }

    /// Aggregated statistics across the organization.
    pub fn stats(&self) -> StructStats {
        match self {
            LastLevelTlb::Unified(t) => t.stats().clone(),
            LastLevelTlb::Split { instr, data } => {
                let mut s = instr.stats().clone();
                s.merge(data.stats());
                s
            }
        }
    }

    /// Clears statistics on every member structure.
    pub fn reset_stats(&mut self) {
        match self {
            LastLevelTlb::Unified(t) => t.reset_stats(),
            LastLevelTlb::Split { instr, data } => {
                instr.reset_stats();
                data.reset_stats();
            }
        }
    }

    /// Total entries across the organization.
    pub fn entries(&self) -> usize {
        match self {
            LastLevelTlb::Unified(t) => t.config().entries(),
            LastLevelTlb::Split { instr, data } => {
                instr.config().entries() + data.config().entries()
            }
        }
    }

    /// Retargets lookups in every member structure (a context switch).
    pub fn set_current_asid(&mut self, asid: Asid) {
        match self {
            LastLevelTlb::Unified(t) => t.set_current_asid(asid),
            LastLevelTlb::Split { instr, data } => {
                instr.set_current_asid(asid);
                data.set_current_asid(asid);
            }
        }
    }

    /// Flushes `asid`-tagged entries from every member structure.
    pub fn flush_asid(&mut self, asid: Asid) {
        match self {
            LastLevelTlb::Unified(t) => t.flush_asid(asid),
            LastLevelTlb::Split { instr, data } => {
                instr.flush_asid(asid);
                data.flush_asid(asid);
            }
        }
    }

    /// Targeted shootdown across every member structure.
    pub fn invalidate_page(&mut self, va: VirtAddr, asid: Asid) {
        match self {
            LastLevelTlb::Unified(t) => t.invalidate_page(va, asid),
            LastLevelTlb::Split { instr, data } => {
                instr.invalidate_page(va, asid);
                data.invalidate_page(va, asid);
            }
        }
    }

    /// Invalidates a 2 MiB region in every member structure (huge-page
    /// promotion/demotion churn).
    pub fn invalidate_region(&mut self, region_vpn2m: u64) {
        match self {
            LastLevelTlb::Unified(t) => t.invalidate_region(region_vpn2m),
            LastLevelTlb::Split { instr, data } => {
                instr.invalidate_region(region_vpn2m);
                data.invalidate_region(region_vpn2m);
            }
        }
    }
}

impl ResetBoundary for Tlb {
    fn reset_boundary(&mut self) {
        self.reset_stats();
    }
}

impl ResetBoundary for LastLevelTlb {
    fn reset_boundary(&mut self) {
        self.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itpx_policy::Lru;

    fn cfg() -> TlbConfig {
        TlbConfig {
            sets: 16,
            ways: 4,
            latency: 1,
            mshr_entries: 8,
        }
    }

    fn tlb() -> Tlb {
        Tlb::new(cfg(), Lru::new(16, 4))
    }

    fn fill4k(t: &mut Tlb, va: VirtAddr, frame: u64) {
        t.fill(
            va.vpn(PageSize::Base4K).0,
            PageSize::Base4K,
            PhysAddr::new(frame),
            TranslationKind::Data,
            Asid::KERNEL,
            0,
            ThreadId(0),
            10,
            0,
        );
    }

    fn fill4k_tagged(t: &mut Tlb, va: VirtAddr, frame: u64, asid: Asid) {
        t.fill(
            va.vpn(PageSize::Base4K).0,
            PageSize::Base4K,
            PhysAddr::new(frame),
            TranslationKind::Data,
            asid,
            0,
            ThreadId(0),
            10,
            0,
        );
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut t = tlb();
        let va = VirtAddr::new(0x1234_5678);
        assert_eq!(
            t.lookup(va, TranslationKind::Data, 0, ThreadId(0), 0),
            TlbLookup::Miss
        );
        fill4k(&mut t, va, 0xaaaa_0000);
        match t.lookup(va, TranslationKind::Data, 0, ThreadId(0), 5) {
            TlbLookup::Hit { done, frame, size } => {
                assert_eq!(done, 6); // latency 1
                assert_eq!(frame.0, 0xaaaa_0000);
                assert_eq!(size, PageSize::Base4K);
            }
            other => panic!("expected hit, got {other:?}"),
        }
        assert_eq!(t.stats().misses(), 1);
        assert_eq!(t.stats().accesses(), 2);
    }

    #[test]
    fn huge_page_hits_via_2m_vpn() {
        let mut t = tlb();
        let base = VirtAddr::new(0x4000_0000);
        t.fill(
            base.vpn(PageSize::Huge2M).0,
            PageSize::Huge2M,
            PhysAddr::new(0x8000_0000),
            TranslationKind::Data,
            Asid::KERNEL,
            0,
            ThreadId(0),
            10,
            0,
        );
        // Any address inside the 2 MiB region hits.
        let inside = VirtAddr::new(0x4000_0000 + 0x12_3456);
        assert!(matches!(
            t.lookup(inside, TranslationKind::Data, 0, ThreadId(0), 0),
            TlbLookup::Hit {
                size: PageSize::Huge2M,
                ..
            }
        ));
    }

    #[test]
    fn eviction_follows_policy() {
        let mut t = tlb();
        // Fill one set (vpn ≡ 0 mod 16) beyond capacity.
        for i in 0..5u64 {
            fill4k(&mut t, VirtAddr::new(i * 16 * 4096), i + 1);
        }
        // The first-filled entry (LRU) must be gone.
        assert!(!t.contains(VirtAddr::new(0), PageSize::Base4K));
        assert!(t.contains(VirtAddr::new(4 * 16 * 4096), PageSize::Base4K));
    }

    #[test]
    fn mshr_merge_returns_ready_cycle() {
        let mut t = tlb();
        let va = VirtAddr::new(0x7000);
        assert_eq!(t.merge(va, 0), None);
        let start = t.mshr_alloc(va, TranslationKind::Instruction, 10);
        assert_eq!(start, 10);
        assert_eq!(t.mshr_kind(va), Some(TranslationKind::Instruction));
        t.mshr_complete(va, 150);
        assert_eq!(t.merge(va, 20), Some(150));
        // After completion time passes, the entry no longer merges.
        assert_eq!(t.merge(va, 151), None);
    }

    #[test]
    fn mshr_capacity_delays_allocation() {
        let mut t = Tlb::new(
            TlbConfig {
                sets: 4,
                ways: 2,
                latency: 1,
                mshr_entries: 2,
            },
            Lru::new(4, 2),
        );
        let a = VirtAddr::new(0x1000);
        let b = VirtAddr::new(0x2000);
        let c = VirtAddr::new(0x3000);
        t.mshr_alloc(a, TranslationKind::Data, 0);
        t.mshr_complete(a, 100);
        t.mshr_alloc(b, TranslationKind::Data, 0);
        t.mshr_complete(b, 200);
        // Both MSHRs busy at cycle 10: the new miss waits for the earliest.
        let start = t.mshr_alloc(c, TranslationKind::Data, 10);
        assert_eq!(start, 100);
    }

    #[test]
    fn fill_of_resident_entry_does_not_duplicate() {
        let mut t = tlb();
        let va = VirtAddr::new(0x9000);
        fill4k(&mut t, va, 0x1);
        fill4k(&mut t, va, 0x1);
        // Still resident and set not polluted: other ways still free for
        // three more distinct pages without evicting it.
        for i in 1..4u64 {
            fill4k(&mut t, VirtAddr::new(0x9000 + i * 16 * 4096), i);
        }
        assert!(t.contains(va, PageSize::Base4K));
    }

    #[test]
    fn split_stlb_routes_by_kind() {
        let mk = || Tlb::new(cfg(), Lru::new(16, 4));
        let mut s = LastLevelTlb::Split {
            instr: mk(),
            data: mk(),
        };
        let va = VirtAddr::new(0x5000);
        s.for_kind(TranslationKind::Instruction).fill(
            va.vpn(PageSize::Base4K).0,
            PageSize::Base4K,
            PhysAddr::new(0x1000),
            TranslationKind::Instruction,
            Asid::KERNEL,
            0,
            ThreadId(0),
            1,
            0,
        );
        assert!(s
            .for_kind(TranslationKind::Instruction)
            .contains(va, PageSize::Base4K));
        assert!(!s
            .for_kind(TranslationKind::Data)
            .contains(va, PageSize::Base4K));
        assert_eq!(s.entries(), 128);
    }

    /// A policy that violates the `victim() < ways` contract.
    #[cfg(any(debug_assertions, feature = "strict-contracts"))]
    #[derive(Debug)]
    struct OutOfRangeVictim;

    #[cfg(any(debug_assertions, feature = "strict-contracts"))]
    impl itpx_policy::Policy<TlbMeta> for OutOfRangeVictim {
        fn on_fill(&mut self, _: usize, _: usize, _: &TlbMeta) {}
        fn on_hit(&mut self, _: usize, _: usize, _: &TlbMeta) {}
        fn victim(&mut self, _: usize, _: &TlbMeta) -> usize {
            usize::MAX
        }
        fn name(&self) -> &'static str {
            "out-of-range-victim"
        }
        fn meta_bits(&self, _: usize, _: usize) -> u64 {
            0
        }
    }

    /// Debug and strict-contracts builds must catch a policy returning an
    /// out-of-range way at the eviction site (plain release builds defer
    /// to the slice bounds check).
    #[cfg(any(debug_assertions, feature = "strict-contracts"))]
    #[test]
    #[should_panic(expected = "out of range")]
    fn strict_builds_catch_out_of_range_victims() {
        let mut t = Tlb::new(
            TlbConfig {
                sets: 1,
                ways: 2,
                latency: 1,
                mshr_entries: 2,
            },
            TlbPolicyEngine::boxed(OutOfRangeVictim),
        );
        for i in 0..3u64 {
            // Three distinct pages into a 2-way single set: the third
            // fill asks the policy for a victim.
            fill4k(&mut t, VirtAddr::new(i * 4096), i + 1);
        }
    }

    #[test]
    fn export_import_roundtrip_preserves_membership() {
        let mut src = tlb();
        // Mixed page sizes and kinds across several sets.
        for i in 0..12u64 {
            fill4k(&mut src, VirtAddr::new(i * 4096), i + 1);
        }
        src.fill(
            VirtAddr::new(0x4000_0000).vpn(PageSize::Huge2M).0,
            PageSize::Huge2M,
            PhysAddr::new(0x8000_0000),
            TranslationKind::Instruction,
            Asid::KERNEL,
            0,
            ThreadId(0),
            10,
            0,
        );
        let exported = src.export_entries();
        assert_eq!(exported.len(), src.resident_count());

        let mut dst = tlb();
        fill4k(&mut dst, VirtAddr::new(0xdead_0000), 99); // stale content, must be dropped
        dst.import_entries(exported.clone());
        assert_eq!(dst.resident_count(), exported.len());
        assert!(!dst.contains(VirtAddr::new(0xdead_0000), PageSize::Base4K));
        for i in 0..12u64 {
            assert!(dst.contains(VirtAddr::new(i * 4096), PageSize::Base4K));
        }
        assert!(dst.contains(VirtAddr::new(0x4000_0000), PageSize::Huge2M));
        // Exported kinds survive the roundtrip.
        assert_eq!(dst.export_entries().len(), exported.len());
        let huge = dst
            .export_entries()
            .into_iter()
            .find(|(_, size, _, _, _)| *size == PageSize::Huge2M)
            .expect("huge entry survives");
        assert_eq!(huge.3, TranslationKind::Instruction);
        assert_eq!(huge.4, Asid::KERNEL);
    }

    #[test]
    fn import_does_not_touch_stats_and_sets_mru_order() {
        let mut src = Tlb::new(
            TlbConfig {
                sets: 1,
                ways: 2,
                latency: 1,
                mshr_entries: 2,
            },
            Lru::new(1, 2),
        );
        // Install A then B: export order is ways-ascending (A first = LRU).
        fill4k(&mut src, VirtAddr::new(0x1000), 1);
        fill4k(&mut src, VirtAddr::new(0x2000), 2);

        let mut dst = Tlb::new(
            TlbConfig {
                sets: 1,
                ways: 2,
                latency: 1,
                mshr_entries: 2,
            },
            Lru::new(1, 2),
        );
        dst.import_entries(src.export_entries());
        assert_eq!(dst.stats().accesses(), 0, "import is not simulated traffic");
        assert_eq!(dst.stats().misses(), 0);
        // B was installed last (MRU); a new fill must evict A, not B.
        fill4k(&mut dst, VirtAddr::new(0x3000), 3);
        assert!(!dst.contains(VirtAddr::new(0x1000), PageSize::Base4K));
        assert!(dst.contains(VirtAddr::new(0x2000), PageSize::Base4K));
    }

    #[test]
    fn reset_boundary_clears_stats_keeps_entries() {
        let mut t = tlb();
        let va = VirtAddr::new(0x1234_5678);
        let _ = t.lookup(va, TranslationKind::Data, 0, ThreadId(0), 0);
        fill4k(&mut t, va, 0x1);
        assert!(t.stats().accesses() > 0);
        t.reset_boundary();
        assert_eq!(t.stats().accesses(), 0);
        assert!(t.contains(va, PageSize::Base4K));
    }

    #[test]
    fn asid_tag_gates_hits_and_global_entries_are_exempt() {
        let mut t = tlb();
        let va = VirtAddr::new(0x1000);
        let shared = VirtAddr::new(0x2000);
        fill4k_tagged(&mut t, va, 0x1, Asid(1));
        fill4k_tagged(&mut t, shared, 0x2, Asid::GLOBAL);
        // Current ASID is KERNEL (0): the tenant-1 entry is invisible,
        // the global one hits.
        assert!(!t.contains(va, PageSize::Base4K));
        assert!(t.contains(shared, PageSize::Base4K));
        t.set_current_asid(Asid(1));
        assert!(t.contains(va, PageSize::Base4K));
        assert!(t.contains(shared, PageSize::Base4K));
        assert!(matches!(
            t.lookup(va, TranslationKind::Data, 0, ThreadId(0), 0),
            TlbLookup::Hit { .. }
        ));
        t.set_current_asid(Asid(2));
        assert_eq!(
            t.lookup(va, TranslationKind::Data, 0, ThreadId(0), 0),
            TlbLookup::Miss
        );
    }

    #[test]
    fn flush_asid_spares_other_tenants_and_globals() {
        let mut t = tlb();
        fill4k_tagged(&mut t, VirtAddr::new(0x1000), 0x1, Asid(1));
        fill4k_tagged(&mut t, VirtAddr::new(0x2000), 0x2, Asid(2));
        fill4k_tagged(&mut t, VirtAddr::new(0x3000), 0x3, Asid::GLOBAL);
        t.flush_asid(Asid(1));
        assert!(!t.contains_tagged(VirtAddr::new(0x1000), PageSize::Base4K, Asid(1)));
        assert!(t.contains_tagged(VirtAddr::new(0x2000), PageSize::Base4K, Asid(2)));
        assert!(t.contains_tagged(VirtAddr::new(0x3000), PageSize::Base4K, Asid::GLOBAL));
        assert_eq!(t.resident_count(), 2);
    }

    #[test]
    fn invalidate_page_is_exact_by_va_and_asid() {
        let mut t = tlb();
        let va = VirtAddr::new(0x5000);
        fill4k_tagged(&mut t, va, 0x1, Asid(1));
        fill4k_tagged(&mut t, va, 0x2, Asid(2));
        t.invalidate_page(va, Asid(1));
        assert!(!t.contains_tagged(va, PageSize::Base4K, Asid(1)));
        assert!(t.contains_tagged(va, PageSize::Base4K, Asid(2)));
    }

    #[test]
    fn invalidate_region_drops_both_granularities() {
        let mut t = tlb();
        let region = VirtAddr::new(0x4000_0000);
        t.fill(
            region.vpn(PageSize::Huge2M).0,
            PageSize::Huge2M,
            PhysAddr::new(0x8000_0000),
            TranslationKind::Data,
            Asid::KERNEL,
            0,
            ThreadId(0),
            1,
            0,
        );
        fill4k(&mut t, VirtAddr::new(0x4000_1000), 0x9);
        fill4k(&mut t, VirtAddr::new(0x5000_0000), 0xa); // outside region
        t.invalidate_region(region.vpn(PageSize::Huge2M).0);
        assert!(!t.contains(region, PageSize::Huge2M));
        assert!(!t.contains(VirtAddr::new(0x4000_1000), PageSize::Base4K));
        assert!(t.contains(VirtAddr::new(0x5000_0000), PageSize::Base4K));
    }

    #[test]
    fn export_carries_asid_through_roundtrip() {
        let mut src = tlb();
        fill4k_tagged(&mut src, VirtAddr::new(0x1000), 0x1, Asid(3));
        let mut dst = tlb();
        dst.import_entries(src.export_entries());
        assert!(dst.contains_tagged(VirtAddr::new(0x1000), PageSize::Base4K, Asid(3)));
        assert!(!dst.contains(VirtAddr::new(0x1000), PageSize::Base4K));
    }

    #[test]
    fn stats_split_by_translation_kind() {
        let mut t = tlb();
        let _ = t.lookup(
            VirtAddr::new(0x1000),
            TranslationKind::Instruction,
            0,
            ThreadId(0),
            0,
        );
        let _ = t.lookup(
            VirtAddr::new(0x2000),
            TranslationKind::Data,
            0,
            ThreadId(0),
            0,
        );
        let b = t.stats().mpki_breakdown(1000);
        assert!(b.instr > 0.0 && b.data > 0.0);
        assert_eq!(t.stats().misses(), 2);
    }
}
