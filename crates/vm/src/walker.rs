//! The hardware page-table walker.
//!
//! On an STLB miss the walker consults the page-structure caches to pick a
//! start level, then performs one dependent memory reference per remaining
//! page-table level. Each reference is issued to the cache hierarchy
//! starting at the L2C, tagged with the fill class
//! [`itpx_types::FillClass::pte_for`] of the translation kind — the `Type`
//! bit that xPTP stores in L2C MSHRs and blocks (Figure 7, step 3).
//!
//! The walker supports a bounded number of concurrent walks (Table 1: up
//! to four); an arriving walk waits for a free walk register.

use crate::page_table::Translation;
use crate::psc::SplitPscs;
use itpx_types::{Cycle, OnlineMean, PhysAddr, TranslationKind};

/// The walker's view of the memory hierarchy: one page-walk reference,
/// returning its completion cycle.
///
/// Implemented by the full system in `itpx-cpu` (routing to the L2C); tests
/// use fixed-latency stubs. A `&mut` reference can be passed where an
/// implementation is expected.
pub trait PteMemory {
    /// Performs a page-walk read of the PTE at `pa` for a `kind`
    /// translation, starting no earlier than `now`; returns the cycle the
    /// data is available to the walker.
    fn pte_access(&mut self, pa: PhysAddr, kind: TranslationKind, now: Cycle) -> Cycle;
}

impl<T: PteMemory + ?Sized> PteMemory for &mut T {
    fn pte_access(&mut self, pa: PhysAddr, kind: TranslationKind, now: Cycle) -> Cycle {
        (**self).pte_access(pa, kind, now)
    }
}

/// Result of one page walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkOutcome {
    /// Cycle at which the translation is available.
    pub done: Cycle,
    /// Page-table level the walk started at after PSC lookups.
    pub start_level: u8,
    /// Number of memory references the walk performed.
    pub memory_refs: usize,
}

/// The hardware page-table walker.
#[derive(Debug)]
pub struct PageWalker {
    /// Busy-until time of each concurrent walk register.
    slots: Vec<Cycle>,
    walks: u64,
    instr_walks: u64,
    refs: u64,
    latency: OnlineMean,
}

impl PageWalker {
    /// Creates a walker supporting `concurrency` simultaneous walks.
    ///
    /// # Panics
    ///
    /// Panics if `concurrency == 0`.
    pub fn new(concurrency: usize) -> Self {
        assert!(concurrency > 0, "walker needs at least one walk register");
        Self {
            slots: vec![0; concurrency],
            walks: 0,
            instr_walks: 0,
            refs: 0,
            latency: OnlineMean::new(),
        }
    }

    /// Performs a walk for `translation`, consulting and refilling `pscs`
    /// and issuing PTE references through `mem`.
    pub fn walk(
        &mut self,
        translation: &Translation,
        kind: TranslationKind,
        pscs: &mut SplitPscs,
        mut mem: impl PteMemory,
        now: Cycle,
    ) -> WalkOutcome {
        // Acquire the earliest-free walk register.
        let slot = self
            .slots
            .iter()
            .enumerate()
            .min_by_key(|&(_, &busy)| busy)
            .map(|(i, _)| i)
            // cfg validation guarantees at least one walker slot
            .expect("non-empty slots");
        let start = now.max(self.slots[slot]);

        // PSC tags are namespaced by the translation's address space so
        // tenants walking the same virtual page never share page-table
        // nodes ([`crate::psc::namespaced_vpn`] is the identity for the
        // single-tenant KERNEL tag).
        let vpn4k = crate::psc::namespaced_vpn(
            match translation.size {
                itpx_types::PageSize::Base4K => translation.vpn,
                itpx_types::PageSize::Huge2M => translation.vpn << 9,
            },
            translation.asid,
        );
        let mut t = start + pscs.latency;
        let start_level = pscs.start_level(vpn4k);
        let steps = translation.path.from_level(start_level);
        for &(_level, pa) in steps {
            t = mem.pte_access(pa, kind, t);
        }
        pscs.fill(vpn4k, translation.path.leaf_level());

        self.slots[slot] = t;
        self.walks += 1;
        if kind.is_instruction() {
            self.instr_walks += 1;
        }
        self.refs += steps.len() as u64;
        // itpx-allow: hot-float statistics sink only; the float mean never feeds back into simulated state
        self.latency.add((t - now) as f64);
        WalkOutcome {
            done: t,
            start_level,
            memory_refs: steps.len(),
        }
    }

    /// Clears statistics (walk-register state is preserved).
    pub fn reset_stats(&mut self) {
        self.walks = 0;
        self.instr_walks = 0;
        self.refs = 0;
        self.latency = OnlineMean::new();
    }

    /// Total walks performed.
    pub fn walks(&self) -> u64 {
        self.walks
    }

    /// Walks serving instruction translations.
    pub fn instruction_walks(&self) -> u64 {
        self.instr_walks
    }

    /// Walks serving data translations.
    pub fn data_walks(&self) -> u64 {
        self.walks - self.instr_walks
    }

    /// Total page-table memory references issued across all walks.
    pub fn memory_refs(&self) -> u64 {
        self.refs
    }

    /// Mean end-to-end walk latency in cycles (including waiting for a
    /// free walk register).
    pub fn avg_latency(&self) -> f64 {
        self.latency.mean()
    }

    /// Mean memory references per walk.
    pub fn avg_memory_refs(&self) -> f64 {
        if self.walks == 0 {
            0.0
        } else {
            self.refs as f64 / self.walks as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page_table::{HugePagePolicy, PageTable};
    use itpx_types::VirtAddr;

    /// Fixed-latency memory stub counting accesses.
    #[derive(Debug, Default)]
    struct StubMem {
        latency: u64,
        accesses: Vec<(PhysAddr, TranslationKind, Cycle)>,
    }

    impl PteMemory for StubMem {
        fn pte_access(&mut self, pa: PhysAddr, kind: TranslationKind, now: Cycle) -> Cycle {
            self.accesses.push((pa, kind, now));
            now + self.latency
        }
    }

    fn setup() -> (PageTable, SplitPscs, PageWalker, StubMem) {
        (
            PageTable::new(HugePagePolicy::none(), 1),
            SplitPscs::asplos25(),
            PageWalker::new(4),
            StubMem {
                latency: 10,
                accesses: Vec::new(),
            },
        )
    }

    #[test]
    fn cold_walk_touches_five_levels() {
        let (mut pt, mut pscs, mut w, mut mem) = setup();
        let tr = pt.translate(VirtAddr::new(0x1234_5000), TranslationKind::Data);
        let out = w.walk(&tr, TranslationKind::Data, &mut pscs, &mut mem, 0);
        assert_eq!(out.memory_refs, 5);
        assert_eq!(out.start_level, 5);
        // PSC latency (2) + 5 dependent refs × 10.
        assert_eq!(out.done, 2 + 50);
        assert_eq!(mem.accesses.len(), 5);
    }

    #[test]
    fn warm_walk_skips_to_level_2() {
        let (mut pt, mut pscs, mut w, mut mem) = setup();
        let tr = pt.translate(VirtAddr::new(0x1234_5000), TranslationKind::Data);
        w.walk(&tr, TranslationKind::Data, &mut pscs, &mut mem, 0);
        let tr2 = pt.translate(VirtAddr::new(0x1234_5000 + 4096), TranslationKind::Data);
        let out = w.walk(&tr2, TranslationKind::Data, &mut pscs, &mut mem, 100);
        assert_eq!(out.start_level, 2);
        assert_eq!(out.memory_refs, 2);
    }

    #[test]
    fn references_are_sequential_and_dependent() {
        let (mut pt, mut pscs, mut w, mut mem) = setup();
        let tr = pt.translate(VirtAddr::new(0x9999_9000), TranslationKind::Instruction);
        w.walk(&tr, TranslationKind::Instruction, &mut pscs, &mut mem, 0);
        for pair in mem.accesses.windows(2) {
            assert_eq!(pair[1].2, pair[0].2 + 10, "each ref waits for the previous");
        }
        assert!(mem.accesses.iter().all(|&(_, k, _)| k.is_instruction()));
    }

    #[test]
    fn concurrency_limits_parallel_walks() {
        let (mut pt, mut pscs, mut w, mut mem) = setup();
        let mut w1 = PageWalker::new(1);
        let a = pt.translate(VirtAddr::new(0x1_0000), TranslationKind::Data);
        let b = pt.translate(VirtAddr::new(0x8_0000_0000), TranslationKind::Data);
        let d1 = w1.walk(&a, TranslationKind::Data, &mut pscs, &mut mem, 0);
        let d2 = w1.walk(&b, TranslationKind::Data, &mut pscs, &mut mem, 0);
        assert!(d2.done > d1.done, "single-register walker serializes walks");
        // A 4-register walker overlaps them: the second walk is not pushed
        // past the first (it may even finish earlier thanks to PSC reuse).
        let mut pscs2 = SplitPscs::asplos25();
        let d3 = w.walk(&a, TranslationKind::Data, &mut pscs2, &mut mem, 0);
        let d4 = w.walk(&b, TranslationKind::Data, &mut pscs2, &mut mem, 0);
        assert!(d4.done <= d3.done, "concurrent walks overlap");
    }

    #[test]
    fn huge_walk_has_four_refs_cold() {
        let mut pt = PageTable::new(HugePagePolicy::uniform(1.0, 3), 1);
        let mut pscs = SplitPscs::asplos25();
        let mut w = PageWalker::new(4);
        let mut mem = StubMem {
            latency: 10,
            accesses: Vec::new(),
        };
        let tr = pt.translate(VirtAddr::new(0x4000_0000), TranslationKind::Data);
        let out = w.walk(&tr, TranslationKind::Data, &mut pscs, &mut mem, 0);
        assert_eq!(out.memory_refs, 4);
    }

    #[test]
    fn stats_accumulate() {
        let (mut pt, mut pscs, mut w, mut mem) = setup();
        let a = pt.translate(VirtAddr::new(0x1000), TranslationKind::Instruction);
        let b = pt.translate(VirtAddr::new(0x2000), TranslationKind::Data);
        w.walk(&a, TranslationKind::Instruction, &mut pscs, &mut mem, 0);
        w.walk(&b, TranslationKind::Data, &mut pscs, &mut mem, 0);
        assert_eq!(w.walks(), 2);
        assert_eq!(w.instruction_walks(), 1);
        assert_eq!(w.data_walks(), 1);
        assert!(w.avg_latency() > 0.0);
        assert!(w.avg_memory_refs() > 0.0);
    }
}
