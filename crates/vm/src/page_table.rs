//! A 5-level radix page table with on-demand mapping.
//!
//! The simulator does not store page contents, but it models the piece of
//! the page table the caches care about: *where in physical memory each
//! page-table entry lives*. A walk for a 4 KiB page touches five PTEs (one
//! per level); a walk for a 2 MiB page stops at level 2. Adjacent virtual
//! pages share PTE cache blocks (eight 8-byte PTEs per 64-byte block),
//! which is exactly the locality the paper's xPTP policy exploits.
//!
//! Mappings are created on demand at first touch (the evaluation assumes
//! warmed-up, fully resident workloads — page faults are not modeled), and
//! physical frames are scattered deterministically so PTE and payload
//! blocks spread over cache sets as they would on a long-lived server.

use itpx_types::fingerprint::{Fingerprint, Fnv1a};
use itpx_types::{Asid, PageSize, PhysAddr, Rng64, TranslationKind, VirtAddr};
use std::collections::HashMap;

/// Number of tree levels (x86-64 5-level paging: PML5 → PT).
pub const LEVELS: u8 = 5;
/// Index bits per level.
const LEVEL_BITS: u32 = 9;
/// Bytes per page-table entry.
const PTE_BYTES: u64 = 8;

/// Physical-address region bases; keeping frames, huge frames, and
/// page-table nodes disjoint by construction.
const FRAME_REGION: u64 = 0x0000_0000_0000;
const HUGE_REGION: u64 = 0x0200_0000_0000;
const NODE_REGION: u64 = 0x0400_0000_0000;

/// Deterministic scattered allocator for 4 KiB physical frames.
///
/// Frame numbers are produced by a bijective multiply over a power-of-two
/// space, so allocations never collide yet land in pseudo-random cache
/// sets — mimicking the fragmented physical memory of a long-uptime server
/// (the reason the paper's 4 KiB-only scenario is the primary one).
#[derive(Debug, Clone)]
pub struct FrameAllocator {
    counter: u64,
    huge_counter: u64,
    node_counter: u64,
    frame_bits: u32,
    salt: u64,
    region_offset: u64,
}

impl FrameAllocator {
    /// Creates an allocator over `2^frame_bits` base frames (default used
    /// by [`PageTable::new`] is 24 bits = 64 GiB of 4 KiB frames).
    pub fn new(frame_bits: u32, seed: u64) -> Self {
        Self::with_region_offset(frame_bits, seed, 0)
    }

    /// Like [`FrameAllocator::new`], with every produced address offset by
    /// `region_offset` — used to give each SMT hardware thread a disjoint
    /// physical address space (separate processes).
    pub fn with_region_offset(frame_bits: u32, seed: u64, region_offset: u64) -> Self {
        assert!((16..=36).contains(&frame_bits), "frame_bits out of range");
        Self {
            counter: 0,
            huge_counter: 0,
            node_counter: 0,
            frame_bits,
            salt: Rng64::new(seed).next_u64() | 1,
            region_offset,
        }
    }

    /// Allocates a 4 KiB payload frame.
    pub fn alloc_frame(&mut self) -> PhysAddr {
        let n = self.counter;
        self.counter += 1;
        let scrambled = n.wrapping_mul(self.salt) & ((1 << self.frame_bits) - 1);
        // itpx-allow: arith-width scrambled is masked to frame_bits (< 40), so the page shift cannot overflow u64
        PhysAddr::new(self.region_offset + FRAME_REGION + (scrambled << PageSize::Base4K.shift()))
    }

    /// Allocates a 2 MiB huge frame (naturally aligned).
    pub fn alloc_huge_frame(&mut self) -> PhysAddr {
        let n = self.huge_counter;
        self.huge_counter += 1;
        let scrambled = n.wrapping_mul(self.salt) & ((1 << (self.frame_bits - 9)) - 1);
        // itpx-allow: arith-width scrambled is masked to frame_bits - 9 bits, so the huge-page shift cannot overflow u64
        PhysAddr::new(self.region_offset + HUGE_REGION + (scrambled << PageSize::Huge2M.shift()))
    }

    /// Allocates a 4 KiB frame holding a page-table node.
    pub fn alloc_node(&mut self) -> PhysAddr {
        let n = self.node_counter;
        self.node_counter += 1;
        let scrambled = n.wrapping_mul(self.salt) & ((1 << self.frame_bits) - 1);
        // itpx-allow: arith-width scrambled is masked to frame_bits (< 40), so the page shift cannot overflow u64
        PhysAddr::new(self.region_offset + NODE_REGION + (scrambled << PageSize::Base4K.shift()))
    }

    /// Number of base frames handed out so far.
    pub fn frames_allocated(&self) -> u64 {
        self.counter
    }
}

/// Decides which 2 MiB virtual regions are backed by huge pages
/// (Section 6.5: "portion of code and data footprint allocated by 2 MB
/// pages").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HugePagePolicy {
    /// Fraction of the *code* footprint backed by 2 MiB pages, in `[0, 1]`.
    pub code_fraction: f64,
    /// Fraction of the *data* footprint backed by 2 MiB pages, in `[0, 1]`.
    pub data_fraction: f64,
    /// Seed for the per-region decision hash.
    pub seed: u64,
}

impl Fingerprint for HugePagePolicy {
    fn fingerprint(&self, h: &mut Fnv1a) {
        h.write_f64(self.code_fraction);
        h.write_f64(self.data_fraction);
        h.write_u64(self.seed);
    }
}

impl HugePagePolicy {
    /// 4 KiB pages only — the paper's primary scenario.
    pub fn none() -> Self {
        Self {
            code_fraction: 0.0,
            data_fraction: 0.0,
            seed: 0,
        }
    }

    /// The same fraction for code and data, as in Figure 13's sweep.
    pub fn uniform(fraction: f64, seed: u64) -> Self {
        Self {
            code_fraction: fraction,
            data_fraction: fraction,
            seed,
        }
    }

    // itpx-allow: hot-float per-region fraction compare with a seeded hash; decided once per region and cached by region_is_huge
    fn is_huge(&self, region_vpn2m: u64, kind: TranslationKind) -> bool {
        let fraction = match kind {
            TranslationKind::Instruction => self.code_fraction,
            TranslationKind::Data => self.data_fraction,
        };
        if fraction <= 0.0 {
            return false;
        }
        if fraction >= 1.0 {
            return true;
        }
        // Stable per-region hash decision.
        let mut h = Rng64::new(self.seed ^ region_vpn2m.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        h.f64() < fraction
    }
}

/// One PTE reference a page walk performs: the tree level (5 = root) and
/// the physical address of the entry.
pub type WalkStep = (u8, PhysAddr);

/// The ordered PTE references of a full (un-cached) walk, root first.
///
/// A walk references at most [`LEVELS`] PTEs, so the steps live inline and
/// building a translation on the per-access path never allocates.
#[derive(Debug, Clone)]
pub struct WalkPath {
    steps: [WalkStep; LEVELS as usize],
    len: usize,
}

impl PartialEq for WalkPath {
    fn eq(&self, other: &Self) -> bool {
        self.steps() == other.steps()
    }
}

impl Eq for WalkPath {}

impl WalkPath {
    fn empty() -> Self {
        Self {
            steps: [(0, PhysAddr::new(0)); LEVELS as usize],
            len: 0,
        }
    }

    fn record(&mut self, step: WalkStep) {
        self.steps[self.len] = step;
        self.len += 1;
    }

    /// All steps, root (level 5) first, leaf last.
    pub fn steps(&self) -> &[WalkStep] {
        &self.steps[..self.len]
    }

    /// The steps remaining when the walk can start at `start_level`
    /// (because a page-structure cache supplied the node at
    /// `start_level + 1`).
    pub fn from_level(&self, start_level: u8) -> &[WalkStep] {
        let all = self.steps();
        let i = all
            .iter()
            .position(|&(l, _)| l <= start_level)
            .unwrap_or(all.len());
        &all[i..]
    }

    /// Level of the leaf PTE (1 for 4 KiB pages, 2 for 2 MiB pages).
    pub fn leaf_level(&self) -> u8 {
        // walks always record at least the leaf step
        self.steps().last().expect("non-empty walk").0
    }
}

/// A completed translation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Translation {
    /// Physical address corresponding to the queried virtual address.
    pub pa: PhysAddr,
    /// Page size of the mapping.
    pub size: PageSize,
    /// Virtual page number at that page size.
    pub vpn: u64,
    /// Physical base of the page (frame address).
    pub frame: PhysAddr,
    /// Address-space tag the mapping belongs to. A bare [`PageTable`]
    /// always answers [`Asid::KERNEL`] (the single-tenant default);
    /// [`crate::AddressSpace`] retags translations per tenant and marks
    /// shared mappings [`Asid::GLOBAL`].
    pub asid: Asid,
    /// PTE references a full walk would perform.
    pub path: WalkPath,
}

/// The 5-level radix page table.
#[derive(Debug, Clone)]
pub struct PageTable {
    allocator: FrameAllocator,
    huge: HugePagePolicy,
    /// (level, vpn_prefix) → node frame base.
    nodes: HashMap<(u8, u64), PhysAddr>,
    /// 4 KiB leaf mappings: vpn4k → frame.
    map4k: HashMap<u64, PhysAddr>,
    /// 2 MiB leaf mappings: vpn2m → frame.
    map2m: HashMap<u64, PhysAddr>,
    /// Huge/base decision per 2 MiB region, fixed at first touch.
    region_huge: HashMap<u64, bool>,
}

impl PageTable {
    /// Creates an empty page table with the given huge-page policy.
    pub fn new(huge: HugePagePolicy, seed: u64) -> Self {
        Self::with_region_offset(huge, seed, 0)
    }

    /// Like [`PageTable::new`], with all physical addresses offset by
    /// `region_offset` (disjoint address spaces for SMT threads).
    pub fn with_region_offset(huge: HugePagePolicy, seed: u64, region_offset: u64) -> Self {
        Self {
            allocator: FrameAllocator::with_region_offset(24, seed, region_offset),
            huge,
            nodes: HashMap::new(),
            map4k: HashMap::new(),
            map2m: HashMap::new(),
            region_huge: HashMap::new(),
        }
    }

    /// Physical address of the page-table node containing the entry for
    /// `vpn4k` at `level`, allocating the node on first touch.
    fn node_base(&mut self, level: u8, vpn4k: u64) -> PhysAddr {
        let prefix = vpn4k >> (LEVEL_BITS * level as u32);
        if let Some(&pa) = self.nodes.get(&(level, prefix)) {
            return pa;
        }
        let pa = self.allocator.alloc_node();
        // itpx-allow: hot-alloc first touch of a page-table node; bounded by the mapped footprint, not the access count
        self.nodes.insert((level, prefix), pa);
        pa
    }

    /// Physical address of the PTE for `vpn4k` at `level`.
    fn pte_pa(&mut self, level: u8, vpn4k: u64) -> PhysAddr {
        let idx = (vpn4k >> (LEVEL_BITS * (level as u32 - 1))) & ((1 << LEVEL_BITS) - 1);
        self.node_base(level, vpn4k).offset(idx * PTE_BYTES)
    }

    /// Whether the 2 MiB region containing `vpn4k` is huge-mapped,
    /// deciding (and fixing) it at first touch.
    fn region_is_huge(&mut self, vpn4k: u64, kind: TranslationKind) -> bool {
        let region = vpn4k >> LEVEL_BITS;
        if let Some(&h) = self.region_huge.get(&region) {
            return h;
        }
        let h = self.huge.is_huge(region, kind);
        // itpx-allow: hot-alloc first touch of a 2 MiB region; bounded by the mapped footprint, not the access count
        self.region_huge.insert(region, h);
        h
    }

    /// Translates a virtual address, creating the mapping on first touch.
    ///
    /// `kind` is used only for the huge-page decision of a region's first
    /// touch (code and data live in disjoint regions in the synthetic
    /// workloads, so this matches an OS mapping code and data segments with
    /// different page sizes).
    pub fn translate(&mut self, va: VirtAddr, kind: TranslationKind) -> Translation {
        let vpn4k = va.vpn(PageSize::Base4K).0;
        let huge = self.region_is_huge(vpn4k, kind);
        let mut path = WalkPath::empty();
        let leaf = if huge {
            PageSize::Huge2M.leaf_level()
        } else {
            PageSize::Base4K.leaf_level()
        };
        for level in (leaf..=LEVELS).rev() {
            path.record((level, self.pte_pa(level, vpn4k)));
        }
        if huge {
            let vpn2m = va.vpn(PageSize::Huge2M).0;
            let frame = match self.map2m.get(&vpn2m) {
                Some(&f) => f,
                None => {
                    let f = self.allocator.alloc_huge_frame();
                    // itpx-allow: hot-alloc first touch of a huge page; bounded by the mapped footprint, not the access count
                    self.map2m.insert(vpn2m, f);
                    f
                }
            };
            Translation {
                pa: frame.offset(va.page_offset(PageSize::Huge2M)),
                size: PageSize::Huge2M,
                vpn: vpn2m,
                frame,
                asid: Asid::KERNEL,
                path,
            }
        } else {
            let frame = match self.map4k.get(&vpn4k) {
                Some(&f) => f,
                None => {
                    let f = self.allocator.alloc_frame();
                    // itpx-allow: hot-alloc first touch of a 4 KiB page; bounded by the mapped footprint, not the access count
                    self.map4k.insert(vpn4k, f);
                    f
                }
            };
            Translation {
                pa: frame.offset(va.page_offset(PageSize::Base4K)),
                size: PageSize::Base4K,
                vpn: vpn4k,
                frame,
                asid: Asid::KERNEL,
                path,
            }
        }
    }

    /// Flips the huge/base decision of the 2 MiB region `region_vpn2m` —
    /// a huge-page promotion (or demotion) — and drops the region's leaf
    /// mappings so the next touch re-maps it at the new granularity with
    /// fresh frames, the way a real promotion migrates data. Upper-level
    /// page-table nodes are untouched. Returns the region's new state.
    ///
    /// Callers owning TLBs must pair this with a region invalidation:
    /// stale leaf entries would otherwise translate to the old frames.
    pub fn toggle_region_huge(&mut self, region_vpn2m: u64) -> bool {
        let now_huge = !self
            .region_huge
            .get(&region_vpn2m)
            .copied()
            .unwrap_or(false);
        // itpx-allow: hot-alloc churn is cadence-driven (thousands of instructions apart), not per-access, and the map is bounded by the touched-region footprint
        self.region_huge.insert(region_vpn2m, now_huge);
        self.map2m.remove(&region_vpn2m);
        self.map4k
            // itpx-allow: map-iter retain only drops the region's leaves; no per-entry side effects, so hash order cannot leak into simulated state
            .retain(|&vpn4k, _| vpn4k >> LEVEL_BITS != region_vpn2m);
        now_huge
    }

    /// Number of distinct 4 KiB pages mapped so far.
    pub fn mapped_4k_pages(&self) -> usize {
        self.map4k.len()
    }

    /// Number of distinct 2 MiB pages mapped so far.
    pub fn mapped_2m_pages(&self) -> usize {
        self.map2m.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt() -> PageTable {
        PageTable::new(HugePagePolicy::none(), 42)
    }

    #[test]
    fn translation_is_stable() {
        let mut t = pt();
        let va = VirtAddr::new(0x1234_5000 + 0x77);
        let a = t.translate(va, TranslationKind::Data);
        let b = t.translate(va, TranslationKind::Data);
        assert_eq!(a, b);
        assert_eq!(a.pa.0 & 0xfff, 0x77, "page offset preserved");
    }

    #[test]
    fn distinct_pages_get_distinct_frames() {
        let mut t = pt();
        let a = t.translate(VirtAddr::new(0x1000), TranslationKind::Data);
        let b = t.translate(VirtAddr::new(0x2000), TranslationKind::Data);
        assert_ne!(a.frame, b.frame);
    }

    #[test]
    fn walk_path_has_five_levels_for_4k() {
        let mut t = pt();
        let tr = t.translate(VirtAddr::new(0xdead_b000), TranslationKind::Data);
        let levels: Vec<u8> = tr.path.steps().iter().map(|&(l, _)| l).collect();
        assert_eq!(levels, vec![5, 4, 3, 2, 1]);
        assert_eq!(tr.path.leaf_level(), 1);
    }

    #[test]
    fn adjacent_pages_share_leaf_pte_block() {
        let mut t = pt();
        let a = t.translate(VirtAddr::new(0x40_0000), TranslationKind::Data);
        let b = t.translate(VirtAddr::new(0x40_1000), TranslationKind::Data);
        let leaf_a = a.path.steps().last().unwrap().1;
        let leaf_b = b.path.steps().last().unwrap().1;
        assert_eq!(leaf_a.block(), leaf_b.block());
        assert_ne!(leaf_a, leaf_b);
    }

    #[test]
    fn huge_mapping_stops_at_level_2() {
        let mut t = PageTable::new(HugePagePolicy::uniform(1.0, 7), 42);
        let tr = t.translate(VirtAddr::new(0x1234_5678), TranslationKind::Data);
        assert_eq!(tr.size, PageSize::Huge2M);
        assert_eq!(tr.path.leaf_level(), 2);
        assert_eq!(tr.path.steps().len(), 4);
        // The whole 2 MiB region shares one frame.
        let tr2 = t.translate(VirtAddr::new(0x1230_0000), TranslationKind::Data);
        assert_eq!(tr.frame, tr2.frame);
    }

    #[test]
    fn huge_decision_is_stable_per_region() {
        let mut t = PageTable::new(HugePagePolicy::uniform(0.5, 9), 1);
        let mut sizes = std::collections::HashMap::new();
        for rep in 0..2 {
            for r in 0..64u64 {
                let va = VirtAddr::new(r << 21);
                let s = t.translate(va, TranslationKind::Data).size;
                if rep == 0 {
                    sizes.insert(r, s);
                } else {
                    assert_eq!(sizes[&r], s);
                }
            }
        }
        let huge = sizes.values().filter(|&&s| s == PageSize::Huge2M).count();
        assert!((16..=48).contains(&huge), "roughly half huge, got {huge}");
    }

    #[test]
    fn walk_path_from_level_skips_upper_steps() {
        let mut t = pt();
        let tr = t.translate(VirtAddr::new(0x5000), TranslationKind::Data);
        let rest = tr.path.from_level(2);
        let levels: Vec<u8> = rest.iter().map(|&(l, _)| l).collect();
        assert_eq!(levels, vec![2, 1]);
        assert!(tr.path.from_level(0).is_empty());
        assert_eq!(tr.path.from_level(5).len(), 5);
    }

    #[test]
    fn physical_regions_do_not_collide() {
        let mut alloc = FrameAllocator::new(20, 3);
        let f = alloc.alloc_frame();
        let h = alloc.alloc_huge_frame();
        let n = alloc.alloc_node();
        assert!(f.0 < HUGE_REGION);
        assert!((HUGE_REGION..NODE_REGION).contains(&h.0));
        assert!(n.0 >= NODE_REGION);
    }

    #[test]
    fn allocator_never_hands_out_duplicate_frames() {
        let mut alloc = FrameAllocator::new(16, 9);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..4096 {
            assert!(seen.insert(alloc.alloc_frame().0));
        }
    }

    #[test]
    fn toggle_region_huge_flips_size_and_remaps() {
        let mut t = pt();
        let va = VirtAddr::new(0x40_0000);
        let before = t.translate(va, TranslationKind::Data);
        assert_eq!(before.size, PageSize::Base4K);
        let region = va.vpn(PageSize::Huge2M).0;
        assert!(t.toggle_region_huge(region), "promoted to huge");
        let after = t.translate(va, TranslationKind::Data);
        assert_eq!(after.size, PageSize::Huge2M);
        assert_ne!(before.frame, after.frame, "promotion migrates the data");
        assert!(!t.toggle_region_huge(region), "demoted back to base");
        let again = t.translate(va, TranslationKind::Data);
        assert_eq!(again.size, PageSize::Base4K);
        assert_ne!(again.frame, before.frame, "demotion re-allocates too");
    }

    #[test]
    fn toggle_region_huge_leaves_other_regions_alone() {
        let mut t = pt();
        let other = VirtAddr::new(0x80_0000);
        let kept = t.translate(other, TranslationKind::Data);
        t.toggle_region_huge(VirtAddr::new(0x40_0000).vpn(PageSize::Huge2M).0);
        assert_eq!(t.translate(other, TranslationKind::Data), kept);
    }

    #[test]
    fn instruction_vs_data_fraction_respected() {
        let policy = HugePagePolicy {
            code_fraction: 1.0,
            data_fraction: 0.0,
            seed: 5,
        };
        let mut t = PageTable::new(policy, 11);
        let code = t.translate(VirtAddr::new(0x10_0000_0000), TranslationKind::Instruction);
        let data = t.translate(VirtAddr::new(0x20_0000_0000), TranslationKind::Data);
        assert_eq!(code.size, PageSize::Huge2M);
        assert_eq!(data.size, PageSize::Base4K);
    }
}
