//! Virtual-memory substrate for the `itpx` simulator.
//!
//! The paper's policies live at the boundary between address translation
//! and the cache hierarchy, so this crate models the whole x86-64-style
//! translation machinery the evaluation assumes (Section 5.1):
//!
//! * [`address_space`] — multi-tenant address spaces: per-ASID page
//!   tables, a shared global table, and the current-ASID register driving
//!   consolidation scenarios.
//! * [`page_table`] — a 5-level radix page table with on-demand mapping,
//!   4 KiB and 2 MiB leaves, and a deterministic physical frame allocator;
//!   walks yield the *physical addresses of the PTEs touched at each
//!   level*, which is what the cache hierarchy sees.
//! * [`psc`] — split page-structure caches (PSCL5/PSCL4/PSCL3/PSCL2,
//!   Table 1) that let walks skip upper levels.
//! * [`walker`] — the hardware page-table walker: up to four concurrent
//!   walks, PSC lookups, and one cache-hierarchy access per remaining
//!   level, issued to the L2C as the paper assumes.
//! * [`tlb`] — a set-associative TLB with pluggable replacement, miss
//!   tracking with the paper's per-MSHR `Type` bit, and both unified and
//!   split last-level organizations (Section 6.6).
//! * [`path`] — the assembled pipeline: one [`TranslationPath`] drives an
//!   address through ITLB/DTLB → STLB → walker with all timing side
//!   effects, funneling every miss resolution through a single
//!   fill-and-complete helper.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod address_space;
pub mod page_table;
pub mod path;
pub mod psc;
pub mod tlb;
pub mod walker;

pub use address_space::AddressSpace;
pub use page_table::{FrameAllocator, HugePagePolicy, PageTable, Translation, WalkPath};
pub use path::{PathResult, TranslationPath};
pub use psc::{namespaced_vpn, tag_asid, PageStructureCache, SplitPscs};
pub use tlb::{LastLevelTlb, Tlb, TlbConfig, TlbEntry, TlbLookup};
pub use walker::{PageWalker, PteMemory, WalkOutcome};
