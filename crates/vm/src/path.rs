//! The unified first-level-TLB → STLB → page-walk pipeline.
//!
//! [`TranslationPath`] owns every translation structure of the paper's
//! Figure 7 — ITLB, DTLB, the last-level TLB organization, the split
//! page-structure caches, and the walker — and drives one address
//! through them with all timing side effects: MSHR allocation and
//! merging at both TLB levels, the per-MSHR `Type` bit, and the walk's
//! PTE references issued into the cache hierarchy through a
//! [`PteMemory`] window. Every way a miss can resolve (STLB hit, merge
//! under an in-flight walk, fresh walk) funnels through one
//! [`Tlb::fill_and_complete`] call.
//!
//! The path is deliberately ignorant of the machine around it: the
//! caller supplies the page table (per-thread in SMT configurations)
//! and the cache-hierarchy window per call, and observes STLB misses
//! through [`PathResult::stlb_miss`] (the adaptive monitor's feed).

use crate::address_space::AddressSpace;
use crate::psc::SplitPscs;
use crate::tlb::{LastLevelTlb, Tlb, TlbLookup};
use crate::walker::{PageWalker, PteMemory};
use itpx_types::{Asid, Cycle, PhysAddr, ResetBoundary, ThreadId, TranslationKind, VirtAddr};

/// Result of a full translation: physical address, availability cycle,
/// and whether the STLB missed (the flag T-DRRIP consumes, Figure 7
/// step 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathResult {
    /// Physical address of the access.
    pub pa: PhysAddr,
    /// Cycle at which the translation is available.
    pub done: Cycle,
    /// Whether the request missed in the STLB.
    pub stlb_miss: bool,
}

/// The translation pipeline: first-level TLBs, last-level TLB, page
/// structure caches, and the page-table walker.
#[derive(Debug)]
pub struct TranslationPath {
    itlb: Tlb,
    dtlb: Tlb,
    stlb: LastLevelTlb,
    pscs: SplitPscs,
    walker: PageWalker,
}

impl TranslationPath {
    /// Assembles the pipeline from its structures.
    pub fn new(
        itlb: Tlb,
        dtlb: Tlb,
        stlb: LastLevelTlb,
        pscs: SplitPscs,
        walker: PageWalker,
    ) -> Self {
        Self {
            itlb,
            dtlb,
            stlb,
            pscs,
            walker,
        }
    }

    /// Translates `va`, modeling the full ITLB/DTLB → STLB → page-walk
    /// path with all timing side effects. `space` supplies the
    /// deterministic mapping (the current tenant's in multi-tenant runs);
    /// `mem` is the cache-hierarchy window the walker's PTE references go
    /// through.
    #[allow(clippy::too_many_arguments)]
    pub fn translate(
        &mut self,
        space: &mut AddressSpace,
        mem: impl PteMemory,
        va: VirtAddr,
        kind: TranslationKind,
        pc: u64,
        thread: ThreadId,
        now: Cycle,
    ) -> PathResult {
        let Self {
            itlb,
            dtlb,
            stlb,
            pscs,
            walker,
        } = self;
        let l1 = if kind.is_instruction() { itlb } else { dtlb };

        match l1.lookup(va, kind, pc, thread, now) {
            TlbLookup::Hit { done, frame, size } => PathResult {
                pa: frame.offset(va.page_offset(size)),
                done,
                stlb_miss: false,
            },
            TlbLookup::Miss => {
                // The physical mapping itself is deterministic; timing
                // comes from the structures below.
                let tr = space.translate(va, kind);
                let pa = tr.pa;
                // Merge under an in-flight L1-TLB miss.
                if let Some(ready) = l1.merge(va, now) {
                    return PathResult {
                        pa,
                        done: ready,
                        stlb_miss: false,
                    };
                }
                let t_miss = now + l1.config().latency;
                let t_alloc = l1.mshr_alloc(va, kind, t_miss);
                let s = stlb.for_kind(kind);
                match s.lookup(va, kind, pc, thread, t_alloc) {
                    TlbLookup::Hit { done, frame, size } => {
                        l1.fill_and_complete(&tr, kind, pc, thread, va, now, done);
                        PathResult {
                            pa: frame.offset(va.page_offset(size)),
                            done,
                            stlb_miss: false,
                        }
                    }
                    TlbLookup::Miss => {
                        // Merge under an in-flight STLB miss (walk).
                        if let Some(ready) = s.merge(va, t_alloc) {
                            l1.fill_and_complete(&tr, kind, pc, thread, va, now, ready);
                            return PathResult {
                                pa,
                                done: ready,
                                stlb_miss: true,
                            };
                        }
                        let t_stlb = t_alloc + s.config().latency;
                        // Figure 7 step 2: the STLB MSHR records the Type.
                        let walk_start = s.mshr_alloc(va, kind, t_stlb);
                        let outcome = walker.walk(&tr, kind, pscs, mem, walk_start);
                        // Figure 7 step 4: insertion consumes the MSHR's
                        // Type bit (iTP keys on `kind` here).
                        s.fill_and_complete(&tr, kind, pc, thread, va, now, outcome.done);
                        l1.fill_and_complete(&tr, kind, pc, thread, va, now, outcome.done);
                        PathResult {
                            pa,
                            done: outcome.done,
                            stlb_miss: true,
                        }
                    }
                }
            }
        }
    }

    /// The first-level instruction TLB.
    pub fn itlb(&self) -> &Tlb {
        &self.itlb
    }

    /// The first-level data TLB.
    pub fn dtlb(&self) -> &Tlb {
        &self.dtlb
    }

    /// The last-level TLB organization.
    pub fn stlb(&self) -> &LastLevelTlb {
        &self.stlb
    }

    /// The page-table walker.
    pub fn walker(&self) -> &PageWalker {
        &self.walker
    }

    /// Mutable first-level instruction TLB (warm-state handoff).
    pub fn itlb_mut(&mut self) -> &mut Tlb {
        &mut self.itlb
    }

    /// Mutable first-level data TLB (warm-state handoff).
    pub fn dtlb_mut(&mut self) -> &mut Tlb {
        &mut self.dtlb
    }

    /// Mutable last-level TLB organization (warm-state handoff).
    pub fn stlb_mut(&mut self) -> &mut LastLevelTlb {
        &mut self.stlb
    }

    /// The page-structure caches.
    pub fn pscs(&self) -> &SplitPscs {
        &self.pscs
    }

    /// Mutable page-structure caches (warm-state handoff).
    pub fn pscs_mut(&mut self) -> &mut SplitPscs {
        &mut self.pscs
    }

    /// Retargets every TLB level to `asid` — the tag-preserving half of
    /// a context switch. Pair with [`TranslationPath::flush_asid`] for
    /// flushing switches.
    pub fn set_current_asid(&mut self, asid: Asid) {
        self.itlb.set_current_asid(asid);
        self.dtlb.set_current_asid(asid);
        self.stlb.set_current_asid(asid);
    }

    /// Flushes `asid`-tagged state everywhere it lives: all TLB levels
    /// and the PSC namespaces. Global entries survive by construction.
    pub fn flush_asid(&mut self, asid: Asid) {
        self.itlb.flush_asid(asid);
        self.dtlb.flush_asid(asid);
        self.stlb.flush_asid(asid);
        self.pscs.flush_asid(asid);
    }

    /// Targeted TLB shootdown of `va` under `asid`, across every TLB
    /// level. PSC nodes are deliberately kept — a shootdown invalidates a
    /// leaf mapping, not the page-table interior (documented limit: real
    /// invlpg flushes paging-structure caches too).
    pub fn invalidate_page(&mut self, va: VirtAddr, asid: Asid) {
        self.itlb.invalidate_page(va, asid);
        self.dtlb.invalidate_page(va, asid);
        self.stlb.invalidate_page(va, asid);
    }

    /// Invalidates a 2 MiB region in every TLB level after huge-page
    /// promotion/demotion churn. PSC nodes survive: a level-2 start is
    /// valid for both leaf sizes.
    pub fn invalidate_region(&mut self, region_vpn2m: u64) {
        self.itlb.invalidate_region(region_vpn2m);
        self.dtlb.invalidate_region(region_vpn2m);
        self.stlb.invalidate_region(region_vpn2m);
    }

    /// Clears statistics on every structure in the pipeline; contents
    /// and replacement state are preserved.
    pub fn reset_stats(&mut self) {
        self.itlb.reset_stats();
        self.dtlb.reset_stats();
        self.stlb.reset_stats();
        self.walker.reset_stats();
    }
}

impl ResetBoundary for TranslationPath {
    fn reset_boundary(&mut self) {
        self.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page_table::HugePagePolicy;
    use crate::tlb::TlbConfig;
    use itpx_policy::Lru;

    /// Fixed-latency PTE memory: every walk reference costs 10 cycles.
    struct FlatMemory;

    impl PteMemory for FlatMemory {
        fn pte_access(&mut self, _pa: PhysAddr, _kind: TranslationKind, now: Cycle) -> Cycle {
            now + 10
        }
    }

    fn path() -> TranslationPath {
        let small = TlbConfig {
            sets: 4,
            ways: 4,
            latency: 1,
            mshr_entries: 8,
        };
        let stlb_cfg = TlbConfig {
            sets: 16,
            ways: 4,
            latency: 8,
            mshr_entries: 16,
        };
        let tlb = |cfg: TlbConfig| Tlb::new(cfg, Lru::new(cfg.sets, cfg.ways));
        TranslationPath::new(
            tlb(small),
            tlb(small),
            LastLevelTlb::Unified(tlb(stlb_cfg)),
            SplitPscs::asplos25(),
            PageWalker::new(4),
        )
    }

    fn table() -> AddressSpace {
        AddressSpace::single(HugePagePolicy::none(), 7, 0)
    }

    #[test]
    fn cold_walk_then_warm_hit() {
        let mut p = path();
        let mut pt = table();
        let va = VirtAddr::new(0x10_0000_1000);
        let cold = p.translate(
            &mut pt,
            FlatMemory,
            va,
            TranslationKind::Data,
            0x4,
            ThreadId(0),
            0,
        );
        assert!(cold.stlb_miss);
        assert_eq!(p.walker().walks(), 1);
        let warm = p.translate(
            &mut pt,
            FlatMemory,
            va,
            TranslationKind::Data,
            0x4,
            ThreadId(0),
            1_000,
        );
        assert!(!warm.stlb_miss);
        assert_eq!(warm.done, 1_001, "DTLB hit costs its lookup latency");
        assert_eq!(warm.pa, cold.pa);
        assert_eq!(p.walker().walks(), 1, "no second walk");
    }

    #[test]
    fn instruction_and_data_use_their_own_l1() {
        let mut p = path();
        let mut pt = table();
        let va = VirtAddr::new(0x20_0000_0000);
        p.translate(
            &mut pt,
            FlatMemory,
            va,
            TranslationKind::Instruction,
            va.0,
            ThreadId(0),
            0,
        );
        assert_eq!(p.itlb().stats().accesses(), 1);
        assert_eq!(p.dtlb().stats().accesses(), 0);
    }

    #[test]
    fn reset_stats_clears_the_pipeline() {
        let mut p = path();
        let mut pt = table();
        let va = VirtAddr::new(0x30_0000_0000);
        p.translate(
            &mut pt,
            FlatMemory,
            va,
            TranslationKind::Data,
            0,
            ThreadId(0),
            0,
        );
        p.reset_stats();
        assert_eq!(p.dtlb().stats().accesses(), 0);
        assert_eq!(p.stlb().stats().accesses(), 0);
        assert_eq!(p.walker().walks(), 0);
    }
}
